#ifndef FEDSCOPE_BENCH_COMMON_H_
#define FEDSCOPE_BENCH_COMMON_H_

// Shared workload / strategy definitions for the paper-reproduction
// benches. Every bench binary prints the rows/series of one table or
// figure from the FederatedScope paper (§5 + appendices), scaled to
// laptop-size synthetic workloads (see DESIGN.md §2 for the substitution
// rationale). Absolute numbers differ from the paper's testbed; the
// comparisons (who wins, by roughly what factor) are the reproduction
// target, recorded in EXPERIMENTS.md.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "fedscope/core/fed_runner.h"
#include "fedscope/data/synthetic_cifar.h"
#include "fedscope/data/synthetic_femnist.h"
#include "fedscope/data/synthetic_twitter.h"
#include "fedscope/nn/model_zoo.h"
#include "fedscope/util/logging.h"
#include "fedscope/util/table.h"

namespace fedscope {
namespace bench {

/// Prepends a Flatten layer so image datasets feed MLP models.
inline Model WithFlatten(Model body) {
  Model m;
  m.Add("flat", std::make_unique<Flatten>());
  for (int i = 0; i < body.num_layers(); ++i) {
    m.Add(body.layer_name(i), body.layer(i)->Clone());
  }
  return m;
}

/// One benchmark workload: dataset + model + training hyperparameters +
/// the per-round simulation knobs of Appendix F, scaled down.
struct Workload {
  std::string name;
  FedDataset data;
  std::function<Model(uint64_t)> model_factory;
  TrainConfig train;
  int concurrency = 10;
  int aggregation_goal = 4;
  int staleness_tolerance = 10;
  double target_accuracy = 0.0;
  int max_rounds = 120;
  FleetOptions fleet;
};

/// FEMNIST stand-in: 40 writers, mild label/feature skew, MLP 64-32-10.
inline Workload MakeFemnistWorkload(uint64_t seed = 1) {
  Workload w;
  w.name = "FEMNIST";
  SyntheticFemnistOptions options;
  options.num_clients = 40;
  options.mean_samples = 50;
  options.style_sigma = 0.5;
  options.noise_sigma = 2.2;
  options.label_alpha = 2.0;
  options.seed = seed;
  w.data = MakeSyntheticFemnist(options);
  w.model_factory = [](uint64_t s) {
    Rng rng(s);
    return WithFlatten(MakeMlp({64, 32, 10}, &rng));
  };
  w.train.lr = 0.1;
  w.train.local_steps = 4;
  w.train.batch_size = 16;
  w.concurrency = 10;
  w.aggregation_goal = 4;
  return w;
}

/// CIFAR-10 stand-in: Dirichlet(alpha) label skew over 40 clients.
inline Workload MakeCifarWorkload(double alpha = 0.5, uint64_t seed = 2) {
  Workload w;
  w.name = "CIFAR-10";
  SyntheticCifarOptions options;
  options.num_clients = 40;
  options.pool_size = 2400;
  options.alpha = alpha;
  options.noise_sigma = 2.6;
  options.seed = seed;
  w.data = MakeSyntheticCifar(options);
  w.model_factory = [](uint64_t s) {
    Rng rng(s);
    return WithFlatten(MakeMlp({3 * 8 * 8, 32, 10}, &rng));
  };
  w.train.lr = 0.08;
  w.train.local_steps = 4;
  w.train.batch_size = 16;
  w.concurrency = 10;
  w.aggregation_goal = 4;
  return w;
}

/// Twitter stand-in: 80 users, tiny local corpora, logistic regression.
inline Workload MakeTwitterWorkload(uint64_t seed = 3) {
  Workload w;
  w.name = "Twitter";
  SyntheticTwitterOptions options;
  options.num_clients = 80;
  options.vocab = 60;
  options.user_style_strength = 0.6;
  options.words_per_text = 10;
  options.seed = seed;
  w.data = MakeSyntheticTwitter(options);
  w.model_factory = [](uint64_t s) {
    Rng rng(s);
    return MakeLogisticRegression(60, 2, &rng);
  };
  w.train.lr = 0.2;
  w.train.local_steps = 4;
  w.train.batch_size = 2;
  w.concurrency = 20;
  w.aggregation_goal = 8;
  return w;
}

/// A named server-strategy configuration (the columns of Table 1).
struct StrategySpec {
  std::string name;
  std::function<void(ServerOptions*, const Workload&)> apply;
};

inline std::vector<StrategySpec> Table1Strategies() {
  return {
      {"Sync-vanilla",
       [](ServerOptions* s, const Workload&) {
         s->strategy = Strategy::kSyncVanilla;
       }},
      {"Sync-OS",
       [](ServerOptions* s, const Workload&) {
         s->strategy = Strategy::kSyncOverselect;
         s->overselect_frac = 0.3;
         s->staleness_tolerance = 0;
       }},
      // Independent re-implementation of over-selection through the
      // async-goal machinery (goal = concurrency, toleration 0, cohort
      // kept over-sampled by after-receiving broadcasts) — the correctness
      // cross-check mirroring the paper's "Sync-OS (FedScale)" column.
      {"Sync-OS (recheck)",
       [](ServerOptions* s, const Workload& w) {
         s->strategy = Strategy::kAsyncGoal;
         s->aggregation_goal = w.concurrency;
         s->concurrency = static_cast<int>(w.concurrency * 1.3);
         s->staleness_tolerance = 0;
         s->broadcast = BroadcastManner::kAfterAggregating;
       }},
      {"Goal-Aggr-Unif",
       [](ServerOptions* s, const Workload& w) {
         s->strategy = Strategy::kAsyncGoal;
         s->aggregation_goal = w.aggregation_goal;
         s->broadcast = BroadcastManner::kAfterAggregating;
       }},
      {"Goal-Rece-Unif",
       [](ServerOptions* s, const Workload& w) {
         s->strategy = Strategy::kAsyncGoal;
         s->aggregation_goal = w.aggregation_goal;
         s->broadcast = BroadcastManner::kAfterReceiving;
       }},
      {"Time-Aggr-Unif",
       [](ServerOptions* s, const Workload&) {
         s->strategy = Strategy::kAsyncTime;
         s->broadcast = BroadcastManner::kAfterAggregating;
         s->min_received = 1;
       }},
      {"Goal-Aggr-Group",
       [](ServerOptions* s, const Workload& w) {
         s->strategy = Strategy::kAsyncGoal;
         s->aggregation_goal = w.aggregation_goal;
         s->broadcast = BroadcastManner::kAfterAggregating;
         s->sampler = "group";
         s->num_groups = 5;
       }},
  };
}

/// Builds the FedJob for a workload + strategy and runs the course. `obs`
/// optionally attaches observability sinks (benches that report per-client
/// participation or traffic read them back instead of ad-hoc counters).
inline RunResult RunStrategy(const Workload& w, const StrategySpec& strategy,
                             uint64_t seed, double time_budget_hint = 0.0,
                             const ObsContext& obs = {}) {
  FedJob job;
  job.obs = obs;
  job.data = &w.data;
  job.init_model = w.model_factory(seed);
  job.client.train = w.train;
  job.client.jitter_sigma = 0.25;
  Rng fleet_rng(seed + 1000);
  // Edge-device scale: a handful of samples/second of local training and
  // tens of kB/s of bandwidth, with a heavy straggler tail. This puts
  // round times in the minutes and course times in virtual hours, like
  // the paper's FedScale-trace setting.
  FleetOptions fleet = w.fleet;
  fleet.compute_median = 5.0;
  fleet.compute_sigma = 0.6;
  fleet.bandwidth_median = 5e4;
  fleet.bandwidth_sigma = 0.6;
  fleet.straggler_frac = 0.1;
  fleet.straggler_slowdown = 0.3;
  job.fleet = MakeFleet(w.data.num_clients(), fleet, &fleet_rng);
  job.server.concurrency = w.concurrency;
  job.server.aggregation_goal = w.aggregation_goal;
  job.server.staleness_tolerance = w.staleness_tolerance;
  job.server.max_rounds = w.max_rounds;
  job.server.target_accuracy = w.target_accuracy;
  job.server.time_budget = time_budget_hint > 0.0 ? time_budget_hint : 30.0;
  job.seed = seed;
  strategy.apply(&job.server, w);
  return FedRunner(std::move(job)).Run();
}

/// Measures the average virtual time per aggregation of the goal strategy,
/// used to set the time budget of the time_up strategy (Appendix F: "the
/// time budget ... is set to the same value as the averaged time cost for
/// achieving the defined aggregation goal").
inline double CalibrateTimeBudget(const Workload& w, uint64_t seed) {
  Workload probe = w;
  probe.target_accuracy = 0.0;
  probe.max_rounds = 15;
  StrategySpec goal{"probe", [](ServerOptions* s, const Workload& wl) {
                      s->strategy = Strategy::kAsyncGoal;
                      s->aggregation_goal = wl.aggregation_goal;
                    }};
  RunResult result = RunStrategy(probe, goal, seed);
  if (result.server.curve.empty() || result.server.rounds == 0) return 30.0;
  return result.server.curve.back().first / result.server.rounds;
}

inline double SecondsToHours(double seconds) { return seconds / 3600.0; }

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Quietens INFO logs so bench output is just the tables.
inline void QuietLogs() { Logging::set_min_level(LogLevel::kWarning); }

}  // namespace bench
}  // namespace fedscope

#endif  // FEDSCOPE_BENCH_COMMON_H_
