#!/usr/bin/env python3
"""Merge two google-benchmark JSON outputs into BENCH_kernels.json.

The perf trajectory file keeps both the pre-optimization baseline and the
current numbers so later PRs can regress-check against either:

    ./bench/bench_micro --benchmark_filter='BM_MatMul|BM_MatMulTransB|...' \
        --benchmark_out=now.json --benchmark_out_format=json \
        --benchmark_repetitions=3 --benchmark_report_aggregates_only=true
    python3 bench/make_bench_kernels.py baseline.json now.json \
        > BENCH_kernels.json

A benchmark present in only one input is kept with a null on the other side
(new benchmarks have no pre-rewrite baseline).
"""

import json
import sys


def load_means(path):
    """Returns {benchmark_name: real_time_ns}, preferring _mean aggregates."""
    with open(path) as f:
        doc = json.load(f)
    means = {}
    raw = {}
    for b in doc.get("benchmarks", []):
        name = b["name"]
        if name.endswith("_mean"):
            means[name[: -len("_mean")]] = b["real_time"]
        elif b.get("run_type") != "aggregate":
            raw.setdefault(name, b["real_time"])
    return {**raw, **means}, doc.get("context", {})


def main():
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} baseline.json optimized.json")
    baseline, _ = load_means(sys.argv[1])
    optimized, context = load_means(sys.argv[2])
    rows = {}
    for name in sorted(set(baseline) | set(optimized)):
        base = baseline.get(name)
        opt = optimized.get(name)
        rows[name] = {
            "baseline_ns": round(base, 1) if base is not None else None,
            "optimized_ns": round(opt, 1) if opt is not None else None,
            "speedup": round(base / opt, 2) if base and opt else None,
        }
    out = {
        "schema": 1,
        "time_unit": "ns",
        "note": "baseline = naive scalar kernels before the kernels.cc "
                "rewrite; optimized = tiled GEMM / im2col conv. real_time "
                "means of 3 repetitions.",
        "host": {
            "num_cpus": context.get("num_cpus"),
            "mhz_per_cpu": context.get("mhz_per_cpu"),
        },
        "benchmarks": rows,
    }
    json.dump(out, sys.stdout, indent=2)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
