// Table 4 (Appendix G): CIFAR-10 with IID vs Dirichlet(alpha) non-IID
// splits. FedAvg degrades as heterogeneity grows (smaller alpha); FedBN
// and Ditto — evaluated client-wise, as personalized methods are — improve
// under heterogeneity and overtake FedAvg.

#include "bench/common.h"
#include "fedscope/personalization/ditto.h"
#include "fedscope/personalization/fedbn.h"
#include "fedscope/util/stats.h"

namespace fedscope {
namespace bench {
namespace {

FedDataset MakeData(double alpha, uint64_t seed) {
  SyntheticCifarOptions options;
  options.num_clients = 40;
  options.pool_size = 2400;
  options.alpha = alpha;  // <= 0 -> IID
  options.noise_sigma = 3.2;
  options.seed = seed;
  return MakeSyntheticCifar(options);
}

Model BnModel(uint64_t seed) {
  Rng rng(seed);
  Model m;
  m.Add("flat", std::make_unique<Flatten>());
  Model mlp = MakeMlpBn({3 * 8 * 8, 32, 10}, &rng);
  for (int i = 0; i < mlp.num_layers(); ++i) {
    m.Add(mlp.layer_name(i), mlp.layer(i)->Clone());
  }
  return m;
}

FedJob BaseJob(const FedDataset* data, uint64_t seed) {
  FedJob job;
  job.data = data;
  job.init_model = BnModel(seed);
  job.server.concurrency = 10;
  job.server.max_rounds = 40;
  job.client.train.lr = 0.08;
  job.client.train.local_steps = 4;
  job.client.train.batch_size = 16;
  job.client.jitter_sigma = 0.1;
  job.seed = seed;
  return job;
}

/// All methods are scored the same way: the client-side deployment model
/// (the fresh global model for FedAvg; the personalized model for
/// FedBN/Ditto) evaluated on each client's local test split, averaged.
double ClientScore(const RunResult& r) {
  return Mean(r.client_test_accuracy);
}

void RunTable4() {
  QuietLogs();
  PrintHeader(
      "Table 4: CIFAR-10 accuracy, IID vs non-IID Dirichlet splits");
  const uint64_t seed = 44;
  struct Split {
    std::string label;
    double alpha;
  };
  std::vector<Split> splits = {{"IID", 0.0},
                               {"alpha=1.0", 1.0},
                               {"alpha=0.5", 0.5},
                               {"alpha=0.2", 0.2}};

  Table table({"method", "IID", "alpha=1.0", "alpha=0.5", "alpha=0.2"});
  std::vector<std::string> fedavg_row = {"FedAvg"};
  std::vector<std::string> fedbn_row = {"FedBN"};
  std::vector<std::string> ditto_row = {"Ditto"};

  for (const auto& split : splits) {
    FedDataset data = MakeData(split.alpha, seed);
    {
      RunResult r = FedRunner(BaseJob(&data, seed)).Run();
      fedavg_row.push_back(FormatDouble(ClientScore(r), 4));
    }
    {
      FedJob job = BaseJob(&data, seed);
      ApplyFedBn(&job);
      RunResult r = FedRunner(std::move(job)).Run();
      fedbn_row.push_back(FormatDouble(ClientScore(r), 4));
    }
    {
      FedJob job = BaseJob(&data, seed);
      job.trainer_factory = [](int) {
        return std::make_unique<DittoTrainer>(DittoOptions{0.1, 10});
      };
      RunResult r = FedRunner(std::move(job)).Run();
      ditto_row.push_back(FormatDouble(ClientScore(r), 4));
    }
    std::fflush(stdout);
  }
  table.AddRow(fedavg_row);
  table.AddRow(fedbn_row);
  table.AddRow(ditto_row);
  table.Print();
  std::printf(
      "\nPaper reference (Table 4): FedAvg 0.80 (IID) degrading to 0.77 "
      "(alpha=0.2); FedBN/Ditto improve with heterogeneity, reaching "
      "~0.88 at alpha=0.2.\n");
}

}  // namespace
}  // namespace bench
}  // namespace fedscope

int main() { fedscope::bench::RunTable4(); }
