// Table 1: virtual time (hours) to reach the target test accuracy,
// synchronous vs asynchronous training strategies, on the three benchmark
// workloads. Reproduces the comparison of paper §5.3.1: asynchronous
// strategies reach the target several times faster than Sync-vanilla, and
// over-selection sits in between.

#include "bench/common.h"

namespace fedscope {
namespace bench {
namespace {

/// Finds a target accuracy every strategy can reach: a fraction of the
/// plateau of a calibration run.
double CalibrateTarget(const Workload& w, uint64_t seed) {
  Workload probe = w;
  probe.max_rounds = w.max_rounds;
  probe.target_accuracy = 0.0;
  StrategySpec vanilla{"calib", [](ServerOptions* s, const Workload&) {
                         s->strategy = Strategy::kSyncVanilla;
                       }};
  RunResult result = RunStrategy(probe, vanilla, seed);
  return 0.92 * result.server.best_accuracy;
}

void RunTable1() {
  QuietLogs();
  PrintHeader(
      "Table 1: virtual hours to target accuracy, sync vs async "
      "(speedup vs Sync-vanilla in parentheses)");

  std::vector<Workload> workloads = {MakeFemnistWorkload(),
                                     MakeCifarWorkload(0.5),
                                     MakeTwitterWorkload()};
  auto strategies = Table1Strategies();

  std::vector<std::string> header = {"Dataset (target acc)"};
  for (const auto& s : strategies) header.push_back(s.name);
  Table table(header);

  for (auto& w : workloads) {
    const uint64_t seed = 4242;
    w.target_accuracy = CalibrateTarget(w, seed);
    const double budget = CalibrateTimeBudget(w, seed);

    char label[64];
    std::snprintf(label, sizeof(label), "%s (%.0f%%)", w.name.c_str(),
                  100.0 * w.target_accuracy);
    std::vector<std::string> row = {label};

    double vanilla_hours = 0.0;
    for (const auto& strategy : strategies) {
      RunResult result = RunStrategy(w, strategy, seed, budget);
      char cell[64];
      if (result.server.reached_target) {
        const double hours = SecondsToHours(result.server.time_to_target);
        if (strategy.name == "Sync-vanilla") {
          vanilla_hours = hours;
          std::snprintf(cell, sizeof(cell), "%.3f", hours);
        } else {
          std::snprintf(cell, sizeof(cell), "%.3f (%.2fx)", hours,
                        vanilla_hours / hours);
        }
      } else {
        std::snprintf(cell, sizeof(cell), ">%.3f (DNF acc=%.2f)",
                      SecondsToHours(result.server.finish_time),
                      result.server.best_accuracy);
      }
      row.push_back(cell);
      std::fflush(stdout);
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nPaper reference (Table 1): Sync-OS ~2.1-2.5x, async strategies "
      "~5.3-18.8x faster than Sync-vanilla.\n");
}

}  // namespace
}  // namespace bench
}  // namespace fedscope

int main() { fedscope::bench::RunTable1(); }
