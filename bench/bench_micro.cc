// Substrate microbenchmarks (google-benchmark): tensor kernels, the wire
// codec, the event queue, aggregation, and Paillier primitives. These are
// not paper experiments; they characterize the simulator's own cost.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "fedscope/comm/channel.h"
#include "fedscope/comm/codec.h"
#include "fedscope/core/aggregator.h"
#include "fedscope/core/checkpoint.h"
#include "fedscope/nn/loss.h"
#include "fedscope/nn/model_zoo.h"
#include "fedscope/obs/obs_context.h"
#include "fedscope/privacy/paillier.h"
#include "fedscope/privacy/secret_sharing.h"
#include "fedscope/sim/event_queue.h"
#include "fedscope/tensor/kernels.h"
#include "fedscope/tensor/tensor_ops.h"

namespace fedscope {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_Conv2dForward(benchmark::State& state) {
  Rng rng(2);
  Conv2d conv(3, 8, 3, 1, &rng);
  Tensor x = Tensor::Randn({16, 3, 8, 8}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(x, true));
  }
}
BENCHMARK(BM_Conv2dForward);

void BM_MatMulTransB(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMulTransB(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulTransB)->Arg(64)->Arg(128);

void BM_Conv2dBackward(benchmark::State& state) {
  Rng rng(2);
  Conv2d conv(3, 8, 3, 1, &rng);
  Tensor x = Tensor::Randn({16, 3, 8, 8}, &rng);
  Tensor y = conv.Forward(x, true);
  Tensor grad = Tensor::Randn(y.shape(), &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Backward(grad));
  }
}
BENCHMARK(BM_Conv2dBackward);

void BM_Im2Col(benchmark::State& state) {
  Rng rng(2);
  const int64_t c = 8, hw = 16, k = 3, p = 1;
  Tensor x = Tensor::Randn({c, hw, hw}, &rng);
  const int64_t out = kernels::ConvOutDim(hw, k, p);
  std::vector<float> cols(c * k * k * out * out);
  for (auto _ : state) {
    kernels::Im2Col(x.data(), c, hw, hw, k, p, cols.data());
    benchmark::DoNotOptimize(cols.data());
  }
  state.SetBytesProcessed(state.iterations() * cols.size() * sizeof(float));
}
BENCHMARK(BM_Im2Col);

void BM_Softmax(benchmark::State& state) {
  Rng rng(13);
  Tensor logits = Tensor::Randn({256, 64}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Softmax(logits));
  }
  state.SetItemsProcessed(state.iterations() * logits.numel());
}
BENCHMARK(BM_Softmax);

void BM_ModelForwardBackward(benchmark::State& state) {
  Rng rng(3);
  Model model = MakeConvNet2(3, 8, 10, 64, 0.0, &rng);
  Tensor x = Tensor::Randn({16, 3, 8, 8}, &rng);
  SoftmaxCrossEntropy loss;
  std::vector<int64_t> labels(16, 1);
  for (auto _ : state) {
    model.ZeroGrad();
    Tensor out = model.Forward(x, true);
    loss.Forward(out, labels);
    model.Backward(loss.Backward());
  }
}
BENCHMARK(BM_ModelForwardBackward);

void BM_MessageEncode(benchmark::State& state) {
  Message msg;
  Rng rng(4);
  msg.payload.SetStateDict(
      "model", MakeMlp({64, 64, 10}, &rng).GetStateDict());
  int64_t bytes = 0;
  for (auto _ : state) {
    auto encoded = EncodeMessage(msg);
    bytes += encoded.size();
    benchmark::DoNotOptimize(encoded);
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_MessageEncode);

void BM_MessageRoundTrip(benchmark::State& state) {
  Message msg;
  Rng rng(5);
  msg.payload.SetStateDict(
      "model", MakeMlp({64, 64, 10}, &rng).GetStateDict());
  for (auto _ : state) {
    auto decoded = DecodeMessage(EncodeMessage(msg));
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_MessageRoundTrip);

void BM_EventQueue(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(6);
  for (auto _ : state) {
    EventQueue queue;
    for (int i = 0; i < n; ++i) {
      Message msg;
      msg.timestamp = rng.Uniform();
      queue.Push(std::move(msg));
    }
    while (!queue.Empty()) {
      benchmark::DoNotOptimize(queue.Pop());
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueue)->Arg(1000);

// Observability overhead: the same event-queue workload with a metrics
// registry attached. Compare against BM_EventQueue to price the hooks.
void BM_EventQueueWithObs(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(6);
  MetricsRegistry metrics;
  ObsContext obs;
  obs.metrics = &metrics;
  for (auto _ : state) {
    EventQueue queue;
    queue.set_obs(&obs);
    for (int i = 0; i < n; ++i) {
      Message msg;
      msg.msg_type = "model_update";
      msg.timestamp = rng.Uniform();
      queue.Push(std::move(msg));
    }
    while (!queue.Empty()) {
      benchmark::DoNotOptimize(queue.Pop());
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueWithObs)->Arg(1000);

void BM_ChannelSend(benchmark::State& state) {
  QueueChannel channel;
  Message msg;
  Rng rng(12);
  msg.msg_type = "model_update";
  msg.payload.SetStateDict("delta", MakeMlp({64, 32, 10}, &rng).GetStateDict());
  for (auto _ : state) {
    channel.Send(msg);
    benchmark::DoNotOptimize(channel.Pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelSend);

// Channel send with the per-message traffic counters attached (the
// fs_comm_* instrumentation every transport shares).
void BM_ChannelSendWithObs(benchmark::State& state) {
  QueueChannel channel;
  MetricsRegistry metrics;
  ObsContext obs;
  obs.metrics = &metrics;
  channel.set_obs(&obs);
  Message msg;
  Rng rng(12);
  msg.msg_type = "model_update";
  msg.payload.SetStateDict("delta", MakeMlp({64, 32, 10}, &rng).GetStateDict());
  for (auto _ : state) {
    channel.Send(msg);
    benchmark::DoNotOptimize(channel.Pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelSendWithObs);

void BM_FedAvgAggregate(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  Rng rng(7);
  Model model = MakeMlp({64, 32, 10}, &rng);
  StateDict global = model.GetStateDict();
  std::vector<ClientUpdate> updates(clients);
  for (int c = 0; c < clients; ++c) {
    updates[c].client_id = c + 1;
    updates[c].num_samples = 64;
    updates[c].delta = SdScale(global, 0.01f);
  }
  FedAvgAggregator aggregator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(aggregator.Aggregate(global, updates));
  }
}
BENCHMARK(BM_FedAvgAggregate)->Arg(10)->Arg(50);

void BM_KrumAggregate(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  Rng rng(8);
  Model model = MakeMlp({64, 16, 10}, &rng);
  StateDict global = model.GetStateDict();
  std::vector<ClientUpdate> updates(clients);
  for (int c = 0; c < clients; ++c) {
    updates[c].client_id = c + 1;
    updates[c].delta = SdScale(global, 0.01f * (c + 1));
  }
  KrumAggregator aggregator(clients / 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aggregator.Aggregate(global, updates));
  }
}
BENCHMARK(BM_KrumAggregate)->Arg(10)->Arg(20);

void BM_PaillierEncrypt(benchmark::State& state) {
  Rng rng(9);
  auto keys = Paillier::GenerateKeys(static_cast<int>(state.range(0)), &rng);
  BigInt m = BigInt::FromUint64(123456);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Paillier::Encrypt(keys.pub, m, &rng));
  }
}
BENCHMARK(BM_PaillierEncrypt)->Arg(96)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_PaillierAddDecrypt(benchmark::State& state) {
  Rng rng(10);
  auto keys = Paillier::GenerateKeys(96, &rng);
  BigInt ca = Paillier::Encrypt(keys.pub, BigInt::FromUint64(111), &rng);
  BigInt cb = Paillier::Encrypt(keys.pub, BigInt::FromUint64(222), &rng);
  for (auto _ : state) {
    BigInt sum = Paillier::AddCiphertexts(keys.pub, ca, cb);
    benchmark::DoNotOptimize(Paillier::Decrypt(keys.pub, keys.priv, sum));
  }
}
BENCHMARK(BM_PaillierAddDecrypt)->Unit(benchmark::kMillisecond);

void BM_SecretSharedSum(benchmark::State& state) {
  Rng rng(11);
  std::vector<std::vector<double>> rows(
      10, std::vector<double>(state.range(0), 0.5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SecretSharedSum(rows, &rng));
  }
  state.SetItemsProcessed(state.iterations() * 10 * state.range(0));
}
BENCHMARK(BM_SecretSharedSum)->Arg(1000);

// -- durable course snapshots (DESIGN.md §10) -------------------------------
// Arg 0: the Twitter logistic regression (§5.2, ~120 params). Arg 1: the
// FEMNIST ConvNet2 at paper scale (~1.8M params). Together they bracket the
// per-round snapshot cost a recovering deployment pays.

Checkpoint SnapshotCheckpoint(int which) {
  Rng rng(12);
  Model model = which == 0 ? MakeLogisticRegression(60, 2, &rng)
                           : MakeConvNet2(1, 28, 62, 2048, 0.0, &rng);
  Checkpoint ckpt;
  ckpt.round = 42;
  ckpt.virtual_time = 1234.5;
  ckpt.best_accuracy = 0.9;
  ckpt.global_state = model.GetStateDict();
  SetPackedU64s(&ckpt.course, "rng", {1, 2, 3, 4, 5, 6, 7});
  return ckpt;
}

void BM_SnapshotSerialize(benchmark::State& state) {
  Checkpoint ckpt = SnapshotCheckpoint(static_cast<int>(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    const std::vector<uint8_t> frame = EncodeCheckpointFile(ckpt);
    bytes = frame.size();
    benchmark::DoNotOptimize(frame.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(bytes));
}
BENCHMARK(BM_SnapshotSerialize)->Arg(0)->Arg(1);

void BM_SnapshotDeserialize(benchmark::State& state) {
  const std::vector<uint8_t> frame =
      EncodeCheckpointFile(SnapshotCheckpoint(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    auto decoded = DecodeCheckpointFile(frame);
    benchmark::DoNotOptimize(decoded.ok());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(frame.size()));
}
BENCHMARK(BM_SnapshotDeserialize)->Arg(0)->Arg(1);

void BM_SnapshotAtomicWrite(benchmark::State& state) {
  // Full durability path: temp file + fsync + rename + directory fsync.
  // Dominated by fsync latency, so expect the storage stack — not the
  // codec — to set this number.
  Checkpoint ckpt = SnapshotCheckpoint(static_cast<int>(state.range(0)));
  const std::string path =
      (std::filesystem::temp_directory_path() / "fedscope_bench_snapshot.ckpt")
          .string();
  int64_t bytes = 0;
  for (auto _ : state) {
    auto written = WriteCheckpointFileAtomic(path, ckpt);
    if (!written.ok()) {
      state.SkipWithError(written.status().ToString().c_str());
      return;
    }
    bytes = written.value();
  }
  state.SetBytesProcessed(state.iterations() * bytes);
  std::remove(path.c_str());
}
BENCHMARK(BM_SnapshotAtomicWrite)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fedscope

BENCHMARK_MAIN();
