// Figure 14: auto-tuning FedAvg hyperparameters on the FEMNIST workload.
// Best-seen validation loss over budget for RS, SHA, and RS-wrapped FedEx.
// The paper's punchline: wrapped FedEx shows *worse regret* on validation
// loss yet finds configurations with *better test accuracy*, thanks to
// fine-grained client-wise exploration (paper §5.3.4).

#include "bench/common.h"
#include "fedscope/hpo/fedex.h"
#include "fedscope/hpo/fl_objective.h"
#include "fedscope/hpo/random_search.h"
#include "fedscope/hpo/successive_halving.h"

namespace fedscope {
namespace bench {
namespace {

FedDataset MakeData(uint64_t seed) {
  SyntheticFemnistOptions options;
  options.num_clients = 20;
  options.mean_samples = 50;
  options.noise_sigma = 1.6;
  options.seed = seed;
  return MakeSyntheticFemnist(options);
}

FedJob BaseJob(const FedDataset* data, uint64_t seed) {
  FedJob job;
  job.data = data;
  Rng rng(seed);
  job.init_model = WithFlatten(MakeMlp({64, 24, 10}, &rng));
  job.server.concurrency = 8;
  job.client.train.lr = 0.1;
  job.client.train.local_steps = 4;
  job.client.train.batch_size = 8;
  job.client.jitter_sigma = 0.0;
  job.seed = seed;
  return job;
}

void PrintTrace(const std::string& name, const HpoResult& result) {
  std::printf("series %s (best test acc of searched config: %.4f)\n",
              name.c_str(), result.best_test_accuracy);
  std::printf("  budget_rounds, best_seen_val_loss\n");
  for (const auto& event : result.trace) {
    std::printf("  %.0f, %.4f\n", event.cumulative_budget,
                event.best_seen_val_loss);
  }
}

void RunFig14() {
  QuietLogs();
  PrintHeader(
      "Figure 14: best-seen validation loss over budget (RS / SHA / "
      "RS-wrapped FedEx), FEMNIST FedAvg hyperparameters");
  const uint64_t seed = 1414;
  FedDataset data = MakeData(seed);

  SearchSpace space;
  space.AddDouble("train.lr", 0.01, 1.0, /*log=*/true);
  space.AddInt("train.local_steps", 1, 8);

  const int full_budget = 12;  // rounds per full-fidelity evaluation

  {
    FlObjective objective([&]() { return BaseJob(&data, seed); });
    Rng rng(seed);
    HpoResult rs = RunRandomSearch(space, &objective, 8, full_budget, &rng);
    PrintTrace("RS", rs);
  }
  {
    FlObjective objective([&]() { return BaseJob(&data, seed); });
    Rng rng(seed + 1);
    ShaOptions sha;
    sha.num_configs = 9;
    sha.eta = 3;
    sha.min_budget = full_budget / 4;
    sha.num_rungs = 3;
    HpoResult result = RunSuccessiveHalving(space, &objective, sha, &rng);
    PrintTrace("SHA", result);
  }
  {
    // RS-wrapped FedEx: the wrapper proposes server-side configs; FedEx
    // explores client-side lr/steps concurrently inside each course.
    SearchSpace wrapper_space;
    wrapper_space.AddDouble("server.lr_scale", 0.8, 1.2);
    SearchSpace client_space;
    client_space.AddDouble("hpo.lr", 0.01, 1.0, /*log=*/true);
    client_space.AddInt("hpo.local_steps", 1, 8);

    // Validation half mirrors FlObjective's split.
    Rng split_rng(17);
    auto perm = split_rng.Permutation(data.server_test.size());
    const int64_t half = data.server_test.size() / 2;
    Dataset val = data.server_test.Subset(
        std::vector<int64_t>(perm.begin(), perm.begin() + half));
    Dataset test = data.server_test.Subset(
        std::vector<int64_t>(perm.begin() + half, perm.end()));

    auto course_runner = [&](const Config& wrapper_config,
                             FedExPolicy* policy,
                             int budget) -> FedExCourseResult {
      FedJob job = BaseJob(&data, seed + 2);
      job.server.max_rounds = budget;
      FedRunner runner(std::move(job));
      runner.server()->set_config_provider(policy->MakeConfigProvider());
      runner.server()->set_feedback_consumer(
          policy->MakeFeedbackConsumer());
      (void)wrapper_config;
      RunResult run = runner.Run();
      FedExCourseResult result;
      result.val_loss = EvaluateClassifier(&run.final_model, val).loss;
      result.test_accuracy =
          EvaluateClassifier(&run.final_model, test).accuracy;
      return result;
    };
    Rng rng(seed + 3);
    HpoResult wrapped =
        RunFedExWrapped(wrapper_space, client_space, /*num_arms=*/4,
                        course_runner, /*wrapper_trials=*/8, full_budget,
                        /*step_size=*/0.3, &rng);
    PrintTrace("RS-wrapped-FedEx", wrapped);
  }
  std::printf(
      "\nPaper reference (Fig. 14): wrapped FedEx's best-seen validation "
      "loss decreases slower (poorer regret), but its searched "
      "configuration attains better test accuracy.\n");
}

}  // namespace
}  // namespace bench
}  // namespace fedscope

int main() { fedscope::bench::RunFig14(); }
