// Hierarchical sharded aggregation (DESIGN.md §11): virtual time and
// rounds to reach the target accuracy for the flat paper topology, for
// 2- and 4-shard trees of edge aggregators, and for a 2-shard tree whose
// shard-0 primary is SIGKILL-equivalently crashed mid-course and rescued
// by its hot standby. Pre-aggregation is exact for weighted-mean FedAvg
// (Σ over shards of shard-weighted partials equals the flat sum), so the
// learning trajectory must match the flat run up to float reassociation;
// what the tree buys is fan-in (the root receives one partial per shard
// instead of one update per client) and what failover costs is the
// standby's detection timeout once per crash. The bench reports what was
// measured either way; deviations from the equivalence expectation would
// be a bug (fuzz oracle 9), not a tuning opportunity.

#include "bench/common.h"
#include "fedscope/obs/course_log.h"

namespace fedscope {
namespace bench {
namespace {

struct Variant {
  std::string name;
  int shards = 0;       // 0 = flat
  int standbys = 0;
  int kill_round = -1;  // shard 0's primary dies at this round (-1 = never)
};

FedJob BuildJob(const Workload& w, const Variant& v, uint64_t seed) {
  FedJob job;
  job.data = &w.data;
  job.init_model = w.model_factory(seed);
  job.client.train = w.train;
  job.client.jitter_sigma = 0.25;
  Rng fleet_rng(seed + 1000);
  job.fleet = MakeFleet(w.data.num_clients(), w.fleet, &fleet_rng);
  job.server.strategy = Strategy::kSyncVanilla;
  job.server.concurrency = w.concurrency;
  job.server.max_rounds = w.max_rounds;
  job.server.target_accuracy = w.target_accuracy;
  job.server.topology.num_shards = v.shards;
  job.server.topology.standbys_per_shard = v.standbys;
  job.server.topology.failure_timeout = 30.0;
  if (v.kill_round >= 0) {
    job.fault.aggregator_crashes.push_back(
        AggregatorCrash{/*shard=*/0, /*slot=*/0, v.kill_round});
  }
  job.seed = seed;
  return job;
}

/// Target both topologies can reach: a fraction of the flat plateau.
double CalibrateTarget(const Workload& w, uint64_t seed) {
  Workload probe = w;
  probe.target_accuracy = 0.0;
  RunResult result = FedRunner(BuildJob(probe, Variant{}, seed)).Run();
  return 0.92 * result.server.best_accuracy;
}

void RunHierarchy() {
  QuietLogs();
  PrintHeader(
      "Hierarchical aggregation: time/rounds to target accuracy, flat vs "
      "sharded trees, with and without a mid-course aggregator crash");

  const uint64_t seed = 4242;
  Workload w = MakeTwitterWorkload();
  w.target_accuracy = CalibrateTarget(w, seed);
  std::printf(
      "workload=%s target=%.0f%% fleet=%d concurrency=%d "
      "failure_timeout=30s (standby watchdog)\n",
      w.name.c_str(), 100.0 * w.target_accuracy, w.data.num_clients(),
      w.concurrency);

  const std::vector<Variant> variants = {
      {"Flat (paper)", 0, 0, -1},
      {"2-shard", 2, 0, -1},
      {"4-shard", 4, 0, -1},
      {"2-shard + crash", 2, 1, 5},
  };

  Table table({"Topology", "Time to target", "Rounds", "Final acc",
               "Root fan-in/round", "Failovers"});
  double flat_time = -1.0;
  for (const Variant& v : variants) {
    CourseLog course_log;
    FedJob job = BuildJob(w, v, seed);
    job.obs.course_log = &course_log;
    FedRunner runner(std::move(job));
    RunResult result = runner.Run();
    const ServerStats& stats = result.server;

    // Root fan-in: messages the root aggregates per round — per-client
    // updates when flat, one weighted partial per non-empty shard when
    // sharded (read back from the obs course log).
    int64_t partials = 0;
    for (const auto& record : course_log.rounds()) {
      partials += record.partial_updates;
    }
    const double fan_in =
        stats.rounds > 0
            ? static_cast<double>(v.shards > 0
                                      ? partials
                                      : course_log.TotalContributions()) /
                  stats.rounds
            : 0.0;

    char time_cell[64];
    if (stats.reached_target) {
      std::snprintf(time_cell, sizeof(time_cell), "%.3fh%s",
                    SecondsToHours(stats.time_to_target),
                    v.name == "Flat (paper)" ? " (ref)" : "");
      if (v.name == "Flat (paper)") flat_time = stats.time_to_target;
    } else {
      std::snprintf(time_cell, sizeof(time_cell), "DNF best=%.2f",
                    stats.best_accuracy);
    }
    char fan_cell[32], acc_cell[32], rounds_cell[16], failover_cell[16];
    std::snprintf(fan_cell, sizeof(fan_cell), "%.1f", fan_in);
    std::snprintf(acc_cell, sizeof(acc_cell), "%.4f", stats.final_accuracy);
    std::snprintf(rounds_cell, sizeof(rounds_cell), "%d", stats.rounds);
    std::snprintf(failover_cell, sizeof(failover_cell), "%lld",
                  static_cast<long long>(stats.shard_failovers));
    table.AddRow({v.name, time_cell, rounds_cell, acc_cell, fan_cell,
                  failover_cell});
    std::fflush(stdout);
  }
  table.Print();

  std::printf(
      "\nReading: weighted pre-aggregation is exact for FedAvg, so the "
      "sharded rows reach the target in the same rounds as the flat "
      "reference while cutting root fan-in from one update per client to "
      "one partial per shard; any accuracy difference is float "
      "reassociation only. The crash row pays for its failover with the "
      "standby's 30s detection timeout (plus the re-broadcast of the "
      "shard's in-flight cohort) inside a single round — silence-based "
      "detection can also promote a healthy shard's standby while another "
      "shard stalls, which costs an extra re-broadcast but never "
      "double-counts a client (stale-epoch rejection, fuzz oracle 10). "
      "If the flat reference itself missed the target, that is reported "
      "as DNF above, not hidden.\n");
  if (flat_time < 0.0) {
    std::printf("note: flat reference did not reach the target; "
                "time comparisons above are not meaningful.\n");
  }
}

}  // namespace
}  // namespace bench
}  // namespace fedscope

int main() { fedscope::bench::RunHierarchy(); }
