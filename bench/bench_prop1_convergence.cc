// Proposition 1: empirical check of the convergence bound for
// asynchronous FL on a strongly convex quadratic federation. The error
// after T rounds contracts geometrically with rate (1 - mu*Q*eta), and the
// asymptotic error floor grows with the maximum staleness tau_max (the
// (tau_max^2 + 1) factor in the bound).

#include <cmath>

#include "bench/common.h"

namespace fedscope {
namespace bench {
namespace {

/// Federated quadratic with client optima c_i and exact local gradients
/// (mu = L = 1). Local SGD noise is injected explicitly so the variance
/// terms of the bound are active.
struct QuadraticFed {
  std::vector<double> centers;
  double noise_sigma = 0.0;

  double Optimum() const {
    double total = 0.0;
    for (double c : centers) total += c;
    return total / centers.size();
  }

  /// Runs T rounds with Q local steps of lr eta; every client trains from
  /// the model `staleness` versions old. Returns |w_T - w*|.
  double Run(int rounds, int q, double eta, int staleness,
             uint64_t seed) const {
    Rng rng(seed);
    std::vector<double> history = {8.0};
    for (int t = 0; t < rounds; ++t) {
      const int base = std::max<int>(
          0, static_cast<int>(history.size()) - 1 - staleness);
      const double w_base = history[base];
      double delta = 0.0;
      for (double c : centers) {
        double w = w_base;
        for (int step = 0; step < q; ++step) {
          const double g = (w - c) + rng.Normal(0.0, noise_sigma);
          w -= eta * g;
        }
        delta += w - w_base;
      }
      history.push_back(history.back() + delta / centers.size());
    }
    return std::fabs(history.back() - Optimum());
  }
};

void RunProp1() {
  QuietLogs();
  PrintHeader("Proposition 1: convergence of asynchronous federated SGD "
              "on a strongly convex quadratic");
  QuadraticFed fed{{-2.0, -0.5, 1.0, 3.0}, 0.05};
  const int q = 4;
  const double eta = 0.05;

  std::printf("contraction check (staleness 0): error vs rounds, compared "
              "with the (1 - mu*Q*eta)^T prediction\n");
  Table contraction({"rounds T", "measured |w_T - w*|", "predicted factor",
                     "measured factor"});
  const double e0 = 8.0 - fed.Optimum();
  const double rate = std::pow(1.0 - q * eta, 1.0);  // per-round
  double prev = e0;
  for (int t : {5, 10, 15, 20}) {
    const double err = fed.Run(t, q, eta, 0, 42);
    contraction.Row()
        .Str(std::to_string(t))
        .Num(err, 5)
        .Num(std::pow(rate, 5), 4)
        .Num(err / prev, 4);
    prev = err;
  }
  contraction.Print();

  std::printf("\nstaleness sweep (error floor vs tau_max, T = 60):\n");
  Table staleness({"tau_max", "mean |w_T - w*| (10 seeds)"});
  for (int tau : {0, 1, 2, 4, 8}) {
    double total = 0.0;
    for (uint64_t seed = 0; seed < 10; ++seed) {
      total += fed.Run(60, q, eta, tau, 100 + seed);
    }
    staleness.Row().Int(tau).Num(total / 10.0, 5);
  }
  staleness.Print();
  std::printf(
      "\nPaper reference (Prop. 1): geometric contraction at rate "
      "(1 - mu*Q*eta) plus an additive floor that grows with "
      "(tau_max^2 + 1).\n");
}

}  // namespace
}  // namespace bench
}  // namespace fedscope

int main() { fedscope::bench::RunProp1(); }
