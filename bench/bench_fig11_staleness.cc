// Figure 11: staleness distribution of aggregated updates under the two
// broadcast manners. After-aggregating causes less staleness than
// after-receiving, at the cost of bursty server bandwidth (paper §5.3.1
// and Appendix I).

#include "bench/common.h"
#include "fedscope/util/stats.h"

namespace fedscope {
namespace bench {
namespace {

void RunFig11() {
  QuietLogs();
  PrintHeader("Figure 11: staleness distributions, CIFAR-10");
  Workload w = MakeCifarWorkload(0.5);
  w.max_rounds = 60;
  w.staleness_tolerance = 12;
  const uint64_t seed = 1111;
  const double budget = CalibrateTimeBudget(w, seed);

  Table table({"strategy", "mean staleness", "p50", "p90", "max",
               "frac stale(>0)"});
  for (const auto& strategy : Table1Strategies()) {
    if (strategy.name != "Goal-Aggr-Unif" &&
        strategy.name != "Goal-Rece-Unif" &&
        strategy.name != "Time-Aggr-Unif") {
      continue;
    }
    RunResult result = RunStrategy(w, strategy, seed, budget);
    std::vector<double> staleness;
    int64_t stale = 0;
    for (int s : result.server.staleness_log) {
      staleness.push_back(s);
      if (s > 0) ++stale;
    }
    if (staleness.empty()) continue;
    table.Row()
        .Str(strategy.name)
        .Num(Mean(staleness), 2)
        .Num(Quantile(staleness, 0.5), 1)
        .Num(Quantile(staleness, 0.9), 1)
        .Num(Quantile(staleness, 1.0), 0)
        .Num(static_cast<double>(stale) / staleness.size(), 3);

    Histogram hist(0.0, 13.0, 13);
    for (double s : staleness) hist.Add(s);
    std::printf("%s staleness histogram:\n%s\n", strategy.name.c_str(),
                hist.ToAscii(30).c_str());
  }
  table.Print();
  std::printf(
      "\nPaper reference (Fig. 11): after-aggregating (Goal-Aggr) "
      "concentrates staleness near 0; after-receiving (Goal-Rece) has a "
      "longer staleness tail.\n");
}

}  // namespace
}  // namespace bench
}  // namespace fedscope

int main() { fedscope::bench::RunFig11(); }
