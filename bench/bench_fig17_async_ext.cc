// Figure 17 (Appendix I): extended comparison of all asynchronous strategy
// combinations (event x broadcast-manner x sampler) across the three
// workloads — accuracy after a fixed virtual-time horizon. On unbiased
// data the sampling strategies perform similarly ("no free lunch",
// Appendix I); the bias-CIFAR case where they differ is bench_fig20.

#include "bench/common.h"

namespace fedscope {
namespace bench {
namespace {

std::vector<StrategySpec> ExtendedAsyncStrategies() {
  auto base = Table1Strategies();
  std::vector<StrategySpec> out;
  for (auto& s : base) {
    if (s.name.rfind("Sync", 0) == 0 && s.name != "Sync-vanilla") continue;
    out.push_back(s);
  }
  out.push_back({"Goal-Rece-Group",
                 [](ServerOptions* s, const Workload& w) {
                   s->strategy = Strategy::kAsyncGoal;
                   s->aggregation_goal = w.aggregation_goal;
                   s->broadcast = BroadcastManner::kAfterReceiving;
                   s->sampler = "group";
                   s->num_groups = 5;
                 }});
  out.push_back({"Goal-Aggr-Resp",
                 [](ServerOptions* s, const Workload& w) {
                   s->strategy = Strategy::kAsyncGoal;
                   s->aggregation_goal = w.aggregation_goal;
                   s->sampler = "responsiveness";
                 }});
  out.push_back({"Time-Rece-Unif",
                 [](ServerOptions* s, const Workload&) {
                   s->strategy = Strategy::kAsyncTime;
                   s->broadcast = BroadcastManner::kAfterReceiving;
                   s->min_received = 1;
                 }});
  return out;
}

/// Accuracy reached by each strategy within a fixed virtual-time horizon
/// (the curve endpoint comparison of Figure 17).
double AccuracyAtHorizon(const RunResult& result, double horizon_s) {
  double acc = 0.0;
  for (const auto& [t, a] : result.server.curve) {
    if (t <= horizon_s) acc = a;
  }
  return acc;
}

void RunFig17() {
  QuietLogs();
  PrintHeader(
      "Figure 17: accuracy within a fixed virtual-time horizon, all async "
      "strategies");
  std::vector<Workload> workloads = {MakeFemnistWorkload(),
                                     MakeCifarWorkload(0.5),
                                     MakeTwitterWorkload()};
  auto strategies = ExtendedAsyncStrategies();

  std::vector<std::string> header = {"strategy"};
  for (const auto& w : workloads) header.push_back(w.name);
  Table table(header);

  // Horizon: the virtual time Sync-vanilla needs for 1/3 of its rounds.
  std::vector<double> horizons;
  for (auto& w : workloads) {
    w.max_rounds = 60;
    RunResult sync = RunStrategy(w, strategies[0], 1717,
                                 CalibrateTimeBudget(w, 1717));
    horizons.push_back(sync.server.curve[sync.server.curve.size() / 3].first);
  }

  for (const auto& strategy : strategies) {
    std::vector<std::string> row = {strategy.name};
    for (size_t i = 0; i < workloads.size(); ++i) {
      Workload& w = workloads[i];
      RunResult result =
          RunStrategy(w, strategy, 1717, CalibrateTimeBudget(w, 1717));
      row.push_back(FormatDouble(AccuracyAtHorizon(result, horizons[i]), 4));
      std::fflush(stdout);
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nPaper reference (Fig. 17): every async strategy beats "
      "Sync-vanilla at any fixed horizon; the sampling strategies "
      "(uniform / responsiveness / group) are within noise of each other "
      "on unbiased data.\n");
}

}  // namespace
}  // namespace bench
}  // namespace fedscope

int main() { fedscope::bench::RunFig17(); }
