// Figure 20 (Appendix I): on bias-CIFAR — where rare classes live only on
// slow clients — responsiveness-related and group sampling noticeably beat
// uniform sampling, because uniform sampling lets the slow clients' staled
// (discounted/dropped) updates under-represent the rare classes.

#include "bench/common.h"
#include "fedscope/sim/device_profile.h"
#include "fedscope/util/stats.h"

namespace fedscope {
namespace bench {
namespace {

constexpr int kClients = 30;

struct BiasSetup {
  FedDataset data;
  std::vector<DeviceProfile> fleet;
  std::vector<int64_t> rare_classes;
};

BiasSetup MakeBiasSetup(uint64_t seed) {
  BiasSetup setup;
  Rng fleet_rng(seed);
  FleetOptions fleet_options;
  fleet_options.compute_median = 5.0;
  fleet_options.compute_sigma = 0.6;
  fleet_options.bandwidth_median = 5e4;
  fleet_options.bandwidth_sigma = 0.6;
  fleet_options.straggler_frac = 0.3;
  fleet_options.straggler_slowdown = 0.08;
  setup.fleet = MakeFleet(kClients, fleet_options, &fleet_rng);

  auto groups = GroupByResponsiveness(setup.fleet, 3);
  SyntheticCifarOptions options;
  options.num_clients = kClients;
  options.pool_size = 2400;
  options.alpha = 1.0;
  options.noise_sigma = 2.6;
  options.seed = seed;
  setup.rare_classes = {8, 9};
  setup.data =
      MakeBiasSyntheticCifar(options, setup.rare_classes, groups[2]);
  return setup;
}

/// Accuracy on the rare classes only (where the bias hurts).
double RareClassAccuracy(Model* model, const Dataset& test,
                         const std::vector<int64_t>& rare) {
  std::vector<int64_t> idx;
  for (int64_t i = 0; i < test.size(); ++i) {
    for (int64_t r : rare) {
      if (test.labels[i] == r) idx.push_back(i);
    }
  }
  if (idx.empty()) return 0.0;
  Dataset subset = test.Subset(idx);
  return EvaluateClassifier(model, subset).accuracy;
}

void RunFig20() {
  QuietLogs();
  PrintHeader(
      "Figure 20: sampling strategies on bias-CIFAR (rare classes on slow "
      "clients)");
  const uint64_t seed = 2020;
  BiasSetup setup = MakeBiasSetup(seed);

  Table table({"sampler", "overall acc", "rare-class acc"});
  for (const std::string sampler :
       {"uniform", "responsiveness_inv", "group"}) {
    FedJob job;
    job.data = &setup.data;
    Rng rng(seed + 1);
    job.init_model = WithFlatten(MakeMlp({3 * 8 * 8, 32, 10}, &rng));
    job.fleet = setup.fleet;
    job.client.train.lr = 0.08;
    job.client.train.local_steps = 4;
    job.client.train.batch_size = 16;
    job.client.jitter_sigma = 0.25;
    job.server.strategy = Strategy::kAsyncGoal;
    job.server.aggregation_goal = 4;
    job.server.concurrency = 10;
    job.server.staleness_tolerance = 2;
    job.server.max_rounds = 40;
    job.server.sampler = sampler;
    job.server.num_groups = 3;
    job.seed = seed;
    job.staleness_rho = 1.0;  // strong discount: staleness really hurts
    RunResult result = FedRunner(std::move(job)).Run();
    table.Row()
        .Str(sampler)
        .Num(result.server.final_accuracy, 4)
        .Num(RareClassAccuracy(&result.final_model,
                               setup.data.server_test, setup.rare_classes),
             4);
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nPaper reference (Fig. 20): on bias-CIFAR the responsiveness-"
      "related and group sampling strategies achieve noticeably better "
      "accuracy than uniform sampling (uniform under-weights the slow "
      "clients' rare classes).\n");
}

}  // namespace
}  // namespace bench
}  // namespace fedscope

int main() { fedscope::bench::RunFig20(); }
