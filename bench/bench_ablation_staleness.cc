// Ablation (DESIGN.md §5): the two staleness-handling knobs of the async
// aggregation path — the discount exponent rho in
// weight *= (1 + staleness)^(-rho) and the toleration threshold beyond
// which updates are dropped (§3.3.1-i). Sweeps each on the CIFAR workload
// under heavy staleness (small goal, large concurrency).

#include "bench/common.h"

namespace fedscope {
namespace bench {
namespace {

RunResult RunWith(const Workload& w, double rho, int tolerance,
                  uint64_t seed) {
  FedJob job;
  job.data = &w.data;
  job.init_model = w.model_factory(seed);
  job.client.train = w.train;
  job.client.jitter_sigma = 0.25;
  Rng fleet_rng(seed + 1000);
  FleetOptions fleet;
  fleet.compute_median = 5.0;
  fleet.bandwidth_median = 5e4;
  fleet.straggler_frac = 0.2;
  fleet.straggler_slowdown = 0.15;
  job.fleet = MakeFleet(w.data.num_clients(), fleet, &fleet_rng);
  job.server.strategy = Strategy::kAsyncGoal;
  job.server.aggregation_goal = 3;
  job.server.concurrency = 12;
  job.server.staleness_tolerance = tolerance;
  job.server.max_rounds = 60;
  job.staleness_rho = rho;
  job.seed = seed;
  return FedRunner(std::move(job)).Run();
}

void RunAblation() {
  QuietLogs();
  PrintHeader(
      "Ablation: staleness discount exponent (rho) and toleration "
      "threshold, async CIFAR-10 under heavy staleness");
  Workload w = MakeCifarWorkload(0.5, 7);
  const uint64_t seed = 777;

  std::printf("rho sweep (toleration fixed at 10):\n");
  Table rho_table({"rho", "final acc", "best acc", "stale contributions"});
  for (double rho : {0.0, 0.5, 1.0, 2.0}) {
    RunResult result = RunWith(w, rho, 10, seed);
    int64_t stale = 0;
    for (int s : result.server.staleness_log) {
      if (s > 0) ++stale;
    }
    rho_table.Row()
        .Num(rho, 1)
        .Num(result.server.final_accuracy, 4)
        .Num(result.server.best_accuracy, 4)
        .Int(stale);
  }
  rho_table.Print();

  std::printf("\ntoleration sweep (rho fixed at 0.5):\n");
  Table tol_table({"toleration", "final acc", "dropped updates",
                   "virtual time (min)"});
  for (int tolerance : {0, 2, 5, 10, 20}) {
    RunResult result = RunWith(w, 0.5, tolerance, seed);
    tol_table.Row()
        .Int(tolerance)
        .Num(result.server.final_accuracy, 4)
        .Int(result.server.dropped_stale)
        .Num(result.server.finish_time / 60.0, 1);
  }
  tol_table.Print();
  std::printf(
      "\nReading: at moderate staleness the toleration threshold is the "
      "bigger lever — toleration 0 (over-selection semantics) wastes the "
      "most work (dropped updates) and pays ~2x the virtual time; "
      "aggressive discounting (large rho) mainly slows learning by "
      "shrinking effective contributions.\n");
}

}  // namespace
}  // namespace bench
}  // namespace fedscope

int main() { fedscope::bench::RunAblation(); }
