// Figure 13: the privacy-utility trade-off of the DP behaviour plug-in,
// plus gradient-inversion (DLG/iDLG) attack outcomes with and without
// noise. As the fraction of noise-injecting clients grows, global accuracy
// decays gracefully; reconstruction succeeds against clean updates and
// fails against noised ones (paper §5.3.3).

#include "bench/common.h"
#include "fedscope/attack/gradient_inversion.h"
#include "fedscope/data/synthetic_femnist.h"
#include "fedscope/privacy/dp.h"

namespace fedscope {
namespace bench {
namespace {

FedDataset MakeData(uint64_t seed) {
  SyntheticFemnistOptions options;
  options.num_clients = 24;
  options.mean_samples = 60;
  options.noise_sigma = 2.0;
  options.seed = seed;
  return MakeSyntheticFemnist(options);
}

FedJob BaseJob(const FedDataset* data, uint64_t seed, double dp_fraction) {
  FedJob job;
  job.data = data;
  Rng rng(seed);
  job.init_model = WithFlatten(MakeMlp({64, 32, 10}, &rng));
  job.server.concurrency = 8;
  job.server.max_rounds = 30;
  job.client.train.lr = 0.1;
  job.client.train.local_steps = 4;
  job.client.train.batch_size = 8;
  job.client.jitter_sigma = 0.1;
  job.seed = seed;
  job.client_customizer = [dp_fraction](int id, ClientOptions* options) {
    // The first dp_fraction of clients opt into the DP plug-in.
    if (id <= dp_fraction * 24) {
      options->dp.enable = true;
      options->dp.clip_norm = 0.3;
      options->dp.noise_multiplier = 0.25;
    }
  };
  return job;
}

void UtilitySweep(const FedDataset& data, uint64_t seed) {
  Table table({"% clients with DP noise", "global test acc"});
  for (double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    RunResult result = FedRunner(BaseJob(&data, seed, frac)).Run();
    table.Row().Num(100.0 * frac, 0).Num(result.server.final_accuracy, 4);
  }
  table.Print();
  std::printf(
      "Paper reference: accuracy decreases gradually (84%% -> 65%% in the "
      "paper) as more clients inject noise.\n\n");
}

void AttackDemo(uint64_t seed) {
  std::printf(
      "DLG gradient-inversion attack on a single example "
      "(softmax-regression layer, lr 0.1, one local step):\n");
  Table table({"victim", "label inferred", "reconstruction MSE", "PSNR dB"});
  Rng rng(seed);
  Model model = MakeLogisticRegression(64, 10, &rng);
  Tensor secret = Tensor::Randn({1, 64}, &rng);
  const int64_t label = 7;
  StateDict grads = ObserveGradients(&model, secret, {label});

  {  // Clean victim: exact recovery.
    auto result = InvertSoftmaxRegression(grads);
    if (result.ok()) {
      table.Row()
          .Str("no noise")
          .Str(result->inferred_label == label ? "yes" : "NO")
          .Num(ReconstructionMse(secret.Reshape({64}),
                                 result->reconstructed_x),
               6)
          .Num(ReconstructionPsnr(secret.Reshape({64}),
                                  result->reconstructed_x),
               1);
    }
  }
  for (double z : {0.01, 0.1}) {  // DP-protected victims.
    StateDict noised = grads;
    // Configure the mechanism for per-coordinate noise sigma = z while
    // leaving the gradient unclipped (clip bound = its own norm).
    DpOptions dp;
    dp.enable = true;
    dp.clip_norm = std::max(SdNorm(noised), 1e-9);
    dp.noise_multiplier = z / dp.clip_norm;
    Rng noise_rng(seed + 1);
    ApplyDpToDelta(&noised, dp, &noise_rng);
    auto result = InvertSoftmaxRegression(noised);
    char victim[64];
    std::snprintf(victim, sizeof(victim), "noise sigma=%.2f", z);
    if (result.ok()) {
      table.Row()
          .Str(victim)
          .Str(result->inferred_label == label ? "yes" : "NO")
          .Num(ReconstructionMse(secret.Reshape({64}),
                                 result->reconstructed_x),
               6)
          .Num(ReconstructionPsnr(secret.Reshape({64}),
                                  result->reconstructed_x),
               1);
    } else {
      table.Row().Str(victim).Str("attack failed").Str("-").Str("-");
    }
  }
  table.Print();
  std::printf(
      "Paper reference (Fig. 13): reconstructions from clean clients "
      "expose the ground truth; reconstructions from noise-injecting "
      "clients carry no meaningful information.\n");
}

void RunFig13() {
  QuietLogs();
  PrintHeader("Figure 13: DP protection strength vs utility + DLG attack");
  const uint64_t seed = 1313;
  FedDataset data = MakeData(seed);
  UtilitySweep(data, seed);
  AttackDemo(seed);
}

}  // namespace
}  // namespace bench
}  // namespace fedscope

int main() { fedscope::bench::RunFig13(); }
