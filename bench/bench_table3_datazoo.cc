// Table 3 (Appendix C): statistics of the DataZoo datasets — regenerated
// by instantiating every synthetic dataset at its default scale and
// counting. (The paper's table lists the real datasets at full size; the
// synthetic stand-ins preserve structure at laptop scale, see DESIGN.md.)

#include "bench/common.h"
#include "fedscope/data/synthetic_celeba.h"
#include "fedscope/data/synthetic_shakespeare.h"

namespace fedscope {
namespace bench {
namespace {

int64_t TotalInstances(const FedDataset& data) {
  int64_t n = 0;
  for (const auto& client : data.clients) {
    n += client.train.size() + client.val.size() + client.test.size();
  }
  return n;
}

void AddRow(Table* table, const std::string& name, const std::string& task,
            const FedDataset& data) {
  int64_t min_size = INT64_MAX, max_size = 0;
  for (const auto& client : data.clients) {
    const int64_t size = client.train.size() + client.val.size() +
                         client.test.size();
    min_size = std::min(min_size, size);
    max_size = std::max(max_size, size);
  }
  char spread[32];
  std::snprintf(spread, sizeof(spread), "%lld-%lld",
                static_cast<long long>(min_size),
                static_cast<long long>(max_size));
  table->Row()
      .Str(name)
      .Str(task)
      .Int(TotalInstances(data))
      .Int(data.num_clients())
      .Str(spread);
}

void RunTable3() {
  PrintHeader("Table 3: DataZoo statistics (synthetic stand-ins, "
              "default scales)");
  Table table({"dataset", "task", "instances", "clients",
               "client size range"});
  AddRow(&table, "FEMNIST (synthetic)", "image classification",
         MakeSyntheticFemnist({}));
  AddRow(&table, "CelebA (synthetic)", "attribute classification",
         MakeSyntheticCeleba({}));
  AddRow(&table, "CIFAR-10 (synthetic)", "image classification",
         MakeSyntheticCifar({}));
  AddRow(&table, "Shakespeare (synthetic)", "next-char prediction",
         MakeSyntheticShakespeare({}));
  AddRow(&table, "Twitter (synthetic)", "sentiment analysis",
         MakeSyntheticTwitter({}));
  table.Print();
  std::printf(
      "\nPaper reference (Table 3): ten datasets spanning 60k-56M "
      "instances and 7-1.66M clients; the stand-ins keep the partition "
      "structure (per-writer / per-identity / Dirichlet / per-role / "
      "per-user) at laptop scale.\n");
}

}  // namespace
}  // namespace bench
}  // namespace fedscope

int main() { fedscope::bench::RunTable3(); }
