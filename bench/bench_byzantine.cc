// Byzantine tolerance (DESIGN.md §14): best test accuracy when a fraction
// of the fleet attacks, for plain FedAvg and the robust aggregation rules
// (Krum, trimmed mean, coordinate median), plus the ingress guard's
// rescue of non-finite poison. Two attack surfaces, measured separately
// because they are countered by different mechanisms:
//
// * scale(-10) — the hostile delta is the honest one negated and
//   amplified (a model-replacement-style attack). It is finite and
//   shape-correct, so a guard with no norm bound cannot see it (an
//   operator-configured L2 bound would; this table runs guard-off to
//   isolate the aggregation rule). One such update dominates a weighted
//   average, so plain FedAvg collapses at any hostile fraction, while
//   the selection/truncation rules hold until their breakdown point.
// * nan — trivially fatal to any averaging rule, but caught by the
//   guard's finiteness screen; the second table shows unguarded FedAvg
//   destroyed and the guarded run finishing with the poison rejected and
//   the attackers quarantined.
//
//   bench_byzantine [--out=BENCH_byzantine.json] [--smoke]
//
// --smoke shrinks to {0%, 30%} x {FedAvg, Median} and 15 rounds for the
// CI byzantine-smoke job.
//
// Truthfulness notes:
// * Hostile draws are per-update (hostile_prob = 1), so the attacked
//   fraction of each cohort fluctuates round to round around the fleet
//   fraction; Krum's f and the trimmed-mean fraction are provisioned for
//   the expected cohort fraction plus slack, as a deployment would.
// * The workload runs milder user skew (style 0.3) and denser local
//   updates (8 steps, batch 8) than the Table 1 Twitter recipe: with the
//   original highly non-IID sparse deltas, the coordinate median zeroes
//   most coordinates and every rule (robust or not) sits near chance —
//   measured, not hidden; see EXPERIMENTS.md.
// * Cells report best accuracy over the course; a "model=nan" cell means
//   the shared model itself went non-finite.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.h"

namespace fedscope {
namespace bench {
namespace {

struct Args {
  std::string out = "BENCH_byzantine.json";
  bool smoke = false;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--out=";
    if (arg.rfind(prefix, 0) == 0) {
      args->out = arg.substr(prefix.size());
    } else if (arg == "--smoke") {
      args->smoke = true;
    } else {
      std::fprintf(stderr, "usage: bench_byzantine [--out=FILE] [--smoke]\n");
      return false;
    }
  }
  return true;
}

struct AggregatorSpec {
  std::string name;
  /// Builds the rule provisioned for `hostile_frac` of a `concurrency`
  /// cohort attacking.
  std::function<std::unique_ptr<Aggregator>(double, int)> make;
};

std::vector<AggregatorSpec> Aggregators(bool smoke) {
  std::vector<AggregatorSpec> all = {
      {"FedAvg",
       [](double, int) { return std::make_unique<FedAvgAggregator>(); }},
      {"Krum",
       [](double frac, int concurrency) {
         const int f = std::max(
             1, static_cast<int>(std::lround(frac * concurrency)) + 1);
         const int multi_k = std::max(1, concurrency - f - 2);
         return std::make_unique<KrumAggregator>(f, multi_k);
       }},
      {"TrimmedMean",
       [](double frac, int) {
         return std::make_unique<TrimmedMeanAggregator>(
             std::min(0.45, frac + 0.1));
       }},
      {"Median",
       [](double, int) { return std::make_unique<MedianAggregator>(); }},
  };
  if (!smoke) return all;
  return {all[0], all[3]};
}

bool ModelFinite(Model* model) {
  for (const auto& [name, t] : model->GetStateDict()) {
    for (int64_t i = 0; i < t.numel(); ++i) {
      if (!std::isfinite(t.at(i))) return false;
    }
  }
  return true;
}

struct CellResult {
  double best_accuracy = 0.0;
  bool model_finite = true;
  int64_t rejected = 0;
  int64_t quarantined = 0;
  bool aborted = false;
};

CellResult RunCell(const Workload& w, const AggregatorSpec& agg,
                   double hostile_frac, const std::string& mode,
                   bool guard, uint64_t seed, int max_rounds) {
  FedJob job;
  job.data = &w.data;
  job.init_model = w.model_factory(seed);
  job.client.train = w.train;
  job.server.concurrency = w.concurrency;
  job.server.max_rounds = max_rounds;
  job.server.strategy = Strategy::kSyncVanilla;
  job.seed = seed;
  const double frac = hostile_frac;
  const int concurrency = w.concurrency;
  job.aggregator_factory = [&agg, frac, concurrency] {
    return agg.make(frac, concurrency);
  };
  if (hostile_frac > 0.0) {
    job.fault.hostile_frac = hostile_frac;
    job.fault.hostile_mode = mode;
    job.fault.hostile_prob = 1.0;
    // Negated + amplified honest update: the model-replacement direction.
    if (mode == "scale") job.fault.hostile_scale = -10.0;
    job.fault.seed = seed + 13;
  }
  if (guard) {
    job.server.guard.enabled = true;
    job.server.guard.quarantine_after = 1;
    job.server.receive_deadline = 120.0;  // replace starved cohort slots
  }
  RunResult result = FedRunner(std::move(job)).Run();
  CellResult cell;
  cell.best_accuracy = result.server.best_accuracy;
  cell.model_finite = ModelFinite(&result.final_model);
  cell.rejected = result.server.updates_rejected;
  cell.quarantined = static_cast<int64_t>(result.server.quarantined.size());
  cell.aborted = result.server.aborted;
  return cell;
}

std::string FormatCell(const CellResult& cell) {
  char buf[96];
  if (!cell.model_finite) {
    std::snprintf(buf, sizeof(buf), "acc=%.2f model=nan",
                  cell.best_accuracy);
  } else if (cell.rejected > 0 || cell.quarantined > 0) {
    std::snprintf(buf, sizeof(buf), "acc=%.2f (rej=%lld quar=%lld)",
                  cell.best_accuracy,
                  static_cast<long long>(cell.rejected),
                  static_cast<long long>(cell.quarantined));
  } else {
    std::snprintf(buf, sizeof(buf), "acc=%.2f%s", cell.best_accuracy,
                  cell.aborted ? " aborted" : "");
  }
  return buf;
}

int Main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;
  QuietLogs();
  PrintHeader(
      "Byzantine tolerance: best accuracy under hostile clients, robust "
      "aggregation rules vs the ingress guard (DESIGN.md §14)");

  const uint64_t seed = 777;
  const int max_rounds = args.smoke ? 15 : 60;
  const std::vector<double> rates =
      args.smoke ? std::vector<double>{0.0, 0.3}
                 : std::vector<double>{0.0, 0.1, 0.3};

  Workload w = MakeTwitterWorkload();
  {
    // Milder skew + denser local updates than the Table 1 recipe (see the
    // truthfulness notes in the file header).
    SyntheticTwitterOptions options;
    options.num_clients = 80;
    options.vocab = 60;
    options.user_style_strength = 0.3;
    options.words_per_text = 10;
    options.seed = 3;
    w.data = MakeSyntheticTwitter(options);
    w.train.local_steps = 8;
    w.train.batch_size = 8;
  }
  std::printf(
      "workload=%s fleet=%d concurrency=%d rounds=%d attack=scale(-10) "
      "(finite, shape-correct: invisible to a guard with no norm bound)\n",
      w.name.c_str(), w.data.num_clients(), w.concurrency, max_rounds);

  std::string json = "{\n  \"schema\": 1,\n";
  json += "  \"workload\": \"" + w.name + "\",\n";
  json += "  \"rounds\": " + std::to_string(max_rounds) + ",\n";
  json += "  \"note\": \"best test accuracy; scale(-10) table runs guard "
          "off to isolate the aggregation rule, nan table compares "
          "guard off/on under FedAvg\",\n";

  // -- Table 1: aggregation-rule robustness under sign_flip, guard off ----
  std::vector<std::string> header = {"Aggregator"};
  for (double rate : rates) {
    char label[32];
    std::snprintf(label, sizeof(label), "%.0f%% hostile", 100.0 * rate);
    header.push_back(label);
  }
  Table table(header);
  json += "  \"scale_minus10\": {\n";
  const auto aggregators = Aggregators(args.smoke);
  for (size_t ai = 0; ai < aggregators.size(); ++ai) {
    const auto& agg = aggregators[ai];
    std::vector<std::string> row = {agg.name};
    json += "    \"" + agg.name + "\": {";
    for (size_t ri = 0; ri < rates.size(); ++ri) {
      const CellResult cell = RunCell(w, agg, rates[ri], "scale",
                                      /*guard=*/false, seed, max_rounds);
      row.push_back(FormatCell(cell));
      char entry[96];
      std::snprintf(entry, sizeof(entry),
                    "%s\"%.0f%%\": {\"best_acc\": %.4f, "
                    "\"model_finite\": %s}",
                    ri == 0 ? "" : ", ", 100.0 * rates[ri],
                    cell.best_accuracy, cell.model_finite ? "true" : "false");
      json += entry;
      std::fflush(stdout);
    }
    json += ai + 1 < aggregators.size() ? "},\n" : "}\n";
    table.AddRow(row);
  }
  json += "  },\n";
  table.Print();

  // -- Table 2: guard rescue of non-finite poison under plain FedAvg ------
  std::printf(
      "\nattack=nan (one poisoned update destroys any averaging rule; the "
      "ingress guard rejects it and quarantines the sender)\n");
  const AggregatorSpec fedavg = Aggregators(false)[0];
  const double nan_rate = args.smoke ? 0.3 : 0.1;
  Table guard_table({"Config", "Result"});
  json += "  \"nan_fedavg\": {\n";
  const CellResult unguarded = RunCell(w, fedavg, nan_rate, "nan",
                                       /*guard=*/false, seed, max_rounds);
  const CellResult guarded = RunCell(w, fedavg, nan_rate, "nan",
                                     /*guard=*/true, seed, max_rounds);
  char rate_label[48];
  std::snprintf(rate_label, sizeof(rate_label), "FedAvg %.0f%% nan, guard",
                100.0 * nan_rate);
  guard_table.AddRow({std::string(rate_label) + " off",
                      FormatCell(unguarded)});
  guard_table.AddRow({std::string(rate_label) + " on", FormatCell(guarded)});
  char guard_json[256];
  std::snprintf(guard_json, sizeof(guard_json),
                "    \"hostile_frac\": %.2f,\n"
                "    \"guard_off\": {\"best_acc\": %.4f, \"model_finite\": "
                "%s},\n"
                "    \"guard_on\": {\"best_acc\": %.4f, \"model_finite\": "
                "%s, \"rejected\": %lld, \"quarantined\": %lld}\n",
                nan_rate, unguarded.best_accuracy,
                unguarded.model_finite ? "true" : "false",
                guarded.best_accuracy,
                guarded.model_finite ? "true" : "false",
                static_cast<long long>(guarded.rejected),
                static_cast<long long>(guarded.quarantined));
  json += guard_json;
  json += "  }\n}\n";
  guard_table.Print();

  std::printf(
      "\nReading: one negated-amplified update dominates a weighted "
      "average, so plain FedAvg collapses to chance at every hostile "
      "fraction, while the selection/truncation rules hold near their "
      "benign accuracy until their breakdown point (Krum's f / the trim "
      "fraction); the robust rules also pay a small benign-accuracy tax. "
      "The guard is orthogonal: it cannot see a finite, shape-correct lie "
      "without a norm bound, but it stops every non-finite or malformed "
      "payload before aggregation — with it, even plain FedAvg survives "
      "NaN poison that would otherwise zero the course.\n");

  // The guard must have rescued the model and the unguarded run must show
  // the damage, or the bench's thesis is wrong — fail loudly rather than
  // print a misleading table.
  if (!guarded.model_finite || guarded.rejected == 0) {
    std::printf("\nFAIL: guarded run did not screen the poison\n");
    return 1;
  }
  if (unguarded.model_finite) {
    std::printf("\nFAIL: unguarded NaN control unexpectedly survived\n");
    return 1;
  }

  if (!args.out.empty()) {
    std::ofstream out(args.out);
    out << json;
    std::printf("wrote %s\n", args.out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace fedscope

int main(int argc, char** argv) { return fedscope::bench::Main(argc, argv); }
