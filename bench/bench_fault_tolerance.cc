// Fault tolerance: virtual time (hours) to reach the target test accuracy
// when a fraction of the fleet silently drops out after joining, for a
// synchronous strategy rescued by the receive deadline, over-selection,
// and goal-based async aggregation. The paper's §3.3 position is that
// asynchronous condition events tolerate unreliable participants by
// construction; this bench quantifies how much each strategy degrades and
// how much repair work (presumed-dead dropouts, replacement sampling) the
// server's graceful-degradation path performs, read back from the obs
// course log.

#include "bench/common.h"
#include "fedscope/obs/course_log.h"

namespace fedscope {
namespace bench {
namespace {

/// Mirrors RunStrategy's edge-device fleet so results are comparable with
/// the other benches, but exposes the fault plan and deadline knobs that
/// RunStrategy does not.
FedJob BuildJob(const Workload& w, uint64_t seed) {
  FedJob job;
  job.data = &w.data;
  job.init_model = w.model_factory(seed);
  job.client.train = w.train;
  job.client.jitter_sigma = 0.25;
  Rng fleet_rng(seed + 1000);
  FleetOptions fleet = w.fleet;
  fleet.compute_median = 5.0;
  fleet.compute_sigma = 0.6;
  fleet.bandwidth_median = 5e4;
  fleet.bandwidth_sigma = 0.6;
  fleet.straggler_frac = 0.1;
  fleet.straggler_slowdown = 0.3;
  job.fleet = MakeFleet(w.data.num_clients(), fleet, &fleet_rng);
  job.server.concurrency = w.concurrency;
  job.server.aggregation_goal = w.aggregation_goal;
  job.server.staleness_tolerance = w.staleness_tolerance;
  job.server.max_rounds = w.max_rounds;
  job.server.target_accuracy = w.target_accuracy;
  job.seed = seed;
  return job;
}

struct FaultStrategy {
  std::string name;
  /// Sync strategies need the receive deadline to survive dropouts; the
  /// goal strategy's trigger never waits for a fixed cohort.
  bool wants_deadline;
  std::function<void(ServerOptions*, const Workload&)> apply;
};

std::vector<FaultStrategy> Strategies() {
  return {
      {"Sync-vanilla", true,
       [](ServerOptions* s, const Workload& w) {
         s->strategy = Strategy::kSyncVanilla;
         // Full-cohort bar: any dropped member forces the deadline's
         // presume-dead-and-replace path rather than a quiet partial
         // aggregation, so the repair work is visible in the counters.
         s->min_received = w.concurrency;
       }},
      {"Sync-OS", true,
       [](ServerOptions* s, const Workload& w) {
         s->strategy = Strategy::kSyncOverselect;
         s->overselect_frac = 0.3;
         s->staleness_tolerance = 0;
         s->min_received = w.concurrency;
       }},
      {"Goal-Aggr", false,
       [](ServerOptions* s, const Workload& w) {
         s->strategy = Strategy::kAsyncGoal;
         s->aggregation_goal = w.aggregation_goal;
         s->broadcast = BroadcastManner::kAfterAggregating;
       }},
  };
}

/// Target every strategy can reach when nothing fails: a fraction of the
/// fault-free Sync-vanilla plateau (same recipe as Table 1).
double CalibrateTarget(const Workload& w, uint64_t seed) {
  Workload probe = w;
  probe.target_accuracy = 0.0;
  FedJob job = BuildJob(probe, seed);
  job.server.strategy = Strategy::kSyncVanilla;
  RunResult result = FedRunner(std::move(job)).Run();
  return 0.92 * result.server.best_accuracy;
}

/// Mean fault-free synchronous round time; the receive deadline is set to
/// a multiple of this so a healthy round never trips it but a starved one
/// is repaired within a couple of round-lengths.
double CalibrateSyncRoundTime(const Workload& w, uint64_t seed) {
  Workload probe = w;
  probe.target_accuracy = 0.0;
  probe.max_rounds = 15;
  FedJob job = BuildJob(probe, seed);
  job.server.strategy = Strategy::kSyncVanilla;
  RunResult result = FedRunner(std::move(job)).Run();
  if (result.server.rounds == 0) return 60.0;
  return result.server.finish_time / result.server.rounds;
}

void RunFaultTolerance() {
  QuietLogs();
  PrintHeader(
      "Fault tolerance: virtual hours to target accuracy under client "
      "dropout (presumed-dead / replacements from the obs course log)");

  const uint64_t seed = 4242;
  const std::vector<double> dropout_rates = {0.0, 0.1, 0.3};

  Workload w = MakeTwitterWorkload();
  w.target_accuracy = CalibrateTarget(w, seed);
  const double deadline = 2.0 * CalibrateSyncRoundTime(w, seed);
  std::printf(
      "workload=%s target=%.0f%% fleet=%d concurrency=%d "
      "receive_deadline=%.0fs (2x fault-free sync round)\n",
      w.name.c_str(), 100.0 * w.target_accuracy, w.data.num_clients(),
      w.concurrency, deadline);

  std::vector<std::string> header = {"Strategy"};
  for (double rate : dropout_rates) {
    char label[32];
    std::snprintf(label, sizeof(label), "%.0f%% dropout", 100.0 * rate);
    header.push_back(label);
  }
  Table table(header);

  for (const auto& strategy : Strategies()) {
    std::vector<std::string> row = {strategy.name};
    for (double rate : dropout_rates) {
      CourseLog course_log;
      FedJob job = BuildJob(w, seed);
      job.fault.dropout_frac = rate;
      job.fault.seed = seed + 7;
      job.obs.course_log = &course_log;
      strategy.apply(&job.server, w);
      if (strategy.wants_deadline) job.server.receive_deadline = deadline;
      RunResult result = FedRunner(std::move(job)).Run();

      int64_t dropouts = 0;
      int64_t replacements = 0;
      for (const auto& record : course_log.rounds()) {
        dropouts += record.dropouts;
        replacements += record.replacements;
      }
      char cell[96];
      if (result.server.reached_target) {
        std::snprintf(cell, sizeof(cell), "%.3fh (dead=%lld repl=%lld)",
                      SecondsToHours(result.server.time_to_target),
                      static_cast<long long>(dropouts),
                      static_cast<long long>(replacements));
      } else {
        std::snprintf(cell, sizeof(cell),
                      "DNF acc=%.2f r=%d%s (dead=%lld repl=%lld)",
                      result.server.best_accuracy, result.server.rounds,
                      result.server.aborted ? " aborted" : "",
                      static_cast<long long>(dropouts),
                      static_cast<long long>(replacements));
      }
      row.push_back(cell);
      std::fflush(stdout);
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nReading: the deadline makes sync strategies pay for dropouts with "
      "deadline-length round extensions but always finish; over-selection "
      "absorbs small dropout fractions with no repair at all. Goal-based "
      "async is fastest while the fleet is mostly healthy, but it has no "
      "repair path: every dead client sampled silently occupies a cohort "
      "slot, and once too few live clients are in flight the goal becomes "
      "unreachable and the course stalls (DNF). Counts are presumed-dead "
      "slot evictions, not unique clients.\n");
}

}  // namespace
}  // namespace bench
}  // namespace fedscope

int main() { fedscope::bench::RunFaultTolerance(); }
