// Cross-device scale with client virtualization (DESIGN.md §13): one
// course per population size at 1k / 10k / 100k / 1M descriptor-only
// participants, cohort fixed at 32. Reports time per round (by
// differencing a 1-round and a 101-round run, which cancels the
// O(population) join flood both runs pay at course start; an untimed
// warm-up run first absorbs the allocator/page-fault noise that would
// otherwise swamp the sub-millisecond round signal) and the process peak
// RSS after each population's runs.
//
//   bench_scale [--out=BENCH_scale.json] [--smoke]
//
// --smoke shrinks to 1k/10k for the CI scale-smoke job.
//
// Truthfulness notes:
// * peak_rss_kb is the process-wide VmHWM high-water mark sampled after
//   each population's runs. It is monotone across the curve; populations
//   run in ascending order so each reading is dominated by its own
//   stage, but it is a ceiling, not an isolated measurement. -1 means
//   /proc/self/status was unavailable.
// * The memory proof is the live-client counter, not RSS: peak live
//   Clients must stay within the cache capacity + 1 (the pre-Trim
//   transient) at every population, or the bench fails.
// * At the smallest population the virtualized run is verified
//   bit-identical to an eagerly instantiated run of the same course
//   (oracle 12's differential); the larger populations are too big to
//   instantiate eagerly — which is the point.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "fedscope/data/client_data_provider.h"

namespace fedscope {
namespace bench {
namespace {

struct Args {
  std::string out;
  bool smoke = false;
};

constexpr int kConcurrency = 32;
constexpr int kFeatures = 16;
constexpr int kClasses = 4;
/// Rounds the per-round diff is averaged over (101-round run vs 1-round).
constexpr int kDiffRounds = 100;

/// Process peak resident set (VmHWM) in kB; -1 when unavailable.
int64_t PeakRssKb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::istringstream fields(line.substr(6));
      int64_t kb = -1;
      fields >> kb;
      return kb;
    }
  }
  return -1;
}

ProceduralDataOptions MakeDataOptions(int population) {
  ProceduralDataOptions options;
  options.num_clients = population;
  options.features = kFeatures;
  options.classes = kClasses;
  options.train_per_client = 16;
  options.val_per_client = 4;
  options.test_per_client = 4;
  options.server_test_examples = 64;
  options.seed = 11;
  return options;
}

FedJob MakeJob(const ClientDataProvider* provider, int rounds) {
  FedJob job;
  job.virtualize = true;
  job.provider = provider;
  Rng rng(21);
  job.init_model = MakeLogisticRegression(kFeatures, kClasses, &rng);
  job.client.train.lr = 0.1;
  job.client.train.local_steps = 1;
  job.client.train.batch_size = 8;
  job.client.jitter_sigma = 0.0;
  job.server.concurrency = kConcurrency;
  job.server.max_rounds = rounds;
  // The end-of-course deployment eval is O(population) by definition
  // (every participant evaluates the final model) — exactly what a
  // cross-device course cannot afford. Off, as a real deployment would
  // sample it.
  job.deploy_eval = false;
  job.seed = 21;
  return job;
}

struct Sample {
  double wall_ms = 0.0;
  RunResult result;
  ClientCacheStats cache;
};

Sample TimeRun(const ClientDataProvider* provider, int rounds) {
  const auto start = std::chrono::steady_clock::now();
  Sample s;
  FedRunner runner(MakeJob(provider, rounds));
  s.result = runner.Run();
  s.cache = runner.client_cache()->stats();
  const auto end = std::chrono::steady_clock::now();
  s.wall_ms = std::chrono::duration<double, std::milli>(end - start).count();
  return s;
}

/// Eager twin of the virtualized course (EagerDataProvider materializes
/// the identical partitions), for the smallest-population identity check.
RunResult RunEager(const ProceduralDataOptions& data_options, int rounds) {
  const ProceduralDataProvider provider(data_options);
  FedDataset data;
  data.clients.reserve(data_options.num_clients);
  for (int id = 1; id <= data_options.num_clients; ++id) {
    data.clients.push_back(provider.MaterializeClient(id));
  }
  data.server_test = provider.server_test();
  FedJob job = MakeJob(nullptr, rounds);
  job.virtualize = false;
  job.provider = nullptr;
  job.data = &data;
  return FedRunner(std::move(job)).Run();
}

bool BitIdentical(RunResult& a, RunResult& b) {  // GetStateDict is non-const
  return a.final_model.GetStateDict() == b.final_model.GetStateDict() &&
         a.server.curve == b.server.curve &&
         a.server.rounds == b.server.rounds;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      args->out = arg.substr(6);
    } else if (arg == "--smoke") {
      args->smoke = true;
    } else {
      std::fprintf(stderr, "usage: bench_scale [--out=FILE] [--smoke]\n");
      return false;
    }
  }
  return true;
}

int Main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;
  Logging::set_min_level(LogLevel::kWarning);

  const std::vector<int> populations =
      args.smoke ? std::vector<int>{1000, 10000}
                 : std::vector<int>{1000, 10000, 100000, 1000000};

  std::printf("bench_scale: client virtualization at cross-device scale\n");
  std::printf(
      "cohort %d per round; populations exist as descriptors and are\n"
      "instantiated only when sampled (DESIGN.md §13).\n\n",
      kConcurrency);

  Table table({"population", "ms/round", "join+setup ms", "peak live",
               "instantiated", "evicted", "peak RSS MB"});
  std::string json = "{\n  \"schema\": 1,\n  \"time_unit\": \"ms\",\n";
  json +=
      "  \"note\": \"virtualized standalone courses, cohort 32, logreg on "
      "procedural data; ms_per_round = (wall_101_rounds - wall_1_round) / 100 "
      "after an untimed warm-up run, which cancels the O(population) join "
      "flood; join_setup_ms is the "
      "1-round wall clock (join flood + 1 round). peak_rss_kb is the "
      "process-wide VmHWM sampled after each population, monotone across "
      "the ascending curve (-1 = unavailable). peak_live_clients counts "
      "concurrently instantiated Clients and must stay within "
      "cache_capacity + 1 regardless of population.\",\n";
  json += "  \"host\": {\n    \"num_cpus\": " +
          std::to_string(std::thread::hardware_concurrency()) + "\n  },\n";
  json += "  \"populations\": {\n";

  bool ok = true;
  bool identity_checked = false;
  bool identity_ok = false;
  for (size_t pi = 0; pi < populations.size(); ++pi) {
    const int population = populations[pi];
    const ProceduralDataOptions data_options = MakeDataOptions(population);
    const ProceduralDataProvider provider(data_options);

    TimeRun(&provider, 1);  // untimed warm-up: heap + page-fault noise
    Sample one = TimeRun(&provider, 1);
    Sample many = TimeRun(&provider, 1 + kDiffRounds);
    const double per_round = (many.wall_ms - one.wall_ms) / kDiffRounds;
    const int64_t rss_kb = PeakRssKb();

    // The memory bound this bench exists to prove.
    const int capacity = kConcurrency + 2;  // FedRunner's auto bound
    if (many.cache.live_peak > capacity + 1) {
      std::printf("FAIL: population %d peaked at %lld live clients "
                  "(bound %d)\n",
                  population, static_cast<long long>(many.cache.live_peak),
                  capacity + 1);
      ok = false;
    }

    // Eager-vs-virtualized identity at the smallest population only (the
    // eager twin must actually fit).
    if (pi == 0) {
      Sample virt = TimeRun(&provider, 4);
      RunResult eager = RunEager(data_options, 4);
      identity_ok = BitIdentical(eager, virt.result);
      identity_checked = true;
      ok = ok && identity_ok;
    }

    table.Row()
        .Int(population)
        .Num(per_round, 2)
        .Num(one.wall_ms, 1)
        .Int(static_cast<int>(many.cache.live_peak))
        .Int(static_cast<int>(many.cache.instantiations))
        .Int(static_cast<int>(many.cache.evictions))
        .Num(rss_kb >= 0 ? rss_kb / 1024.0 : -1.0, 1);

    json += "    \"" + std::to_string(population) + "\": {\n";
    json += "      \"ms_per_round\": " + std::to_string(per_round) + ",\n";
    json += "      \"join_setup_ms\": " + std::to_string(one.wall_ms) + ",\n";
    json += "      \"wall_ms_1_round\": " + std::to_string(one.wall_ms) +
            ",\n";
    json += "      \"wall_ms_101_rounds\": " + std::to_string(many.wall_ms) +
            ",\n";
    json += "      \"peak_live_clients\": " +
            std::to_string(many.cache.live_peak) + ",\n";
    json += "      \"cache_capacity\": " + std::to_string(capacity) + ",\n";
    json += "      \"instantiations\": " +
            std::to_string(many.cache.instantiations) + ",\n";
    json += "      \"restores\": " + std::to_string(many.cache.restores) +
            ",\n";
    json += "      \"evictions\": " + std::to_string(many.cache.evictions) +
            ",\n";
    json += "      \"peak_rss_kb\": " + std::to_string(rss_kb) + "\n";
    json += "    }";
    json += pi + 1 < populations.size() ? ",\n" : "\n";
  }
  json += "  },\n  \"eager_bit_identical_at_smallest\": ";
  json += identity_checked ? (identity_ok ? "true" : "false") : "null";
  json += "\n}\n";

  table.Print();
  if (identity_checked) {
    std::printf("\neager-vs-virtualized identity at %d clients: %s\n",
                populations[0], identity_ok ? "bit-identical" : "DIVERGED");
  }
  if (!ok) return 1;

  if (!args.out.empty()) {
    std::ofstream out(args.out);
    out << json;
    std::printf("wrote %s\n", args.out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace fedscope

int main(int argc, char** argv) { return fedscope::bench::Main(argc, argv); }
