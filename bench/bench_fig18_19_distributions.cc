// Figures 18 & 19 (Appendix I): per-responsiveness-cluster class
// distributions. On ordinary CIFAR the data distribution is independent of
// device speed (similar rows); on bias-CIFAR the rare classes live only on
// the slow clients (bottom rows own classes 8/9 exclusively).

#include "bench/common.h"
#include "fedscope/data/partition.h"

namespace fedscope {
namespace bench {
namespace {

constexpr int kClients = 30;
constexpr int kGroups = 3;

/// Prints per-speed-cluster class fractions for a federated dataset.
void PrintClusterDistributions(const std::string& title,
                               const FedDataset& data,
                               const std::vector<DeviceProfile>& fleet) {
  auto groups = GroupByResponsiveness(fleet, kGroups);
  std::printf("%s\n", title.c_str());
  Table table({"speed cluster", "c0", "c1", "c2", "c3", "c4", "c5", "c6",
               "c7", "c8", "c9"});
  const char* names[] = {"fast", "medium", "slow"};
  for (int g = 0; g < kGroups; ++g) {
    std::vector<int64_t> counts(10, 0);
    int64_t total = 0;
    for (int idx : groups[g]) {
      const auto& client = data.clients[idx];
      for (const Dataset* part :
           {&client.train, &client.val, &client.test}) {
        for (int64_t y : part->labels) {
          ++counts[y];
          ++total;
        }
      }
    }
    std::vector<std::string> row = {names[g]};
    for (int c = 0; c < 10; ++c) {
      row.push_back(FormatDouble(
          total > 0 ? static_cast<double>(counts[c]) / total : 0.0, 3));
    }
    table.AddRow(row);
  }
  table.Print();
}

void RunFig1819() {
  QuietLogs();
  PrintHeader(
      "Figures 18/19: class distribution by responsiveness cluster");
  const uint64_t seed = 1819;
  Rng fleet_rng(seed);
  FleetOptions fleet_options;
  fleet_options.straggler_frac = 0.2;
  auto fleet = MakeFleet(kClients, fleet_options, &fleet_rng);

  SyntheticCifarOptions options;
  options.num_clients = kClients;
  options.pool_size = 3000;
  options.alpha = 1.0;
  options.seed = seed;

  PrintClusterDistributions(
      "\nFigure 18 - CIFAR-10 (data independent of device speed):",
      MakeSyntheticCifar(options), fleet);

  // bias-CIFAR: classes 8 and 9 exist only on the slowest cluster.
  auto groups = GroupByResponsiveness(fleet, kGroups);
  PrintClusterDistributions(
      "\nFigure 19 - bias-CIFAR (rare classes 8/9 only on slow clients):",
      MakeBiasSyntheticCifar(options, {8, 9}, groups[kGroups - 1]), fleet);

  std::printf(
      "\nPaper reference: Fig. 18 rows are near-identical across "
      "clusters; Fig. 19's slow cluster exclusively holds the rare "
      "classes.\n");
}

}  // namespace
}  // namespace bench
}  // namespace fedscope

int main() { fedscope::bench::RunFig1819(); }
