// Figure 9: test accuracy vs virtual time, synchronous vs asynchronous
// strategies on the CIFAR-10 workload. The async curves dominate the sync
// curves for most of the training horizon (paper §5.3.1).

#include "bench/common.h"

namespace fedscope {
namespace bench {
namespace {

void PrintCurve(const std::string& name, const RunResult& result) {
  std::printf("series %s\n", name.c_str());
  std::printf("  t_hours, accuracy\n");
  for (const auto& [t, acc] : result.server.curve) {
    std::printf("  %.4f, %.4f\n", SecondsToHours(t), acc);
  }
}

void RunFig9() {
  QuietLogs();
  PrintHeader("Figure 9: learning curves (accuracy vs virtual hours), "
              "CIFAR-10");
  Workload w = MakeCifarWorkload(0.5);
  w.max_rounds = 60;
  const uint64_t seed = 909;
  const double budget = CalibrateTimeBudget(w, seed);

  std::vector<std::string> names = {"Sync-vanilla", "Sync-OS",
                                    "Goal-Aggr-Unif", "Goal-Rece-Unif"};
  double sync_halfway_time = 0.0, async_halfway_time = 0.0;
  for (const auto& strategy : Table1Strategies()) {
    bool wanted = false;
    for (const auto& name : names) {
      if (strategy.name == name) wanted = true;
    }
    if (!wanted) continue;
    RunResult result = RunStrategy(w, strategy, seed, budget);
    PrintCurve(strategy.name, result);
    // Time to cross accuracy 0.7, for the gap summary below.
    for (const auto& [t, acc] : result.server.curve) {
      if (acc >= 0.7) {
        if (strategy.name == "Sync-vanilla") sync_halfway_time = t;
        if (strategy.name == "Goal-Aggr-Unif") async_halfway_time = t;
        break;
      }
    }
  }
  if (sync_halfway_time > 0.0 && async_halfway_time > 0.0) {
    std::printf(
        "\ngap summary: accuracy 0.70 reached at %.3fh (sync) vs %.3fh "
        "(async), gap %.1fx\n",
        SecondsToHours(sync_halfway_time),
        SecondsToHours(async_halfway_time),
        sync_halfway_time / async_halfway_time);
  }
  std::printf(
      "Paper reference (Fig. 9): noticeable accuracy gap between sync and "
      "async for a long stretch of the training horizon.\n");
}

}  // namespace
}  // namespace bench
}  // namespace fedscope

int main() { fedscope::bench::RunFig9(); }
