// Table 2 (Appendix B): the built-in events of the platform, by category,
// printed from the live event taxonomy (not hard-coded prose) — so this
// table stays in sync with the code.

#include "bench/common.h"
#include "fedscope/core/events.h"

namespace fedscope {
namespace bench {
namespace {

const char* Describe(const std::string& event) {
  if (event == events::kJoinIn) {
    return "The server receives a join-in request from a client.";
  }
  if (event == events::kAssignId) {
    return "Clients receive their id assignment / admission ack.";
  }
  if (event == events::kModelPara) {
    return "Clients receive the global model from the server.";
  }
  if (event == events::kModelUpdate) {
    return "The server receives a model update from a client.";
  }
  if (event == events::kEvaluate) {
    return "Clients receive an evaluation request from the server.";
  }
  if (event == events::kMetrics) {
    return "The server receives local evaluation metrics.";
  }
  if (event == events::kFinish) {
    return "Clients are notified that the FL course terminated.";
  }
  if (event == events::kTimer) {
    return "A scheduled virtual-time timer fired at the server.";
  }
  if (event == events::kAllReceived) {
    return "All sampled clients' updates have been received.";
  }
  if (event == events::kGoalAchieved) {
    return "The aggregation goal (enough updates) has been reached.";
  }
  if (event == events::kTimeUp) {
    return "The round's allocated time budget has run out.";
  }
  if (event == events::kAllJoinedIn) {
    return "All expected clients have joined the course.";
  }
  if (event == events::kEarlyStop) {
    return "The pre-defined early-stop condition is satisfied.";
  }
  if (event == events::kTargetReached) {
    return "The target test accuracy has been reached.";
  }
  if (event == events::kPerformanceDrop) {
    return "The received global model hurt local performance.";
  }
  if (event == events::kLowBandwidth) {
    return "The client's bandwidth is below its threshold.";
  }
  return "(user-defined)";
}

void RunTable2() {
  PrintHeader("Table 2: built-in events of the platform");
  Table table({"category", "event", "description"});
  for (const auto& event : BuiltinMessageEvents()) {
    table.Row()
        .Str("message passing")
        .Str(event)
        .Str(Describe(event));
  }
  for (const auto& event : BuiltinConditionEvents()) {
    table.Row()
        .Str("condition checking")
        .Str(event)
        .Str(Describe(event));
  }
  table.Print();
  std::printf(
      "\nUsers extend this set by registering new <event, handler> pairs "
      "(ExtensibilityTest.* in the test suite exercises user-defined "
      "message types).\n");
}

}  // namespace
}  // namespace bench
}  // namespace fedscope

int main() { fedscope::bench::RunTable2(); }
