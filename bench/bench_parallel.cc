// Wall-clock throughput of the threaded execution backend (DESIGN.md
// §12): the same course, same seed, run serially and on a worker pool at
// 1/2/4/8 threads. Every threaded run is checked bit-identical to the
// serial reference before its time is reported — a speedup that changes
// the result would be worthless.
//
//   bench_parallel [--rounds=N] [--out=BENCH_parallel.json] [--smoke]
//
// --smoke shrinks to one tiny course for the CI release-bench-smoke job.
//
// Truthfulness note: speedup is bounded by the CPUs of the machine the
// bench runs on; the JSON records host.num_cpus and the printout says so
// explicitly. On a 1-CPU host the threaded backend can only show its
// overhead, never a speedup — that is the honest number, not a tuning
// target (CLAUDE.md "experiment truthfulness").

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"

namespace fedscope {
namespace bench {
namespace {

struct Args {
  int rounds = 8;
  std::string out;
  bool smoke = false;
};

/// One bench course: every client sampled every round, zero jitter, and a
/// homogeneous fleet, so whole cohorts reach equal virtual time and the
/// parallel stage forms the widest batches the pump ever sees.
struct Course {
  std::string name;
  FedDataset data;
  std::function<Model(uint64_t)> model_factory;
  TrainConfig train;
};

Course MakeMlpCourse(int num_clients) {
  SyntheticCifarOptions options;
  options.num_clients = num_clients;
  options.pool_size = 60 * num_clients;
  options.image_size = 8;
  options.server_test_size = 256;
  options.seed = 5;
  Course c;
  c.name = "mlp/cifar";
  c.data = MakeSyntheticCifar(options);
  c.model_factory = [](uint64_t seed) {
    Rng rng(seed);
    return WithFlatten(MakeMlp({3 * 8 * 8, 64, 10}, &rng));
  };
  c.train.lr = 0.05;
  c.train.local_steps = 4;
  c.train.batch_size = 16;
  return c;
}

Course MakeConvNet2Course(int num_clients) {
  SyntheticFemnistOptions options;
  options.num_clients = num_clients;
  options.mean_samples = 40;
  options.image_size = 8;
  options.seed = 7;
  Course c;
  c.name = "convnet2/femnist";
  c.data = MakeSyntheticFemnist(options);
  c.model_factory = [](uint64_t seed) {
    Rng rng(seed);
    return MakeConvNet2(1, 8, 10, 64, 0.0, &rng);
  };
  c.train.lr = 0.05;
  c.train.local_steps = 2;
  c.train.batch_size = 16;
  return c;
}

FedJob MakeJob(const Course& c, int rounds, ExecutionBackend backend,
               int threads) {
  FedJob job;
  job.data = &c.data;
  job.init_model = c.model_factory(21);
  job.client.train = c.train;
  job.client.jitter_sigma = 0.0;
  job.server.concurrency = c.data.num_clients();
  job.server.max_rounds = rounds;
  job.seed = 21;
  job.exec.backend = backend;
  job.exec.num_threads = threads;
  return job;
}

struct Sample {
  double wall_ms = 0.0;
  RunResult result;
};

Sample TimeRun(const Course& c, int rounds, ExecutionBackend backend,
               int threads) {
  const auto start = std::chrono::steady_clock::now();
  Sample s;
  s.result = FedRunner(MakeJob(c, rounds, backend, threads)).Run();
  const auto end = std::chrono::steady_clock::now();
  s.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  return s;
}

bool BitIdentical(RunResult& a, RunResult& b) {  // GetStateDict is non-const
  return a.final_model.GetStateDict() == b.final_model.GetStateDict() &&
         a.server.curve == b.server.curve &&
         a.server.rounds == b.server.rounds &&
         a.client_test_accuracy == b.client_test_accuracy;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg](const std::string& name) -> const char* {
      const std::string prefix = "--" + name + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + prefix.size()
                                       : nullptr;
    };
    if (const char* v = value("rounds")) {
      args->rounds = std::atoi(v);
    } else if (const char* v = value("out")) {
      args->out = v;
    } else if (arg == "--smoke") {
      args->smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_parallel [--rounds=N] [--out=FILE] "
                   "[--smoke]\n");
      return false;
    }
  }
  return true;
}

int Main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;
  Logging::set_min_level(LogLevel::kWarning);

  const unsigned num_cpus = std::thread::hardware_concurrency();
  const std::vector<int> thread_counts = args.smoke ? std::vector<int>{2}
                                                    : std::vector<int>{1, 2, 4, 8};
  const int num_clients = args.smoke ? 8 : 40;
  const int rounds = args.smoke ? 2 : args.rounds;

  std::vector<Course> courses;
  courses.push_back(MakeMlpCourse(num_clients));
  if (!args.smoke) courses.push_back(MakeConvNet2Course(num_clients));

  std::printf("bench_parallel: threaded execution backend throughput\n");
  std::printf("host CPUs: %u — speedup is capped at min(threads, CPUs);\n",
              num_cpus);
  std::printf("on a 1-CPU host the threaded rows measure pure overhead.\n\n");

  Table table({"course", "backend", "threads", "wall ms", "ms/round",
               "speedup", "bit-identical"});
  std::string json = "{\n  \"schema\": 1,\n  \"time_unit\": \"ms\",\n";
  json += "  \"note\": \"wall-clock per course, serial vs threaded backend; "
          "speedup = serial_ms / threaded_ms. Threaded runs are verified "
          "bit-identical to serial before timing is reported. Speedup is "
          "bounded by host.num_cpus — on a 1-CPU host threaded rows measure "
          "scheduling overhead, not parallelism.\",\n";
  json += "  \"host\": {\n    \"num_cpus\": " + std::to_string(num_cpus) +
          "\n  },\n  \"courses\": {\n";

  bool all_identical = true;
  for (size_t ci = 0; ci < courses.size(); ++ci) {
    const Course& c = courses[ci];
    Sample serial = TimeRun(c, rounds, ExecutionBackend::kSerial, 0);
    const int done_rounds =
        serial.result.server.rounds > 0 ? serial.result.server.rounds : 1;
    table.Row()
        .Str(c.name)
        .Str("serial")
        .Str("-")
        .Num(serial.wall_ms, 1)
        .Num(serial.wall_ms / done_rounds, 1)
        .Str("1.00x")
        .Str("ref");
    json += "    \"" + c.name + "\": {\n";
    json += "      \"rounds\": " + std::to_string(done_rounds) + ",\n";
    json += "      \"serial_ms\": " +
            std::to_string(serial.wall_ms) + ",\n";
    json += "      \"threaded_ms\": {";
    for (size_t ti = 0; ti < thread_counts.size(); ++ti) {
      const int threads = thread_counts[ti];
      Sample threaded =
          TimeRun(c, rounds, ExecutionBackend::kThreaded, threads);
      const bool identical = BitIdentical(serial.result, threaded.result);
      all_identical = all_identical && identical;
      const double speedup = serial.wall_ms / threaded.wall_ms;
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2fx", speedup);
      table.Row()
          .Str(c.name)
          .Str("threaded")
          .Int(threads)
          .Num(threaded.wall_ms, 1)
          .Num(threaded.wall_ms / done_rounds, 1)
          .Str(buf)
          .Str(identical ? "yes" : "NO");
      json += std::string(ti == 0 ? "" : ", ") + "\"" +
              std::to_string(threads) +
              "\": " + std::to_string(threaded.wall_ms);
    }
    json += "},\n      \"bit_identical\": ";
    json += all_identical ? "true" : "false";
    json += "\n    }";
    json += ci + 1 < courses.size() ? ",\n" : "\n";
  }
  json += "  }\n}\n";

  table.Print();
  if (!all_identical) {
    std::printf("\nFAIL: a threaded run diverged from the serial "
                "reference\n");
    return 1;
  }
  std::printf("\nall threaded runs bit-identical to serial\n");

  if (!args.out.empty()) {
    std::ofstream out(args.out);
    out << json;
    std::printf("wrote %s\n", args.out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace fedscope

int main(int argc, char** argv) { return fedscope::bench::Main(argc, argv); }
