// Figure 10: distribution of per-client *effective aggregation counts*.
// Over-selection starves slow clients (Pr[count = 0] > 0: their updates
// are always dropped), biasing the model toward fast clients; async
// strategies tolerate staleness and keep the distribution concentrated,
// like vanilla sync (paper §5.3.1).

#include <algorithm>

#include "bench/common.h"
#include "fedscope/obs/course_log.h"
#include "fedscope/util/stats.h"

namespace fedscope {
namespace bench {
namespace {

struct FairnessRow {
  std::string name;
  double frac_zero = 0.0;   // clients that never contributed
  double mean = 0.0;
  double stddev = 0.0;
  int64_t min = 0;
  int64_t max = 0;
};

/// Summarizes the per-client effective aggregation counts recovered from
/// the course log (1-indexed by client id, like ServerStats::agg_count).
FairnessRow Summarize(const std::string& name,
                      const std::vector<int64_t>& agg_count) {
  FairnessRow row;
  row.name = name;
  std::vector<double> counts;
  int zero = 0;
  for (size_t id = 1; id < agg_count.size(); ++id) {
    const int64_t c = agg_count[id];
    counts.push_back(static_cast<double>(c));
    if (c == 0) ++zero;
  }
  row.frac_zero = static_cast<double>(zero) / counts.size();
  row.mean = Mean(counts);
  row.stddev = Stddev(counts);
  row.min = static_cast<int64_t>(
      *std::min_element(counts.begin(), counts.end()));
  row.max = static_cast<int64_t>(
      *std::max_element(counts.begin(), counts.end()));
  return row;
}

void RunFig10() {
  QuietLogs();
  PrintHeader(
      "Figure 10: per-client effective aggregation count distribution, "
      "FEMNIST");
  Workload w = MakeFemnistWorkload();
  w.max_rounds = 60;
  const uint64_t seed = 1010;
  const double budget = CalibrateTimeBudget(w, seed);

  Table table({"strategy", "Pr[count=0]", "mean", "stddev", "min", "max"});
  std::vector<FairnessRow> rows;
  for (const auto& strategy : Table1Strategies()) {
    if (strategy.name != "Sync-vanilla" && strategy.name != "Sync-OS" &&
        strategy.name != "Goal-Aggr-Unif" &&
        strategy.name != "Goal-Rece-Unif") {
      continue;
    }
    // Per-client participation comes out of the obs course log, the
    // same record a production run would export as JSONL.
    CourseLog course_log;
    ObsContext obs;
    obs.course_log = &course_log;
    RunStrategy(w, strategy, seed, budget, obs);
    FairnessRow row = Summarize(
        strategy.name, course_log.AggCountPerClient(w.data.num_clients()));
    rows.push_back(row);
    table.Row()
        .Str(row.name)
        .Num(row.frac_zero, 3)
        .Num(row.mean, 2)
        .Num(row.stddev, 2)
        .Int(row.min)
        .Int(row.max);
  }
  table.Print();

  // Histogram of the over-selection case, the paper's visual.
  for (const auto& strategy : Table1Strategies()) {
    if (strategy.name != "Sync-OS") continue;
    CourseLog course_log;
    ObsContext obs;
    obs.course_log = &course_log;
    RunStrategy(w, strategy, seed, budget, obs);
    const std::vector<int64_t> agg_count =
        course_log.AggCountPerClient(w.data.num_clients());
    double max_count = 1.0;
    for (size_t id = 1; id < agg_count.size(); ++id) {
      max_count = std::max(max_count, static_cast<double>(agg_count[id]));
    }
    Histogram hist(0.0, max_count + 1.0, 8);
    for (size_t id = 1; id < agg_count.size(); ++id) {
      hist.Add(static_cast<double>(agg_count[id]));
    }
    std::printf("\nSync-OS aggregation-count histogram:\n%s",
                hist.ToAscii().c_str());
  }
  std::printf(
      "\nPaper reference (Fig. 10): Sync-OS has Pr[count=0] > 0 (victim "
      "clients never contribute); vanilla and async distributions are "
      "concentrated with no starved clients.\n");
}

}  // namespace
}  // namespace bench
}  // namespace fedscope

int main() { fedscope::bench::RunFig10(); }
