// Ablation: update-compression operators in a live course — accuracy vs
// uplink bytes for plain float32, 8-bit quantization, and top-k
// sparsification at several keep fractions. (Not a paper figure; an
// ablation of the message-transform plug-in mechanism of §4.1.)

#include "bench/common.h"
#include "fedscope/comm/compression.h"
#include "fedscope/obs/metrics.h"

namespace fedscope {
namespace bench {
namespace {

/// Mean uplink bytes per update, read back from the run's metrics registry
/// (fs_client_update_bytes_total / fs_client_updates_total for the codec).
/// The codecs' payload sizes are shape-determined, so every update costs
/// the same and the mean is exact.
int64_t UplinkBytes(const MetricsRegistry& metrics, const std::string& codec) {
  const MetricLabels label = {{"codec", codec}};
  const double updates = metrics.CounterValue("fs_client_updates_total", label);
  const double bytes =
      metrics.CounterValue("fs_client_update_bytes_total", label);
  FS_CHECK_GT(updates, 0.0);
  return static_cast<int64_t>(bytes / updates);
}

void RunAblation() {
  QuietLogs();
  PrintHeader("Ablation: update compression (accuracy vs uplink bytes), "
              "FEMNIST");
  SyntheticFemnistOptions data_options;
  data_options.num_clients = 24;
  data_options.noise_sigma = 1.6;
  data_options.seed = 5;
  FedDataset data = MakeSyntheticFemnist(data_options);

  struct Setting {
    std::string label;
    std::string codec;
    double keep_frac;
  };
  std::vector<Setting> settings = {
      {"float32 (none)", "none", 1.0}, {"quant8", "quant8", 1.0},
      {"topk 50%", "topk", 0.5},       {"topk 25%", "topk", 0.25},
      {"topk 10%", "topk", 0.1},       {"topk 2%", "topk", 0.02},
  };

  Table table({"codec", "final acc", "uplink bytes/update",
               "vs float32"});
  int64_t baseline_bytes = 0;
  for (const auto& setting : settings) {
    FedJob job;
    job.data = &data;
    Rng rng(55);
    job.init_model = WithFlatten(MakeMlp({64, 32, 10}, &rng));
    job.server.concurrency = 8;
    job.server.max_rounds = 25;
    job.client.train.lr = 0.1;
    job.client.train.local_steps = 4;
    job.client.train.batch_size = 8;
    job.client.compression = setting.codec;
    job.client.compression_keep_frac = setting.keep_frac;
    job.seed = 55;
    MetricsRegistry metrics;
    job.obs.metrics = &metrics;
    RunResult result = FedRunner(std::move(job)).Run();

    const int64_t bytes = UplinkBytes(metrics, setting.codec);
    if (setting.codec == "none") baseline_bytes = bytes;
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.1fx smaller",
                  static_cast<double>(baseline_bytes) / bytes);
    table.Row()
        .Str(setting.label)
        .Num(result.server.final_accuracy, 4)
        .Int(bytes)
        .Str(setting.codec == "none" ? "-" : ratio);
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nReading: quant8 is nearly free (256-level grid ~ float32 for "
      "FedAvg); aggressive top-k trades accuracy for bandwidth, degrading "
      "gracefully until the kept mass is too small.\n");
}

}  // namespace
}  // namespace bench
}  // namespace fedscope

int main() { fedscope::bench::RunAblation(); }
