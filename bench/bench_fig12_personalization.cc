// Figure 12: client-wise test accuracy under personalization. Vanilla
// FedAvg's average and bottom-quantile accuracies are significantly lower
// than FedBN / FedEM / pFedMe / Ditto, and personalization reduces the
// across-client standard deviation (paper §5.3.2).

#include "bench/common.h"
#include "fedscope/personalization/ditto.h"
#include "fedscope/personalization/fedbn.h"
#include "fedscope/personalization/fedem.h"
#include "fedscope/personalization/pfedme.h"
#include "fedscope/util/stats.h"

namespace fedscope {
namespace bench {
namespace {

/// FEMNIST with strong per-writer feature skew (style + private pixel
/// permutation): the regime in which one global model is conflicted.
FedDataset MakePersonalizationData(uint64_t seed) {
  SyntheticFemnistOptions options;
  options.num_clients = 24;
  options.mean_samples = 60;
  options.style_sigma = 1.0;
  options.noise_sigma = 1.0;
  options.permute_frac = 1.0;
  options.seed = seed;
  return MakeSyntheticFemnist(options);
}

Model BnModel(uint64_t seed) {
  Rng rng(seed);
  Model m;
  m.Add("flat", std::make_unique<Flatten>());
  Model mlp = MakeMlpBn({64, 32, 10}, &rng);
  for (int i = 0; i < mlp.num_layers(); ++i) {
    m.Add(mlp.layer_name(i), mlp.layer(i)->Clone());
  }
  return m;
}

FedJob BaseJob(const FedDataset* data, uint64_t seed) {
  FedJob job;
  job.data = data;
  job.init_model = BnModel(seed);
  job.server.concurrency = 8;
  job.server.max_rounds = 30;
  job.client.train.lr = 0.1;
  job.client.train.local_steps = 4;
  job.client.train.batch_size = 8;
  job.client.jitter_sigma = 0.1;
  job.seed = seed;
  return job;
}

void ReportRow(Table* table, const std::string& name,
               const RunResult& result) {
  const auto& acc = result.client_test_accuracy;
  table->Row()
      .Str(name)
      .Num(Mean(acc), 4)
      .Num(Quantile(acc, 0.1), 4)
      .Num(Quantile(acc, 0.9), 4)
      .Num(Stddev(acc), 4);
}

void RunFig12() {
  QuietLogs();
  PrintHeader(
      "Figure 12: client-wise test accuracy, FedAvg vs personalized FL "
      "(FEMNIST with per-writer feature skew)");
  const uint64_t seed = 1212;
  FedDataset data = MakePersonalizationData(seed);

  Table table({"algorithm", "mean acc", "p10 acc", "p90 acc", "stddev"});

  {
    RunResult fedavg = FedRunner(BaseJob(&data, seed)).Run();
    ReportRow(&table, "FedAvg", fedavg);
  }
  {
    FedJob job = BaseJob(&data, seed);
    ApplyFedBn(&job);
    ReportRow(&table, "FedBN", FedRunner(std::move(job)).Run());
  }
  {
    FedJob job = BaseJob(&data, seed);
    job.trainer_factory = [](int) {
      return std::make_unique<DittoTrainer>(DittoOptions{0.3, 6});
    };
    ReportRow(&table, "Ditto", FedRunner(std::move(job)).Run());
  }
  {
    FedJob job = BaseJob(&data, seed);
    job.trainer_factory = [](int) {
      return std::make_unique<PFedMeTrainer>(
          PFedMeOptions{2.0, 5, 0.1, 0.4});
    };
    ReportRow(&table, "pFedMe", FedRunner(std::move(job)).Run());
  }
  {
    FedJob job = BaseJob(&data, seed);
    auto factory = [seed]() {
      Rng rng(seed + 7);
      Model m;
      m.Add("flat", std::make_unique<Flatten>());
      Model mlp = MakeMlp({64, 24, 10}, &rng);
      for (int i = 0; i < mlp.num_layers(); ++i) {
        m.Add(mlp.layer_name(i), mlp.layer(i)->Clone());
      }
      return m;
    };
    ApplyFedEm(&job, factory, FedEmOptions{3, 0.05});
    ReportRow(&table, "FedEM", FedRunner(std::move(job)).Run());
  }

  table.Print();
  std::printf(
      "\nPaper reference (Fig. 12): personalized algorithms beat FedAvg "
      "in mean and bottom-quantile client accuracy and reduce the "
      "across-client stddev.\n");
}

}  // namespace
}  // namespace bench
}  // namespace fedscope

int main() { fedscope::bench::RunFig12(); }
