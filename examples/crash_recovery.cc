// Crash-consistent recovery drill over real processes (DESIGN.md §10).
// Run one server process and `kClients` client processes; SIGKILL the
// server mid-course; restart it with `resume` — it reloads the latest
// durable snapshot, bumps the session epoch, and the clients re-join and
// finish the course. Driven end-to-end by examples/crash_recovery_smoke.sh
// (the CI crash-recovery-smoke job).
//
//   crash_recovery server <port> <snapshot_dir> <max_rounds> [resume]
//   crash_recovery client <id> <port>
//
// The server prints `FINAL rounds=<n> accuracy=<a>` on an orderly finish.
// Note the recovery guarantee here is completion, not bit-identity:
// distributed aggregation folds updates in arrival order, so two runs of
// the *same* course already differ in float rounding. Bit-identical resume
// is the standalone simulator's contract (fuzz oracle 8).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "fedscope/core/checkpoint.h"
#include "fedscope/core/distributed.h"
#include "fedscope/data/synthetic_twitter.h"
#include "fedscope/nn/model_zoo.h"
#include "fedscope/util/logging.h"

using namespace fedscope;

namespace {

constexpr int kClients = 4;

/// Both roles derive the same task from the same seeds, so separate
/// processes agree on data and the initial model without any exchange.
/// Sized so one round takes a few hundred ms: the smoke script's SIGKILL
/// must land mid-course, not race the finish broadcast.
FedDataset MakeData() {
  SyntheticTwitterOptions options;
  options.num_clients = kClients;
  options.min_texts = 200;
  options.max_texts = 300;
  options.seed = 11;
  return MakeSyntheticTwitter(options);
}

Model MakeInitModel() {
  Rng rng(7);
  return MakeMlp({60, 256, 64, 2}, &rng);
}

int RunServer(int port, const std::string& snapshot_dir, int max_rounds,
              bool resume) {
  FedDataset data = MakeData();

  ServerOptions options;
  options.strategy = Strategy::kSyncVanilla;
  options.concurrency = kClients;
  options.expected_clients = kClients;
  options.max_rounds = max_rounds;
  options.seed = 7;

  auto listener = TcpListener::Bind(port);
  FS_CHECK(listener.ok()) << listener.status().ToString();

  DistributedServerHost host(options, MakeInitModel(),
                             std::make_unique<FedAvgAggregator>(),
                             std::move(listener.value()));
  const Dataset* test = &data.server_test;
  host.server()->set_evaluator(
      [test](Model* model) { return EvaluateClassifier(model, *test); });

  SnapshotPolicy policy;
  policy.directory = snapshot_dir;
  policy.every_n_rounds = 1;
  policy.keep_last = 3;
  host.set_snapshot_policy(policy);

  if (resume) {
    auto latest = LoadLatestSnapshot(snapshot_dir);
    FS_CHECK(latest.ok()) << latest.status().ToString();
    Status restored = host.RestoreFromCheckpoint(latest.value());
    FS_CHECK(restored.ok()) << restored.ToString();
    std::printf("resumed from round %d (session epoch %lld)\n",
                latest->round, static_cast<long long>(host.session_epoch()));
  }

  ServerStats stats = host.Run();
  std::printf("FINAL rounds=%d accuracy=%.4f\n", stats.rounds,
              stats.final_accuracy);
  std::fflush(stdout);
  return 0;
}

int RunClient(int id, int port) {
  FedDataset data = MakeData();

  ClientOptions options;
  options.train.lr = 0.1;
  options.train.batch_size = 8;
  options.train.local_steps = 100;
  options.seed = 100 + id;

  TransportOptions transport;
  // Survive a server that is down for restart: the connect backoff spreads
  // the fleet's re-joins, the rejoin budget bounds how long a client keeps
  // trying against a server that never comes back.
  transport.connect_attempts = 2000;
  transport.retry_base_delay_ms = 5;
  transport.retry_max_delay_ms = 100;
  transport.retry_seed = 77 + id;
  transport.rejoin_attempts = 10;

  DistributedClientHost host(id, std::move(options), MakeInitModel(),
                             data.clients[id - 1],
                             std::make_unique<GeneralTrainer>(), "127.0.0.1",
                             port, transport);
  Status status = host.Run();
  if (!status.ok()) {
    std::fprintf(stderr, "client %d: %s\n", id, status.ToString().c_str());
    return 1;
  }
  std::printf("client %d done (%d re-joins)\n", id, host.rejoins());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 5 && std::strcmp(argv[1], "server") == 0) {
    const bool resume = argc >= 6 && std::strcmp(argv[5], "resume") == 0;
    return RunServer(std::atoi(argv[2]), argv[3], std::atoi(argv[4]), resume);
  }
  if (argc >= 4 && std::strcmp(argv[1], "client") == 0) {
    return RunClient(std::atoi(argv[2]), std::atoi(argv[3]));
  }
  std::fprintf(stderr,
               "usage:\n"
               "  %s server <port> <snapshot_dir> <max_rounds> [resume]\n"
               "  %s client <id> <port>\n",
               argv[0], argv[0]);
  return 2;
}
