// Privacy protection & attack simulation (paper §4.1 / §4.2):
//  1. an honest-but-curious server reconstructs a client's private example
//     from its update via iDLG — and fails once the client enables the DP
//     behaviour plug-in;
//  2. a malicious client plants a BadNets backdoor; the Krum robust
//     aggregator largely disarms it;
//  3. clients run encrypted aggregation with Paillier and with additive
//     secret sharing, and the server learns only the sum.

#include <cstdio>

#include "fedscope/attack/backdoor.h"
#include "fedscope/attack/gradient_inversion.h"
#include "fedscope/core/fed_runner.h"
#include "fedscope/data/synthetic_cifar.h"
#include "fedscope/nn/model_zoo.h"
#include "fedscope/privacy/dp.h"
#include "fedscope/privacy/paillier.h"
#include "fedscope/privacy/secret_sharing.h"

using namespace fedscope;

namespace {

void GradientInversionDemo() {
  std::printf("--- 1. gradient inversion (iDLG) vs DP noise ---\n");
  Rng rng(5);
  Model model = MakeLogisticRegression(16, 10, &rng);
  Tensor secret = Tensor::Randn({1, 16}, &rng);
  StateDict grads = ObserveGradients(&model, secret, {3});

  auto clean = InvertSoftmaxRegression(grads);
  if (clean.ok()) {
    std::printf(
        "clean update:   label inferred = %lld (truth 3), "
        "reconstruction MSE = %.2e  -> secret exposed\n",
        static_cast<long long>(clean->inferred_label),
        ReconstructionMse(secret.Reshape({16}), clean->reconstructed_x));
  }

  StateDict noised = grads;
  DpOptions dp;
  dp.enable = true;
  dp.clip_norm = 1.0;
  dp.noise_multiplier = 0.1;
  Rng noise_rng(6);
  ApplyDpToDelta(&noised, dp, &noise_rng);
  auto attacked = InvertSoftmaxRegression(noised);
  if (attacked.ok()) {
    std::printf(
        "noised update:  reconstruction MSE = %.2e  -> meaningless\n",
        ReconstructionMse(secret.Reshape({16}),
                          attacked->reconstructed_x));
  } else {
    std::printf("noised update:  attack failed outright (%s)\n",
                attacked.status().ToString().c_str());
  }
}

void BackdoorDemo() {
  std::printf("\n--- 2. backdoor attack vs Krum robust aggregation ---\n");
  SyntheticCifarOptions options;
  options.num_clients = 12;
  options.pool_size = 1200;
  options.alpha = 0.0;  // IID so Krum's honest majority is coherent
  FedDataset data = MakeSyntheticCifar(options);

  BackdoorOptions backdoor;
  backdoor.target_label = 0;
  backdoor.poison_frac = 0.8;
  backdoor.trigger_size = 2;
  backdoor.trigger_value = 4.0f;

  auto run = [&](bool robust) {
    FedJob job;
    job.data = &data;
    Rng rng(8);
    Model m;
    m.Add("flat", std::make_unique<Flatten>());
    Model mlp = MakeMlp({3 * 8 * 8, 32, 10}, &rng);
    for (int i = 0; i < mlp.num_layers(); ++i) {
      m.Add(mlp.layer_name(i), mlp.layer(i)->Clone());
    }
    job.init_model = std::move(m);
    job.server.concurrency = 12;  // all clients, incl. the attackers
    job.server.max_rounds = 15;
    job.client.train.lr = 0.1;
    job.client.train.local_steps = 4;
    job.client.train.batch_size = 16;
    job.seed = 8;
    if (robust) {
      job.aggregator_factory = []() {
        return std::make_unique<KrumAggregator>(/*num_malicious=*/3,
                                                /*multi_k=*/6);
      };
    }
    FedRunner runner(std::move(job));
    // Clients 1-3 are malicious (Figure 7: configured per participant).
    for (int id = 1; id <= 3; ++id) {
      runner.client(id)->PoisonTrainData(MakeDataPoisoner(backdoor));
      runner.client(id)->set_update_poisoner(MakeScalingPoisoner(3.0));
    }
    RunResult result = runner.Run();
    const double asr = AttackSuccessRate(&result.final_model,
                                         data.server_test, backdoor);
    std::printf(
        "%-22s main-task acc = %.3f   attack success rate = %.3f\n",
        robust ? "Krum aggregation:" : "FedAvg aggregation:",
        result.server.final_accuracy, asr);
  };
  run(/*robust=*/false);
  run(/*robust=*/true);
}

void EncryptedAggregationDemo() {
  std::printf("\n--- 3. cryptographic aggregation ---\n");
  Rng rng(9);
  std::vector<std::vector<double>> updates = {
      {0.5, -1.0, 0.25}, {1.5, 0.5, -0.25}, {-1.0, 0.5, 1.0}};

  auto paillier_sums = EncryptedSum(updates, /*modulus_bits=*/96, &rng);
  std::printf("Paillier-encrypted sum:      [%.3f, %.3f, %.3f]\n",
              paillier_sums[0], paillier_sums[1], paillier_sums[2]);

  auto ss_sums = SecretSharedSum(updates, &rng);
  std::printf("secret-shared sum:           [%.3f, %.3f, %.3f]\n",
              ss_sums[0], ss_sums[1], ss_sums[2]);
  std::printf("plain sum (for comparison):  [1.000, 0.000, 1.000]\n");
}

}  // namespace

int main() {
  GradientInversionDemo();
  BackdoorDemo();
  EncryptedAggregationDemo();
  return 0;
}
