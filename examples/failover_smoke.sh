#!/usr/bin/env bash
# Hierarchical failover smoke drill (CI: failover-smoke). Runs a 2-shard
# course over real processes — root hub, a primary + hot standby
# aggregator per shard, four clients — SIGKILLs shard 0's primary
# aggregator mid-course, and asserts the root acknowledged a failover,
# the standby promoted, and the course still completed every round. The
# clients never reconnect: only a root crash forces re-joins; an
# aggregator death is absorbed by the shard's standby.
#
# usage: failover_smoke.sh <path-to-hierarchical_failover-binary>
set -euo pipefail

BIN=${1:?usage: $0 <path-to-hierarchical_failover-binary>}
PORT=$(( 20000 + RANDOM % 10000 ))
# Enough rounds that the kill — delivered as soon as the victim's first
# durable snapshot appears — lands mid-course with a wide margin while
# the whole drill stays well under a minute.
ROUNDS=20
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

echo "== failover run (port $PORT) =="
"$BIN" server "$PORT" "$ROUNDS" > "$WORK/server.log" 2>&1 &
SERVER=$!

AGG_PIDS=()
for shard in 0 1; do
  for slot in 0 1; do
    # Only the victim snapshots: the first file doubles as the
    # "mid-course" signal for the kill below.
    extra=()
    [[ $shard == 0 && $slot == 0 ]] && extra=("$WORK/snapshots")
    "$BIN" aggregator "$shard" "$slot" "$PORT" "${extra[@]}" \
      > "$WORK/agg_${shard}_${slot}.log" 2>&1 &
    AGG_PIDS+=($!)
  done
done
VICTIM=${AGG_PIDS[0]}  # shard 0, slot 0

CLIENT_PIDS=()
for id in 1 2 3 4; do
  "$BIN" client "$id" "$PORT" > "$WORK/client_$id.log" 2>&1 &
  CLIENT_PIDS+=($!)
done

# Kill the shard-0 primary abruptly as soon as its first durable snapshot
# proves it is mid-course. The kernel closes its socket; the root must
# detect the EOF and wake the standby past its staggered deadline.
for _ in $(seq 1 3000); do
  compgen -G "$WORK/snapshots/s0-snapshot-*.ckpt" > /dev/null && break
  sleep 0.02
done
compgen -G "$WORK/snapshots/s0-snapshot-*.ckpt" > /dev/null || {
  echo "FAIL: no shard-0 snapshot appeared"; exit 1; }
kill -9 "$VICTIM" 2>/dev/null || {
  echo "FAIL: shard-0 primary exited before the kill landed"; exit 1; }
wait "$VICTIM" 2>/dev/null || true
echo "shard-0 primary SIGKILLed mid-course"

for pid in "${CLIENT_PIDS[@]}"; do wait "$pid"; done
wait "$SERVER"
# The surviving aggregators exit on the finish broadcast.
for pid in "${AGG_PIDS[@]:1}"; do wait "$pid" || true; done
cat "$WORK/server.log"

# --- verdict ---------------------------------------------------------------
FINAL=$(sed -n 's/.*FINAL rounds=\([0-9]*\) accuracy=\([0-9.]*\) failovers=\([0-9]*\).*/\1 \3/p' "$WORK/server.log")
FINAL_ROUNDS=${FINAL% *}
FAILOVERS=${FINAL#* }
[[ "$FINAL_ROUNDS" == "$ROUNDS" ]] || {
  echo "FAIL: course ran ${FINAL_ROUNDS:-0}/$ROUNDS rounds"; exit 1; }
[[ "${FAILOVERS:-0}" -ge 1 ]] || {
  echo "FAIL: root acknowledged no failover"; exit 1; }
grep -q "promotions)" "$WORK/agg_0_1.log" || {
  echo "FAIL: shard-0 standby never reported in"; exit 1; }
grep -q " 1 promotions" "$WORK/agg_0_1.log" || {
  echo "FAIL: shard-0 standby did not promote"; exit 1; }
echo "OK: $FAILOVERS failover(s), $FINAL_ROUNDS/$ROUNDS rounds completed"
