// Quickstart: federated training of a two-conv-layer CNN on the synthetic
// FEMNIST dataset with vanilla FedAvg — the "hello world" of fedscope.
//
//   ./quickstart [key=value ...]
//
// e.g. ./quickstart train.lr=0.05 rounds=20 clients=16

#include <cstdio>

#include "fedscope/core/fed_runner.h"
#include "fedscope/data/synthetic_femnist.h"
#include "fedscope/nn/model_zoo.h"
#include "fedscope/util/config.h"

using namespace fedscope;

int main(int argc, char** argv) {
  // Command-line overrides, yacs-style.
  Config config;
  for (int i = 1; i < argc; ++i) {
    Status status = config.ParseAssignment(argv[i]);
    if (!status.ok()) {
      std::fprintf(stderr, "bad argument: %s (%s)\n", argv[i],
                   status.ToString().c_str());
      return 1;
    }
  }

  // 1. Data: a federated dataset from the DataZoo. Each client is a
  //    "writer" with its own style and label mix.
  SyntheticFemnistOptions data_options;
  data_options.num_clients =
      static_cast<int>(config.GetInt("clients", 16));
  data_options.mean_samples = 60;
  data_options.noise_sigma = 1.0;
  FedDataset data = MakeSyntheticFemnist(data_options);
  std::printf("dataset: %d clients, %lld training examples total\n",
              data.num_clients(),
              static_cast<long long>(data.total_train_examples()));

  // 2. Model: ConvNet2 from the ModelZoo (the paper's FEMNIST model).
  Rng rng(config.GetInt("seed", 1));
  Model model = MakeConvNet2(/*in_channels=*/1, /*image_size=*/8,
                             /*classes=*/10, /*hidden=*/64,
                             /*dropout=*/0.5, &rng);
  std::printf("model: ConvNet2 with %lld parameters\n",
              static_cast<long long>(model.NumParams()));

  // 3. The FL course: server options + client training config.
  FedJob job;
  job.data = &data;
  job.init_model = std::move(model);
  job.server.strategy = Strategy::kSyncVanilla;
  job.server.concurrency = static_cast<int>(config.GetInt("sampled", 8));
  job.server.max_rounds = static_cast<int>(config.GetInt("rounds", 15));
  job.client.train = TrainConfig::FromConfig(config, TrainConfig{
                                                         .lr = 0.1,
                                                         .local_steps = 4,
                                                         .batch_size = 16,
                                                     });
  job.seed = config.GetInt("seed", 1);

  // 4. Run and report.
  FedRunner runner(std::move(job));
  RunResult result = runner.Run();
  std::printf("\nround, virtual_minutes, test_accuracy\n");
  for (size_t i = 0; i < result.server.curve.size(); ++i) {
    std::printf("%5zu, %15.2f, %.4f\n", i + 1,
                result.server.curve[i].first / 60.0,
                result.server.curve[i].second);
  }
  std::printf("\nfinal global test accuracy: %.4f\n",
              result.server.final_accuracy);
  return 0;
}
