// Hierarchical sharded aggregation with hot failover over real processes
// (DESIGN.md §11). Run one root server, one aggregator process per shard
// slot, and `kClients` client processes; SIGKILL a primary aggregator
// mid-course — the root sees the mid-course EOF, wakes the shard's hot
// standby past its staggered deadline, the standby promotes under a
// bumped shard epoch, and the course completes through it. Driven
// end-to-end by examples/failover_smoke.sh (the CI failover-smoke job).
//
//   hierarchical_failover server <port> <max_rounds>
//   hierarchical_failover aggregator <shard> <slot> <port> [snapshot_dir]
//   hierarchical_failover client <id> <port>
//
// With a snapshot_dir the aggregator durably snapshots its shard state
// after every forwarded partial ("s<shard>-" prefixed files) — the smoke
// script waits for the first snapshot to know the victim is mid-course
// before delivering the SIGKILL.
//
// The server prints `FINAL rounds=<n> accuracy=<a> failovers=<f>` on an
// orderly finish. As in crash_recovery, the guarantee is completion with
// conserved per-round client weight, not bit-identity: arrival order
// differs across runs of the same distributed course.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "fedscope/core/distributed.h"
#include "fedscope/core/distributed_aggregator.h"
#include "fedscope/data/synthetic_twitter.h"
#include "fedscope/nn/model_zoo.h"
#include "fedscope/util/logging.h"

using namespace fedscope;

namespace {

constexpr int kClients = 4;
constexpr int kShards = 2;
constexpr int kStandbys = 1;
/// Wall-clock silence (seconds) after which the root presumes a shard's
/// aggregator dead. Short so the smoke script finishes fast; real
/// deployments would use tens of seconds.
constexpr double kFailureTimeout = 0.5;

Topology MakeTopology() {
  Topology topology;
  topology.num_shards = kShards;
  topology.standbys_per_shard = kStandbys;
  topology.failure_timeout = kFailureTimeout;
  return topology;
}

/// Both roles derive the same task from the same seeds, so separate
/// processes agree on data and the initial model without any exchange.
/// Sized so one round takes a few hundred ms: the smoke script's SIGKILL
/// must land mid-course, not race the finish broadcast.
FedDataset MakeData() {
  SyntheticTwitterOptions options;
  options.num_clients = kClients;
  options.min_texts = 200;
  options.max_texts = 300;
  options.seed = 11;
  return MakeSyntheticTwitter(options);
}

Model MakeInitModel() {
  Rng rng(7);
  return MakeMlp({60, 256, 64, 2}, &rng);
}

int RunServer(int port, int max_rounds) {
  FedDataset data = MakeData();

  ServerOptions options;
  options.strategy = Strategy::kSyncVanilla;
  options.concurrency = kClients;
  options.expected_clients = kClients;
  options.max_rounds = max_rounds;
  options.seed = 7;
  options.topology = MakeTopology();

  auto listener = TcpListener::Bind(port);
  FS_CHECK(listener.ok()) << listener.status().ToString();

  DistributedServerHost host(options, MakeInitModel(),
                             std::make_unique<FedAvgAggregator>(),
                             std::move(listener.value()));
  const Dataset* test = &data.server_test;
  host.server()->set_evaluator(
      [test](Model* model) { return EvaluateClassifier(model, *test); });

  ServerStats stats = host.Run();
  std::printf("FINAL rounds=%d accuracy=%.4f failovers=%lld\n", stats.rounds,
              stats.final_accuracy,
              static_cast<long long>(stats.shard_failovers));
  std::fflush(stdout);
  return 0;
}

int RunAggregator(int shard, int slot, int port,
                  const std::string& snapshot_dir) {
  EdgeAggregatorOptions options;
  options.topology = MakeTopology();
  options.shard = shard;
  options.slot = slot;

  // The smoke script launches everything at once: retry the connect until
  // the root's listener is bound.
  TransportOptions transport;
  transport.connect_attempts = 500;
  transport.retry_base_delay_ms = 5;
  transport.retry_max_delay_ms = 100;
  transport.retry_seed = 50 + shard * 10 + slot;

  DistributedAggregatorHost host(options, "127.0.0.1", port, transport);
  if (!snapshot_dir.empty()) {
    SnapshotPolicy policy;
    policy.directory = snapshot_dir;
    policy.every_n_rounds = 1;
    policy.keep_last = 3;
    host.set_snapshot_policy(policy);
  }
  Status status = host.Run();
  if (!status.ok()) {
    std::fprintf(stderr, "aggregator s%d/%d: %s\n", shard, slot,
                 status.ToString().c_str());
    return 1;
  }
  std::printf("aggregator s%d/%d done (%lld partials, %lld promotions)\n",
              shard, slot,
              static_cast<long long>(host.aggregator()->partials_forwarded()),
              static_cast<long long>(host.aggregator()->promotions()));
  return 0;
}

int RunClient(int id, int port) {
  FedDataset data = MakeData();

  ClientOptions options;
  options.train.lr = 0.1;
  options.train.batch_size = 8;
  options.train.local_steps = 100;
  options.seed = 100 + id;

  TransportOptions transport;
  transport.connect_attempts = 500;
  transport.retry_base_delay_ms = 5;
  transport.retry_max_delay_ms = 100;
  transport.retry_seed = 77 + id;

  DistributedClientHost host(id, std::move(options), MakeInitModel(),
                             data.clients[id - 1],
                             std::make_unique<GeneralTrainer>(), "127.0.0.1",
                             port, transport);
  Status status = host.Run();
  if (!status.ok()) {
    std::fprintf(stderr, "client %d: %s\n", id, status.ToString().c_str());
    return 1;
  }
  std::printf("client %d done\n", id);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 4 && std::strcmp(argv[1], "server") == 0) {
    return RunServer(std::atoi(argv[2]), std::atoi(argv[3]));
  }
  if (argc >= 5 && std::strcmp(argv[1], "aggregator") == 0) {
    return RunAggregator(std::atoi(argv[2]), std::atoi(argv[3]),
                         std::atoi(argv[4]), argc >= 6 ? argv[5] : "");
  }
  if (argc >= 4 && std::strcmp(argv[1], "client") == 0) {
    return RunClient(std::atoi(argv[2]), std::atoi(argv[3]));
  }
  std::fprintf(stderr,
               "usage:\n"
               "  %s server <port> <max_rounds>\n"
               "  %s aggregator <shard> <slot> <port>\n"
               "  %s client <id> <port>\n",
               argv[0], argv[0], argv[0]);
  return 2;
}
