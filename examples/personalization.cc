// Personalization (paper §3.4.1): clients whose local data differ sharply
// benefit from client-specific models. Runs FedAvg, FedBN, Ditto and
// pFedMe on a writer-skewed FEMNIST and reports client-wise accuracy.
// Also demonstrates the `performance_drop` condition event: clients raise
// it when a received global model hurts their local validation accuracy.

#include <cstdio>

#include "fedscope/core/fed_runner.h"
#include "fedscope/data/synthetic_femnist.h"
#include "fedscope/nn/model_zoo.h"
#include "fedscope/personalization/ditto.h"
#include "fedscope/personalization/fedbn.h"
#include "fedscope/personalization/pfedme.h"
#include "fedscope/util/stats.h"

using namespace fedscope;

namespace {

Model BnModel(uint64_t seed) {
  Rng rng(seed);
  Model m;
  m.Add("flat", std::make_unique<Flatten>());
  Model mlp = MakeMlpBn({64, 32, 10}, &rng);
  for (int i = 0; i < mlp.num_layers(); ++i) {
    m.Add(mlp.layer_name(i), mlp.layer(i)->Clone());
  }
  return m;
}

FedJob BaseJob(const FedDataset* data) {
  FedJob job;
  job.data = data;
  job.init_model = BnModel(21);
  job.server.concurrency = 8;
  job.server.max_rounds = 25;
  job.client.train.lr = 0.1;
  job.client.train.local_steps = 4;
  job.client.train.batch_size = 8;
  // Clients watch for performance drops caused by incoming global models.
  job.client.perf_drop_threshold = 0.1;
  job.seed = 21;
  return job;
}

void Report(const char* name, FedRunner* runner, const RunResult& result) {
  const auto& acc = result.client_test_accuracy;
  int perf_drops = 0;
  for (int id = 1; id <= runner->num_clients(); ++id) {
    perf_drops += runner->client(id)->perf_drop_count();
  }
  std::printf(
      "%-8s mean client acc = %.4f   p10 = %.4f   stddev = %.4f   "
      "performance_drop events = %d\n",
      name, Mean(acc), Quantile(acc, 0.1), Stddev(acc), perf_drops);
}

}  // namespace

int main() {
  SyntheticFemnistOptions options;
  options.num_clients = 20;
  options.mean_samples = 60;
  options.style_sigma = 1.0;
  options.noise_sigma = 1.0;
  options.permute_frac = 1.0;  // each writer's private "handwriting"
  FedDataset data = MakeSyntheticFemnist(options);

  std::printf(
      "20 writers with strongly client-specific features; one global "
      "model is conflicted, personalization adapts locally.\n\n");

  {
    FedJob job = BaseJob(&data);
    FedRunner runner(std::move(job));
    Report("FedAvg", &runner, runner.Run());
  }
  {
    FedJob job = BaseJob(&data);
    ApplyFedBn(&job);  // just a share filter: don't exchange *.bn.*
    FedRunner runner(std::move(job));
    Report("FedBN", &runner, runner.Run());
  }
  {
    FedJob job = BaseJob(&data);
    job.trainer_factory = [](int) {
      return std::make_unique<DittoTrainer>(DittoOptions{0.3, 6});
    };
    FedRunner runner(std::move(job));
    Report("Ditto", &runner, runner.Run());
  }
  {
    FedJob job = BaseJob(&data);
    job.trainer_factory = [](int) {
      return std::make_unique<PFedMeTrainer>(
          PFedMeOptions{2.0, 5, 0.1, 0.4});
    };
    FedRunner runner(std::move(job));
    Report("pFedMe", &runner, runner.Run());
  }
  return 0;
}
