// Auto-tuning (paper §4.3): hyperparameter optimization of a real FL
// course at three granularities —
//   * random search / GP Bayesian optimization treat a whole course as a
//     black box,
//   * successive halving exploits the checkpoint/restore mechanism to
//     kill bad configurations early,
//   * FedEx explores client-wise configurations *inside* a single course
//     through the server's manager plug-in hooks.

#include <cstdio>

#include "fedscope/core/fed_runner.h"
#include "fedscope/data/synthetic_twitter.h"
#include "fedscope/hpo/fedex.h"
#include "fedscope/hpo/fl_objective.h"
#include "fedscope/hpo/gp_bo.h"
#include "fedscope/hpo/random_search.h"
#include "fedscope/hpo/successive_halving.h"
#include "fedscope/nn/model_zoo.h"

using namespace fedscope;

namespace {

FedJob BaseJob(const FedDataset* data) {
  FedJob job;
  job.data = data;
  Rng rng(11);
  job.init_model = MakeLogisticRegression(60, 2, &rng);
  job.server.concurrency = 10;
  job.client.train.local_steps = 4;
  job.client.train.batch_size = 2;
  job.seed = 11;
  return job;
}

void Report(const char* name, const HpoResult& result, int64_t rounds) {
  std::printf(
      "%-20s evaluations=%2zu  total_rounds=%4lld  best_val_loss=%.4f  "
      "best lr=%.4f  test_acc=%.4f\n",
      name, result.trace.size(), static_cast<long long>(rounds),
      result.best_val_loss, result.best_config.GetDouble("train.lr", -1),
      result.best_test_accuracy);
}

}  // namespace

int main() {
  SyntheticTwitterOptions options;
  options.num_clients = 40;
  options.words_per_text = 10;
  FedDataset data = MakeSyntheticTwitter(options);

  SearchSpace space;
  space.AddDouble("train.lr", 0.005, 2.0, /*log=*/true);

  std::printf("tuning FedAvg's learning rate on the Twitter workload:\n\n");
  {
    FlObjective objective([&]() { return BaseJob(&data); });
    Rng rng(1);
    HpoResult rs = RunRandomSearch(space, &objective, 6, 8, &rng);
    Report("random search", rs, objective.total_rounds());
  }
  {
    FlObjective objective([&]() { return BaseJob(&data); });
    Rng rng(2);
    ShaOptions sha;
    sha.num_configs = 9;
    sha.eta = 3;
    sha.min_budget = 2;
    sha.num_rungs = 3;
    HpoResult result = RunSuccessiveHalving(space, &objective, sha, &rng);
    Report("successive halving", result, objective.total_rounds());
  }
  {
    FlObjective objective([&]() { return BaseJob(&data); });
    Rng rng(3);
    GpBoOptions bo;
    bo.init_points = 3;
    bo.iterations = 3;
    bo.budget_rounds = 8;
    HpoResult result = RunGpBo(space, &objective, bo, &rng);
    Report("GP-BO", result, objective.total_rounds());
  }
  {
    // FedEx inside ONE course: clients explore lr concurrently.
    SearchSpace client_space;
    client_space.AddDouble("hpo.lr", 0.005, 2.0, /*log=*/true);
    Rng rng(4);
    FedExPolicy policy(FedExPolicy::SampleArms(client_space, 5, &rng), 0.3,
                       rng.Next());
    FedJob job = BaseJob(&data);
    job.server.max_rounds = 24;
    FedRunner runner(std::move(job));
    runner.server()->set_config_provider(policy.MakeConfigProvider());
    runner.server()->set_feedback_consumer(policy.MakeFeedbackConsumer());
    RunResult result = runner.Run();
    std::printf(
        "%-20s one 24-round course  policy updates=%d  best arm lr=%.4f  "
        "final_acc=%.4f\n",
        "FedEx (in-course)", policy.num_updates(),
        policy.BestArm().GetDouble("hpo.lr", -1),
        result.server.final_accuracy);
  }
  return 0;
}
