// Distributed mode over TCP: the same event-driven Server/Client workers
// as the standalone simulator, but the messages travel over real sockets
// (here: loopback, one thread per participant — run the hosts in separate
// processes for a genuinely distributed federation). Demonstrates that
// behaviour (workers) and transport (CommChannel) are fully decoupled.

#include <cstdio>
#include <thread>
#include <vector>

#include "fedscope/core/distributed.h"
#include "fedscope/util/logging.h"
#include "fedscope/data/synthetic_twitter.h"
#include "fedscope/nn/model_zoo.h"

using namespace fedscope;

int main() {
  constexpr int kClients = 6;

  // The shared task: Twitter-style sentiment with a logistic model.
  SyntheticTwitterOptions data_options;
  data_options.num_clients = kClients;
  data_options.min_texts = 8;
  data_options.max_texts = 24;
  FedDataset data = MakeSyntheticTwitter(data_options);

  Rng init_rng(7);
  Model init = MakeLogisticRegression(60, 2, &init_rng);

  auto listener = TcpListener::Bind(0);  // ephemeral port
  FS_CHECK(listener.ok()) << listener.status().ToString();
  const int port = listener->port();
  std::printf("server listening on 127.0.0.1:%d\n", port);

  ServerOptions server_options;
  server_options.strategy = Strategy::kSyncVanilla;
  server_options.concurrency = kClients;
  server_options.expected_clients = kClients;
  server_options.max_rounds = 10;
  server_options.seed = 7;

  DistributedServerHost server_host(server_options, init,
                                    std::make_unique<FedAvgAggregator>(),
                                    std::move(listener.value()));
  const Dataset* test = &data.server_test;
  server_host.server()->set_evaluator(
      [test](Model* model) { return EvaluateClassifier(model, *test); });

  ServerStats stats;
  std::thread server_thread([&] { stats = server_host.Run(); });

  std::vector<std::thread> client_threads;
  for (int id = 1; id <= kClients; ++id) {
    client_threads.emplace_back([&, id] {
      ClientOptions options;
      options.train.lr = 0.5;
      options.train.batch_size = 2;
      options.seed = 100 + id;
      DistributedClientHost host(id, std::move(options), init,
                                 data.clients[id - 1],
                                 std::make_unique<GeneralTrainer>(),
                                 "127.0.0.1", port);
      Status status = host.Run();
      if (!status.ok()) {
        std::fprintf(stderr, "client %d: %s\n", id,
                     status.ToString().c_str());
      }
    });
  }
  for (auto& t : client_threads) t.join();
  server_thread.join();

  std::printf("\nround, wall_seconds, test_accuracy\n");
  for (size_t i = 0; i < stats.curve.size(); ++i) {
    std::printf("%5zu, %12.3f, %.4f\n", i + 1, stats.curve[i].first,
                stats.curve[i].second);
  }
  std::printf("\ndistributed course finished: %d rounds, final acc %.4f\n",
              stats.rounds, stats.final_accuracy);
  return 0;
}
