// Asynchronous federated learning over a heterogeneous device fleet
// (paper §3.3): compares the vanilla synchronous strategy against a
// goal-triggered asynchronous strategy on the same CIFAR-like workload,
// and shows how switching the aggregation condition is a one-line change
// of the server options — the point of the event-driven design.

#include <cstdio>

#include "fedscope/core/fed_runner.h"
#include "fedscope/data/synthetic_cifar.h"
#include "fedscope/nn/model_zoo.h"

using namespace fedscope;

namespace {

Model FlatMlp(uint64_t seed) {
  Rng rng(seed);
  Model m;
  m.Add("flat", std::make_unique<Flatten>());
  Model mlp = MakeMlp({3 * 8 * 8, 32, 10}, &rng);
  for (int i = 0; i < mlp.num_layers(); ++i) {
    m.Add(mlp.layer_name(i), mlp.layer(i)->Clone());
  }
  return m;
}

FedJob BaseJob(const FedDataset* data,
               const std::vector<DeviceProfile>& fleet) {
  FedJob job;
  job.data = data;
  job.init_model = FlatMlp(7);
  job.fleet = fleet;
  job.client.train.lr = 0.08;
  job.client.train.local_steps = 4;
  job.client.train.batch_size = 16;
  job.server.concurrency = 10;
  job.server.max_rounds = 40;
  job.seed = 7;
  return job;
}

void Report(const char* name, const RunResult& result) {
  std::printf(
      "%-28s rounds=%3d  virtual_time=%7.1f min  final_acc=%.4f  "
      "stale_contributions=%zu  dropped=%lld\n",
      name, result.server.rounds, result.server.finish_time / 60.0,
      result.server.final_accuracy,
      std::count_if(result.server.staleness_log.begin(),
                    result.server.staleness_log.end(),
                    [](int s) { return s > 0; }),
      static_cast<long long>(result.server.dropped_stale));
}

}  // namespace

int main() {
  SyntheticCifarOptions data_options;
  data_options.num_clients = 30;
  data_options.pool_size = 1500;
  data_options.alpha = 0.5;
  FedDataset data = MakeSyntheticCifar(data_options);

  // A fleet with a realistic straggler tail: the reason async exists.
  Rng fleet_rng(99);
  FleetOptions fleet_options;
  fleet_options.compute_median = 5.0;
  fleet_options.bandwidth_median = 5e4;
  fleet_options.straggler_frac = 0.15;
  auto fleet = MakeFleet(30, fleet_options, &fleet_rng);

  std::printf("strategy comparison on 30 clients (10 concurrent):\n\n");

  {  // Synchronous: aggregation on "all_received".
    FedJob job = BaseJob(&data, fleet);
    job.server.strategy = Strategy::kSyncVanilla;
    Report("Sync (all_received)", FedRunner(std::move(job)).Run());
  }
  {  // Async: aggregation on "goal_achieved" — one option changes.
    FedJob job = BaseJob(&data, fleet);
    job.server.strategy = Strategy::kAsyncGoal;
    job.server.aggregation_goal = 4;
    job.server.staleness_tolerance = 8;
    Report("Async (goal_achieved)", FedRunner(std::move(job)).Run());
  }
  {  // Async with after-receiving broadcasts (FedBuff-style).
    FedJob job = BaseJob(&data, fleet);
    job.server.strategy = Strategy::kAsyncGoal;
    job.server.aggregation_goal = 4;
    job.server.staleness_tolerance = 8;
    job.server.broadcast = BroadcastManner::kAfterReceiving;
    Report("Async (after-receiving)", FedRunner(std::move(job)).Run());
  }
  {  // Async driven by a per-round virtual time budget ("time_up").
    FedJob job = BaseJob(&data, fleet);
    job.server.strategy = Strategy::kAsyncTime;
    job.server.time_budget = 60.0;
    job.server.staleness_tolerance = 8;
    Report("Async (time_up, 60s budget)", FedRunner(std::move(job)).Run());
  }

  std::printf(
      "\nThe async strategies finish the same number of rounds in a "
      "fraction of the virtual time, tolerating stale updates instead of "
      "waiting for stragglers.\n");
  return 0;
}
