// FL with multiple learning goals (paper §3.4.2): clients solve *different
// tasks* — different label spaces and head networks — while federally
// sharing only the body of the model. Mirrors the paper's cross-silo
// scenario: institutes collaboratively learn common structure (here: the
// latent cluster geometry of the inputs) while their task heads, labels
// and objectives stay private.
//
// Setup: 12 clients over shared latent clusters in 8-dim inputs.
//  - 6 "data-rich" clients classify the cluster id (4 classes, 80 examples
//    each),
//  - 6 "data-poor" clients classify cluster parity (2 classes, only 10
//    examples each) — far too little to learn the cluster geometry alone.
// Sharing body.* transfers the rich clients' structural knowledge to the
// poor clients without exchanging heads or labels.

#include <cstdio>

#include "fedscope/core/fed_runner.h"
#include "fedscope/nn/model_zoo.h"
#include "fedscope/util/stats.h"

using namespace fedscope;

namespace {

constexpr int kClients = 12;
constexpr int64_t kInput = 8;
constexpr int64_t kClusters = 4;
constexpr double kNoise = 1.6;

bool IsDataPoor(int client_id) { return (client_id - 1) % 2 == 0; }

FedDataset MakeMultiGoalData(uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> centers;
  for (int64_t k = 0; k < kClusters; ++k) {
    centers.push_back(Tensor::Randn({kInput}, &rng, 2.0f));
  }
  FedDataset fed;
  fed.clients.resize(kClients);
  for (int c = 0; c < kClients; ++c) {
    const bool poor = IsDataPoor(c + 1);
    const int64_t n = poor ? 10 : 80;
    Rng crng = rng.Fork(c + 1);
    Dataset data;
    data.x = Tensor({n, kInput});
    data.labels.resize(n);
    for (int64_t i = 0; i < n; ++i) {
      const int64_t cluster = crng.UniformInt(0, kClusters - 1);
      Tensor x = centers[cluster];
      for (int64_t j = 0; j < kInput; ++j) {
        x.at(j) += static_cast<float>(crng.Normal(0.0, kNoise));
      }
      data.x.SetSlice(i, x);
      data.labels[i] = poor ? cluster % 2 : cluster;
    }
    fed.clients[c] = Split(data, 0.5, 0.0, &crng);
  }
  // The server never sees task labels; give it an (unused) placeholder.
  fed.server_test = fed.clients[1].test;
  return fed;
}

/// Runs the course; returns mean deployment accuracy of the data-poor
/// clients after a short private head fine-tune (same budget in both
/// settings — only the quality of the shared body differs).
double RunCourse(const FedDataset& data, bool share_body, uint64_t seed) {
  FedJob job;
  job.data = &data;
  Rng rng(seed);
  job.init_model = MakeBodyHeadMlp(kInput, 16, kClusters, &rng);
  const NameFilter share = share_body
                               ? IncludePrefixes({"body."})
                               : IncludePrefixes({"__nothing__"});
  job.server.share_filter = share;
  job.client.share_filter = share;
  job.server.concurrency = kClients;
  job.server.max_rounds = 50;
  job.server.eval_interval = 50;
  job.client.train.lr = 0.1;
  job.client.train.local_steps = 4;
  job.client.train.batch_size = 8;
  job.seed = seed;
  job.evaluator = [](Model*) { return EvalResult{}; };  // task-less server

  FedRunner runner(std::move(job));
  // Task-specific heads: each client declares its own computation graph
  // (paper §3.5); only body.* names align across participants.
  for (int id = 1; id <= kClients; ++id) {
    Rng client_rng(seed + id);
    *runner.client(id)->model() = MakeBodyHeadMlp(
        kInput, 16, IsDataPoor(id) ? 2 : kClusters, &client_rng);
  }
  runner.Run();

  std::vector<double> poor_accs;
  for (int id = 1; id <= kClients; ++id) {
    Client* client = runner.client(id);
    GeneralTrainer tuner;
    TrainConfig tune;
    tune.lr = 0.05;
    tune.local_steps = 30;
    tune.batch_size = 8;
    Rng tune_rng(700 + id);
    tuner.Train(client->model(), client->data().train, tune, &tune_rng);
    if (IsDataPoor(id)) {
      poor_accs.push_back(
          EvaluateClassifier(client->model(), client->data().test)
              .accuracy);
    }
  }
  return Mean(poor_accs);
}

}  // namespace

int main() {
  std::printf(
      "12 clients, two learning goals (4-class cluster id with plenty of "
      "data vs 2-class parity with 10 examples), sharing only body.*\n\n");
  double isolated = 0.0, shared = 0.0;
  const std::vector<uint64_t> seeds = {31, 131, 231};
  for (uint64_t seed : seeds) {
    FedDataset data = MakeMultiGoalData(seed);
    isolated += RunCourse(data, /*share_body=*/false, seed);
    shared += RunCourse(data, /*share_body=*/true, seed);
  }
  isolated /= seeds.size();
  shared /= seeds.size();
  std::printf(
      "data-poor clients' test accuracy, isolated training : %.4f\n",
      isolated);
  std::printf(
      "data-poor clients' test accuracy, shared-body FL    : %.4f\n",
      shared);
  std::printf(
      "\nThe data-poor clients inherit the cluster geometry learned by "
      "the data-rich clients through the shared body, while every task "
      "head (and every label space) stays private.\n");
  return 0;
}
