#!/usr/bin/env bash
# Crash-recovery smoke drill (CI: crash-recovery-smoke). SIGKILLs a real
# distributed server process mid-course, restarts it from the latest
# durable snapshot, and asserts the course completes with the same final
# accuracy as an uninterrupted reference run (within a float tolerance:
# distributed aggregation folds updates in arrival order, so even two
# uninterrupted runs differ in rounding — bit-identity is the standalone
# simulator's contract, enforced by fuzz oracle 8).
#
# usage: crash_recovery_smoke.sh <path-to-crash_recovery-binary>
set -euo pipefail

BIN=${1:?usage: $0 <path-to-crash_recovery-binary>}
PORT=$(( 20000 + RANDOM % 10000 ))
# Rounds take a few hundred ms each (the demo sizes the task for that),
# so the kill after the first snapshot lands mid-course with a wide
# margin while the whole drill stays well under a minute.
ROUNDS=20
TOLERANCE=0.05
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

run_clients() {
  local pids=()
  for id in 1 2 3 4; do
    "$BIN" client "$id" "$PORT" > "$WORK/client_$id.log" 2>&1 &
    pids+=($!)
  done
  for pid in "${pids[@]}"; do wait "$pid"; done
}

extract() {  # extract <log> <field>
  sed -n "s/.*FINAL rounds=\([0-9]*\) accuracy=\([0-9.]*\).*/\\$2/p" "$1"
}

# --- reference: uninterrupted course ---------------------------------------
echo "== reference run (port $PORT) =="
"$BIN" server "$PORT" "$WORK/ref_snapshots" "$ROUNDS" > "$WORK/ref.log" 2>&1 &
SERVER=$!
run_clients
wait "$SERVER"
REF_ACC=$(extract "$WORK/ref.log" 2)
echo "reference: rounds=$(extract "$WORK/ref.log" 1) accuracy=$REF_ACC"

# --- crash run: SIGKILL after the round-2 snapshot, restart from it --------
PORT=$(( PORT + 1 ))
echo "== crash run (port $PORT) =="
"$BIN" server "$PORT" "$WORK/snapshots" "$ROUNDS" > "$WORK/crash1.log" 2>&1 &
SERVER=$!
run_clients &
CLIENTS=$!

for _ in $(seq 1 3000); do
  compgen -G "$WORK/snapshots/snapshot-*.ckpt" > /dev/null && break
  sleep 0.02
done
compgen -G "$WORK/snapshots/snapshot-*.ckpt" > /dev/null || {
  echo "FAIL: no snapshot appeared"; exit 1; }

kill -9 "$SERVER" 2>/dev/null || {
  echo "FAIL: course finished before the kill landed"; exit 1; }
wait "$SERVER" 2>/dev/null || true
echo "server SIGKILLed after first snapshot; restarting with resume"

"$BIN" server "$PORT" "$WORK/snapshots" "$ROUNDS" resume \
  > "$WORK/crash2.log" 2>&1 &
SERVER=$!
wait "$CLIENTS"
wait "$SERVER"

CRASH_ROUNDS=$(extract "$WORK/crash2.log" 1)
CRASH_ACC=$(extract "$WORK/crash2.log" 2)
cat "$WORK/crash2.log"

# --- verdict ---------------------------------------------------------------
[[ "$CRASH_ROUNDS" == "$ROUNDS" ]] || {
  echo "FAIL: recovered course ran $CRASH_ROUNDS/$ROUNDS rounds"; exit 1; }
grep -q "re-joins" "$WORK"/client_*.log || {
  echo "FAIL: no client reported a re-join cycle"; exit 1; }
awk -v a="$REF_ACC" -v b="$CRASH_ACC" -v tol="$TOLERANCE" 'BEGIN {
  d = a - b; if (d < 0) d = -d;
  if (d > tol) { printf "FAIL: accuracy drifted %.4f vs %.4f\n", a, b; exit 1 }
  printf "OK: recovered accuracy %.4f vs reference %.4f (|d|=%.4f <= %.2f)\n",
         b, a, d, tol }'
