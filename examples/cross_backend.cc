// Cross-backend FL via message translation (paper §3.5): one participant
// stores parameters row-major, the other transposed ("a different ML
// framework"). They interoperate because every message is encoded into the
// pre-agreed backend-independent Payload format before sharing and decoded
// into the receiver's native representation afterwards — no global
// computation graph is ever exchanged.

#include <cstdio>

#include "fedscope/comm/codec.h"
#include "fedscope/comm/translation.h"
#include "fedscope/nn/model_zoo.h"
#include "fedscope/tensor/tensor_ops.h"
#include "fedscope/util/logging.h"

using namespace fedscope;

namespace {

/// A participant with its own backend and native parameter storage.
struct Participant {
  std::string name;
  const Backend* backend;
  StateDict native_state;

  /// Encoding: native -> consensus format -> wire bytes.
  std::vector<uint8_t> Share() const {
    Message msg;
    msg.msg_type = "model_para";
    msg.payload.SetStateDict("model", backend->EncodeState(native_state));
    return EncodeMessage(msg);
  }

  /// Decoding: wire bytes -> consensus format -> native representation.
  void Receive(const std::vector<uint8_t>& wire) {
    auto msg = DecodeMessage(wire);
    FS_CHECK(msg.ok()) << msg.status().ToString();
    native_state =
        backend->DecodeState(msg->payload.GetStateDict("model"));
  }
};

}  // namespace

int main() {
  BackendRegistry registry;
  Rng rng(3);
  Model reference = MakeLogisticRegression(4, 3, &rng);

  Participant alice{"alice(row_major)", registry.Find("row_major"), {}};
  Participant bob{"bob(transposed)", registry.Find("transposed"), {}};

  // Alice owns the initial model in her native layout.
  alice.native_state = reference.GetStateDict();
  std::printf("alice's native fc.weight shape: %s\n",
              alice.native_state.at("fc.weight").ShapeString().c_str());

  // Alice shares; Bob decodes into *his* native layout.
  bob.Receive(alice.Share());
  std::printf("bob's   native fc.weight shape: %s (transposed storage)\n",
              bob.native_state.at("fc.weight").ShapeString().c_str());

  // Bob "trains" (perturbs his native parameters) and shares back.
  for (auto& [name, tensor] : bob.native_state) {
    ScaleInPlace(&tensor, 1.5f);
  }
  alice.Receive(bob.Share());

  // Alice's recovered parameters equal her originals x 1.5 even though
  // Bob never used her memory layout.
  const Tensor expected = Scale(reference.GetStateDict().at("fc.weight"),
                                1.5f);
  const Tensor& received = alice.native_state.at("fc.weight");
  double max_err = 0.0;
  for (int64_t i = 0; i < expected.numel(); ++i) {
    max_err = std::max(
        max_err, std::abs((double)expected.at(i) - received.at(i)));
  }
  std::printf(
      "\nround trip through two different backends: max parameter error "
      "= %.2e %s\n",
      max_err, max_err < 1e-6 ? "(exact)" : "(MISMATCH!)");

  // Information minimization: the wire carries only name->tensor pairs.
  auto wire = alice.Share();
  std::printf(
      "wire format carries %zu bytes of named tensors; no computation "
      "graph, optimizer or training algorithm is exposed.\n",
      wire.size());
  return 0;
}
