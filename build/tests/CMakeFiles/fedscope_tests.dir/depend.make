# Empty dependencies file for fedscope_tests.
# This may be replaced when dependencies are built.
