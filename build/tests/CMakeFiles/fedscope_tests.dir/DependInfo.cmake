
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/attack/attack_test.cc" "tests/CMakeFiles/fedscope_tests.dir/attack/attack_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/attack/attack_test.cc.o.d"
  "/root/repo/tests/comm/channel_test.cc" "tests/CMakeFiles/fedscope_tests.dir/comm/channel_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/comm/channel_test.cc.o.d"
  "/root/repo/tests/comm/codec_test.cc" "tests/CMakeFiles/fedscope_tests.dir/comm/codec_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/comm/codec_test.cc.o.d"
  "/root/repo/tests/comm/compression_test.cc" "tests/CMakeFiles/fedscope_tests.dir/comm/compression_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/comm/compression_test.cc.o.d"
  "/root/repo/tests/comm/message_test.cc" "tests/CMakeFiles/fedscope_tests.dir/comm/message_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/comm/message_test.cc.o.d"
  "/root/repo/tests/comm/translation_test.cc" "tests/CMakeFiles/fedscope_tests.dir/comm/translation_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/comm/translation_test.cc.o.d"
  "/root/repo/tests/core/aggregator_test.cc" "tests/CMakeFiles/fedscope_tests.dir/core/aggregator_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/core/aggregator_test.cc.o.d"
  "/root/repo/tests/core/async_strategies_test.cc" "tests/CMakeFiles/fedscope_tests.dir/core/async_strategies_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/core/async_strategies_test.cc.o.d"
  "/root/repo/tests/core/checkpoint_test.cc" "tests/CMakeFiles/fedscope_tests.dir/core/checkpoint_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/core/checkpoint_test.cc.o.d"
  "/root/repo/tests/core/client_server_test.cc" "tests/CMakeFiles/fedscope_tests.dir/core/client_server_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/core/client_server_test.cc.o.d"
  "/root/repo/tests/core/completeness_test.cc" "tests/CMakeFiles/fedscope_tests.dir/core/completeness_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/core/completeness_test.cc.o.d"
  "/root/repo/tests/core/distributed_test.cc" "tests/CMakeFiles/fedscope_tests.dir/core/distributed_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/core/distributed_test.cc.o.d"
  "/root/repo/tests/core/events_test.cc" "tests/CMakeFiles/fedscope_tests.dir/core/events_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/core/events_test.cc.o.d"
  "/root/repo/tests/core/fed_runner_test.cc" "tests/CMakeFiles/fedscope_tests.dir/core/fed_runner_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/core/fed_runner_test.cc.o.d"
  "/root/repo/tests/core/handler_registry_test.cc" "tests/CMakeFiles/fedscope_tests.dir/core/handler_registry_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/core/handler_registry_test.cc.o.d"
  "/root/repo/tests/core/sampler_test.cc" "tests/CMakeFiles/fedscope_tests.dir/core/sampler_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/core/sampler_test.cc.o.d"
  "/root/repo/tests/core/trainer_test.cc" "tests/CMakeFiles/fedscope_tests.dir/core/trainer_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/core/trainer_test.cc.o.d"
  "/root/repo/tests/core/worker_test.cc" "tests/CMakeFiles/fedscope_tests.dir/core/worker_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/core/worker_test.cc.o.d"
  "/root/repo/tests/data/dataset_test.cc" "tests/CMakeFiles/fedscope_tests.dir/data/dataset_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/data/dataset_test.cc.o.d"
  "/root/repo/tests/data/partition_test.cc" "tests/CMakeFiles/fedscope_tests.dir/data/partition_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/data/partition_test.cc.o.d"
  "/root/repo/tests/data/synthetic_test.cc" "tests/CMakeFiles/fedscope_tests.dir/data/synthetic_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/data/synthetic_test.cc.o.d"
  "/root/repo/tests/hpo/hpo_test.cc" "tests/CMakeFiles/fedscope_tests.dir/hpo/hpo_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/hpo/hpo_test.cc.o.d"
  "/root/repo/tests/integration/convergence_test.cc" "tests/CMakeFiles/fedscope_tests.dir/integration/convergence_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/integration/convergence_test.cc.o.d"
  "/root/repo/tests/nn/layers_test.cc" "tests/CMakeFiles/fedscope_tests.dir/nn/layers_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/nn/layers_test.cc.o.d"
  "/root/repo/tests/nn/loss_test.cc" "tests/CMakeFiles/fedscope_tests.dir/nn/loss_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/nn/loss_test.cc.o.d"
  "/root/repo/tests/nn/model_test.cc" "tests/CMakeFiles/fedscope_tests.dir/nn/model_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/nn/model_test.cc.o.d"
  "/root/repo/tests/nn/model_zoo_test.cc" "tests/CMakeFiles/fedscope_tests.dir/nn/model_zoo_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/nn/model_zoo_test.cc.o.d"
  "/root/repo/tests/nn/optimizer_test.cc" "tests/CMakeFiles/fedscope_tests.dir/nn/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/nn/optimizer_test.cc.o.d"
  "/root/repo/tests/obs/course_log_test.cc" "tests/CMakeFiles/fedscope_tests.dir/obs/course_log_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/obs/course_log_test.cc.o.d"
  "/root/repo/tests/obs/metrics_test.cc" "tests/CMakeFiles/fedscope_tests.dir/obs/metrics_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/obs/metrics_test.cc.o.d"
  "/root/repo/tests/obs/obs_integration_test.cc" "tests/CMakeFiles/fedscope_tests.dir/obs/obs_integration_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/obs/obs_integration_test.cc.o.d"
  "/root/repo/tests/obs/tracer_test.cc" "tests/CMakeFiles/fedscope_tests.dir/obs/tracer_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/obs/tracer_test.cc.o.d"
  "/root/repo/tests/personalization/personalization_test.cc" "tests/CMakeFiles/fedscope_tests.dir/personalization/personalization_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/personalization/personalization_test.cc.o.d"
  "/root/repo/tests/privacy/bigint_test.cc" "tests/CMakeFiles/fedscope_tests.dir/privacy/bigint_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/privacy/bigint_test.cc.o.d"
  "/root/repo/tests/privacy/dp_test.cc" "tests/CMakeFiles/fedscope_tests.dir/privacy/dp_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/privacy/dp_test.cc.o.d"
  "/root/repo/tests/privacy/paillier_test.cc" "tests/CMakeFiles/fedscope_tests.dir/privacy/paillier_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/privacy/paillier_test.cc.o.d"
  "/root/repo/tests/privacy/secret_sharing_test.cc" "tests/CMakeFiles/fedscope_tests.dir/privacy/secret_sharing_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/privacy/secret_sharing_test.cc.o.d"
  "/root/repo/tests/sim/device_profile_test.cc" "tests/CMakeFiles/fedscope_tests.dir/sim/device_profile_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/sim/device_profile_test.cc.o.d"
  "/root/repo/tests/sim/event_queue_test.cc" "tests/CMakeFiles/fedscope_tests.dir/sim/event_queue_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/sim/event_queue_test.cc.o.d"
  "/root/repo/tests/sim/response_model_test.cc" "tests/CMakeFiles/fedscope_tests.dir/sim/response_model_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/sim/response_model_test.cc.o.d"
  "/root/repo/tests/tensor/tensor_ops_test.cc" "tests/CMakeFiles/fedscope_tests.dir/tensor/tensor_ops_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/tensor/tensor_ops_test.cc.o.d"
  "/root/repo/tests/tensor/tensor_test.cc" "tests/CMakeFiles/fedscope_tests.dir/tensor/tensor_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/tensor/tensor_test.cc.o.d"
  "/root/repo/tests/util/config_test.cc" "tests/CMakeFiles/fedscope_tests.dir/util/config_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/util/config_test.cc.o.d"
  "/root/repo/tests/util/logging_test.cc" "tests/CMakeFiles/fedscope_tests.dir/util/logging_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/util/logging_test.cc.o.d"
  "/root/repo/tests/util/rng_test.cc" "tests/CMakeFiles/fedscope_tests.dir/util/rng_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/util/rng_test.cc.o.d"
  "/root/repo/tests/util/stats_test.cc" "tests/CMakeFiles/fedscope_tests.dir/util/stats_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/util/stats_test.cc.o.d"
  "/root/repo/tests/util/status_test.cc" "tests/CMakeFiles/fedscope_tests.dir/util/status_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/util/status_test.cc.o.d"
  "/root/repo/tests/util/table_test.cc" "tests/CMakeFiles/fedscope_tests.dir/util/table_test.cc.o" "gcc" "tests/CMakeFiles/fedscope_tests.dir/util/table_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fedscope.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
