# Empty dependencies file for fedscope.
# This may be replaced when dependencies are built.
