file(REMOVE_RECURSE
  "libfedscope.a"
)
