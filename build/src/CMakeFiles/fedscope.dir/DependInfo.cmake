
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fedscope/attack/backdoor.cc" "src/CMakeFiles/fedscope.dir/fedscope/attack/backdoor.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/attack/backdoor.cc.o.d"
  "/root/repo/src/fedscope/attack/gradient_inversion.cc" "src/CMakeFiles/fedscope.dir/fedscope/attack/gradient_inversion.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/attack/gradient_inversion.cc.o.d"
  "/root/repo/src/fedscope/attack/membership.cc" "src/CMakeFiles/fedscope.dir/fedscope/attack/membership.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/attack/membership.cc.o.d"
  "/root/repo/src/fedscope/attack/property_inference.cc" "src/CMakeFiles/fedscope.dir/fedscope/attack/property_inference.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/attack/property_inference.cc.o.d"
  "/root/repo/src/fedscope/comm/channel.cc" "src/CMakeFiles/fedscope.dir/fedscope/comm/channel.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/comm/channel.cc.o.d"
  "/root/repo/src/fedscope/comm/codec.cc" "src/CMakeFiles/fedscope.dir/fedscope/comm/codec.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/comm/codec.cc.o.d"
  "/root/repo/src/fedscope/comm/compression.cc" "src/CMakeFiles/fedscope.dir/fedscope/comm/compression.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/comm/compression.cc.o.d"
  "/root/repo/src/fedscope/comm/message.cc" "src/CMakeFiles/fedscope.dir/fedscope/comm/message.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/comm/message.cc.o.d"
  "/root/repo/src/fedscope/comm/socket_transport.cc" "src/CMakeFiles/fedscope.dir/fedscope/comm/socket_transport.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/comm/socket_transport.cc.o.d"
  "/root/repo/src/fedscope/comm/translation.cc" "src/CMakeFiles/fedscope.dir/fedscope/comm/translation.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/comm/translation.cc.o.d"
  "/root/repo/src/fedscope/core/aggregator.cc" "src/CMakeFiles/fedscope.dir/fedscope/core/aggregator.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/core/aggregator.cc.o.d"
  "/root/repo/src/fedscope/core/checkpoint.cc" "src/CMakeFiles/fedscope.dir/fedscope/core/checkpoint.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/core/checkpoint.cc.o.d"
  "/root/repo/src/fedscope/core/client.cc" "src/CMakeFiles/fedscope.dir/fedscope/core/client.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/core/client.cc.o.d"
  "/root/repo/src/fedscope/core/completeness.cc" "src/CMakeFiles/fedscope.dir/fedscope/core/completeness.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/core/completeness.cc.o.d"
  "/root/repo/src/fedscope/core/distributed.cc" "src/CMakeFiles/fedscope.dir/fedscope/core/distributed.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/core/distributed.cc.o.d"
  "/root/repo/src/fedscope/core/events.cc" "src/CMakeFiles/fedscope.dir/fedscope/core/events.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/core/events.cc.o.d"
  "/root/repo/src/fedscope/core/fed_runner.cc" "src/CMakeFiles/fedscope.dir/fedscope/core/fed_runner.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/core/fed_runner.cc.o.d"
  "/root/repo/src/fedscope/core/handler_registry.cc" "src/CMakeFiles/fedscope.dir/fedscope/core/handler_registry.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/core/handler_registry.cc.o.d"
  "/root/repo/src/fedscope/core/sampler.cc" "src/CMakeFiles/fedscope.dir/fedscope/core/sampler.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/core/sampler.cc.o.d"
  "/root/repo/src/fedscope/core/server.cc" "src/CMakeFiles/fedscope.dir/fedscope/core/server.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/core/server.cc.o.d"
  "/root/repo/src/fedscope/core/trainer.cc" "src/CMakeFiles/fedscope.dir/fedscope/core/trainer.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/core/trainer.cc.o.d"
  "/root/repo/src/fedscope/core/worker.cc" "src/CMakeFiles/fedscope.dir/fedscope/core/worker.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/core/worker.cc.o.d"
  "/root/repo/src/fedscope/data/dataset.cc" "src/CMakeFiles/fedscope.dir/fedscope/data/dataset.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/data/dataset.cc.o.d"
  "/root/repo/src/fedscope/data/partition.cc" "src/CMakeFiles/fedscope.dir/fedscope/data/partition.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/data/partition.cc.o.d"
  "/root/repo/src/fedscope/data/synthetic_celeba.cc" "src/CMakeFiles/fedscope.dir/fedscope/data/synthetic_celeba.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/data/synthetic_celeba.cc.o.d"
  "/root/repo/src/fedscope/data/synthetic_cifar.cc" "src/CMakeFiles/fedscope.dir/fedscope/data/synthetic_cifar.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/data/synthetic_cifar.cc.o.d"
  "/root/repo/src/fedscope/data/synthetic_femnist.cc" "src/CMakeFiles/fedscope.dir/fedscope/data/synthetic_femnist.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/data/synthetic_femnist.cc.o.d"
  "/root/repo/src/fedscope/data/synthetic_shakespeare.cc" "src/CMakeFiles/fedscope.dir/fedscope/data/synthetic_shakespeare.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/data/synthetic_shakespeare.cc.o.d"
  "/root/repo/src/fedscope/data/synthetic_twitter.cc" "src/CMakeFiles/fedscope.dir/fedscope/data/synthetic_twitter.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/data/synthetic_twitter.cc.o.d"
  "/root/repo/src/fedscope/hpo/fedex.cc" "src/CMakeFiles/fedscope.dir/fedscope/hpo/fedex.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/hpo/fedex.cc.o.d"
  "/root/repo/src/fedscope/hpo/fl_objective.cc" "src/CMakeFiles/fedscope.dir/fedscope/hpo/fl_objective.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/hpo/fl_objective.cc.o.d"
  "/root/repo/src/fedscope/hpo/gp_bo.cc" "src/CMakeFiles/fedscope.dir/fedscope/hpo/gp_bo.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/hpo/gp_bo.cc.o.d"
  "/root/repo/src/fedscope/hpo/hyperband.cc" "src/CMakeFiles/fedscope.dir/fedscope/hpo/hyperband.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/hpo/hyperband.cc.o.d"
  "/root/repo/src/fedscope/hpo/pbt.cc" "src/CMakeFiles/fedscope.dir/fedscope/hpo/pbt.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/hpo/pbt.cc.o.d"
  "/root/repo/src/fedscope/hpo/random_search.cc" "src/CMakeFiles/fedscope.dir/fedscope/hpo/random_search.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/hpo/random_search.cc.o.d"
  "/root/repo/src/fedscope/hpo/search_space.cc" "src/CMakeFiles/fedscope.dir/fedscope/hpo/search_space.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/hpo/search_space.cc.o.d"
  "/root/repo/src/fedscope/hpo/successive_halving.cc" "src/CMakeFiles/fedscope.dir/fedscope/hpo/successive_halving.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/hpo/successive_halving.cc.o.d"
  "/root/repo/src/fedscope/nn/grad_check.cc" "src/CMakeFiles/fedscope.dir/fedscope/nn/grad_check.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/nn/grad_check.cc.o.d"
  "/root/repo/src/fedscope/nn/layers.cc" "src/CMakeFiles/fedscope.dir/fedscope/nn/layers.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/nn/layers.cc.o.d"
  "/root/repo/src/fedscope/nn/loss.cc" "src/CMakeFiles/fedscope.dir/fedscope/nn/loss.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/nn/loss.cc.o.d"
  "/root/repo/src/fedscope/nn/model.cc" "src/CMakeFiles/fedscope.dir/fedscope/nn/model.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/nn/model.cc.o.d"
  "/root/repo/src/fedscope/nn/model_zoo.cc" "src/CMakeFiles/fedscope.dir/fedscope/nn/model_zoo.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/nn/model_zoo.cc.o.d"
  "/root/repo/src/fedscope/nn/optimizer.cc" "src/CMakeFiles/fedscope.dir/fedscope/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/nn/optimizer.cc.o.d"
  "/root/repo/src/fedscope/obs/course_log.cc" "src/CMakeFiles/fedscope.dir/fedscope/obs/course_log.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/obs/course_log.cc.o.d"
  "/root/repo/src/fedscope/obs/metrics.cc" "src/CMakeFiles/fedscope.dir/fedscope/obs/metrics.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/obs/metrics.cc.o.d"
  "/root/repo/src/fedscope/obs/tracer.cc" "src/CMakeFiles/fedscope.dir/fedscope/obs/tracer.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/obs/tracer.cc.o.d"
  "/root/repo/src/fedscope/personalization/ditto.cc" "src/CMakeFiles/fedscope.dir/fedscope/personalization/ditto.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/personalization/ditto.cc.o.d"
  "/root/repo/src/fedscope/personalization/fedbn.cc" "src/CMakeFiles/fedscope.dir/fedscope/personalization/fedbn.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/personalization/fedbn.cc.o.d"
  "/root/repo/src/fedscope/personalization/fedem.cc" "src/CMakeFiles/fedscope.dir/fedscope/personalization/fedem.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/personalization/fedem.cc.o.d"
  "/root/repo/src/fedscope/personalization/pfedme.cc" "src/CMakeFiles/fedscope.dir/fedscope/personalization/pfedme.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/personalization/pfedme.cc.o.d"
  "/root/repo/src/fedscope/privacy/bigint.cc" "src/CMakeFiles/fedscope.dir/fedscope/privacy/bigint.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/privacy/bigint.cc.o.d"
  "/root/repo/src/fedscope/privacy/dp.cc" "src/CMakeFiles/fedscope.dir/fedscope/privacy/dp.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/privacy/dp.cc.o.d"
  "/root/repo/src/fedscope/privacy/paillier.cc" "src/CMakeFiles/fedscope.dir/fedscope/privacy/paillier.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/privacy/paillier.cc.o.d"
  "/root/repo/src/fedscope/privacy/secret_sharing.cc" "src/CMakeFiles/fedscope.dir/fedscope/privacy/secret_sharing.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/privacy/secret_sharing.cc.o.d"
  "/root/repo/src/fedscope/privacy/secure_aggregator.cc" "src/CMakeFiles/fedscope.dir/fedscope/privacy/secure_aggregator.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/privacy/secure_aggregator.cc.o.d"
  "/root/repo/src/fedscope/sim/device_profile.cc" "src/CMakeFiles/fedscope.dir/fedscope/sim/device_profile.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/sim/device_profile.cc.o.d"
  "/root/repo/src/fedscope/sim/event_queue.cc" "src/CMakeFiles/fedscope.dir/fedscope/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/sim/event_queue.cc.o.d"
  "/root/repo/src/fedscope/sim/response_model.cc" "src/CMakeFiles/fedscope.dir/fedscope/sim/response_model.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/sim/response_model.cc.o.d"
  "/root/repo/src/fedscope/tensor/tensor.cc" "src/CMakeFiles/fedscope.dir/fedscope/tensor/tensor.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/tensor/tensor.cc.o.d"
  "/root/repo/src/fedscope/tensor/tensor_ops.cc" "src/CMakeFiles/fedscope.dir/fedscope/tensor/tensor_ops.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/tensor/tensor_ops.cc.o.d"
  "/root/repo/src/fedscope/util/config.cc" "src/CMakeFiles/fedscope.dir/fedscope/util/config.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/util/config.cc.o.d"
  "/root/repo/src/fedscope/util/logging.cc" "src/CMakeFiles/fedscope.dir/fedscope/util/logging.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/util/logging.cc.o.d"
  "/root/repo/src/fedscope/util/rng.cc" "src/CMakeFiles/fedscope.dir/fedscope/util/rng.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/util/rng.cc.o.d"
  "/root/repo/src/fedscope/util/stats.cc" "src/CMakeFiles/fedscope.dir/fedscope/util/stats.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/util/stats.cc.o.d"
  "/root/repo/src/fedscope/util/table.cc" "src/CMakeFiles/fedscope.dir/fedscope/util/table.cc.o" "gcc" "src/CMakeFiles/fedscope.dir/fedscope/util/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
