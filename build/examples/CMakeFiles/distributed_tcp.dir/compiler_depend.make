# Empty compiler generated dependencies file for distributed_tcp.
# This may be replaced when dependencies are built.
