file(REMOVE_RECURSE
  "CMakeFiles/distributed_tcp.dir/distributed_tcp.cc.o"
  "CMakeFiles/distributed_tcp.dir/distributed_tcp.cc.o.d"
  "distributed_tcp"
  "distributed_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
