# Empty dependencies file for cross_backend.
# This may be replaced when dependencies are built.
