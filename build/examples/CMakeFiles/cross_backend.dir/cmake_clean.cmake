file(REMOVE_RECURSE
  "CMakeFiles/cross_backend.dir/cross_backend.cc.o"
  "CMakeFiles/cross_backend.dir/cross_backend.cc.o.d"
  "cross_backend"
  "cross_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
