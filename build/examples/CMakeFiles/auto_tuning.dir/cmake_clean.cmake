file(REMOVE_RECURSE
  "CMakeFiles/auto_tuning.dir/auto_tuning.cc.o"
  "CMakeFiles/auto_tuning.dir/auto_tuning.cc.o.d"
  "auto_tuning"
  "auto_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
