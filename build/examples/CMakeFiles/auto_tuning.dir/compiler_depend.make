# Empty compiler generated dependencies file for auto_tuning.
# This may be replaced when dependencies are built.
