# Empty compiler generated dependencies file for async_federation.
# This may be replaced when dependencies are built.
