file(REMOVE_RECURSE
  "CMakeFiles/async_federation.dir/async_federation.cc.o"
  "CMakeFiles/async_federation.dir/async_federation.cc.o.d"
  "async_federation"
  "async_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
