# Empty dependencies file for privacy_attack.
# This may be replaced when dependencies are built.
