file(REMOVE_RECURSE
  "CMakeFiles/privacy_attack.dir/privacy_attack.cc.o"
  "CMakeFiles/privacy_attack.dir/privacy_attack.cc.o.d"
  "privacy_attack"
  "privacy_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privacy_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
