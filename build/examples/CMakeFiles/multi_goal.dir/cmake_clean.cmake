file(REMOVE_RECURSE
  "CMakeFiles/multi_goal.dir/multi_goal.cc.o"
  "CMakeFiles/multi_goal.dir/multi_goal.cc.o.d"
  "multi_goal"
  "multi_goal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_goal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
