# Empty compiler generated dependencies file for multi_goal.
# This may be replaced when dependencies are built.
