file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_personalization.dir/bench_fig12_personalization.cc.o"
  "CMakeFiles/bench_fig12_personalization.dir/bench_fig12_personalization.cc.o.d"
  "bench_fig12_personalization"
  "bench_fig12_personalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_personalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
