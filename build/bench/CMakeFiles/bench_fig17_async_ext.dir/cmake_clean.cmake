file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_async_ext.dir/bench_fig17_async_ext.cc.o"
  "CMakeFiles/bench_fig17_async_ext.dir/bench_fig17_async_ext.cc.o.d"
  "bench_fig17_async_ext"
  "bench_fig17_async_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_async_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
