# Empty compiler generated dependencies file for bench_fig17_async_ext.
# This may be replaced when dependencies are built.
