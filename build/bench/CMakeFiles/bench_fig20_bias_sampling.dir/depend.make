# Empty dependencies file for bench_fig20_bias_sampling.
# This may be replaced when dependencies are built.
