# Empty dependencies file for bench_fig18_19_distributions.
# This may be replaced when dependencies are built.
