file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_hpo.dir/bench_fig14_hpo.cc.o"
  "CMakeFiles/bench_fig14_hpo.dir/bench_fig14_hpo.cc.o.d"
  "bench_fig14_hpo"
  "bench_fig14_hpo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_hpo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
