# Empty compiler generated dependencies file for bench_fig14_hpo.
# This may be replaced when dependencies are built.
