file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_datazoo.dir/bench_table3_datazoo.cc.o"
  "CMakeFiles/bench_table3_datazoo.dir/bench_table3_datazoo.cc.o.d"
  "bench_table3_datazoo"
  "bench_table3_datazoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_datazoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
