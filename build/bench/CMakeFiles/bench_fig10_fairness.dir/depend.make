# Empty dependencies file for bench_fig10_fairness.
# This may be replaced when dependencies are built.
