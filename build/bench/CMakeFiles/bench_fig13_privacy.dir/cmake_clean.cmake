file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_privacy.dir/bench_fig13_privacy.cc.o"
  "CMakeFiles/bench_fig13_privacy.dir/bench_fig13_privacy.cc.o.d"
  "bench_fig13_privacy"
  "bench_fig13_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
