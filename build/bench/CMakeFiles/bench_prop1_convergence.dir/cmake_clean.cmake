file(REMOVE_RECURSE
  "CMakeFiles/bench_prop1_convergence.dir/bench_prop1_convergence.cc.o"
  "CMakeFiles/bench_prop1_convergence.dir/bench_prop1_convergence.cc.o.d"
  "bench_prop1_convergence"
  "bench_prop1_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop1_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
