# Empty dependencies file for bench_prop1_convergence.
# This may be replaced when dependencies are built.
