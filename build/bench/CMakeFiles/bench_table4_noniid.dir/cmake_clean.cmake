file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_noniid.dir/bench_table4_noniid.cc.o"
  "CMakeFiles/bench_table4_noniid.dir/bench_table4_noniid.cc.o.d"
  "bench_table4_noniid"
  "bench_table4_noniid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_noniid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
