#include "fedscope/data/partition.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace fedscope {
namespace {

std::vector<int64_t> BalancedLabels(int64_t n, int64_t classes) {
  std::vector<int64_t> labels(n);
  for (int64_t i = 0; i < n; ++i) labels[i] = i % classes;
  return labels;
}

/// Checks a partition covers every index exactly once.
void ExpectExactCover(const std::vector<std::vector<int64_t>>& parts,
                      int64_t n) {
  std::set<int64_t> seen;
  for (const auto& part : parts) {
    for (int64_t i : part) {
      EXPECT_TRUE(seen.insert(i).second) << "duplicate index " << i;
    }
  }
  EXPECT_EQ(static_cast<int64_t>(seen.size()), n);
}

TEST(UniformPartitionTest, ExactCoverAndBalance) {
  auto labels = BalancedLabels(100, 10);
  Rng rng(1);
  auto parts = UniformPartition(labels, 7, &rng);
  ExpectExactCover(parts, 100);
  for (const auto& part : parts) {
    EXPECT_GE(part.size(), 14u);
    EXPECT_LE(part.size(), 15u);
  }
}

TEST(DirichletPartitionTest, ExactCover) {
  auto labels = BalancedLabels(600, 10);
  Rng rng(2);
  auto parts = DirichletPartition(labels, 20, 0.5, &rng);
  ExpectExactCover(parts, 600);
}

TEST(DirichletPartitionTest, MinimumEnforced) {
  auto labels = BalancedLabels(500, 5);
  Rng rng(3);
  auto parts = DirichletPartition(labels, 25, 0.1, &rng, 4);
  for (const auto& part : parts) EXPECT_GE(part.size(), 4u);
}

/// Label-distribution divergence from uniform, averaged over clients.
double MeanLabelSkew(const std::vector<std::vector<int64_t>>& parts,
                     const std::vector<int64_t>& labels, int64_t classes) {
  auto counts = PartitionClassCounts(labels, parts, classes);
  double total_skew = 0.0;
  int used = 0;
  for (const auto& row : counts) {
    int64_t n = 0;
    for (int64_t c : row) n += c;
    if (n == 0) continue;
    double skew = 0.0;
    for (int64_t c : row) {
      double p = static_cast<double>(c) / n;
      skew += std::fabs(p - 1.0 / classes);
    }
    total_skew += skew;
    ++used;
  }
  return total_skew / used;
}

TEST(DirichletPartitionTest, SmallerAlphaIsMoreSkewed) {
  auto labels = BalancedLabels(3000, 10);
  Rng r1(4), r2(4);
  auto skewed = DirichletPartition(labels, 30, 0.1, &r1);
  auto mild = DirichletPartition(labels, 30, 10.0, &r2);
  EXPECT_GT(MeanLabelSkew(skewed, labels, 10),
            2.0 * MeanLabelSkew(mild, labels, 10));
}

TEST(DirichletPartitionTest, UniformPartitionHasLowSkew) {
  auto labels = BalancedLabels(3000, 10);
  Rng rng(5);
  auto parts = UniformPartition(labels, 30, &rng);
  // 100 examples/client, 10 classes: sampling noise alone gives mean
  // absolute deviation ~0.24; anything below 0.35 is "unskewed" here
  // (compare: Dirichlet(0.1) sits near 1.2).
  EXPECT_LT(MeanLabelSkew(parts, labels, 10), 0.35);
}

TEST(BiasedPartitionTest, RareClassesOnlyOnOwners) {
  auto labels = BalancedLabels(1000, 10);
  Rng rng(6);
  std::vector<int64_t> rare = {8, 9};
  std::vector<int> owners = {0, 1, 2};
  auto parts = BiasedPartition(labels, 20, 1.0, rare, owners, &rng);
  ExpectExactCover(parts, 1000);
  for (size_t c = 0; c < parts.size(); ++c) {
    if (c <= 2) continue;
    for (int64_t i : parts[c]) {
      EXPECT_NE(labels[i], 8) << "rare class leaked to client " << c;
      EXPECT_NE(labels[i], 9) << "rare class leaked to client " << c;
    }
  }
  // Owners actually received the rare classes.
  int64_t rare_count = 0;
  for (int owner : owners) {
    for (int64_t i : parts[owner]) {
      if (labels[i] >= 8) ++rare_count;
    }
  }
  EXPECT_EQ(rare_count, 200);
}

TEST(PartitionClassCountsTest, CountsMatch) {
  std::vector<int64_t> labels = {0, 0, 1, 2};
  std::vector<std::vector<int64_t>> parts = {{0, 2}, {1, 3}};
  auto counts = PartitionClassCounts(labels, parts, 3);
  EXPECT_EQ(counts[0][0], 1);
  EXPECT_EQ(counts[0][1], 1);
  EXPECT_EQ(counts[1][0], 1);
  EXPECT_EQ(counts[1][2], 1);
}

class DirichletAlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(DirichletAlphaSweep, AlwaysExactCover) {
  auto labels = BalancedLabels(400, 10);
  Rng rng(static_cast<uint64_t>(GetParam() * 1000));
  auto parts = DirichletPartition(labels, 10, GetParam(), &rng);
  ExpectExactCover(parts, 400);
}

INSTANTIATE_TEST_SUITE_P(Alphas, DirichletAlphaSweep,
                         ::testing::Values(0.05, 0.2, 0.5, 1.0, 5.0, 100.0));

}  // namespace
}  // namespace fedscope
