#include <gtest/gtest.h>

#include <cmath>

#include "fedscope/data/synthetic_celeba.h"
#include "fedscope/data/synthetic_cifar.h"
#include "fedscope/data/synthetic_femnist.h"
#include "fedscope/data/synthetic_shakespeare.h"
#include "fedscope/data/synthetic_twitter.h"

namespace fedscope {
namespace {

TEST(SyntheticFemnistTest, ShapesAndSplits) {
  SyntheticFemnistOptions options;
  options.num_clients = 10;
  options.mean_samples = 40;
  FedDataset fed = MakeSyntheticFemnist(options);
  EXPECT_EQ(fed.num_clients(), 10);
  for (const auto& client : fed.clients) {
    EXPECT_GT(client.train.size(), 0);
    EXPECT_EQ(client.train.x.ndim(), 4);
    EXPECT_EQ(client.train.x.dim(1), 1);
    EXPECT_EQ(client.train.x.dim(2), options.image_size);
  }
  EXPECT_EQ(fed.server_test.size(), options.server_test_size);
}

TEST(SyntheticFemnistTest, DeterministicBySeed) {
  SyntheticFemnistOptions options;
  options.num_clients = 4;
  FedDataset a = MakeSyntheticFemnist(options);
  FedDataset b = MakeSyntheticFemnist(options);
  EXPECT_TRUE(a.clients[0].train.x == b.clients[0].train.x);
  options.seed = 2;
  FedDataset c = MakeSyntheticFemnist(options);
  EXPECT_FALSE(a.clients[0].train.x == c.clients[0].train.x);
}

TEST(SyntheticFemnistTest, ClientSizesVary) {
  SyntheticFemnistOptions options;
  options.num_clients = 30;
  FedDataset fed = MakeSyntheticFemnist(options);
  int64_t lo = 1 << 30, hi = 0;
  for (const auto& client : fed.clients) {
    int64_t n = client.train.size() + client.val.size() + client.test.size();
    lo = std::min(lo, n);
    hi = std::max(hi, n);
  }
  EXPECT_GT(hi, lo);
}

TEST(SyntheticFemnistTest, LabelsInRange) {
  SyntheticFemnistOptions options;
  options.num_clients = 5;
  FedDataset fed = MakeSyntheticFemnist(options);
  for (const auto& client : fed.clients) {
    for (int64_t y : client.train.labels) {
      EXPECT_GE(y, 0);
      EXPECT_LT(y, options.classes);
    }
  }
}

TEST(SyntheticCifarTest, DirichletPartitionApplied) {
  SyntheticCifarOptions options;
  options.num_clients = 20;
  options.pool_size = 1000;
  options.alpha = 0.2;
  FedDataset fed = MakeSyntheticCifar(options);
  EXPECT_EQ(fed.num_clients(), 20);
  // Strong label skew: most clients should miss at least one class.
  int missing_class_clients = 0;
  for (const auto& client : fed.clients) {
    std::vector<int64_t> counts(options.classes, 0);
    for (int64_t y : client.train.labels) ++counts[y];
    for (int64_t c : counts) {
      if (c == 0) {
        ++missing_class_clients;
        break;
      }
    }
  }
  EXPECT_GT(missing_class_clients, 10);
}

TEST(SyntheticCifarTest, IidModeIsBalanced) {
  SyntheticCifarOptions options;
  options.num_clients = 10;
  options.pool_size = 2000;
  options.alpha = 0.0;  // IID
  FedDataset fed = MakeSyntheticCifar(options);
  for (const auto& client : fed.clients) {
    std::vector<int64_t> counts(options.classes, 0);
    int64_t n = client.train.size();
    for (int64_t y : client.train.labels) ++counts[y];
    for (int64_t c : counts) {
      EXPECT_GT(c, 0);
      EXPECT_LT(std::fabs(static_cast<double>(c) / n - 0.1), 0.1);
    }
  }
}

TEST(SyntheticCifarTest, ImageShape) {
  SyntheticCifarOptions options;
  options.num_clients = 4;
  options.pool_size = 200;
  FedDataset fed = MakeSyntheticCifar(options);
  EXPECT_EQ(fed.clients[0].train.x.dim(1), options.channels);
  EXPECT_EQ(fed.clients[0].train.x.dim(2), options.image_size);
}

TEST(BiasSyntheticCifarTest, RareLabelsConfinedToOwners) {
  SyntheticCifarOptions options;
  options.num_clients = 10;
  options.pool_size = 1000;
  std::vector<int64_t> rare = {9};
  std::vector<int> owners = {7, 8, 9};
  FedDataset fed = MakeBiasSyntheticCifar(options, rare, owners);
  for (int c = 0; c < 7; ++c) {
    const auto& client = fed.clients[c];
    for (const Dataset* part :
         {&client.train, &client.val, &client.test}) {
      for (int64_t y : part->labels) EXPECT_NE(y, 9) << "client " << c;
    }
  }
}

TEST(SyntheticTwitterTest, SparseBowFeatures) {
  SyntheticTwitterOptions options;
  options.num_clients = 20;
  FedDataset fed = MakeSyntheticTwitter(options);
  EXPECT_EQ(fed.num_clients(), 20);
  const auto& x = fed.clients[0].train.x;
  EXPECT_EQ(x.dim(1), options.vocab);
  // Bag-of-words rows are normalized counts: non-negative, sum ~1.
  for (int64_t i = 0; i < x.dim(0); ++i) {
    double row_sum = 0.0;
    for (int64_t j = 0; j < x.dim(1); ++j) {
      EXPECT_GE(x.at(i, j), 0.0f);
      row_sum += x.at(i, j);
    }
    EXPECT_NEAR(row_sum, 1.0, 1e-4);
  }
}

TEST(SyntheticTwitterTest, BinaryLabelsAndVariableSizes) {
  SyntheticTwitterOptions options;
  options.num_clients = 50;
  FedDataset fed = MakeSyntheticTwitter(options);
  std::set<int64_t> sizes;
  for (const auto& client : fed.clients) {
    sizes.insert(client.train.size() + client.val.size() +
                 client.test.size());
    for (int64_t y : client.train.labels) {
      EXPECT_TRUE(y == 0 || y == 1);
    }
  }
  EXPECT_GT(sizes.size(), 3u);  // power-law-ish variety
}

TEST(SyntheticShakespeareTest, OneHotContextWindows) {
  SyntheticShakespeareOptions options;
  options.num_clients = 8;
  FedDataset fed = MakeSyntheticShakespeare(options);
  EXPECT_EQ(fed.num_clients(), 8);
  const auto& x = fed.clients[0].train.x;
  EXPECT_EQ(x.dim(1), options.context * options.vocab);
  // Each context slot is exactly one-hot.
  for (int64_t i = 0; i < std::min<int64_t>(x.dim(0), 10); ++i) {
    for (int64_t c = 0; c < options.context; ++c) {
      double slot_sum = 0.0;
      for (int64_t v = 0; v < options.vocab; ++v) {
        slot_sum += x.at(i, c * options.vocab + v);
      }
      EXPECT_DOUBLE_EQ(slot_sum, 1.0);
    }
  }
  for (int64_t y : fed.clients[0].train.labels) {
    EXPECT_GE(y, 0);
    EXPECT_LT(y, options.vocab);
  }
}

TEST(SyntheticShakespeareTest, NextCharIsLearnable) {
  // The Markov structure must carry signal: a bigram frequency predictor
  // built from the server text should beat the uniform baseline.
  SyntheticShakespeareOptions options;
  options.num_clients = 4;
  options.server_test_size = 2000;
  FedDataset fed = MakeSyntheticShakespeare(options);
  const Dataset& test = fed.server_test;
  // Count (last context char -> next char) frequencies on one half,
  // predict on the other.
  const int64_t v = options.vocab;
  std::vector<std::vector<int64_t>> counts(v, std::vector<int64_t>(v, 0));
  const int64_t half = test.size() / 2;
  auto last_char = [&](int64_t i) {
    for (int64_t c = 0; c < v; ++c) {
      if (test.x.at(i, (options.context - 1) * v + c) > 0.5f) return c;
    }
    return int64_t{0};
  };
  for (int64_t i = 0; i < half; ++i) {
    ++counts[last_char(i)][test.labels[i]];
  }
  int64_t correct = 0;
  for (int64_t i = half; i < test.size(); ++i) {
    const auto& row = counts[last_char(i)];
    int64_t best = 0;
    for (int64_t c = 1; c < v; ++c) {
      if (row[c] > row[best]) best = c;
    }
    if (best == test.labels[i]) ++correct;
  }
  const double acc = static_cast<double>(correct) / (test.size() - half);
  EXPECT_GT(acc, 2.0 / static_cast<double>(v));
}

TEST(SyntheticShakespeareTest, DeterministicBySeed) {
  SyntheticShakespeareOptions options;
  options.num_clients = 3;
  FedDataset a = MakeSyntheticShakespeare(options);
  FedDataset b = MakeSyntheticShakespeare(options);
  EXPECT_TRUE(a.clients[0].train.x == b.clients[0].train.x);
}

TEST(SyntheticCelebaTest, BinaryAttributeImages) {
  SyntheticCelebaOptions options;
  options.num_clients = 10;
  FedDataset fed = MakeSyntheticCeleba(options);
  EXPECT_EQ(fed.num_clients(), 10);
  for (const auto& client : fed.clients) {
    EXPECT_EQ(client.train.x.dim(1), 1);
    EXPECT_EQ(client.train.x.dim(2), options.image_size);
    for (int64_t y : client.train.labels) {
      EXPECT_TRUE(y == 0 || y == 1);
    }
  }
}

TEST(SyntheticCelebaTest, AttributeBandCarriesSignal) {
  // Positive-class images have elevated mass in the attribute band.
  SyntheticCelebaOptions options;
  options.num_clients = 6;
  options.noise_sigma = 0.3;
  FedDataset fed = MakeSyntheticCeleba(options);
  const Dataset& test = fed.server_test;
  const int64_t s = options.image_size;
  const int64_t band = s / 2;
  double pos_band = 0.0, neg_band = 0.0;
  int64_t n_pos = 0, n_neg = 0;
  for (int64_t i = 0; i < test.size(); ++i) {
    double mass = 0.0;
    for (int64_t w = 0; w < s; ++w) {
      mass += test.x.at(i * s * s + band * s + w);
    }
    if (test.labels[i] == 1) {
      pos_band += mass;
      ++n_pos;
    } else {
      neg_band += mass;
      ++n_neg;
    }
  }
  ASSERT_GT(n_pos, 0);
  ASSERT_GT(n_neg, 0);
  EXPECT_GT(pos_band / n_pos, neg_band / n_neg + 2.0);
}

TEST(SyntheticCelebaTest, IdentitiesDifferAcrossClients) {
  SyntheticCelebaOptions options;
  options.num_clients = 4;
  options.noise_sigma = 0.0;  // isolate the identity component
  FedDataset fed = MakeSyntheticCeleba(options);
  // Mean image of client 0 vs client 1 differ substantially.
  auto mean_image = [&](int c) {
    const Dataset& d = fed.clients[c].train;
    Tensor mean = Tensor::Zeros({d.x.numel() / d.x.dim(0)});
    for (int64_t i = 0; i < d.size(); ++i) {
      for (int64_t j = 0; j < mean.numel(); ++j) {
        mean.at(j) += d.x.at(i * mean.numel() + j) / d.size();
      }
    }
    return mean;
  };
  Tensor m0 = mean_image(0), m1 = mean_image(1);
  double diff = 0.0;
  for (int64_t j = 0; j < m0.numel(); ++j) {
    diff += std::fabs(m0.at(j) - m1.at(j));
  }
  EXPECT_GT(diff / m0.numel(), 0.3);
}

TEST(SyntheticTwitterTest, ClassesAreSeparable) {
  // Sanity: the positive/negative word distributions must differ enough
  // that the server test set carries signal (mean feature vectors differ).
  SyntheticTwitterOptions options;
  options.num_clients = 5;
  FedDataset fed = MakeSyntheticTwitter(options);
  const Dataset& test = fed.server_test;
  std::vector<double> mean_pos(options.vocab, 0.0), mean_neg(options.vocab);
  int64_t n_pos = 0, n_neg = 0;
  for (int64_t i = 0; i < test.size(); ++i) {
    for (int64_t j = 0; j < options.vocab; ++j) {
      if (test.labels[i] == 1) {
        mean_pos[j] += test.x.at(i, j);
      } else {
        mean_neg[j] += test.x.at(i, j);
      }
    }
    (test.labels[i] == 1 ? n_pos : n_neg) += 1;
  }
  double diff = 0.0;
  for (int64_t j = 0; j < options.vocab; ++j) {
    diff += std::fabs(mean_pos[j] / n_pos - mean_neg[j] / n_neg);
  }
  EXPECT_GT(diff, 0.2);
}

}  // namespace
}  // namespace fedscope
