#include "fedscope/data/dataset.h"

#include <gtest/gtest.h>

namespace fedscope {
namespace {

Dataset TinyDataset() {
  Dataset d;
  d.x = Tensor({4, 2}, {0, 0, 1, 1, 2, 2, 3, 3});
  d.labels = {0, 1, 0, 2};
  return d;
}

TEST(DatasetTest, SizeAndClasses) {
  Dataset d = TinyDataset();
  EXPECT_EQ(d.size(), 4);
  EXPECT_FALSE(d.empty());
  EXPECT_EQ(d.NumClasses(), 3);
}

TEST(DatasetTest, ClassCounts) {
  Dataset d = TinyDataset();
  auto counts = d.ClassCounts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 1);
}

TEST(DatasetTest, SubsetSelectsRows) {
  Dataset d = TinyDataset();
  Dataset s = d.Subset({3, 1});
  EXPECT_EQ(s.size(), 2);
  EXPECT_EQ(s.x.at(0, 0), 3.0f);
  EXPECT_EQ(s.labels[0], 2);
  EXPECT_EQ(s.labels[1], 1);
}

TEST(DatasetTest, BatchXPreservesTrailingShape) {
  Dataset d;
  d.x = Tensor({3, 2, 2, 2});
  d.labels = {0, 0, 0};
  Tensor batch = d.BatchX({0, 2});
  EXPECT_EQ(batch.shape(), (std::vector<int64_t>{2, 2, 2, 2}));
}

TEST(DatasetTest, BatchOutOfRangeDies) {
  Dataset d = TinyDataset();
  EXPECT_DEATH(d.BatchX({4}), "");
}

TEST(SplitTest, FractionsRespected) {
  Dataset d;
  d.x = Tensor({100, 1});
  d.labels.assign(100, 0);
  Rng rng(1);
  SplitDataset s = Split(d, 0.7, 0.1, &rng);
  EXPECT_EQ(s.train.size(), 70);
  EXPECT_EQ(s.val.size(), 10);
  EXPECT_EQ(s.test.size(), 20);
}

TEST(SplitTest, PartitionsAreDisjointAndComplete) {
  Dataset d;
  d.x = Tensor({20, 1});
  for (int i = 0; i < 20; ++i) d.x.at(i, 0) = static_cast<float>(i);
  d.labels.assign(20, 0);
  Rng rng(2);
  SplitDataset s = Split(d, 0.5, 0.25, &rng);
  std::set<float> seen;
  for (const Dataset* part : {&s.train, &s.val, &s.test}) {
    for (int64_t i = 0; i < part->size(); ++i) {
      EXPECT_TRUE(seen.insert(part->x.at(i, 0)).second) << "duplicate row";
    }
  }
  EXPECT_EQ(seen.size(), 20u);
}

TEST(FedDatasetTest, TotalTrainExamples) {
  FedDataset fed;
  fed.clients.resize(2);
  fed.clients[0].train = TinyDataset();
  fed.clients[1].train = TinyDataset();
  EXPECT_EQ(fed.num_clients(), 2);
  EXPECT_EQ(fed.total_train_examples(), 8);
}

}  // namespace
}  // namespace fedscope
