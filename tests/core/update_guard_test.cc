#include "fedscope/core/update_guard.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "fedscope/comm/message.h"

namespace fedscope {
namespace {

StateDict Signature() {
  StateDict s;
  s["w"] = Tensor::Zeros({2, 3});
  s["b"] = Tensor::Zeros({3});
  return s;
}

StateDict MatchingDelta(float value = 1.0f) {
  StateDict d;
  d["w"] = Tensor::Full({2, 3}, value);
  d["b"] = Tensor::Full({3}, value);
  return d;
}

UpdateGuard MakeGuard(double l2 = 0.0, bool clip = false, int k = 3) {
  UpdateGuardOptions options;
  options.enabled = true;
  options.l2_bound = l2;
  options.clip_to_bound = clip;
  options.quarantine_after = k;
  return UpdateGuard(options);
}

TEST(UpdateGuardTest, CleanDeltaAccepted) {
  UpdateGuard guard = MakeGuard();
  const StateDict signature = Signature();
  StateDict delta = MatchingDelta();
  const auto decision = guard.Inspect(1, signature, &delta);
  EXPECT_EQ(decision.verdict, GuardVerdict::kAccept);
  EXPECT_FALSE(decision.rejected());
  EXPECT_TRUE(guard.violations().empty());
}

TEST(UpdateGuardTest, MissingTensorRejectedAsSignature) {
  UpdateGuard guard = MakeGuard();
  const StateDict signature = Signature();
  StateDict delta = MatchingDelta();
  delta.erase("b");
  const auto decision = guard.Inspect(1, signature, &delta);
  EXPECT_EQ(decision.verdict, GuardVerdict::kRejectSignature);
  EXPECT_TRUE(decision.rejected());
}

TEST(UpdateGuardTest, RenamedTensorRejectedAsSignature) {
  UpdateGuard guard = MakeGuard();
  const StateDict signature = Signature();
  StateDict delta = MatchingDelta();
  delta["w#"] = delta["w"];
  delta.erase("w");
  const auto decision = guard.Inspect(1, signature, &delta);
  EXPECT_EQ(decision.verdict, GuardVerdict::kRejectSignature);
}

TEST(UpdateGuardTest, ReshapedTensorRejectedAsSignature) {
  UpdateGuard guard = MakeGuard();
  const StateDict signature = Signature();
  StateDict delta = MatchingDelta();
  delta["w"] = delta["w"].Reshape({6});  // same numel, wrong shape
  const auto decision = guard.Inspect(1, signature, &delta);
  EXPECT_EQ(decision.verdict, GuardVerdict::kRejectSignature);
}

TEST(UpdateGuardTest, NanAndInfRejectedAsNonFinite) {
  UpdateGuard guard = MakeGuard();
  const StateDict signature = Signature();
  StateDict nan_delta = MatchingDelta();
  nan_delta["w"].at(0) = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(guard.Inspect(1, signature, &nan_delta).verdict,
            GuardVerdict::kRejectNonFinite);
  StateDict inf_delta = MatchingDelta();
  inf_delta["b"].at(2) = std::numeric_limits<float>::infinity();
  EXPECT_EQ(guard.Inspect(2, signature, &inf_delta).verdict,
            GuardVerdict::kRejectNonFinite);
}

TEST(UpdateGuardTest, OverNormRejectedWithoutClip) {
  UpdateGuard guard = MakeGuard(/*l2=*/1.0);
  const StateDict signature = Signature();
  StateDict delta = MatchingDelta(10.0f);  // norm = 10 * 3 = 30
  const auto decision = guard.Inspect(1, signature, &delta);
  EXPECT_EQ(decision.verdict, GuardVerdict::kRejectNorm);
}

TEST(UpdateGuardTest, ClipScalesToBoundAndIsNotAViolation) {
  UpdateGuard guard = MakeGuard(/*l2=*/1.0, /*clip=*/true, /*k=*/1);
  const StateDict signature = Signature();
  StateDict delta = MatchingDelta(10.0f);
  const auto decision = guard.Inspect(1, signature, &delta);
  EXPECT_EQ(decision.verdict, GuardVerdict::kClip);
  EXPECT_FALSE(decision.rejected());
  // Scaled in place to the bound.
  double norm_sq = 0.0;
  for (const auto& [name, t] : delta) {
    for (int64_t i = 0; i < t.numel(); ++i) norm_sq += t.at(i) * t.at(i);
  }
  EXPECT_NEAR(std::sqrt(norm_sq), 1.0, 1e-5);
  // A repair books no violation: even with quarantine_after=1 the client
  // stays in the pool.
  EXPECT_TRUE(guard.violations().empty());
  EXPECT_FALSE(guard.IsQuarantined(1));
}

TEST(UpdateGuardTest, UnderNormPassesUntouched) {
  UpdateGuard guard = MakeGuard(/*l2=*/100.0, /*clip=*/true);
  const StateDict signature = Signature();
  StateDict delta = MatchingDelta(1.0f);
  const StateDict before = delta;
  EXPECT_EQ(guard.Inspect(1, signature, &delta).verdict,
            GuardVerdict::kAccept);
  EXPECT_EQ(delta, before);
}

TEST(UpdateGuardTest, QuarantineAfterKViolations) {
  UpdateGuard guard = MakeGuard(0.0, false, /*k=*/2);
  const StateDict signature = Signature();
  StateDict bad = MatchingDelta();
  bad["w"].at(0) = std::numeric_limits<float>::quiet_NaN();

  StateDict first = bad;
  auto d1 = guard.Inspect(7, signature, &first);
  EXPECT_TRUE(d1.rejected());
  EXPECT_FALSE(d1.quarantine);
  EXPECT_FALSE(guard.IsQuarantined(7));

  StateDict second = bad;
  auto d2 = guard.Inspect(7, signature, &second);
  EXPECT_TRUE(d2.rejected());
  EXPECT_TRUE(d2.quarantine);
  EXPECT_TRUE(guard.IsQuarantined(7));

  // Quarantine fires exactly once per client.
  StateDict third = bad;
  auto d3 = guard.Inspect(7, signature, &third);
  EXPECT_TRUE(d3.rejected());
  EXPECT_FALSE(d3.quarantine);
  EXPECT_EQ(guard.quarantined().size(), 1u);
}

TEST(UpdateGuardTest, ZeroQuarantineAfterDisablesQuarantine) {
  UpdateGuard guard = MakeGuard(0.0, false, /*k=*/0);
  const StateDict signature = Signature();
  StateDict bad = MatchingDelta();
  bad["w"].at(0) = std::numeric_limits<float>::quiet_NaN();
  for (int i = 0; i < 5; ++i) {
    StateDict d = bad;
    EXPECT_FALSE(guard.Inspect(3, signature, &d).quarantine);
  }
  EXPECT_FALSE(guard.IsQuarantined(3));
}

TEST(UpdateGuardTest, UntrackedInspectionBooksNoViolation) {
  UpdateGuard guard = MakeGuard(0.0, false, /*k=*/1);
  const StateDict signature = Signature();
  StateDict bad = MatchingDelta();
  bad["w"].at(0) = std::numeric_limits<float>::quiet_NaN();
  const auto decision =
      guard.Inspect(4, signature, &bad, /*track_violations=*/false);
  EXPECT_TRUE(decision.rejected());
  EXPECT_FALSE(decision.quarantine);
  EXPECT_TRUE(guard.violations().empty());
  EXPECT_FALSE(guard.IsQuarantined(4));
}

TEST(UpdateGuardTest, RecordViolationTripsQuarantine) {
  UpdateGuard guard = MakeGuard(0.0, false, /*k=*/2);
  EXPECT_FALSE(guard.RecordViolation(9));
  EXPECT_TRUE(guard.RecordViolation(9));   // trips the bar
  EXPECT_FALSE(guard.RecordViolation(9));  // already quarantined
  EXPECT_TRUE(guard.IsQuarantined(9));
}

TEST(UpdateGuardTest, SaveLoadStateRoundTrips) {
  UpdateGuard guard = MakeGuard(0.0, false, /*k=*/2);
  guard.RecordViolation(2);
  guard.RecordViolation(5);
  guard.RecordViolation(5);  // quarantines 5

  Payload snapshot;
  guard.SaveState(&snapshot, "guard/");

  UpdateGuard restored = MakeGuard(0.0, false, /*k=*/2);
  restored.LoadState(snapshot, "guard/");
  EXPECT_EQ(restored.violations(), guard.violations());
  EXPECT_EQ(restored.quarantined(), guard.quarantined());
  EXPECT_TRUE(restored.IsQuarantined(5));
  EXPECT_FALSE(restored.IsQuarantined(2));
  // The restored guard resumes counting where the original stopped.
  EXPECT_TRUE(restored.RecordViolation(2));
}

}  // namespace
}  // namespace fedscope
