#include "fedscope/core/trainer.h"

#include <gtest/gtest.h>

#include "fedscope/nn/model_zoo.h"
#include "fedscope/nn/model.h"

namespace fedscope {
namespace {

/// Linearly separable 2-class blobs.
Dataset Blobs(int64_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset d;
  d.x = Tensor({n, 2});
  d.labels.resize(n);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t y = i % 2;
    d.labels[i] = y;
    const double cx = y == 0 ? -1.5 : 1.5;
    d.x.at(i, 0) = static_cast<float>(cx + rng.Normal(0, 0.5));
    d.x.at(i, 1) = static_cast<float>(cx + rng.Normal(0, 0.5));
  }
  return d;
}

TEST(TrainConfigTest, FromConfigOverrides) {
  Config c;
  c.Set("train.lr", 0.25);
  c.Set("train.local_steps", 9);
  c.Set("train.batch_size", 3);
  c.Set("train.prox_mu", 0.1);
  TrainConfig base;
  TrainConfig tc = TrainConfig::FromConfig(c, base);
  EXPECT_DOUBLE_EQ(tc.lr, 0.25);
  EXPECT_EQ(tc.local_steps, 9);
  EXPECT_EQ(tc.batch_size, 3);
  EXPECT_DOUBLE_EQ(tc.prox_mu, 0.1);
  // Untouched fields keep defaults.
  EXPECT_DOUBLE_EQ(tc.momentum, base.momentum);
}

TEST(GeneralTrainerTest, TrainingReducesLoss) {
  Rng rng(1);
  Model model = MakeLogisticRegression(2, 2, &rng);
  Dataset data = Blobs(64, 2);
  GeneralTrainer trainer;
  EvalResult before = trainer.Evaluate(&model, data);
  TrainConfig config;
  config.lr = 0.5;
  config.local_steps = 60;
  config.batch_size = 16;
  Rng train_rng(3);
  TrainResult result = trainer.Train(&model, data, config, &train_rng);
  EvalResult after = trainer.Evaluate(&model, data);
  EXPECT_LT(after.loss, before.loss);
  EXPECT_GT(after.accuracy, 0.9);
  EXPECT_EQ(result.num_samples, 60 * 16);
  EXPECT_EQ(result.local_steps, 60);
}

TEST(GeneralTrainerTest, ZeroStepsIsNoop) {
  Rng rng(4);
  Model model = MakeLogisticRegression(2, 2, &rng);
  StateDict before = model.GetStateDict();
  GeneralTrainer trainer;
  TrainConfig config;
  config.local_steps = 0;
  Rng train_rng(5);
  trainer.Train(&model, Blobs(10, 6), config, &train_rng);
  EXPECT_TRUE(model.GetStateDict() == before);
}

TEST(GeneralTrainerTest, EmptyDatasetIsNoop) {
  Rng rng(7);
  Model model = MakeLogisticRegression(2, 2, &rng);
  StateDict before = model.GetStateDict();
  GeneralTrainer trainer;
  Rng train_rng(8);
  TrainResult r = trainer.Train(&model, Dataset{}, TrainConfig{}, &train_rng);
  EXPECT_EQ(r.num_samples, 0);
  EXPECT_TRUE(model.GetStateDict() == before);
}

TEST(GeneralTrainerTest, ProxTermLimitsDrift) {
  // FedProx: a strong proximal weight (with lr * mu < 1 for stability)
  // keeps the model near its starting point.
  Rng rng(9);
  Model init_model = MakeLogisticRegression(2, 2, &rng);
  Model free_model = init_model;
  Model prox_model = init_model;
  Dataset data = Blobs(64, 10);
  TrainConfig config;
  config.lr = 0.05;
  config.local_steps = 40;
  config.batch_size = 16;

  GeneralTrainer trainer;
  Rng r1(11), r2(11);
  trainer.Train(&free_model, data, config, &r1);
  config.prox_mu = 10.0;
  trainer.Train(&prox_model, data, config, &r2);

  const StateDict init = init_model.GetStateDict();
  const double free_drift = SdNorm(SdSub(free_model.GetStateDict(), init));
  const double prox_drift = SdNorm(SdSub(prox_model.GetStateDict(), init));
  EXPECT_LT(prox_drift, 0.5 * free_drift);
}

TEST(GeneralTrainerTest, UpdateModelLoadsSharedState) {
  Rng rng(12);
  Model model = MakeLogisticRegression(2, 2, &rng);
  Rng rng2(99);
  Model other = MakeLogisticRegression(2, 2, &rng2);
  GeneralTrainer trainer;
  trainer.UpdateModel(&model, other.GetStateDict());
  EXPECT_TRUE(model.GetStateDict() == other.GetStateDict());
}

TEST(GeneralTrainerTest, DeterministicGivenSeeds) {
  Dataset data = Blobs(32, 13);
  TrainConfig config;
  config.local_steps = 10;
  config.batch_size = 8;
  auto run = [&]() {
    Rng rng(14);
    Model model = MakeLogisticRegression(2, 2, &rng);
    Rng train_rng(15);
    GeneralTrainer trainer;
    trainer.Train(&model, data, config, &train_rng);
    return model.GetStateDict();
  };
  EXPECT_TRUE(run() == run());
}

TEST(EvaluateClassifierTest, EmptyDataset) {
  Rng rng(16);
  Model model = MakeLogisticRegression(2, 2, &rng);
  EvalResult r = EvaluateClassifier(&model, Dataset{});
  EXPECT_EQ(r.num_examples, 0);
  EXPECT_EQ(r.accuracy, 0.0);
}

TEST(SampleBatchIndicesTest, InRange) {
  Rng rng(17);
  auto idx = SampleBatchIndices(10, 50, &rng);
  EXPECT_EQ(idx.size(), 50u);
  for (int64_t i : idx) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, 10);
  }
}

}  // namespace
}  // namespace fedscope
