#include "fedscope/core/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <limits>

#include "fedscope/comm/codec.h"
#include "fedscope/core/fed_runner.h"
#include "fedscope/data/synthetic_twitter.h"
#include "fedscope/nn/model_zoo.h"

namespace fedscope {
namespace {

Checkpoint SampleCheckpoint() {
  Rng rng(1);
  Model model = MakeMlp({4, 6, 2}, &rng);
  Checkpoint ckpt;
  ckpt.round = 17;
  ckpt.virtual_time = 1234.5;
  ckpt.best_accuracy = 0.87;
  ckpt.global_state = model.GetStateDict();
  return ckpt;
}

TEST(CheckpointTest, SerializeRoundTrip) {
  Checkpoint ckpt = SampleCheckpoint();
  auto bytes = SerializeCheckpoint(ckpt);
  auto restored = DeserializeCheckpoint(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->round, 17);
  EXPECT_DOUBLE_EQ(restored->virtual_time, 1234.5);
  EXPECT_DOUBLE_EQ(restored->best_accuracy, 0.87);
  EXPECT_TRUE(restored->global_state == ckpt.global_state);
}

TEST(CheckpointTest, RejectsGarbage) {
  EXPECT_FALSE(DeserializeCheckpoint({1, 2, 3}).ok());
  // A valid payload that isn't a checkpoint.
  Payload p;
  p.SetInt("round", 1);
  EXPECT_FALSE(DeserializeCheckpoint(EncodePayload(p)).ok());
}

TEST(CheckpointTest, RejectsTruncation) {
  auto bytes = SerializeCheckpoint(SampleCheckpoint());
  for (size_t len = 0; len < bytes.size(); len += 11) {
    std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + len);
    EXPECT_FALSE(DeserializeCheckpoint(cut).ok());
  }
}

TEST(CheckpointTest, NanAndInfRoundTripBitExactly) {
  // A NaN-poisoned or overflowed model must survive checkpointing
  // unmasked: recovery has to resume from what was actually there.
  Checkpoint ckpt = SampleCheckpoint();
  Tensor special({4});
  special.at(0) = std::numeric_limits<float>::quiet_NaN();
  special.at(1) = std::numeric_limits<float>::infinity();
  special.at(2) = -std::numeric_limits<float>::infinity();
  special.at(3) = -0.0f;
  ckpt.global_state.emplace("special", std::move(special));
  auto restored = DeserializeCheckpoint(SerializeCheckpoint(ckpt));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  const Tensor& t = restored->global_state.at("special");
  for (int64_t k = 0; k < 4; ++k) {
    const float x = ckpt.global_state.at("special").at(k);
    const float y = t.at(k);
    EXPECT_EQ(std::memcmp(&x, &y, sizeof(float)), 0) << "index " << k;
  }
}

TEST(CheckpointTest, EmptyStateDictRoundTrips) {
  // A pre-start snapshot (round 0, no parameters exchanged yet) is legal;
  // only the v1 format conflated "empty" with "corrupt".
  Checkpoint ckpt;
  ckpt.round = 0;
  ckpt.course.SetInt("rng", 1);  // minimal course section marker
  auto restored = DeserializeCheckpoint(SerializeCheckpoint(ckpt));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(restored->global_state.empty());
  EXPECT_EQ(restored->course.GetInt("rng"), 1);
}

TEST(CheckpointTest, CourseSectionRoundTrips) {
  Checkpoint ckpt = SampleCheckpoint();
  ckpt.course.SetInt("started", 1);
  ckpt.course.SetDouble("stats/best_accuracy", 0.5);
  SetPackedU64s(&ckpt.course, "rng", {1, 2, 3});
  SetPackedDoubles(&ckpt.course, "stats/curve_times", {0.25, 1.5});
  auto restored = DeserializeCheckpoint(SerializeCheckpoint(ckpt));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->course.GetInt("started"), 1);
  EXPECT_DOUBLE_EQ(restored->course.GetDouble("stats/best_accuracy"), 0.5);
  EXPECT_EQ(GetPackedU64s(restored->course, "rng"),
            (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(GetPackedDoubles(restored->course, "stats/curve_times"),
            (std::vector<double>{0.25, 1.5}));
}

TEST(CheckpointFileTest, AtomicWriteReadBack) {
  const std::string path = ::testing::TempDir() + "/ckpt_roundtrip.ckpt";
  Checkpoint ckpt = SampleCheckpoint();
  auto written = WriteCheckpointFileAtomic(path, ckpt);
  ASSERT_TRUE(written.ok()) << written.status().ToString();
  EXPECT_GT(written.value(), 0);
  auto read = ReadCheckpointFile(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->round, ckpt.round);
  EXPECT_TRUE(read->global_state == ckpt.global_state);
  std::remove(path.c_str());
}

TEST(CheckpointFileTest, RejectsTruncatedFlippedAndWrongHeader) {
  const std::vector<uint8_t> file = EncodeCheckpointFile(SampleCheckpoint());
  // Truncation anywhere — header or payload — must reject, never crash.
  for (size_t len = 0; len < file.size(); len += 13) {
    std::vector<uint8_t> cut(file.begin(), file.begin() + len);
    EXPECT_FALSE(DecodeCheckpointFile(cut).ok()) << "len " << len;
  }
  // Any single flipped byte lands in magic, version, size, CRC, or the
  // CRC-protected payload; all must reject.
  for (size_t pos = 0; pos < file.size(); pos += 7) {
    std::vector<uint8_t> flipped = file;
    flipped[pos] ^= 0x40;
    EXPECT_FALSE(DecodeCheckpointFile(flipped).ok()) << "pos " << pos;
  }
  // Trailing garbage means the file is not what was written.
  std::vector<uint8_t> padded = file;
  padded.push_back(0);
  EXPECT_FALSE(DecodeCheckpointFile(padded).ok());
}

TEST(CheckpointFileTest, SnapshotWriterCadenceAndPruning) {
  const std::string dir = ::testing::TempDir() + "/snapshots_cadence";
  SnapshotPolicy policy;
  policy.directory = dir;
  policy.every_n_rounds = 2;
  policy.keep_last = 2;
  SnapshotWriter writer(policy);
  ASSERT_TRUE(writer.enabled());
  EXPECT_FALSE(writer.ShouldSnapshot(0));
  EXPECT_FALSE(writer.ShouldSnapshot(1));
  EXPECT_TRUE(writer.ShouldSnapshot(2));
  EXPECT_TRUE(writer.ShouldSnapshot(4));

  Checkpoint ckpt = SampleCheckpoint();
  for (int round : {2, 4, 6}) {
    ckpt.round = round;
    ASSERT_TRUE(writer.Write(ckpt).ok());
  }
  EXPECT_EQ(writer.snapshots_written(), 3);
  // keep_last=2: the round-2 snapshot is pruned, the newest valid loads.
  auto latest = LoadLatestSnapshot(dir);
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest->round, 6);
  ckpt.round = 2;
  EXPECT_FALSE(ReadCheckpointFile(dir + "/snapshot-000002.ckpt").ok());

  // Disabled policies never fire.
  SnapshotWriter disabled{SnapshotPolicy{}};
  EXPECT_FALSE(disabled.enabled());
  EXPECT_FALSE(disabled.ShouldSnapshot(2));
}

TEST(CheckpointFileTest, LoadLatestSkipsCorruptSnapshots) {
  const std::string dir = ::testing::TempDir() + "/snapshots_corrupt";
  SnapshotPolicy policy;
  policy.directory = dir;
  SnapshotWriter writer(policy);
  Checkpoint ckpt = SampleCheckpoint();
  ckpt.round = 1;
  ASSERT_TRUE(writer.Write(ckpt).ok());
  ckpt.round = 2;
  ASSERT_TRUE(writer.Write(ckpt).ok());
  // Corrupt the newest snapshot (a crash mid-rename cannot produce this —
  // the rename is atomic — but disks rot); recovery must fall back to the
  // older valid one.
  {
    std::FILE* f = std::fopen((dir + "/snapshot-000002.ckpt").c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 30, SEEK_SET);
    std::fputc(0xee, f);
    std::fclose(f);
  }
  auto latest = LoadLatestSnapshot(dir);
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest->round, 1);
  // An empty/missing directory is NotFound, not a crash.
  EXPECT_EQ(LoadLatestSnapshot(::testing::TempDir() + "/no_such_dir")
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(CheckpointFileTest, WorkerPrefixesShareOneDirectoryDisjointly) {
  // A shard's primary, its standbys, and the root may all snapshot into
  // one directory; the worker prefix must keep their files, pruning, and
  // loads fully disjoint.
  const std::string dir = ::testing::TempDir() + "/snapshots_prefixed";
  auto make_writer = [&](const std::string& prefix) {
    SnapshotPolicy policy;
    policy.directory = dir;
    policy.keep_last = 1;
    policy.worker_prefix = prefix;
    return SnapshotWriter(policy);
  };
  SnapshotWriter s0 = make_writer("s0-");
  SnapshotWriter s1 = make_writer("s1-");
  SnapshotWriter root = make_writer("");

  Checkpoint ckpt = SampleCheckpoint();
  for (int round : {1, 2}) {
    ckpt.round = round;
    ckpt.course.SetInt("owner", 0);
    ASSERT_TRUE(s0.Write(ckpt).ok());
    ckpt.course.SetInt("owner", 1);
    ASSERT_TRUE(s1.Write(ckpt).ok());
  }
  ckpt.round = 7;
  ckpt.course.SetInt("owner", -1);
  ASSERT_TRUE(root.Write(ckpt).ok());

  // Each prefix loads its own newest snapshot, never a neighbour's —
  // even though s1 wrote later rounds into the same directory than root.
  auto loaded0 = LoadLatestSnapshot(dir, "s0-");
  ASSERT_TRUE(loaded0.ok()) << loaded0.status().ToString();
  EXPECT_EQ(loaded0->round, 2);
  EXPECT_EQ(loaded0->course.GetInt("owner", 99), 0);
  auto loaded1 = LoadLatestSnapshot(dir, "s1-");
  ASSERT_TRUE(loaded1.ok()) << loaded1.status().ToString();
  EXPECT_EQ(loaded1->course.GetInt("owner", 99), 1);
  // The unprefixed (legacy) reader never matches prefixed files.
  auto loaded_root = LoadLatestSnapshot(dir);
  ASSERT_TRUE(loaded_root.ok()) << loaded_root.status().ToString();
  EXPECT_EQ(loaded_root->round, 7);
  EXPECT_EQ(loaded_root->course.GetInt("owner", 99), -1);

  // keep_last=1 pruning is per-prefix: s0's round-1 file is gone, but s1's
  // and the root's files survived s0's pruning passes.
  EXPECT_FALSE(ReadCheckpointFile(dir + "/s0-snapshot-000001.ckpt").ok());
  EXPECT_TRUE(ReadCheckpointFile(dir + "/s1-snapshot-000002.ckpt").ok());
  EXPECT_TRUE(ReadCheckpointFile(dir + "/snapshot-000007.ckpt").ok());
}

TEST(CheckpointTest, RestoreModelLoadsParameters) {
  Checkpoint ckpt = SampleCheckpoint();
  Rng rng(9);
  Model other = MakeMlp({4, 6, 2}, &rng);
  ASSERT_FALSE(other.GetStateDict() == ckpt.global_state);
  ASSERT_TRUE(RestoreModel(ckpt, &other).ok());
  EXPECT_TRUE(other.GetStateDict() == ckpt.global_state);
}

TEST(CheckpointTest, RestoreModelRejectsWrongArchitecture) {
  Checkpoint ckpt = SampleCheckpoint();
  Rng rng(9);
  Model wrong = MakeMlp({4, 8, 2}, &rng);  // different hidden width
  EXPECT_FALSE(RestoreModel(ckpt, &wrong).ok());
}

TEST(CheckpointTest, FedCourseResumesFromCheckpoint) {
  // Export a snapshot of a short course, restore a second course from it,
  // and confirm the combined trajectory continues improving — the SHA/PBT
  // mechanism of §4.3.
  SyntheticTwitterOptions options;
  options.num_clients = 20;
  options.seed = 4;
  FedDataset data = MakeSyntheticTwitter(options);

  auto make_job = [&]() {
    FedJob job;
    job.data = &data;
    Rng rng(5);
    job.init_model = MakeLogisticRegression(60, 2, &rng);
    job.server.concurrency = 8;
    job.server.max_rounds = 5;
    job.client.train.lr = 0.5;
    job.client.train.batch_size = 2;
    job.seed = 5;
    return job;
  };

  RunResult first = FedRunner(make_job()).Run();
  Checkpoint ckpt;
  ckpt.round = first.server.rounds;
  ckpt.global_state = first.final_model.GetStateDict();
  auto bytes = SerializeCheckpoint(ckpt);

  auto restored = DeserializeCheckpoint(bytes);
  ASSERT_TRUE(restored.ok());
  FedJob resumed = make_job();
  ASSERT_TRUE(RestoreModel(*restored, &resumed.init_model).ok());
  RunResult second = FedRunner(std::move(resumed)).Run();

  EXPECT_GE(second.server.final_accuracy,
            first.server.final_accuracy - 0.05);
  // A cold 5-round run should not beat the 5+5 resumed run by much.
  RunResult cold = FedRunner(make_job()).Run();
  EXPECT_GE(second.server.final_accuracy, cold.server.final_accuracy - 0.1);
}

}  // namespace
}  // namespace fedscope
