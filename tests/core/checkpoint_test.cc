#include "fedscope/core/checkpoint.h"

#include <gtest/gtest.h>

#include "fedscope/comm/codec.h"
#include "fedscope/core/fed_runner.h"
#include "fedscope/data/synthetic_twitter.h"
#include "fedscope/nn/model_zoo.h"

namespace fedscope {
namespace {

Checkpoint SampleCheckpoint() {
  Rng rng(1);
  Model model = MakeMlp({4, 6, 2}, &rng);
  Checkpoint ckpt;
  ckpt.round = 17;
  ckpt.virtual_time = 1234.5;
  ckpt.best_accuracy = 0.87;
  ckpt.global_state = model.GetStateDict();
  return ckpt;
}

TEST(CheckpointTest, SerializeRoundTrip) {
  Checkpoint ckpt = SampleCheckpoint();
  auto bytes = SerializeCheckpoint(ckpt);
  auto restored = DeserializeCheckpoint(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->round, 17);
  EXPECT_DOUBLE_EQ(restored->virtual_time, 1234.5);
  EXPECT_DOUBLE_EQ(restored->best_accuracy, 0.87);
  EXPECT_TRUE(restored->global_state == ckpt.global_state);
}

TEST(CheckpointTest, RejectsGarbage) {
  EXPECT_FALSE(DeserializeCheckpoint({1, 2, 3}).ok());
  // A valid payload that isn't a checkpoint.
  Payload p;
  p.SetInt("round", 1);
  EXPECT_FALSE(DeserializeCheckpoint(EncodePayload(p)).ok());
}

TEST(CheckpointTest, RejectsTruncation) {
  auto bytes = SerializeCheckpoint(SampleCheckpoint());
  for (size_t len = 0; len < bytes.size(); len += 11) {
    std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + len);
    EXPECT_FALSE(DeserializeCheckpoint(cut).ok());
  }
}

TEST(CheckpointTest, RestoreModelLoadsParameters) {
  Checkpoint ckpt = SampleCheckpoint();
  Rng rng(9);
  Model other = MakeMlp({4, 6, 2}, &rng);
  ASSERT_FALSE(other.GetStateDict() == ckpt.global_state);
  ASSERT_TRUE(RestoreModel(ckpt, &other).ok());
  EXPECT_TRUE(other.GetStateDict() == ckpt.global_state);
}

TEST(CheckpointTest, RestoreModelRejectsWrongArchitecture) {
  Checkpoint ckpt = SampleCheckpoint();
  Rng rng(9);
  Model wrong = MakeMlp({4, 8, 2}, &rng);  // different hidden width
  EXPECT_FALSE(RestoreModel(ckpt, &wrong).ok());
}

TEST(CheckpointTest, FedCourseResumesFromCheckpoint) {
  // Export a snapshot of a short course, restore a second course from it,
  // and confirm the combined trajectory continues improving — the SHA/PBT
  // mechanism of §4.3.
  SyntheticTwitterOptions options;
  options.num_clients = 20;
  options.seed = 4;
  FedDataset data = MakeSyntheticTwitter(options);

  auto make_job = [&]() {
    FedJob job;
    job.data = &data;
    Rng rng(5);
    job.init_model = MakeLogisticRegression(60, 2, &rng);
    job.server.concurrency = 8;
    job.server.max_rounds = 5;
    job.client.train.lr = 0.5;
    job.client.train.batch_size = 2;
    job.seed = 5;
    return job;
  };

  RunResult first = FedRunner(make_job()).Run();
  Checkpoint ckpt;
  ckpt.round = first.server.rounds;
  ckpt.global_state = first.final_model.GetStateDict();
  auto bytes = SerializeCheckpoint(ckpt);

  auto restored = DeserializeCheckpoint(bytes);
  ASSERT_TRUE(restored.ok());
  FedJob resumed = make_job();
  ASSERT_TRUE(RestoreModel(*restored, &resumed.init_model).ok());
  RunResult second = FedRunner(std::move(resumed)).Run();

  EXPECT_GE(second.server.final_accuracy,
            first.server.final_accuracy - 0.05);
  // A cold 5-round run should not beat the 5+5 resumed run by much.
  RunResult cold = FedRunner(make_job()).Run();
  EXPECT_GE(second.server.final_accuracy, cold.server.final_accuracy - 0.1);
}

}  // namespace
}  // namespace fedscope
