#include "fedscope/core/worker.h"

#include <gtest/gtest.h>

#include "fedscope/comm/channel.h"
#include "fedscope/core/events.h"

namespace fedscope {
namespace {

/// A minimal concrete worker exposing the protected Send.
class TestWorker : public BaseWorker {
 public:
  using BaseWorker::BaseWorker;
  void SendNow(Message msg) { Send(std::move(msg)); }
};

TEST(BaseWorkerTest, HandleMessageDispatchesByType) {
  QueueChannel channel;
  TestWorker worker(3, &channel);
  int pings = 0;
  worker.registry().Register("ping", [&](const Message&) { ++pings; });
  Message msg;
  msg.msg_type = "ping";
  worker.HandleMessage(msg);
  worker.HandleMessage(msg);
  EXPECT_EQ(pings, 2);
}

TEST(BaseWorkerTest, UnknownMessageTypeIsDroppedSilently) {
  QueueChannel channel;
  TestWorker worker(1, &channel);
  Message msg;
  msg.msg_type = "never_registered";
  worker.HandleMessage(msg);  // must not crash
  SUCCEED();
}

TEST(BaseWorkerTest, ClockAdvancesWithMessages) {
  QueueChannel channel;
  TestWorker worker(1, &channel);
  worker.registry().Register("tick", [](const Message&) {});
  Message msg;
  msg.msg_type = "tick";
  msg.timestamp = 10.0;
  worker.HandleMessage(msg);
  EXPECT_DOUBLE_EQ(worker.current_time(), 10.0);
  // Time never goes backwards, even for an out-of-order message.
  msg.timestamp = 5.0;
  worker.HandleMessage(msg);
  EXPECT_DOUBLE_EQ(worker.current_time(), 10.0);
}

TEST(BaseWorkerTest, SendStampsSenderAndClampsTimestamp) {
  QueueChannel channel;
  TestWorker worker(7, &channel);
  worker.registry().Register("tick", [](const Message&) {});
  Message advance;
  advance.msg_type = "tick";
  advance.timestamp = 100.0;
  worker.HandleMessage(advance);

  Message out;
  out.receiver = 0;
  out.msg_type = "model_update";
  out.timestamp = 1.0;  // in the worker's past
  worker.SendNow(std::move(out));
  Message sent = channel.Pop();
  EXPECT_EQ(sent.sender, 7);
  EXPECT_DOUBLE_EQ(sent.timestamp, 100.0);  // clamped to now
}

TEST(BaseWorkerTest, SendKeepsFutureTimestamps) {
  QueueChannel channel;
  TestWorker worker(2, &channel);
  Message out;
  out.msg_type = "timer";
  out.timestamp = 55.0;
  worker.SendNow(std::move(out));
  EXPECT_DOUBLE_EQ(channel.Pop().timestamp, 55.0);
}

TEST(BaseWorkerTest, RaiseEventWithoutHandlerIsTolerated) {
  QueueChannel channel;
  TestWorker worker(1, &channel);
  Message context;
  worker.RaiseEvent("custom_condition", context);  // no crash
  int fired = 0;
  worker.registry().Register("custom_condition",
                             [&](const Message&) { ++fired; });
  worker.RaiseEvent("custom_condition", context);
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace fedscope
