#include "fedscope/core/distributed.h"

#include <gtest/gtest.h>

#include <thread>

#include "fedscope/comm/socket_transport.h"
#include "fedscope/core/distributed_aggregator.h"
#include "fedscope/core/events.h"
#include "fedscope/nn/model_zoo.h"
#include "fedscope/obs/course_log.h"
#include "fedscope/obs/metrics.h"
#include "fedscope/obs/obs_context.h"

namespace fedscope {
namespace {

// ---------------------------------------------------------------------------
// Transport layer
// ---------------------------------------------------------------------------

TEST(TcpTransportTest, MessageRoundTripOverLoopback) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  const int port = listener->port();
  EXPECT_GT(port, 0);

  Message sent;
  sent.sender = 3;
  sent.receiver = 0;
  sent.msg_type = "model_update";
  sent.state = 5;
  sent.payload.SetTensor("delta/w", Tensor::FromVector({1.5f, -2.5f}));
  sent.payload.SetInt("num_samples", 40);

  std::thread client_thread([&] {
    auto conn = TcpConnection::Connect("127.0.0.1", port);
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    ASSERT_TRUE(conn->SendMessage(sent).ok());
  });

  auto server_conn = listener->Accept();
  ASSERT_TRUE(server_conn.ok());
  auto received = server_conn->ReceiveMessage();
  client_thread.join();
  ASSERT_TRUE(received.ok()) << received.status().ToString();
  EXPECT_EQ(received->sender, 3);
  EXPECT_EQ(received->msg_type, "model_update");
  EXPECT_TRUE(received->payload == sent.payload);
}

TEST(TcpTransportTest, MultipleMessagesInOrder) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  const int port = listener->port();
  std::thread client_thread([&] {
    auto conn = TcpConnection::Connect("127.0.0.1", port);
    ASSERT_TRUE(conn.ok());
    for (int i = 0; i < 20; ++i) {
      Message msg;
      msg.state = i;
      msg.msg_type = "seq";
      ASSERT_TRUE(conn->SendMessage(msg).ok());
    }
  });
  auto conn = listener->Accept();
  ASSERT_TRUE(conn.ok());
  for (int i = 0; i < 20; ++i) {
    auto msg = conn->ReceiveMessage();
    ASSERT_TRUE(msg.ok());
    EXPECT_EQ(msg->state, i);
  }
  client_thread.join();
}

TEST(TcpTransportTest, EofReportedAsClosed) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  const int port = listener->port();
  std::thread client_thread([&] {
    auto conn = TcpConnection::Connect("127.0.0.1", port);
    ASSERT_TRUE(conn.ok());
    conn->Close();
  });
  auto conn = listener->Accept();
  ASSERT_TRUE(conn.ok());
  auto msg = conn->ReceiveMessage();
  client_thread.join();
  EXPECT_FALSE(msg.ok());
  EXPECT_EQ(msg.status().code(), StatusCode::kDataLoss);
}

TEST(TcpTransportTest, ConnectToClosedPortFails) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  const int port = listener->port();
  listener->Close();
  EXPECT_FALSE(TcpConnection::Connect("127.0.0.1", port).ok());
}

// ---------------------------------------------------------------------------
// Distributed FL course
// ---------------------------------------------------------------------------

Dataset Blobs(int64_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset d;
  d.x = Tensor({n, 2});
  d.labels.resize(n);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t y = i % 2;
    d.labels[i] = y;
    d.x.at(i, 0) = static_cast<float>((y ? 1.5 : -1.5) + rng.Normal(0, 0.5));
    d.x.at(i, 1) = static_cast<float>((y ? 1.5 : -1.5) + rng.Normal(0, 0.5));
  }
  return d;
}

TEST(DistributedTest, FourClientFedAvgOverTcp) {
  constexpr int kClients = 4;
  Rng init_rng(1);
  Model init = MakeLogisticRegression(2, 2, &init_rng);

  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  const int port = listener->port();

  ServerOptions server_options;
  server_options.strategy = Strategy::kSyncVanilla;
  server_options.concurrency = kClients;
  server_options.expected_clients = kClients;
  server_options.max_rounds = 6;
  server_options.seed = 2;

  DistributedServerHost server_host(
      server_options, init, std::make_unique<FedAvgAggregator>(),
      std::move(listener.value()));
  Dataset server_test = Blobs(64, 99);
  server_host.server()->set_evaluator([&server_test](Model* model) {
    return EvaluateClassifier(model, server_test);
  });

  ServerStats stats;
  std::thread server_thread([&] { stats = server_host.Run(); });

  std::vector<std::thread> client_threads;
  std::vector<Status> client_statuses(kClients);
  for (int id = 1; id <= kClients; ++id) {
    client_threads.emplace_back([&, id] {
      ClientOptions options;
      options.jitter_sigma = 0.0;
      options.seed = 100 + id;
      Rng split_rng(id);
      SplitDataset data = Split(Blobs(40, id), 0.7, 0.1, &split_rng);
      DistributedClientHost host(id, std::move(options), init,
                                 std::move(data),
                                 std::make_unique<GeneralTrainer>(),
                                 "127.0.0.1", port);
      client_statuses[id - 1] = host.Run();
    });
  }
  for (auto& t : client_threads) t.join();
  server_thread.join();

  for (const auto& status : client_statuses) {
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  EXPECT_EQ(stats.rounds, 6);
  EXPECT_GT(stats.final_accuracy, 0.85);  // the course actually learned
  EXPECT_EQ(stats.curve.size(), 6u);
}

TEST(DistributedTest, ObservabilityOverTcp) {
  // Distributed hosts feed the same obs sinks as the simulator, keyed to
  // wall time; this verifies the wiring, not timestamp determinism.
  constexpr int kClients = 3;
  Rng init_rng(4);
  Model init = MakeLogisticRegression(2, 2, &init_rng);

  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  const int port = listener->port();

  ServerOptions server_options;
  server_options.strategy = Strategy::kSyncVanilla;
  server_options.concurrency = kClients;
  server_options.expected_clients = kClients;
  server_options.max_rounds = 3;
  server_options.seed = 5;

  DistributedServerHost server_host(
      server_options, init, std::make_unique<FedAvgAggregator>(),
      std::move(listener.value()));
  Dataset server_test = Blobs(64, 98);
  server_host.server()->set_evaluator([&server_test](Model* model) {
    return EvaluateClassifier(model, server_test);
  });
  MetricsRegistry server_metrics;
  CourseLog course_log;
  ObsContext server_obs;
  server_obs.metrics = &server_metrics;
  server_obs.course_log = &course_log;
  server_host.set_obs(&server_obs);

  ServerStats stats;
  std::thread server_thread([&] { stats = server_host.Run(); });

  std::vector<std::thread> client_threads;
  std::vector<MetricsRegistry> client_metrics(kClients);
  std::vector<ObsContext> client_obs(kClients);
  for (int id = 1; id <= kClients; ++id) {
    client_obs[id - 1].metrics = &client_metrics[id - 1];
    client_threads.emplace_back([&, id] {
      ClientOptions options;
      options.jitter_sigma = 0.0;
      options.seed = 300 + id;
      Rng split_rng(id);
      SplitDataset data = Split(Blobs(40, 20 + id), 0.7, 0.1, &split_rng);
      DistributedClientHost host(id, std::move(options), init,
                                 std::move(data),
                                 std::make_unique<GeneralTrainer>(),
                                 "127.0.0.1", port);
      host.set_obs(&client_obs[id - 1]);
      Status status = host.Run();
      EXPECT_TRUE(status.ok()) << status.ToString();
    });
  }
  for (auto& t : client_threads) t.join();
  server_thread.join();

  EXPECT_EQ(course_log.num_rounds(), stats.rounds);
  EXPECT_EQ(course_log.AggCountPerClient(kClients), stats.agg_count);
  // Server downlink: model_para broadcasts counted by the router.
  EXPECT_GT(server_metrics.CounterValue("fs_comm_messages_total",
                                        {{"type", events::kModelPara}}),
            0.0);
  // Each client uplink: one model_update per round it participated in.
  for (int id = 1; id <= kClients; ++id) {
    EXPECT_EQ(client_metrics[id - 1].CounterValue(
                  "fs_comm_messages_total", {{"type", events::kModelUpdate}}),
              static_cast<double>(stats.agg_count[id]))
        << "client " << id;
  }
}

TEST(DistributedTest, AsyncGoalStrategyOverTcp) {
  constexpr int kClients = 5;
  Rng init_rng(3);
  Model init = MakeLogisticRegression(2, 2, &init_rng);
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  const int port = listener->port();

  ServerOptions server_options;
  server_options.strategy = Strategy::kAsyncGoal;
  server_options.aggregation_goal = 2;
  server_options.concurrency = kClients;
  server_options.expected_clients = kClients;
  server_options.staleness_tolerance = 5;
  server_options.max_rounds = 8;
  server_options.seed = 4;

  DistributedServerHost server_host(
      server_options, init,
      std::make_unique<FedAvgAggregator>(FedAvgOptions{1.0, 0.5}),
      std::move(listener.value()));
  Dataset server_test = Blobs(64, 98);
  server_host.server()->set_evaluator([&server_test](Model* model) {
    return EvaluateClassifier(model, server_test);
  });

  ServerStats stats;
  std::thread server_thread([&] { stats = server_host.Run(); });
  std::vector<std::thread> client_threads;
  for (int id = 1; id <= kClients; ++id) {
    client_threads.emplace_back([&, id] {
      ClientOptions options;
      options.seed = 200 + id;
      Rng split_rng(10 + id);
      SplitDataset data = Split(Blobs(40, 10 + id), 0.7, 0.1, &split_rng);
      DistributedClientHost host(id, std::move(options), init,
                                 std::move(data),
                                 std::make_unique<GeneralTrainer>(),
                                 "127.0.0.1", port);
      host.Run().ok();
    });
  }
  for (auto& t : client_threads) t.join();
  server_thread.join();
  EXPECT_EQ(stats.rounds, 8);
  EXPECT_GT(stats.final_accuracy, 0.8);
}

TEST(DistributedTest, HierarchicalCourseOverTcp) {
  // Two-shard topology over real sockets: the root host doubles as the
  // hub relaying aggregator<->client traffic; workers are unchanged.
  constexpr int kClients = 4;
  constexpr int kShards = 2;
  Rng init_rng(1);
  Model init = MakeLogisticRegression(2, 2, &init_rng);

  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  const int port = listener->port();

  ServerOptions server_options;
  server_options.strategy = Strategy::kSyncVanilla;
  server_options.concurrency = kClients;
  server_options.expected_clients = kClients;
  server_options.max_rounds = 6;
  server_options.seed = 2;
  server_options.topology.num_shards = kShards;

  DistributedServerHost server_host(
      server_options, init, std::make_unique<FedAvgAggregator>(),
      std::move(listener.value()));
  Dataset server_test = Blobs(64, 99);
  server_host.server()->set_evaluator([&server_test](Model* model) {
    return EvaluateClassifier(model, server_test);
  });

  ServerStats stats;
  std::thread server_thread([&] { stats = server_host.Run(); });

  std::vector<std::unique_ptr<DistributedAggregatorHost>> agg_hosts;
  for (int shard = 0; shard < kShards; ++shard) {
    EdgeAggregatorOptions options;
    options.topology = server_options.topology;
    options.shard = shard;
    agg_hosts.push_back(std::make_unique<DistributedAggregatorHost>(
        options, "127.0.0.1", port));
  }
  std::vector<std::thread> agg_threads;
  std::vector<Status> agg_statuses(kShards);
  for (int shard = 0; shard < kShards; ++shard) {
    agg_threads.emplace_back([&, shard] {
      agg_statuses[shard] = agg_hosts[shard]->Run();
    });
  }

  std::vector<std::thread> client_threads;
  std::vector<Status> client_statuses(kClients);
  for (int id = 1; id <= kClients; ++id) {
    client_threads.emplace_back([&, id] {
      ClientOptions options;
      options.jitter_sigma = 0.0;
      options.seed = 100 + id;
      Rng split_rng(id);
      SplitDataset data = Split(Blobs(40, id), 0.7, 0.1, &split_rng);
      DistributedClientHost host(id, std::move(options), init,
                                 std::move(data),
                                 std::make_unique<GeneralTrainer>(),
                                 "127.0.0.1", port);
      client_statuses[id - 1] = host.Run();
    });
  }
  for (auto& t : client_threads) t.join();
  for (auto& t : agg_threads) t.join();
  server_thread.join();

  for (const auto& status : client_statuses) {
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  for (const auto& status : agg_statuses) {
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  EXPECT_EQ(stats.rounds, 6);
  EXPECT_GT(stats.final_accuracy, 0.85);  // the course actually learned
  EXPECT_EQ(stats.shard_failovers, 0);
  EXPECT_EQ(server_host.failed_aggregators(), 0);
  for (int id = 1; id <= kClients; ++id) {
    EXPECT_EQ(stats.agg_count[id], 6) << "client " << id;
  }
  // Full participation: one partial per shard per round.
  for (int shard = 0; shard < kShards; ++shard) {
    EXPECT_EQ(agg_hosts[shard]->aggregator()->partials_forwarded(), 6)
        << "shard " << shard;
  }
}

TEST(DistributedTest, HierarchicalFailoverOverTcp) {
  // Shard 0's primary halts mid-course (the socket drops exactly as a
  // SIGKILL would); the hub wakes the shard's hot standby, which promotes
  // under a bumped shard epoch, and the course completes through it.
  constexpr int kClients = 4;
  constexpr int kShards = 2;
  Rng init_rng(1);
  Model init = MakeLogisticRegression(2, 2, &init_rng);

  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  const int port = listener->port();

  ServerOptions server_options;
  server_options.strategy = Strategy::kSyncVanilla;
  server_options.concurrency = kClients;
  server_options.expected_clients = kClients;
  server_options.max_rounds = 6;
  server_options.seed = 2;
  server_options.topology.num_shards = kShards;
  server_options.topology.standbys_per_shard = 1;
  server_options.topology.failure_timeout = 0.05;  // wall seconds here

  DistributedServerHost server_host(
      server_options, init, std::make_unique<FedAvgAggregator>(),
      std::move(listener.value()));
  Dataset server_test = Blobs(64, 99);
  server_host.server()->set_evaluator([&server_test](Model* model) {
    return EvaluateClassifier(model, server_test);
  });

  ServerStats stats;
  std::thread server_thread([&] { stats = server_host.Run(); });

  std::vector<std::unique_ptr<DistributedAggregatorHost>> agg_hosts;
  for (int shard = 0; shard < kShards; ++shard) {
    for (int slot = 0; slot <= 1; ++slot) {
      EdgeAggregatorOptions options;
      options.topology = server_options.topology;
      options.shard = shard;
      options.slot = slot;
      agg_hosts.push_back(std::make_unique<DistributedAggregatorHost>(
          options, "127.0.0.1", port));
    }
  }
  agg_hosts[0]->set_halt_after_forwards(2);  // shard 0 primary dies
  std::vector<std::thread> agg_threads;
  for (auto& host : agg_hosts) {
    agg_threads.emplace_back([&host] { host->Run().ok(); });
  }

  std::vector<std::thread> client_threads;
  std::vector<Status> client_statuses(kClients);
  for (int id = 1; id <= kClients; ++id) {
    client_threads.emplace_back([&, id] {
      ClientOptions options;
      options.jitter_sigma = 0.0;
      options.seed = 100 + id;
      Rng split_rng(id);
      SplitDataset data = Split(Blobs(40, id), 0.7, 0.1, &split_rng);
      DistributedClientHost host(id, std::move(options), init,
                                 std::move(data),
                                 std::make_unique<GeneralTrainer>(),
                                 "127.0.0.1", port);
      client_statuses[id - 1] = host.Run();
    });
  }
  for (auto& t : client_threads) t.join();
  for (auto& t : agg_threads) t.join();
  server_thread.join();

  // Clients never lose their (root) connection during an aggregator
  // failover — only a root crash forces the re-join protocol.
  for (const auto& status : client_statuses) {
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  EXPECT_EQ(stats.rounds, 6);
  EXPECT_EQ(server_host.failed_aggregators(), 1);
  EXPECT_EQ(stats.shard_failovers, 1);
  // agg_hosts[1] is shard 0 slot 1 — the standby that took over.
  EXPECT_EQ(agg_hosts[1]->aggregator()->promotions(), 1);
  EXPECT_TRUE(agg_hosts[1]->aggregator()->active());
  EXPECT_GT(agg_hosts[1]->aggregator()->partials_forwarded(), 0);
  // Every client of every round was aggregated exactly once despite the
  // failover (weight conservation across the failover boundary).
  for (int id = 1; id <= kClients; ++id) {
    EXPECT_EQ(stats.agg_count[id], 6) << "client " << id;
  }
}

TEST(DistributedTest, TimeStrategyRejected) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  ServerOptions options;
  options.strategy = Strategy::kAsyncTime;
  options.expected_clients = 1;
  Rng rng(1);
  EXPECT_DEATH(DistributedServerHost(options,
                                     MakeLogisticRegression(2, 2, &rng),
                                     std::make_unique<FedAvgAggregator>(),
                                     std::move(listener.value())),
               "");
}

}  // namespace
}  // namespace fedscope
