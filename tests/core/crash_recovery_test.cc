// Crash-consistent course recovery (DESIGN.md §10): standalone crash
// drills must be bit-identical to uninterrupted runs; distributed hosts
// must restore from the latest durable snapshot, bump the session epoch,
// and accept client re-joins over unchanged workers.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fedscope/comm/socket_transport.h"
#include "fedscope/core/checkpoint.h"
#include "fedscope/core/distributed.h"
#include "fedscope/core/events.h"
#include "fedscope/core/fed_runner.h"
#include "fedscope/data/synthetic_twitter.h"
#include "fedscope/nn/model_zoo.h"

namespace fedscope {
namespace {

/// Bit-exact state-dict comparison (operator== would conflate 0.0/-0.0
/// and any NaN payloads; resume identity is about bits, not values).
bool BitEqual(const StateDict& a, const StateDict& b) {
  if (a.size() != b.size()) return false;
  for (const auto& [name, tensor] : a) {
    auto it = b.find(name);
    if (it == b.end()) return false;
    if (tensor.shape() != it->second.shape()) return false;
    for (int64_t k = 0; k < tensor.numel(); ++k) {
      const float x = tensor.at(k);
      const float y = it->second.at(k);
      if (std::memcmp(&x, &y, sizeof(float)) != 0) return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Standalone: kill-at-event + restore is invisible to the course
// ---------------------------------------------------------------------------

FedJob MakeStandaloneJob(const FedDataset* data) {
  FedJob job;
  job.data = data;
  Rng rng(5);
  job.init_model = MakeLogisticRegression(60, 2, &rng);
  job.server.concurrency = 8;
  job.server.max_rounds = 5;
  job.client.train.lr = 0.5;
  job.client.train.batch_size = 2;
  job.seed = 5;
  return job;
}

TEST(CrashRecoveryTest, StandaloneCrashResumeIsBitIdentical) {
  SyntheticTwitterOptions options;
  options.num_clients = 20;
  options.seed = 4;
  FedDataset data = MakeSyntheticTwitter(options);

  RunResult baseline = FedRunner(MakeStandaloneJob(&data)).Run();

  // Crash at the very first delivery (restores a round-0 snapshot), in the
  // thick of training, and late in the course.
  for (const int64_t crash_at : {int64_t{0}, int64_t{7}, int64_t{51}}) {
    FedJob job = MakeStandaloneJob(&data);
    job.fault.server_crash_at_event = crash_at;
    FedRunner runner(std::move(job));
    RunResult resumed = runner.Run();
    EXPECT_EQ(runner.recoveries(), 1) << "crash_at " << crash_at;
    EXPECT_TRUE(BitEqual(baseline.final_model.GetStateDict(),
                         resumed.final_model.GetStateDict()))
        << "crash_at " << crash_at << " changed the final model";
    EXPECT_EQ(baseline.server.curve, resumed.server.curve)
        << "crash_at " << crash_at;
    EXPECT_EQ(baseline.server.rounds, resumed.server.rounds);
    EXPECT_EQ(baseline.client_test_accuracy, resumed.client_test_accuracy)
        << "crash_at " << crash_at;
    // The drill serializes through the wire codec directly; no durable
    // snapshot files are involved (or written) unless a policy is set.
    EXPECT_EQ(runner.snapshot_writer().snapshots_written(), 0);
  }
}

TEST(CrashRecoveryTest, VirtualizedCrashResumeIsBitIdentical) {
  SyntheticTwitterOptions options;
  options.num_clients = 20;
  options.seed = 4;
  FedDataset data = MakeSyntheticTwitter(options);

  RunResult baseline = FedRunner(MakeStandaloneJob(&data)).Run();

  // The same drill with client virtualization (DESIGN.md §13): the server
  // is killed and restored while the population exists only as descriptors
  // plus a bounded live-client cache. Suspended clients are untouched by
  // the server restore, so resume must still be bit-identical to the
  // uninterrupted *eager* run.
  for (const int64_t crash_at : {int64_t{0}, int64_t{7}, int64_t{51}}) {
    FedJob job = MakeStandaloneJob(&data);
    job.virtualize = true;
    job.fault.server_crash_at_event = crash_at;
    FedRunner runner(std::move(job));
    RunResult resumed = runner.Run();
    EXPECT_EQ(runner.recoveries(), 1) << "crash_at " << crash_at;
    EXPECT_TRUE(BitEqual(baseline.final_model.GetStateDict(),
                         resumed.final_model.GetStateDict()))
        << "crash_at " << crash_at << " changed the final model";
    EXPECT_EQ(baseline.server.curve, resumed.server.curve)
        << "crash_at " << crash_at;
    EXPECT_EQ(baseline.server.rounds, resumed.server.rounds);
    EXPECT_EQ(baseline.client_test_accuracy, resumed.client_test_accuracy)
        << "crash_at " << crash_at;
    // The memory bound holds straight through the kill+restore: cohort
    // (concurrency 8) plus cache slack and the pre-Trim transient, never
    // all 20 clients.
    EXPECT_LE(runner.client_cache()->stats().live_peak, 11)
        << "crash_at " << crash_at;
  }
}

TEST(CrashRecoveryTest, SnapshotPolicyWritesFilesAndLatestLoads) {
  SyntheticTwitterOptions options;
  options.num_clients = 20;
  options.seed = 4;
  FedDataset data = MakeSyntheticTwitter(options);

  const std::string dir = ::testing::TempDir() + "/runner_snapshots";
  FedJob job = MakeStandaloneJob(&data);
  job.server.max_rounds = 6;
  job.snapshot.directory = dir;
  job.snapshot.every_n_rounds = 2;
  job.snapshot.keep_last = 2;
  FedRunner runner(std::move(job));
  RunResult result = runner.Run();

  // Rounds 2, 4, 6 snapshot; keep_last prunes round 2.
  EXPECT_EQ(runner.snapshot_writer().snapshots_written(), 3);
  auto latest = LoadLatestSnapshot(dir);
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest->round, 6);
  EXPECT_FALSE(ReadCheckpointFile(dir + "/snapshot-000002.ckpt").ok());

  // The latest snapshot restores into a same-architecture model.
  Rng rng(9);
  Model fresh = MakeLogisticRegression(60, 2, &rng);
  ASSERT_TRUE(RestoreModel(latest.value(), &fresh).ok());
  EXPECT_TRUE(BitEqual(fresh.GetStateDict(), latest->global_state));
  (void)result;
}

// ---------------------------------------------------------------------------
// Distributed: epoch-gated ingress + kill, restore, re-join
// ---------------------------------------------------------------------------

Dataset Blobs(int64_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset d;
  d.x = Tensor({n, 2});
  d.labels.resize(n);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t y = i % 2;
    d.labels[i] = y;
    d.x.at(i, 0) = static_cast<float>((y ? 1.5 : -1.5) + rng.Normal(0, 0.5));
    d.x.at(i, 1) = static_cast<float>((y ? 1.5 : -1.5) + rng.Normal(0, 0.5));
  }
  return d;
}

TEST(DistributedRecoveryTest, StaleEpochMessagesRejectedAtIngress) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  ServerOptions options;
  options.strategy = Strategy::kSyncVanilla;
  options.expected_clients = 1;
  options.concurrency = 1;
  Rng rng(1);
  DistributedServerHost host(options, MakeLogisticRegression(2, 2, &rng),
                             std::make_unique<FedAvgAggregator>(),
                             std::move(listener.value()));
  ASSERT_EQ(host.session_epoch(), 0);

  Message update;
  update.sender = 1;
  update.receiver = kServerId;
  update.msg_type = events::kModelUpdate;
  update.state = 0;

  // Unstamped non-join traffic was produced against no known incarnation.
  host.PushIncoming(update);
  EXPECT_EQ(host.stale_epoch_rejected(), 1);

  // The current epoch authenticates.
  update.payload.SetInt(kSessionEpochKey, 0);
  host.PushIncoming(update);
  EXPECT_EQ(host.stale_epoch_rejected(), 1);

  // A wrong epoch is a dead incarnation's message.
  update.state = 1;
  update.payload.SetInt(kSessionEpochKey, 7);
  host.PushIncoming(update);
  EXPECT_EQ(host.stale_epoch_rejected(), 2);

  // join_in is exempt: it is how a client learns the epoch.
  Message join;
  join.sender = 1;
  join.receiver = kServerId;
  join.msg_type = events::kJoinIn;
  host.PushIncoming(join);
  EXPECT_EQ(host.stale_epoch_rejected(), 2);
}

TEST(DistributedRecoveryTest, ServerKillRestoreAndClientRejoin) {
  constexpr int kClients = 3;
  const std::string dir = ::testing::TempDir() + "/distributed_snapshots";
  Rng init_rng(7);
  Model init = MakeLogisticRegression(2, 2, &init_rng);

  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  const int port = listener->port();

  ServerOptions server_options;
  server_options.strategy = Strategy::kSyncVanilla;
  server_options.concurrency = kClients;
  server_options.expected_clients = kClients;
  server_options.max_rounds = 5;
  server_options.seed = 2;

  SnapshotPolicy policy;
  policy.directory = dir;
  policy.every_n_rounds = 1;
  policy.keep_last = 2;

  Dataset server_test = Blobs(64, 99);
  auto evaluator = [&server_test](Model* model) {
    return EvaluateClassifier(model, server_test);
  };

  auto host1 = std::make_unique<DistributedServerHost>(
      server_options, init, std::make_unique<FedAvgAggregator>(),
      std::move(listener.value()));
  host1->set_snapshot_policy(policy);
  host1->set_halt_after_round(2);
  host1->server()->set_evaluator(evaluator);

  ServerStats stats1;
  std::thread server_thread1([&] { stats1 = host1->Run(); });

  std::vector<std::thread> client_threads;
  std::vector<Status> client_statuses(kClients);
  std::vector<int> client_rejoins(kClients, 0);
  for (int id = 1; id <= kClients; ++id) {
    client_threads.emplace_back([&, id] {
      ClientOptions options;
      options.jitter_sigma = 0.0;
      options.seed = 100 + id;
      TransportOptions transport;
      // Generous connect retries: the replacement server binds while the
      // fleet is already backing off against the dead port.
      transport.connect_attempts = 400;
      transport.retry_base_delay_ms = 5;
      transport.retry_max_delay_ms = 50;
      transport.retry_seed = 77 + id;
      transport.rejoin_attempts = 3;
      Rng split_rng(id);
      SplitDataset data = Split(Blobs(40, id), 0.7, 0.1, &split_rng);
      DistributedClientHost host(id, std::move(options), init,
                                 std::move(data),
                                 std::make_unique<GeneralTrainer>(),
                                 "127.0.0.1", port, transport);
      client_statuses[id - 1] = host.Run();
      client_rejoins[id - 1] = host.rejoins();
    });
  }

  // The halt knob returns from Run() abruptly after round 2 — no finish
  // broadcast, exactly a SIGKILLed process. Destroying the host drops the
  // connections: clients observe mid-course EOF and start re-joining.
  server_thread1.join();
  EXPECT_EQ(stats1.rounds, 2);
  EXPECT_EQ(host1->snapshot_writer().snapshots_written(), 2);
  host1.reset();

  auto latest = LoadLatestSnapshot(dir);
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest->round, 2);

  auto listener2 = TcpListener::Bind(port);
  ASSERT_TRUE(listener2.ok()) << listener2.status().ToString();
  auto host2 = std::make_unique<DistributedServerHost>(
      server_options, init, std::make_unique<FedAvgAggregator>(),
      std::move(listener2.value()));
  host2->server()->set_evaluator(evaluator);
  ASSERT_TRUE(host2->RestoreFromCheckpoint(latest.value()).ok());
  EXPECT_EQ(host2->session_epoch(), 1);

  ServerStats stats2;
  std::thread server_thread2([&] { stats2 = host2->Run(); });
  for (auto& t : client_threads) t.join();
  server_thread2.join();

  for (int i = 0; i < kClients; ++i) {
    EXPECT_TRUE(client_statuses[i].ok())
        << "client " << i + 1 << ": " << client_statuses[i].ToString();
    // At least one re-join is the crash itself; a second can happen when a
    // reconnect lands in the dead listener's TCP backlog and gets reset —
    // the budgeted-retry case rejoin_attempts exists for.
    EXPECT_GE(client_rejoins[i], 1) << "client " << i + 1;
    EXPECT_LE(client_rejoins[i], 3) << "client " << i + 1;
  }
  // The restored course continues from round 2 and completes: the full
  // curve spans both incarnations.
  EXPECT_EQ(stats2.rounds, 5);
  EXPECT_EQ(stats2.curve.size(), 5u);
  EXPECT_GT(stats2.final_accuracy, 0.8);
}

}  // namespace
}  // namespace fedscope
