#include "fedscope/core/events.h"

#include <gtest/gtest.h>

namespace fedscope {
namespace {

TEST(EventsTest, MessageEventsClassified) {
  EXPECT_EQ(ClassifyEvent(events::kModelPara),
            EventClass::kMessagePassing);
  EXPECT_EQ(ClassifyEvent(events::kJoinIn), EventClass::kMessagePassing);
  EXPECT_EQ(ClassifyEvent(events::kMetrics), EventClass::kMessagePassing);
}

TEST(EventsTest, ConditionEventsClassified) {
  EXPECT_EQ(ClassifyEvent(events::kAllReceived),
            EventClass::kConditionChecking);
  EXPECT_EQ(ClassifyEvent(events::kGoalAchieved),
            EventClass::kConditionChecking);
  EXPECT_EQ(ClassifyEvent(events::kTimeUp),
            EventClass::kConditionChecking);
  EXPECT_EQ(ClassifyEvent(events::kPerformanceDrop),
            EventClass::kConditionChecking);
}

TEST(EventsTest, UserDefinedEventsAreConditions) {
  EXPECT_EQ(ClassifyEvent("my_custom_event"),
            EventClass::kConditionChecking);
}

TEST(EventsTest, BuiltinListsAreDisjoint) {
  auto msgs = BuiltinMessageEvents();
  auto conds = BuiltinConditionEvents();
  for (const auto& m : msgs) {
    for (const auto& c : conds) EXPECT_NE(m, c);
  }
  EXPECT_GE(msgs.size(), 7u);
  EXPECT_GE(conds.size(), 6u);
}

}  // namespace
}  // namespace fedscope
