#include <gtest/gtest.h>

#include "fedscope/core/client.h"
#include "fedscope/core/events.h"
#include "fedscope/core/server.h"
#include "fedscope/nn/model_zoo.h"
#include "fedscope/tensor/tensor_ops.h"
#include "fedscope/util/logging.h"

namespace fedscope {
namespace {

Dataset Blobs(int64_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset d;
  d.x = Tensor({n, 2});
  d.labels.resize(n);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t y = i % 2;
    d.labels[i] = y;
    d.x.at(i, 0) = static_cast<float>((y ? 1.5 : -1.5) + rng.Normal(0, 0.5));
    d.x.at(i, 1) = static_cast<float>((y ? 1.5 : -1.5) + rng.Normal(0, 0.5));
  }
  return d;
}

SplitDataset MakeSplit(uint64_t seed) {
  Rng rng(seed);
  return Split(Blobs(40, seed), 0.6, 0.2, &rng);
}

Model TestModel(uint64_t seed = 1) {
  Rng rng(seed);
  return MakeLogisticRegression(2, 2, &rng);
}

std::unique_ptr<Client> MakeClient(int id, QueueChannel* channel,
                                   ClientOptions options = {}) {
  options.jitter_sigma = 0.0;
  return std::make_unique<Client>(id, std::move(options), TestModel(),
                                  MakeSplit(id),
                                  std::make_unique<GeneralTrainer>(),
                                  channel);
}

Message BroadcastTo(int client_id, Model* model, int round,
                    double time = 0.0) {
  Message msg;
  msg.sender = kServerId;
  msg.receiver = client_id;
  msg.msg_type = events::kModelPara;
  msg.state = round;
  msg.timestamp = time;
  msg.payload.SetStateDict("model", model->GetStateDict());
  return msg;
}

// ---------------------------------------------------------------------------
// Client behaviour
// ---------------------------------------------------------------------------

TEST(ClientTest, JoinInCarriesDeviceEstimate) {
  QueueChannel channel;
  auto client = MakeClient(3, &channel);
  client->JoinIn();
  ASSERT_EQ(channel.Size(), 1u);
  Message msg = channel.Pop();
  EXPECT_EQ(msg.msg_type, events::kJoinIn);
  EXPECT_EQ(msg.sender, 3);
  EXPECT_EQ(msg.receiver, kServerId);
  EXPECT_GT(msg.payload.GetDouble("resp_score", 0.0), 0.0);
  EXPECT_GT(msg.payload.GetInt("num_train", 0), 0);
}

TEST(ClientTest, ModelParaTriggersTrainingAndUpdate) {
  QueueChannel channel;
  auto client = MakeClient(1, &channel);
  Model global = TestModel(42);
  client->HandleMessage(BroadcastTo(1, &global, /*round=*/5));
  ASSERT_EQ(channel.Size(), 1u);
  Message reply = channel.Pop();
  EXPECT_EQ(reply.msg_type, events::kModelUpdate);
  EXPECT_EQ(reply.state, 5);  // echoes the round it started from
  EXPECT_GT(reply.timestamp, 0.0);  // latency added
  StateDict delta = reply.payload.GetStateDict("delta");
  EXPECT_EQ(delta.size(), 2u);
  EXPECT_GT(SdNorm(delta), 0.0);  // training moved the parameters
  EXPECT_GT(reply.payload.GetInt("num_samples", 0), 0);
  EXPECT_EQ(client->rounds_trained(), 1);
}

TEST(ClientTest, DeltaIsLocalMinusReceived) {
  QueueChannel channel;
  auto client = MakeClient(1, &channel);
  Model global = TestModel(42);
  StateDict sent = global.GetStateDict();
  client->HandleMessage(BroadcastTo(1, &global, 0));
  StateDict delta = channel.Pop().payload.GetStateDict("delta");
  StateDict local = client->model()->GetStateDict();
  StateDict reconstructed = SdAdd(sent, delta);
  EXPECT_LT(SdNorm(SdSub(reconstructed, local)), 1e-4);
}

TEST(ClientTest, CrashedClientNeverReplies) {
  QueueChannel channel;
  ClientOptions options;
  options.device.crash_prob = 1.0;
  auto client = MakeClient(1, &channel, options);
  Model global = TestModel();
  client->HandleMessage(BroadcastTo(1, &global, 0));
  EXPECT_TRUE(channel.Empty());
}

TEST(ClientTest, FinishStopsParticipation) {
  QueueChannel channel;
  auto client = MakeClient(1, &channel);
  Message finish;
  finish.receiver = 1;
  finish.msg_type = events::kFinish;
  client->HandleMessage(finish);
  EXPECT_TRUE(client->finished());
  Model global = TestModel();
  client->HandleMessage(BroadcastTo(1, &global, 0));
  EXPECT_TRUE(channel.Empty());  // no training after finish
}

TEST(ClientTest, EvaluateRequestYieldsMetrics) {
  QueueChannel channel;
  auto client = MakeClient(1, &channel);
  Message req;
  req.receiver = 1;
  req.msg_type = events::kEvaluate;
  req.state = 2;
  client->HandleMessage(req);
  ASSERT_EQ(channel.Size(), 1u);
  Message metrics = channel.Pop();
  EXPECT_EQ(metrics.msg_type, events::kMetrics);
  EXPECT_GE(metrics.payload.GetDouble("test_acc", -1.0), 0.0);
  EXPECT_GT(metrics.payload.GetInt("test_n", 0), 0);
}

TEST(ClientTest, DpPluginBoundsDeltaNorm) {
  QueueChannel channel;
  ClientOptions options;
  options.dp.enable = true;
  options.dp.clip_norm = 0.01;
  options.dp.noise_multiplier = 0.0;  // clip only, deterministic bound
  auto client = MakeClient(1, &channel, options);
  Model global = TestModel();
  client->HandleMessage(BroadcastTo(1, &global, 0));
  StateDict delta = channel.Pop().payload.GetStateDict("delta");
  EXPECT_LE(SdNorm(delta), 0.01 + 1e-6);
}

TEST(ClientTest, UpdatePoisonerRewritesDelta) {
  QueueChannel channel;
  auto client = MakeClient(1, &channel);
  client->set_update_poisoner([](StateDict* delta) {
    for (auto& [name, tensor] : *delta) {
      for (int64_t i = 0; i < tensor.numel(); ++i) tensor.at(i) = 7.0f;
    }
  });
  Model global = TestModel();
  client->HandleMessage(BroadcastTo(1, &global, 0));
  StateDict delta = channel.Pop().payload.GetStateDict("delta");
  for (const auto& [name, tensor] : delta) {
    for (int64_t i = 0; i < tensor.numel(); ++i) {
      EXPECT_EQ(tensor.at(i), 7.0f);
    }
  }
}

TEST(ClientTest, HpoConfigOverridesRound) {
  QueueChannel channel;
  ClientOptions options;
  options.train.local_steps = 4;
  options.train.batch_size = 5;
  auto client = MakeClient(1, &channel, options);
  Model global = TestModel();
  Message msg = BroadcastTo(1, &global, 0);
  msg.payload.SetDouble("hpo.local_steps", 9);
  client->HandleMessage(msg);
  Message reply = channel.Pop();
  EXPECT_EQ(reply.payload.GetInt("local_steps", 0), 9);
  EXPECT_EQ(reply.payload.GetInt("num_samples", 0), 9 * 5);
}

TEST(ClientTest, FeedbackRequestedYieldsValLosses) {
  QueueChannel channel;
  auto client = MakeClient(1, &channel);
  Model global = TestModel();
  Message msg = BroadcastTo(1, &global, 0);
  msg.payload.SetInt("hpo.want_feedback", 1);
  client->HandleMessage(msg);
  Message reply = channel.Pop();
  EXPECT_TRUE(reply.payload.HasScalar("val_loss_before"));
  EXPECT_TRUE(reply.payload.HasScalar("val_loss_after"));
}

TEST(ClientTest, ShareFilterRestrictsDeltaKeys) {
  QueueChannel channel;
  ClientOptions options;
  options.share_filter = ExcludeSubstrings({"bias"});
  auto client = MakeClient(1, &channel, options);
  Model global = TestModel();
  Message msg = BroadcastTo(1, &global, 0);
  client->HandleMessage(msg);
  StateDict delta = channel.Pop().payload.GetStateDict("delta");
  EXPECT_EQ(delta.size(), 1u);
  EXPECT_TRUE(delta.count("fc.weight"));
}

TEST(ClientTest, LowBandwidthDeclinesEveryOtherRound) {
  QueueChannel channel;
  ClientOptions options;
  options.device.up_bandwidth = 100.0;  // below the threshold
  options.device.down_bandwidth = 100.0;
  options.low_bandwidth_threshold = 1000.0;
  auto client = MakeClient(1, &channel, options);
  Model global = TestModel();

  client->HandleMessage(BroadcastTo(1, &global, 0));  // declined
  Message first = channel.Pop();
  EXPECT_EQ(first.payload.GetInt("declined", 0), 1);
  EXPECT_TRUE(first.payload.GetStateDict("delta").empty());

  client->HandleMessage(BroadcastTo(1, &global, 1));  // trains
  Message second = channel.Pop();
  EXPECT_EQ(second.payload.GetInt("declined", 0), 0);
  EXPECT_FALSE(second.payload.GetStateDict("delta").empty());

  client->HandleMessage(BroadcastTo(1, &global, 2));  // declined again
  EXPECT_EQ(channel.Pop().payload.GetInt("declined", 0), 1);
  EXPECT_EQ(client->declined_count(), 2);
  EXPECT_EQ(client->rounds_trained(), 1);
}

TEST(ClientTest, FastClientNeverDeclines) {
  QueueChannel channel;
  ClientOptions options;
  options.low_bandwidth_threshold = 1000.0;  // device default is 1e6 B/s
  auto client = MakeClient(1, &channel, options);
  Model global = TestModel();
  for (int round = 0; round < 4; ++round) {
    client->HandleMessage(BroadcastTo(1, &global, round));
  }
  EXPECT_EQ(client->declined_count(), 0);
  EXPECT_EQ(client->rounds_trained(), 4);
}

TEST(ClientTest, CustomHandlerOverwritesDefault) {
  QueueChannel channel;
  auto client = MakeClient(1, &channel);
  int custom_calls = 0;
  client->registry().Register(events::kModelPara,
                              [&](const Message&) { ++custom_calls; });
  Model global = TestModel();
  client->HandleMessage(BroadcastTo(1, &global, 0));
  EXPECT_EQ(custom_calls, 1);
  EXPECT_TRUE(channel.Empty());  // default training behaviour replaced
}

// ---------------------------------------------------------------------------
// Server behaviour (driven directly through messages)
// ---------------------------------------------------------------------------

std::unique_ptr<Server> MakeServer(QueueChannel* channel,
                                   ServerOptions options) {
  auto server = std::make_unique<Server>(
      std::move(options), TestModel(7),
      std::make_unique<FedAvgAggregator>(FedAvgOptions{1.0, 0.0}), channel);
  return server;
}

Message JoinFrom(int id) {
  Message msg;
  msg.sender = id;
  msg.receiver = kServerId;
  msg.msg_type = events::kJoinIn;
  msg.payload.SetDouble("resp_score", 1.0);
  return msg;
}

Message UpdateFrom(int id, int round, Model* reference, float bump) {
  Message msg;
  msg.sender = id;
  msg.receiver = kServerId;
  msg.msg_type = events::kModelUpdate;
  msg.state = round;
  StateDict delta = SdScale(reference->GetStateDict(), 0.0f);
  for (auto& [name, tensor] : delta) {
    for (int64_t i = 0; i < tensor.numel(); ++i) tensor.at(i) = bump;
  }
  msg.payload.SetStateDict("delta", delta);
  msg.payload.SetInt("num_samples", 10);
  msg.payload.SetInt("local_steps", 4);
  return msg;
}

TEST(ServerTest, CustomHandlerOverwritesStrategyHandlerWithWarning) {
  // The paper's customization flow (§3.2): re-registering a built-in
  // strategy event on a live worker logs a warning — captured via the
  // sink, not stderr — and the latest handler takes effect.
  QueueChannel channel;
  ServerOptions options;
  options.expected_clients = 2;
  options.concurrency = 2;
  auto server = MakeServer(&channel, options);
  ASSERT_TRUE(server->registry().Has(events::kModelUpdate));

  std::vector<std::string> warnings;
  Logging::set_sink([&](LogLevel level, const std::string& text) {
    if (level == LogLevel::kWarning) warnings.push_back(text);
  });
  int intercepted = 0;
  const bool overwrote = server->registry().Register(
      events::kModelUpdate, [&](const Message&) { ++intercepted; });
  Logging::set_sink(nullptr);

  EXPECT_TRUE(overwrote);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find(events::kModelUpdate), std::string::npos);
  EXPECT_NE(warnings[0].find("overwrites"), std::string::npos);

  // The stock aggregation path is gone: the intercept sees the update and
  // the global model stays untouched.
  server->HandleMessage(JoinFrom(1));
  server->HandleMessage(JoinFrom(2));
  const StateDict before = server->global_model()->GetStateDict();
  Model ref = TestModel(7);
  server->HandleMessage(UpdateFrom(1, 0, &ref, 0.25f));
  server->HandleMessage(UpdateFrom(2, 0, &ref, 0.25f));
  EXPECT_EQ(intercepted, 2);
  EXPECT_TRUE(server->global_model()->GetStateDict() == before);
}

TEST(ServerTest, JoinFlowAcksAndStarts) {
  QueueChannel channel;
  ServerOptions options;
  options.expected_clients = 3;
  options.concurrency = 2;
  auto server = MakeServer(&channel, options);
  server->HandleMessage(JoinFrom(1));
  server->HandleMessage(JoinFrom(2));
  EXPECT_EQ(server->joined_clients(), 2);
  server->HandleMessage(JoinFrom(3));
  // 3 assign_id acks + 2 model_para broadcasts.
  int acks = 0, broadcasts = 0;
  while (!channel.Empty()) {
    Message m = channel.Pop();
    if (m.msg_type == events::kAssignId) ++acks;
    if (m.msg_type == events::kModelPara) ++broadcasts;
  }
  EXPECT_EQ(acks, 3);
  EXPECT_EQ(broadcasts, 2);
  EXPECT_EQ(server->round(), 0);
}

TEST(ServerTest, SyncAggregatesWhenAllReceived) {
  QueueChannel channel;
  ServerOptions options;
  options.expected_clients = 2;
  options.concurrency = 2;
  options.max_rounds = 10;
  auto server = MakeServer(&channel, options);
  server->HandleMessage(JoinFrom(1));
  server->HandleMessage(JoinFrom(2));
  while (!channel.Empty()) channel.Pop();

  Model ref = TestModel(7);
  StateDict before = server->global_model()->GetStateDict();
  server->HandleMessage(UpdateFrom(1, 0, &ref, 1.0f));
  EXPECT_EQ(server->round(), 0);  // waiting for the second client
  server->HandleMessage(UpdateFrom(2, 0, &ref, 3.0f));
  EXPECT_EQ(server->round(), 1);
  StateDict after = server->global_model()->GetStateDict();
  // delta averaged: (1 + 3)/2 = 2 added to every coordinate.
  StateDict diff = SdSub(after, before);
  for (const auto& [name, tensor] : diff) {
    for (int64_t i = 0; i < tensor.numel(); ++i) {
      EXPECT_NEAR(tensor.at(i), 2.0f, 1e-5);
    }
  }
  EXPECT_EQ(server->stats().agg_count[1], 1);
  EXPECT_EQ(server->stats().agg_count[2], 1);
}

TEST(ServerTest, StaleUpdateBeyondToleranceDropped) {
  QueueChannel channel;
  ServerOptions options;
  options.expected_clients = 2;
  options.concurrency = 2;
  options.strategy = Strategy::kAsyncGoal;
  options.aggregation_goal = 1;
  options.staleness_tolerance = 0;
  options.max_rounds = 100;
  auto server = MakeServer(&channel, options);
  server->HandleMessage(JoinFrom(1));
  server->HandleMessage(JoinFrom(2));
  while (!channel.Empty()) channel.Pop();

  Model ref = TestModel(7);
  server->HandleMessage(UpdateFrom(1, 0, &ref, 1.0f));  // fresh, aggregates
  EXPECT_EQ(server->round(), 1);
  server->HandleMessage(UpdateFrom(2, 0, &ref, 1.0f));  // staleness 1 > 0
  EXPECT_EQ(server->round(), 1);  // dropped, no aggregation
  EXPECT_EQ(server->stats().dropped_stale, 1);
}

TEST(ServerTest, TargetAccuracyTriggersFinish) {
  QueueChannel channel;
  ServerOptions options;
  options.expected_clients = 1;
  options.concurrency = 1;
  options.target_accuracy = 0.5;
  options.max_rounds = 100;
  auto server = MakeServer(&channel, options);
  server->set_evaluator([](Model*) {
    EvalResult r;
    r.accuracy = 0.9;  // instantly above target
    return r;
  });
  server->HandleMessage(JoinFrom(1));
  while (!channel.Empty()) channel.Pop();
  Model ref = TestModel(7);
  server->HandleMessage(UpdateFrom(1, 0, &ref, 0.1f));
  EXPECT_TRUE(server->finished());
  EXPECT_TRUE(server->stats().reached_target);
  // A finish message went out to the client.
  bool finish_seen = false;
  while (!channel.Empty()) {
    if (channel.Pop().msg_type == events::kFinish) finish_seen = true;
  }
  EXPECT_TRUE(finish_seen);
}

TEST(ServerTest, MaxRoundsTerminates) {
  QueueChannel channel;
  ServerOptions options;
  options.expected_clients = 1;
  options.concurrency = 1;
  options.max_rounds = 2;
  auto server = MakeServer(&channel, options);
  server->HandleMessage(JoinFrom(1));
  while (!channel.Empty()) channel.Pop();
  Model ref = TestModel(7);
  server->HandleMessage(UpdateFrom(1, 0, &ref, 0.1f));
  EXPECT_FALSE(server->finished());
  server->HandleMessage(UpdateFrom(1, 1, &ref, 0.1f));
  EXPECT_TRUE(server->finished());
  EXPECT_EQ(server->stats().rounds, 2);
}

TEST(ServerTest, AfterReceivingBroadcastsImmediately) {
  QueueChannel channel;
  ServerOptions options;
  options.expected_clients = 3;
  options.concurrency = 2;
  options.strategy = Strategy::kAsyncGoal;
  options.aggregation_goal = 5;  // won't trigger here
  options.broadcast = BroadcastManner::kAfterReceiving;
  auto server = MakeServer(&channel, options);
  for (int id = 1; id <= 3; ++id) server->HandleMessage(JoinFrom(id));
  while (!channel.Empty()) channel.Pop();

  Model ref = TestModel(7);
  server->HandleMessage(UpdateFrom(1, 0, &ref, 0.1f));
  // No aggregation (goal 5), but one new model_para goes out immediately.
  int broadcasts = 0;
  while (!channel.Empty()) {
    if (channel.Pop().msg_type == events::kModelPara) ++broadcasts;
  }
  EXPECT_EQ(broadcasts, 1);
  EXPECT_EQ(server->round(), 0);
}

TEST(ServerTest, TimerDrivesTimeUpAggregation) {
  QueueChannel channel;
  ServerOptions options;
  options.expected_clients = 2;
  options.concurrency = 2;
  options.strategy = Strategy::kAsyncTime;
  options.time_budget = 10.0;
  options.min_received = 1;
  auto server = MakeServer(&channel, options);
  server->HandleMessage(JoinFrom(1));
  server->HandleMessage(JoinFrom(2));
  // Drain join traffic; a timer message to self must have been scheduled.
  bool timer_scheduled = false;
  Message timer;
  while (!channel.Empty()) {
    Message m = channel.Pop();
    if (m.msg_type == events::kTimer && m.receiver == kServerId) {
      timer_scheduled = true;
      timer = m;
    }
  }
  ASSERT_TRUE(timer_scheduled);
  EXPECT_DOUBLE_EQ(timer.timestamp, 10.0);

  Model ref = TestModel(7);
  server->HandleMessage(UpdateFrom(1, 0, &ref, 1.0f));
  EXPECT_EQ(server->round(), 0);  // waits for the timer
  server->HandleMessage(timer);
  EXPECT_EQ(server->round(), 1);  // time_up fired aggregation
}

TEST(ServerTest, TimerWithNoFeedbackExtendsRound) {
  QueueChannel channel;
  ServerOptions options;
  options.expected_clients = 2;
  options.concurrency = 2;
  options.strategy = Strategy::kAsyncTime;
  options.time_budget = 10.0;
  options.min_received = 1;
  auto server = MakeServer(&channel, options);
  server->HandleMessage(JoinFrom(1));
  server->HandleMessage(JoinFrom(2));
  Message timer;
  while (!channel.Empty()) {
    Message m = channel.Pop();
    if (m.msg_type == events::kTimer) timer = m;
  }
  server->HandleMessage(timer);  // no updates buffered -> remedial measures
  EXPECT_EQ(server->round(), 0);
  bool new_timer = false;
  while (!channel.Empty()) {
    Message m = channel.Pop();
    if (m.msg_type == events::kTimer) {
      new_timer = true;
      EXPECT_DOUBLE_EQ(m.timestamp, 20.0);
    }
  }
  EXPECT_TRUE(new_timer);
}

TEST(ServerTest, DeclinedUpdateFreesSlotInSync) {
  QueueChannel channel;
  ServerOptions options;
  options.expected_clients = 2;
  options.concurrency = 2;
  options.max_rounds = 10;
  auto server = MakeServer(&channel, options);
  server->HandleMessage(JoinFrom(1));
  server->HandleMessage(JoinFrom(2));
  while (!channel.Empty()) channel.Pop();

  // Client 2 declines; the sync trigger must fire on client 1 alone.
  Message decline;
  decline.sender = 2;
  decline.receiver = kServerId;
  decline.msg_type = events::kModelUpdate;
  decline.state = 0;
  decline.payload.SetInt("declined", 1);
  server->HandleMessage(decline);
  EXPECT_EQ(server->round(), 0);
  EXPECT_EQ(server->stats().declined, 1);

  Model ref = TestModel(7);
  server->HandleMessage(UpdateFrom(1, 0, &ref, 1.0f));
  EXPECT_EQ(server->round(), 1);  // aggregated without client 2
}

TEST(ServerTest, StalenessLogRecordsContributions) {
  QueueChannel channel;
  ServerOptions options;
  options.expected_clients = 2;
  options.concurrency = 2;
  options.strategy = Strategy::kAsyncGoal;
  options.aggregation_goal = 1;
  options.staleness_tolerance = 10;
  options.max_rounds = 10;
  auto server = MakeServer(&channel, options);
  server->HandleMessage(JoinFrom(1));
  server->HandleMessage(JoinFrom(2));
  while (!channel.Empty()) channel.Pop();
  Model ref = TestModel(7);
  server->HandleMessage(UpdateFrom(1, 0, &ref, 0.1f));  // staleness 0
  server->HandleMessage(UpdateFrom(2, 0, &ref, 0.1f));  // staleness 1
  const auto& log = server->stats().staleness_log;
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], 0);
  EXPECT_EQ(log[1], 1);
}

TEST(ServerTest, StalenessExactlyAtToleranceIsKept) {
  // §3.3.1-i boundary: an update whose staleness equals the toleration is
  // the oldest acceptable contribution — it must be aggregated, not dropped.
  QueueChannel channel;
  ServerOptions options;
  options.expected_clients = 2;
  options.concurrency = 2;
  options.strategy = Strategy::kAsyncGoal;
  options.aggregation_goal = 1;
  options.staleness_tolerance = 1;
  options.max_rounds = 10;
  auto server = MakeServer(&channel, options);
  server->HandleMessage(JoinFrom(1));
  server->HandleMessage(JoinFrom(2));
  while (!channel.Empty()) channel.Pop();
  Model ref = TestModel(7);
  server->HandleMessage(UpdateFrom(1, 0, &ref, 0.1f));  // round 0 -> 1
  EXPECT_EQ(server->round(), 1);
  server->HandleMessage(UpdateFrom(2, 0, &ref, 0.1f));  // staleness == 1
  EXPECT_EQ(server->round(), 2);  // aggregated, round advanced
  EXPECT_EQ(server->stats().dropped_stale, 0);
  const auto& log = server->stats().staleness_log;
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[1], 1);  // kept at exactly the toleration
}

TEST(ServerTest, StalenessOnePastToleranceIsDropped) {
  // One version past the toleration flips the verdict: the update is
  // discarded entirely and contributes nothing to any aggregation.
  QueueChannel channel;
  ServerOptions options;
  options.expected_clients = 2;
  options.concurrency = 2;
  options.strategy = Strategy::kAsyncGoal;
  options.aggregation_goal = 1;
  options.staleness_tolerance = 1;
  options.max_rounds = 10;
  auto server = MakeServer(&channel, options);
  server->HandleMessage(JoinFrom(1));
  server->HandleMessage(JoinFrom(2));
  while (!channel.Empty()) channel.Pop();
  Model ref = TestModel(7);
  server->HandleMessage(UpdateFrom(1, 0, &ref, 0.1f));  // round 0 -> 1
  server->HandleMessage(UpdateFrom(1, 1, &ref, 0.1f));  // round 1 -> 2
  EXPECT_EQ(server->round(), 2);
  server->HandleMessage(UpdateFrom(2, 0, &ref, 0.1f));  // staleness == 2
  EXPECT_EQ(server->round(), 2);  // dropped: no aggregation happened
  EXPECT_EQ(server->stats().dropped_stale, 1);
  EXPECT_EQ(server->stats().staleness_log.size(), 2u);
}

// ---------------------------------------------------------------------------
// Extensibility: new <event, handler> pairs with user-defined message
// types (paper §3.6 — "users can add new events related to message passing
// to enable heterogeneous information exchange").
// ---------------------------------------------------------------------------

TEST(ExtensibilityTest, CustomMessageTypeFlowsBetweenCustomHandlers) {
  QueueChannel channel;
  auto client = MakeClient(1, &channel);

  // The user replaces the FedAvg training behaviour: on model_para the
  // client shares raw *gradients* (a new message type) instead of deltas.
  client->registry().Register(
      events::kModelPara,
      [&](const Message& msg) {
        Message reply;
        reply.sender = 1;
        reply.receiver = kServerId;
        reply.msg_type = "gradients";
        reply.state = msg.state;
        reply.payload.SetTensor("grad/w", Tensor::FromVector({0.25f}));
        channel.Send(reply);
      },
      /*emits=*/{"gradients"});

  Model global = TestModel();
  client->HandleMessage(BroadcastTo(1, &global, 3));
  ASSERT_EQ(channel.Size(), 1u);
  Message out = channel.Pop();
  EXPECT_EQ(out.msg_type, "gradients");
  EXPECT_EQ(out.state, 3);

  // A custom server-side handler consumes the new type.
  ServerOptions options;
  options.expected_clients = 1;
  auto server = std::make_unique<Server>(
      options, TestModel(), std::make_unique<FedAvgAggregator>(), &channel);
  int gradients_seen = 0;
  server->registry().Register("gradients", [&](const Message& msg) {
    gradients_seen += msg.payload.HasTensor("grad/w") ? 1 : 0;
  });
  server->HandleMessage(out);
  EXPECT_EQ(gradients_seen, 1);
}

TEST(ExtensibilityTest, OverwritingServerConditionHandlerChangesBehaviour) {
  // The §3.2 overwriting principle at the server: a user replaces the
  // all_received handler, so the default aggregation never runs.
  QueueChannel channel;
  ServerOptions options;
  options.expected_clients = 1;
  options.concurrency = 1;
  auto server = MakeServer(&channel, options);
  int custom_calls = 0;
  server->registry().Register(events::kAllReceived,
                              [&](const Message&) { ++custom_calls; });
  server->HandleMessage(JoinFrom(1));
  while (!channel.Empty()) channel.Pop();
  Model ref = TestModel(7);
  server->HandleMessage(UpdateFrom(1, 0, &ref, 1.0f));
  EXPECT_EQ(custom_calls, 1);
  EXPECT_EQ(server->round(), 0);  // default aggregation was replaced
}

TEST(ExtensibilityTest, PerformanceDropCanRejectHarmfulGlobal) {
  // §3.4.1: each participant may choose the most suitable snapshot of the
  // global model. The client trains locally once, then receives a garbage
  // global; with reject_harmful_global it rolls back to its own snapshot.
  QueueChannel channel;
  ClientOptions options;
  options.perf_drop_threshold = 0.1;
  options.reject_harmful_global = true;
  options.train.local_steps = 40;
  options.train.batch_size = 8;
  options.train.lr = 0.3;
  auto client = MakeClient(1, &channel, options);

  // Round 0: a sane global; the client trains and records val accuracy.
  Model good = TestModel(42);
  client->HandleMessage(BroadcastTo(1, &good, 0));
  channel.Pop();
  ASSERT_GT(client->EvaluateLocalVal().accuracy, 0.8);
  const StateDict trained = client->model()->GetStateDict();

  // Round 1: a destroyed global model arrives.
  Model garbage = TestModel(43);
  for (auto& p : garbage.Params()) {
    for (int64_t i = 0; i < p.value->numel(); ++i) {
      p.value->at(i) = (i % 2 == 0) ? 50.0f : -50.0f;
    }
  }
  ClientOptions frozen = options;
  (void)frozen;
  // Stop local training this round so we observe the rejection directly.
  client->options().train.local_steps = 0;
  client->HandleMessage(BroadcastTo(1, &garbage, 1));
  channel.Pop();

  EXPECT_EQ(client->perf_drop_count(), 1);
  EXPECT_EQ(client->rejected_globals(), 1);
  // The client kept its own parameters, not the garbage.
  EXPECT_TRUE(client->model()->GetStateDict() == trained);
}

TEST(ExtensibilityTest, PerformanceDropWithoutRejectionKeepsGlobal) {
  QueueChannel channel;
  ClientOptions options;
  options.perf_drop_threshold = 0.1;
  options.reject_harmful_global = false;  // default: count only
  options.train.local_steps = 40;
  options.train.batch_size = 8;
  options.train.lr = 0.3;
  auto client = MakeClient(1, &channel, options);
  Model good = TestModel(42);
  client->HandleMessage(BroadcastTo(1, &good, 0));
  channel.Pop();

  Model garbage = TestModel(43);
  for (auto& p : garbage.Params()) {
    for (int64_t i = 0; i < p.value->numel(); ++i) p.value->at(i) = 50.0f;
  }
  client->options().train.local_steps = 0;
  client->HandleMessage(BroadcastTo(1, &garbage, 1));
  channel.Pop();
  EXPECT_EQ(client->perf_drop_count(), 1);
  EXPECT_EQ(client->rejected_globals(), 0);
  EXPECT_TRUE(client->model()->GetStateDict() == garbage.GetStateDict());
}

TEST(ExtensibilityTest, UnregisteringHandlerDisablesBehaviour) {
  QueueChannel channel;
  auto client = MakeClient(1, &channel);
  ASSERT_TRUE(client->registry().Unregister(events::kModelPara));
  Model global = TestModel();
  client->HandleMessage(BroadcastTo(1, &global, 0));
  EXPECT_TRUE(channel.Empty());  // no handler, message dropped
}


}  // namespace
}  // namespace fedscope
