#include "fedscope/core/edge_aggregator.h"

#include <gtest/gtest.h>

#include "fedscope/core/client.h"
#include "fedscope/core/events.h"
#include "fedscope/core/server.h"
#include "fedscope/core/topology.h"
#include "fedscope/nn/model_zoo.h"
#include "fedscope/tensor/tensor_ops.h"
#include "fedscope/testing/course_gen.h"
#include "fedscope/util/logging.h"

namespace fedscope {
namespace {

// ---------------------------------------------------------------------------
// Topology helpers
// ---------------------------------------------------------------------------

TEST(TopologyTest, AggregatorIdRoundTrips) {
  for (int shard : {0, 1, 3}) {
    for (int slot : {0, 1, 2}) {
      const int id = AggregatorId(shard, slot);
      EXPECT_TRUE(IsAggregatorId(id));
      EXPECT_EQ(AggregatorShard(id), shard);
      EXPECT_EQ(AggregatorSlot(id), slot);
    }
  }
  EXPECT_FALSE(IsAggregatorId(0));
  EXPECT_FALSE(IsAggregatorId(99999));
}

TEST(TopologyTest, ShardOfClientPolicies) {
  Topology topology;
  topology.num_shards = 2;
  // round_robin: 1-based client id modulo shard count.
  EXPECT_EQ(ShardOfClient(topology, 1, 6), 0);
  EXPECT_EQ(ShardOfClient(topology, 2, 6), 1);
  EXPECT_EQ(ShardOfClient(topology, 6, 6), 1);
  topology.assignment = "contiguous";
  EXPECT_EQ(ShardOfClient(topology, 1, 6), 0);
  EXPECT_EQ(ShardOfClient(topology, 3, 6), 0);
  EXPECT_EQ(ShardOfClient(topology, 4, 6), 1);
  EXPECT_EQ(ShardOfClient(topology, 6, 6), 1);
  // More shards than clients leaves high shards empty, never crashes.
  topology.num_shards = 4;
  for (int id = 1; id <= 3; ++id) {
    EXPECT_LT(ShardOfClient(topology, id, 3), 3);
  }
}

TEST(TopologyTest, ValidateRejectsInconsistentConfigs) {
  Topology topology;
  EXPECT_TRUE(ValidateTopology(topology).ok());  // flat default
  topology.num_shards = -1;
  EXPECT_FALSE(ValidateTopology(topology).ok());
  topology.num_shards = 2;
  topology.assignment = "striped";
  EXPECT_FALSE(ValidateTopology(topology).ok());
  topology.assignment = "contiguous";
  topology.standbys_per_shard = 1;
  topology.failure_timeout = 0.0;
  EXPECT_FALSE(ValidateTopology(topology).ok());
  topology.failure_timeout = 5.0;
  EXPECT_TRUE(ValidateTopology(topology).ok());
}

// ---------------------------------------------------------------------------
// EdgeAggregator worker (driven directly through a QueueChannel)
// ---------------------------------------------------------------------------

StateDict UniformDelta(float value) {
  StateDict delta;
  delta["w"] = Tensor::FromVector({value, value});
  return delta;
}

Message ShardBroadcast(int aggregator_id, const std::vector<int64_t>& cohort,
                       int round, int64_t shard_epoch = 0,
                       double time = 10.0) {
  Message msg;
  msg.sender = kServerId;
  msg.receiver = aggregator_id;
  msg.msg_type = events::kModelPara;
  msg.state = round;
  msg.timestamp = time;
  msg.payload.SetStateDict("model", UniformDelta(0.0f));
  msg.payload.SetInt("shard_epoch", shard_epoch);
  SetPackedInt64s(&msg.payload, "cohort", cohort);
  return msg;
}

Message ShardUpdate(int client_id, int aggregator_id, float value,
                    int num_samples, int round) {
  Message msg;
  msg.sender = client_id;
  msg.receiver = aggregator_id;
  msg.msg_type = events::kModelUpdate;
  msg.state = round;
  msg.timestamp = 12.0;
  msg.payload.SetStateDict("delta", UniformDelta(value));
  msg.payload.SetInt("num_samples", num_samples);
  msg.payload.SetInt("local_steps", 1);
  return msg;
}

TEST(EdgeAggregatorTest, RelaysBroadcastAndForwardsWeightedPartial) {
  QueueChannel channel;
  EdgeAggregatorOptions options;
  options.topology.num_shards = 2;
  options.shard = 0;
  EdgeAggregator agg(options, &channel);
  const int id = agg.id();

  agg.HandleMessage(ShardBroadcast(id, {1, 3}, /*round=*/0));
  ASSERT_EQ(channel.Size(), 2u);  // one relay per shard client
  for (int expected : {1, 3}) {
    Message relay = channel.Pop();
    EXPECT_EQ(relay.msg_type, events::kModelPara);
    EXPECT_EQ(relay.receiver, expected);
    EXPECT_EQ(relay.sender, id);  // clients reply to the aggregator
    EXPECT_EQ(relay.payload.GetInt("shard_epoch", -1), 0);
  }

  agg.HandleMessage(ShardUpdate(1, id, 1.0f, /*num_samples=*/2, 0));
  EXPECT_EQ(channel.Size(), 0u);  // still waiting for client 3
  agg.HandleMessage(ShardUpdate(3, id, 4.0f, /*num_samples=*/4, 0));
  ASSERT_EQ(channel.Size(), 1u);
  Message partial = channel.Pop();
  EXPECT_EQ(partial.msg_type, events::kPartialUpdate);
  EXPECT_EQ(partial.receiver, kServerId);
  EXPECT_EQ(partial.payload.GetInt("shard", -1), 0);
  EXPECT_EQ(GetPackedInt64s(partial.payload, "contributors"),
            (std::vector<int64_t>{1, 3}));
  // Weighted pre-aggregation: (2*1 + 4*4) / 6 with total weight 6.
  EXPECT_DOUBLE_EQ(partial.payload.GetDouble("total_weight", 0.0), 6.0);
  const StateDict delta = partial.payload.GetStateDict("delta");
  ASSERT_EQ(delta.count("w"), 1u);
  EXPECT_FLOAT_EQ(delta.at("w").at(0), 3.0f);
  EXPECT_EQ(agg.partials_forwarded(), 1);
  // A straggling duplicate of a consumed update is ignored, not counted.
  agg.HandleMessage(ShardUpdate(3, id, 4.0f, 4, 0));
  EXPECT_EQ(channel.Size(), 0u);
  EXPECT_EQ(agg.updates_received(), 2);
}

TEST(EdgeAggregatorTest, StandbyPromotesOnlyPastStaggeredDeadline) {
  QueueChannel channel;
  EdgeAggregatorOptions options;
  options.topology.num_shards = 1;
  options.topology.standbys_per_shard = 1;
  options.topology.failure_timeout = 30.0;
  options.shard = 0;
  options.slot = 1;
  EdgeAggregator standby(options, &channel);
  EXPECT_FALSE(standby.active());

  // Replication heartbeat from the active incarnation at t=100.
  Message heartbeat;
  heartbeat.sender = AggregatorId(0, 0);
  heartbeat.receiver = standby.id();
  heartbeat.msg_type = events::kShardSnapshot;
  heartbeat.state = 2;
  heartbeat.timestamp = 100.0;
  heartbeat.payload.SetInt("epoch", 0);
  heartbeat.payload.SetInt("round", 2);
  standby.HandleMessage(heartbeat);
  EXPECT_EQ(standby.round_seen(), 2);

  // A watchdog firing before the deadline re-arms instead of promoting.
  Message timer;
  timer.sender = standby.id();
  timer.receiver = standby.id();
  timer.msg_type = events::kTimer;
  timer.timestamp = 120.0;
  standby.HandleMessage(timer);
  ASSERT_EQ(channel.Size(), 1u);
  Message rearmed = channel.Pop();
  EXPECT_EQ(rearmed.msg_type, events::kTimer);
  EXPECT_EQ(rearmed.receiver, standby.id());
  EXPECT_DOUBLE_EQ(rearmed.timestamp, 130.0);  // last_heard + timeout*slot
  EXPECT_FALSE(standby.active());

  timer.timestamp = 130.5;
  standby.HandleMessage(timer);
  ASSERT_EQ(channel.Size(), 1u);
  Message claim = channel.Pop();
  EXPECT_EQ(claim.msg_type, events::kStandbyPromoted);
  EXPECT_EQ(claim.receiver, kServerId);
  EXPECT_EQ(claim.payload.GetInt("shard_epoch", -1), 1);  // bumped
  EXPECT_TRUE(standby.active());
  EXPECT_EQ(standby.promotions(), 1);
}

// ---------------------------------------------------------------------------
// Epoch semantics at the other ends (double-failover rejection)
// ---------------------------------------------------------------------------

Dataset Blobs(int64_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset d;
  d.x = Tensor({n, 2});
  d.labels.resize(n);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t y = i % 2;
    d.labels[i] = y;
    d.x.at(i, 0) = static_cast<float>((y ? 1.5 : -1.5) + rng.Normal(0, 0.5));
    d.x.at(i, 1) = static_cast<float>((y ? 1.5 : -1.5) + rng.Normal(0, 0.5));
  }
  return d;
}

TEST(EdgeAggregatorTest, ClientRejectsLowerShardEpochBroadcast) {
  QueueChannel channel;
  ClientOptions options;
  options.jitter_sigma = 0.0;
  Rng rng(1);
  Rng split_rng(2);
  Client client(1, options, MakeLogisticRegression(2, 2, &rng),
                Split(Blobs(40, 3), 0.6, 0.2, &split_rng),
                std::make_unique<GeneralTrainer>(), &channel);

  // Round 0 arrives through the second incarnation (shard epoch 2).
  Message current;
  current.sender = AggregatorId(0, 2);
  current.receiver = 1;
  current.msg_type = events::kModelPara;
  current.state = 0;
  current.timestamp = 5.0;
  Rng model_rng(7);
  current.payload.SetStateDict(
      "model", MakeLogisticRegression(2, 2, &model_rng).GetStateDict());
  current.payload.SetInt("shard_epoch", 2);
  client.HandleMessage(current);
  EXPECT_EQ(channel.Size(), 1u);  // trained and replied
  EXPECT_EQ(client.shard_epoch(), 2);
  channel.Pop();

  // A superseded incarnation's late relay carries a lower epoch: the
  // client must neither train on it nor reply.
  Message stale = current;
  stale.sender = AggregatorId(0, 1);
  stale.state = 1;
  stale.payload.SetInt("shard_epoch", 1);
  client.HandleMessage(stale);
  EXPECT_EQ(channel.Size(), 0u);
  EXPECT_EQ(client.stale_epoch_rejected(), 1);
  EXPECT_EQ(client.rounds_trained(), 1);
}

TEST(EdgeAggregatorTest, RootRejectsSupersededIncarnationsAfterDoubleFailover) {
  QueueChannel channel;
  ServerOptions options;
  options.strategy = Strategy::kSyncVanilla;
  options.expected_clients = 2;
  options.concurrency = 2;
  options.max_rounds = 3;
  options.topology.num_shards = 1;
  options.topology.standbys_per_shard = 2;
  options.topology.failure_timeout = 10.0;
  Rng rng(1);
  Server server(options, MakeLogisticRegression(2, 2, &rng),
                std::make_unique<FedAvgAggregator>(), &channel);
  for (int id = 1; id <= 2; ++id) {
    Message join;
    join.sender = id;
    join.receiver = kServerId;
    join.msg_type = events::kJoinIn;
    join.payload.SetDouble("resp_score", 1.0);
    join.payload.SetInt("num_train", 24);
    server.HandleMessage(join);
  }
  while (channel.Size() > 0) channel.Pop();  // acks + first broadcast

  auto claim = [&](int slot, int64_t epoch) {
    Message msg;
    msg.sender = AggregatorId(0, slot);
    msg.receiver = kServerId;
    msg.msg_type = events::kStandbyPromoted;
    msg.state = 0;
    msg.payload.SetInt("shard", 0);
    msg.payload.SetInt("shard_epoch", epoch);
    server.HandleMessage(msg);
  };
  auto partial = [&](int slot, int64_t epoch) {
    Message msg;
    msg.sender = AggregatorId(0, slot);
    msg.receiver = kServerId;
    msg.msg_type = events::kPartialUpdate;
    msg.state = 0;
    msg.payload.SetInt("shard", 0);
    msg.payload.SetInt("shard_epoch", epoch);
    SetPackedInt64s(&msg.payload, "contributors", {1});
    msg.payload.SetStateDict("delta", UniformDelta(0.5f));
    msg.payload.SetDouble("total_weight", 24.0);
    server.HandleMessage(msg);
  };

  // Double failover: slot 1 claims epoch 1, then slot 2 claims epoch 2.
  claim(1, 1);
  claim(2, 2);
  EXPECT_EQ(server.stats().shard_failovers, 2);

  // Partials from BOTH superseded incarnations are rejected; only the
  // second standby's epoch is live.
  partial(0, 0);
  partial(1, 1);
  EXPECT_EQ(server.stats().stale_partials, 2);
  partial(2, 2);
  EXPECT_EQ(server.stats().stale_partials, 2);  // accepted, not stale
}

// ---------------------------------------------------------------------------
// Standalone courses (FedRunner end-to-end)
// ---------------------------------------------------------------------------

class HierarchyCourseTest : public ::testing::Test {
 protected:
  void SetUp() override { Logging::set_min_level(LogLevel::kError); }
  void TearDown() override { Logging::set_min_level(LogLevel::kInfo); }
};

TEST_F(HierarchyCourseTest, DoubleFailoverCourseStillConverges) {
  testing::CourseSpec spec;
  spec.topology_shards = 2;
  spec.topology_standbys = 2;
  spec.topology_failure_timeout = 10.0;
  spec.concurrency = spec.num_clients;
  spec = testing::CourseGen::Clamp(spec);
  auto fixture = testing::MakeCourseFixture(spec);
  FedJob job = fixture->MakeJob();
  // Kill shard 0's primary in round 1 and its first standby in round 2:
  // the course must fail over twice and finish through the second standby.
  job.fault.aggregator_crashes.push_back(AggregatorCrash{0, 0, 1});
  job.fault.aggregator_crashes.push_back(AggregatorCrash{0, 1, 2});
  FedRunner runner(std::move(job));
  const RunResult result = runner.Run();

  EXPECT_FALSE(result.server.aborted);
  EXPECT_EQ(result.server.rounds, spec.max_rounds);
  EXPECT_EQ(runner.aggregators_killed(), 2);
  // At least the two scheduled deaths; silence-based detection may add
  // sympathetic failovers on the healthy shard while shard 0's round
  // stalls (oracle 10 tolerates them the same way — epoch rejection keeps
  // them safe).
  EXPECT_GE(result.server.shard_failovers, 2);
  EXPECT_EQ(runner.aggregator(0, 1)->promotions(), 1);
  EXPECT_EQ(runner.aggregator(0, 2)->promotions(), 1);
  EXPECT_TRUE(runner.aggregator(0, 2)->active());
  EXPECT_EQ(runner.aggregator(0, 2)->epoch(), 2);
  // Weight conservation across both failover boundaries: nobody is
  // aggregated twice in one round.
  int64_t total = 0;
  for (size_t id = 1; id < result.server.agg_count.size(); ++id) {
    total += result.server.agg_count[id];
  }
  EXPECT_LE(total, static_cast<int64_t>(spec.num_clients) * spec.max_rounds);
  EXPECT_GT(total, 0);
}

TEST_F(HierarchyCourseTest, EmptyShardForwardsNothingAndMatchesFlatTwin) {
  // 6 clients over 4 contiguous shards of width 2 leave shard 3 with no
  // clients at all: it must forward nothing while the course completes
  // with full coverage, identical round structure to the flat twin, and
  // a final accuracy within float-reassociation tolerance.
  testing::CourseSpec spec;
  spec.topology_shards = 4;
  spec.topology_assignment = "contiguous";
  spec.concurrency = spec.num_clients;
  spec = testing::CourseGen::Clamp(spec);
  ASSERT_EQ(spec.num_clients, 6);

  auto fixture = testing::MakeCourseFixture(spec);
  FedRunner runner(fixture->MakeJob());
  const RunResult sharded = runner.Run();

  EXPECT_FALSE(sharded.server.aborted);
  EXPECT_EQ(sharded.server.rounds, spec.max_rounds);
  EXPECT_EQ(runner.aggregator(3, 0)->partials_forwarded(), 0);
  for (int shard = 0; shard < 3; ++shard) {
    EXPECT_GT(runner.aggregator(shard, 0)->partials_forwarded(), 0)
        << "shard " << shard;
  }

  testing::CourseSpec flat_spec = spec;
  flat_spec.topology_shards = 0;
  flat_spec = testing::CourseGen::Clamp(flat_spec);
  auto flat_fixture = testing::MakeCourseFixture(flat_spec);
  FedRunner flat_runner(flat_fixture->MakeJob());
  const RunResult flat = flat_runner.Run();

  EXPECT_EQ(sharded.server.rounds, flat.server.rounds);
  EXPECT_EQ(sharded.server.agg_count, flat.server.agg_count);
  EXPECT_NEAR(sharded.server.final_accuracy, flat.server.final_accuracy,
              0.1);
}

}  // namespace
}  // namespace fedscope
