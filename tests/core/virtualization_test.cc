// Client virtualization (DESIGN.md §13): the population exists as
// descriptors, a bounded ClientCache materializes sampled clients on
// demand, and the course is bit-identical to the eager path. These tests
// pin the memory bound (peak live clients stays within the cohort-derived
// cache capacity, never the population) and the reclaim/restore identity
// (an evicted client re-derives its exact Rng stream and state).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "fedscope/comm/codec.h"
#include "fedscope/core/client_cache.h"
#include "fedscope/core/fed_runner.h"
#include "fedscope/core/trainer.h"
#include "fedscope/data/client_data_provider.h"
#include "fedscope/nn/model_zoo.h"
#include "fedscope/testing/course_gen.h"
#include "fedscope/testing/oracles.h"
#include "fedscope/util/logging.h"

namespace fedscope {
namespace {

using testing::CourseGen;
using testing::CourseObservation;
using testing::CourseSpec;
using testing::MakeCourseFixture;
using testing::RunInstrumentedCourse;

/// Bit-exact state-dict comparison (operator== would conflate 0.0/-0.0).
bool BitEqual(const StateDict& a, const StateDict& b) {
  if (a.size() != b.size()) return false;
  for (const auto& [name, tensor] : a) {
    auto it = b.find(name);
    if (it == b.end()) return false;
    if (tensor.shape() != it->second.shape()) return false;
    for (int64_t k = 0; k < tensor.numel(); ++k) {
      const float x = tensor.at(k);
      const float y = it->second.at(k);
      if (std::memcmp(&x, &y, sizeof(float)) != 0) return false;
    }
  }
  return true;
}

/// A population well above the cohort so the cache must evict and restore.
CourseSpec BaseSpec() {
  CourseSpec spec;
  spec.num_clients = 6;
  spec.population = 24;
  spec.concurrency = 4;
  spec.max_rounds = 3;
  return CourseGen::Clamp(spec);
}

/// The auto cache bound FedRunner derives — cohort (concurrency, inflated
/// by over-selection) plus replacement slack — plus the one-client
/// transient a delivery to a non-live client creates before Trim runs.
int CohortBound(const CourseSpec& spec) {
  int cohort = spec.concurrency;
  if (spec.strategy == "sync_overselect") {
    cohort =
        static_cast<int>(std::ceil(cohort * (1.0 + spec.overselect_frac)));
  }
  return cohort + 2 + 1;
}

class VirtualizationTest : public ::testing::Test {
 protected:
  void SetUp() override { Logging::set_min_level(LogLevel::kWarning); }
  void TearDown() override { Logging::set_min_level(LogLevel::kInfo); }
};

// ---------------------------------------------------------------------------
// Peak live clients is O(cohort), not O(population)
// ---------------------------------------------------------------------------

struct StrategyCase {
  const char* name;
  const char* strategy;
  int topology_shards;
  int exec_threads;
};

TEST_F(VirtualizationTest, LivePeakBoundedByCohortAcrossCourseShapes) {
  const StrategyCase cases[] = {
      {"sync", "sync_vanilla", 0, 0},
      {"overselect", "sync_overselect", 0, 0},
      {"async_time", "async_time", 0, 0},
      {"sharded", "sync_vanilla", 2, 0},
      {"threaded", "sync_vanilla", 0, 2},
  };
  for (const auto& c : cases) {
    CourseSpec spec = BaseSpec();
    spec.strategy = c.strategy;
    spec.topology_shards = c.topology_shards;
    spec = CourseGen::Clamp(spec);
    ASSERT_GT(spec.EffectiveClients(), CohortBound(spec)) << c.name;

    const CourseObservation obs = RunInstrumentedCourse(
        spec, /*crash_at_event=*/-1, c.exec_threads, /*virtualize=*/true);
    EXPECT_TRUE(obs.finished) << c.name;
    EXPECT_GE(obs.cache.live_peak, 1) << c.name;
    EXPECT_LE(obs.cache.live_peak, CohortBound(spec)) << c.name;
    EXPECT_LT(obs.cache.live_peak, spec.EffectiveClients()) << c.name;
    // The deployment eval touches every participant one at a time, so the
    // whole population was instantiated without ever being live at once.
    EXPECT_GE(obs.cache.instantiations, spec.EffectiveClients()) << c.name;
    EXPECT_GT(obs.cache.evictions, 0) << c.name;
    // Instantiations (fresh + restores) minus evictions is what's live.
    EXPECT_EQ(obs.cache.instantiations - obs.cache.evictions, obs.cache.live)
        << c.name;
  }
}

// ---------------------------------------------------------------------------
// Virtualized == eager, bit for bit (the direct form of oracle 12)
// ---------------------------------------------------------------------------

TEST_F(VirtualizationTest, VirtualizedCourseBitIdenticalToEager) {
  const CourseSpec spec = BaseSpec();
  CourseObservation eager = RunInstrumentedCourse(spec);
  CourseObservation virt =
      RunInstrumentedCourse(spec, -1, /*exec_threads=*/0, /*virtualize=*/true);
  EXPECT_EQ(eager.finished, virt.finished);
  EXPECT_TRUE(BitEqual(eager.result.final_model.GetStateDict(),
                       virt.result.final_model.GetStateDict()));
  EXPECT_EQ(eager.result.server.curve, virt.result.server.curve);
  EXPECT_EQ(eager.result.client_test_accuracy,
            virt.result.client_test_accuracy);
  EXPECT_EQ(eager.sent, virt.sent);
  EXPECT_EQ(eager.delivered, virt.delivered);
}

TEST_F(VirtualizationTest, ThreadedVirtualizedCourseBitIdenticalToSerialEager) {
  const CourseSpec spec = BaseSpec();
  CourseObservation eager = RunInstrumentedCourse(spec);
  CourseObservation virt =
      RunInstrumentedCourse(spec, -1, /*exec_threads=*/3, /*virtualize=*/true);
  EXPECT_EQ(eager.finished, virt.finished);
  EXPECT_TRUE(BitEqual(eager.result.final_model.GetStateDict(),
                       virt.result.final_model.GetStateDict()));
  EXPECT_EQ(eager.result.server.curve, virt.result.server.curve);
  EXPECT_EQ(eager.result.client_test_accuracy,
            virt.result.client_test_accuracy);
  EXPECT_EQ(eager.sent, virt.sent);
  EXPECT_EQ(eager.delivered, virt.delivered);
}

// ---------------------------------------------------------------------------
// Eviction + re-instantiation re-derives the identical Rng stream / state
// ---------------------------------------------------------------------------

TEST_F(VirtualizationTest, CapacityOneEvictionRestoresIdenticalState) {
  const CourseSpec spec = BaseSpec();
  CourseObservation eager = RunInstrumentedCourse(spec);

  auto fixture = MakeCourseFixture(spec);
  FedJob job = fixture->MakeJob();
  job.virtualize = true;
  job.client_cache_capacity = 1;  // every delivery evicts the previous client
  FedRunner runner(std::move(job));
  RunResult result = runner.Run();

  // Capacity is a pure performance knob: the pathological capacity-1 cache
  // still reproduces the eager course bit for bit.
  EXPECT_TRUE(BitEqual(eager.result.final_model.GetStateDict(),
                       result.final_model.GetStateDict()));
  EXPECT_EQ(eager.result.server.curve, result.server.curve);
  EXPECT_EQ(eager.result.client_test_accuracy, result.client_test_accuracy);

  const ClientCacheStats& stats = runner.client_cache()->stats();
  EXPECT_GT(stats.evictions, 0);
  EXPECT_GT(stats.restores, 0);
  // Get() runs before Trim(), so at most capacity + 1 clients coexist.
  EXPECT_LE(stats.live_peak, 2);

  // Evicting a trained client and re-instantiating it must re-derive the
  // exact post-course state: rng stream position, clocks, counters, model.
  Payload before;
  runner.client(1)->ExportResume(&before);
  runner.client(2);  // evicts client 1
  Payload after;
  runner.client(1)->ExportResume(&after);
  EXPECT_EQ(EncodePayload(before), EncodePayload(after));
}

// ---------------------------------------------------------------------------
// ClientCache checkpoint round-trip (course checkpoint surface, §10/§13)
// ---------------------------------------------------------------------------

class NullChannel : public CommChannel {
 public:
  void Send(const Message& /*msg*/) override {}
};

TEST_F(VirtualizationTest, ClientCacheCheckpointRoundTripsByteIdentical) {
  ProceduralDataOptions options;
  options.num_clients = 8;
  options.train_per_client = 8;
  options.server_test_examples = 8;
  const ProceduralDataProvider provider(options);
  NullChannel sink;
  Rng model_rng(3);
  const Model init = MakeLogisticRegression(
      static_cast<int>(options.features), static_cast<int>(options.classes),
      &model_rng);
  auto factory = [&](int id) {
    ClientCache::Entry entry;
    ClientOptions co;
    co.seed = Rng(7).Fork(id).Next();
    entry.client = std::make_unique<Client>(
        id, co, init, provider.MaterializeClient(id),
        std::make_unique<GeneralTrainer>(), &sink);
    return entry;
  };

  ClientCache a(options.num_clients, /*capacity=*/1, factory);
  a.Get(1);
  a.Get(2);
  a.Trim();         // client 1 suspended, client 2 live
  a.MarkFinished(3);  // finish recorded without instantiating client 3
  Payload checkpoint;
  a.ExportState(&checkpoint);

  // Restore into a fresh cache; re-exporting must be byte-identical.
  ClientCache b(options.num_clients, /*capacity=*/1, factory);
  b.RestoreState(checkpoint);
  Payload roundtrip;
  b.ExportState(&roundtrip);
  EXPECT_EQ(EncodePayload(checkpoint), EncodePayload(roundtrip));

  // A restored client resumes the exact serialized state.
  Payload resumed;
  b.Get(1)->ExportResume(&resumed);
  const Payload want = ExtractPayloadPrefix(checkpoint, "vc/1/");
  EXPECT_EQ(EncodePayload(resumed), EncodePayload(want));
  EXPECT_EQ(b.stats().restores, 1);

  // The finish flag survives the round trip: instantiating client 3 in the
  // restored cache behaves exactly like a fresh client told to finish.
  Payload restored_finished;
  b.Get(3)->ExportResume(&restored_finished);
  ClientCache::Entry fresh = factory(3);
  Payload finish_only;
  finish_only.SetInt("finished", 1);
  fresh.client->RestoreResume(finish_only);
  Payload want_finished;
  fresh.client->ExportResume(&want_finished);
  EXPECT_EQ(EncodePayload(restored_finished), EncodePayload(want_finished));
}

}  // namespace
}  // namespace fedscope
