#include "fedscope/core/fed_runner.h"

#include <gtest/gtest.h>

#include "fedscope/core/events.h"
#include "fedscope/data/synthetic_cifar.h"
#include "fedscope/data/synthetic_twitter.h"
#include "fedscope/nn/model_zoo.h"

namespace fedscope {
namespace {

FedDataset SmallData(uint64_t seed = 2) {
  SyntheticCifarOptions options;
  options.num_clients = 8;
  options.pool_size = 400;
  options.alpha = 1.0;
  options.image_size = 8;
  options.server_test_size = 128;
  options.seed = seed;
  return MakeSyntheticCifar(options);
}

FedJob SmallJob(const FedDataset* data, uint64_t seed = 11) {
  Rng rng(seed);
  FedJob job;
  job.data = data;
  job.init_model = MakeMlp({3 * 8 * 8, 32, 10}, &rng);
  job.server.concurrency = 4;
  job.server.max_rounds = 8;
  job.client.train.lr = 0.1;
  job.client.train.local_steps = 2;
  job.client.train.batch_size = 8;
  job.client.jitter_sigma = 0.1;
  job.seed = seed;
  return job;
}

// The MLP expects flat input; flatten via a Flatten layer up front.
FedJob FlattenedJob(const FedDataset* data, uint64_t seed = 11) {
  FedJob job = SmallJob(data, seed);
  Rng rng(seed);
  Model m;
  m.Add("flat", std::make_unique<Flatten>());
  Model mlp = MakeMlp({3 * 8 * 8, 32, 10}, &rng);
  for (int i = 0; i < mlp.num_layers(); ++i) {
    m.Add(mlp.layer_name(i), mlp.layer(i)->Clone());
  }
  job.init_model = std::move(m);
  return job;
}

TEST(FedRunnerTest, RunsToCompletionAndLearns) {
  FedDataset data = SmallData();
  FedRunner runner(FlattenedJob(&data));
  RunResult result = runner.Run();
  EXPECT_EQ(result.server.rounds, 8);
  EXPECT_EQ(result.server.curve.size(), 8u);
  // Accuracy improves well beyond chance (10 classes).
  EXPECT_GT(result.server.final_accuracy, 0.3);
  EXPECT_TRUE(result.completeness.complete);
  EXPECT_EQ(result.client_test_accuracy.size(), 8u);
}

TEST(FedRunnerTest, DeterministicAcrossRuns) {
  FedDataset data = SmallData();
  RunResult a = FedRunner(FlattenedJob(&data, 5)).Run();
  RunResult b = FedRunner(FlattenedJob(&data, 5)).Run();
  ASSERT_EQ(a.server.curve.size(), b.server.curve.size());
  for (size_t i = 0; i < a.server.curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.server.curve[i].first, b.server.curve[i].first);
    EXPECT_DOUBLE_EQ(a.server.curve[i].second, b.server.curve[i].second);
  }
  EXPECT_TRUE(a.final_model.GetStateDict() ==
              b.final_model.GetStateDict());
}

TEST(FedRunnerTest, DifferentSeedsDiffer) {
  FedDataset data = SmallData();
  RunResult a = FedRunner(FlattenedJob(&data, 5)).Run();
  RunResult b = FedRunner(FlattenedJob(&data, 6)).Run();
  EXPECT_FALSE(a.final_model.GetStateDict() ==
               b.final_model.GetStateDict());
}

TEST(FedRunnerTest, ThroughWireProducesSameResult) {
  // Serializing every message through the binary codec must not change
  // the course at all (backend-independence of the wire format).
  FedDataset data = SmallData();
  FedJob plain = FlattenedJob(&data, 7);
  FedJob wired = FlattenedJob(&data, 7);
  wired.through_wire = true;
  RunResult a = FedRunner(std::move(plain)).Run();
  RunResult b = FedRunner(std::move(wired)).Run();
  EXPECT_TRUE(a.final_model.GetStateDict() ==
              b.final_model.GetStateDict());
}

TEST(FedRunnerTest, ThroughWireSameResultWithDecoratorsStacked) {
  // The wire flag must stay invisible with the full decorator stack in
  // play: top-k compressed updates AND a FaultInjectingChannel dropping,
  // duplicating and delaying messages. The fault Judge consumes its rng
  // in send order, which the codec hop must not perturb.
  FedDataset data = SmallData();
  auto decorated = [&data](bool through_wire) {
    FedJob job = FlattenedJob(&data, 7);
    job.server.max_rounds = 4;
    job.server.receive_deadline = 1.5;  // lossy sync needs the backstop
    job.client.compression = "topk";
    job.client.compression_keep_frac = 0.3;
    job.fault.dropout_frac = 0.2;
    job.fault.msg_loss_prob = 0.1;
    job.fault.msg_duplicate_prob = 0.2;
    job.fault.msg_delay_prob = 0.2;
    job.fault.msg_delay_max = 0.3;
    job.fault.seed = 99;
    job.through_wire = through_wire;
    return job;
  };
  FedRunner plain_runner(decorated(false));
  FedRunner wired_runner(decorated(true));
  RunResult a = plain_runner.Run();
  RunResult b = wired_runner.Run();
  EXPECT_TRUE(a.final_model.GetStateDict() == b.final_model.GetStateDict());
  ASSERT_EQ(a.server.curve.size(), b.server.curve.size());
  for (size_t i = 0; i < a.server.curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.server.curve[i].first, b.server.curve[i].first);
    EXPECT_DOUBLE_EQ(a.server.curve[i].second, b.server.curve[i].second);
  }
  // The fault plan itself must have made identical judgements.
  const auto& fa = plain_runner.fault_plan().counters();
  const auto& fb = wired_runner.fault_plan().counters();
  EXPECT_GT(fa.lost + fa.duplicated + fa.delayed, 0);
  EXPECT_EQ(fa.lost, fb.lost);
  EXPECT_EQ(fa.duplicated, fb.duplicated);
  EXPECT_EQ(fa.delayed, fb.delayed);
}

TEST(FedRunnerTest, VirtualTimeAdvancesMonotonically) {
  FedDataset data = SmallData();
  RunResult result = FedRunner(FlattenedJob(&data)).Run();
  double last = -1.0;
  for (const auto& [time, acc] : result.server.curve) {
    EXPECT_GE(time, last);
    last = time;
  }
  EXPECT_GT(last, 0.0);
}

TEST(FedRunnerTest, TargetAccuracyStopsEarly) {
  FedDataset data = SmallData();
  FedJob job = FlattenedJob(&data);
  job.server.max_rounds = 50;
  job.server.target_accuracy = 0.25;  // easily reached
  RunResult result = FedRunner(std::move(job)).Run();
  EXPECT_TRUE(result.server.reached_target);
  EXPECT_LT(result.server.rounds, 50);
  EXPECT_GT(result.server.time_to_target, 0.0);
}

TEST(FedRunnerTest, ClientCustomizerApplies) {
  FedDataset data = SmallData();
  FedJob job = FlattenedJob(&data);
  job.client_customizer = [](int id, ClientOptions* options) {
    if (id == 1) options->train.local_steps = 0;  // client 1 never trains
  };
  FedRunner runner(std::move(job));
  RunResult result = runner.Run();
  EXPECT_EQ(runner.client(1)->rounds_trained() > 0,
            true);  // it participates (zero-step training still replies)
  EXPECT_GT(result.server.rounds, 0);
}

TEST(FedRunnerTest, HomogeneousFleetByDefault) {
  FedDataset data = SmallData();
  FedJob job = FlattenedJob(&data);
  job.fleet.clear();  // default fleet
  RunResult result = FedRunner(std::move(job)).Run();
  EXPECT_GT(result.server.rounds, 0);
}

TEST(FedRunnerTest, EarlyStopPatience) {
  FedDataset data = SmallData();
  FedJob job = FlattenedJob(&data);
  job.server.max_rounds = 100;
  job.server.early_stop_patience = 2;
  // An evaluator that never improves forces early stop quickly.
  int calls = 0;
  job.evaluator = [&calls](Model*) {
    ++calls;
    EvalResult r;
    r.accuracy = 0.5;
    return r;
  };
  RunResult result = FedRunner(std::move(job)).Run();
  EXPECT_LT(result.server.rounds, 10);
}

TEST(FedRunnerTest, AggregatorFactoryUsed) {
  FedDataset data = SmallData();
  FedJob job = FlattenedJob(&data);
  job.aggregator_factory = []() {
    return std::make_unique<MedianAggregator>();
  };
  RunResult result = FedRunner(std::move(job)).Run();
  EXPECT_GT(result.server.rounds, 0);
}

TEST(FedRunnerTest, FedOptAggregatorCourseLearns) {
  FedDataset data = SmallData();
  FedJob job = FlattenedJob(&data);
  job.server.max_rounds = 8;
  job.aggregator_factory = []() {
    return std::make_unique<FedOptAggregator>(/*server_lr=*/1.0,
                                              /*server_momentum=*/0.9);
  };
  RunResult result = FedRunner(std::move(job)).Run();
  EXPECT_EQ(result.server.rounds, 8);
  EXPECT_GT(result.server.final_accuracy, 0.3);
}

TEST(FedRunnerTest, FedNovaAggregatorHandlesHeterogeneousSteps) {
  FedDataset data = SmallData();
  FedJob job = FlattenedJob(&data);
  job.server.max_rounds = 8;
  job.aggregator_factory = []() {
    return std::make_unique<FedNovaAggregator>();
  };
  // Heterogeneous local work: FedNova's normalization target.
  job.client_customizer = [](int id, ClientOptions* options) {
    options->train.local_steps = 1 + (id % 4) * 2;  // 1, 3, 5 or 7 steps
  };
  RunResult result = FedRunner(std::move(job)).Run();
  EXPECT_EQ(result.server.rounds, 8);
  EXPECT_GT(result.server.final_accuracy, 0.3);
}

TEST(FedRunnerTest, EventDrivenMatchesProceduralFedAvg) {
  // Ablation (DESIGN.md §5): the event-driven course must produce the
  // *bit-identical* trajectory of a straight-line procedural FedAvg loop
  // built from the same components — events change how behaviour is
  // expressed, not what is computed.
  FedDataset data = SmallData(77);
  const int kRounds = 4, kConcurrency = 4, kClients = 8;
  const uint64_t kSeed = 4242;

  TrainConfig config;
  config.lr = 0.1;
  config.local_steps = 3;
  config.batch_size = 8;

  Rng init_rng(kSeed);
  Model init;
  init.Add("flat", std::make_unique<Flatten>());
  {
    Model mlp = MakeMlp({3 * 8 * 8, 16, 10}, &init_rng);
    for (int i = 0; i < mlp.num_layers(); ++i) {
      init.Add(mlp.layer_name(i), mlp.layer(i)->Clone());
    }
  }

  // Event-driven run: no jitter, homogeneous fleet, sync vanilla.
  FedJob job;
  job.data = &data;
  job.init_model = init;
  job.server.strategy = Strategy::kSyncVanilla;
  job.server.concurrency = kConcurrency;
  job.server.max_rounds = kRounds;
  job.client.train = config;
  job.client.jitter_sigma = 0.0;
  job.seed = kSeed;
  RunResult event_driven = FedRunner(std::move(job)).Run();

  // Procedural reference: same seeds, same components, explicit loop.
  Rng seeder(kSeed);
  std::vector<Model> client_models(kClients, init);
  std::vector<Rng> client_rngs;
  for (int id = 1; id <= kClients; ++id) {
    client_rngs.push_back(Rng(seeder.Fork(id).Next()));
  }
  Model global = init;
  Rng server_rng(kSeed);
  UniformSampler sampler;
  std::vector<int> all_ids;
  for (int id = 1; id <= kClients; ++id) all_ids.push_back(id);
  FedAvgAggregator aggregator(FedAvgOptions{1.0, 0.5});

  for (int round = 0; round < kRounds; ++round) {
    auto cohort = sampler.Sample(all_ids, kConcurrency, &server_rng);
    std::vector<ClientUpdate> updates;
    for (int id : cohort) {
      Model& model = client_models[id - 1];
      GeneralTrainer trainer;
      trainer.UpdateModel(&model, global.GetStateDict());
      StateDict before = model.GetStateDict();
      TrainResult result = trainer.Train(
          &model, data.clients[id - 1].train, config, &client_rngs[id - 1]);
      ClientUpdate update;
      update.client_id = id;
      update.num_samples = static_cast<double>(result.num_samples);
      update.local_steps = result.local_steps;
      update.delta = SdSub(model.GetStateDict(), before);
      updates.push_back(std::move(update));
    }
    StateDict next = aggregator.Aggregate(global.GetStateDict(), updates).value();
    ASSERT_TRUE(global.LoadStateDict(next).ok());
  }

  EXPECT_TRUE(event_driven.final_model.GetStateDict() ==
              global.GetStateDict());
}

TEST(FedRunnerTest, CollectsClientMetricsAtFinish) {
  FedDataset data = SmallData();
  FedJob job = FlattenedJob(&data);
  job.server.max_rounds = 4;
  job.server.collect_client_metrics = true;
  RunResult result = FedRunner(std::move(job)).Run();
  // Every client reported test metrics through the evaluate/metrics flow.
  EXPECT_EQ(result.server.client_metrics.size(), 8u);
  for (const auto& [id, acc] : result.server.client_metrics) {
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 1.0);
  }
}

TEST(FedRunnerTest, LowBandwidthClientsDeclineInCourse) {
  FedDataset data = SmallData();
  FedJob job = FlattenedJob(&data);
  job.server.max_rounds = 6;
  // Give half the fleet starved bandwidth and enable the behaviour.
  job.fleet.assign(8, DeviceProfile{});
  for (int i = 0; i < 4; ++i) {
    job.fleet[i].up_bandwidth = 100.0;
    job.fleet[i].down_bandwidth = 100.0;
  }
  job.client_customizer = [](int, ClientOptions* options) {
    options->low_bandwidth_threshold = 1000.0;
  };
  FedRunner runner(std::move(job));
  RunResult result = runner.Run();
  EXPECT_EQ(result.server.rounds, 6);
  EXPECT_GT(result.server.declined, 0);
  int client_declines = 0;
  for (int id = 1; id <= 8; ++id) {
    client_declines += runner.client(id)->declined_count();
  }
  EXPECT_EQ(client_declines, result.server.declined);
}

class CompressionSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(CompressionSweep, CompressedCourseStillLearns) {
  // The compression operators plug into the live course: clients compress
  // their deltas, the server decompresses transparently, and the model
  // still converges.
  FedDataset data = SmallData();
  FedJob job = FlattenedJob(&data);
  job.server.max_rounds = 10;
  job.client.compression = GetParam();
  job.client.compression_keep_frac = 0.25;
  RunResult result = FedRunner(std::move(job)).Run();
  EXPECT_EQ(result.server.rounds, 10);
  EXPECT_GT(result.server.final_accuracy, 0.3);
}

INSTANTIATE_TEST_SUITE_P(Codecs, CompressionSweep,
                         ::testing::Values("none", "quant8", "topk"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

TEST(FedRunnerTest, CompressionShrinksUplinkMessages) {
  FedDataset data = SmallData();
  // Capture one client's uplink payload size with and without quant8.
  auto measure = [&](const std::string& codec) {
    QueueChannel channel;
    ClientOptions options;
    options.jitter_sigma = 0.0;
    options.compression = codec;
    Rng rng(3);
    Model model;
    model.Add("flat", std::make_unique<Flatten>());
    Model mlp = MakeMlp({3 * 8 * 8, 32, 10}, &rng);
    for (int i = 0; i < mlp.num_layers(); ++i) {
      model.Add(mlp.layer_name(i), mlp.layer(i)->Clone());
    }
    Client client(1, options, model, data.clients[0],
                  std::make_unique<GeneralTrainer>(), &channel);
    Message broadcast;
    broadcast.receiver = 1;
    broadcast.msg_type = events::kModelPara;
    broadcast.payload.SetStateDict("model", model.GetStateDict());
    client.HandleMessage(broadcast);
    return channel.Pop().payload.ByteSize();
  };
  const int64_t plain = measure("none");
  const int64_t quantized = measure("quant8");
  EXPECT_LT(quantized * 2, plain);
}

TEST(FedRunnerTest, IncompleteCourseIsRejectedBeforeStart) {
  // Removing the server's model_update handler severs the start->finish
  // path; the completeness check (Appendix E) must refuse to run the
  // course instead of silently deadlocking.
  FedDataset data = SmallData();
  FedJob job = FlattenedJob(&data);
  FedRunner runner(std::move(job));
  runner.server()->registry().Unregister(events::kModelUpdate);
  EXPECT_DEATH(runner.Run(), "incomplete");
}

TEST(FedRunnerTest, ScalesToLargeFleet) {
  // 150 clients, heterogeneous fleet, async course — a smoke test that
  // the simulator's data structures hold up beyond toy sizes.
  SyntheticTwitterOptions options;
  options.num_clients = 150;
  options.seed = 61;
  FedDataset data = MakeSyntheticTwitter(options);
  FedJob job;
  job.data = &data;
  Rng rng(62);
  job.init_model = MakeLogisticRegression(60, 2, &rng);
  Rng fleet_rng(63);
  job.fleet = MakeFleet(150, FleetOptions{}, &fleet_rng);
  job.server.strategy = Strategy::kAsyncGoal;
  job.server.aggregation_goal = 10;
  job.server.concurrency = 30;
  job.server.max_rounds = 15;
  job.client.train.lr = 0.5;
  job.client.train.batch_size = 2;
  job.seed = 62;
  RunResult result = FedRunner(std::move(job)).Run();
  EXPECT_EQ(result.server.rounds, 15);
  EXPECT_GT(result.server.final_accuracy, 0.7);
  EXPECT_EQ(result.client_test_accuracy.size(), 150u);
}

TEST(FedRunnerTest, ClientAccessorBounds) {
  FedDataset data = SmallData();
  FedRunner runner(FlattenedJob(&data));
  EXPECT_NE(runner.client(1), nullptr);
  EXPECT_NE(runner.client(8), nullptr);
  EXPECT_DEATH(runner.client(0), "");
  EXPECT_DEATH(runner.client(9), "");
}

}  // namespace
}  // namespace fedscope
