#include "fedscope/core/aggregator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace fedscope {
namespace {

StateDict Dict(float v) {
  StateDict d;
  d["w"] = Tensor::FromVector({v, v});
  return d;
}

ClientUpdate Update(int id, float delta, double samples = 1.0,
                    int staleness = 0, int steps = 1) {
  ClientUpdate u;
  u.client_id = id;
  u.num_samples = samples;
  u.staleness = staleness;
  u.local_steps = steps;
  u.delta = Dict(delta);
  return u;
}

TEST(UpdateWeightsTest, SampleProportionalNoDiscount) {
  auto w = UpdateWeights({Update(1, 0, 10), Update(2, 0, 30)}, 0.0);
  EXPECT_DOUBLE_EQ(w[0], 10.0);
  EXPECT_DOUBLE_EQ(w[1], 30.0);
}

TEST(UpdateWeightsTest, StalenessDiscountPolynomial) {
  auto w = UpdateWeights({Update(1, 0, 8, 0), Update(2, 0, 8, 3)}, 0.5);
  EXPECT_DOUBLE_EQ(w[0], 8.0);
  EXPECT_NEAR(w[1], 8.0 / std::sqrt(4.0), 1e-9);
}

TEST(FedAvgAggregatorTest, WeightedAverageAppliedToGlobal) {
  FedAvgAggregator agg(FedAvgOptions{1.0, 0.0});
  StateDict global = Dict(10.0f);
  auto next = agg.Aggregate(
      global, {Update(1, 1.0f, 10), Update(2, 4.0f, 30)});
  // avg = (10*1 + 30*4)/40 = 3.25; next = 10 + 3.25.
  EXPECT_NEAR(next.value().at("w").at(0), 13.25f, 1e-5);
}

TEST(FedAvgAggregatorTest, ServerLrScalesStep) {
  FedAvgAggregator agg(FedAvgOptions{0.5, 0.0});
  auto next = agg.Aggregate(Dict(0.0f), {Update(1, 2.0f)});
  EXPECT_NEAR(next.value().at("w").at(0), 1.0f, 1e-6);
}

TEST(FedAvgAggregatorTest, StaleUpdatesContributeLess) {
  FedAvgAggregator agg(FedAvgOptions{1.0, 1.0});
  // fresh delta 0, stale delta 10 with staleness 9 -> weight 1/10.
  auto next = agg.Aggregate(
      Dict(0.0f), {Update(1, 0.0f, 1, 0), Update(2, 10.0f, 1, 9)});
  // avg = (0*1 + 10*0.1)/(1.1) = 0.909...
  EXPECT_NEAR(next.value().at("w").at(0), 10.0 * 0.1 / 1.1, 1e-4);
}

TEST(FedAvgAggregatorTest, EmptyBufferIsRecoverableError) {
  FedAvgAggregator agg;
  auto next = agg.Aggregate(Dict(0.0f), {});
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kFailedPrecondition);
}

TEST(AggregatorErrorTest, EveryAggregatorRejectsEmptyCohort) {
  FedOptAggregator fedopt(1.0, 0.9);
  FedNovaAggregator fednova;
  KrumAggregator krum(1);
  TrimmedMeanAggregator trimmed(0.2);
  MedianAggregator median;
  std::vector<Aggregator*> all = {&fedopt, &fednova, &krum, &trimmed,
                                  &median};
  for (Aggregator* agg : all) {
    auto next = agg->Aggregate(Dict(0.0f), {});
    EXPECT_FALSE(next.ok()) << agg->Name();
  }
}

TEST(AggregatorErrorTest, MissingDeltaKeySurfacesAsStatusNotCrash) {
  // A renamed-tensor payload that slipped past ingress (guard off) must
  // surface as a recoverable error from the coordinate-wise aggregators.
  MedianAggregator median;
  ClientUpdate bad = Update(7, 1.0f);
  StateDict renamed;
  renamed["w#"] = bad.delta.at("w");
  bad.delta = std::move(renamed);
  auto next = median.Aggregate(Dict(0.0f), {Update(1, 1.0f), bad});
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kInvalidArgument);

  TrimmedMeanAggregator trimmed(0.0);
  EXPECT_FALSE(trimmed.Aggregate(Dict(0.0f), {Update(1, 1.0f), bad}).ok());
}

TEST(FedOptAggregatorTest, MomentumAccumulates) {
  FedOptAggregator agg(1.0, 0.9);
  StateDict global = Dict(0.0f);
  global = agg.Aggregate(global, {Update(1, 1.0f)}).value();
  EXPECT_NEAR(global.at("w").at(0), 1.0f, 1e-6);  // m = 1
  global = agg.Aggregate(global, {Update(1, 1.0f)}).value();
  // m = 0.9*1 + 1 = 1.9; w = 1 + 1.9 = 2.9.
  EXPECT_NEAR(global.at("w").at(0), 2.9f, 1e-5);
}

TEST(FedNovaAggregatorTest, NormalizesByLocalSteps) {
  FedNovaAggregator agg;
  // Two clients, same data amount: one did 10 steps (delta 10), one did
  // 2 steps (delta 2). Per-step deltas are both 1; tau_eff = 6; the
  // aggregated step should be 6, not the naive average 6 = (10+2)/2...
  // distinguishing case: steps 10/delta 10 vs steps 2/delta 4.
  auto next = agg.Aggregate(
      Dict(0.0f),
      {Update(1, 10.0f, 1, 0, 10), Update(2, 4.0f, 1, 0, 2)});
  // normalized deltas: 1 and 2 -> avg 1.5; tau_eff = (10+2)/2 = 6;
  // step = 9. Naive FedAvg would give 7.
  EXPECT_NEAR(next.value().at("w").at(0), 9.0f, 1e-4);
}

TEST(KrumAggregatorTest, RejectsOutlier) {
  KrumAggregator agg(/*num_malicious=*/1, /*multi_k=*/1);
  // Three honest updates near 1.0, one attacker at 100.
  auto next = agg.Aggregate(
      Dict(0.0f), {Update(1, 1.0f), Update(2, 1.1f), Update(3, 0.9f),
                   Update(4, 100.0f)});
  EXPECT_LT(next.value().at("w").at(0), 2.0f);
  ASSERT_EQ(agg.last_selection().size(), 1u);
  EXPECT_NE(agg.last_selection()[0], 3);  // attacker index not selected
}

TEST(KrumAggregatorTest, MultiKrumAveragesSelection) {
  KrumAggregator agg(1, /*multi_k=*/2);
  auto next = agg.Aggregate(
      Dict(0.0f),
      {Update(1, 1.0f), Update(2, 3.0f), Update(3, 1.2f), Update(4, 50.0f)});
  EXPECT_LT(next.value().at("w").at(0), 3.0f);
  EXPECT_EQ(agg.last_selection().size(), 2u);
}

TEST(KrumAggregatorTest, SingleUpdatePassesThrough) {
  KrumAggregator agg(0, 1);
  auto next = agg.Aggregate(Dict(0.0f), {Update(1, 5.0f)});
  EXPECT_NEAR(next.value().at("w").at(0), 5.0f, 1e-6);
}

TEST(TrimmedMeanAggregatorTest, DropsExtremes) {
  TrimmedMeanAggregator agg(0.34);  // trims 1 from each side of 3+
  auto next = agg.Aggregate(
      Dict(0.0f), {Update(1, 1.0f), Update(2, 2.0f), Update(3, 300.0f)});
  EXPECT_NEAR(next.value().at("w").at(0), 2.0f, 1e-5);
}

TEST(TrimmedMeanAggregatorTest, NoTrimIsMean) {
  TrimmedMeanAggregator agg(0.0);
  auto next = agg.Aggregate(Dict(0.0f), {Update(1, 1.0f), Update(2, 3.0f)});
  EXPECT_NEAR(next.value().at("w").at(0), 2.0f, 1e-5);
}

TEST(MedianAggregatorTest, OddAndEvenCounts) {
  MedianAggregator agg;
  auto odd = agg.Aggregate(
      Dict(0.0f), {Update(1, 1.0f), Update(2, 9.0f), Update(3, 2.0f)});
  EXPECT_NEAR(odd.value().at("w").at(0), 2.0f, 1e-6);
  auto even =
      agg.Aggregate(Dict(0.0f), {Update(1, 1.0f), Update(2, 3.0f)});
  EXPECT_NEAR(even.value().at("w").at(0), 2.0f, 1e-6);
}

TEST(MedianAggregatorTest, RobustToSingleByzantine) {
  MedianAggregator agg;
  auto next = agg.Aggregate(
      Dict(0.0f),
      {Update(1, 1.0f), Update(2, 1.1f), Update(3, -1000.0f)});
  EXPECT_GT(next.value().at("w").at(0), 0.5f);
}

// -- Byzantine breakdown points ----------------------------------------------
// Crafted sign-flip/scale attacks below the breakdown point: the robust
// aggregators must bound the attacker's influence; FedAvg is the negative
// control showing the attack actually bites.

std::vector<ClientUpdate> AttackCohort(int honest, int hostile,
                                       float hostile_delta) {
  std::vector<ClientUpdate> updates;
  for (int i = 0; i < honest; ++i) {
    updates.push_back(Update(i + 1, 1.0f + 0.01f * static_cast<float>(i)));
  }
  for (int i = 0; i < hostile; ++i) {
    updates.push_back(Update(honest + i + 1, hostile_delta));
  }
  return updates;
}

TEST(ByzantineBreakdownTest, KrumExcludesColludingOutliers) {
  // 7 honest near +1, 2 colluding at -1e4: f=2 Krum must select an
  // honest update.
  KrumAggregator agg(/*num_malicious=*/2, /*multi_k=*/1);
  auto next = agg.Aggregate(Dict(0.0f), AttackCohort(7, 2, -1e4f));
  ASSERT_TRUE(next.ok());
  EXPECT_NEAR(next.value().at("w").at(0), 1.0f, 0.2f);
  ASSERT_EQ(agg.last_selection().size(), 1u);
  EXPECT_LT(agg.last_selection()[0], 7);  // an honest index
}

TEST(ByzantineBreakdownTest, TrimmedMeanBoundsScalingAttack) {
  // 30% hostile at 1e6x scale, trim_frac 0.3 removes them per coordinate.
  TrimmedMeanAggregator agg(0.3);
  auto next = agg.Aggregate(Dict(0.0f), AttackCohort(7, 3, 1e6f));
  ASSERT_TRUE(next.ok());
  EXPECT_NEAR(next.value().at("w").at(0), 1.0f, 0.2f);
}

TEST(ByzantineBreakdownTest, MedianSurvivesMinorityHostile) {
  MedianAggregator agg;
  auto next = agg.Aggregate(Dict(0.0f), AttackCohort(6, 4, -1e6f));
  ASSERT_TRUE(next.ok());
  EXPECT_NEAR(next.value().at("w").at(0), 1.0f, 0.2f);
}

TEST(ByzantineBreakdownTest, FedAvgIsTheNegativeControl) {
  // The same 30% scaling attack drags the unprotected mean far from the
  // honest consensus — proving the robust results above are non-trivial.
  FedAvgAggregator agg;
  auto next = agg.Aggregate(Dict(0.0f), AttackCohort(7, 3, 1e6f));
  ASSERT_TRUE(next.ok());
  EXPECT_GT(next.value().at("w").at(0), 1e4f);
}

TEST(ByzantineBreakdownTest, MedianBeyondBreakdownIsCaptured) {
  // Majority-hostile cohorts defeat every coordinate-wise rule; record
  // that honestly instead of overclaiming the defence.
  MedianAggregator agg;
  auto next = agg.Aggregate(Dict(0.0f), AttackCohort(4, 6, -1e6f));
  ASSERT_TRUE(next.ok());
  EXPECT_LT(next.value().at("w").at(0), -1e5f);
}

class AveragingAggregatorNames
    : public ::testing::TestWithParam<std::string> {};

TEST(AggregatorNamesTest, AllNamed) {
  EXPECT_EQ(FedAvgAggregator().Name(), "fedavg");
  EXPECT_EQ(FedOptAggregator(1, 0.9).Name(), "fedopt");
  EXPECT_EQ(FedNovaAggregator().Name(), "fednova");
  EXPECT_EQ(KrumAggregator(1).Name(), "krum");
  EXPECT_EQ(TrimmedMeanAggregator(0.1).Name(), "trimmed_mean");
  EXPECT_EQ(MedianAggregator().Name(), "median");
}

}  // namespace
}  // namespace fedscope
