#include "fedscope/core/handler_registry.h"

#include <gtest/gtest.h>

#include "fedscope/util/logging.h"

namespace fedscope {
namespace {

TEST(HandlerRegistryTest, DispatchInvokesHandler) {
  HandlerRegistry registry;
  int calls = 0;
  registry.Register("ping", [&](const Message&) { ++calls; });
  Message m;
  EXPECT_TRUE(registry.Dispatch("ping", m).ok());
  EXPECT_EQ(calls, 1);
}

TEST(HandlerRegistryTest, DispatchUnknownEventIsNotFound) {
  HandlerRegistry registry;
  Message m;
  EXPECT_EQ(registry.Dispatch("nope", m).code(), StatusCode::kNotFound);
}

TEST(HandlerRegistryTest, HandlerReceivesMessage) {
  HandlerRegistry registry;
  std::string seen;
  registry.Register("x", [&](const Message& msg) { seen = msg.msg_type; });
  Message m;
  m.msg_type = "x";
  ASSERT_TRUE(registry.Dispatch("x", m).ok());
  EXPECT_EQ(seen, "x");
}

TEST(HandlerRegistryTest, OverwritingPrincipleLatestWins) {
  // The paper's §3.2 conflict resolution: re-registration warns and the
  // latest handler takes effect.
  std::vector<std::string> warnings;
  Logging::set_sink([&](LogLevel level, const std::string& text) {
    if (level == LogLevel::kWarning) warnings.push_back(text);
  });

  HandlerRegistry registry;
  int first = 0, second = 0;
  EXPECT_FALSE(registry.Register("evt", [&](const Message&) { ++first; }));
  EXPECT_TRUE(registry.Register("evt", [&](const Message&) { ++second; }));
  Logging::set_sink(nullptr);

  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("overwrites"), std::string::npos);
  EXPECT_EQ(registry.overwrite_count(), 1);

  Message m;
  ASSERT_TRUE(registry.Dispatch("evt", m).ok());
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(HandlerRegistryTest, UnregisterRemovesHandler) {
  HandlerRegistry registry;
  registry.Register("evt", [](const Message&) {});
  EXPECT_TRUE(registry.Has("evt"));
  EXPECT_TRUE(registry.Unregister("evt"));
  EXPECT_FALSE(registry.Has("evt"));
  EXPECT_FALSE(registry.Unregister("evt"));
  Message m;
  EXPECT_FALSE(registry.Dispatch("evt", m).ok());
}

TEST(HandlerRegistryTest, RegisteredEventsInOrder) {
  HandlerRegistry registry;
  registry.Register("a", [](const Message&) {});
  registry.Register("b", [](const Message&) {});
  registry.Register("a", [](const Message&) {});  // re-register moves a last
  auto events = registry.RegisteredEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], "b");
  EXPECT_EQ(events[1], "a");
}

TEST(HandlerRegistryTest, FlowsRecorded) {
  HandlerRegistry registry;
  registry.Register("model_para", [](const Message&) {},
                    {"model_update"});
  const auto& flows = registry.Flows();
  ASSERT_TRUE(flows.count("model_para"));
  ASSERT_EQ(flows.at("model_para").size(), 1u);
  EXPECT_EQ(flows.at("model_para")[0], "model_update");
}

TEST(HandlerRegistryTest, NullHandlerDies) {
  HandlerRegistry registry;
  EXPECT_DEATH(registry.Register("x", nullptr), "");
}

}  // namespace
}  // namespace fedscope
