#include <gtest/gtest.h>

#include "fedscope/core/fed_runner.h"
#include "fedscope/data/synthetic_cifar.h"
#include "fedscope/nn/model_zoo.h"

namespace fedscope {
namespace {

FedDataset* SharedData() {
  static FedDataset* data = [] {
    SyntheticCifarOptions options;
    options.num_clients = 30;
    options.pool_size = 900;
    options.alpha = 1.0;
    options.server_test_size = 128;
    options.seed = 3;
    return new FedDataset(MakeSyntheticCifar(options));
  }();
  return data;
}

Model FlatMlp(uint64_t seed) {
  Rng rng(seed);
  Model m;
  m.Add("flat", std::make_unique<Flatten>());
  Model mlp = MakeMlp({3 * 8 * 8, 24, 10}, &rng);
  for (int i = 0; i < mlp.num_layers(); ++i) {
    m.Add(mlp.layer_name(i), mlp.layer(i)->Clone());
  }
  return m;
}

FedJob BaseJob(uint64_t seed = 21) {
  FedJob job;
  job.data = SharedData();
  job.init_model = FlatMlp(seed);
  job.client.train.lr = 0.1;
  job.client.train.local_steps = 2;
  job.client.train.batch_size = 8;
  job.client.jitter_sigma = 0.2;
  Rng fleet_rng(seed + 1);
  FleetOptions fleet;
  fleet.straggler_frac = 0.2;
  job.fleet = MakeFleet(30, fleet, &fleet_rng);
  job.server.concurrency = 10;
  job.server.max_rounds = 12;
  job.seed = seed;
  return job;
}

TEST(AsyncStrategiesTest, SyncVanillaWaitsForFullCohort) {
  FedJob job = BaseJob();
  job.server.strategy = Strategy::kSyncVanilla;
  RunResult result = FedRunner(std::move(job)).Run();
  EXPECT_EQ(result.server.rounds, 12);
  // Every contribution is fresh in sync mode.
  for (int s : result.server.staleness_log) EXPECT_EQ(s, 0);
  // Exactly concurrency updates per round.
  EXPECT_EQ(static_cast<int>(result.server.staleness_log.size()), 12 * 10);
}

TEST(AsyncStrategiesTest, OverselectionDropsSlowUpdates) {
  FedJob job = BaseJob();
  job.server.strategy = Strategy::kSyncOverselect;
  job.server.overselect_frac = 0.3;
  job.server.staleness_tolerance = 0;
  RunResult result = FedRunner(std::move(job)).Run();
  EXPECT_EQ(result.server.rounds, 12);
  // The over-selected victims' updates were dropped.
  EXPECT_GT(result.server.dropped_stale, 0);
}

TEST(AsyncStrategiesTest, GoalStrategyAggregatesAtGoal) {
  FedJob job = BaseJob();
  job.server.strategy = Strategy::kAsyncGoal;
  job.server.aggregation_goal = 4;
  job.server.staleness_tolerance = 10;
  RunResult result = FedRunner(std::move(job)).Run();
  EXPECT_EQ(result.server.rounds, 12);
  // Stale contributions exist under async aggregation.
  bool any_stale = false;
  for (int s : result.server.staleness_log) {
    if (s > 0) any_stale = true;
  }
  EXPECT_TRUE(any_stale);
}

TEST(AsyncStrategiesTest, StalenessNeverExceedsTolerance) {
  FedJob job = BaseJob();
  job.server.strategy = Strategy::kAsyncGoal;
  job.server.aggregation_goal = 3;
  job.server.staleness_tolerance = 5;
  RunResult result = FedRunner(std::move(job)).Run();
  for (int s : result.server.staleness_log) {
    EXPECT_LE(s, 5);
    EXPECT_GE(s, 0);
  }
}

TEST(AsyncStrategiesTest, AsyncIsFasterThanSyncInVirtualTime) {
  // The headline claim (Table 1): goal-based async finishes its rounds in
  // far less virtual time because it never waits for stragglers.
  FedJob sync_job = BaseJob(31);
  sync_job.server.strategy = Strategy::kSyncVanilla;
  RunResult sync = FedRunner(std::move(sync_job)).Run();

  FedJob async_job = BaseJob(31);
  async_job.server.strategy = Strategy::kAsyncGoal;
  async_job.server.aggregation_goal = 4;
  RunResult async_result = FedRunner(std::move(async_job)).Run();

  ASSERT_FALSE(sync.server.curve.empty());
  ASSERT_FALSE(async_result.server.curve.empty());
  const double sync_time = sync.server.curve.back().first;
  const double async_time = async_result.server.curve.back().first;
  EXPECT_LT(async_time, sync_time);
}

TEST(AsyncStrategiesTest, TimeUpStrategyRespectsBudget) {
  FedJob job = BaseJob();
  job.server.strategy = Strategy::kAsyncTime;
  job.server.time_budget = 5.0;
  job.server.min_received = 1;
  job.server.max_rounds = 6;
  RunResult result = FedRunner(std::move(job)).Run();
  EXPECT_EQ(result.server.rounds, 6);
  // Rounds are paced by the budget: total time ~ rounds * budget
  // (within remedial extensions).
  const double total = result.server.curve.back().first;
  EXPECT_GE(total, 6 * 5.0 - 1e-6);
  EXPECT_LE(total, 6 * 5.0 * 6);
}

TEST(AsyncStrategiesTest, AfterReceivingKeepsConcurrency) {
  FedJob job = BaseJob();
  job.server.strategy = Strategy::kAsyncGoal;
  job.server.aggregation_goal = 4;
  job.server.broadcast = BroadcastManner::kAfterReceiving;
  RunResult result = FedRunner(std::move(job)).Run();
  EXPECT_EQ(result.server.rounds, 12);
  EXPECT_GT(result.server.final_accuracy, 0.15);
}

TEST(AsyncStrategiesTest, CrashyFleetStallsSyncButNotTimeUp) {
  // With crashes, sync vanilla deadlocks (never finishes its rounds) while
  // the time_up strategy's remedial measures keep the course moving.
  FedJob job = BaseJob(41);
  for (auto& device : job.fleet) device.crash_prob = 0.3;
  job.server.strategy = Strategy::kAsyncTime;
  job.server.time_budget = 20.0;
  job.server.max_rounds = 5;
  RunResult result = FedRunner(std::move(job)).Run();
  EXPECT_EQ(result.server.rounds, 5);

  FedJob sync_job = BaseJob(41);
  for (auto& device : sync_job.fleet) device.crash_prob = 0.3;
  sync_job.server.strategy = Strategy::kSyncVanilla;
  sync_job.server.max_rounds = 5;
  RunResult stalled = FedRunner(std::move(sync_job)).Run();
  EXPECT_LT(stalled.server.rounds, 5);  // queue drained before finishing
}

TEST(AsyncStrategiesTest, TimeUpRemedialExtensionsAreCounted) {
  // min_received = 8 of 10 concurrent with a budget far below even the
  // fastest device's response time forces the remedial path (replenish +
  // extend); the extension counter surfaces how often it fired. The cap is
  // raised so the short budget cannot trip the starvation backstop.
  FedJob job = BaseJob();
  job.server.strategy = Strategy::kAsyncTime;
  job.server.time_budget = 0.02;
  job.server.min_received = 8;
  job.server.max_round_extensions = 1000;
  job.server.max_rounds = 4;
  RunResult result = FedRunner(std::move(job)).Run();
  EXPECT_EQ(result.server.rounds, 4);
  EXPECT_GT(result.server.round_extensions, 0);
  EXPECT_FALSE(result.server.aborted);
}

TEST(AsyncStrategiesTest, TimeUpBackstopAbortsWhenFleetIsDead) {
  // Every device crashes on every task, so no extension can ever gather
  // min_received updates. Without the backstop this configuration would
  // re-arm timers forever; with it the course aborts after the cap.
  FedJob job = BaseJob();
  for (auto& device : job.fleet) device.crash_prob = 1.0;
  job.server.strategy = Strategy::kAsyncTime;
  job.server.time_budget = 5.0;
  job.server.max_round_extensions = 2;
  job.server.max_rounds = 4;
  RunResult result = FedRunner(std::move(job)).Run();
  EXPECT_TRUE(result.server.aborted);
  EXPECT_EQ(result.server.rounds, 0);
  EXPECT_GT(result.server.round_extensions, 0);
}

// ---------------------------------------------------------------------------
// Property sweep: every strategy/broadcast/sampler combination is exactly
// reproducible from its seed and respects the core invariants.
// ---------------------------------------------------------------------------

struct StrategyCase {
  std::string name;
  Strategy strategy;
  BroadcastManner broadcast;
  std::string sampler;
};

class StrategySweep : public ::testing::TestWithParam<StrategyCase> {};

TEST_P(StrategySweep, DeterministicAndInvariantsHold) {
  const auto& param = GetParam();
  auto make_job = [&]() {
    FedJob job = BaseJob(99);
    job.server.strategy = param.strategy;
    job.server.broadcast = param.broadcast;
    job.server.sampler = param.sampler;
    job.server.aggregation_goal = 4;
    job.server.time_budget = 30.0;
    job.server.staleness_tolerance = 6;
    job.server.max_rounds = 8;
    return job;
  };
  RunResult a = FedRunner(make_job()).Run();
  RunResult b = FedRunner(make_job()).Run();

  // Bit-exact reproducibility.
  ASSERT_EQ(a.server.curve.size(), b.server.curve.size());
  for (size_t i = 0; i < a.server.curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.server.curve[i].first, b.server.curve[i].first);
    EXPECT_DOUBLE_EQ(a.server.curve[i].second, b.server.curve[i].second);
  }
  EXPECT_TRUE(a.final_model.GetStateDict() == b.final_model.GetStateDict());

  // Invariants: rounds completed, staleness within tolerance, monotone
  // virtual time, completeness verified.
  EXPECT_EQ(a.server.rounds, 8);
  for (int s : a.server.staleness_log) {
    EXPECT_GE(s, 0);
    EXPECT_LE(s, 6);
  }
  double last_time = -1.0;
  for (const auto& [t, acc] : a.server.curve) {
    EXPECT_GE(t, last_time);
    last_time = t;
  }
  EXPECT_TRUE(a.completeness.complete);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, StrategySweep,
    ::testing::Values(
        StrategyCase{"sync_vanilla", Strategy::kSyncVanilla,
                     BroadcastManner::kAfterAggregating, "uniform"},
        StrategyCase{"sync_overselect", Strategy::kSyncOverselect,
                     BroadcastManner::kAfterAggregating, "uniform"},
        StrategyCase{"goal_aggr_unif", Strategy::kAsyncGoal,
                     BroadcastManner::kAfterAggregating, "uniform"},
        StrategyCase{"goal_rece_unif", Strategy::kAsyncGoal,
                     BroadcastManner::kAfterReceiving, "uniform"},
        StrategyCase{"goal_aggr_group", Strategy::kAsyncGoal,
                     BroadcastManner::kAfterAggregating, "group"},
        StrategyCase{"goal_aggr_resp", Strategy::kAsyncGoal,
                     BroadcastManner::kAfterAggregating, "responsiveness"},
        StrategyCase{"goal_aggr_respinv", Strategy::kAsyncGoal,
                     BroadcastManner::kAfterAggregating,
                     "responsiveness_inv"},
        StrategyCase{"time_aggr_unif", Strategy::kAsyncTime,
                     BroadcastManner::kAfterAggregating, "uniform"},
        StrategyCase{"time_rece_unif", Strategy::kAsyncTime,
                     BroadcastManner::kAfterReceiving, "uniform"}),
    [](const ::testing::TestParamInfo<StrategyCase>& info) {
      return info.param.name;
    });

TEST(AsyncStrategiesTest, GroupSamplerRuns) {
  FedJob job = BaseJob();
  job.server.strategy = Strategy::kAsyncGoal;
  job.server.aggregation_goal = 4;
  job.server.sampler = "group";
  job.server.num_groups = 3;
  RunResult result = FedRunner(std::move(job)).Run();
  EXPECT_EQ(result.server.rounds, 12);
}

TEST(AsyncStrategiesTest, ResponsivenessSamplerRuns) {
  FedJob job = BaseJob();
  job.server.strategy = Strategy::kAsyncGoal;
  job.server.aggregation_goal = 4;
  job.server.sampler = "responsiveness";
  RunResult result = FedRunner(std::move(job)).Run();
  EXPECT_EQ(result.server.rounds, 12);
}

}  // namespace
}  // namespace fedscope
