#include "fedscope/core/completeness.h"

#include <gtest/gtest.h>

#include "fedscope/core/events.h"
#include "fedscope/util/logging.h"

namespace fedscope {
namespace {

TEST(CompletenessTest, EmptyGraphIsIncomplete) {
  CompletenessChecker checker;
  auto report = checker.Check();
  EXPECT_FALSE(report.complete);
}

TEST(CompletenessTest, DirectPathIsComplete) {
  CompletenessChecker checker;
  checker.MarkEntry("join_in");
  checker.AddEdge("join_in", "finish");
  checker.MarkTerminal("finish");
  auto report = checker.Check();
  EXPECT_TRUE(report.complete);
}

TEST(CompletenessTest, BuiltinFedAvgFlowIsComplete) {
  // Mirrors the left subgraph of Figure 16.
  CompletenessChecker checker;
  checker.MarkEntry(events::kJoinIn);
  checker.AddEdge(events::kJoinIn, events::kAllJoinedIn);
  checker.AddEdge(events::kAllJoinedIn, events::kModelPara);
  checker.AddEdge(events::kModelPara, events::kModelUpdate);
  checker.AddEdge(events::kModelUpdate, events::kAllReceived);
  checker.AddEdge(events::kAllReceived, events::kModelPara);
  checker.AddEdge(events::kModelUpdate, events::kTargetReached);
  checker.AddEdge(events::kTargetReached, events::kFinish);
  checker.MarkTerminal(events::kFinish);
  auto report = checker.Check();
  EXPECT_TRUE(report.complete);
  EXPECT_TRUE(report.unreachable.empty());
}

TEST(CompletenessTest, RedundantNodesReportedAsWarnings) {
  // The middle subgraph of Figure 16: reachable start->end plus dangling
  // nodes that only produce warnings.
  std::vector<std::string> warnings;
  Logging::set_sink([&](LogLevel level, const std::string& text) {
    if (level == LogLevel::kWarning) warnings.push_back(text);
  });
  CompletenessChecker checker;
  checker.MarkEntry("m1");
  checker.AddEdge("m1", "finish");
  checker.MarkTerminal("finish");
  checker.AddEdge("m3", "m4");  // unreachable island
  auto report = checker.Check();
  Logging::set_sink(nullptr);

  EXPECT_TRUE(report.complete);
  ASSERT_EQ(report.unreachable.size(), 2u);
  EXPECT_EQ(warnings.size(), 2u);
}

TEST(CompletenessTest, MissingPathIsError) {
  // The right subgraph of Figure 16: no start-to-end path.
  std::vector<std::string> errors;
  Logging::set_sink([&](LogLevel level, const std::string& text) {
    if (level == LogLevel::kError) errors.push_back(text);
  });
  CompletenessChecker checker;
  checker.MarkEntry("m1");
  checker.AddEdge("m1", "m2");
  checker.AddEdge("m3", "finish");  // finish only reachable from m3
  checker.MarkTerminal("finish");
  auto report = checker.Check();
  Logging::set_sink(nullptr);

  EXPECT_FALSE(report.complete);
  EXPECT_EQ(errors.size(), 1u);
}

TEST(CompletenessTest, OptionalNodesSuppressWarnings) {
  std::vector<std::string> warnings;
  Logging::set_sink([&](LogLevel level, const std::string& text) {
    if (level == LogLevel::kWarning) warnings.push_back(text);
  });
  CompletenessChecker checker;
  checker.MarkEntry("a");
  checker.AddEdge("a", "finish");
  checker.MarkTerminal("finish");
  checker.AddEdge("island", "island2");
  checker.MarkOptional("island");
  checker.MarkOptional("island2");
  auto report = checker.Check();
  Logging::set_sink(nullptr);

  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.unreachable.size(), 2u);  // still reported
  EXPECT_TRUE(warnings.empty());             // but not logged
}

TEST(CompletenessTest, AddRegistryImportsFlows) {
  HandlerRegistry registry;
  registry.Register(events::kModelPara, [](const Message&) {},
                    {events::kModelUpdate});
  CompletenessChecker checker;
  checker.AddRegistry(registry);
  checker.MarkEntry(events::kModelPara);
  checker.MarkTerminal(events::kModelUpdate);
  EXPECT_TRUE(checker.Check().complete);
}

TEST(CompletenessTest, ReportToStringMentionsStatus) {
  CompletenessChecker checker;
  checker.MarkEntry("a");
  checker.MarkTerminal("a");
  auto report = checker.Check();
  EXPECT_NE(report.ToString().find("complete=yes"), std::string::npos);
}

TEST(CompletenessTest, CyclesDoNotHang) {
  CompletenessChecker checker;
  checker.MarkEntry("a");
  checker.AddEdge("a", "b");
  checker.AddEdge("b", "a");  // cycle
  checker.AddEdge("b", "finish");
  checker.MarkTerminal("finish");
  EXPECT_TRUE(checker.Check().complete);
}

}  // namespace
}  // namespace fedscope
