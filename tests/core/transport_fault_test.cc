#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <thread>

#include "fedscope/comm/socket_transport.h"
#include "fedscope/core/distributed.h"
#include "fedscope/core/events.h"
#include "fedscope/nn/model_zoo.h"

namespace fedscope {
namespace {

/// Raw socket bypassing TcpConnection, for writing hostile byte streams.
int RawConnect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// ---------------------------------------------------------------------------
// Frame validation
// ---------------------------------------------------------------------------

TEST(TransportFaultTest, HostileLengthPrefixRejectedBeforeAllocation) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  const int fd = RawConnect(listener->port());
  ASSERT_GE(fd, 0);
  auto conn = listener->Accept();
  ASSERT_TRUE(conn.ok());
  // A frame claiming ~2 GiB: must be rejected from the prefix alone — a
  // malicious or corrupt peer cannot drive a multi-GB allocation.
  const uint32_t hostile = 0x7FFFFFFFu;
  ASSERT_EQ(::send(fd, &hostile, sizeof(hostile), 0),
            static_cast<ssize_t>(sizeof(hostile)));
  auto msg = conn->ReceiveMessage();
  EXPECT_FALSE(msg.ok());
  EXPECT_EQ(msg.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(msg.status().message().find("oversized frame"),
            std::string::npos);
  ::close(fd);
}

TEST(TransportFaultTest, FrameCapIsConfigurable) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  const int port = listener->port();
  std::thread client_thread([port] {
    auto conn = TcpConnection::Connect("127.0.0.1", port);
    if (!conn.ok()) return;
    Message msg;
    msg.msg_type = "model_update";
    msg.payload.SetTensor("delta/w",
                          Tensor::FromVector({1.f, 2.f, 3.f, 4.f}));
    conn->SendMessage(msg).ok();
    // Hold the socket open until the server has judged the frame.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  });
  auto conn = listener->Accept();
  ASSERT_TRUE(conn.ok());
  conn->set_max_frame_bytes(16);  // far below any real message
  auto msg = conn->ReceiveMessage();
  client_thread.join();
  EXPECT_FALSE(msg.ok());
  EXPECT_EQ(msg.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(msg.status().message().find("oversized frame"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Socket timeouts
// ---------------------------------------------------------------------------

TEST(TransportFaultTest, IdleRecvTimeoutIsRetryable) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  const int port = listener->port();
  std::thread client_thread([port] {
    auto conn = TcpConnection::Connect("127.0.0.1", port);
    if (!conn.ok()) return;
    // Stay silent past the server's timeout, then deliver.
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    Message msg;
    msg.msg_type = "seq";
    msg.state = 7;
    conn->SendMessage(msg).ok();
  });
  auto conn = listener->Accept();
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->SetTimeouts(0.0, 0.1).ok());
  // First receive: the peer is idle -> DeadlineExceeded, not DataLoss.
  auto timed_out = conn->ReceiveMessage();
  EXPECT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kDeadlineExceeded);
  // The connection is still usable: retrying yields the message.
  Result<Message> delivered = conn->ReceiveMessage();
  for (int i = 0; i < 50 && !delivered.ok() &&
                  delivered.status().code() == StatusCode::kDeadlineExceeded;
       ++i) {
    delivered = conn->ReceiveMessage();
  }
  client_thread.join();
  ASSERT_TRUE(delivered.ok()) << delivered.status().ToString();
  EXPECT_EQ(delivered->state, 7);
}

TEST(TransportFaultTest, MidFrameStallIsDataLoss) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  const int fd = RawConnect(listener->port());
  ASSERT_GE(fd, 0);
  auto conn = listener->Accept();
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->SetTimeouts(0.0, 0.1).ok());
  // A truncated frame: the prefix promises 100 bytes, only 4 arrive.
  const uint32_t length = 100;
  ASSERT_EQ(::send(fd, &length, sizeof(length), 0),
            static_cast<ssize_t>(sizeof(length)));
  const uint32_t partial = 0;
  ASSERT_EQ(::send(fd, &partial, sizeof(partial), 0),
            static_cast<ssize_t>(sizeof(partial)));
  auto msg = conn->ReceiveMessage();
  EXPECT_FALSE(msg.ok());
  // The stream is truncated mid-object: unrecoverable, unlike the idle
  // timeout above.
  EXPECT_EQ(msg.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(msg.status().message().find("mid-frame"), std::string::npos);
  ::close(fd);
}

// ---------------------------------------------------------------------------
// Connect retry
// ---------------------------------------------------------------------------

TEST(TransportFaultTest, ConnectWithRetrySurvivesLateListener) {
  // A client coming up before the server: retry with backoff until the
  // listener is bound.
  auto probe = TcpListener::Bind(0);
  ASSERT_TRUE(probe.ok());
  const int port = probe->port();
  probe->Close();
  std::thread listener_thread([port] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    auto listener = TcpListener::Bind(port);
    if (!listener.ok()) return;
    listener->Accept().ok();
  });
  TransportOptions options;
  options.connect_attempts = 30;
  options.retry_base_delay_ms = 10;
  options.retry_max_delay_ms = 100;
  options.retry_seed = 42;
  auto conn = TcpConnection::ConnectWithRetry("127.0.0.1", port, options);
  listener_thread.join();
  EXPECT_TRUE(conn.ok()) << conn.status().ToString();
}

TEST(TransportFaultTest, ConnectWithRetryGivesUpEventually) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  const int port = listener->port();
  listener->Close();
  TransportOptions options;
  options.connect_attempts = 3;
  options.retry_base_delay_ms = 1;
  options.retry_max_delay_ms = 5;
  auto conn = TcpConnection::ConnectWithRetry("127.0.0.1", port, options);
  EXPECT_FALSE(conn.ok());
}

// ---------------------------------------------------------------------------
// Distributed course under failure
// ---------------------------------------------------------------------------

Dataset Blobs(int64_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset d;
  d.x = Tensor({n, 2});
  d.labels.resize(n);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t y = i % 2;
    d.labels[i] = y;
    d.x.at(i, 0) = static_cast<float>((y ? 1.5 : -1.5) + rng.Normal(0, 0.5));
    d.x.at(i, 1) = static_cast<float>((y ? 1.5 : -1.5) + rng.Normal(0, 0.5));
  }
  return d;
}

TEST(TransportFaultTest, DistributedCourseSurvivesClientDeath) {
  // Four clients join; one dies right after the first broadcast. The host
  // must classify the EOF as a mid-course failure, report it to the Server
  // worker, and the remaining three must carry the course to completion.
  constexpr int kClients = 4;
  Rng init_rng(1);
  Model init = MakeLogisticRegression(2, 2, &init_rng);
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  const int port = listener->port();

  ServerOptions server_options;
  server_options.strategy = Strategy::kSyncVanilla;
  server_options.concurrency = kClients;
  server_options.expected_clients = kClients;
  server_options.max_rounds = 4;
  server_options.seed = 2;

  DistributedServerHost server_host(
      server_options, init, std::make_unique<FedAvgAggregator>(),
      std::move(listener.value()));
  Dataset server_test = Blobs(64, 99);
  server_host.server()->set_evaluator([&server_test](Model* model) {
    return EvaluateClassifier(model, server_test);
  });

  ServerStats stats;
  std::thread server_thread([&] { stats = server_host.Run(); });

  // The flaky participant: joins (twice — a retransmission the suppressor
  // must absorb), waits for the first model broadcast, and vanishes.
  std::thread flaky_thread([port] {
    auto conn = TcpConnection::Connect("127.0.0.1", port);
    if (!conn.ok()) return;
    Message join;
    join.sender = kClients;
    join.receiver = kServerId;
    join.msg_type = events::kJoinIn;
    conn->SendMessage(join).ok();
    conn->SendMessage(join).ok();  // duplicate join_in
    while (true) {
      auto msg = conn->ReceiveMessage();
      if (!msg.ok() || msg->msg_type == events::kModelPara) break;
    }
    conn->Close();
  });

  std::vector<std::thread> client_threads;
  std::vector<Status> client_statuses(kClients - 1);
  for (int id = 1; id <= kClients - 1; ++id) {
    client_threads.emplace_back([&, id] {
      ClientOptions options;
      options.jitter_sigma = 0.0;
      options.seed = 100 + id;
      Rng split_rng(id);
      SplitDataset data = Split(Blobs(40, id), 0.7, 0.1, &split_rng);
      DistributedClientHost host(id, std::move(options), init,
                                 std::move(data),
                                 std::make_unique<GeneralTrainer>(),
                                 "127.0.0.1", port);
      client_statuses[id - 1] = host.Run();
    });
  }
  flaky_thread.join();
  for (auto& t : client_threads) t.join();
  server_thread.join();

  for (const auto& status : client_statuses) {
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  EXPECT_EQ(stats.rounds, 4);  // the course completed without the dead peer
  EXPECT_GE(stats.dropouts, 1);
  EXPECT_EQ(server_host.failed_clients(), 1);
  EXPECT_GE(server_host.duplicates_suppressed(), 1);
}

TEST(TransportFaultTest, CleanFinishCountsNoFailures) {
  // Orderly course-end hangups must not be mistaken for client failures.
  constexpr int kClients = 2;
  Rng init_rng(6);
  Model init = MakeLogisticRegression(2, 2, &init_rng);
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  const int port = listener->port();

  ServerOptions server_options;
  server_options.strategy = Strategy::kSyncVanilla;
  server_options.concurrency = kClients;
  server_options.expected_clients = kClients;
  server_options.max_rounds = 2;
  server_options.seed = 7;

  TransportOptions transport;
  transport.recv_timeout = 0.05;  // readers poll instead of blocking
  DistributedServerHost server_host(
      server_options, init, std::make_unique<FedAvgAggregator>(),
      std::move(listener.value()), transport);
  Dataset server_test = Blobs(64, 98);
  server_host.server()->set_evaluator([&server_test](Model* model) {
    return EvaluateClassifier(model, server_test);
  });

  ServerStats stats;
  std::thread server_thread([&] { stats = server_host.Run(); });
  std::vector<std::thread> client_threads;
  for (int id = 1; id <= kClients; ++id) {
    client_threads.emplace_back([&, id] {
      ClientOptions options;
      options.jitter_sigma = 0.0;
      options.seed = 400 + id;
      Rng split_rng(id);
      SplitDataset data = Split(Blobs(40, 30 + id), 0.7, 0.1, &split_rng);
      TransportOptions client_transport;
      client_transport.connect_attempts = 5;
      client_transport.retry_seed = 100 + id;
      client_transport.recv_timeout = 0.05;
      DistributedClientHost host(id, std::move(options), init,
                                 std::move(data),
                                 std::make_unique<GeneralTrainer>(),
                                 "127.0.0.1", port, client_transport);
      EXPECT_TRUE(host.Run().ok());
    });
  }
  for (auto& t : client_threads) t.join();
  server_thread.join();
  EXPECT_EQ(stats.rounds, 2);
  EXPECT_EQ(stats.dropouts, 0);
  EXPECT_EQ(server_host.failed_clients(), 0);
  EXPECT_EQ(server_host.duplicates_suppressed(), 0);
}

TEST(TransportFaultTest, HostilePeerQuarantinedCourseCompletes) {
  // A Byzantine participant speaks the wire protocol correctly but lies in
  // the payload: first a malformed update (renamed tensors), then NaN
  // poison. The ingress guard must reject both, quarantine the peer after
  // the second violation, and the honest cohort must finish the course —
  // no crash, no corrupted model.
  constexpr int kClients = 4;
  Rng init_rng(11);
  Model init = MakeLogisticRegression(2, 2, &init_rng);
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  const int port = listener->port();

  ServerOptions server_options;
  server_options.strategy = Strategy::kSyncVanilla;
  server_options.concurrency = kClients;
  server_options.expected_clients = kClients;
  server_options.max_rounds = 4;
  server_options.seed = 3;
  server_options.guard.enabled = true;
  server_options.guard.quarantine_after = 2;

  DistributedServerHost server_host(
      server_options, init, std::make_unique<FedAvgAggregator>(),
      std::move(listener.value()));
  Dataset server_test = Blobs(64, 97);
  server_host.server()->set_evaluator([&server_test](Model* model) {
    return EvaluateClassifier(model, server_test);
  });

  ServerStats stats;
  std::thread server_thread([&] { stats = server_host.Run(); });

  // The hostile participant. It closes its socket after the second attack:
  // a quarantined client gets no finish broadcast, so lingering would
  // stall the host's teardown (which waits for every connection to EOF).
  std::thread hostile_thread([port] {
    auto conn = TcpConnection::Connect("127.0.0.1", port);
    if (!conn.ok()) return;
    Message join;
    join.sender = kClients;
    join.receiver = kServerId;
    join.msg_type = events::kJoinIn;
    conn->SendMessage(join).ok();
    int attacks = 0;
    while (attacks < 2) {
      auto msg = conn->ReceiveMessage();
      if (!msg.ok()) return;
      if (msg->msg_type == events::kFinish) return;
      if (msg->msg_type != events::kModelPara) continue;
      StateDict delta = msg->payload.GetStateDict("model");
      Message reply;
      reply.sender = kClients;
      reply.receiver = kServerId;
      reply.msg_type = events::kModelUpdate;
      reply.state = msg->state;
      reply.payload.SetInt(kSessionEpochKey,
                           msg->payload.GetInt(kSessionEpochKey, 0));
      if (attacks == 0) {
        StateDict renamed;  // right tensors, wrong names
        for (const auto& [name, tensor] : delta) {
          renamed[name + "#"] = tensor;
        }
        reply.payload.SetStateDict("delta", renamed);
      } else {
        delta.begin()->second.at(0) =
            std::numeric_limits<float>::quiet_NaN();
        reply.payload.SetStateDict("delta", delta);
      }
      reply.payload.SetInt("num_samples", 4);
      reply.payload.SetInt("local_steps", 1);
      conn->SendMessage(reply).ok();
      ++attacks;
    }
    conn->Close();
  });

  std::vector<std::thread> client_threads;
  std::vector<Status> client_statuses(kClients - 1);
  for (int id = 1; id <= kClients - 1; ++id) {
    client_threads.emplace_back([&, id] {
      ClientOptions options;
      options.jitter_sigma = 0.0;
      options.seed = 200 + id;
      Rng split_rng(id);
      SplitDataset data = Split(Blobs(40, 50 + id), 0.7, 0.1, &split_rng);
      DistributedClientHost host(id, std::move(options), init,
                                 std::move(data),
                                 std::make_unique<GeneralTrainer>(),
                                 "127.0.0.1", port);
      client_statuses[id - 1] = host.Run();
    });
  }
  hostile_thread.join();
  for (auto& t : client_threads) t.join();
  server_thread.join();

  for (const auto& status : client_statuses) {
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  EXPECT_EQ(stats.rounds, 4);
  EXPECT_FALSE(stats.aborted);
  EXPECT_EQ(stats.updates_rejected, 2);
  ASSERT_EQ(stats.quarantined.size(), 1u);
  EXPECT_EQ(stats.quarantined[0], kClients);
  // The poison never reached an aggregation: the shared model is finite.
  for (const auto& [name, tensor] :
       server_host.server()->global_model()->GetStateDict()) {
    for (int64_t i = 0; i < tensor.numel(); ++i) {
      EXPECT_TRUE(std::isfinite(tensor.at(i))) << name << "[" << i << "]";
    }
  }
}

TEST(TransportFaultTest, ReceiveDeadlineRejectedInDistributedMode) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  ServerOptions options;
  options.strategy = Strategy::kSyncVanilla;
  options.receive_deadline = 10.0;
  options.expected_clients = 1;
  Rng rng(1);
  EXPECT_DEATH(DistributedServerHost(options,
                                     MakeLogisticRegression(2, 2, &rng),
                                     std::make_unique<FedAvgAggregator>(),
                                     std::move(listener.value())),
               "");
}

}  // namespace
}  // namespace fedscope
