#include "fedscope/core/sampler.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace fedscope {
namespace {

std::vector<int> Ids(int n) {
  std::vector<int> ids(n);
  for (int i = 0; i < n; ++i) ids[i] = i + 1;  // 1-based client ids
  return ids;
}

TEST(UniformSamplerTest, DistinctAndWithinCandidates) {
  UniformSampler sampler;
  Rng rng(1);
  auto picked = sampler.Sample(Ids(20), 8, &rng);
  EXPECT_EQ(picked.size(), 8u);
  std::set<int> seen(picked.begin(), picked.end());
  EXPECT_EQ(seen.size(), 8u);
  for (int id : picked) {
    EXPECT_GE(id, 1);
    EXPECT_LE(id, 20);
  }
}

TEST(UniformSamplerTest, KLargerThanPoolReturnsAll) {
  UniformSampler sampler;
  Rng rng(2);
  auto picked = sampler.Sample(Ids(3), 10, &rng);
  EXPECT_EQ(picked.size(), 3u);
}

TEST(UniformSamplerTest, EmptyPool) {
  UniformSampler sampler;
  Rng rng(3);
  EXPECT_TRUE(sampler.Sample({}, 5, &rng).empty());
}

TEST(UniformSamplerTest, ApproximatelyUniform) {
  UniformSampler sampler;
  Rng rng(4);
  std::map<int, int> counts;
  for (int t = 0; t < 4000; ++t) {
    for (int id : sampler.Sample(Ids(10), 2, &rng)) ++counts[id];
  }
  for (const auto& [id, count] : counts) {
    EXPECT_NEAR(count / 8000.0, 0.1, 0.02) << id;
  }
}

TEST(ResponsivenessSamplerTest, FavorsFastClients) {
  // Scores indexed by id-1: client 1 is 10x faster than the rest.
  std::vector<double> scores = {10.0, 1.0, 1.0, 1.0};
  ResponsivenessSampler sampler(scores);
  Rng rng(5);
  int fast_picks = 0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    auto picked = sampler.Sample(Ids(4), 1, &rng);
    if (picked[0] == 1) ++fast_picks;
  }
  // p(client 1) = 10/13 ~ 0.77.
  EXPECT_NEAR(static_cast<double>(fast_picks) / trials, 10.0 / 13.0, 0.05);
}

TEST(ResponsivenessSamplerTest, NegativeExponentFavorsSlowClients) {
  // Fairness mode (p ~ 1/score): the slow client is picked most often.
  std::vector<double> scores = {10.0, 1.0, 10.0, 10.0};
  ResponsivenessSampler sampler(scores, -1.0);
  Rng rng(55);
  int slow_picks = 0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    if (sampler.Sample(Ids(4), 1, &rng)[0] == 2) ++slow_picks;
  }
  // p(client 2) = 1 / (0.1 * 3 + 1) = 0.769.
  EXPECT_NEAR(static_cast<double>(slow_picks) / trials, 1.0 / 1.3, 0.05);
}

TEST(MakeSamplerTest, InverseResponsivenessFactory) {
  auto sampler = MakeSampler("responsiveness_inv", {1.0, 2.0}, 1);
  EXPECT_EQ(sampler->Name(), "responsiveness");
}

TEST(ResponsivenessSamplerTest, WithoutReplacement) {
  ResponsivenessSampler sampler({5.0, 1.0, 1.0});
  Rng rng(6);
  auto picked = sampler.Sample(Ids(3), 3, &rng);
  std::set<int> seen(picked.begin(), picked.end());
  EXPECT_EQ(seen.size(), 3u);
}

TEST(GroupSamplerTest, SamplesWithinOneGroupPerCall) {
  GroupSampler sampler({{1, 2, 3}, {4, 5, 6}});
  Rng rng(7);
  auto first = sampler.Sample(Ids(6), 3, &rng);
  std::set<int> s1(first.begin(), first.end());
  // All three came from the same group.
  const bool all_g0 = s1.count(1) + s1.count(2) + s1.count(3) == 3;
  const bool all_g1 = s1.count(4) + s1.count(5) + s1.count(6) == 3;
  EXPECT_TRUE(all_g0 || all_g1);
  // Next call rotates to the other group.
  auto second = sampler.Sample(Ids(6), 3, &rng);
  std::set<int> s2(second.begin(), second.end());
  const bool second_g0 = s2.count(1) + s2.count(2) + s2.count(3) == 3;
  EXPECT_NE(all_g0, second_g0);
}

TEST(GroupSamplerTest, FallsBackAcrossGroups) {
  GroupSampler sampler({{1, 2}, {3, 4}});
  Rng rng(8);
  // Requesting more than one group holds spills into the next.
  auto picked = sampler.Sample(Ids(4), 4, &rng);
  std::set<int> seen(picked.begin(), picked.end());
  EXPECT_EQ(seen.size(), 4u);
}

TEST(GroupSamplerTest, RespectsCandidateSet) {
  GroupSampler sampler({{1, 2, 3}, {4, 5, 6}});
  Rng rng(9);
  // Only clients 5 and 6 are idle.
  auto picked = sampler.Sample({5, 6}, 2, &rng);
  std::set<int> seen(picked.begin(), picked.end());
  EXPECT_TRUE(seen.count(5));
  EXPECT_TRUE(seen.count(6));
}

TEST(MakeSamplerTest, FactoryBuildsAllKinds) {
  std::vector<double> scores = {1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(MakeSampler("uniform", scores, 2)->Name(), "uniform");
  EXPECT_EQ(MakeSampler("responsiveness", scores, 2)->Name(),
            "responsiveness");
  EXPECT_EQ(MakeSampler("group", scores, 2)->Name(), "group");
}

TEST(MakeSamplerTest, UnknownNameDies) {
  EXPECT_DEATH(MakeSampler("bogus", {}, 1), "");
}

TEST(MakeSamplerTest, GroupFactoryGroupsBySpeed) {
  // Clients 1..4 with scores 4,3,2,1 -> group 0 = {1,2}, group 1 = {3,4}.
  auto sampler = MakeSampler("group", {4.0, 3.0, 2.0, 1.0}, 2);
  Rng rng(10);
  auto picked = sampler->Sample(Ids(4), 2, &rng);
  std::set<int> seen(picked.begin(), picked.end());
  const bool fast_group = seen.count(1) && seen.count(2);
  const bool slow_group = seen.count(3) && seen.count(4);
  EXPECT_TRUE(fast_group || slow_group);
}

// ---------------------------------------------------------------------------
// Cross-device scale (DESIGN.md §13): sparse sampling and CandidateView
// ---------------------------------------------------------------------------

/// The dense partial-Fisher-Yates Rng::SampleWithoutReplacement runs below
/// its sparse-path threshold, reproduced as the reference the O(k)-memory
/// sparse branch must match draw for draw.
std::vector<int64_t> DenseReference(int64_t n, int64_t k, Rng* rng) {
  std::vector<int64_t> pool(n);
  for (int64_t i = 0; i < n; ++i) pool[i] = i;
  const int64_t take = std::min(k, n);
  for (int64_t i = 0; i < take; ++i) {
    std::swap(pool[i], pool[rng->UniformInt(i, n - 1)]);
  }
  pool.resize(take);
  return pool;
}

TEST(SamplerScaleTest, SparseSampleWithoutReplacementMatchesDense) {
  // 100k ids trips the sparse branch; it must consume the identical rng
  // sequence and return the identical indices.
  for (const int64_t k : {int64_t{1}, int64_t{50}, int64_t{1000}}) {
    Rng sparse_rng(42);
    Rng dense_rng(42);
    const auto sparse = sparse_rng.SampleWithoutReplacement(100000, k);
    const auto dense = DenseReference(100000, k, &dense_rng);
    EXPECT_EQ(sparse, dense) << "k=" << k;
    EXPECT_EQ(sparse_rng.SaveState(), dense_rng.SaveState()) << "k=" << k;
  }
}

TEST(SamplerScaleTest, CandidateViewIndexesAroundExclusions) {
  const CandidateView view(10, {2, 5, 9});
  const std::vector<int> want = {1, 3, 4, 6, 7, 8, 10};
  ASSERT_EQ(view.size(), static_cast<int>(want.size()));
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(view.IdAt(static_cast<int>(i)), want[i]) << i;
  }
  EXPECT_EQ(view.Materialize(), want);
}

TEST(SamplerScaleTest, SampleIdsMatchesMaterializedEnumeration) {
  // The implicit-view draw must be bit-identical to enumerating 100k ids
  // and sampling the vector — same cohort, same rng consumption.
  std::vector<int> excluded;
  for (int id = 1000; id <= 100000; id += 997) excluded.push_back(id);
  const CandidateView view(100000, excluded);
  UniformSampler sampler;
  Rng sparse_rng(7);
  Rng dense_rng(7);
  const auto via_view = sampler.SampleIds(view, 64, &sparse_rng);
  const auto via_vector = sampler.Sample(view.Materialize(), 64, &dense_rng);
  EXPECT_EQ(via_view, via_vector);
  EXPECT_EQ(sparse_rng.SaveState(), dense_rng.SaveState());
}

TEST(SamplerScaleTest, HundredThousandIdDrawIsDeterministic) {
  const CandidateView view(100000, {});
  UniformSampler sampler;
  Rng a(11);
  Rng b(11);
  const auto first = sampler.SampleIds(view, 128, &a);
  const auto second = sampler.SampleIds(view, 128, &b);
  EXPECT_EQ(first, second);
  std::set<int> seen(first.begin(), first.end());
  EXPECT_EQ(seen.size(), 128u);
  for (int id : first) {
    EXPECT_GE(id, 1);
    EXPECT_LE(id, 100000);
  }
}

TEST(SamplerScaleTest, CohortEqualsPopulationReturnsEveryone) {
  const CandidateView view(100000, {});
  UniformSampler sampler;
  Rng rng(13);
  const auto picked = sampler.SampleIds(view, 100000, &rng);
  EXPECT_EQ(picked.size(), 100000u);
  std::set<int> seen(picked.begin(), picked.end());
  EXPECT_EQ(seen.size(), 100000u);
}

TEST(SamplerScaleTest, PopulationOfOne) {
  const CandidateView view(1, {});
  UniformSampler sampler;
  Rng rng(14);
  EXPECT_EQ(sampler.SampleIds(view, 1, &rng), std::vector<int>{1});
  // Over-asking caps at the population, like the vector path.
  Rng rng2(15);
  EXPECT_EQ(sampler.SampleIds(view, 5, &rng2), std::vector<int>{1});
  // A fully excluded population yields an empty cohort.
  const CandidateView empty(1, {1});
  Rng rng3(16);
  EXPECT_TRUE(sampler.SampleIds(empty, 1, &rng3).empty());
}

}  // namespace
}  // namespace fedscope
