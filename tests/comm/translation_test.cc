#include "fedscope/comm/translation.h"

#include <gtest/gtest.h>

#include "fedscope/nn/model_zoo.h"

namespace fedscope {
namespace {

TEST(TranslationTest, Transpose2dTransposes) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor tt = Transpose2d(t);
  EXPECT_EQ(tt.dim(0), 3);
  EXPECT_EQ(tt.dim(1), 2);
  EXPECT_EQ(tt.at(0, 1), 4.0f);
  EXPECT_EQ(tt.at(2, 0), 3.0f);
}

TEST(TranslationTest, Transpose2dIdentityForOtherRanks) {
  Tensor t({4}, {1, 2, 3, 4});
  EXPECT_TRUE(Transpose2d(t) == t);
}

TEST(TranslationTest, RowMajorBackendIsIdentity) {
  RowMajorBackend backend;
  StateDict state;
  state["w"] = Tensor({2, 2}, {1, 2, 3, 4});
  EXPECT_TRUE(backend.EncodeState(state) == state);
  EXPECT_TRUE(backend.DecodeState(state) == state);
}

TEST(TranslationTest, TransposedBackendRoundTrips) {
  TransposedBackend backend;
  StateDict native;
  native["w"] = Tensor({2, 3}, {1, 2, 3, 4, 5, 6});
  native["b"] = Tensor({3}, {7, 8, 9});
  StateDict consensus = backend.EncodeState(native);
  EXPECT_EQ(consensus.at("w").dim(0), 3);
  StateDict back = backend.DecodeState(consensus);
  EXPECT_TRUE(back == native);
}

TEST(TranslationTest, CrossBackendInterop) {
  // A row-major participant and a transposed participant exchange a state
  // through the consensus format; the transposed one must end with the
  // same *semantic* parameters (transposed storage of the same matrix).
  Rng rng(1);
  Model model = MakeLogisticRegression(4, 3, &rng);
  StateDict consensus = RowMajorBackend().EncodeState(model.GetStateDict());
  TransposedBackend other;
  StateDict other_native = other.DecodeState(consensus);
  // Their re-encoding must reproduce the consensus bits exactly.
  EXPECT_TRUE(other.EncodeState(other_native) == consensus);
}

TEST(TranslationTest, RegistryFindsBuiltins) {
  BackendRegistry registry;
  EXPECT_NE(registry.Find("row_major"), nullptr);
  EXPECT_NE(registry.Find("transposed"), nullptr);
  EXPECT_EQ(registry.Find("tensorflow"), nullptr);
}

class UpperBackend : public Backend {
 public:
  std::string Name() const override { return "upper"; }
  StateDict EncodeState(const StateDict& native) const override {
    return native;
  }
  StateDict DecodeState(const StateDict& consensus) const override {
    return consensus;
  }
};

TEST(TranslationTest, RegistryAcceptsCustomBackend) {
  BackendRegistry registry;
  registry.Register(std::make_unique<UpperBackend>());
  EXPECT_NE(registry.Find("upper"), nullptr);
}

}  // namespace
}  // namespace fedscope
