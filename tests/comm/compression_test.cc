#include "fedscope/comm/compression.h"

#include <gtest/gtest.h>

#include "fedscope/comm/codec.h"
#include "fedscope/nn/model_zoo.h"
#include "fedscope/tensor/tensor_ops.h"

namespace fedscope {
namespace {

StateDict SampleState(uint64_t seed = 1) {
  Rng rng(seed);
  return MakeMlp({16, 12, 4}, &rng).GetStateDict();
}

TEST(Quant8Test, RoundTripWithinGridResolution) {
  StateDict state = SampleState();
  auto decoded = DequantizeStateDict(QuantizeStateDict(state));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), state.size());
  for (const auto& [name, tensor] : state) {
    const Tensor& back = decoded->at(name);
    ASSERT_TRUE(back.SameShape(tensor)) << name;
    float lo = tensor.at(0), hi = tensor.at(0);
    for (int64_t i = 1; i < tensor.numel(); ++i) {
      lo = std::min(lo, tensor.at(i));
      hi = std::max(hi, tensor.at(i));
    }
    const float grid = (hi - lo) / 255.0f;
    for (int64_t i = 0; i < tensor.numel(); ++i) {
      EXPECT_NEAR(back.at(i), tensor.at(i), grid * 0.51f + 1e-7f)
          << name << "[" << i << "]";
    }
  }
}

TEST(Quant8Test, ShrinksWireSize) {
  // Big enough that per-tensor header overhead is amortized.
  Rng rng(9);
  StateDict state = MakeMlp({64, 64, 10}, &rng).GetStateDict();
  Payload plain;
  plain.SetStateDict("model", state);
  Payload quantized = QuantizeStateDict(state);
  // float32 -> ~1 byte/coefficient: at least 2.5x smaller.
  EXPECT_LT(CompressedBytes(quantized) * 2.5, plain.ByteSize());
}

TEST(Quant8Test, SurvivesWireCodec) {
  StateDict state = SampleState();
  auto bytes = EncodePayload(QuantizeStateDict(state));
  auto payload = DecodePayload(bytes);
  ASSERT_TRUE(payload.ok());
  auto decoded = DequantizeStateDict(*payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->size(), state.size());
}

TEST(Quant8Test, ConstantTensorHandled) {
  StateDict state;
  state["b"] = Tensor::Full({8}, 3.0f);  // zero range
  auto decoded = DequantizeStateDict(QuantizeStateDict(state));
  ASSERT_TRUE(decoded.ok());
  for (int64_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(decoded->at("b").at(i), 3.0f, 1e-5f);
  }
}

TEST(Quant8Test, RejectsForeignPayload) {
  Payload p;
  p.SetString("codec", "something_else");
  EXPECT_FALSE(DequantizeStateDict(p).ok());
  EXPECT_FALSE(DequantizeStateDict(Payload{}).ok());
}

TEST(TopKTest, KeepsLargestMagnitudes) {
  StateDict state;
  state["w"] = Tensor::FromVector({0.1f, -5.0f, 0.2f, 4.0f, -0.05f});
  auto decoded = DesparsifyStateDict(SparsifyStateDict(state, 0.4));
  ASSERT_TRUE(decoded.ok());
  const Tensor& back = decoded->at("w");
  EXPECT_FLOAT_EQ(back.at(1), -5.0f);
  EXPECT_FLOAT_EQ(back.at(3), 4.0f);
  EXPECT_FLOAT_EQ(back.at(0), 0.0f);
  EXPECT_FLOAT_EQ(back.at(2), 0.0f);
  EXPECT_FLOAT_EQ(back.at(4), 0.0f);
}

TEST(TopKTest, FullKeepIsLossless) {
  StateDict state = SampleState(2);
  auto decoded = DesparsifyStateDict(SparsifyStateDict(state, 1.0));
  ASSERT_TRUE(decoded.ok());
  for (const auto& [name, tensor] : state) {
    EXPECT_TRUE(decoded->at(name) == tensor) << name;
  }
}

TEST(TopKTest, AtLeastOneCoordinatePerTensor) {
  StateDict state;
  state["w"] = Tensor::FromVector({1.0f, 2.0f, 3.0f});
  auto decoded = DesparsifyStateDict(SparsifyStateDict(state, 1e-9));
  ASSERT_TRUE(decoded.ok());
  EXPECT_FLOAT_EQ(decoded->at("w").at(2), 3.0f);  // largest survives
}

TEST(TopKTest, ShrinksWireSizeAtLowKeepFrac) {
  StateDict state = SampleState(3);
  Payload plain;
  plain.SetStateDict("model", state);
  Payload sparse = SparsifyStateDict(state, 0.1);
  EXPECT_LT(CompressedBytes(sparse), plain.ByteSize());
}

TEST(TopKTest, PreservesErrorBoundForAveraging) {
  // The dropped mass is bounded by the kept fraction: reconstruction
  // error norm is strictly below the original norm.
  StateDict state = SampleState(4);
  auto decoded = DesparsifyStateDict(SparsifyStateDict(state, 0.3));
  ASSERT_TRUE(decoded.ok());
  double err_sq = 0.0, total_sq = 0.0;
  for (const auto& [name, tensor] : state) {
    err_sq += SquaredNorm(Sub(tensor, decoded->at(name)));
    total_sq += SquaredNorm(tensor);
  }
  EXPECT_LT(err_sq, total_sq);
}

}  // namespace
}  // namespace fedscope
