#include "fedscope/comm/message.h"

#include <gtest/gtest.h>

namespace fedscope {
namespace {

TEST(PayloadTest, ScalarsRoundTrip) {
  Payload p;
  p.SetInt("round", 7);
  p.SetDouble("lr", 0.5);
  p.SetString("name", "fedavg");
  EXPECT_TRUE(p.HasScalar("round"));
  EXPECT_EQ(p.GetInt("round", 0), 7);
  EXPECT_DOUBLE_EQ(p.GetDouble("lr", 0.0), 0.5);
  EXPECT_EQ(p.GetString("name", ""), "fedavg");
}

TEST(PayloadTest, NumericConversion) {
  Payload p;
  p.SetInt("n", 3);
  p.SetDouble("d", 2.7);
  EXPECT_DOUBLE_EQ(p.GetDouble("n", 0.0), 3.0);
  EXPECT_EQ(p.GetInt("d", 0), 2);
}

TEST(PayloadTest, MissingScalarDefaults) {
  Payload p;
  EXPECT_EQ(p.GetInt("missing", -1), -1);
  EXPECT_EQ(p.GetString("missing", "x"), "x");
  EXPECT_FALSE(p.HasScalar("missing"));
}

TEST(PayloadTest, TensorsRoundTrip) {
  Payload p;
  p.SetTensor("w", Tensor::FromVector({1, 2, 3}));
  EXPECT_TRUE(p.HasTensor("w"));
  auto t = p.GetTensor("w");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->numel(), 3);
  EXPECT_FALSE(p.GetTensor("missing").ok());
}

TEST(PayloadTest, StateDictRoundTrip) {
  StateDict state;
  state["fc.weight"] = Tensor::FromVector({1, 2});
  state["fc.bias"] = Tensor::FromVector({3});
  Payload p;
  p.SetStateDict("model", state);
  StateDict back = p.GetStateDict("model");
  EXPECT_TRUE(back == state);
}

TEST(PayloadTest, StateDictPrefixIsolation) {
  Payload p;
  StateDict a, b;
  a["w"] = Tensor::FromVector({1});
  b["w"] = Tensor::FromVector({2});
  p.SetStateDict("model", a);
  p.SetStateDict("delta", b);
  EXPECT_EQ(p.GetStateDict("model").at("w").at(0), 1.0f);
  EXPECT_EQ(p.GetStateDict("delta").at("w").at(0), 2.0f);
  EXPECT_TRUE(p.GetStateDict("other").empty());
}

TEST(PayloadTest, ByteSizeGrowsWithContent) {
  Payload small, big;
  small.SetInt("x", 1);
  big.SetInt("x", 1);
  big.SetTensor("t", Tensor::Zeros({1000}));
  EXPECT_GT(big.ByteSize(), small.ByteSize() + 3900);
}

TEST(MessageTest, SummaryContainsFields) {
  Message m;
  m.sender = 3;
  m.receiver = 0;
  m.msg_type = "model_update";
  m.state = 5;
  std::string s = MessageSummary(m);
  EXPECT_NE(s.find("model_update"), std::string::npos);
  EXPECT_NE(s.find("3->0"), std::string::npos);
}

}  // namespace
}  // namespace fedscope
