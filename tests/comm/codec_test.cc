#include "fedscope/comm/codec.h"

#include <gtest/gtest.h>

#include <cstring>

namespace fedscope {
namespace {

Message SampleMessage() {
  Message m;
  m.sender = 3;
  m.receiver = 0;
  m.msg_type = "model_update";
  m.state = 12;
  m.timestamp = 42.5;
  m.payload.SetInt("num_samples", 80);
  m.payload.SetDouble("train_loss", 0.321);
  m.payload.SetString("backend", "row_major");
  m.payload.SetTensor("delta/fc.weight",
                      Tensor({2, 3}, {1, 2, 3, 4, 5, 6}));
  m.payload.SetTensor("delta/fc.bias", Tensor::FromVector({-1, -2, -3}));
  return m;
}

TEST(CodecTest, RoundTripPreservesEverything) {
  Message m = SampleMessage();
  auto decoded = DecodeMessage(EncodeMessage(m));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->sender, m.sender);
  EXPECT_EQ(decoded->receiver, m.receiver);
  EXPECT_EQ(decoded->msg_type, m.msg_type);
  EXPECT_EQ(decoded->state, m.state);
  EXPECT_DOUBLE_EQ(decoded->timestamp, m.timestamp);
  EXPECT_TRUE(decoded->payload == m.payload);
}

TEST(CodecTest, EmptyMessageRoundTrips) {
  Message m;
  auto decoded = DecodeMessage(EncodeMessage(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->payload == m.payload);
}

TEST(CodecTest, EmptyTensorRoundTrips) {
  Message m;
  m.payload.SetTensor("empty", Tensor({0}));
  m.payload.SetTensor("scalar_shape", Tensor({1}, {5.0f}));
  auto decoded = DecodeMessage(EncodeMessage(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->payload.GetTensor("empty")->numel(), 0);
  EXPECT_EQ(decoded->payload.GetTensor("scalar_shape")->at(0), 5.0f);
}

TEST(CodecTest, EmptyPayloadReencodesBitExactly) {
  Message m;
  auto bytes = EncodeMessage(m);
  auto decoded = DecodeMessage(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(EncodeMessage(*decoded), bytes);
}

TEST(CodecTest, ZeroElementTensorReencodesBitExactly) {
  Message m;
  m.payload.SetTensor("empty", Tensor({0}));
  m.payload.SetTensor("empty_matrix", Tensor({0, 4}));
  auto bytes = EncodeMessage(m);
  auto decoded = DecodeMessage(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->payload.GetTensor("empty_matrix")->shape(),
            (std::vector<int64_t>{0, 4}));
  EXPECT_EQ(EncodeMessage(*decoded), bytes);
}

TEST(CodecTest, NamesWithSeparatorBytesRoundTrip) {
  // Keys containing the StateDict prefix separator, high bytes, and
  // whitespace must survive the wire: the codec is length-prefixed, never
  // delimiter-based. (NUL bytes in names are the one exception — decode
  // rejects them; see NulEmbeddedNamesRejected.) String *values* may
  // contain any byte, including NUL.
  Message m;
  m.msg_type = "model/update\nweird";
  m.payload.SetTensor("delta/fc.weight/extra", Tensor::FromVector({1, 2}));
  m.payload.SetTensor("high\xff\xfe bytes", Tensor::FromVector({4}));
  m.payload.SetString("key with,comma\tand tab",
                      std::string("value\0with nul", 14));
  auto bytes = EncodeMessage(m);
  auto decoded = DecodeMessage(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->msg_type, m.msg_type);
  EXPECT_TRUE(decoded->payload == m.payload);
  EXPECT_EQ(EncodeMessage(*decoded), bytes);
}

TEST(CodecTest, NulEmbeddedNamesRejected) {
  // A NUL inside a tensor name, scalar key, or msg_type must return a
  // Status: names flow into logs and downstream C string APIs where an
  // embedded terminator silently truncates.
  {
    Message m;
    m.payload.SetTensor(std::string("nul\0inside", 10),
                        Tensor::FromVector({3}));
    EXPECT_FALSE(DecodeMessage(EncodeMessage(m)).ok());
  }
  {
    Message m;
    m.payload.SetInt(std::string("k\0ey", 4), 7);
    EXPECT_FALSE(DecodeMessage(EncodeMessage(m)).ok());
  }
  {
    Message m;
    m.msg_type = std::string("model\0update", 12);
    EXPECT_FALSE(DecodeMessage(EncodeMessage(m)).ok());
  }
}

TEST(CodecTest, TruncatedHeaderRejected) {
  // Every prefix of the fixed header (magic, version, ids, msg_type
  // length) must be rejected without reading past the buffer.
  auto bytes = EncodeMessage(SampleMessage());
  for (size_t len = 0; len <= 18; ++len) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + len);
    EXPECT_FALSE(DecodeMessage(truncated).ok()) << "len=" << len;
  }
}

TEST(CodecTest, OversizedLengthPrefixRejected) {
  // A string length prefix larger than the whole frame must be rejected
  // by bounds-checking, with no allocation of the claimed size.
  Message m;
  m.msg_type = "x";
  auto bytes = EncodeMessage(m);
  // msg_type length prefix lives right after magic(4)+version(2)+ids(8).
  const size_t len_pos = 14;
  bytes[len_pos] = 0xFF;
  bytes[len_pos + 1] = 0xFF;
  bytes[len_pos + 2] = 0xFF;
  bytes[len_pos + 3] = 0x7F;
  EXPECT_FALSE(DecodeMessage(bytes).ok());
}

TEST(CodecTest, TensorDimProductOverflowRejected) {
  // Dims whose product overflows int64 must be rejected before any
  // allocation (previously UB: signed overflow in the dim product).
  Message m;
  m.payload.SetTensor("t", Tensor({1}, {0.0f}));
  auto bytes = EncodeMessage(m);
  // Rewrite the single dim (the last 12 bytes are dim i64 + one f32).
  const size_t dim_pos = bytes.size() - 12;
  const int64_t huge = int64_t{1} << 62;
  std::memcpy(bytes.data() + dim_pos, &huge, sizeof(huge));
  // One dim of 2^62 elements: caught by the buffer bound.
  EXPECT_FALSE(DecodeMessage(bytes).ok());

  // Two dims multiplying past int64: previously undefined behaviour.
  Message m2;
  m2.payload.SetTensor("t", Tensor({1, 1}, {0.0f}));
  auto bytes2 = EncodeMessage(m2);
  const size_t dims_pos = bytes2.size() - 20;
  std::memcpy(bytes2.data() + dims_pos, &huge, sizeof(huge));
  std::memcpy(bytes2.data() + dims_pos + 8, &huge, sizeof(huge));
  EXPECT_FALSE(DecodeMessage(bytes2).ok());
}

TEST(CodecTest, TensorCountExceedingRemainingBytesRejected) {
  // A hostile frame can claim an element count that is individually sane
  // (no overflow) but promises far more data than the frame holds. The
  // decoder must reconcile the count against the remaining bytes before
  // allocating — a lying count is a rejection, not a 4 KB read past the
  // buffer or a giant allocation.
  Message m;
  m.payload.SetTensor("t", Tensor({1}, {0.0f}));
  auto bytes = EncodeMessage(m);
  const size_t dim_pos = bytes.size() - 12;  // dim i64 + one f32
  const int64_t lying = 1024;
  std::memcpy(bytes.data() + dim_pos, &lying, sizeof(lying));
  auto result = DecodeMessage(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(result.status().message().find("exceeds buffer"),
            std::string::npos);
}

TEST(CodecTest, NegativeTensorDimRejected) {
  Message m;
  m.payload.SetTensor("t", Tensor({1}, {0.0f}));
  auto bytes = EncodeMessage(m);
  const size_t dim_pos = bytes.size() - 12;
  const int64_t negative = -4;
  std::memcpy(bytes.data() + dim_pos, &negative, sizeof(negative));
  auto result = DecodeMessage(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("negative tensor dim"),
            std::string::npos);
}

TEST(CodecTest, ElementCountJustPastCapRejectedBeforeAllocation) {
  // Dims whose product stays within int64 but exceeds the decoder's
  // element cap must be rejected by the cap (not by the ensuing
  // multiplication, which could already have wrapped for larger dims).
  Message m;
  m.payload.SetTensor("t", Tensor({1, 1}, {0.0f}));
  auto bytes = EncodeMessage(m);
  const size_t dims_pos = bytes.size() - 20;  // two i64 dims + one f32
  const int64_t big = int64_t{1} << 21;       // 2^21 * 2^21 = 2^42 > cap
  std::memcpy(bytes.data() + dims_pos, &big, sizeof(big));
  std::memcpy(bytes.data() + dims_pos + 8, &big, sizeof(big));
  auto result = DecodeMessage(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("overflow"), std::string::npos);
}

TEST(CodecTest, ReencodeIsBitExactForRichPayload) {
  auto bytes = EncodeMessage(SampleMessage());
  auto decoded = DecodeMessage(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(EncodeMessage(*decoded), bytes);
}

TEST(CodecTest, FourDimTensorShapePreserved) {
  Message m;
  m.payload.SetTensor("conv", Tensor({2, 3, 4, 5}));
  auto decoded = DecodeMessage(EncodeMessage(m));
  ASSERT_TRUE(decoded.ok());
  auto t = decoded->payload.GetTensor("conv");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->shape(), (std::vector<int64_t>{2, 3, 4, 5}));
}

TEST(CodecTest, PrecomputedSizeMatchesEncodedBytes) {
  const Message m = SampleMessage();
  const auto bytes = EncodeMessage(m);
  EXPECT_EQ(bytes.size(), EncodedMessageSize(m));
  const auto payload_bytes = EncodePayload(m.payload);
  EXPECT_EQ(payload_bytes.size(), EncodedPayloadSize(m.payload));

  const Message empty;
  EXPECT_EQ(EncodeMessage(empty).size(), EncodedMessageSize(empty));
  EXPECT_EQ(EncodePayload(empty.payload).size(),
            EncodedPayloadSize(empty.payload));
}

TEST(CodecTest, BadMagicRejected) {
  auto bytes = EncodeMessage(SampleMessage());
  bytes[0] = 'X';
  EXPECT_FALSE(DecodeMessage(bytes).ok());
}

TEST(CodecTest, TruncationRejectedEverywhere) {
  auto bytes = EncodeMessage(SampleMessage());
  // Every strict prefix must fail cleanly, never crash.
  for (size_t len = 0; len < bytes.size(); len += 7) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + len);
    EXPECT_FALSE(DecodeMessage(truncated).ok()) << "len=" << len;
  }
}

TEST(CodecTest, TrailingBytesRejected) {
  auto bytes = EncodeMessage(SampleMessage());
  bytes.push_back(0);
  EXPECT_FALSE(DecodeMessage(bytes).ok());
}

TEST(CodecTest, CorruptTensorLengthRejected) {
  Message m;
  m.payload.SetTensor("t", Tensor::FromVector({1, 2, 3}));
  auto bytes = EncodeMessage(m);
  // Flip a byte in the middle and make sure decode never crashes; it may
  // or may not fail depending on which byte, but must be well-defined.
  for (size_t i = 0; i < bytes.size(); ++i) {
    auto corrupted = bytes;
    corrupted[i] ^= 0xFF;
    auto result = DecodeMessage(corrupted);
    (void)result;  // no crash is the assertion
  }
  SUCCEED();
}

TEST(CodecTest, PayloadOnlyRoundTrip) {
  Payload p;
  p.SetInt("a", 1);
  p.SetTensor("t", Tensor::FromVector({9}));
  auto decoded = DecodePayload(EncodePayload(p));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(*decoded == p);
}

TEST(FrameTest, SplitAndReassembleRoundTrip) {
  auto bytes = EncodeMessage(SampleMessage());
  for (size_t frame_size : {1u, 7u, 64u, 4096u}) {
    auto frames = SplitIntoFrames(bytes, frame_size);
    EXPECT_EQ(frames.size(), (bytes.size() + frame_size - 1) / frame_size);
    auto reassembled = ReassembleFrames(frames);
    ASSERT_TRUE(reassembled.ok()) << frame_size;
    EXPECT_EQ(*reassembled, bytes);
  }
}

TEST(FrameTest, OutOfOrderReassembly) {
  auto bytes = EncodeMessage(SampleMessage());
  auto frames = SplitIntoFrames(bytes, 16);
  ASSERT_GT(frames.size(), 2u);
  std::reverse(frames.begin(), frames.end());
  auto reassembled = ReassembleFrames(frames);
  ASSERT_TRUE(reassembled.ok());
  EXPECT_EQ(*reassembled, bytes);
}

TEST(FrameTest, MissingFrameRejected) {
  auto frames = SplitIntoFrames(std::vector<uint8_t>(100, 7), 16);
  frames.pop_back();
  EXPECT_FALSE(ReassembleFrames(frames).ok());
}

TEST(FrameTest, DuplicateFrameRejected) {
  auto frames = SplitIntoFrames(std::vector<uint8_t>(100, 7), 16);
  frames.back() = frames.front();
  EXPECT_FALSE(ReassembleFrames(frames).ok());
}

TEST(FrameTest, InconsistentHeaderRejected) {
  auto frames = SplitIntoFrames(std::vector<uint8_t>(100, 7), 16);
  frames[1].total_bytes += 1;
  EXPECT_FALSE(ReassembleFrames(frames).ok());
}

TEST(FrameTest, EmptyMessageProducesOneFrame) {
  auto frames = SplitIntoFrames({}, 16);
  ASSERT_EQ(frames.size(), 1u);
  auto reassembled = ReassembleFrames(frames);
  ASSERT_TRUE(reassembled.ok());
  EXPECT_TRUE(reassembled->empty());
}

TEST(FrameTest, FramedMessageStillDecodes) {
  Message msg = SampleMessage();
  auto frames = SplitIntoFrames(EncodeMessage(msg), 32);
  auto bytes = ReassembleFrames(frames);
  ASSERT_TRUE(bytes.ok());
  auto decoded = DecodeMessage(*bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->payload == msg.payload);
}

TEST(CodecTest, WireSizeMatchesByteSizeEstimateOrder) {
  Message m = SampleMessage();
  auto bytes = EncodeMessage(m);
  // The estimate is approximate, but must be within 2x of reality.
  EXPECT_GT(static_cast<int64_t>(bytes.size()),
            m.payload.ByteSize() / 2);
  EXPECT_LT(static_cast<int64_t>(bytes.size()),
            m.payload.ByteSize() * 2 + 128);
}

}  // namespace
}  // namespace fedscope
