#include "fedscope/comm/channel.h"

#include <gtest/gtest.h>

namespace fedscope {
namespace {

TEST(QueueChannelTest, FifoOrder) {
  QueueChannel ch;
  Message a, b;
  a.msg_type = "first";
  b.msg_type = "second";
  ch.Send(a);
  ch.Send(b);
  EXPECT_EQ(ch.Size(), 2u);
  EXPECT_EQ(ch.Pop().msg_type, "first");
  EXPECT_EQ(ch.Pop().msg_type, "second");
  EXPECT_TRUE(ch.Empty());
}

TEST(QueueChannelTest, ThroughWireRoundTrips) {
  QueueChannel ch(/*through_wire=*/true);
  Message m;
  m.sender = 2;
  m.msg_type = "model_para";
  m.payload.SetTensor("model/w", Tensor::FromVector({1.5f, -2.5f}));
  ch.Send(m);
  Message back = ch.Pop();
  EXPECT_EQ(back.sender, 2);
  EXPECT_TRUE(back.payload == m.payload);
}

TEST(QueueChannelTest, PopEmptyDies) {
  QueueChannel ch;
  EXPECT_DEATH(ch.Pop(), "");
}

}  // namespace
}  // namespace fedscope
