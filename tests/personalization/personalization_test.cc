#include <gtest/gtest.h>

#include "fedscope/core/fed_runner.h"
#include "fedscope/data/synthetic_femnist.h"
#include "fedscope/nn/model_zoo.h"
#include "fedscope/personalization/ditto.h"
#include "fedscope/personalization/fedbn.h"
#include "fedscope/personalization/fedem.h"
#include "fedscope/personalization/pfedme.h"
#include "fedscope/util/stats.h"

namespace fedscope {
namespace {

FedDataset* FemnistData() {
  static FedDataset* data = [] {
    SyntheticFemnistOptions options;
    options.num_clients = 12;
    options.mean_samples = 50;
    // Strong per-writer feature skew: additive style plus a private pixel
    // permutation. A single global model is genuinely conflicted, which is
    // the regime where personalization wins (Figure 12).
    options.style_sigma = 1.0;
    options.noise_sigma = 1.0;
    options.permute_frac = 1.0;
    options.seed = 5;
    return new FedDataset(MakeSyntheticFemnist(options));
  }();
  return data;
}

Model FemnistModel(uint64_t seed, bool with_bn) {
  Rng rng(seed);
  Model m;
  m.Add("flat", std::make_unique<Flatten>());
  Model mlp = with_bn ? MakeMlpBn({64, 32, 10}, &rng)
                      : MakeMlp({64, 32, 10}, &rng);
  for (int i = 0; i < mlp.num_layers(); ++i) {
    m.Add(mlp.layer_name(i), mlp.layer(i)->Clone());
  }
  return m;
}

FedJob BaseJob(bool with_bn, uint64_t seed = 51) {
  FedJob job;
  job.data = FemnistData();
  job.init_model = FemnistModel(seed, with_bn);
  job.server.concurrency = 6;
  job.server.max_rounds = 15;
  job.client.train.lr = 0.1;
  job.client.train.local_steps = 4;
  job.client.train.batch_size = 8;
  job.client.jitter_sigma = 0.0;
  job.seed = seed;
  return job;
}

double MeanClientAccuracy(const RunResult& result) {
  return Mean(result.client_test_accuracy);
}

TEST(FedBnTest, ShareFilterExcludesBnParams) {
  auto filter = FedBnShareFilter();
  EXPECT_FALSE(filter("norm1.bn.gamma"));
  EXPECT_FALSE(filter("norm1.bn.running_mean"));
  EXPECT_TRUE(filter("fc1.weight"));
}

TEST(FedBnTest, BnParamsStayLocal) {
  FedJob job = BaseJob(/*with_bn=*/true);
  ApplyFedBn(&job);
  FedRunner runner(std::move(job));
  RunResult result = runner.Run();
  EXPECT_GT(result.server.rounds, 0);
  // Different clients end with different BN statistics (never synced).
  auto bn_filter = [](const std::string& name) {
    return name.find(".bn.") != std::string::npos;
  };
  StateDict bn1 = runner.client(1)->model()->GetStateDict(bn_filter);
  StateDict bn2 = runner.client(2)->model()->GetStateDict(bn_filter);
  ASSERT_FALSE(bn1.empty());
  EXPECT_FALSE(bn1 == bn2);
  // While the shared (non-BN) parameters of idle clients match the last
  // global they received only up to local training, the *server* model
  // aggregates only non-BN keys: its BN params remained at init.
}

TEST(FedBnTest, ImprovesClientAccuracyUnderFeatureSkew) {
  FedJob fedavg_job = BaseJob(true, 61);
  RunResult fedavg = FedRunner(std::move(fedavg_job)).Run();

  FedJob fedbn_job = BaseJob(true, 61);
  ApplyFedBn(&fedbn_job);
  RunResult fedbn = FedRunner(std::move(fedbn_job)).Run();

  EXPECT_GT(MeanClientAccuracy(fedbn), MeanClientAccuracy(fedavg) - 0.02);
}

TEST(DittoTest, PersonalModelDiffersFromGlobal) {
  FedJob job = BaseJob(false);
  job.trainer_factory = [](int) {
    return std::make_unique<DittoTrainer>(DittoOptions{0.5, 4});
  };
  FedRunner runner(std::move(job));
  RunResult result = runner.Run();
  EXPECT_GT(result.server.rounds, 0);
  auto* trainer = dynamic_cast<DittoTrainer*>(runner.client(1)->trainer());
  ASSERT_NE(trainer, nullptr);
  StateDict personal = trainer->personal_model()->GetStateDict();
  StateDict shared = runner.client(1)->model()->GetStateDict();
  EXPECT_FALSE(personal == shared);
}

TEST(DittoTest, StrongerLambdaDriftsLess) {
  // The proximal pull is monotone: a larger lambda keeps the personal
  // model closer to the received global parameters.
  Dataset blob;
  Rng rng(1);
  blob.x = Tensor::Randn({20, 4}, &rng);
  blob.labels.assign(20, 0);
  for (int i = 10; i < 20; ++i) blob.labels[i] = 1;

  auto personal_drift = [&](double lambda) {
    Rng mrng(2);
    Model model = MakeLogisticRegression(4, 2, &mrng);
    DittoTrainer trainer(DittoOptions{lambda, 30});
    StateDict global = model.GetStateDict();
    trainer.UpdateModel(&model, global);
    TrainConfig config;
    config.lr = 0.05;
    config.local_steps = 5;
    config.batch_size = 8;
    Rng trng(3);
    trainer.Train(&model, blob, config, &trng);
    return SdNorm(
        SdSub(trainer.personal_model()->GetStateDict(), global));
  };
  const double weak = personal_drift(0.01);
  const double strong = personal_drift(10.0);
  EXPECT_LT(strong, 0.5 * weak);
}

TEST(PFedMeTest, TrainMovesModelAndKeepsPersonalized) {
  Dataset blob;
  Rng rng(4);
  blob.x = Tensor::Randn({24, 4}, &rng);
  blob.labels.assign(24, 0);
  for (int i = 12; i < 24; ++i) blob.labels[i] = 1;

  Rng mrng(5);
  Model model = MakeLogisticRegression(4, 2, &mrng);
  StateDict init = model.GetStateDict();
  PFedMeTrainer trainer(PFedMeOptions{1.0, 3, 0.1, 0.1});
  TrainConfig config;
  config.local_steps = 5;
  config.batch_size = 8;
  Rng trng(6);
  TrainResult result = trainer.Train(&model, blob, config, &trng);
  EXPECT_GT(result.num_samples, 0);
  EXPECT_GT(SdNorm(SdSub(model.GetStateDict(), init)), 0.0);
  // Personalized evaluation path active after training.
  EvalResult eval = trainer.Evaluate(&model, blob);
  EXPECT_GT(eval.num_examples, 0);
}

TEST(PFedMeTest, RunsInFederation) {
  FedJob job = BaseJob(false);
  job.server.max_rounds = 8;
  job.trainer_factory = [](int) {
    return std::make_unique<PFedMeTrainer>(PFedMeOptions{1.0, 2, 0.1, 0.1});
  };
  RunResult result = FedRunner(std::move(job)).Run();
  EXPECT_EQ(result.server.rounds, 8);
  EXPECT_GT(MeanClientAccuracy(result), 0.2);
}

TEST(FedEmTest, GlobalModelContainsAllComponents) {
  Rng rng(7);
  auto factory = [&rng]() mutable {
    Rng local(42);
    return MakeLogisticRegression(4, 2, &local);
  };
  Model container = MakeFedEmGlobalModel(factory, 3);
  auto state = container.GetStateDict();
  EXPECT_EQ(state.size(), 3u * 2u);
  EXPECT_TRUE(state.count("comp0.fc.weight"));
  EXPECT_TRUE(state.count("comp2.fc.bias"));
}

TEST(FedEmTest, TrainerSharesAllComponentsAndLearnsPi) {
  auto factory = []() {
    Rng local(43);
    return MakeLogisticRegression(4, 2, &local);
  };
  FedEmTrainer trainer(factory, FedEmOptions{2, 0.05});
  Dataset blob;
  Rng rng(8);
  blob.x = Tensor::Randn({30, 4}, &rng);
  blob.labels.assign(30, 0);
  for (int i = 15; i < 30; ++i) blob.labels[i] = 1;

  Model placeholder;
  StateDict shared = trainer.GetShareableState(&placeholder, AcceptAll());
  EXPECT_EQ(shared.size(), 4u);

  TrainConfig config;
  config.local_steps = 5;
  config.batch_size = 8;
  Rng trng(9);
  trainer.Train(&placeholder, blob, config, &trng);
  const auto& pi = trainer.mixture_weights();
  double total = 0.0;
  for (double p : pi) total += p;
  EXPECT_NEAR(total, 1.0, 1e-6);
  EvalResult eval = trainer.Evaluate(&placeholder, blob);
  EXPECT_GT(eval.accuracy, 0.4);
}

TEST(FedEmTest, EndToEndFederation) {
  FedJob job = BaseJob(false);
  job.server.max_rounds = 6;
  auto factory = []() {
    Rng local(44);
    Model m;
    m.Add("flat", std::make_unique<Flatten>());
    Model mlp = MakeMlp({64, 16, 10}, &local);
    for (int i = 0; i < mlp.num_layers(); ++i) {
      m.Add(mlp.layer_name(i), mlp.layer(i)->Clone());
    }
    return m;
  };
  ApplyFedEm(&job, factory, FedEmOptions{2, 0.05});
  RunResult result = FedRunner(std::move(job)).Run();
  EXPECT_EQ(result.server.rounds, 6);
  // With fully-permuted writers the *global* test is near chance for any
  // method; the meaningful metric is client-wise mixture accuracy, which
  // must clear random guessing (0.1 for 10 classes) by a wide margin.
  EXPECT_GT(MeanClientAccuracy(result), 0.2);
}

TEST(PersonalizationComparisonTest, PersonalizedBeatFedAvgOnSkewedData) {
  // The Figure 12 story: under per-writer feature skew, personalized
  // algorithms lift client-wise accuracy over vanilla FedAvg.
  FedJob fedavg_job = BaseJob(false, 71);
  RunResult fedavg = FedRunner(std::move(fedavg_job)).Run();

  FedJob ditto_job = BaseJob(false, 71);
  ditto_job.trainer_factory = [](int) {
    return std::make_unique<DittoTrainer>(DittoOptions{0.3, 6});
  };
  RunResult ditto = FedRunner(std::move(ditto_job)).Run();

  EXPECT_GT(MeanClientAccuracy(ditto), MeanClientAccuracy(fedavg));
}

}  // namespace
}  // namespace fedscope
