#include "fedscope/nn/loss.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fedscope {
namespace {

TEST(SoftmaxCrossEntropyTest, UniformLogitsGiveLogC) {
  SoftmaxCrossEntropy loss;
  Tensor logits = Tensor::Zeros({2, 4});
  double l = loss.Forward(logits, {0, 3});
  EXPECT_NEAR(l, std::log(4.0), 1e-5);
}

TEST(SoftmaxCrossEntropyTest, ConfidentCorrectIsNearZero) {
  SoftmaxCrossEntropy loss;
  Tensor logits({1, 3}, {20.0f, 0.0f, 0.0f});
  EXPECT_LT(loss.Forward(logits, {0}), 1e-4);
}

TEST(SoftmaxCrossEntropyTest, ConfidentWrongIsLarge) {
  SoftmaxCrossEntropy loss;
  Tensor logits({1, 3}, {20.0f, 0.0f, 0.0f});
  EXPECT_GT(loss.Forward(logits, {1}), 10.0);
}

TEST(SoftmaxCrossEntropyTest, BackwardIsProbsMinusOnehotOverBatch) {
  SoftmaxCrossEntropy loss;
  Tensor logits = Tensor::Zeros({2, 2});
  loss.Forward(logits, {0, 1});
  Tensor g = loss.Backward();
  // probs = 0.5 everywhere; grad = (p - y)/B.
  EXPECT_NEAR(g.at(0, 0), (0.5 - 1.0) / 2.0, 1e-6);
  EXPECT_NEAR(g.at(0, 1), 0.5 / 2.0, 1e-6);
  EXPECT_NEAR(g.at(1, 1), (0.5 - 1.0) / 2.0, 1e-6);
}

TEST(SoftmaxCrossEntropyTest, GradientSumsToZeroPerRow) {
  SoftmaxCrossEntropy loss;
  Tensor logits({2, 3}, {1, 2, 3, -1, 0, 4});
  loss.Forward(logits, {2, 0});
  Tensor g = loss.Backward();
  for (int64_t i = 0; i < 2; ++i) {
    double row = 0.0;
    for (int64_t c = 0; c < 3; ++c) row += g.at(i, c);
    EXPECT_NEAR(row, 0.0, 1e-6);
  }
}

TEST(MseLossTest, ForwardAndBackward) {
  MseLoss loss;
  Tensor out({2, 1}, {1.0f, 3.0f});
  double l = loss.Forward(out, {0, 1});  // errors: 1, 2
  EXPECT_NEAR(l, (1.0 + 4.0) / 2.0, 1e-6);
  Tensor g = loss.Backward();
  EXPECT_NEAR(g.at(0, 0), 2.0 * 1.0 / 2.0, 1e-6);
  EXPECT_NEAR(g.at(1, 0), 2.0 * 2.0 / 2.0, 1e-6);
}

TEST(AccuracyTest, CountsCorrectRows) {
  Tensor scores({3, 2}, {0.9f, 0.1f, 0.2f, 0.8f, 0.6f, 0.4f});
  EXPECT_NEAR(Accuracy(scores, {0, 1, 1}), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(Accuracy(scores, {0, 1, 0}), 1.0, 1e-9);
}

TEST(AccuracyTest, EmptyIsZero) {
  Tensor scores({0, 2});
  EXPECT_EQ(Accuracy(scores, {}), 0.0);
}

}  // namespace
}  // namespace fedscope
