#include "fedscope/nn/optimizer.h"

#include <gtest/gtest.h>

#include "fedscope/nn/model_zoo.h"
#include "fedscope/tensor/tensor_ops.h"

namespace fedscope {
namespace {

/// A one-parameter "model" for exact optimizer math: a single 1x1 Linear.
Model ScalarModel(float w0) {
  Rng rng(1);
  Model m = MakeLogisticRegression(1, 1, &rng);
  auto params = m.Params();
  params[0].value->at(0) = w0;  // weight
  params[1].value->at(0) = 0.0f;  // bias
  return m;
}

void SetGrad(Model* m, float gw, float gb) {
  auto params = m->Params();
  params[0].grad->at(0) = gw;
  params[1].grad->at(0) = gb;
}

float Weight(Model* m) { return m->Params()[0].value->at(0); }

TEST(SgdTest, PlainStep) {
  Model m = ScalarModel(1.0f);
  Sgd sgd(SgdOptions{.lr = 0.1});
  SetGrad(&m, 2.0f, 0.0f);
  sgd.Step(&m);
  EXPECT_NEAR(Weight(&m), 1.0f - 0.1f * 2.0f, 1e-6);
}

TEST(SgdTest, WeightDecayAddsToGradient) {
  Model m = ScalarModel(1.0f);
  Sgd sgd(SgdOptions{.lr = 0.1, .weight_decay = 0.5});
  SetGrad(&m, 0.0f, 0.0f);
  sgd.Step(&m);
  // grad_eff = 0 + 0.5 * w = 0.5; w <- 1 - 0.1*0.5 = 0.95.
  EXPECT_NEAR(Weight(&m), 0.95f, 1e-6);
}

TEST(SgdTest, MomentumAccumulates) {
  Model m = ScalarModel(0.0f);
  Sgd sgd(SgdOptions{.lr = 1.0, .momentum = 0.9});
  SetGrad(&m, 1.0f, 0.0f);
  sgd.Step(&m);  // buf = 1, w = -1
  EXPECT_NEAR(Weight(&m), -1.0f, 1e-6);
  SetGrad(&m, 1.0f, 0.0f);
  sgd.Step(&m);  // buf = 0.9 + 1 = 1.9, w = -1 - 1.9 = -2.9
  EXPECT_NEAR(Weight(&m), -2.9f, 1e-6);
}

TEST(SgdTest, ProximalTermPullsTowardCenter) {
  Model m = ScalarModel(2.0f);
  Sgd sgd(SgdOptions{.lr = 0.1, .prox_mu = 1.0});
  StateDict center = ScalarModel(0.0f).GetStateDict();
  sgd.SetProxCenter(center);
  SetGrad(&m, 0.0f, 0.0f);
  sgd.Step(&m);
  // grad_eff = mu*(w - 0) = 2; w <- 2 - 0.1*2 = 1.8.
  EXPECT_NEAR(Weight(&m), 1.8f, 1e-6);
}

TEST(SgdTest, GradClipBoundsStep) {
  Model m = ScalarModel(0.0f);
  Sgd sgd(SgdOptions{.lr = 1.0, .grad_clip_norm = 1.0});
  SetGrad(&m, 100.0f, 0.0f);
  sgd.Step(&m);
  EXPECT_NEAR(Weight(&m), -1.0f, 1e-4);  // clipped to norm 1
}

TEST(SgdTest, ResetClearsMomentum) {
  Model m = ScalarModel(0.0f);
  Sgd sgd(SgdOptions{.lr = 1.0, .momentum = 0.9});
  SetGrad(&m, 1.0f, 0.0f);
  sgd.Step(&m);
  sgd.Reset();
  SetGrad(&m, 1.0f, 0.0f);
  sgd.Step(&m);
  // Without reset the second step would be -1.9; with reset it's -1.
  EXPECT_NEAR(Weight(&m), -2.0f, 1e-6);
}

TEST(SgdTest, BuffersUntouchedByOptimizer) {
  Rng rng(2);
  Model m = MakeMlpBn({2, 4, 2}, &rng);
  StateDict before = m.GetStateDict(
      [](const std::string& name) {
        return name.find("running") != std::string::npos;
      });
  // Force nonzero grads on trainable params and step.
  for (auto& p : m.Params()) {
    if (p.trainable && p.grad) {
      for (int64_t i = 0; i < p.grad->numel(); ++i) p.grad->at(i) = 1.0f;
    }
  }
  Sgd sgd(SgdOptions{.lr = 0.5});
  sgd.Step(&m);
  StateDict after = m.GetStateDict(
      [](const std::string& name) {
        return name.find("running") != std::string::npos;
      });
  EXPECT_TRUE(before == after);
}

}  // namespace
}  // namespace fedscope
