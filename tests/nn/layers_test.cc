#include "fedscope/nn/layers.h"

#include <gtest/gtest.h>

#include "fedscope/nn/grad_check.h"
#include "fedscope/nn/loss.h"
#include "fedscope/nn/model.h"
#include "fedscope/tensor/tensor_ops.h"

namespace fedscope {
namespace {

// ---------------------------------------------------------------------------
// Forward-pass semantics
// ---------------------------------------------------------------------------

TEST(LinearTest, ForwardMatchesManualComputation) {
  Rng rng(1);
  Linear fc(2, 2, &rng);
  // Set known weights via the model parameter interface.
  std::vector<ParamRef> params;
  fc.CollectParams("fc", &params);
  ASSERT_EQ(params.size(), 2u);
  *params[0].value = Tensor({2, 2}, {1, 2, 3, 4});  // W
  *params[1].value = Tensor({2}, {0.5f, -0.5f});    // b
  Tensor x({1, 2}, {1, 1});
  Tensor y = fc.Forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0, 0), 1 + 3 + 0.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 2 + 4 - 0.5f);
}

TEST(ReLUTest, ForwardClampsAndBackwardMasks) {
  ReLU relu;
  Tensor x = Tensor::FromVector({-1.0f, 0.0f, 2.0f});
  Tensor y = relu.Forward(x, true);
  EXPECT_EQ(y.at(0), 0.0f);
  EXPECT_EQ(y.at(2), 2.0f);
  Tensor g = relu.Backward(Tensor::FromVector({1, 1, 1}));
  EXPECT_EQ(g.at(0), 0.0f);
  EXPECT_EQ(g.at(1), 0.0f);  // gradient at exactly 0 is 0 (subgradient)
  EXPECT_EQ(g.at(2), 1.0f);
}

TEST(TanhTest, ForwardRange) {
  Tanh tanh_layer;
  Tensor x = Tensor::FromVector({-10.0f, 0.0f, 10.0f});
  Tensor y = tanh_layer.Forward(x, true);
  EXPECT_NEAR(y.at(0), -1.0f, 1e-4);
  EXPECT_EQ(y.at(1), 0.0f);
  EXPECT_NEAR(y.at(2), 1.0f, 1e-4);
}

TEST(MaxPoolTest, ForwardPicksMaxAndBackwardRoutes) {
  MaxPool2d pool;
  Tensor x({1, 1, 2, 2}, {1, 5, 3, 2});
  Tensor y = pool.Forward(x, true);
  EXPECT_EQ(y.numel(), 1);
  EXPECT_EQ(y.at(0), 5.0f);
  Tensor g = pool.Backward(Tensor({1, 1, 1, 1}, {7.0f}));
  EXPECT_EQ(g.at(0), 0.0f);
  EXPECT_EQ(g.at(1), 7.0f);  // gradient flows only to the argmax
  EXPECT_EQ(g.at(2), 0.0f);
}

TEST(FlattenTest, RoundTripsShape) {
  Flatten flatten;
  Tensor x({2, 3, 2, 2});
  Tensor y = flatten.Forward(x, true);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 12);
  Tensor g = flatten.Backward(y);
  EXPECT_EQ(g.shape(), x.shape());
}

TEST(DropoutTest, EvalModeIsIdentity) {
  Dropout drop(0.5, 42);
  Tensor x = Tensor::Full({100}, 1.0f);
  Tensor y = drop.Forward(x, /*train=*/false);
  EXPECT_TRUE(x == y);
}

TEST(DropoutTest, TrainModeZeroesAndRescales) {
  Dropout drop(0.5, 42);
  Tensor x = Tensor::Full({2000}, 1.0f);
  Tensor y = drop.Forward(x, /*train=*/true);
  int zeros = 0;
  double sum = 0.0;
  for (int64_t i = 0; i < y.numel(); ++i) {
    if (y.at(i) == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(y.at(i), 2.0f);  // inverted dropout scale 1/(1-p)
    }
    sum += y.at(i);
  }
  EXPECT_NEAR(static_cast<double>(zeros) / y.numel(), 0.5, 0.05);
  EXPECT_NEAR(sum / y.numel(), 1.0, 0.1);  // expectation preserved
}

TEST(DropoutTest, BackwardUsesSameMask) {
  Dropout drop(0.3, 7);
  Tensor x = Tensor::Full({50}, 1.0f);
  Tensor y = drop.Forward(x, true);
  Tensor g = drop.Backward(Tensor::Full({50}, 1.0f));
  for (int64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(g.at(i) == 0.0f, y.at(i) == 0.0f);
  }
}

TEST(BatchNormTest, NormalizesBatchStatistics) {
  BatchNorm bn(2);
  Tensor x({4, 2}, {1, 10, 2, 20, 3, 30, 4, 40});
  Tensor y = bn.Forward(x, /*train=*/true);
  // Per-feature mean ~0, var ~1.
  for (int f = 0; f < 2; ++f) {
    double mean = 0.0, var = 0.0;
    for (int i = 0; i < 4; ++i) mean += y.at(i, f);
    mean /= 4;
    for (int i = 0; i < 4; ++i) {
      var += (y.at(i, f) - mean) * (y.at(i, f) - mean);
    }
    var /= 4;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNormTest, RunningStatsUpdateAndEvalMode) {
  BatchNorm bn(1);
  Tensor x({4, 1}, {10, 10, 10, 10});
  // EMA with momentum 0.1: after ~200 identical batches, running mean has
  // converged to 10 and running var to ~0.
  for (int i = 0; i < 200; ++i) bn.Forward(x, /*train=*/true);
  Tensor y = bn.Forward(x, /*train=*/false);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(y.at(i, 0), 0.0f, 0.05f);
}

TEST(BatchNormTest, ParamsSplitTrainableAndBuffers) {
  BatchNorm bn(3);
  std::vector<ParamRef> params;
  bn.CollectParams("layer", &params);
  ASSERT_EQ(params.size(), 4u);
  int trainable = 0, buffers = 0;
  for (const auto& p : params) {
    if (p.trainable) {
      ++trainable;
    } else {
      ++buffers;
      EXPECT_EQ(p.grad, nullptr);
    }
    EXPECT_NE(p.name.find(".bn."), std::string::npos);
  }
  EXPECT_EQ(trainable, 2);  // gamma, beta
  EXPECT_EQ(buffers, 2);    // running mean/var
}

TEST(Conv2dTest, IdentityKernelReproducesInput) {
  Rng rng(2);
  Conv2d conv(1, 1, 3, 1, &rng);
  std::vector<ParamRef> params;
  conv.CollectParams("conv", &params);
  // Kernel = delta at center, bias 0 -> output == input.
  ZeroInPlace(params[0].value);
  params[0].value->at4(0, 0, 1, 1) = 1.0f;
  ZeroInPlace(params[1].value);
  Rng xr(3);
  Tensor x = Tensor::Randn({1, 1, 4, 4}, &xr);
  Tensor y = conv.Forward(x, true);
  EXPECT_EQ(y.shape(), x.shape());
  for (int64_t i = 0; i < x.numel(); ++i) EXPECT_NEAR(y.at(i), x.at(i), 1e-5);
}

TEST(Conv2dTest, OutputShapeNoPadding) {
  Rng rng(4);
  Conv2d conv(2, 3, 3, 0, &rng);
  Tensor x({2, 2, 6, 6});
  Tensor y = conv.Forward(x, true);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 3);
  EXPECT_EQ(y.dim(2), 4);
  EXPECT_EQ(y.dim(3), 4);
}

// ---------------------------------------------------------------------------
// Gradient checks: every layer's backward pass against finite differences.
// ---------------------------------------------------------------------------

struct GradCheckCase {
  std::string name;
  std::function<Model(Rng*)> build;
  std::vector<int64_t> x_shape;
  int64_t classes;
  /// float32 + finite differences leave ~1e-2 relative error; BN through
  /// conv amplifies it slightly (1/sqrt(var) factors), so cases may widen.
  double tolerance = 2e-2;
};

class LayerGradCheck : public ::testing::TestWithParam<GradCheckCase> {};

TEST_P(LayerGradCheck, AnalyticMatchesNumeric) {
  const auto& test_case = GetParam();
  Rng rng(11);
  Model model = test_case.build(&rng);
  Rng xr(12);
  Tensor x = Tensor::Randn(test_case.x_shape, &xr);
  std::vector<int64_t> labels(test_case.x_shape[0]);
  for (size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int64_t>(i) % test_case.classes;
  }
  SoftmaxCrossEntropy loss;
  auto result = CheckModelGradients(&model, &loss, x, labels, 1e-2, 12);
  EXPECT_GT(result.checked, 0);
  EXPECT_LT(result.max_rel_err, test_case.tolerance)
      << test_case.name << " abs=" << result.max_abs_err;
}

INSTANTIATE_TEST_SUITE_P(
    AllLayers, LayerGradCheck,
    ::testing::Values(
        GradCheckCase{"linear",
                      [](Rng* rng) {
                        Model m;
                        m.Add("fc", std::make_unique<Linear>(6, 4, rng));
                        return m;
                      },
                      {3, 6},
                      4},
        GradCheckCase{"mlp_relu",
                      [](Rng* rng) {
                        Model m;
                        m.Add("fc1", std::make_unique<Linear>(5, 8, rng));
                        m.Add("act", std::make_unique<ReLU>());
                        m.Add("fc2", std::make_unique<Linear>(8, 3, rng));
                        return m;
                      },
                      {4, 5},
                      3},
        GradCheckCase{"mlp_tanh",
                      [](Rng* rng) {
                        Model m;
                        m.Add("fc1", std::make_unique<Linear>(5, 6, rng));
                        m.Add("act", std::make_unique<Tanh>());
                        m.Add("fc2", std::make_unique<Linear>(6, 3, rng));
                        return m;
                      },
                      {4, 5},
                      3},
        GradCheckCase{"batchnorm",
                      [](Rng* rng) {
                        Model m;
                        m.Add("fc1", std::make_unique<Linear>(4, 6, rng));
                        m.Add("norm", std::make_unique<BatchNorm>(6));
                        m.Add("act", std::make_unique<ReLU>());
                        m.Add("fc2", std::make_unique<Linear>(6, 2, rng));
                        return m;
                      },
                      {6, 4},
                      2},
        GradCheckCase{"conv_pool",
                      [](Rng* rng) {
                        Model m;
                        m.Add("conv",
                              std::make_unique<Conv2d>(1, 2, 3, 1, rng));
                        m.Add("act", std::make_unique<ReLU>());
                        m.Add("pool", std::make_unique<MaxPool2d>());
                        m.Add("flat", std::make_unique<Flatten>());
                        m.Add("fc", std::make_unique<Linear>(8, 3, rng));
                        return m;
                      },
                      {2, 1, 4, 4},
                      3},
        GradCheckCase{"conv_batchnorm",
                      [](Rng* rng) {
                        Model m;
                        m.Add("conv",
                              std::make_unique<Conv2d>(1, 3, 3, 1, rng));
                        m.Add("norm", std::make_unique<BatchNorm>(3));
                        m.Add("act", std::make_unique<ReLU>());
                        m.Add("flat", std::make_unique<Flatten>());
                        m.Add("fc", std::make_unique<Linear>(3 * 4 * 4, 2,
                                                             rng));
                        return m;
                      },
                      {3, 1, 4, 4},
                      2,
                      /*tolerance=*/5e-2},
        GradCheckCase{"conv_nopad",
                      [](Rng* rng) {
                        Model m;
                        m.Add("conv",
                              std::make_unique<Conv2d>(2, 2, 3, 0, rng));
                        m.Add("flat", std::make_unique<Flatten>());
                        m.Add("fc", std::make_unique<Linear>(2 * 2 * 2, 2,
                                                             rng));
                        return m;
                      },
                      {2, 2, 4, 4},
                      2}),
    [](const ::testing::TestParamInfo<GradCheckCase>& info) {
      return info.param.name;
    });

TEST(LayerCloneTest, ClonesAreIndependent) {
  Rng rng(13);
  Linear fc(3, 3, &rng);
  auto copy = fc.Clone();
  std::vector<ParamRef> orig_params, copy_params;
  fc.CollectParams("fc", &orig_params);
  copy->CollectParams("fc", &copy_params);
  EXPECT_TRUE(*orig_params[0].value == *copy_params[0].value);
  copy_params[0].value->at(0) += 1.0f;
  EXPECT_FALSE(*orig_params[0].value == *copy_params[0].value);
}

}  // namespace
}  // namespace fedscope
