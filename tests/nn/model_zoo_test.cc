#include "fedscope/nn/model_zoo.h"

#include <gtest/gtest.h>

namespace fedscope {
namespace {

TEST(ModelZooTest, ConvNet2ForwardShape) {
  Rng rng(1);
  Model m = MakeConvNet2(3, 8, 10, 32, 0.5, &rng);
  Tensor x({2, 3, 8, 8});
  Tensor y = m.Forward(x, /*train=*/false);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 10);
}

TEST(ModelZooTest, ConvNet2GrayscaleInput) {
  Rng rng(2);
  Model m = MakeConvNet2(1, 8, 62, 64, 0.0, &rng);
  Tensor x({1, 1, 8, 8});
  EXPECT_EQ(m.Forward(x, false).dim(1), 62);
}

TEST(ModelZooTest, ConvNet2RequiresDivisibleSize) {
  Rng rng(3);
  EXPECT_DEATH(MakeConvNet2(1, 6, 10, 32, 0.0, &rng), "");
}

TEST(ModelZooTest, MlpShapesAndDepth) {
  Rng rng(4);
  Model m = MakeMlp({10, 20, 20, 5}, &rng);
  Tensor x({3, 10});
  EXPECT_EQ(m.Forward(x, true).dim(1), 5);
  // 3 linear layers + 2 relus.
  EXPECT_EQ(m.num_layers(), 5);
}

TEST(ModelZooTest, MlpBnContainsBatchNorm) {
  Rng rng(5);
  Model m = MakeMlpBn({4, 8, 2}, &rng);
  bool has_bn = false;
  for (auto& p : m.Params()) {
    if (p.name.find(".bn.") != std::string::npos) has_bn = true;
  }
  EXPECT_TRUE(has_bn);
  Tensor x({4, 4});
  EXPECT_EQ(m.Forward(x, true).dim(1), 2);
}

TEST(ModelZooTest, LogisticRegressionIsSingleLayer) {
  Rng rng(6);
  Model m = MakeLogisticRegression(60, 2, &rng);
  EXPECT_EQ(m.num_layers(), 1);
  EXPECT_EQ(m.NumParams(), 60 * 2 + 2);
}

TEST(ModelZooTest, BodyHeadSplitsNamespaces) {
  Rng rng(7);
  Model m = MakeBodyHeadMlp(6, 8, 3, &rng);
  auto body = m.GetStateDict(IncludePrefixes({"body."}));
  auto head = m.GetStateDict(IncludePrefixes({"head."}));
  EXPECT_EQ(body.size(), 4u);
  EXPECT_EQ(head.size(), 2u);
  Tensor x({2, 6});
  EXPECT_EQ(m.Forward(x, true).dim(1), 3);
}

TEST(ModelZooTest, SameSeedSameInit) {
  Rng a(9), b(9);
  Model ma = MakeMlp({3, 3}, &a);
  Model mb = MakeMlp({3, 3}, &b);
  EXPECT_TRUE(ma.GetStateDict() == mb.GetStateDict());
}

}  // namespace
}  // namespace fedscope
