#include "fedscope/nn/model.h"

#include <gtest/gtest.h>

#include "fedscope/nn/model_zoo.h"
#include "fedscope/tensor/tensor_ops.h"

namespace fedscope {
namespace {

Model SmallMlp(uint64_t seed = 1) {
  Rng rng(seed);
  return MakeMlp({4, 6, 3}, &rng);
}

TEST(ModelTest, ParamsHaveHierarchicalNames) {
  Model m = SmallMlp();
  auto params = m.Params();
  ASSERT_EQ(params.size(), 4u);  // fc1.{weight,bias}, fc2.{weight,bias}
  EXPECT_EQ(params[0].name, "fc1.weight");
  EXPECT_EQ(params[3].name, "fc2.bias");
}

TEST(ModelTest, NumParamsCountsScalars) {
  Model m = SmallMlp();
  EXPECT_EQ(m.NumParams(), 4 * 6 + 6 + 6 * 3 + 3);
}

TEST(ModelTest, DuplicateLayerNameDies) {
  Rng rng(2);
  Model m;
  m.Add("fc", std::make_unique<Linear>(2, 2, &rng));
  EXPECT_DEATH(m.Add("fc", std::make_unique<Linear>(2, 2, &rng)), "");
}

TEST(ModelTest, StateDictRoundTrip) {
  Model a = SmallMlp(1);
  Model b = SmallMlp(99);
  EXPECT_FALSE(a.GetStateDict() == b.GetStateDict());
  ASSERT_TRUE(b.LoadStateDict(a.GetStateDict()).ok());
  EXPECT_TRUE(a.GetStateDict() == b.GetStateDict());
}

TEST(ModelTest, StateDictFilterSelectsSubset) {
  Model m = SmallMlp();
  auto only_fc1 = m.GetStateDict(IncludePrefixes({"fc1"}));
  EXPECT_EQ(only_fc1.size(), 2u);
  auto no_bias = m.GetStateDict(ExcludeSubstrings({"bias"}));
  EXPECT_EQ(no_bias.size(), 2u);
  EXPECT_TRUE(no_bias.count("fc1.weight"));
}

TEST(ModelTest, LoadStateDictShapeMismatchErrors) {
  Model m = SmallMlp();
  StateDict bad;
  bad["fc1.weight"] = Tensor({2, 2});
  EXPECT_FALSE(m.LoadStateDict(bad).ok());
}

TEST(ModelTest, LoadStateDictStrictRejectsUnknownKeys) {
  Model m = SmallMlp();
  StateDict extra;
  extra["nope.weight"] = Tensor({1});
  EXPECT_TRUE(m.LoadStateDict(extra, /*strict=*/false).ok());
  EXPECT_FALSE(m.LoadStateDict(extra, /*strict=*/true).ok());
}

TEST(ModelTest, CopyIsDeep) {
  Model a = SmallMlp();
  Model b = a;
  auto pa = a.Params();
  auto pb = b.Params();
  pb[0].value->at(0) += 5.0f;
  EXPECT_NE(pa[0].value->at(0), pb[0].value->at(0));
}

TEST(ModelTest, FlatParamsRoundTrip) {
  Model a = SmallMlp(1);
  Model b = SmallMlp(50);
  auto flat = a.FlatParams();
  EXPECT_EQ(static_cast<int64_t>(flat.size()), a.NumParams());
  b.SetFlatParams(flat);
  EXPECT_TRUE(a.GetStateDict() == b.GetStateDict());
}

TEST(ModelTest, ZeroGradClearsGradients) {
  Model m = SmallMlp();
  Rng rng(3);
  Tensor x = Tensor::Randn({2, 4}, &rng);
  Tensor out = m.Forward(x, true);
  m.Backward(Tensor::Full(out.shape(), 1.0f));
  bool any_nonzero = false;
  for (auto& p : m.Params()) {
    if (p.grad && SquaredNorm(*p.grad) > 0) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
  m.ZeroGrad();
  for (auto& p : m.Params()) {
    if (p.grad) {
      EXPECT_EQ(SquaredNorm(*p.grad), 0.0);
    }
  }
}

TEST(ModelTest, GradientsAccumulateAcrossBackwards) {
  Model m = SmallMlp();
  Rng rng(4);
  Tensor x = Tensor::Randn({2, 4}, &rng);
  Tensor g = Tensor::Full({2, 3}, 1.0f);

  m.ZeroGrad();
  m.Forward(x, true);
  m.Backward(g);
  auto one_pass = *m.Params()[0].grad;

  m.Forward(x, true);
  m.Backward(g);
  auto two_pass = *m.Params()[0].grad;
  for (int64_t i = 0; i < one_pass.numel(); ++i) {
    EXPECT_NEAR(two_pass.at(i), 2.0f * one_pass.at(i), 1e-4);
  }
}

// -- NameFilters -------------------------------------------------------------

TEST(NameFilterTest, AcceptAll) {
  EXPECT_TRUE(AcceptAll()("anything"));
}

TEST(NameFilterTest, ExcludeSubstrings) {
  auto f = ExcludeSubstrings({".bn.", "head"});
  EXPECT_TRUE(f("conv1.weight"));
  EXPECT_FALSE(f("norm1.bn.gamma"));
  EXPECT_FALSE(f("head.fc.weight"));
}

TEST(NameFilterTest, IncludePrefixes) {
  auto f = IncludePrefixes({"body."});
  EXPECT_TRUE(f("body.fc1.weight"));
  EXPECT_FALSE(f("head.fc.weight"));
  EXPECT_FALSE(f("xbody.fc1.weight"));
}

// -- StateDict arithmetic ----------------------------------------------------

StateDict MakeDict(float a, float b) {
  StateDict d;
  d["x"] = Tensor::FromVector({a});
  d["y"] = Tensor::FromVector({b});
  return d;
}

TEST(StateDictMathTest, AddSubScale) {
  auto a = MakeDict(1, 2), b = MakeDict(3, 4);
  EXPECT_EQ(SdAdd(a, b).at("x").at(0), 4.0f);
  EXPECT_EQ(SdSub(b, a).at("y").at(0), 2.0f);
  EXPECT_EQ(SdScale(a, 2.0f).at("y").at(0), 4.0f);
}

TEST(StateDictMathTest, AxpyAndNorm) {
  auto a = MakeDict(3, 4);
  SdAxpy(&a, 2.0f, MakeDict(1, 1));
  EXPECT_EQ(a.at("x").at(0), 5.0f);
  EXPECT_DOUBLE_EQ(SdNorm(MakeDict(3, 4)), 5.0);
}

TEST(StateDictMathTest, WeightedAverage) {
  auto a = MakeDict(0, 0), b = MakeDict(10, 20);
  auto avg = SdWeightedAverage({&a, &b}, {3.0, 1.0});
  EXPECT_NEAR(avg.at("x").at(0), 2.5f, 1e-5);
  EXPECT_NEAR(avg.at("y").at(0), 5.0f, 1e-5);
}

TEST(StateDictMathTest, MismatchedKeysDie) {
  StateDict a = MakeDict(1, 2);
  StateDict b;
  b["x"] = Tensor::FromVector({1.0f});
  EXPECT_DEATH(SdAdd(a, b), "");
}

TEST(StateDictMathTest, FlattenAndNumel) {
  auto a = MakeDict(1, 2);
  auto flat = SdFlatten(a);
  ASSERT_EQ(flat.size(), 2u);
  EXPECT_EQ(flat[0], 1.0f);  // "x" before "y" (map order)
  EXPECT_EQ(SdNumel(a), 2);
}

}  // namespace
}  // namespace fedscope
