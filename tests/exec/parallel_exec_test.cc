// The threaded execution backend's determinism contract (DESIGN.md §12):
// under any worker count, a course must be bit-identical to the serial
// run — models, curves, tap sequences, and obs exports. The differential
// fuzz oracle (oracle 11) covers the lattice; these tests pin the
// contract on representative courses and the exec/ building blocks.

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <vector>

#include "fedscope/core/fed_runner.h"
#include "fedscope/data/synthetic_cifar.h"
#include "fedscope/exec/buffering_channel.h"
#include "fedscope/exec/worker_pool.h"
#include "fedscope/nn/model_zoo.h"

namespace fedscope {
namespace {

TEST(WorkerPoolTest, RunsEveryTaskAndBlocksUntilDone) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<int> done(64, 0);
  std::vector<std::function<void()>> tasks;
  for (size_t i = 0; i < done.size(); ++i) {
    tasks.push_back([&done, i] { done[i] = 1; });
  }
  pool.Run(&tasks);
  // Run is the barrier: every write is visible once it returns.
  for (int d : done) EXPECT_EQ(d, 1);
}

TEST(WorkerPoolTest, ReusableAcrossBatchesAndEmptyBatchIsNoop) {
  WorkerPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 5; ++batch) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 3; ++i) tasks.push_back([&count] { ++count; });
    pool.Run(&tasks);
  }
  std::vector<std::function<void()>> empty;
  pool.Run(&empty);
  EXPECT_EQ(count.load(), 15);
}

TEST(WorkerPoolTest, SingleThreadPoolWorks) {
  WorkerPool pool(1);
  int sum = 0;
  std::vector<std::function<void()>> tasks;
  for (int i = 1; i <= 4; ++i) tasks.push_back([&sum, i] { sum += i; });
  pool.Run(&tasks);
  EXPECT_EQ(sum, 10);
}

TEST(BufferingChannelTest, PassthroughOutsideCaptureBufferInside) {
  QueueChannel inner;
  BufferingChannel port(&inner);
  Message m;
  m.msg_type = "direct";
  port.Send(m);
  EXPECT_EQ(inner.Size(), 1u);  // no capture window: forwarded

  std::vector<Message> sink;
  port.BeginCapture(&sink);
  m.msg_type = "buffered1";
  port.Send(m);
  m.msg_type = "buffered2";
  port.Send(m);
  port.EndCapture();
  EXPECT_EQ(inner.Size(), 1u);  // captured sends never reached the inner
  ASSERT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink[0].msg_type, "buffered1");
  EXPECT_EQ(sink[1].msg_type, "buffered2");

  m.msg_type = "direct2";
  port.Send(m);
  EXPECT_EQ(inner.Size(), 2u);  // window closed: passthrough again
}

// -- course-level bit-identity ----------------------------------------------

FedDataset SmallData(uint64_t seed = 2) {
  SyntheticCifarOptions options;
  options.num_clients = 8;
  options.pool_size = 400;
  options.alpha = 1.0;
  options.image_size = 8;
  options.server_test_size = 128;
  options.seed = seed;
  return MakeSyntheticCifar(options);
}

// The MLP expects flat input; flatten via a Flatten layer up front.
FedJob SmallJob(const FedDataset* data, uint64_t seed = 11) {
  Rng rng(seed);
  FedJob job;
  job.data = data;
  Model m;
  m.Add("flat", std::make_unique<Flatten>());
  Model mlp = MakeMlp({3 * 8 * 8, 32, 10}, &rng);
  for (int i = 0; i < mlp.num_layers(); ++i) {
    m.Add(mlp.layer_name(i), mlp.layer(i)->Clone());
  }
  job.init_model = std::move(m);
  job.server.concurrency = 4;
  job.server.max_rounds = 4;
  job.client.train.lr = 0.1;
  job.client.train.local_steps = 2;
  job.client.train.batch_size = 8;
  job.client.jitter_sigma = 0.1;
  job.seed = seed;
  return job;
}

FedJob ThreadedJob(const FedDataset* data, int threads, uint64_t seed = 11) {
  FedJob job = SmallJob(data, seed);
  job.exec.backend = ExecutionBackend::kThreaded;
  job.exec.num_threads = threads;
  return job;
}

void ExpectSameRun(RunResult& a, RunResult& b) {
  EXPECT_TRUE(a.final_model.GetStateDict() == b.final_model.GetStateDict());
  ASSERT_EQ(a.server.curve.size(), b.server.curve.size());
  for (size_t i = 0; i < a.server.curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.server.curve[i].first, b.server.curve[i].first);
    EXPECT_DOUBLE_EQ(a.server.curve[i].second, b.server.curve[i].second);
  }
  EXPECT_EQ(a.server.rounds, b.server.rounds);
  EXPECT_EQ(a.server.staleness_log, b.server.staleness_log);
  EXPECT_EQ(a.client_test_accuracy, b.client_test_accuracy);
  EXPECT_EQ(a.client_test_loss, b.client_test_loss);
}

TEST(ParallelExecTest, ThreadedMatchesSerialBitIdentical) {
  FedDataset data = SmallData();
  RunResult serial = FedRunner(SmallJob(&data)).Run();
  for (int threads : {1, 2, 4}) {
    RunResult threaded = FedRunner(ThreadedJob(&data, threads)).Run();
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectSameRun(serial, threaded);
  }
}

TEST(ParallelExecTest, ThreadedMatchesSerialWithZeroJitter) {
  // Zero jitter maximizes equal-virtual-time deliveries (whole cohorts
  // ready at once) — the widest batches the stage ever forms.
  FedDataset data = SmallData();
  auto job = [&data](int threads) {
    FedJob job = threads > 0 ? ThreadedJob(&data, threads) : SmallJob(&data);
    job.client.jitter_sigma = 0.0;
    job.server.concurrency = 8;
    return job;
  };
  RunResult serial = FedRunner(job(0)).Run();
  RunResult threaded = FedRunner(job(4)).Run();
  ExpectSameRun(serial, threaded);
}

TEST(ParallelExecTest, ThreadedMatchesSerialWithDecoratorsStacked) {
  // Full decorator stack: wire codec, top-k compression, a fault plan
  // that drops/duplicates/delays, and duplicate suppression. The fault
  // Judge consumes its rng in send order and the suppressor consumes its
  // state in pop order; canonical commit must preserve both.
  FedDataset data = SmallData();
  auto decorated = [&data](int threads) {
    FedJob job = threads > 0 ? ThreadedJob(&data, threads) : SmallJob(&data);
    job.server.max_rounds = 4;
    job.server.receive_deadline = 1.5;  // lossy sync needs the backstop
    job.client.compression = "topk";
    job.client.compression_keep_frac = 0.3;
    job.fault.dropout_frac = 0.2;
    job.fault.msg_loss_prob = 0.1;
    job.fault.msg_duplicate_prob = 0.2;
    job.fault.msg_delay_prob = 0.2;
    job.fault.msg_delay_max = 0.3;
    job.fault.seed = 99;
    job.suppress_duplicates = true;
    job.through_wire = true;
    return job;
  };
  RunResult serial = FedRunner(decorated(0)).Run();
  for (int threads : {2, 4}) {
    RunResult threaded = FedRunner(decorated(threads)).Run();
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectSameRun(serial, threaded);
  }
}

TEST(ParallelExecTest, CrashDrillMatchesSerialUnderThreadedBackend) {
  // The kill must land between the same two deliveries regardless of
  // backend (the stage never batches across the crash boundary).
  FedDataset data = SmallData();
  auto crashing = [&data](int threads) {
    FedJob job = threads > 0 ? ThreadedJob(&data, threads) : SmallJob(&data);
    job.fault.server_crash_at_event = 17;
    return job;
  };
  RunResult serial = FedRunner(crashing(0)).Run();
  RunResult threaded = FedRunner(crashing(4)).Run();
  ExpectSameRun(serial, threaded);
}

// -- satellite: tap ordering under the threaded backend ---------------------

std::string Describe(const Message& m) {
  std::ostringstream out;
  out << m.msg_type << ":" << m.sender << "->" << m.receiver << "@" << m.state
      << " t=" << m.timestamp;
  return out.str();
}

struct TapLog {
  std::vector<std::string> sends;
  std::vector<std::string> deliveries;
};

TapLog RunWithTaps(FedJob job) {
  TapLog log;
  job.send_tap = [&log](const Message& m) { log.sends.push_back(Describe(m)); };
  job.delivery_tap = [&log](const Message& m) {
    log.deliveries.push_back(Describe(m));
  };
  FedRunner(std::move(job)).Run();
  return log;
}

TEST(ParallelExecTest, TapsFireAtCommitInCanonicalOrder) {
  // send_tap and delivery_tap must observe the exact serial sequences:
  // taps fire at commit, not while tasks run, so message-conservation
  // accounting is backend-independent.
  FedDataset data = SmallData();
  const TapLog serial = RunWithTaps(SmallJob(&data));
  for (int threads : {2, 4}) {
    const TapLog threaded = RunWithTaps(ThreadedJob(&data, threads));
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(serial.sends, threaded.sends);
    EXPECT_EQ(serial.deliveries, threaded.deliveries);
  }
}

// -- same-seed obs exports are bit-identical --------------------------------

struct ObsExports {
  std::string prometheus;
  std::string trace_json;
};

ObsExports RunWithObs(FedJob job) {
  MetricsRegistry metrics;
  Tracer tracer;
  job.obs.metrics = &metrics;
  job.obs.tracer = &tracer;
  FedRunner(std::move(job)).Run();
  return {metrics.PrometheusText(), tracer.ToChromeJson()};
}

TEST(ParallelExecTest, ObsExportsBitIdenticalToSerial) {
  // Per-task metric ops and trace events are buffered and replayed in
  // canonical order, so the full exports — including order-sensitive
  // queue-depth gauges and span sequences — match byte for byte.
  FedDataset data = SmallData();
  const ObsExports serial = RunWithObs(SmallJob(&data));
  for (int threads : {2, 4}) {
    const ObsExports threaded = RunWithObs(ThreadedJob(&data, threads));
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(serial.prometheus, threaded.prometheus);
    EXPECT_EQ(serial.trace_json, threaded.trace_json);
  }
}

}  // namespace
}  // namespace fedscope
