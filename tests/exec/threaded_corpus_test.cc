// Replays every tests/fuzz/corpus/*.course spec under the threaded
// execution backend and requires bit-identity with the serial run. This
// is the corpus's threaded twin: cheaper than the full oracle suite
// (FuzzCorpusTest already runs oracle 11 over the corpus), so the TSan CI
// job can afford it — TSan is the referee for the executor's data-race
// freedom while these runs exercise real pool concurrency.

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fedscope/testing/oracles.h"
#include "fedscope/util/logging.h"
#include "gtest/gtest.h"

namespace fedscope {
namespace testing {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> CorpusCourses() {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(FEDSCOPE_FUZZ_CORPUS_DIR)) {
    if (entry.path().extension() == ".course") files.push_back(entry.path());
  }
  return files;
}

/// First non-comment, non-blank line of a .course file.
std::string ReadSpecLine(const fs::path& path) {
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') return line;
  }
  return "";
}

TEST(ThreadedCorpusTest, CorpusReplaysBitIdenticallyUnderThreadedBackend) {
  Logging::set_min_level(LogLevel::kWarning);
  const auto files = CorpusCourses();
  ASSERT_FALSE(files.empty()) << "corpus missing: " << FEDSCOPE_FUZZ_CORPUS_DIR;
  for (const auto& file : files) {
    const std::string line = ReadSpecLine(file);
    ASSERT_FALSE(line.empty()) << file;
    auto spec = CourseSpec::FromString(line);
    ASSERT_TRUE(spec.ok()) << file << ": " << spec.status().ToString();
    CourseObservation serial = RunInstrumentedCourse(spec.value());
    for (int threads : {2, 4}) {
      SCOPED_TRACE(file.string() + " threads=" + std::to_string(threads));
      CourseObservation threaded =
          RunInstrumentedCourse(spec.value(), -1, threads);
      EXPECT_EQ(serial.finished, threaded.finished);
      EXPECT_TRUE(serial.result.final_model.GetStateDict() ==
                  threaded.result.final_model.GetStateDict());
      EXPECT_EQ(serial.result.server.curve, threaded.result.server.curve);
      EXPECT_EQ(serial.result.server.rounds, threaded.result.server.rounds);
      EXPECT_EQ(serial.result.server.staleness_log,
                threaded.result.server.staleness_log);
      EXPECT_EQ(serial.result.client_test_accuracy,
                threaded.result.client_test_accuracy);
      EXPECT_EQ(serial.sent, threaded.sent);
      EXPECT_EQ(serial.delivered, threaded.delivered);
      EXPECT_EQ(serial.suppressed, threaded.suppressed);
    }
  }
  Logging::set_min_level(LogLevel::kInfo);
}

}  // namespace
}  // namespace testing
}  // namespace fedscope
