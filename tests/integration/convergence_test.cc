#include <gtest/gtest.h>

#include <cmath>

#include "fedscope/core/fed_runner.h"
#include "fedscope/data/synthetic_celeba.h"
#include "fedscope/data/synthetic_cifar.h"
#include "fedscope/data/synthetic_shakespeare.h"
#include "fedscope/data/synthetic_twitter.h"
#include "fedscope/hpo/fl_objective.h"
#include "fedscope/hpo/pbt.h"
#include "fedscope/hpo/random_search.h"
#include "fedscope/hpo/successive_halving.h"
#include "fedscope/nn/model_zoo.h"
#include "fedscope/tensor/tensor_ops.h"

namespace fedscope {
namespace {

FedDataset* TwitterData() {
  static FedDataset* data = [] {
    SyntheticTwitterOptions options;
    options.num_clients = 40;
    options.vocab = 40;
    options.seed = 9;
    return new FedDataset(MakeSyntheticTwitter(options));
  }();
  return data;
}

FedJob TwitterJob(uint64_t seed = 91) {
  FedJob job;
  job.data = TwitterData();
  Rng rng(seed);
  job.init_model = MakeLogisticRegression(40, 2, &rng);
  job.server.concurrency = 10;
  job.server.max_rounds = 20;
  job.client.train.lr = 0.5;
  job.client.train.local_steps = 4;
  job.client.train.batch_size = 2;
  job.seed = seed;
  return job;
}

TEST(ConvergenceTest, FedAvgLearnsTwitterSentiment) {
  RunResult result = FedRunner(TwitterJob()).Run();
  EXPECT_GT(result.server.final_accuracy, 0.7);
}

TEST(ConvergenceTest, AccuracyImprovesOverRounds) {
  RunResult result = FedRunner(TwitterJob()).Run();
  ASSERT_GE(result.server.curve.size(), 10u);
  const double early = result.server.curve[0].second;
  const double late = result.server.curve.back().second;
  EXPECT_GT(late, early + 0.1);
}

TEST(ConvergenceTest, MoreLocalStepsConvergeFasterPerRound) {
  FedJob lazy = TwitterJob(92);
  lazy.client.train.local_steps = 1;
  lazy.server.max_rounds = 6;
  RunResult lazy_result = FedRunner(std::move(lazy)).Run();

  FedJob eager = TwitterJob(92);
  eager.client.train.local_steps = 8;
  eager.server.max_rounds = 6;
  RunResult eager_result = FedRunner(std::move(eager)).Run();

  EXPECT_GE(eager_result.server.final_accuracy,
            lazy_result.server.final_accuracy - 0.02);
}

TEST(ConvergenceTest, FedAvgLearnsShakespeareNextChar) {
  SyntheticShakespeareOptions options;
  options.num_clients = 20;
  options.mean_text_length = 150;
  options.style_strength = 0.3;
  options.seed = 21;
  FedDataset data = MakeSyntheticShakespeare(options);

  FedJob job;
  job.data = &data;
  Rng rng(22);
  job.init_model = MakeMlp(
      {options.context * options.vocab, 32, options.vocab}, &rng);
  job.server.concurrency = 8;
  job.server.max_rounds = 25;
  job.client.train.lr = 0.3;
  job.client.train.local_steps = 4;
  job.client.train.batch_size = 16;
  job.seed = 22;
  RunResult result = FedRunner(std::move(job)).Run();
  // Next-char prediction: well above the 1/vocab = 6.25% uniform baseline.
  EXPECT_GT(result.server.final_accuracy,
            2.5 / static_cast<double>(options.vocab));
}

TEST(ConvergenceTest, FedAvgLearnsCelebaAttribute) {
  SyntheticCelebaOptions options;
  options.num_clients = 20;
  options.seed = 23;
  FedDataset data = MakeSyntheticCeleba(options);

  FedJob job;
  job.data = &data;
  Rng rng(24);
  Model model;
  model.Add("flat", std::make_unique<Flatten>());
  Model mlp = MakeMlp({64, 16, 2}, &rng);
  for (int i = 0; i < mlp.num_layers(); ++i) {
    model.Add(mlp.layer_name(i), mlp.layer(i)->Clone());
  }
  job.init_model = std::move(model);
  job.server.concurrency = 8;
  job.server.max_rounds = 20;
  job.client.train.lr = 0.1;
  job.client.train.local_steps = 4;
  job.client.train.batch_size = 8;
  job.seed = 24;
  RunResult result = FedRunner(std::move(job)).Run();
  // Binary attribute on *unseen identities*: well above chance.
  EXPECT_GT(result.server.final_accuracy, 0.75);
}

// ---------------------------------------------------------------------------
// Proposition 1 sanity: on a strongly convex quadratic federated problem,
// the error contracts geometrically and larger staleness hurts.
// ---------------------------------------------------------------------------

/// Closed-form federated quadratic: client i minimizes
/// f_i(w) = 0.5 * (w - c_i)^2; global optimum is mean(c_i).
struct QuadraticFederation {
  std::vector<double> centers;
  double Global(double w) const {
    double total = 0.0;
    for (double c : centers) total += 0.5 * (w - c) * (w - c);
    return total / centers.size();
  }
  double Optimum() const {
    double total = 0.0;
    for (double c : centers) total += c;
    return total / centers.size();
  }

  /// Simulates T rounds of (possibly stale) federated SGD with Q local
  /// steps; each round, every client starts from the model that is
  /// `staleness` versions old.
  double Run(int rounds, int q, double lr, int staleness) const {
    std::vector<double> history = {10.0};  // w_0 far from optimum
    for (int t = 0; t < rounds; ++t) {
      const int base_idx =
          std::max<int>(0, static_cast<int>(history.size()) - 1 - staleness);
      const double w_base = history[base_idx];
      double delta_sum = 0.0;
      for (double c : centers) {
        double w = w_base;
        for (int step = 0; step < q; ++step) {
          w -= lr * (w - c);  // exact gradient of 0.5 (w - c)^2
        }
        delta_sum += w - w_base;
      }
      history.push_back(history.back() + delta_sum / centers.size());
    }
    return history.back();
  }
};

TEST(Proposition1Test, GeometricContractionWithoutStaleness) {
  QuadraticFederation fed{{-1.0, 0.5, 2.0, 3.5}};
  const double opt = fed.Optimum();
  const double lr = 0.1;
  const int q = 4;
  // Error after T rounds ~ (1 - mu Q eta)^T scaled; check a 2x round count
  // squares the contraction factor (within slack).
  const double e5 = std::fabs(fed.Run(5, q, lr, 0) - opt);
  const double e10 = std::fabs(fed.Run(10, q, lr, 0) - opt);
  const double e15 = std::fabs(fed.Run(15, q, lr, 0) - opt);
  EXPECT_LT(e10, e5);
  EXPECT_LT(e15, e10);
  // Log-linear decay: equal-length windows contract by the same factor.
  const double r1 = e10 / e5, r2 = e15 / e10;
  EXPECT_NEAR(std::log(r1), std::log(r2), 0.5);
}

TEST(Proposition1Test, StalenessSlowsConvergence) {
  QuadraticFederation fed{{-1.0, 0.5, 2.0, 3.5}};
  const double opt = fed.Optimum();
  const double fresh = std::fabs(fed.Run(15, 4, 0.1, 0) - opt);
  const double stale = std::fabs(fed.Run(15, 4, 0.1, 3) - opt);
  EXPECT_LT(fresh, stale);
}

TEST(Proposition1Test, StepSizeBoundMatters) {
  // The contraction condition bounds the usable step size (mu = 1 here):
  // beyond the stability boundary (|1 - eta| >= 1 per local step) the
  // local iteration diverges instead of contracting.
  QuadraticFederation fed{{-2.0, 2.0}};
  const double opt = fed.Optimum();
  const double safe = std::fabs(fed.Run(30, 4, 0.3, 0) - opt);
  const double divergent = std::fabs(fed.Run(30, 4, 2.05, 0) - opt);
  EXPECT_LT(safe, 1e-3);
  EXPECT_GT(divergent, 1.0);
}

// ---------------------------------------------------------------------------
// FlObjective end-to-end (ties the HPO plug-in to real FL courses).
// ---------------------------------------------------------------------------

TEST(FlObjectiveTest, EvaluatesAndCheckpoints) {
  FlObjective objective([]() { return TwitterJob(93); });
  Config config;
  config.Set("train.lr", 0.5);
  auto a = objective.Evaluate(config, 3, nullptr);
  EXPECT_GT(a.test_accuracy, 0.0);
  EXPECT_GT(a.checkpoint.NumParams(), 0);
  // Warm start continues improving (or at least not diverging).
  auto b = objective.Evaluate(config, 3, &a.checkpoint);
  EXPECT_LE(b.val_loss, a.val_loss + 0.3);
  EXPECT_EQ(objective.total_rounds(), 6);
}

TEST(FlObjectiveTest, SuccessiveHalvingOverRealCourses) {
  // The full §4.3 stack on a live federation: SHA evaluates cheap rungs,
  // keeps survivors, and *restores them from checkpoints* for the deeper
  // rungs. The winner must be competitive with the best single
  // full-budget run.
  FlObjective objective([]() {
    FedJob job = TwitterJob(96);
    job.server.concurrency = 8;
    return job;
  });
  SearchSpace space;
  space.AddDouble("train.lr", 0.005, 3.0, /*log=*/true);
  Rng rng(97);
  ShaOptions sha;
  sha.num_configs = 6;
  sha.eta = 3;
  sha.min_budget = 2;
  sha.num_rungs = 3;
  HpoResult result = RunSuccessiveHalving(space, &objective, sha, &rng);
  // 6 + 2 + 1 evaluations; total rounds 6*2 + 2*6 + 1*18 = 42.
  EXPECT_EQ(result.trace.size(), 9u);
  EXPECT_EQ(objective.total_rounds(), 42);
  EXPECT_GT(result.best_test_accuracy, 0.5);
  // Best-seen curve is monotone (bookkeeping across rungs is sound).
  double best = 1e300;
  for (const auto& event : result.trace) {
    EXPECT_LE(event.best_seen_val_loss, best + 1e-12);
    best = event.best_seen_val_loss;
  }
}

TEST(ConvergenceTest, KrumSurvivesPoisonedCourse) {
  // Byzantine robustness: three clients send hugely scaled updates; Krum
  // keeps the course converging where plain FedAvg is wrecked.
  //
  // Krum's guarantee assumes near-IID honest updates, so this test uses an
  // IID split. (On the strongly non-IID Twitter workload Krum's
  // central-update bias stalls learning even without attackers — the
  // documented heterogeneity limitation of distance-based rules.)
  SyntheticCifarOptions options;
  options.num_clients = 12;
  options.pool_size = 1200;
  options.alpha = 0.0;  // IID
  options.seed = 31;
  FedDataset data = MakeSyntheticCifar(options);

  auto run = [&](bool robust) {
    FedJob job;
    job.data = &data;
    Rng rng(32);
    Model model;
    model.Add("flat", std::make_unique<Flatten>());
    Model mlp = MakeMlp({3 * 8 * 8, 16, 10}, &rng);
    for (int i = 0; i < mlp.num_layers(); ++i) {
      model.Add(mlp.layer_name(i), mlp.layer(i)->Clone());
    }
    job.init_model = std::move(model);
    job.server.concurrency = 12;
    job.server.max_rounds = 12;
    job.client.train.lr = 0.1;
    job.client.train.local_steps = 4;
    job.client.train.batch_size = 16;
    job.seed = 32;
    if (robust) {
      job.aggregator_factory = []() {
        return std::make_unique<KrumAggregator>(/*num_malicious=*/3,
                                                /*multi_k=*/6);
      };
    }
    FedRunner runner(std::move(job));
    for (int id = 1; id <= 3; ++id) {
      runner.client(id)->set_update_poisoner([](StateDict* delta) {
        for (auto& [name, tensor] : *delta) {
          ScaleInPlace(&tensor, -50.0f);
        }
      });
    }
    return runner.Run().server.final_accuracy;
  };
  const double robust_acc = run(true);
  const double naive_acc = run(false);
  EXPECT_GT(robust_acc, 0.7);
  EXPECT_GT(robust_acc, naive_acc + 0.1);
}

TEST(FlObjectiveTest, PbtOverRealCourses) {
  // PBT's exploit/explore over live federations: losers adopt winners'
  // checkpoints + perturbed configs between training segments.
  FlObjective objective([]() {
    FedJob job = TwitterJob(99);
    job.server.concurrency = 8;
    return job;
  });
  SearchSpace space;
  space.AddDouble("train.lr", 0.005, 3.0, /*log=*/true);
  Rng rng(100);
  PbtOptions pbt;
  pbt.population = 4;
  pbt.step_budget = 2;
  pbt.num_steps = 3;
  HpoResult result = RunPbt(space, &objective, pbt, &rng);
  EXPECT_EQ(result.trace.size(), 12u);
  EXPECT_EQ(objective.total_rounds(), 24);
  EXPECT_GT(result.best_test_accuracy, 0.5);
}

TEST(FlObjectiveTest, RandomSearchOverRealCourses) {
  FlObjective objective([]() {
    FedJob job = TwitterJob(94);
    job.server.concurrency = 6;
    return job;
  });
  SearchSpace space;
  space.AddDouble("train.lr", 0.01, 2.0, true);
  Rng rng(95);
  HpoResult result = RunRandomSearch(space, &objective, 4, 4, &rng);
  EXPECT_EQ(result.trace.size(), 4u);
  EXPECT_LT(result.best_val_loss, 1e300);
  EXPECT_GT(result.best_test_accuracy, 0.3);
}

}  // namespace
}  // namespace fedscope
