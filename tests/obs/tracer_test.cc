#include "fedscope/obs/tracer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace fedscope {
namespace {

TEST(TracerTest, RecordsSpansAndInstants) {
  Tracer tracer;
  tracer.Span("round", 1.0, 2.5, 0, {{"trigger", "all_received"}});
  tracer.Instant("eval", 3.5, 0);
  ASSERT_EQ(tracer.num_events(), 2);
  const TraceEvent& span = tracer.events()[0];
  EXPECT_EQ(span.name, "round");
  EXPECT_EQ(span.phase, 'X');
  EXPECT_EQ(span.ts_us, 1000000);
  EXPECT_EQ(span.dur_us, 2500000);
  ASSERT_EQ(span.args.size(), 1u);
  EXPECT_EQ(span.args[0].first, "trigger");
  const TraceEvent& instant = tracer.events()[1];
  EXPECT_EQ(instant.phase, 'i');
  EXPECT_EQ(instant.ts_us, 3500000);
  EXPECT_EQ(instant.dur_us, 0);
  tracer.Clear();
  EXPECT_EQ(tracer.num_events(), 0);
}

TEST(TracerTest, ChromeJsonFormat) {
  Tracer tracer;
  tracer.Span("client_round", 0.5, 1.0, 3, {{"round", "2"}});
  tracer.Instant("finish", 2.0, 0);
  const std::string json = tracer.ToChromeJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("{\"name\":\"client_round\",\"ph\":\"X\",\"ts\":500000,"
                      "\"dur\":1000000,\"pid\":1,\"tid\":3,"
                      "\"args\":{\"round\":\"2\"}}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"finish\",\"ph\":\"i\",\"ts\":2000000,"
                      "\"pid\":1,\"tid\":0,\"s\":\"t\"}"),
            std::string::npos);
  EXPECT_EQ(json.substr(json.size() - 4), "}\n]\n") << json;
}

TEST(TracerTest, JsonEscapesSpecialCharacters) {
  Tracer tracer;
  tracer.Instant("quote\" back\\slash\nnewline\ttab", 0.0);
  const std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find("quote\\\" back\\\\slash\\nnewline\\ttab"),
            std::string::npos);
  Tracer control;
  control.Instant(std::string("ctl\x01x", 5), 0.0);
  EXPECT_NE(control.ToChromeJson().find("ctl\\u0001x"), std::string::npos);
}

TEST(TracerTest, IdenticalEventSequencesSerializeIdentically) {
  auto build = [] {
    Tracer tracer;
    tracer.Span("a", 0.0, 1.0, 1);
    tracer.Span("b", 1.0, 0.5, 2, {{"k", "v"}});
    tracer.Instant("c", 2.0, 0);
    return tracer;
  };
  Tracer t1 = build();
  Tracer t2 = build();
  EXPECT_EQ(t1.events(), t2.events());
  EXPECT_EQ(t1.ToChromeJson(), t2.ToChromeJson());
}

TEST(ScopedSpanTest, EmitsOnDestruction) {
  Tracer tracer;
  {
    ScopedSpan span(&tracer, "course", 1.0, 0);
    span.set_end(4.0);
    span.AddArg("rounds", "8");
    EXPECT_EQ(tracer.num_events(), 0);  // nothing until scope exit
  }
  ASSERT_EQ(tracer.num_events(), 1);
  const TraceEvent& event = tracer.events()[0];
  EXPECT_EQ(event.name, "course");
  EXPECT_EQ(event.ts_us, 1000000);
  EXPECT_EQ(event.dur_us, 3000000);
  ASSERT_EQ(event.args.size(), 1u);
  EXPECT_EQ(event.args[0].second, "8");
}

TEST(ScopedSpanTest, DefaultsToZeroDurationAndClampsEnd) {
  Tracer tracer;
  { ScopedSpan span(&tracer, "no_end", 2.0); }
  {
    ScopedSpan span(&tracer, "backwards", 5.0);
    span.set_end(1.0);  // precedes begin -> clamped
  }
  ASSERT_EQ(tracer.num_events(), 2);
  EXPECT_EQ(tracer.events()[0].dur_us, 0);
  EXPECT_EQ(tracer.events()[1].dur_us, 0);
  EXPECT_EQ(tracer.events()[1].ts_us, 5000000);
}

TEST(ScopedSpanTest, NullTracerIsInert) {
  ScopedSpan span(nullptr, "noop", 0.0);
  span.set_end(1.0);
  span.AddArg("k", "v");
  // Destruction must not crash; nothing to assert beyond surviving.
}

TEST(TracerTest, WriteChromeJsonRoundTrips) {
  Tracer tracer;
  tracer.Span("io", 0.0, 1.0);
  const std::string path = ::testing::TempDir() + "/trace.json";
  ASSERT_TRUE(tracer.WriteChromeJson(path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), tracer.ToChromeJson());
  std::remove(path.c_str());
}

TEST(WallTimeTest, MonotonicNonNegative) {
  const double a = WallTimeSeconds();
  const double b = WallTimeSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace fedscope
