#include "fedscope/obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace fedscope {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0.0);
  c.Increment();
  c.Increment(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
}

TEST(CounterTest, NegativeDeltaDies) {
  Counter c;
  EXPECT_DEATH(c.Increment(-1.0), "");
}

TEST(GaugeTest, SetAddAndMax) {
  Gauge g;
  g.Set(5.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.Add(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.SetMax(10.0);
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
  g.SetMax(1.0);  // lower value is ignored
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
}

TEST(HistogramTest, ObservationsLandInCorrectBuckets) {
  HistogramMetric h({1.0, 2.0, 5.0});
  h.Observe(0.5);   // <= 1      -> bucket 0
  h.Observe(1.0);   // <= 1      -> bucket 0 (inclusive upper bound)
  h.Observe(1.5);   // <= 2      -> bucket 1
  h.Observe(4.0);   // <= 5      -> bucket 2
  h.Observe(100.0);  // overflow -> bucket 3 (+inf)
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.sum(), 107.0);
  EXPECT_EQ(h.bucket_count(0), 2);
  EXPECT_EQ(h.bucket_count(1), 1);
  EXPECT_EQ(h.bucket_count(2), 1);
  EXPECT_EQ(h.bucket_count(3), 1);
}

TEST(HistogramTest, UnsortedBoundsDie) {
  EXPECT_DEATH(HistogramMetric({2.0, 1.0}), "");
  EXPECT_DEATH(HistogramMetric({}), "");
}

TEST(FormatMetricValueTest, IntegersDropDecimalPoint) {
  EXPECT_EQ(FormatMetricValue(0.0), "0");
  EXPECT_EQ(FormatMetricValue(42.0), "42");
  EXPECT_EQ(FormatMetricValue(-7.0), "-7");
  EXPECT_EQ(FormatMetricValue(0.5), "0.5");
  EXPECT_EQ(FormatMetricValue(0.125), "0.125");
}

TEST(MetricsRegistryTest, ReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* c1 = registry.GetCounter("msgs", {{"type", "a"}});
  Counter* c2 = registry.GetCounter("msgs", {{"type", "a"}});
  Counter* c3 = registry.GetCounter("msgs", {{"type", "b"}});
  EXPECT_EQ(c1, c2);
  EXPECT_NE(c1, c3);
  c1->Increment(3);
  EXPECT_DOUBLE_EQ(registry.CounterValue("msgs", {{"type", "a"}}), 3.0);
  EXPECT_DOUBLE_EQ(registry.CounterValue("msgs", {{"type", "b"}}), 0.0);
  EXPECT_DOUBLE_EQ(registry.CounterValue("absent"), 0.0);
}

TEST(MetricsRegistryTest, SumCountersSpansLabelCombinations) {
  MetricsRegistry registry;
  registry.GetCounter("updates", {{"codec", "none"}})->Increment(2);
  registry.GetCounter("updates", {{"codec", "topk"}})->Increment(5);
  registry.GetCounter("updates2", {{"codec", "none"}})->Increment(100);
  EXPECT_DOUBLE_EQ(registry.SumCounters("updates"), 7.0);
  EXPECT_DOUBLE_EQ(registry.SumCounters("missing"), 0.0);
}

TEST(MetricsRegistryTest, KindCollisionDies) {
  MetricsRegistry registry;
  registry.GetCounter("series");
  EXPECT_DEATH(registry.GetGauge("series"), "already registered");
}

TEST(MetricsRegistryTest, ClearAndNumSeries) {
  MetricsRegistry registry;
  registry.GetCounter("a");
  registry.GetGauge("b");
  registry.GetHistogram("c", {1.0});
  EXPECT_EQ(registry.num_series(), 3);
  registry.Clear();
  EXPECT_EQ(registry.num_series(), 0);
  // After Clear the name may be re-registered with a different kind.
  registry.GetGauge("a");
  EXPECT_EQ(registry.num_series(), 1);
}

TEST(MetricsSnapshotTest, SamplesSortedByNameThenLabels) {
  MetricsRegistry registry;
  registry.GetCounter("z_metric")->Increment();
  registry.GetGauge("a_metric", {{"id", "2"}})->Set(2);
  registry.GetGauge("a_metric", {{"id", "1"}})->Set(1);
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.samples.size(), 3u);
  EXPECT_EQ(snapshot.samples[0].name, "a_metric");
  EXPECT_EQ(snapshot.samples[0].labels.at("id"), "1");
  EXPECT_EQ(snapshot.samples[1].labels.at("id"), "2");
  EXPECT_EQ(snapshot.samples[2].name, "z_metric");
  const MetricSample* found = snapshot.Find("a_metric", {{"id", "2"}});
  ASSERT_NE(found, nullptr);
  EXPECT_DOUBLE_EQ(found->value, 2.0);
  EXPECT_EQ(snapshot.Find("a_metric", {{"id", "9"}}), nullptr);
}

TEST(MetricsSnapshotTest, PrometheusTextFormat) {
  MetricsRegistry registry;
  registry.GetCounter("fs_msgs_total", {{"type", "model_update"}})
      ->Increment(12);
  registry.GetGauge("fs_depth")->Set(3);
  MetricsSnapshot snapshot = registry.Snapshot();
  const std::string text = snapshot.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE fs_msgs_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("fs_msgs_total{type=\"model_update\"} 12\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE fs_depth gauge\nfs_depth 3\n"),
            std::string::npos);
}

TEST(MetricsSnapshotTest, PrometheusHistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  HistogramMetric* h = registry.GetHistogram("fs_lat", {1.0, 5.0});
  h->Observe(0.5);
  h->Observe(0.5);
  h->Observe(3.0);
  h->Observe(9.0);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("fs_lat_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("fs_lat_bucket{le=\"5\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("fs_lat_bucket{le=\"+Inf\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("fs_lat_sum 13\n"), std::string::npos);
  EXPECT_NE(text.find("fs_lat_count 4\n"), std::string::npos);
}

TEST(MetricsSnapshotTest, CsvExpandsHistogramRows) {
  MetricsRegistry registry;
  registry.GetHistogram("h", {2.0}, {{"k", "v"}})->Observe(1.0);
  registry.GetCounter("c")->Increment();
  const std::string csv = registry.Csv();
  std::istringstream is(csv);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "name,kind,labels,field,value");
  EXPECT_NE(csv.find("c,counter,,value,1\n"), std::string::npos);
  EXPECT_NE(csv.find("h,histogram,k=v,le=2,1\n"), std::string::npos);
  EXPECT_NE(csv.find("h,histogram,k=v,le=+Inf,0\n"), std::string::npos);
  EXPECT_NE(csv.find("h,histogram,k=v,sum,1\n"), std::string::npos);
  EXPECT_NE(csv.find("h,histogram,k=v,count,1\n"), std::string::npos);
}

TEST(MetricsSnapshotTest, IdenticalRegistriesProduceIdenticalText) {
  auto build = [] {
    MetricsRegistry registry;
    registry.GetCounter("a", {{"x", "1"}})->Increment(4);
    registry.GetGauge("b")->Set(0.25);
    registry.GetHistogram("c", {1.0, 2.0})->Observe(1.5);
    return registry.PrometheusText();
  };
  EXPECT_EQ(build(), build());
}

TEST(MetricsRegistryTest, WritePrometheusTextRoundTrips) {
  MetricsRegistry registry;
  registry.GetCounter("file_metric")->Increment(7);
  const std::string path = ::testing::TempDir() + "/metrics.prom";
  ASSERT_TRUE(registry.WritePrometheusText(path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), registry.PrometheusText());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fedscope
