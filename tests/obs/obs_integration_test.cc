#include <gtest/gtest.h>

#include "fedscope/core/events.h"
#include "fedscope/core/fed_runner.h"
#include "fedscope/data/synthetic_cifar.h"
#include "fedscope/nn/model_zoo.h"
#include "fedscope/obs/course_log.h"
#include "fedscope/obs/metrics.h"
#include "fedscope/obs/obs_context.h"
#include "fedscope/obs/tracer.h"

namespace fedscope {
namespace {

/// Full observability stack for one run (owns what ObsContext borrows).
struct ObsStack {
  MetricsRegistry metrics;
  Tracer tracer;
  CourseLog course_log;

  ObsContext context() { return ObsContext{&metrics, &tracer, &course_log}; }
};

FedDataset SmallData(uint64_t seed = 2) {
  SyntheticCifarOptions options;
  options.num_clients = 6;
  options.pool_size = 240;
  options.alpha = 1.0;
  options.image_size = 8;
  options.server_test_size = 96;
  options.seed = seed;
  return MakeSyntheticCifar(options);
}

FedJob SmallJob(const FedDataset* data, uint64_t seed = 11) {
  Rng rng(seed);
  FedJob job;
  job.data = data;
  Model m;
  m.Add("flat", std::make_unique<Flatten>());
  Model mlp = MakeMlp({3 * 8 * 8, 16, 10}, &rng);
  for (int i = 0; i < mlp.num_layers(); ++i) {
    m.Add(mlp.layer_name(i), mlp.layer(i)->Clone());
  }
  job.init_model = std::move(m);
  job.server.concurrency = 3;
  job.server.max_rounds = 4;
  job.client.train.lr = 0.1;
  job.client.train.local_steps = 2;
  job.client.train.batch_size = 8;
  job.client.jitter_sigma = 0.1;
  job.seed = seed;
  return job;
}

TEST(ObsIntegrationTest, AttachedObsDoesNotChangeTheCourse) {
  FedDataset data = SmallData();
  RunResult plain = FedRunner(SmallJob(&data, 5)).Run();

  ObsStack obs;
  FedJob job = SmallJob(&data, 5);
  job.obs = obs.context();
  RunResult observed = FedRunner(std::move(job)).Run();

  EXPECT_TRUE(plain.final_model.GetStateDict() ==
              observed.final_model.GetStateDict());
  ASSERT_EQ(plain.server.curve.size(), observed.server.curve.size());
  for (size_t i = 0; i < plain.server.curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(plain.server.curve[i].first,
                     observed.server.curve[i].first);
    EXPECT_DOUBLE_EQ(plain.server.curve[i].second,
                     observed.server.curve[i].second);
  }
  EXPECT_EQ(plain.server.agg_count, observed.server.agg_count);
  EXPECT_EQ(plain.server.staleness_log, observed.server.staleness_log);
}

TEST(ObsIntegrationTest, SameSeedRunsProduceIdenticalObservations) {
  // Standalone observations are keyed to virtual time only; any wall-clock
  // leakage would make these exports differ between runs.
  FedDataset data = SmallData();
  auto observe = [&data] {
    ObsStack obs;
    FedJob job = SmallJob(&data, 7);
    job.obs = obs.context();
    FedRunner(std::move(job)).Run();
    return std::make_tuple(obs.metrics.PrometheusText(), obs.metrics.Csv(),
                           obs.tracer.ToChromeJson(), obs.course_log.ToJsonl(),
                           obs.course_log.ToCsv());
  };
  EXPECT_EQ(observe(), observe());
}

TEST(ObsIntegrationTest, CourseLogMatchesServerStats) {
  FedDataset data = SmallData();
  ObsStack obs;
  FedJob job = SmallJob(&data, 9);
  job.obs = obs.context();
  RunResult result = FedRunner(std::move(job)).Run();

  EXPECT_EQ(obs.course_log.num_rounds(), result.server.rounds);
  // Figure 10 / Figure 11 quantities must be reproducible from the log.
  EXPECT_EQ(obs.course_log.AggCountPerClient(data.num_clients()),
            result.server.agg_count);
  EXPECT_EQ(obs.course_log.AllStaleness(), result.server.staleness_log);
  EXPECT_GT(obs.course_log.TotalUplinkBytes(), 0);
  EXPECT_GT(obs.course_log.TotalDownlinkBytes(), 0);
  for (const auto& round : obs.course_log.rounds()) {
    EXPECT_EQ(round.trigger, events::kAllReceived);
    EXPECT_EQ(round.contributors.size(), round.staleness.size());
    EXPECT_TRUE(round.evaluated);  // eval_interval defaults to 1
  }
}

TEST(ObsIntegrationTest, MetricsCoverTrafficAndLifecycle) {
  FedDataset data = SmallData();
  ObsStack obs;
  FedJob job = SmallJob(&data, 13);
  job.obs = obs.context();
  RunResult result = FedRunner(std::move(job)).Run();

  // Every queue push is eventually dispatched (the run drains the queue).
  EXPECT_EQ(obs.metrics.SumCounters("fs_sim_events_pushed_total"),
            obs.metrics.SumCounters("fs_sim_events_dispatched_total"));
  EXPECT_GT(obs.metrics.SumCounters("fs_comm_messages_total"), 0.0);
  EXPECT_GT(obs.metrics.SumCounters("fs_comm_payload_bytes_total"), 0.0);
  EXPECT_GT(
      obs.metrics.CounterValue("fs_comm_messages_total",
                               {{"type", events::kModelUpdate}}),
      0.0);

  MetricsSnapshot snapshot = obs.metrics.Snapshot();
  const MetricSample* staleness = snapshot.Find("fs_server_staleness");
  ASSERT_NE(staleness, nullptr);
  EXPECT_EQ(static_cast<size_t>(staleness->value),
            result.server.staleness_log.size());
  const MetricSample* rounds = snapshot.Find("fs_course_rounds");
  ASSERT_NE(rounds, nullptr);
  EXPECT_EQ(static_cast<int>(rounds->value), result.server.rounds);
  const MetricSample* accuracy = snapshot.Find("fs_course_final_accuracy");
  ASSERT_NE(accuracy, nullptr);
  EXPECT_DOUBLE_EQ(accuracy->value, result.server.final_accuracy);

  // Per-client aggregation counters reproduce ServerStats::agg_count.
  for (int id = 1; id <= data.num_clients(); ++id) {
    EXPECT_DOUBLE_EQ(
        obs.metrics.CounterValue("fs_server_agg_contributions_total",
                                 {{"client", std::to_string(id)}}),
        static_cast<double>(result.server.agg_count[id]))
        << "client " << id;
  }
}

TEST(ObsIntegrationTest, TracerRecordsCourseAndRoundSpans) {
  FedDataset data = SmallData();
  ObsStack obs;
  FedJob job = SmallJob(&data, 17);
  job.obs = obs.context();
  RunResult result = FedRunner(std::move(job)).Run();

  int course_spans = 0, round_spans = 0, client_spans = 0;
  for (const TraceEvent& event : obs.tracer.events()) {
    if (event.name == "fl_course") ++course_spans;
    if (event.name.rfind("round ", 0) == 0) ++round_spans;
    if (event.name == "client_round") ++client_spans;
    EXPECT_GE(event.ts_us, 0);
    EXPECT_GE(event.dur_us, 0);
  }
  EXPECT_EQ(course_spans, 1);
  EXPECT_EQ(round_spans, result.server.rounds);
  EXPECT_EQ(client_spans,
            static_cast<int>(result.server.staleness_log.size()));
}

TEST(ObsIntegrationTest, AsyncStalenessFlowsIntoLogAndHistogram) {
  FedDataset data = SmallData(3);
  ObsStack obs;
  FedJob job = SmallJob(&data, 21);
  job.server.strategy = Strategy::kAsyncGoal;
  job.server.broadcast = BroadcastManner::kAfterReceiving;
  job.server.aggregation_goal = 2;
  job.server.staleness_tolerance = 8;
  job.server.max_rounds = 6;
  job.client.jitter_sigma = 0.5;  // heterogeneous latencies -> staleness
  job.obs = obs.context();
  RunResult result = FedRunner(std::move(job)).Run();

  EXPECT_EQ(obs.course_log.AllStaleness(), result.server.staleness_log);
  for (const auto& round : obs.course_log.rounds()) {
    EXPECT_EQ(round.trigger, events::kGoalAchieved);
  }
  const MetricSample* staleness =
      obs.metrics.Snapshot().Find("fs_server_staleness");
  ASSERT_NE(staleness, nullptr);
  EXPECT_EQ(static_cast<size_t>(staleness->value),
            result.server.staleness_log.size());
}

}  // namespace
}  // namespace fedscope
