#include "fedscope/obs/course_log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace fedscope {
namespace {

CourseRoundRecord MakeRound(int round, std::vector<int> contributors,
                            std::vector<int> staleness) {
  CourseRoundRecord r;
  r.round = round;
  r.trigger = "all_received";
  r.time = 10.0 * round;
  r.contributors = std::move(contributors);
  r.staleness = std::move(staleness);
  r.uplink_bytes = 100 * round;
  r.downlink_bytes = 200 * round;
  r.broadcasts = static_cast<int>(r.contributors.size());
  return r;
}

TEST(CourseLogTest, AppendsAndAggregates) {
  CourseLog log;
  log.Append(MakeRound(1, {1, 2, 3}, {0, 0, 1}));
  log.Append(MakeRound(2, {2, 3}, {0, 2}));
  EXPECT_EQ(log.num_rounds(), 2);
  EXPECT_EQ(log.TotalContributions(), 5);
  EXPECT_EQ(log.TotalUplinkBytes(), 300);
  EXPECT_EQ(log.TotalDownlinkBytes(), 600);
  EXPECT_EQ(log.AllStaleness(), (std::vector<int>{0, 0, 1, 0, 2}));
  log.Clear();
  EXPECT_EQ(log.num_rounds(), 0);
}

TEST(CourseLogTest, AggCountPerClientIsOneBased) {
  CourseLog log;
  log.Append(MakeRound(1, {1, 3}, {0, 0}));
  log.Append(MakeRound(2, {3}, {1}));
  const std::vector<int64_t> counts = log.AggCountPerClient(4);
  ASSERT_EQ(counts.size(), 5u);  // index 0 unused
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 0);
  EXPECT_EQ(counts[3], 2);
  EXPECT_EQ(counts[4], 0);
}

TEST(CourseLogTest, JsonlOneObjectPerRound) {
  CourseLog log;
  CourseRoundRecord r = MakeRound(1, {4, 7}, {0, 1});
  r.dropped_stale = 1;
  r.declined = 2;
  r.evaluated = true;
  r.eval_accuracy = 0.75;
  r.eval_loss = 0.5;
  log.Append(r);
  log.Append(MakeRound(2, {4}, {0}));  // not evaluated
  const std::string jsonl = log.ToJsonl();
  std::istringstream is(jsonl);
  std::string line1, line2;
  ASSERT_TRUE(std::getline(is, line1));
  ASSERT_TRUE(std::getline(is, line2));
  EXPECT_EQ(line1,
            "{\"round\":1,\"trigger\":\"all_received\",\"time\":10.000000,"
            "\"contributors\":[4,7],\"staleness\":[0,1],\"uplink_bytes\":100,"
            "\"downlink_bytes\":200,\"broadcasts\":2,\"dropped_stale\":1,"
            "\"declined\":2,\"evaluated\":true,\"eval_accuracy\":0.75,"
            "\"eval_loss\":0.5}");
  // Eval fields are omitted for unevaluated rounds.
  EXPECT_EQ(line2.find("eval_accuracy"), std::string::npos);
  EXPECT_NE(line2.find("\"evaluated\":false"), std::string::npos);
  // Fault fields are omitted for fault-free rounds (both lines above), and
  // appear when a round saw dropouts or replacements.
  EXPECT_EQ(line1.find("dropouts"), std::string::npos);
  CourseRoundRecord faulty = MakeRound(3, {4}, {0});
  faulty.dropouts = 2;
  faulty.replacements = 1;
  log.Append(faulty);
  const std::string jsonl3 = log.ToJsonl();
  EXPECT_NE(jsonl3.find("\"dropouts\":2,\"replacements\":1"),
            std::string::npos);
}

TEST(CourseLogTest, CsvHeaderAndJoinedCells) {
  CourseLog log;
  log.Append(MakeRound(1, {1, 2}, {0, 3}));
  const std::string csv = log.ToCsv();
  std::istringstream is(csv);
  std::string header, row;
  ASSERT_TRUE(std::getline(is, header));
  ASSERT_TRUE(std::getline(is, row));
  EXPECT_EQ(header,
            "round,trigger,time,contributors,staleness,uplink_bytes,"
            "downlink_bytes,broadcasts,dropped_stale,declined,dropouts,"
            "replacements,snapshots,snapshot_bytes,evaluated,eval_accuracy,"
            "eval_loss");
  EXPECT_EQ(row,
            "1,all_received,10.000000,1;2,0;3,100,200,2,0,0,0,0,0,0,0,,");
}

TEST(CourseLogTest, TopologyColumnsAppearOnlyInHierarchicalCourses) {
  // Flat courses (no partials, no failovers) keep the pre-topology export
  // format byte-for-byte; a hierarchical course grows the extra columns in
  // every row.
  CourseLog flat;
  flat.Append(MakeRound(1, {1, 2}, {0, 0}));
  EXPECT_EQ(flat.ToCsv().find("partial_updates"), std::string::npos);
  EXPECT_EQ(flat.ToJsonl().find("shard_failovers"), std::string::npos);

  CourseLog sharded;
  sharded.Append(MakeRound(1, {1, 2}, {0, 0}));  // pre-failover round
  CourseRoundRecord r = MakeRound(2, {1, 2}, {0, 0});
  r.partial_updates = 2;
  r.shard_failovers = 1;
  sharded.Append(r);
  const std::string jsonl = sharded.ToJsonl();
  EXPECT_NE(jsonl.find("\"partial_updates\":2,\"shard_failovers\":1"),
            std::string::npos);
  const std::string csv = sharded.ToCsv();
  std::istringstream is(csv);
  std::string header, row1, row2;
  ASSERT_TRUE(std::getline(is, header));
  ASSERT_TRUE(std::getline(is, row1));
  ASSERT_TRUE(std::getline(is, row2));
  EXPECT_NE(header.find("replacements,partial_updates,shard_failovers,"
                        "snapshots"),
            std::string::npos);
  // Once any round has topology activity, every row carries the columns
  // (zeros elsewhere) so the CSV stays rectangular.
  EXPECT_EQ(row1, "1,all_received,10.000000,1;2,0;0,100,200,2,0,0,0,0,0,0,"
                  "0,0,0,,");
  EXPECT_EQ(row2, "2,all_received,20.000000,1;2,0;0,200,400,2,0,0,0,0,2,1,"
                  "0,0,0,,");
}

TEST(CourseLogTest, AnnotateSnapshotMarksLastRoundOnly) {
  CourseLog log;
  log.AnnotateSnapshot(123);  // empty log: no-op, no crash
  log.Append(MakeRound(1, {1}, {0}));
  log.Append(MakeRound(2, {2}, {0}));
  log.AnnotateSnapshot(4096);
  EXPECT_EQ(log.rounds()[0].snapshots, 0);
  EXPECT_EQ(log.rounds()[1].snapshots, 1);
  EXPECT_EQ(log.rounds()[1].snapshot_bytes, 4096);
  const std::string jsonl = log.ToJsonl();
  std::istringstream is(jsonl);
  std::string line1, line2;
  ASSERT_TRUE(std::getline(is, line1));
  ASSERT_TRUE(std::getline(is, line2));
  // Snapshot keys appear only on the snapshotted round.
  EXPECT_EQ(line1.find("snapshots"), std::string::npos);
  EXPECT_NE(line2.find("\"snapshots\":1,\"snapshot_bytes\":4096"),
            std::string::npos);
}

TEST(CourseLogTest, IdenticalLogsExportIdentically) {
  auto build = [] {
    CourseLog log;
    log.Append(MakeRound(1, {1}, {0}));
    log.Append(MakeRound(2, {2, 3}, {1, 0}));
    return log;
  };
  EXPECT_EQ(build().ToJsonl(), build().ToJsonl());
  EXPECT_EQ(build().ToCsv(), build().ToCsv());
}

TEST(CourseLogTest, WriteFilesRoundTrip) {
  CourseLog log;
  log.Append(MakeRound(1, {1}, {0}));
  const std::string jsonl_path = ::testing::TempDir() + "/course.jsonl";
  const std::string csv_path = ::testing::TempDir() + "/course.csv";
  ASSERT_TRUE(log.WriteJsonl(jsonl_path).ok());
  ASSERT_TRUE(log.WriteCsv(csv_path).ok());
  auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  EXPECT_EQ(slurp(jsonl_path), log.ToJsonl());
  EXPECT_EQ(slurp(csv_path), log.ToCsv());
  std::remove(jsonl_path.c_str());
  std::remove(csv_path.c_str());
}

}  // namespace
}  // namespace fedscope
