#include "fedscope/tensor/kernels.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "fedscope/nn/layers.h"
#include "fedscope/tensor/tensor.h"
#include "fedscope/tensor/tensor_ops.h"
#include "fedscope/util/rng.h"

namespace fedscope {
namespace {

std::vector<float> RandVec(int64_t n, Rng* rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng->Normal());
  return v;
}

// Edge shapes around the register-block sizes (MR=8, NR=32): unit dims, odd
// dims, exact multiples, just over a tile, and k = 0.
struct Shape {
  int64_t m, n, k;
};
const Shape kShapes[] = {{1, 1, 1},   {1, 33, 7},  {3, 5, 1},   {8, 32, 16},
                         {9, 33, 17}, {16, 64, 8}, {17, 70, 40}, {5, 2, 0},
                         {64, 48, 96}};

TEST(KernelsTest, GemmMatchesReferenceExactly) {
  Rng rng(101);
  for (const Shape& s : kShapes) {
    std::vector<float> a = RandVec(s.m * s.k, &rng);
    std::vector<float> b = RandVec(s.k * s.n, &rng);
    std::vector<float> c_tiled(s.m * s.n, 0.0f);
    std::vector<float> c_ref(s.m * s.n, 0.0f);
    kernels::Gemm(s.m, s.n, s.k, a.data(), b.data(), c_tiled.data());
    kernels::GemmReference(s.m, s.n, s.k, a.data(), b.data(), c_ref.data());
    for (int64_t i = 0; i < s.m * s.n; ++i) {
      ASSERT_EQ(c_tiled[i], c_ref[i])
          << "m=" << s.m << " n=" << s.n << " k=" << s.k << " at " << i;
    }
  }
}

TEST(KernelsTest, GemmTransAMatchesReferenceExactly) {
  Rng rng(102);
  for (const Shape& s : kShapes) {
    std::vector<float> a = RandVec(s.k * s.m, &rng);  // [k, m]
    std::vector<float> b = RandVec(s.k * s.n, &rng);
    std::vector<float> c_tiled(s.m * s.n, 0.0f);
    std::vector<float> c_ref(s.m * s.n, 0.0f);
    kernels::GemmTransA(s.m, s.n, s.k, a.data(), b.data(), c_tiled.data());
    kernels::GemmTransAReference(s.m, s.n, s.k, a.data(), b.data(),
                                 c_ref.data());
    for (int64_t i = 0; i < s.m * s.n; ++i) {
      ASSERT_EQ(c_tiled[i], c_ref[i])
          << "m=" << s.m << " n=" << s.n << " k=" << s.k << " at " << i;
    }
  }
}

TEST(KernelsTest, GemmTransBMatchesReferenceExactly) {
  Rng rng(103);
  for (const Shape& s : kShapes) {
    std::vector<float> a = RandVec(s.m * s.k, &rng);
    std::vector<float> b = RandVec(s.n * s.k, &rng);  // [n, k]
    std::vector<float> c_tiled(s.m * s.n, 0.0f);
    std::vector<float> c_ref(s.m * s.n, 0.0f);
    kernels::GemmTransB(s.m, s.n, s.k, a.data(), b.data(), c_tiled.data());
    kernels::GemmTransBReference(s.m, s.n, s.k, a.data(), b.data(),
                                 c_ref.data());
    for (int64_t i = 0; i < s.m * s.n; ++i) {
      ASSERT_EQ(c_tiled[i], c_ref[i])
          << "m=" << s.m << " n=" << s.n << " k=" << s.k << " at " << i;
    }
  }
}

TEST(KernelsTest, GemmAccumulatesIntoC) {
  std::vector<float> a = {1.0f, 2.0f};           // [1, 2]
  std::vector<float> b = {3.0f, 4.0f};           // [2, 1]
  std::vector<float> c = {10.0f};                // pre-seeded
  kernels::Gemm(1, 1, 2, a.data(), b.data(), c.data());
  EXPECT_EQ(c[0], 10.0f + 3.0f + 8.0f);
}

TEST(KernelsTest, GemmKZeroLeavesCUntouched) {
  std::vector<float> a(1), b(1);
  std::vector<float> c = {7.0f, -1.0f};
  kernels::Gemm(1, 2, 0, a.data(), b.data(), c.data());
  EXPECT_EQ(c[0], 7.0f);
  EXPECT_EQ(c[1], -1.0f);
}

TEST(KernelsTest, GemmIsDeterministicAcrossRuns) {
  Rng rng(104);
  std::vector<float> a = RandVec(17 * 40, &rng);
  std::vector<float> b = RandVec(40 * 70, &rng);
  std::vector<float> c1(17 * 70, 0.0f), c2(17 * 70, 0.0f);
  kernels::Gemm(17, 70, 40, a.data(), b.data(), c1.data());
  kernels::Gemm(17, 70, 40, a.data(), b.data(), c2.data());
  EXPECT_EQ(c1, c2);
}

TEST(KernelsTest, Im2ColRoundTripsThroughCol2Im) {
  // With kernel=1, pad=0 the column matrix IS the image; col2im must
  // scatter it back exactly (accumulating onto zeros).
  Rng rng(105);
  const int64_t c = 2, h = 4, w = 5;
  std::vector<float> im = RandVec(c * h * w, &rng);
  std::vector<float> cols(c * h * w);
  kernels::Im2Col(im.data(), c, h, w, 1, 0, cols.data());
  EXPECT_EQ(cols, im);
  std::vector<float> back(c * h * w, 0.0f);
  kernels::Col2Im(cols.data(), c, h, w, 1, 0, back.data());
  EXPECT_EQ(back, im);
}

TEST(KernelsTest, Im2ColMatchesDirectGather) {
  Rng rng(106);
  const int64_t c = 3, h = 5, w = 4, k = 3, p = 1;
  const int64_t oh = kernels::ConvOutDim(h, k, p);
  const int64_t ow = kernels::ConvOutDim(w, k, p);
  std::vector<float> im = RandVec(c * h * w, &rng);
  std::vector<float> cols(c * k * k * oh * ow);
  kernels::Im2Col(im.data(), c, h, w, k, p, cols.data());
  for (int64_t ic = 0; ic < c; ++ic) {
    for (int64_t kh = 0; kh < k; ++kh) {
      for (int64_t kw = 0; kw < k; ++kw) {
        for (int64_t y = 0; y < oh; ++y) {
          for (int64_t x = 0; x < ow; ++x) {
            const int64_t ih = y + kh - p, iw = x + kw - p;
            const float want =
                (ih < 0 || ih >= h || iw < 0 || iw >= w)
                    ? 0.0f
                    : im[(ic * h + ih) * w + iw];
            const int64_t row = (ic * k + kh) * k + kw;
            ASSERT_EQ(cols[row * oh * ow + y * ow + x], want)
                << ic << "," << kh << "," << kw << "," << y << "," << x;
          }
        }
      }
    }
  }
}

// Conv2d layer (im2col + GEMM) vs the direct 7-loop reference kernel.
TEST(KernelsTest, Conv2dForwardMatchesDirectReference) {
  Rng rng(107);
  const int64_t batch = 2, ic = 3, oc = 5, hw = 7, k = 3, p = 1;
  Conv2d conv(ic, oc, k, p, &rng);
  Tensor x = Tensor::Randn({batch, ic, hw, hw}, &rng);
  Tensor y = conv.Forward(x, true);

  // Pull the layer's weights through its param refs.
  std::vector<ParamRef> params;
  conv.CollectParams("conv", &params);
  const Tensor& weight = *params[0].value;
  const Tensor& bias = *params[1].value;

  const int64_t oh = kernels::ConvOutDim(hw, k, p);
  const int64_t ow = oh;
  std::vector<float> want(oc * oh * ow);
  for (int64_t n = 0; n < batch; ++n) {
    kernels::Conv2dForwardReference(x.data() + n * ic * hw * hw,
                                    weight.data(), bias.data(), ic, hw, hw,
                                    oc, k, p, want.data());
    for (int64_t i = 0; i < oc * oh * ow; ++i) {
      ASSERT_NEAR(y.data()[n * oc * oh * ow + i], want[i], 1e-4)
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(KernelsTest, Conv2dBackwardMatchesDirectReference) {
  Rng rng(108);
  const int64_t batch = 2, ic = 2, oc = 4, hw = 6, k = 3, p = 1;
  Conv2d conv(ic, oc, k, p, &rng);
  Tensor x = Tensor::Randn({batch, ic, hw, hw}, &rng);
  Tensor y = conv.Forward(x, true);
  Tensor grad_out = Tensor::Randn(y.shape(), &rng);
  Tensor grad_in = conv.Backward(grad_out);

  std::vector<ParamRef> params;
  conv.CollectParams("conv", &params);
  const Tensor& weight = *params[0].value;
  const Tensor& wgrad = *params[0].grad;
  const Tensor& bgrad = *params[1].grad;

  std::vector<float> want_wgrad(weight.numel(), 0.0f);
  std::vector<float> want_bgrad(oc, 0.0f);
  std::vector<float> want_gin(x.numel(), 0.0f);
  const int64_t oh = kernels::ConvOutDim(hw, k, p);
  for (int64_t n = 0; n < batch; ++n) {
    kernels::Conv2dBackwardReference(
        x.data() + n * ic * hw * hw, weight.data(),
        grad_out.data() + n * oc * oh * oh, ic, hw, hw, oc, k, p,
        want_wgrad.data(), want_bgrad.data(),
        want_gin.data() + n * ic * hw * hw);
  }
  for (int64_t i = 0; i < wgrad.numel(); ++i) {
    ASSERT_NEAR(wgrad.at(i), want_wgrad[i], 1e-3) << "wgrad " << i;
  }
  for (int64_t i = 0; i < oc; ++i) {
    ASSERT_NEAR(bgrad.at(i), want_bgrad[i], 1e-3) << "bgrad " << i;
  }
  for (int64_t i = 0; i < grad_in.numel(); ++i) {
    ASSERT_NEAR(grad_in.at(i), want_gin[i], 1e-3) << "grad_in " << i;
  }
}

TEST(KernelsTest, ElementwiseHelpers) {
  const std::vector<float> x = {-2.0f, -0.0f, 0.0f, 3.0f};
  std::vector<float> y(4);
  kernels::ReluForward(x.data(), y.data(), 4);
  EXPECT_EQ(y, (std::vector<float>{0.0f, 0.0f, 0.0f, 3.0f}));

  std::vector<float> g = {1.0f, 1.0f, 1.0f, 1.0f};
  kernels::ReluBackward(x.data(), g.data(), 4);
  EXPECT_EQ(g, (std::vector<float>{0.0f, 0.0f, 0.0f, 1.0f}));

  std::vector<float> t(4);
  kernels::TanhForward(x.data(), t.data(), 4);
  EXPECT_FLOAT_EQ(t[3], std::tanh(3.0f));
  std::vector<float> tg = {1.0f, 1.0f, 1.0f, 1.0f};
  kernels::TanhBackward(t.data(), tg.data(), 4);
  EXPECT_FLOAT_EQ(tg[3], 1.0f - t[3] * t[3]);
}

TEST(KernelsTest, BiasAndSumHelpers) {
  // 2 rows x 3 cols.
  std::vector<float> y = {0.0f, 0.0f, 0.0f, 1.0f, 1.0f, 1.0f};
  const std::vector<float> colb = {1.0f, 2.0f, 3.0f};
  kernels::AddColBias(y.data(), colb.data(), 2, 3);
  EXPECT_EQ(y, (std::vector<float>{1.0f, 2.0f, 3.0f, 2.0f, 3.0f, 4.0f}));

  const std::vector<float> rowb = {10.0f, 20.0f};
  kernels::AddRowBias(y.data(), rowb.data(), 2, 3);
  EXPECT_EQ(y, (std::vector<float>{11.0f, 12.0f, 13.0f, 22.0f, 23.0f, 24.0f}));

  std::vector<float> colsum(3, 100.0f);
  kernels::ColSumsAccum(y.data(), 2, 3, colsum.data());
  EXPECT_EQ(colsum, (std::vector<float>{133.0f, 135.0f, 137.0f}));

  std::vector<float> rowsum(2, 1000.0f);
  kernels::RowSumsAccum(y.data(), 2, 3, rowsum.data());
  EXPECT_EQ(rowsum, (std::vector<float>{1036.0f, 1069.0f}));
}

// The Tensor-level ops route through the kernels; sanity-check one known
// value so a rewiring regression is caught at this level too.
TEST(KernelsTest, TensorOpsRouteThroughKernels) {
  Tensor a({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  Tensor b({2, 2}, {5.0f, 6.0f, 7.0f, 8.0f});
  Tensor c = MatMul(a, b);
  std::vector<float> want(4, 0.0f);
  kernels::GemmReference(2, 2, 2, a.data(), b.data(), want.data());
  for (int i = 0; i < 4; ++i) EXPECT_EQ(c.at(i), want[i]);
}

}  // namespace
}  // namespace fedscope
