#include "fedscope/tensor/tensor_ops.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fedscope {
namespace {

TEST(TensorOpsTest, ElementwiseAddSubMulScale) {
  Tensor a = Tensor::FromVector({1, 2, 3});
  Tensor b = Tensor::FromVector({4, 5, 6});
  EXPECT_EQ(Add(a, b).at(1), 7.0f);
  EXPECT_EQ(Sub(b, a).at(2), 3.0f);
  EXPECT_EQ(Mul(a, b).at(0), 4.0f);
  EXPECT_EQ(Scale(a, 2.0f).at(2), 6.0f);
}

TEST(TensorOpsTest, InPlaceOps) {
  Tensor a = Tensor::FromVector({1, 1});
  AddInPlace(&a, Tensor::FromVector({2, 3}));
  EXPECT_EQ(a.at(0), 3.0f);
  Axpy(&a, 0.5f, Tensor::FromVector({2, 2}));
  EXPECT_EQ(a.at(0), 4.0f);
  ScaleInPlace(&a, 0.0f);
  EXPECT_EQ(a.at(1), 0.0f);
  a = Tensor::FromVector({5, 5});
  ZeroInPlace(&a);
  EXPECT_EQ(a.at(0), 0.0f);
}

TEST(TensorOpsTest, ShapeMismatchDies) {
  Tensor a({2}), b({3});
  EXPECT_DEATH(Add(a, b), "");
}

TEST(TensorOpsTest, DotNormSum) {
  Tensor a = Tensor::FromVector({3, 4});
  EXPECT_DOUBLE_EQ(Dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(SquaredNorm(a), 25.0);
  EXPECT_DOUBLE_EQ(Norm(a), 5.0);
  EXPECT_DOUBLE_EQ(Sum(a), 7.0);
}

TEST(TensorOpsTest, MatMulKnownValues) {
  // [[1, 2], [3, 4]] x [[5, 6], [7, 8]] = [[19, 22], [43, 50]].
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {5, 6, 7, 8});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.at(0, 0), 19.0f);
  EXPECT_EQ(c.at(0, 1), 22.0f);
  EXPECT_EQ(c.at(1, 0), 43.0f);
  EXPECT_EQ(c.at(1, 1), 50.0f);
}

TEST(TensorOpsTest, MatMulRectangular) {
  Tensor a({1, 3}, {1, 2, 3});
  Tensor b({3, 2}, {1, 0, 0, 1, 1, 1});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.dim(0), 1);
  EXPECT_EQ(c.dim(1), 2);
  EXPECT_EQ(c.at(0, 0), 4.0f);
  EXPECT_EQ(c.at(0, 1), 5.0f);
}

TEST(TensorOpsTest, MatMulTransVariantsAgree) {
  Rng rng(3);
  Tensor a = Tensor::Randn({4, 3}, &rng);
  Tensor b = Tensor::Randn({3, 5}, &rng);
  Tensor c = MatMul(a, b);

  // a^T stored: at[k][m] => MatMulTransA(at, b) == a^T... construct aT.
  Tensor at({3, 4});
  for (int i = 0; i < 4; ++i) {
    for (int k = 0; k < 3; ++k) at.at(k, i) = a.at(i, k);
  }
  Tensor c2 = MatMulTransA(at, b);
  // bT stored: [5, 3].
  Tensor bt({5, 3});
  for (int k = 0; k < 3; ++k) {
    for (int j = 0; j < 5; ++j) bt.at(j, k) = b.at(k, j);
  }
  Tensor c3 = MatMulTransB(a, bt);
  for (int64_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c.at(i), c2.at(i), 1e-4);
    EXPECT_NEAR(c.at(i), c3.at(i), 1e-4);
  }
}

TEST(TensorOpsTest, SoftmaxRowsSumToOne) {
  Tensor logits({2, 3}, {1, 2, 3, -1, 0, 1});
  Tensor p = Softmax(logits);
  for (int64_t i = 0; i < 2; ++i) {
    double total = 0.0;
    for (int64_t c = 0; c < 3; ++c) {
      EXPECT_GT(p.at(i, c), 0.0f);
      total += p.at(i, c);
    }
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
  // Monotone in logits.
  EXPECT_GT(p.at(0, 2), p.at(0, 1));
}

TEST(TensorOpsTest, SoftmaxNumericallyStable) {
  Tensor logits({1, 2}, {1000.0f, 1001.0f});
  Tensor p = Softmax(logits);
  EXPECT_FALSE(std::isnan(p.at(0, 0)));
  EXPECT_NEAR(p.at(0, 0) + p.at(0, 1), 1.0, 1e-5);
}

TEST(TensorOpsTest, ArgmaxRows) {
  Tensor s({2, 3}, {0, 5, 1, 9, 2, 3});
  auto idx = ArgmaxRows(s);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(TensorOpsTest, ClipByNormShrinksLongVectors) {
  Tensor t = Tensor::FromVector({3, 4});  // norm 5
  double pre = ClipByNorm(&t, 1.0);
  EXPECT_DOUBLE_EQ(pre, 5.0);
  EXPECT_NEAR(Norm(t), 1.0, 1e-5);
}

TEST(TensorOpsTest, ClipByNormNoopForShortVectors) {
  Tensor t = Tensor::FromVector({0.3f, 0.4f});
  ClipByNorm(&t, 1.0);
  EXPECT_NEAR(Norm(t), 0.5, 1e-6);
}

}  // namespace
}  // namespace fedscope
