#include "fedscope/tensor/tensor.h"

#include <gtest/gtest.h>

namespace fedscope {
namespace {

TEST(TensorTest, ZerosShapeAndValues) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.ndim(), 2);
  EXPECT_EQ(t.numel(), 6);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.at(i), 0.0f);
}

TEST(TensorTest, FullAndFromVector) {
  Tensor f = Tensor::Full({4}, 2.5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(f.at(i), 2.5f);
  Tensor v = Tensor::FromVector({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(v.ndim(), 1);
  EXPECT_EQ(v.at(2), 3.0f);
}

TEST(TensorTest, TwoDimAccess) {
  Tensor t({2, 3});
  t.at(1, 2) = 7.0f;
  EXPECT_EQ(t.at(1 * 3 + 2), 7.0f);
  EXPECT_EQ(t.at(1, 2), 7.0f);
}

TEST(TensorTest, FourDimAccessNchw) {
  Tensor t({2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 9.0f;
  EXPECT_EQ(t.at(((1 * 3 + 2) * 4 + 3) * 5 + 4), 9.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t = Tensor::FromVector({1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshape({2, 3});
  EXPECT_EQ(r.at(1, 0), 4.0f);
  EXPECT_EQ(r.numel(), 6);
}

TEST(TensorTest, ReshapeBadNumelDies) {
  Tensor t = Tensor::FromVector({1, 2, 3});
  EXPECT_DEATH(t.Reshape({2, 2}), "");
}

TEST(TensorTest, SliceAndSetSlice) {
  Tensor t({3, 2});
  for (int64_t i = 0; i < 6; ++i) t.at(i) = static_cast<float>(i);
  Tensor row = t.Slice(1);
  EXPECT_EQ(row.numel(), 2);
  EXPECT_EQ(row.at(0), 2.0f);
  EXPECT_EQ(row.at(1), 3.0f);

  t.SetSlice(0, Tensor::FromVector({10.0f, 11.0f}));
  EXPECT_EQ(t.at(0, 0), 10.0f);
  EXPECT_EQ(t.at(0, 1), 11.0f);
}

TEST(TensorTest, RandnIsSeeded) {
  Rng a(5), b(5);
  Tensor x = Tensor::Randn({10}, &a);
  Tensor y = Tensor::Randn({10}, &b);
  EXPECT_TRUE(x == y);
}

TEST(TensorTest, RandBounds) {
  Rng rng(6);
  Tensor t = Tensor::Rand({100}, &rng, -0.5f, 0.5f);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t.at(i), -0.5f);
    EXPECT_LT(t.at(i), 0.5f);
  }
}

TEST(TensorTest, SameShapeAndEquality) {
  Tensor a({2, 2}), b({2, 2}), c({4});
  EXPECT_TRUE(a.SameShape(b));
  EXPECT_FALSE(a.SameShape(c));
  EXPECT_TRUE(a == b);
  b.at(0) = 1.0f;
  EXPECT_FALSE(a == b);
}

TEST(TensorTest, ShapeString) {
  EXPECT_EQ(Tensor({2, 3}).ShapeString(), "[2, 3]");
  EXPECT_EQ(Tensor().ShapeString(), "[]");
}

TEST(ShapeNumelTest, Product) {
  EXPECT_EQ(ShapeNumel({2, 3, 4}), 24);
  EXPECT_EQ(ShapeNumel({}), 1);
  EXPECT_EQ(ShapeNumel({0, 5}), 0);
}

}  // namespace
}  // namespace fedscope
