#include "fedscope/fault/fault_plan.h"

#include <gtest/gtest.h>

#include <limits>

#include "fedscope/comm/channel.h"
#include "fedscope/core/events.h"
#include "fedscope/core/topology.h"
#include "fedscope/fault/dedup.h"
#include "fedscope/fault/fault_channel.h"

namespace fedscope {
namespace {

Message Make(const std::string& msg_type, int sender, int receiver,
             int state = 0) {
  Message msg;
  msg.sender = sender;
  msg.receiver = receiver;
  msg.msg_type = msg_type;
  msg.state = state;
  return msg;
}

TEST(FaultPlanTest, DefaultPlanIsDisabledAndNeverFaults) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  FaultPlan::MessageFate fate = plan.Judge(Make(events::kModelUpdate, 3, 0));
  EXPECT_FALSE(fate.drop);
  EXPECT_FALSE(fate.duplicate);
  EXPECT_EQ(fate.extra_delay, 0.0);
  // All-null options also produce a disabled plan.
  FaultPlan from_options(FaultPlanOptions{}, 10);
  EXPECT_FALSE(from_options.enabled());
  EXPECT_TRUE(from_options.dropped_clients().empty());
}

TEST(FaultPlanTest, DropoutSetHasExactRoundedSize) {
  FaultPlanOptions options;
  options.dropout_frac = 0.3;
  options.seed = 7;
  FaultPlan plan(options, 10);
  EXPECT_TRUE(plan.enabled());
  EXPECT_EQ(plan.dropped_clients().size(), 3u);
  for (int id : plan.dropped_clients()) {
    EXPECT_GE(id, 1);
    EXPECT_LE(id, 10);
    EXPECT_TRUE(plan.IsDropped(id));
  }
  // lround rounds half away from zero: round(0.25 * 10) = 3.
  options.dropout_frac = 0.25;
  EXPECT_EQ(FaultPlan(options, 10).dropped_clients().size(), 3u);
  options.dropout_frac = 1.0;
  EXPECT_EQ(FaultPlan(options, 10).dropped_clients().size(), 10u);
}

TEST(FaultPlanTest, SameSeedSameDecisions) {
  FaultPlanOptions options;
  options.dropout_frac = 0.2;
  options.straggler_frac = 0.2;
  options.straggler_delay = 5.0;
  options.msg_loss_prob = 0.3;
  options.msg_duplicate_prob = 0.2;
  options.msg_delay_prob = 0.2;
  options.msg_delay_max = 2.0;
  options.seed = 99;
  FaultPlan a(options, 20);
  FaultPlan b(options, 20);
  EXPECT_EQ(a.dropped_clients(), b.dropped_clients());
  EXPECT_EQ(a.straggler_clients(), b.straggler_clients());
  for (int i = 0; i < 200; ++i) {
    const Message msg = Make(i % 2 == 0 ? events::kModelUpdate
                                        : events::kModelPara,
                             1 + i % 20, i % 2 == 0 ? 0 : 1 + i % 20, i);
    FaultPlan::MessageFate fa = a.Judge(msg);
    FaultPlan::MessageFate fb = b.Judge(msg);
    EXPECT_EQ(fa.drop, fb.drop);
    EXPECT_EQ(fa.duplicate, fb.duplicate);
    EXPECT_DOUBLE_EQ(fa.extra_delay, fb.extra_delay);
  }
}

TEST(FaultPlanTest, ControlPlaneIsExempt) {
  // Even a maximally hostile plan must not touch bootstrap/teardown/timer
  // traffic, or courses could never start or end.
  FaultPlanOptions options;
  options.dropout_frac = 1.0;
  options.msg_loss_prob = 1.0;
  options.seed = 5;
  FaultPlan plan(options, 4);
  for (const char* type : {events::kJoinIn, events::kAssignId,
                           events::kFinish, events::kTimer,
                           events::kClientFailure}) {
    FaultPlan::MessageFate fate = plan.Judge(Make(type, 1, 0));
    EXPECT_FALSE(fate.drop) << type;
    EXPECT_FALSE(fate.duplicate) << type;
    EXPECT_EQ(fate.extra_delay, 0.0) << type;
  }
  EXPECT_EQ(plan.counters().lost, 0);
}

TEST(FaultPlanTest, DroppedClientUplinkSuppressedButDownlinkDelivered) {
  FaultPlanOptions options;
  options.dropout_frac = 1.0;
  options.seed = 5;
  FaultPlan plan(options, 4);
  // Uplink from a dropped client vanishes...
  EXPECT_TRUE(plan.Judge(Make(events::kModelUpdate, 2, 0)).drop);
  EXPECT_TRUE(plan.Judge(Make(events::kMetrics, 3, 0)).drop);
  // ...but the server's broadcast to it still goes out (the server cannot
  // know the device is dark; the loss is one-directional).
  EXPECT_FALSE(plan.Judge(Make(events::kModelPara, 0, 2)).drop);
  EXPECT_EQ(plan.counters().dropout_suppressed, 2);
}

TEST(FaultPlanTest, StragglerDelaysUplinkOnly) {
  FaultPlanOptions options;
  options.straggler_frac = 1.0;
  options.straggler_delay = 7.5;
  options.seed = 5;
  FaultPlan plan(options, 4);
  EXPECT_DOUBLE_EQ(plan.Judge(Make(events::kModelUpdate, 1, 0)).extra_delay,
                   7.5);
  EXPECT_DOUBLE_EQ(plan.Judge(Make(events::kModelPara, 0, 1)).extra_delay,
                   0.0);
}

TEST(FaultPlanTest, CrashAfterTrainingDropsOnlyUpdates) {
  FaultPlanOptions options;
  options.crash_after_training_prob = 1.0;
  options.seed = 5;
  FaultPlan plan(options, 4);
  EXPECT_TRUE(plan.Judge(Make(events::kModelUpdate, 1, 0)).drop);
  EXPECT_FALSE(plan.Judge(Make(events::kMetrics, 1, 0)).drop);
  EXPECT_EQ(plan.counters().crashes, 1);
}

// -- FaultInjectingChannel --------------------------------------------------

TEST(FaultChannelTest, NullPlanForwardsVerbatim) {
  QueueChannel inner;
  FaultPlan plan;
  FaultInjectingChannel channel(&inner, &plan);
  Message msg = Make(events::kModelUpdate, 1, 0, 4);
  msg.timestamp = 3.5;
  channel.Send(msg);
  ASSERT_EQ(inner.Size(), 1u);
  Message out = inner.Pop();
  EXPECT_EQ(out.msg_type, msg.msg_type);
  EXPECT_DOUBLE_EQ(out.timestamp, 3.5);
  EXPECT_EQ(out.state, 4);
}

TEST(FaultChannelTest, CertainLossDropsDataPlaneOnly) {
  QueueChannel inner;
  FaultPlanOptions options;
  options.msg_loss_prob = 1.0;
  options.seed = 5;
  FaultPlan plan(options, 4);
  FaultInjectingChannel channel(&inner, &plan);
  channel.Send(Make(events::kModelUpdate, 1, 0));
  channel.Send(Make(events::kModelPara, 0, 1));
  EXPECT_TRUE(inner.Empty());
  channel.Send(Make(events::kJoinIn, 1, 0));
  channel.Send(Make(events::kFinish, 0, 1));
  EXPECT_EQ(inner.Size(), 2u);
  EXPECT_EQ(plan.counters().lost, 2);
}

TEST(FaultChannelTest, CertainDuplicationDeliversTwice) {
  QueueChannel inner;
  FaultPlanOptions options;
  options.msg_duplicate_prob = 1.0;
  options.seed = 5;
  FaultPlan plan(options, 4);
  FaultInjectingChannel channel(&inner, &plan);
  Message msg = Make(events::kModelUpdate, 1, 0, 2);
  msg.payload.SetInt("x", 42);
  channel.Send(msg);
  ASSERT_EQ(inner.Size(), 2u);
  Message first = inner.Pop();
  Message second = inner.Pop();
  EXPECT_EQ(first.payload.GetInt("x"), 42);
  EXPECT_TRUE(first.payload == second.payload);
  EXPECT_EQ(plan.counters().duplicated, 1);
}

TEST(FaultChannelTest, DelayShiftsTimestampForward) {
  QueueChannel inner;
  FaultPlanOptions options;
  options.msg_delay_prob = 1.0;
  options.msg_delay_max = 4.0;
  options.seed = 5;
  FaultPlan plan(options, 4);
  FaultInjectingChannel channel(&inner, &plan);
  Message msg = Make(events::kModelUpdate, 1, 0);
  msg.timestamp = 10.0;
  channel.Send(msg);
  ASSERT_EQ(inner.Size(), 1u);
  const double delivered = inner.Pop().timestamp;
  EXPECT_GT(delivered, 10.0);
  EXPECT_LT(delivered, 14.0);
  EXPECT_EQ(plan.counters().delayed, 1);
}

// -- DuplicateSuppressor ----------------------------------------------------

TEST(DuplicateSuppressorTest, ExactRepeatIsSuppressed) {
  DuplicateSuppressor dedup;
  Message msg = Make(events::kModelUpdate, 3, 0, 5);
  msg.payload.SetInt("x", 1);
  EXPECT_FALSE(dedup.IsDuplicate(msg));
  EXPECT_TRUE(dedup.IsDuplicate(msg));
  EXPECT_EQ(dedup.suppressed(), 1);
}

TEST(DuplicateSuppressorTest, FreshPayloadSameKeyPasses) {
  // A legitimate second contribution to the same round carries a different
  // delta; payload equality keeps it out of the duplicate net.
  DuplicateSuppressor dedup;
  Message msg = Make(events::kModelUpdate, 3, 0, 5);
  msg.payload.SetInt("x", 1);
  EXPECT_FALSE(dedup.IsDuplicate(msg));
  msg.payload.SetInt("x", 2);
  EXPECT_FALSE(dedup.IsDuplicate(msg));
  EXPECT_EQ(dedup.suppressed(), 0);
}

TEST(DuplicateSuppressorTest, NanPoisonedRepeatIsStillSuppressed) {
  // Tensor equality is bitwise, so a NaN-poisoned frame equals its own
  // retransmission. Under IEEE `==` (NaN != NaN) a hostile client could
  // defeat dedup by planting a NaN: every duplicated copy of the same
  // uplink would read as fresh — and each copy would bill a fresh guard
  // violation, quarantining the sender off a single logical update.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Message msg = Make(events::kModelUpdate, 3, 0, 5);
  msg.payload.SetTensor("w", Tensor({2}, {nan, 1.0f}));

  DuplicateSuppressor per_sender;
  EXPECT_FALSE(per_sender.IsDuplicate(msg));
  EXPECT_TRUE(per_sender.IsDuplicate(msg));
  EXPECT_EQ(per_sender.suppressed(), 1);

  PairwiseDuplicateSuppressor pairwise;
  EXPECT_FALSE(pairwise.IsDuplicate(msg));
  EXPECT_TRUE(pairwise.IsDuplicate(msg));
  EXPECT_EQ(pairwise.suppressed(), 1);
}

TEST(FaultPlanTest, AggregatorCrashScheduleDoesNotFlipEnabled) {
  // The crash schedule is consumed by the runner, not the channel
  // decorator: an otherwise-null plan must stay disabled (bit-identical
  // delivery, no per-message rng draws).
  FaultPlanOptions options;
  options.aggregator_crashes.push_back(AggregatorCrash{0, 0, 1});
  options.aggregator_crashes.push_back(AggregatorCrash{1, 2, 3});
  FaultPlan plan(options, 6);
  EXPECT_FALSE(plan.enabled());
  EXPECT_EQ(plan.AggregatorCrashRound(0, 0), 1);
  EXPECT_EQ(plan.AggregatorCrashRound(1, 2), 3);
  EXPECT_EQ(plan.AggregatorCrashRound(0, 1), -1);  // unscheduled slot
  EXPECT_EQ(plan.AggregatorCrashRound(2, 0), -1);  // unscheduled shard
  FaultPlan::MessageFate fate = plan.Judge(Make(events::kModelUpdate, 3, 0));
  EXPECT_FALSE(fate.drop);
  EXPECT_EQ(fate.extra_delay, 0.0);
}

TEST(FaultPlanTest, AggregatorStragglerDelaysOnlyMatchingShardPartials) {
  FaultPlanOptions options;
  options.aggregator_straggler_shard = 1;
  options.aggregator_straggler_delay = 2.5;
  FaultPlan plan(options, 6);
  EXPECT_TRUE(plan.enabled());

  Message slow = Make(events::kPartialUpdate, AggregatorId(1, 0), 0);
  EXPECT_DOUBLE_EQ(plan.Judge(slow).extra_delay, 2.5);
  // The promoted standby of the same shard is just as slow.
  slow.sender = AggregatorId(1, 1);
  EXPECT_DOUBLE_EQ(plan.Judge(slow).extra_delay, 2.5);

  Message fast = Make(events::kPartialUpdate, AggregatorId(0, 0), 0);
  EXPECT_DOUBLE_EQ(plan.Judge(fast).extra_delay, 0.0);
  // Per-client faults never touch partials, and the aggregator straggler
  // never touches client uplinks.
  Message client_update = Make(events::kModelUpdate, 3, AggregatorId(1, 0));
  EXPECT_DOUBLE_EQ(plan.Judge(client_update).extra_delay, 0.0);
}

TEST(DuplicateSuppressorTest, TracksSendersIndependently) {
  DuplicateSuppressor dedup;
  Message a = Make(events::kModelUpdate, 1, 0, 5);
  Message b = Make(events::kModelUpdate, 2, 0, 5);
  EXPECT_FALSE(dedup.IsDuplicate(a));
  EXPECT_FALSE(dedup.IsDuplicate(b));  // same key, different sender
  EXPECT_TRUE(dedup.IsDuplicate(a));
  EXPECT_TRUE(dedup.IsDuplicate(b));
  EXPECT_EQ(dedup.suppressed(), 2);
}

}  // namespace
}  // namespace fedscope
