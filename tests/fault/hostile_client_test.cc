// End-to-end hostile-client courses through the standalone FedRunner: the
// fault plan mutates uplinks in flight (DESIGN.md §14) and the server's
// ingress guard must reject, quarantine, and keep the course live. The
// guard-off negative control shows the guard is load-bearing: unscreened
// NaN poison reaches the aggregate and corrupts the shared model.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "fedscope/core/fed_runner.h"
#include "fedscope/data/synthetic_twitter.h"
#include "fedscope/nn/model_zoo.h"
#include "fedscope/testing/course_gen.h"

namespace fedscope {
namespace {

FedDataset TinyData(uint64_t seed = 21) {
  SyntheticTwitterOptions options;
  options.num_clients = 8;
  options.seed = seed;
  return MakeSyntheticTwitter(options);
}

/// Guarded 8-client sync course with two hostile clients (frac 0.25).
FedJob HostileJob(const FedDataset* data, const std::string& mode,
                  uint64_t seed = 31) {
  FedJob job;
  job.data = data;
  Rng rng(seed);
  job.init_model = MakeLogisticRegression(60, 2, &rng);
  job.server.concurrency = 4;
  job.server.max_rounds = 4;
  job.server.receive_deadline = 240.0;
  job.client.train.lr = 0.5;
  job.client.train.batch_size = 2;
  job.seed = seed;
  job.server.guard.enabled = true;
  job.server.guard.quarantine_after = 1;
  job.fault.hostile_frac = 0.25;
  job.fault.hostile_mode = mode;
  job.fault.hostile_prob = 1.0;
  job.fault.seed = 77;
  return job;
}

bool ModelFinite(Model& model) {
  for (const auto& [name, t] : model.GetStateDict()) {
    for (int64_t i = 0; i < t.numel(); ++i) {
      if (!std::isfinite(t.at(i))) return false;
    }
  }
  return true;
}

/// Every quarantined id must be plan-hostile, and none twice.
void ExpectQuarantineSound(const RunResult& result,
                           const std::set<int>& hostile) {
  std::set<int> seen;
  for (const int id : result.server.quarantined) {
    EXPECT_TRUE(hostile.count(id) > 0) << "benign client " << id
                                       << " quarantined";
    EXPECT_TRUE(seen.insert(id).second) << "client " << id
                                        << " quarantined twice";
  }
}

TEST(HostileClientTest, NanPoisonRejectedQuarantinedCourseCompletes) {
  FedDataset data = TinyData();
  FedRunner runner(HostileJob(&data, "nan"));
  const std::set<int> hostile = runner.fault_plan().hostile_clients();
  EXPECT_EQ(hostile.size(), 2u);
  RunResult result = runner.Run();
  const auto& counters = runner.fault_plan().counters();
  EXPECT_GT(counters.poisoned_nonfinite, 0);
  // Lossless channel: every poisoned update was delivered and every one
  // must have been rejected at ingress.
  EXPECT_EQ(result.server.updates_rejected, counters.poisoned_nonfinite);
  EXPECT_FALSE(result.server.quarantined.empty());
  ExpectQuarantineSound(result, hostile);
  EXPECT_EQ(result.server.rounds, 4);
  EXPECT_FALSE(result.server.aborted);
  EXPECT_TRUE(ModelFinite(result.final_model));
}

TEST(HostileClientTest, InfPoisonRejectedAtIngress) {
  FedDataset data = TinyData();
  FedRunner runner(HostileJob(&data, "inf"));
  RunResult result = runner.Run();
  EXPECT_GT(result.server.updates_rejected, 0);
  EXPECT_FALSE(result.server.aborted);
  EXPECT_TRUE(ModelFinite(result.final_model));
  ExpectQuarantineSound(result, runner.fault_plan().hostile_clients());
}

TEST(HostileClientTest, ScaleAttackCaughtByNormBound) {
  FedDataset data = TinyData();
  FedJob job = HostileJob(&data, "scale");
  job.fault.hostile_scale = 1e6;
  job.server.guard.l2_bound = 50.0;  // benign deltas sit far below this
  FedRunner runner(std::move(job));
  RunResult result = runner.Run();
  EXPECT_GT(runner.fault_plan().counters().scaled, 0);
  EXPECT_GT(result.server.updates_rejected, 0);
  EXPECT_EQ(result.server.updates_clipped, 0);
  EXPECT_FALSE(result.server.quarantined.empty());
  ExpectQuarantineSound(result, runner.fault_plan().hostile_clients());
  EXPECT_FALSE(result.server.aborted);
  EXPECT_TRUE(ModelFinite(result.final_model));
}

TEST(HostileClientTest, ClipModeRepairsScaleAttackWithoutQuarantine) {
  FedDataset data = TinyData();
  FedJob job = HostileJob(&data, "scale");
  job.server.guard.l2_bound = 50.0;
  job.server.guard.clip_to_bound = true;
  FedRunner runner(std::move(job));
  RunResult result = runner.Run();
  EXPECT_GT(result.server.updates_clipped, 0);
  // Clipping is a repair: no rejection, no violation, nobody quarantined.
  EXPECT_EQ(result.server.updates_rejected, 0);
  EXPECT_TRUE(result.server.quarantined.empty());
  EXPECT_EQ(result.server.rounds, 4);
  EXPECT_TRUE(ModelFinite(result.final_model));
}

TEST(HostileClientTest, MalformedPayloadRejectedAsSignatureViolation) {
  FedDataset data = TinyData();
  FedRunner runner(HostileJob(&data, "malformed"));
  RunResult result = runner.Run();
  EXPECT_GT(runner.fault_plan().counters().malformed, 0);
  EXPECT_GT(result.server.updates_rejected, 0);
  EXPECT_FALSE(result.server.aborted);
  EXPECT_TRUE(ModelFinite(result.final_model));
  ExpectQuarantineSound(result, runner.fault_plan().hostile_clients());
}

TEST(HostileClientTest, ReplayedUpdatesNeverAbortTheCourse) {
  FedDataset data = TinyData();
  FedRunner runner(HostileJob(&data, "replay"));
  RunResult result = runner.Run();
  // A replay rewinds the claimed round: depending on timing it lands as a
  // stale drop or (round 0) as a harmless duplicate — either way the
  // course must complete with a finite model.
  EXPECT_GT(runner.fault_plan().counters().replayed, 0);
  EXPECT_FALSE(result.server.aborted);
  EXPECT_TRUE(ModelFinite(result.final_model));
  ExpectQuarantineSound(result, runner.fault_plan().hostile_clients());
}

TEST(HostileClientTest, GuardOffNanPoisonCorruptsTheModel) {
  // Negative control: without the ingress guard the same NaN attack flows
  // straight into FedAvg and the shared model goes non-finite — the guard
  // is load-bearing, not decorative.
  FedDataset data = TinyData();
  FedJob job = HostileJob(&data, "nan");
  job.server.guard = UpdateGuardOptions{};  // off
  job.server.receive_deadline = 0.0;        // plain blocking sync
  FedRunner runner(std::move(job));
  RunResult result = runner.Run();
  EXPECT_GT(runner.fault_plan().counters().poisoned_nonfinite, 0);
  EXPECT_EQ(result.server.updates_rejected, 0);
  EXPECT_FALSE(ModelFinite(result.final_model));
}

TEST(HostileClientTest, HostileCoursesAreSeedReproducible) {
  FedDataset data = TinyData();
  RunResult a = FedRunner(HostileJob(&data, "mixed")).Run();
  RunResult b = FedRunner(HostileJob(&data, "mixed")).Run();
  EXPECT_TRUE(a.final_model.GetStateDict() == b.final_model.GetStateDict());
  EXPECT_EQ(a.server.updates_rejected, b.server.updates_rejected);
  EXPECT_EQ(a.server.quarantined, b.server.quarantined);
  EXPECT_EQ(a.server.staleness_log, b.server.staleness_log);
}

TEST(HostileClientTest, ClampedHostileSpecRunsThroughCourseFixture) {
  // The generator's hostility lattice rules (guard forced on, robust
  // aggregator remap, concurrency cap) must produce a runnable course.
  testing::CourseSpec spec;
  spec.seed = 5;
  spec.hostile_frac = 0.3;
  spec.hostile_mode = "mixed";
  spec.guard_k = 1;
  spec.max_rounds = 3;
  spec = testing::CourseGen::Clamp(spec);
  ASSERT_TRUE(spec.Hostile());
  ASSERT_TRUE(spec.guard);
  auto fixture = testing::MakeCourseFixture(spec);
  FedRunner runner(fixture->MakeJob());
  const std::set<int> hostile = runner.fault_plan().hostile_clients();
  EXPECT_FALSE(hostile.empty());
  RunResult result = runner.Run();
  EXPECT_FALSE(result.server.aborted);
  EXPECT_TRUE(ModelFinite(result.final_model));
  ExpectQuarantineSound(result, hostile);
}

}  // namespace
}  // namespace fedscope
