#include <gtest/gtest.h>

#include "fedscope/core/events.h"
#include "fedscope/core/fed_runner.h"
#include "fedscope/data/synthetic_twitter.h"
#include "fedscope/nn/model_zoo.h"
#include "fedscope/obs/course_log.h"

namespace fedscope {
namespace {

FedDataset TinyData(uint64_t seed = 21) {
  SyntheticTwitterOptions options;
  options.num_clients = 8;
  options.seed = seed;
  return MakeSyntheticTwitter(options);
}

FedJob TinyJob(const FedDataset* data, uint64_t seed = 31) {
  FedJob job;
  job.data = data;
  Rng rng(seed);
  job.init_model = MakeLogisticRegression(60, 2, &rng);
  job.server.concurrency = 4;
  job.server.max_rounds = 4;
  job.client.train.lr = 0.5;
  job.client.train.batch_size = 2;
  job.seed = seed;
  return job;
}

TEST(FaultInjectionTest, NullPlanLeavesCourseBitIdentical) {
  // A FedJob whose fault options are all zero must not even construct the
  // decorator, and a nonzero fault seed with zero probabilities is still
  // the null plan — both runs must match a fault-free course exactly.
  FedDataset data = TinyData();
  FedJob plain = TinyJob(&data);
  FedJob seeded_null = TinyJob(&data);
  seeded_null.fault.seed = 12345;  // seed alone enables nothing
  FedRunner a(std::move(plain));
  FedRunner b(std::move(seeded_null));
  EXPECT_FALSE(a.fault_plan().enabled());
  EXPECT_FALSE(b.fault_plan().enabled());
  RunResult ra = a.Run();
  RunResult rb = b.Run();
  ASSERT_EQ(ra.server.curve.size(), rb.server.curve.size());
  for (size_t i = 0; i < ra.server.curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.server.curve[i].first, rb.server.curve[i].first);
    EXPECT_DOUBLE_EQ(ra.server.curve[i].second, rb.server.curve[i].second);
  }
  EXPECT_TRUE(ra.final_model.GetStateDict() == rb.final_model.GetStateDict());
  EXPECT_EQ(ra.server.dropouts, 0);
  EXPECT_EQ(ra.server.replacements, 0);
}

TEST(FaultInjectionTest, SeededPlanReproducible) {
  FedDataset data = TinyData();
  auto lossy = [&data] {
    FedJob job = TinyJob(&data);
    job.server.receive_deadline = 240.0;
    job.fault.msg_loss_prob = 0.15;
    job.fault.msg_duplicate_prob = 0.1;
    job.fault.msg_delay_prob = 0.2;
    job.fault.msg_delay_max = 5.0;
    job.fault.seed = 77;
    return job;
  };
  RunResult a = FedRunner(lossy()).Run();
  RunResult b = FedRunner(lossy()).Run();
  ASSERT_EQ(a.server.curve.size(), b.server.curve.size());
  for (size_t i = 0; i < a.server.curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.server.curve[i].first, b.server.curve[i].first);
    EXPECT_DOUBLE_EQ(a.server.curve[i].second, b.server.curve[i].second);
  }
  EXPECT_EQ(a.server.staleness_log, b.server.staleness_log);
  EXPECT_TRUE(a.final_model.GetStateDict() == b.final_model.GetStateDict());
}

TEST(FaultInjectionTest, SyncVanillaDroppedClientsCompleteViaDeadline) {
  // Half the fleet goes dark after joining. Without intervention the
  // synchronous trigger would starve; the receive deadline presumes the
  // silent cohort members dead, replaces them, and the course finishes
  // every round. Dropout/replacement totals surface through the obs
  // course log.
  FedDataset data = TinyData();
  CourseLog course_log;
  FedJob job = TinyJob(&data);
  job.server.strategy = Strategy::kSyncVanilla;
  job.server.receive_deadline = 240.0;
  job.server.min_received = 4;  // no partial aggregation short-cut
  job.fault.dropout_frac = 0.5;
  job.fault.seed = 9;
  job.obs.course_log = &course_log;
  FedRunner runner(std::move(job));
  EXPECT_EQ(runner.fault_plan().dropped_clients().size(), 4u);
  RunResult result = runner.Run();
  EXPECT_EQ(result.server.rounds, 4);
  EXPECT_GT(result.server.dropouts, 0);
  EXPECT_GT(result.server.replacements, 0);
  EXPECT_GT(result.server.round_extensions, 0);
  EXPECT_FALSE(result.server.aborted);
  int64_t logged_dropouts = 0;
  for (const auto& record : course_log.rounds()) {
    logged_dropouts += record.dropouts;
  }
  EXPECT_GT(logged_dropouts, 0);
}

TEST(FaultInjectionTest, WithoutDeadlineTheSameCourseStarves) {
  // Control for the test above: the standalone queue simply drains when
  // the synchronous trigger can never fire, so Run returns early instead
  // of hanging — but the course is cut short.
  FedDataset data = TinyData();
  FedJob job = TinyJob(&data);
  job.server.strategy = Strategy::kSyncVanilla;
  job.server.min_received = 4;
  job.fault.dropout_frac = 0.5;
  job.fault.seed = 9;
  RunResult result = FedRunner(std::move(job)).Run();
  EXPECT_LT(result.server.rounds, 4);
}

TEST(FaultInjectionTest, LossyDuplicatedDelayedChannelStillCompletes) {
  FedDataset data = TinyData();
  FedJob job = TinyJob(&data);
  job.server.strategy = Strategy::kSyncVanilla;
  job.server.receive_deadline = 240.0;
  job.fault.msg_loss_prob = 0.15;
  job.fault.msg_duplicate_prob = 0.1;
  job.fault.msg_delay_prob = 0.2;
  job.fault.msg_delay_max = 5.0;
  job.fault.seed = 77;
  FedRunner runner(std::move(job));
  RunResult result = runner.Run();
  EXPECT_EQ(result.server.rounds, 4);
  EXPECT_FALSE(result.server.aborted);
  const FaultPlan::Counters& counters = runner.fault_plan().counters();
  EXPECT_GT(counters.lost + counters.duplicated + counters.delayed, 0);
}

TEST(FaultInjectionTest, DeadlineAggregatesPartialCohort) {
  // With min_received = 1 the deadline degrades gracefully: it aggregates
  // whatever arrived instead of replacing anyone, and the course log shows
  // receive_deadline as the round trigger.
  FedDataset data = TinyData();
  CourseLog course_log;
  FedJob job = TinyJob(&data);
  job.server.strategy = Strategy::kSyncVanilla;
  job.server.receive_deadline = 240.0;
  job.server.min_received = 1;
  job.fault.dropout_frac = 0.5;
  job.fault.seed = 9;
  job.obs.course_log = &course_log;
  RunResult result = FedRunner(std::move(job)).Run();
  EXPECT_EQ(result.server.rounds, 4);
  bool deadline_triggered = false;
  for (const auto& record : course_log.rounds()) {
    if (record.trigger == events::kReceiveDeadline) deadline_triggered = true;
  }
  EXPECT_TRUE(deadline_triggered);
}

TEST(FaultInjectionTest, AllDeadFleetAbortsViaBackstop) {
  // Every client goes dark: no update can ever arrive, so the extension
  // loop must give up instead of spinning forever.
  FedDataset data = TinyData();
  FedJob job = TinyJob(&data);
  job.server.strategy = Strategy::kSyncVanilla;
  job.server.receive_deadline = 30.0;
  job.server.max_round_extensions = 3;
  job.fault.dropout_frac = 1.0;
  job.fault.seed = 9;
  RunResult result = FedRunner(std::move(job)).Run();
  EXPECT_TRUE(result.server.aborted);
  EXPECT_EQ(result.server.rounds, 0);
  EXPECT_GT(result.server.round_extensions, 0);
}

TEST(FaultInjectionTest, DeadlineWithExactlyMinReceivedAggregatesAtOnce) {
  // Boundary of HandleReceiveDeadline's `buffer >= min_received`: when the
  // deadline fires with EXACTLY min_received updates in the buffer, the
  // round must aggregate immediately — no extension, no presumed-dead
  // replacements.
  FedDataset data = TinyData();
  FedJob job = TinyJob(&data);
  job.server.strategy = Strategy::kSyncVanilla;
  job.server.concurrency = 8;  // full participation: fleet slots are fixed
  job.server.min_received = 2;
  job.server.max_rounds = 1;
  job.server.receive_deadline = 60.0;
  // Two fast devices answer in milliseconds; six are slow enough that
  // their updates land far beyond the deadline (but are never "lost").
  DeviceProfile fast;
  fast.compute_speed = 1e6;
  DeviceProfile slow;
  slow.compute_speed = 0.01;
  job.fleet = {fast, fast, slow, slow, slow, slow, slow, slow};
  RunResult result = FedRunner(std::move(job)).Run();
  EXPECT_EQ(result.server.rounds, 1);
  EXPECT_FALSE(result.server.aborted);
  EXPECT_EQ(result.server.round_extensions, 0);
  EXPECT_EQ(result.server.dropouts, 0);
  EXPECT_EQ(result.server.replacements, 0);
}

TEST(FaultInjectionTest, BackstopAbortsExactlyAfterLastAllowedExtension) {
  // Boundary of CountExtensionAndCheckBackstop: with a fully dead cohort
  // the server extends max_round_extensions times and gives up on the
  // next deadline — the counter must read exactly max + 1, including the
  // max = 0 degenerate case (abort on the very first starved deadline).
  FedDataset data = TinyData();
  for (int max_extensions : {0, 3}) {
    FedJob job = TinyJob(&data);
    job.server.strategy = Strategy::kSyncVanilla;
    job.server.receive_deadline = 30.0;
    job.server.max_round_extensions = max_extensions;
    job.fault.dropout_frac = 1.0;
    job.fault.seed = 9;
    RunResult result = FedRunner(std::move(job)).Run();
    EXPECT_TRUE(result.server.aborted) << "max=" << max_extensions;
    EXPECT_EQ(result.server.rounds, 0) << "max=" << max_extensions;
    EXPECT_EQ(result.server.round_extensions, max_extensions + 1)
        << "max=" << max_extensions;
  }
}

TEST(FaultInjectionTest, NoSurvivorsLeftInFlightAggregatesWithoutWaiting) {
  // Full participation, one live client, seven that never respond: after
  // the first starved deadline the whole outstanding cohort is presumed
  // dead and there is nobody idle to replace it. With no update able to
  // ever arrive, the server must aggregate the partial buffer right then
  // instead of sleepwalking through the remaining allowed extensions.
  FedDataset data = TinyData();
  FedJob job = TinyJob(&data);
  job.server.strategy = Strategy::kSyncVanilla;
  job.server.concurrency = 8;
  job.server.min_received = 3;
  job.server.max_rounds = 1;
  job.server.receive_deadline = 30.0;
  job.server.max_round_extensions = 5;
  DeviceProfile fast;
  fast.compute_speed = 1e6;
  DeviceProfile dead;
  dead.crash_prob = 1.0;  // never responds, round after round
  job.fleet = {fast, dead, dead, dead, dead, dead, dead, dead};
  RunResult result = FedRunner(std::move(job)).Run();
  EXPECT_FALSE(result.server.aborted);
  EXPECT_EQ(result.server.rounds, 1);
  EXPECT_EQ(result.server.round_extensions, 1);
  EXPECT_EQ(result.server.dropouts, 7);
}

TEST(FaultInjectionTest, BackstopAggregatesPartialBufferInsteadOfAborting) {
  // Replacement churn that never satisfies min_received: each starved
  // deadline presumes the in-flight cohort dead and pulls in idle (but
  // equally slow) replacements, so someone is always in flight. On the
  // extension after the last allowed one, the backstop must aggregate the
  // below-min_received buffer rather than abort the course.
  FedDataset data = TinyData();
  FedJob job = TinyJob(&data);
  job.server.strategy = Strategy::kSyncVanilla;
  job.server.concurrency = 4;
  job.server.min_received = 3;
  job.server.max_rounds = 1;
  job.server.receive_deadline = 30.0;
  job.server.max_round_extensions = 2;
  DeviceProfile fast;
  fast.compute_speed = 1e6;
  DeviceProfile slow;
  slow.compute_speed = 0.01;  // responds, but hours after the deadline
  job.fleet = {fast, slow, slow, slow, slow, slow, slow, slow};
  RunResult result = FedRunner(std::move(job)).Run();
  EXPECT_FALSE(result.server.aborted);
  EXPECT_EQ(result.server.rounds, 1);
  EXPECT_EQ(result.server.round_extensions, 3);  // 2 allowed + the backstop
  EXPECT_GT(result.server.replacements, 0);
}

TEST(FaultInjectionTest, OverselectToleratesCrashesWithoutDeadline) {
  // Over-selection absorbs crash-after-training losses by construction:
  // the trigger waits for `concurrency` updates out of an over-sampled
  // cohort, so a lost straggler does not stall the round.
  FedDataset data = TinyData();
  FedJob job = TinyJob(&data);
  job.server.strategy = Strategy::kSyncOverselect;
  job.server.concurrency = 4;
  job.server.overselect_frac = 0.5;  // sample 6, wait for 4
  job.fault.crash_after_training_prob = 0.1;
  job.fault.seed = 13;
  FedRunner runner(std::move(job));
  RunResult result = runner.Run();
  EXPECT_EQ(result.server.rounds, 4);
  EXPECT_FALSE(result.server.aborted);
}

}  // namespace
}  // namespace fedscope
