#include <gtest/gtest.h>

#include <cmath>

#include "fedscope/hpo/fedex.h"
#include "fedscope/hpo/fl_objective.h"
#include "fedscope/hpo/gp_bo.h"
#include "fedscope/hpo/hyperband.h"
#include "fedscope/hpo/pbt.h"
#include "fedscope/hpo/random_search.h"
#include "fedscope/hpo/successive_halving.h"
#include "fedscope/nn/model_zoo.h"

namespace fedscope {
namespace {

// ---------------------------------------------------------------------------
// SearchSpace
// ---------------------------------------------------------------------------

SearchSpace QuadraticSpace() {
  SearchSpace space;
  space.AddDouble("x", -2.0, 2.0);
  space.AddDouble("y", 0.01, 100.0, /*log_scale=*/true);
  return space;
}

TEST(SearchSpaceTest, SampleWithinBounds) {
  SearchSpace space = QuadraticSpace();
  space.AddInt("steps", 1, 10);
  space.AddCategorical("batch", {8, 16, 32});
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    Config c = space.Sample(&rng);
    EXPECT_GE(c.GetDouble("x", -99), -2.0);
    EXPECT_LE(c.GetDouble("x", 99), 2.0);
    EXPECT_GE(c.GetDouble("y", 0), 0.01);
    EXPECT_LE(c.GetDouble("y", 1e9), 100.0);
    const int64_t steps = c.GetInt("steps", -1);
    EXPECT_GE(steps, 1);
    EXPECT_LE(steps, 10);
    const double batch = c.GetDouble("batch", 0);
    EXPECT_TRUE(batch == 8 || batch == 16 || batch == 32);
  }
}

TEST(SearchSpaceTest, LogScaleCoversOrdersOfMagnitude) {
  SearchSpace space;
  space.AddDouble("lr", 1e-4, 1.0, true);
  Rng rng(2);
  int tiny = 0;
  for (int i = 0; i < 1000; ++i) {
    if (space.Sample(&rng).GetDouble("lr", 1) < 1e-2) ++tiny;
  }
  // Log-uniform: half the draws are below the geometric midpoint 1e-2.
  EXPECT_NEAR(tiny / 1000.0, 0.5, 0.08);
}

TEST(SearchSpaceTest, GridEnumerates) {
  SearchSpace space;
  space.AddDouble("a", 0.0, 1.0);
  space.AddCategorical("b", {1, 2, 3});
  auto grid = space.Grid(2);
  EXPECT_EQ(grid.size(), 2u * 3u);
}

TEST(SearchSpaceTest, UnitRoundTrip) {
  SearchSpace space = QuadraticSpace();
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    Config c = space.Sample(&rng);
    Config back = space.FromUnit(space.ToUnit(c));
    EXPECT_NEAR(back.GetDouble("x", 0), c.GetDouble("x", 0), 1e-9);
    EXPECT_NEAR(std::log(back.GetDouble("y", 1)),
                std::log(c.GetDouble("y", 1)), 1e-9);
  }
}

TEST(RecordTrialTest, TracksBestSeen) {
  HpoResult result;
  Config c1, c2;
  c1.Set("x", 1);
  c2.Set("x", 2);
  RecordTrial(&result, 1.0, c1, 0.5, 0.8);
  RecordTrial(&result, 2.0, c2, 0.7, 0.9);  // worse, best stays
  EXPECT_EQ(result.trace.size(), 2u);
  EXPECT_DOUBLE_EQ(result.best_val_loss, 0.5);
  EXPECT_DOUBLE_EQ(result.best_test_accuracy, 0.8);
  EXPECT_DOUBLE_EQ(result.trace[1].best_seen_val_loss, 0.5);
}

// ---------------------------------------------------------------------------
// Synthetic objective: val_loss = (x - 0.5)^2 + log10(y)^2 noisy-free,
// improves with budget (simulating training convergence).
// ---------------------------------------------------------------------------

class QuadraticObjective : public HpoObjective {
 public:
  Outcome Evaluate(const Config& config, int budget_rounds,
                   const Model* warm_start) override {
    ++evaluations;
    const double x = config.GetDouble("x", 0.0);
    const double y = config.GetDouble("y", 1.0);
    const double base =
        (x - 0.5) * (x - 0.5) + std::pow(std::log10(y), 2.0);
    // Accumulated budget improves the result (checkpoint semantics:
    // warm_start carries the budget already spent, encoded in a weight).
    double spent = budget_rounds;
    if (warm_start != nullptr && warm_start->num_layers() > 0) {
      Model* ws = const_cast<Model*>(warm_start);
      spent += ws->Params()[0].value->at(0);
    }
    Outcome outcome;
    outcome.val_loss = base + 2.0 / (1.0 + spent);
    outcome.test_accuracy = 1.0 / (1.0 + outcome.val_loss);
    Rng rng(1);
    outcome.checkpoint = MakeLogisticRegression(1, 1, &rng);
    outcome.checkpoint.Params()[0].value->at(0) =
        static_cast<float>(spent);
    return outcome;
  }
  int evaluations = 0;
};

TEST(RandomSearchTest, FindsReasonableOptimum) {
  QuadraticObjective objective;
  Rng rng(4);
  HpoResult result =
      RunRandomSearch(QuadraticSpace(), &objective, 40, 10, &rng);
  EXPECT_EQ(objective.evaluations, 40);
  EXPECT_EQ(result.trace.size(), 40u);
  EXPECT_NEAR(result.best_config.GetDouble("x", 0), 0.5, 0.5);
  EXPECT_LT(result.best_val_loss, 1.0);
}

TEST(RandomSearchTest, BestSeenIsMonotone) {
  QuadraticObjective objective;
  Rng rng(5);
  HpoResult result =
      RunRandomSearch(QuadraticSpace(), &objective, 20, 5, &rng);
  double last = 1e300;
  for (const auto& event : result.trace) {
    EXPECT_LE(event.best_seen_val_loss, last + 1e-12);
    last = event.best_seen_val_loss;
  }
}

TEST(GridSearchTest, EvaluatesFullGrid) {
  QuadraticObjective objective;
  HpoResult result = RunGridSearch(QuadraticSpace(), &objective, 4, 5);
  EXPECT_EQ(objective.evaluations, 16);
}

TEST(SuccessiveHalvingTest, SpendsMoreOnSurvivors) {
  QuadraticObjective objective;
  Rng rng(6);
  ShaOptions options;
  options.num_configs = 9;
  options.eta = 3;
  options.min_budget = 2;
  options.num_rungs = 3;
  HpoResult result =
      RunSuccessiveHalving(QuadraticSpace(), &objective, options, &rng);
  // Rung sizes 9, 3, 1 -> 13 evaluations.
  EXPECT_EQ(objective.evaluations, 13);
  // The last evaluation used the most budget (checkpoint accumulated).
  EXPECT_LT(result.best_val_loss, 1.5);
}

TEST(SuccessiveHalvingTest, CheckpointRestoreAccumulatesBudget) {
  // The survivor's final loss must beat a fresh evaluation at the rung
  // budget alone, proving the checkpoint was actually restored.
  QuadraticObjective objective;
  Rng rng(7);
  ShaOptions options;
  options.num_configs = 3;
  options.eta = 3;
  options.min_budget = 4;
  options.num_rungs = 2;
  HpoResult sha = RunSuccessiveHalving(QuadraticSpace(), &objective,
                                       options, &rng);
  const auto& final_event = sha.trace.back();
  QuadraticObjective fresh;
  auto cold = fresh.Evaluate(final_event.config, options.min_budget * 3,
                             nullptr);
  EXPECT_LT(final_event.val_loss, cold.val_loss + 1e-9);
}

TEST(HyperbandTest, RunsMultipleBrackets) {
  QuadraticObjective objective;
  Rng rng(8);
  HyperbandOptions options;
  options.max_budget = 9;
  options.eta = 3;
  HpoResult result = RunHyperband(QuadraticSpace(), &objective, options,
                                  &rng);
  EXPECT_GT(objective.evaluations, 10);
  EXPECT_LT(result.best_val_loss, 1.5);
}

TEST(PbtTest, PopulationImprovesOverSteps) {
  QuadraticObjective objective;
  Rng rng(9);
  PbtOptions options;
  options.population = 6;
  options.num_steps = 4;
  options.step_budget = 3;
  HpoResult result = RunPbt(QuadraticSpace(), &objective, options, &rng);
  EXPECT_EQ(objective.evaluations, 6 * 4);
  // Mean loss of the last generation beats the first generation.
  double first_gen = 0.0, last_gen = 0.0;
  for (int i = 0; i < 6; ++i) {
    first_gen += result.trace[i].val_loss;
    last_gen += result.trace[result.trace.size() - 6 + i].val_loss;
  }
  EXPECT_LT(last_gen, first_gen);
}

TEST(GpBoTest, CholeskyFactorAndSolve) {
  // A = [[4, 2], [2, 3]]; solve A x = [8, 7] -> x = [1.25, 1.5].
  std::vector<double> a = {4, 2, 2, 3};
  ASSERT_TRUE(CholeskyFactor(&a, 2));
  auto x = CholeskySolve(a, 2, {8, 7});
  EXPECT_NEAR(x[0], 1.25, 1e-9);
  EXPECT_NEAR(x[1], 1.5, 1e-9);
}

TEST(GpBoTest, CholeskyRejectsIndefinite) {
  std::vector<double> a = {1, 2, 2, 1};  // eigenvalues 3, -1
  EXPECT_FALSE(CholeskyFactor(&a, 2));
}

TEST(GpBoTest, OutperformsPureRandomOnBudget) {
  GpBoOptions options;
  options.init_points = 4;
  options.iterations = 10;
  options.budget_rounds = 5;
  QuadraticObjective gp_objective;
  Rng rng(10);
  HpoResult gp = RunGpBo(QuadraticSpace(), &gp_objective, options, &rng);
  EXPECT_EQ(gp_objective.evaluations, 14);
  EXPECT_LT(gp.best_val_loss, 1.2);
}

// ---------------------------------------------------------------------------
// FedEx policy
// ---------------------------------------------------------------------------

std::vector<Config> TwoArms() {
  Config good, bad;
  good.Set("hpo.lr", 0.1);
  bad.Set("hpo.lr", 10.0);
  return {good, bad};
}

TEST(FedExPolicyTest, StartsUniform) {
  FedExPolicy policy(TwoArms(), 0.1, 1);
  EXPECT_NEAR(policy.probabilities()[0], 0.5, 1e-9);
  EXPECT_NEAR(policy.probabilities()[1], 0.5, 1e-9);
}

TEST(FedExPolicyTest, LearnsToPreferLowCostArm) {
  FedExPolicy policy(TwoArms(), 0.3, 2);
  auto provider = policy.MakeConfigProvider();
  auto consumer = policy.MakeFeedbackConsumer();
  Rng rng(11);
  for (int round = 0; round < 300; ++round) {
    const int client = 1;
    Config arm = provider(client, round);
    // Arm 0 (lr 0.1) yields low val loss; arm 1 high.
    const double cost = arm.GetDouble("hpo.lr", 0) < 1.0
                            ? 0.2 + rng.Uniform() * 0.05
                            : 1.0 + rng.Uniform() * 0.05;
    Payload feedback;
    feedback.SetDouble("val_loss_after", cost);
    consumer(client, round, feedback);
  }
  EXPECT_EQ(policy.best_arm_index(), 0);
  EXPECT_GT(policy.probabilities()[0], 0.8);
  EXPECT_GT(policy.num_updates(), 250);
}

TEST(FedExPolicyTest, IgnoresFeedbackWithoutAssignment) {
  FedExPolicy policy(TwoArms(), 0.3, 3);
  auto consumer = policy.MakeFeedbackConsumer();
  Payload feedback;
  feedback.SetDouble("val_loss_after", 1.0);
  consumer(/*client=*/5, 0, feedback);  // never assigned
  EXPECT_EQ(policy.num_updates(), 0);
}

TEST(FedExPolicyTest, IgnoresFeedbackWithoutValLoss) {
  FedExPolicy policy(TwoArms(), 0.3, 4);
  auto provider = policy.MakeConfigProvider();
  auto consumer = policy.MakeFeedbackConsumer();
  provider(1, 0);
  Payload empty;
  consumer(1, 0, empty);
  EXPECT_EQ(policy.num_updates(), 0);
}

TEST(FedExPolicyTest, SampleArmsUsesSpace) {
  SearchSpace space;
  space.AddDouble("hpo.lr", 0.01, 1.0, true);
  Rng rng(12);
  auto arms = FedExPolicy::SampleArms(space, 5, &rng);
  EXPECT_EQ(arms.size(), 5u);
  for (const auto& arm : arms) {
    EXPECT_TRUE(arm.Has("hpo.lr"));
  }
}

TEST(RunFedExWrappedTest, ProducesTrace) {
  SearchSpace wrapper;
  wrapper.AddDouble("x", 0.0, 1.0);
  SearchSpace client_space;
  client_space.AddDouble("hpo.lr", 0.01, 1.0, true);
  Rng rng(13);
  auto runner = [](const Config& config, FedExPolicy* policy,
                   int budget) -> FedExCourseResult {
    // Fake course: feed the policy some updates; wrapper x controls loss.
    auto provider = policy->MakeConfigProvider();
    auto consumer = policy->MakeFeedbackConsumer();
    for (int r = 0; r < budget; ++r) {
      provider(1, r);
      Payload p;
      p.SetDouble("val_loss_after", 0.5);
      consumer(1, r, p);
    }
    FedExCourseResult result;
    result.val_loss = config.GetDouble("x", 0.0);
    result.test_accuracy = 1.0 - result.val_loss;
    return result;
  };
  HpoResult result = RunFedExWrapped(wrapper, client_space, 3, runner, 5,
                                     4, 0.2, &rng);
  EXPECT_EQ(result.trace.size(), 5u);
  EXPECT_TRUE(result.best_config.Has("hpo.lr"));  // arm merged in
}

}  // namespace
}  // namespace fedscope
