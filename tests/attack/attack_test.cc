#include <gtest/gtest.h>

#include "fedscope/attack/backdoor.h"
#include "fedscope/attack/gradient_inversion.h"
#include "fedscope/attack/membership.h"
#include "fedscope/attack/property_inference.h"
#include "fedscope/core/trainer.h"
#include "fedscope/nn/model_zoo.h"
#include "fedscope/privacy/dp.h"
#include "fedscope/tensor/tensor_ops.h"

namespace fedscope {
namespace {

// ---------------------------------------------------------------------------
// Gradient inversion (DLG / iDLG)
// ---------------------------------------------------------------------------

TEST(GradientInversionTest, ObserveGradientsNonEmpty) {
  Rng rng(1);
  Model model = MakeLogisticRegression(8, 3, &rng);
  Tensor x = Tensor::Randn({1, 8}, &rng);
  auto grads = ObserveGradients(&model, x, {1});
  EXPECT_EQ(grads.size(), 2u);
  EXPECT_GT(SdNorm(grads), 0.0);
}

TEST(GradientInversionTest, DeltaToGradientsInvertsSgdStep) {
  StateDict delta;
  delta["fc.weight"] = Tensor::FromVector({-0.5f, 1.0f});
  auto grads = DeltaToGradients(delta, 0.5);
  EXPECT_FLOAT_EQ(grads.at("fc.weight").at(0), 1.0f);
  EXPECT_FLOAT_EQ(grads.at("fc.weight").at(1), -2.0f);
}

TEST(GradientInversionTest, IdlgRecoversLabelAndInput) {
  // The headline iDLG result: a single example is recovered *exactly*
  // from a softmax-regression gradient.
  Rng rng(2);
  Model model = MakeLogisticRegression(16, 5, &rng);
  Tensor secret = Tensor::Randn({1, 16}, &rng);
  const int64_t secret_label = 3;
  auto grads = ObserveGradients(&model, secret, {secret_label});

  auto result = InvertSoftmaxRegression(grads);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->inferred_label, secret_label);
  EXPECT_LT(ReconstructionMse(secret.Reshape({16}),
                              result->reconstructed_x),
            1e-6);
}

TEST(GradientInversionTest, BatchGradientRejectedByIdlg) {
  Rng rng(3);
  Model model = MakeLogisticRegression(8, 4, &rng);
  Tensor batch = Tensor::Randn({4, 8}, &rng);
  auto grads = ObserveGradients(&model, batch, {0, 1, 2, 3});
  // Multiple negative bias-grad entries -> single-example recovery fails.
  EXPECT_FALSE(InvertSoftmaxRegression(grads).ok());
}

TEST(GradientInversionTest, DpNoiseDefeatsAnalyticInversion) {
  // The Figure 13 mechanism: noise on the update destroys reconstruction.
  Rng rng(4);
  Model model = MakeLogisticRegression(16, 5, &rng);
  Tensor secret = Tensor::Randn({1, 16}, &rng);
  auto grads = ObserveGradients(&model, secret, {2});

  StateDict noised = grads;
  DpOptions dp;
  dp.enable = true;
  dp.clip_norm = SdNorm(grads);  // no clipping effect, pure noise
  dp.noise_multiplier = 0.5;
  Rng noise_rng(5);
  ApplyDpToDelta(&noised, dp, &noise_rng);

  auto clean = InvertSoftmaxRegression(grads);
  ASSERT_TRUE(clean.ok());
  const double clean_mse =
      ReconstructionMse(secret.Reshape({16}), clean->reconstructed_x);
  auto attacked = InvertSoftmaxRegression(noised);
  if (attacked.ok()) {
    const double noisy_mse =
        ReconstructionMse(secret.Reshape({16}), attacked->reconstructed_x);
    EXPECT_GT(noisy_mse, 100.0 * std::max(clean_mse, 1e-9));
  }
  // Either the attack errored out or produced garbage — both are a win
  // for the defender.
  SUCCEED();
}

TEST(GradientInversionTest, IterativeDlgReducesMatchLoss) {
  Rng rng(6);
  Model model = MakeLogisticRegression(6, 3, &rng);
  Tensor secret = Tensor::Randn({1, 6}, &rng);
  auto observed = ObserveGradients(&model, secret, {1});

  DlgOptions options;
  options.iterations = 40;
  options.lr = 1.0;
  Rng attack_rng(7);
  auto result = InvertGradientIterative(&model, observed, {6}, "fc",
                                        options, &attack_rng);
  EXPECT_EQ(result.inferred_label, 1);
  EXPECT_LT(result.gradient_match_loss, 1e-3);
  // Reconstruction correlates with the secret.
  EXPECT_LT(ReconstructionMse(secret.Reshape({6}), result.reconstructed_x),
            0.5);
}

TEST(GradientInversionTest, PsnrHigherForBetterReconstruction) {
  Tensor truth = Tensor::FromVector({0, 1, 2, 3});
  Tensor good = Tensor::FromVector({0.01f, 1.02f, 1.98f, 3.0f});
  Tensor bad = Tensor::FromVector({3, 2, 1, 0});
  EXPECT_GT(ReconstructionPsnr(truth, good),
            ReconstructionPsnr(truth, bad));
}

// ---------------------------------------------------------------------------
// Membership inference
// ---------------------------------------------------------------------------

Dataset Blobs(int64_t n, uint64_t seed, double spread = 0.6) {
  Rng rng(seed);
  Dataset d;
  d.x = Tensor({n, 4});
  d.labels.resize(n);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t y = i % 2;
    d.labels[i] = y;
    for (int64_t j = 0; j < 4; ++j) {
      d.x.at(i, j) =
          static_cast<float>((y ? 1.0 : -1.0) + rng.Normal(0, spread));
    }
  }
  return d;
}

TEST(MembershipTest, RocAucBasics) {
  EXPECT_DOUBLE_EQ(RocAuc({2.0, 3.0}, {0.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(RocAuc({0.0}, {1.0}), 0.0);
  EXPECT_DOUBLE_EQ(RocAuc({1.0}, {1.0}), 0.5);
}

TEST(MembershipTest, OverfitModelLeaksMembership) {
  // A nearly-unlearnable task (label noise dominates) forces the model to
  // memorize members — the regime where the loss-threshold attack shines.
  Dataset members = Blobs(40, 10, 3.0);
  Dataset nonmembers = Blobs(40, 11, 3.0);
  Rng rng(12);
  Model model = MakeMlp({4, 64, 64, 2}, &rng);
  GeneralTrainer trainer;
  TrainConfig config;
  config.lr = 0.3;
  config.local_steps = 1500;
  config.batch_size = 40;
  Rng trng(13);
  trainer.Train(&model, members, config, &trng);

  // Memorization happened: near-perfect accuracy on members.
  ASSERT_GT(EvaluateClassifier(&model, members).accuracy, 0.95);
  auto result = LossThresholdAttack(&model, members, nonmembers);
  EXPECT_GT(result.auc, 0.7);
  EXPECT_GT(result.best_accuracy, 0.6);
}

TEST(MembershipTest, UntrainedModelDoesNotLeak) {
  Dataset members = Blobs(40, 14);
  Dataset nonmembers = Blobs(40, 15);
  Rng rng(16);
  Model model = MakeMlp({4, 8, 2}, &rng);
  auto result = LossThresholdAttack(&model, members, nonmembers);
  EXPECT_NEAR(result.auc, 0.5, 0.2);
}

TEST(MembershipTest, PerExampleLossesMatchBatchLoss) {
  Rng rng(17);
  Model model = MakeLogisticRegression(4, 2, &rng);
  Dataset data = Blobs(16, 18);
  auto losses = PerExampleLosses(&model, data);
  double mean = 0.0;
  for (double l : losses) mean += l;
  mean /= losses.size();
  EXPECT_NEAR(mean, EvaluateClassifier(&model, data).loss, 1e-4);
}

// ---------------------------------------------------------------------------
// Property inference
// ---------------------------------------------------------------------------

TEST(PropertyInferenceTest, UpdateFeaturesFixedWidth) {
  StateDict update;
  update["a"] = Tensor::FromVector({1, 2, 3});
  update["b"] = Tensor::FromVector({4});
  auto features = UpdateFeatures(update);
  EXPECT_EQ(features.size(), 10u);  // 5 per tensor
}

TEST(PropertyInferenceTest, SeparableUpdatesAreClassified) {
  // Shadow "updates" whose statistics depend on the property bit.
  Rng rng(19);
  std::vector<std::vector<float>> features;
  std::vector<int64_t> labels;
  for (int i = 0; i < 60; ++i) {
    const int64_t property = i % 2;
    StateDict update;
    const float mean = property ? 0.8f : -0.8f;
    Tensor t({16});
    for (int64_t j = 0; j < 16; ++j) {
      t.at(j) = mean + static_cast<float>(rng.Normal(0, 0.3));
    }
    update["w"] = t;
    features.push_back(UpdateFeatures(update));
    labels.push_back(property);
  }
  auto result = RunPropertyInference(features, labels, 0.3, &rng);
  EXPECT_GT(result.test_accuracy, 0.8);
}

TEST(PropertyInferenceTest, DetectsLabelSkewFromRealTrainerUpdates) {
  // The full PIA pipeline against *actual* training updates: shadow
  // participants train one local round; the property is whether their
  // data is dominated by class 0. The meta-classifier must recover it
  // from update statistics alone.
  Rng rng(40);
  std::vector<std::vector<float>> features;
  std::vector<int64_t> labels;
  Rng init_rng(41);
  Model reference = MakeLogisticRegression(4, 2, &init_rng);
  for (int shadow = 0; shadow < 60; ++shadow) {
    const int64_t skewed = shadow % 2;
    // Skewed shadows hold 90% class 0; balanced hold 50/50.
    Dataset data = Blobs(40, 1000 + shadow);
    if (skewed) {
      for (auto& y : data.labels) {
        if (rng.Bernoulli(0.8)) y = 0;
      }
    }
    Model model = reference;
    GeneralTrainer trainer;
    TrainConfig config;
    config.lr = 0.2;
    config.local_steps = 8;
    config.batch_size = 16;
    Rng trng(2000 + shadow);
    StateDict before = model.GetStateDict();
    trainer.Train(&model, data, config, &trng);
    features.push_back(UpdateFeatures(SdSub(model.GetStateDict(), before)));
    labels.push_back(skewed);
  }
  auto result = RunPropertyInference(features, labels, 0.3, &rng);
  EXPECT_GT(result.test_accuracy, 0.75);
}

TEST(PropertyInferenceTest, UnrelatedUpdatesNearChance) {
  Rng rng(20);
  std::vector<std::vector<float>> features;
  std::vector<int64_t> labels;
  for (int i = 0; i < 60; ++i) {
    StateDict update;
    update["w"] = Tensor::Randn({16}, &rng);
    features.push_back(UpdateFeatures(update));
    labels.push_back(i % 2);  // property independent of features
  }
  auto result = RunPropertyInference(features, labels, 0.3, &rng);
  EXPECT_LT(result.test_accuracy, 0.85);
}

// ---------------------------------------------------------------------------
// Backdoor attacks
// ---------------------------------------------------------------------------

Dataset Images(int64_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset d;
  d.x = Tensor({n, 1, 4, 4});
  d.labels.resize(n);
  for (int64_t i = 0; i < n; ++i) {
    d.labels[i] = i % 2;
    Tensor img = Tensor::Randn({1, 4, 4}, &rng, 0.5f);
    // class signal in the mean
    for (int64_t j = 0; j < img.numel(); ++j) {
      img.at(j) += d.labels[i] ? 1.0f : -1.0f;
    }
    d.x.SetSlice(i, img);
  }
  return d;
}

TEST(BackdoorTest, BadNetsTriggerStampsPatch) {
  BackdoorOptions options;
  options.trigger_size = 2;
  options.trigger_value = 9.0f;
  Tensor img = Tensor::Zeros({1, 4, 4});
  ApplyTrigger(&img, options);
  EXPECT_EQ(img.at(0), 9.0f);       // (0,0)
  EXPECT_EQ(img.at(1), 9.0f);       // (0,1)
  EXPECT_EQ(img.at(4), 9.0f);       // (1,0)
  EXPECT_EQ(img.at(15), 0.0f);      // untouched far corner
}

TEST(BackdoorTest, BlendedTriggerMixes) {
  BackdoorOptions options;
  options.kind = TriggerKind::kBlended;
  options.blend_alpha = 0.5;
  Tensor img = Tensor::Zeros({1, 4, 4});
  Tensor before = img;
  ApplyTrigger(&img, options);
  EXPECT_FALSE(img == before);
}

TEST(BackdoorTest, LabelFlipLeavesInputUntouched) {
  BackdoorOptions options;
  options.kind = TriggerKind::kLabelFlip;
  Rng rng(27);
  Tensor img = Tensor::Randn({1, 4, 4}, &rng);
  Tensor before = img;
  ApplyTrigger(&img, options);
  EXPECT_TRUE(img == before);
}

TEST(BackdoorTest, DataPoisonerRelabelsFraction) {
  Dataset data = Images(100, 21);
  BackdoorOptions options;
  options.target_label = 1;
  options.poison_frac = 0.4;
  auto poisoner = MakeDataPoisoner(options);
  const auto original_labels = data.labels;
  poisoner(&data);
  int changed_to_target = 0;
  for (size_t i = 0; i < data.labels.size(); ++i) {
    if (data.labels[i] == 1 && original_labels[i] != 1) ++changed_to_target;
  }
  EXPECT_GT(changed_to_target, 10);
  EXPECT_LE(changed_to_target, 40);
}

TEST(BackdoorTest, PoisonedTrainingPlantsBackdoor) {
  Dataset train = Images(200, 22);
  BackdoorOptions options;
  options.target_label = 0;
  options.poison_frac = 0.5;
  options.trigger_value = 5.0f;
  MakeDataPoisoner(options)(&train);

  Rng rng(23);
  Model model;
  model.Add("flat", std::make_unique<Flatten>());
  model.Add("fc", std::make_unique<Linear>(16, 2, &rng));
  GeneralTrainer trainer;
  TrainConfig config;
  config.lr = 0.2;
  config.local_steps = 150;
  config.batch_size = 32;
  Rng trng(24);
  trainer.Train(&model, train, config, &trng);

  Dataset clean_test = Images(100, 25);
  const double main_acc = EvaluateClassifier(&model, clean_test).accuracy;
  const double asr = AttackSuccessRate(&model, clean_test, options);
  EXPECT_GT(main_acc, 0.8);  // main task intact
  EXPECT_GT(asr, 0.8);       // trigger flips predictions
}

TEST(BackdoorTest, AttackSuccessRateIgnoresTargetClassExamples) {
  // A model that always predicts the target gets ASR 1 on non-target
  // examples; with an empty eligible set ASR is 0.
  Dataset data;
  data.x = Tensor({4, 1, 4, 4});
  data.labels = {1, 1, 1, 1};
  BackdoorOptions options;
  options.target_label = 1;
  Rng rng(26);
  Model model;
  model.Add("flat", std::make_unique<Flatten>());
  model.Add("fc", std::make_unique<Linear>(16, 2, &rng));
  EXPECT_EQ(AttackSuccessRate(&model, data, options), 0.0);
}

TEST(BackdoorTest, EdgeCasePoisonerAppendsOodExamples) {
  Dataset data = Images(50, 31);
  const int64_t before = data.size();
  BackdoorOptions options;
  options.kind = TriggerKind::kEdgeCase;
  options.target_label = 1;
  options.poison_frac = 0.2;
  MakeDataPoisoner(options)(&data);
  EXPECT_EQ(data.size(), before + 10);
  // Appended examples carry the target label and live far out of
  // distribution; originals are untouched.
  for (int64_t i = before; i < data.size(); ++i) {
    EXPECT_EQ(data.labels[i], 1);
    EXPECT_GT(data.x.Slice(i).at(0), 3.0f);
  }
}

TEST(BackdoorTest, EdgeCaseBackdoorPlantsAndMeasures) {
  Dataset train = Images(200, 32);
  BackdoorOptions options;
  options.kind = TriggerKind::kEdgeCase;
  options.target_label = 0;
  options.poison_frac = 0.2;
  options.edge_scale = 2.0f;  // rare-but-plausible input region
  MakeDataPoisoner(options)(&train);

  Rng rng(33);
  Model model;
  model.Add("flat", std::make_unique<Flatten>());
  model.Add("fc", std::make_unique<Linear>(16, 2, &rng));
  GeneralTrainer trainer;
  TrainConfig config;
  config.lr = 0.05;
  config.local_steps = 400;
  config.batch_size = 32;
  Rng trng(34);
  trainer.Train(&model, train, config, &trng);

  Dataset clean_test = Images(100, 35);
  EXPECT_GT(EvaluateClassifier(&model, clean_test).accuracy, 0.8);
  EXPECT_GT(AttackSuccessRate(&model, clean_test, options), 0.9);
}

TEST(BackdoorTest, DistributedTriggerComposesFromParts) {
  // DBA: two attackers stamp different halves of the trigger; the full
  // trigger (both halves) activates the backdoor at inference time.
  Dataset train = Images(300, 36);

  BackdoorOptions left;
  left.target_label = 0;
  left.poison_frac = 0.4;
  left.trigger_size = 2;
  left.trigger_offset_w = 0;
  left.trigger_value = 5.0f;
  BackdoorOptions right = left;
  right.trigger_offset_w = 2;

  // Attacker 1 poisons the first half of the data with the left part,
  // attacker 2 the second half with the right part.
  Dataset half1 = train.Subset([&] {
    std::vector<int64_t> idx;
    for (int64_t i = 0; i < 150; ++i) idx.push_back(i);
    return idx;
  }());
  Dataset half2 = train.Subset([&] {
    std::vector<int64_t> idx;
    for (int64_t i = 150; i < 300; ++i) idx.push_back(i);
    return idx;
  }());
  MakeDataPoisoner(left)(&half1);
  MakeDataPoisoner(right)(&half2);
  Dataset poisoned;
  poisoned.x = Tensor({300, 1, 4, 4});
  poisoned.labels.resize(300);
  for (int64_t i = 0; i < 150; ++i) {
    poisoned.x.SetSlice(i, half1.x.Slice(i));
    poisoned.labels[i] = half1.labels[i];
    poisoned.x.SetSlice(150 + i, half2.x.Slice(i));
    poisoned.labels[150 + i] = half2.labels[i];
  }

  Rng rng(37);
  Model model;
  model.Add("flat", std::make_unique<Flatten>());
  model.Add("fc", std::make_unique<Linear>(16, 2, &rng));
  GeneralTrainer trainer;
  TrainConfig config;
  config.lr = 0.2;
  config.local_steps = 200;
  config.batch_size = 32;
  Rng trng(38);
  trainer.Train(&model, poisoned, config, &trng);

  // Evaluate with the COMBINED trigger (apply both halves).
  Dataset clean_test = Images(100, 39);
  std::vector<int64_t> eligible;
  for (int64_t i = 0; i < clean_test.size(); ++i) {
    if (clean_test.labels[i] != 0) eligible.push_back(i);
  }
  Dataset triggered = clean_test.Subset(eligible);
  for (int64_t i = 0; i < triggered.size(); ++i) {
    Tensor img = triggered.x.Slice(i);
    ApplyTrigger(&img, left);
    ApplyTrigger(&img, right);
    triggered.x.SetSlice(i, img);
  }
  Tensor scores = model.Forward(triggered.x, false);
  auto preds = ArgmaxRows(scores);
  int64_t hits = 0;
  for (int64_t p : preds) {
    if (p == 0) ++hits;
  }
  EXPECT_GT(static_cast<double>(hits) / preds.size(), 0.8);
}

TEST(BackdoorTest, ScalingPoisonerScales) {
  StateDict delta;
  delta["w"] = Tensor::FromVector({1, -2});
  MakeScalingPoisoner(10.0)(&delta);
  EXPECT_EQ(delta.at("w").at(0), 10.0f);
  EXPECT_EQ(delta.at("w").at(1), -20.0f);
}

TEST(BackdoorTest, NeurotoxinMasksLargestCoordinates) {
  StateDict delta;
  delta["w"] = Tensor::FromVector({0.1f, 5.0f, 0.2f, -6.0f, 0.05f});
  MakeNeurotoxinPoisoner(0.4)(&delta);
  // The two largest-magnitude coordinates are zeroed.
  EXPECT_EQ(delta.at("w").at(1), 0.0f);
  EXPECT_EQ(delta.at("w").at(3), 0.0f);
  EXPECT_FLOAT_EQ(delta.at("w").at(0), 0.1f);
  EXPECT_FLOAT_EQ(delta.at("w").at(2), 0.2f);
}

TEST(BackdoorTest, NeurotoxinZeroFracIsNoop) {
  StateDict delta;
  delta["w"] = Tensor::FromVector({1, 2, 3});
  StateDict before = delta;
  MakeNeurotoxinPoisoner(0.0)(&delta);
  EXPECT_TRUE(delta == before);
}

}  // namespace
}  // namespace fedscope
