#include "fedscope/sim/response_model.h"

#include <gtest/gtest.h>

namespace fedscope {
namespace {

TEST(ResponseModelTest, ExpectedLatencyComposition) {
  ResponseModel model(0.0);
  DeviceProfile device{100.0, 1000.0, 2000.0, 0.0};
  WorkEstimate work;
  work.samples_processed = 200;  // 2s compute
  work.down_bytes = 4000;        // 2s download
  work.up_bytes = 1000;          // 1s upload
  EXPECT_DOUBLE_EQ(model.ExpectedLatency(device, work), 5.0);
}

TEST(ResponseModelTest, NoJitterIsDeterministic) {
  ResponseModel model(0.0);
  DeviceProfile device{50.0, 1e6, 1e6, 0.0};
  WorkEstimate work{100, 1000, 1000};
  Rng rng(1);
  auto a = model.Simulate(device, work, &rng);
  auto b = model.Simulate(device, work, &rng);
  EXPECT_FALSE(a.crashed);
  EXPECT_DOUBLE_EQ(a.latency_seconds, b.latency_seconds);
}

TEST(ResponseModelTest, JitterVariesLatency) {
  ResponseModel model(0.3);
  DeviceProfile device{50.0, 1e6, 1e6, 0.0};
  WorkEstimate work{100, 1000, 1000};
  Rng rng(2);
  auto a = model.Simulate(device, work, &rng);
  auto b = model.Simulate(device, work, &rng);
  EXPECT_NE(a.latency_seconds, b.latency_seconds);
  EXPECT_GT(a.latency_seconds, 0.0);
}

TEST(ResponseModelTest, SlowerDeviceTakesLonger) {
  ResponseModel model(0.0);
  DeviceProfile fast{1000.0, 1e7, 1e7, 0.0};
  DeviceProfile slow{10.0, 1e4, 1e4, 0.0};
  WorkEstimate work{100, 10000, 10000};
  EXPECT_GT(model.ExpectedLatency(slow, work),
            10.0 * model.ExpectedLatency(fast, work));
}

TEST(ResponseModelTest, CrashProbabilityRespected) {
  ResponseModel model(0.0);
  DeviceProfile device{50.0, 1e6, 1e6, 0.5};
  WorkEstimate work{10, 100, 100};
  Rng rng(3);
  int crashes = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    if (model.Simulate(device, work, &rng).crashed) ++crashes;
  }
  EXPECT_NEAR(static_cast<double>(crashes) / trials, 0.5, 0.05);
}

TEST(ResponseModelTest, ZeroCrashNeverCrashes) {
  ResponseModel model(0.2);
  DeviceProfile device{50.0, 1e6, 1e6, 0.0};
  WorkEstimate work{10, 100, 100};
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    EXPECT_FALSE(model.Simulate(device, work, &rng).crashed);
  }
}

TEST(ResponseModelTest, LatencyAlwaysPositive) {
  ResponseModel model(1.0);
  DeviceProfile device{1e9, 1e12, 1e12, 0.0};
  WorkEstimate work{0, 0, 0};
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_GT(model.Simulate(device, work, &rng).latency_seconds, 0.0);
  }
}

}  // namespace
}  // namespace fedscope
