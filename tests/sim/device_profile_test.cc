#include "fedscope/sim/device_profile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace fedscope {
namespace {

TEST(MakeFleetTest, ProducesRequestedCount) {
  Rng rng(1);
  auto fleet = MakeFleet(50, FleetOptions{}, &rng);
  EXPECT_EQ(fleet.size(), 50u);
  for (const auto& d : fleet) {
    EXPECT_GT(d.compute_speed, 0.0);
    EXPECT_GT(d.up_bandwidth, 0.0);
  }
}

TEST(MakeFleetTest, IsHeterogeneous) {
  Rng rng(2);
  FleetOptions options;
  options.compute_sigma = 0.8;
  auto fleet = MakeFleet(200, options, &rng);
  double lo = 1e18, hi = 0.0;
  for (const auto& d : fleet) {
    lo = std::min(lo, d.compute_speed);
    hi = std::max(hi, d.compute_speed);
  }
  // Lognormal sigma 0.8 + stragglers spans > 10x.
  EXPECT_GT(hi / lo, 10.0);
}

TEST(MakeFleetTest, StragglersAreSlower) {
  Rng rng(3);
  FleetOptions with, without;
  with.straggler_frac = 0.5;
  without.straggler_frac = 0.0;
  auto slow_fleet = MakeFleet(500, with, &rng);
  Rng rng2(3);
  auto fast_fleet = MakeFleet(500, without, &rng2);
  double slow_mean = 0.0, fast_mean = 0.0;
  for (int i = 0; i < 500; ++i) {
    slow_mean += slow_fleet[i].compute_speed;
    fast_mean += fast_fleet[i].compute_speed;
  }
  EXPECT_LT(slow_mean, fast_mean);
}

TEST(MakeFleetTest, CrashProbPropagates) {
  Rng rng(4);
  FleetOptions options;
  options.crash_prob = 0.07;
  auto fleet = MakeFleet(5, options, &rng);
  for (const auto& d : fleet) EXPECT_DOUBLE_EQ(d.crash_prob, 0.07);
}

TEST(FleetTraceTest, ParsesWellFormedTrace) {
  const std::string trace =
      "# my trace\n"
      "100,1e6,2e6\n"
      "50,5e5,5e5,0.1\n"
      "\n"
      "200,2e6,2e6,0  # fast device\n";
  auto fleet = ParseFleetTrace(trace);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  ASSERT_EQ(fleet->size(), 3u);
  EXPECT_DOUBLE_EQ((*fleet)[0].compute_speed, 100.0);
  EXPECT_DOUBLE_EQ((*fleet)[0].crash_prob, 0.0);
  EXPECT_DOUBLE_EQ((*fleet)[1].crash_prob, 0.1);
  EXPECT_DOUBLE_EQ((*fleet)[2].down_bandwidth, 2e6);
}

TEST(FleetTraceTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseFleetTrace("abc,1,1\n").ok());
  EXPECT_FALSE(ParseFleetTrace("1,2\n").ok());          // too few fields
  EXPECT_FALSE(ParseFleetTrace("1,2,3,4,5\n").ok());    // too many
  EXPECT_FALSE(ParseFleetTrace("-1,2,3\n").ok());       // non-positive
  EXPECT_FALSE(ParseFleetTrace("1,2,3,1.5\n").ok());    // bad crash prob
  EXPECT_FALSE(ParseFleetTrace("").ok());               // empty
  EXPECT_FALSE(ParseFleetTrace("# only comments\n").ok());
}

TEST(FleetTraceTest, RoundTripsGeneratedFleet) {
  Rng rng(11);
  FleetOptions options;
  options.crash_prob = 0.05;
  auto fleet = MakeFleet(25, options, &rng);
  auto parsed = ParseFleetTrace(FleetToTrace(fleet));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), fleet.size());
  for (size_t i = 0; i < fleet.size(); ++i) {
    EXPECT_NEAR((*parsed)[i].compute_speed, fleet[i].compute_speed,
                1e-4 * fleet[i].compute_speed);
    EXPECT_NEAR((*parsed)[i].crash_prob, fleet[i].crash_prob, 1e-9);
  }
}

TEST(ResponsivenessScoresTest, FasterDeviceScoresHigher) {
  DeviceProfile fast{1000.0, 1e7, 1e7, 0.0};
  DeviceProfile slow{10.0, 1e5, 1e5, 0.0};
  auto scores = ResponsivenessScores({fast, slow});
  EXPECT_GT(scores[0], scores[1]);
}

TEST(GroupByResponsivenessTest, PartitionsAllClients) {
  Rng rng(5);
  auto fleet = MakeFleet(47, FleetOptions{}, &rng);
  auto groups = GroupByResponsiveness(fleet, 5);
  EXPECT_EQ(groups.size(), 5u);
  std::set<int> seen;
  for (const auto& group : groups) {
    for (int id : group) seen.insert(id);
  }
  EXPECT_EQ(seen.size(), 47u);
}

TEST(GroupByResponsivenessTest, GroupZeroIsFastest) {
  Rng rng(6);
  auto fleet = MakeFleet(60, FleetOptions{}, &rng);
  auto groups = GroupByResponsiveness(fleet, 3);
  auto scores = ResponsivenessScores(fleet);
  double g0_min = 1e18, g2_max = 0.0;
  for (int id : groups[0]) g0_min = std::min(g0_min, scores[id]);
  for (int id : groups[2]) g2_max = std::max(g2_max, scores[id]);
  EXPECT_GE(g0_min, g2_max);
}

}  // namespace
}  // namespace fedscope
