#include "fedscope/sim/event_queue.h"

#include <gtest/gtest.h>

namespace fedscope {
namespace {

Message At(double t, const std::string& type = "m") {
  Message m;
  m.timestamp = t;
  m.msg_type = type;
  return m;
}

TEST(EventQueueTest, PopsInTimestampOrder) {
  EventQueue q;
  q.Push(At(3.0, "c"));
  q.Push(At(1.0, "a"));
  q.Push(At(2.0, "b"));
  EXPECT_EQ(q.Pop().msg_type, "a");
  EXPECT_EQ(q.Pop().msg_type, "b");
  EXPECT_EQ(q.Pop().msg_type, "c");
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  q.Push(At(1.0, "first"));
  q.Push(At(1.0, "second"));
  q.Push(At(1.0, "third"));
  EXPECT_EQ(q.Pop().msg_type, "first");
  EXPECT_EQ(q.Pop().msg_type, "second");
  EXPECT_EQ(q.Pop().msg_type, "third");
}

TEST(EventQueueTest, PeekTimeMatchesEarliest) {
  EventQueue q;
  q.Push(At(5.5));
  q.Push(At(2.25));
  EXPECT_DOUBLE_EQ(q.PeekTime(), 2.25);
  q.Pop();
  EXPECT_DOUBLE_EQ(q.PeekTime(), 5.5);
}

TEST(EventQueueTest, SizeAndTotalPushed) {
  EventQueue q;
  for (int i = 0; i < 10; ++i) q.Push(At(i));
  EXPECT_EQ(q.Size(), 10u);
  q.Pop();
  EXPECT_EQ(q.Size(), 9u);
  EXPECT_EQ(q.total_pushed(), 10);
}

TEST(EventQueueTest, EqualTimestampsPopInInsertionOrder) {
  // The documented tie-break contract: FIFO by push sequence. The
  // threaded backend's canonical commit order is defined as this pop
  // order, so this test pins the determinism foundation it leans on.
  EventQueue q;
  q.Push(At(1.0, "first"));
  q.Push(At(2.0, "later"));
  q.Push(At(1.0, "second"));
  q.Push(At(1.0, "third"));
  EXPECT_EQ(q.Pop().msg_type, "first");
  EXPECT_EQ(q.Pop().msg_type, "second");
  EXPECT_EQ(q.Pop().msg_type, "third");
  EXPECT_EQ(q.Pop().msg_type, "later");
}

TEST(EventQueueTest, PeekReadyBatchIsEqualTimeSetInPopOrder) {
  EventQueue q;
  q.Push(At(2.0, "late"));
  q.Push(At(1.0, "a"));
  q.Push(At(1.0, "b"));
  q.Push(At(1.0, "c"));
  const auto batch = q.PeekReadyBatch();
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0]->msg_type, "a");
  EXPECT_EQ(batch[1]->msg_type, "b");
  EXPECT_EQ(batch[2]->msg_type, "c");
  EXPECT_EQ(q.Size(), 4u);  // non-consuming
  EXPECT_EQ(q.Pop().msg_type, "a");
  EXPECT_EQ(q.Pop().msg_type, "b");
  EXPECT_EQ(q.Pop().msg_type, "c");
  EXPECT_EQ(q.Pop().msg_type, "late");
}

TEST(EventQueueTest, PeekReadyBatchAfterEqualTimePush) {
  // A push at the same timestamp lands behind the existing ready set
  // (larger sequence number) — the invariant that keeps a mid-commit
  // reply from overtaking the rest of a batch.
  EventQueue q;
  q.Push(At(1.0, "a"));
  q.Push(At(1.0, "b"));
  EXPECT_EQ(q.Pop().msg_type, "a");
  q.Push(At(1.0, "c"));
  const auto batch = q.PeekReadyBatch();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0]->msg_type, "b");
  EXPECT_EQ(batch[1]->msg_type, "c");
}

TEST(EventQueueTest, PopEmptyDies) {
  EventQueue q;
  EXPECT_DEATH(q.Pop(), "");
}

TEST(EventQueueTest, InterleavedPushPopStaysSorted) {
  EventQueue q;
  q.Push(At(10.0, "late"));
  q.Push(At(1.0, "early"));
  EXPECT_EQ(q.Pop().msg_type, "early");
  q.Push(At(5.0, "mid"));
  EXPECT_EQ(q.Pop().msg_type, "mid");
  EXPECT_EQ(q.Pop().msg_type, "late");
}

}  // namespace
}  // namespace fedscope
