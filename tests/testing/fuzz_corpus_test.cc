// Replays tests/fuzz/corpus/ (tier-1): every *.course spec must pass all
// invariant oracles, every *_reject.hex frame must fail its decoder
// with a Status, and every *_roundtrip.hex frame must decode and
// re-encode bit-identically. Frames whose stem starts with "ckptfile_"
// exercise the durable checkpoint file codec (header + CRC); all others
// exercise the message wire codec. The corpus directory is baked in via
// the FEDSCOPE_FUZZ_CORPUS_DIR compile definition.

#include <cctype>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fedscope/comm/codec.h"
#include "fedscope/core/checkpoint.h"
#include "fedscope/testing/oracles.h"
#include "fedscope/util/logging.h"
#include "gtest/gtest.h"

namespace fedscope {
namespace testing {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> CorpusFiles(const std::string& extension,
                                  const std::string& suffix = "") {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(FEDSCOPE_FUZZ_CORPUS_DIR)) {
    const fs::path& p = entry.path();
    if (p.extension() != extension) continue;
    if (!suffix.empty() && p.stem().string().rfind(suffix) ==
                               std::string::npos) {
      continue;
    }
    files.push_back(p);
  }
  return files;
}

/// First non-comment, non-blank line of a .course file.
std::string ReadSpecLine(const fs::path& path) {
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') return line;
  }
  return "";
}

/// True for frames targeting the checkpoint *file* codec rather than the
/// message wire codec.
bool IsCheckpointFileFrame(const fs::path& path) {
  return path.stem().string().rfind("ckptfile_", 0) == 0;
}

/// Hex dump with optional `#` comment lines (same convention as .course).
std::vector<uint8_t> ReadHex(const fs::path& path) {
  std::ifstream in(path);
  std::vector<uint8_t> bytes;
  std::string line;
  int hi = -1;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] == '#') continue;
    for (const char c : line) {
      if (!std::isxdigit(static_cast<unsigned char>(c))) continue;
      const int nibble = std::isdigit(static_cast<unsigned char>(c))
                             ? c - '0'
                             : std::tolower(c) - 'a' + 10;
      if (hi < 0) {
        hi = nibble;
      } else {
        bytes.push_back(static_cast<uint8_t>(hi << 4 | nibble));
        hi = -1;
      }
    }
  }
  return bytes;
}

TEST(FuzzCorpusTest, EveryCourseSeedPassesAllOracles) {
  Logging::set_min_level(LogLevel::kWarning);
  const auto files = CorpusFiles(".course");
  ASSERT_FALSE(files.empty()) << "corpus missing: " << FEDSCOPE_FUZZ_CORPUS_DIR;
  for (const auto& file : files) {
    const std::string line = ReadSpecLine(file);
    ASSERT_FALSE(line.empty()) << file;
    auto spec = CourseSpec::FromString(line);
    ASSERT_TRUE(spec.ok()) << file << ": " << spec.status().ToString();
    OracleOptions options;
    options.run_distributed = DistributedEligible(spec.value());
    const auto violations = CheckCourse(spec.value(), options);
    EXPECT_TRUE(violations.empty())
        << file << "\n" << FormatViolations(violations);
  }
  Logging::set_min_level(LogLevel::kInfo);
}

TEST(FuzzCorpusTest, RejectFramesReturnStatusNotCrash) {
  const auto files = CorpusFiles(".hex", "_reject");
  ASSERT_FALSE(files.empty());
  for (const auto& file : files) {
    const std::vector<uint8_t> bytes = ReadHex(file);
    ASSERT_FALSE(bytes.empty()) << file;
    if (IsCheckpointFileFrame(file)) {
      const auto decoded = DecodeCheckpointFile(bytes);
      EXPECT_FALSE(decoded.ok()) << file << " unexpectedly decoded";
    } else {
      const auto decoded = DecodeMessage(bytes);
      EXPECT_FALSE(decoded.ok()) << file << " unexpectedly decoded";
    }
  }
}

TEST(FuzzCorpusTest, RoundtripFramesReencodeBitIdentically) {
  const auto files = CorpusFiles(".hex", "_roundtrip");
  ASSERT_FALSE(files.empty());
  for (const auto& file : files) {
    const std::vector<uint8_t> bytes = ReadHex(file);
    if (IsCheckpointFileFrame(file)) {
      auto decoded = DecodeCheckpointFile(bytes);
      ASSERT_TRUE(decoded.ok()) << file << ": " << decoded.status().ToString();
      EXPECT_EQ(EncodeCheckpointFile(decoded.value()), bytes) << file;
    } else {
      auto decoded = DecodeMessage(bytes);
      ASSERT_TRUE(decoded.ok()) << file << ": " << decoded.status().ToString();
      EXPECT_EQ(EncodeMessage(decoded.value()), bytes) << file;
    }
  }
}

}  // namespace
}  // namespace testing
}  // namespace fedscope
