#include "fedscope/testing/course_gen.h"

#include <set>
#include <string>

#include "gtest/gtest.h"

namespace fedscope {
namespace testing {
namespace {

TEST(CourseGenTest, SampleIsDeterministic) {
  for (uint64_t seed : {1u, 7u, 42u, 9001u}) {
    EXPECT_EQ(CourseGen::Sample(seed), CourseGen::Sample(seed))
        << "seed " << seed;
  }
  EXPECT_NE(CourseGen::Sample(1), CourseGen::Sample(2));
}

TEST(CourseGenTest, SampledSpecsAreValidAndClampIdempotent) {
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    const CourseSpec spec = CourseGen::Sample(seed);
    EXPECT_TRUE(CourseGen::Validate(spec).ok())
        << "seed " << seed << ": " << CourseGen::Validate(spec).ToString();
    EXPECT_EQ(CourseGen::Clamp(spec), spec) << "seed " << seed;
  }
}

TEST(CourseGenTest, SamplingCoversTheStrategyMatrix) {
  std::set<std::string> strategies, personalizations, compressions,
      aggregators;
  bool saw_wire = false, saw_faults = false, saw_dp = false;
  bool saw_hostile = false;
  for (uint64_t seed = 1; seed <= 120; ++seed) {
    const CourseSpec s = CourseGen::Sample(seed);
    strategies.insert(s.strategy);
    personalizations.insert(s.personalization);
    compressions.insert(s.compression);
    aggregators.insert(s.aggregator);
    saw_wire |= s.through_wire;
    saw_dp |= s.dp_enable;
    saw_faults |= s.HasLossyFaults() || s.fault_msg_duplicate_prob > 0.0;
    saw_hostile |= s.Hostile();
  }
  EXPECT_EQ(strategies.size(), 4u);
  EXPECT_EQ(personalizations.size(), 4u);
  EXPECT_EQ(compressions.size(), 3u);
  // 5 sampled rules plus krum, which enters via Clamp's hostile remap
  // (fednova -> krum on hostile specs).
  EXPECT_EQ(aggregators.size(), 6u);
  EXPECT_TRUE(aggregators.count("krum"));
  EXPECT_TRUE(saw_wire);
  EXPECT_TRUE(saw_dp);
  EXPECT_TRUE(saw_faults);
  EXPECT_TRUE(saw_hostile);
}

TEST(CourseGenTest, ConfigRoundTripPreservesEverySpec) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    const CourseSpec spec = CourseGen::Sample(seed);
    auto from_string = CourseSpec::FromString(spec.ToString());
    ASSERT_TRUE(from_string.ok()) << from_string.status().ToString();
    EXPECT_EQ(from_string.value(), spec) << "seed " << seed;
  }
}

TEST(CourseGenTest, FromConfigRejectsUnknownKeys) {
  Config c = CourseGen::Sample(1).ToConfig();
  c.Set("stratagy", std::string("sync_vanilla"));  // typo must not pass
  EXPECT_FALSE(CourseSpec::FromConfig(c).ok());
}

TEST(CourseGenTest, ValidateRejectsOutOfLatticeSpecs) {
  CourseSpec s = CourseGen::Sample(1);
  s.concurrency = s.num_clients + 5;
  EXPECT_FALSE(CourseGen::Validate(s).ok());

  CourseSpec storm;
  storm.strategy = "async_time";
  storm.broadcast = "after_receiving";
  storm.fault_msg_duplicate_prob = 0.3;
  storm.suppress_duplicates = false;
  EXPECT_FALSE(CourseGen::Validate(storm).ok());
  // The clamp repairs the storm by requiring delivery-side dedup.
  EXPECT_TRUE(CourseGen::Clamp(storm).suppress_duplicates);
}

TEST(CourseGenTest, ClampEnforcesSyncDeadlineUnderLossyFaults) {
  CourseSpec s;
  s.strategy = "sync_vanilla";
  s.fault_msg_loss_prob = 0.2;
  s.receive_deadline = 0.0;
  EXPECT_GT(CourseGen::Clamp(s).receive_deadline, 0.0);
}

TEST(CourseGenTest, FixtureBuildsRunnableJobForEveryModelFamily) {
  for (const char* model : {"mlp", "logreg", "mlp_bn"}) {
    CourseSpec s = CourseGen::Sample(3);
    s.model = model;
    s = CourseGen::Clamp(s);
    auto fixture = MakeCourseFixture(s);
    FedJob job = fixture->MakeJob();
    EXPECT_EQ(job.data, &fixture->data);
    EXPECT_GT(job.init_model.GetStateDict().size(), 0u) << model;
  }
}

}  // namespace
}  // namespace testing
}  // namespace fedscope
