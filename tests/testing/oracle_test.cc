#include "fedscope/testing/oracles.h"

#include "fedscope/testing/shrink.h"
#include "fedscope/util/logging.h"
#include "gtest/gtest.h"

namespace fedscope {
namespace testing {
namespace {

class OracleTest : public ::testing::Test {
 protected:
  void SetUp() override { Logging::set_min_level(LogLevel::kWarning); }
  void TearDown() override { Logging::set_min_level(LogLevel::kInfo); }
};

TEST_F(OracleTest, FixedSeedCoursesPassEveryOracle) {
  for (uint64_t seed : {1u, 2u, 7u, 20u}) {
    const CourseSpec spec = CourseGen::Sample(seed);
    const auto violations = CheckCourse(spec);
    EXPECT_TRUE(violations.empty())
        << "seed " << seed << "\n" << FormatViolations(violations);
  }
}

TEST_F(OracleTest, DistributedEligibilityIsConservative) {
  CourseSpec eligible;  // defaults are sync_vanilla, no faults
  eligible.concurrency = eligible.num_clients;
  eligible = CourseGen::Clamp(eligible);
  EXPECT_TRUE(DistributedEligible(eligible));

  CourseSpec faulty = eligible;
  faulty.fault_msg_loss_prob = 0.1;
  EXPECT_FALSE(DistributedEligible(CourseGen::Clamp(faulty)));

  CourseSpec partial = eligible;
  partial.concurrency = eligible.num_clients - 1;
  EXPECT_FALSE(DistributedEligible(CourseGen::Clamp(partial)));
}

TEST_F(OracleTest, DistributedDifferentialPasses) {
  CourseSpec spec;
  spec.concurrency = spec.num_clients;
  spec.max_rounds = 2;
  spec = CourseGen::Clamp(spec);
  ASSERT_TRUE(DistributedEligible(spec));
  OracleOptions options;
  options.run_distributed = true;
  const auto violations = CheckCourse(spec, options);
  EXPECT_TRUE(violations.empty()) << FormatViolations(violations);
}

TEST_F(OracleTest, MessageConservationHoldsUnderLossyFaultPlan) {
  // Sampled seed with loss + duplication + delay (sync, deadline engaged).
  CourseSpec spec = CourseGen::Sample(7);
  ASSERT_TRUE(spec.HasLossyFaults());
  ASSERT_GT(spec.fault_msg_duplicate_prob, 0.0);
  CourseObservation obs = RunInstrumentedCourse(spec);
  const int64_t vanished =
      obs.fault.dropout_suppressed + obs.fault.crashes + obs.fault.lost;
  EXPECT_EQ(obs.delivered,
            obs.sent - vanished + obs.fault.duplicated - obs.suppressed);
  EXPECT_GT(obs.sent, 0);
  EXPECT_EQ(obs.time_regression, "");
}

TEST_F(OracleTest, DuplicateSuppressionIsExact) {
  CourseSpec spec = CourseGen::Sample(7);
  spec.fault_msg_duplicate_prob = 0.5;
  spec.suppress_duplicates = true;
  spec = CourseGen::Clamp(spec);
  CourseObservation obs = RunInstrumentedCourse(spec);
  EXPECT_GT(obs.fault.duplicated, 0);
  // Every injected duplicate — and nothing else — is suppressed.
  EXPECT_EQ(obs.suppressed, obs.fault.duplicated);

  spec.suppress_duplicates = false;
  spec = CourseGen::Clamp(spec);
  obs = RunInstrumentedCourse(spec);
  EXPECT_EQ(obs.suppressed, 0);
}

TEST_F(OracleTest, AggregateWeightConservationForEveryAggregator) {
  for (const char* aggregator :
       {"fedavg", "fedopt", "fednova", "median", "trimmed_mean"}) {
    CourseSpec spec = CourseGen::Sample(1);
    spec.aggregator = aggregator;
    spec = CourseGen::Clamp(spec);
    const auto violations = CheckAggregateWeightConservation(spec);
    EXPECT_TRUE(violations.empty())
        << aggregator << "\n" << FormatViolations(violations);
  }
}

TEST_F(OracleTest, ShrinkReducesToThePredicateCore) {
  // Synthetic failure: any async_time course with message duplication
  // "fails". The shrinker must keep those two facts and reset the rest.
  // (Seed 40 draws that corner; seed 20 — the historical exemplar — now
  // draws the hierarchical-topology axis instead.)
  CourseSpec failing = CourseGen::Sample(40);
  ASSERT_EQ(failing.strategy, "async_time");
  ASSERT_GT(failing.fault_msg_duplicate_prob, 0.0);
  const auto predicate = [](const CourseSpec& s) {
    return s.strategy == "async_time" && s.fault_msg_duplicate_prob > 0.0;
  };
  const ShrinkResult result = ShrinkCourse(failing, predicate);
  EXPECT_TRUE(predicate(result.spec));
  EXPECT_TRUE(CourseGen::Validate(result.spec).ok());
  EXPECT_GT(result.fields_reset, 0);
  EXPECT_LE(result.evals, ShrinkOptions{}.max_evals);
  // Load-free fields land on their benign defaults.
  const CourseSpec defaults;
  EXPECT_EQ(result.spec.personalization, defaults.personalization);
  EXPECT_EQ(result.spec.compression, defaults.compression);
  EXPECT_EQ(result.spec.heterogeneous_fleet, defaults.heterogeneous_fleet);
  EXPECT_EQ(result.spec.broadcast, defaults.broadcast);
}

TEST_F(OracleTest, ShrinkIsDeterministic) {
  const auto predicate = [](const CourseSpec& s) {
    return s.strategy == "async_time" && s.fault_msg_duplicate_prob > 0.0;
  };
  const CourseSpec failing = CourseGen::Sample(40);
  const ShrinkResult a = ShrinkCourse(failing, predicate);
  const ShrinkResult b = ShrinkCourse(failing, predicate);
  EXPECT_EQ(a.spec, b.spec);
  EXPECT_EQ(a.evals, b.evals);
}

}  // namespace
}  // namespace testing
}  // namespace fedscope
