#include "fedscope/util/status.h"

#include <gtest/gtest.h>

namespace fedscope {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad shape");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad shape");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Status Inner(bool fail) {
  if (fail) return Status::Internal("inner");
  return Status::Ok();
}

Status Outer(bool fail) {
  FS_RETURN_IF_ERROR(Inner(fail));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Outer(false).ok());
  EXPECT_EQ(Outer(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace fedscope
