#include "fedscope/util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fedscope {
namespace {

TEST(RunningStatTest, MeanVarianceMinMax) {
  RunningStat stat;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.Add(v);
  EXPECT_EQ(stat.count(), 8);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_NEAR(stat.variance(), 4.0, 1e-12);
  EXPECT_NEAR(stat.stddev(), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(stat.min(), 2.0);
  EXPECT_DOUBLE_EQ(stat.max(), 9.0);
}

TEST(RunningStatTest, SingleSampleHasZeroVariance) {
  RunningStat stat;
  stat.Add(3.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
}

TEST(QuantileTest, Interpolates) {
  std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.9), 9.0);
}

TEST(MeanStddevTest, Basics) {
  std::vector<double> v = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.0);
  EXPECT_NEAR(Stddev(v), std::sqrt(2.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Stddev({1.0}), 0.0);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.5);    // bin 0
  h.Add(3.0);    // bin 1
  h.Add(9.99);   // bin 4
  h.Add(-5.0);   // clamped to bin 0
  h.Add(100.0);  // clamped to bin 4
  EXPECT_EQ(h.total(), 5);
  EXPECT_EQ(h.bin_count(0), 2);
  EXPECT_EQ(h.bin_count(1), 1);
  EXPECT_EQ(h.bin_count(4), 2);
  EXPECT_DOUBLE_EQ(h.bin_frac(0), 0.4);
}

TEST(HistogramTest, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(HistogramTest, AsciiRenders) {
  Histogram h(0.0, 2.0, 2);
  h.Add(0.5);
  h.Add(1.5);
  h.Add(1.6);
  std::string ascii = h.ToAscii(10);
  EXPECT_NE(ascii.find('#'), std::string::npos);
  EXPECT_EQ(std::count(ascii.begin(), ascii.end(), '\n'), 2);
}

}  // namespace
}  // namespace fedscope
