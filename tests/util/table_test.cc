#include "fedscope/util/table.h"

#include <gtest/gtest.h>

namespace fedscope {
namespace {

TEST(TableTest, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.Row().Str("alpha").Num(1.5, 2);
  t.Row().Str("beta").Int(42);
  std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
}

TEST(TableTest, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.AddRow({"only-one"});
  std::string s = t.ToString();
  // Row renders with empty cells rather than crashing.
  EXPECT_NE(s.find("only-one"), std::string::npos);
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace fedscope
