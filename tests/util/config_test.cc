#include "fedscope/util/config.h"

#include <gtest/gtest.h>

namespace fedscope {
namespace {

TEST(ConfigTest, SetGetTyped) {
  Config c;
  c.Set("a.bool", true);
  c.Set("a.int", 42);
  c.Set("a.double", 2.5);
  c.Set("a.string", "hello");
  EXPECT_TRUE(c.GetBool("a.bool", false));
  EXPECT_EQ(c.GetInt("a.int", 0), 42);
  EXPECT_DOUBLE_EQ(c.GetDouble("a.double", 0.0), 2.5);
  EXPECT_EQ(c.GetString("a.string", ""), "hello");
}

TEST(ConfigTest, DefaultsWhenAbsent) {
  Config c;
  EXPECT_FALSE(c.Has("missing"));
  EXPECT_EQ(c.GetInt("missing", 7), 7);
  EXPECT_DOUBLE_EQ(c.GetDouble("missing", 1.5), 1.5);
  EXPECT_EQ(c.GetString("missing", "def"), "def");
  EXPECT_TRUE(c.GetBool("missing", true));
}

TEST(ConfigTest, NumericCrossTyping) {
  Config c;
  c.Set("x", 3);
  EXPECT_DOUBLE_EQ(c.GetDouble("x", 0.0), 3.0);
  c.Set("y", 2.9);
  EXPECT_EQ(c.GetInt("y", 0), 2);
}

TEST(ConfigTest, StrictGetters) {
  Config c;
  c.Set("i", 5);
  EXPECT_TRUE(c.Int("i").ok());
  EXPECT_EQ(c.Int("i").value(), 5);
  EXPECT_FALSE(c.Bool("i").ok());
  EXPECT_FALSE(c.Int("missing").ok());
  // Double() accepts int values (lossless widening).
  EXPECT_TRUE(c.Double("i").ok());
  EXPECT_DOUBLE_EQ(c.Double("i").value(), 5.0);
}

TEST(ConfigTest, MergeOverwrites) {
  Config base, patch;
  base.Set("lr", 0.1);
  base.Set("steps", 4);
  patch.Set("lr", 0.5);
  patch.Set("extra", "yes");
  base.Merge(patch);
  EXPECT_DOUBLE_EQ(base.GetDouble("lr", 0.0), 0.5);
  EXPECT_EQ(base.GetInt("steps", 0), 4);
  EXPECT_EQ(base.GetString("extra", ""), "yes");
}

TEST(ConfigTest, ParseAssignmentInfersTypes) {
  Config c;
  EXPECT_TRUE(c.ParseAssignment("flag=true").ok());
  EXPECT_TRUE(c.ParseAssignment("count=12").ok());
  EXPECT_TRUE(c.ParseAssignment("rate=0.25").ok());
  EXPECT_TRUE(c.ParseAssignment("name=sgd").ok());
  EXPECT_TRUE(c.Bool("flag").value());
  EXPECT_EQ(c.Int("count").value(), 12);
  EXPECT_DOUBLE_EQ(c.Double("rate").value(), 0.25);
  EXPECT_EQ(c.String("name").value(), "sgd");
}

TEST(ConfigTest, ParseAssignmentRejectsMalformed) {
  Config c;
  EXPECT_FALSE(c.ParseAssignment("no-equals-here").ok());
  EXPECT_FALSE(c.ParseAssignment("=value").ok());
}

TEST(ConfigTest, KeysSortedAndToString) {
  Config c;
  c.Set("b", 1);
  c.Set("a", 2);
  auto keys = c.Keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "b");
  EXPECT_NE(c.ToString().find("a=2"), std::string::npos);
}

TEST(ConfigTest, Equality) {
  Config a, b;
  a.Set("x", 1);
  b.Set("x", 1);
  EXPECT_TRUE(a == b);
  b.Set("x", 2);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace fedscope
