#include "fedscope/util/logging.h"

#include <gtest/gtest.h>

#include <vector>

namespace fedscope {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lines_.clear();
    Logging::set_sink([this](LogLevel level, const std::string& text) {
      lines_.push_back({level, text});
    });
    saved_level_ = Logging::min_level();
    Logging::set_min_level(LogLevel::kDebug);
  }
  void TearDown() override {
    Logging::set_sink(nullptr);
    Logging::set_min_level(saved_level_);
  }
  std::vector<std::pair<LogLevel, std::string>> lines_;
  LogLevel saved_level_;
};

TEST_F(LoggingTest, CapturesMessages) {
  FS_LOG(Info) << "hello " << 42;
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0].first, LogLevel::kInfo);
  EXPECT_EQ(lines_[0].second, "hello 42");
}

TEST_F(LoggingTest, RespectsMinLevel) {
  Logging::set_min_level(LogLevel::kWarning);
  FS_LOG(Info) << "dropped";
  FS_LOG(Warning) << "kept";
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0].second, "kept");
}

TEST_F(LoggingTest, CheckPassesSilently) {
  FS_CHECK(true) << "should not log";
  FS_CHECK_EQ(1, 1);
  FS_CHECK_LT(1, 2);
  FS_CHECK_GE(2.5, 2.5);
  EXPECT_TRUE(lines_.empty());
}

TEST_F(LoggingTest, CheckFailureAborts) {
  EXPECT_DEATH({ FS_CHECK(false) << "boom"; }, "");
}

TEST_F(LoggingTest, CheckOpFailureAborts) {
  EXPECT_DEATH({ FS_CHECK_EQ(1, 2); }, "");
}

}  // namespace
}  // namespace fedscope
