#include "fedscope/util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace fedscope {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all of 3..7 appear
}

TEST(RngTest, NormalMomentsApproximate) {
  Rng rng(11);
  const int n = 20000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(RngTest, NormalWithParameters) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(15);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.05);
}

TEST(RngTest, GammaMeanMatchesShape) {
  Rng rng(19);
  for (double shape : {0.5, 1.0, 3.0}) {
    const int n = 20000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += rng.Gamma(shape);
    EXPECT_NEAR(sum / n, shape, 0.1 * std::max(shape, 1.0)) << shape;
  }
}

TEST(RngTest, DirichletSumsToOne) {
  Rng rng(21);
  for (double alpha : {0.2, 1.0, 5.0}) {
    auto p = rng.Dirichlet(std::vector<double>(10, alpha));
    double total = 0.0;
    for (double v : p) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(RngTest, DirichletSmallAlphaIsSkewed) {
  Rng rng(23);
  // With tiny alpha, mass concentrates: the max component should dominate.
  double max_sum = 0.0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    auto p = rng.Dirichlet(std::vector<double>(10, 0.1));
    max_sum += *std::max_element(p.begin(), p.end());
  }
  EXPECT_GT(max_sum / trials, 0.5);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(25);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(27);
  auto p = rng.Permutation(50);
  std::set<int64_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 49);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(29);
  auto s = rng.SampleWithoutReplacement(100, 30);
  std::set<int64_t> seen(s.begin(), s.end());
  EXPECT_EQ(seen.size(), 30u);
  for (int64_t v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, SampleAllElements) {
  Rng rng(31);
  auto s = rng.SampleWithoutReplacement(10, 10);
  std::set<int64_t> seen(s.begin(), s.end());
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, ForkIsDeterministicAndIndependent) {
  Rng parent(77);
  Rng a = parent.Fork(1);
  Rng b = parent.Fork(1);
  Rng c = parent.Fork(2);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, LognormalIsPositive) {
  Rng rng(33);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.Lognormal(0.0, 1.0), 0.0);
  }
}

}  // namespace
}  // namespace fedscope
