#include "fedscope/privacy/secret_sharing.h"

#include <gtest/gtest.h>

#include <cmath>

#include "fedscope/core/fed_runner.h"
#include "fedscope/data/synthetic_twitter.h"
#include "fedscope/nn/model_zoo.h"
#include "fedscope/privacy/secure_aggregator.h"

namespace fedscope {
namespace {

TEST(SecretSharingTest, EncodeDecodeSigned) {
  AdditiveSecretSharing sharing(3, 24);
  for (double v : {0.0, 1.0, -1.0, 123.456, -0.001, 1e6}) {
    EXPECT_NEAR(sharing.Decode(sharing.Encode(v)), v, 1e-6) << v;
  }
}

TEST(SecretSharingTest, SharesReconstructValue) {
  AdditiveSecretSharing sharing(5, 24);
  Rng rng(1);
  for (double v : {3.25, -7.5, 0.0, 999.999}) {
    auto shares = sharing.Split(v, &rng);
    ASSERT_EQ(shares.size(), 5u);
    uint64_t total = 0;
    for (uint64_t s : shares) total += s;
    EXPECT_NEAR(sharing.Decode(total), v, 1e-6);
  }
}

TEST(SecretSharingTest, IndividualSharesLookRandom) {
  // Any m-1 shares are uniform: the same secret split twice must produce
  // different shares, and a share alone is unrelated to the secret.
  AdditiveSecretSharing sharing(2, 24);
  Rng rng(2);
  auto s1 = sharing.Split(1.0, &rng);
  auto s2 = sharing.Split(1.0, &rng);
  EXPECT_NE(s1[1], s2[1]);
}

TEST(SecretSharingTest, VectorSplitAndSum) {
  AdditiveSecretSharing sharing(3, 24);
  Rng rng(3);
  std::vector<double> values = {1.0, -2.0, 3.5};
  auto shares = sharing.SplitVector(values, &rng);
  ASSERT_EQ(shares.size(), 3u);
  auto sum = AdditiveSecretSharing::SumShares(shares);
  auto decoded = sharing.DecodeVector(sum);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(decoded[i], values[i], 1e-6);
  }
}

TEST(SecretSharedSumTest, MatchesPlainSum) {
  Rng rng(4);
  std::vector<std::vector<double>> values = {
      {1.0, 2.0}, {-0.5, 0.25}, {3.0, -3.0}, {0.125, 0.125}};
  auto sums = SecretSharedSum(values, &rng);
  EXPECT_NEAR(sums[0], 3.625, 1e-6);
  EXPECT_NEAR(sums[1], -0.625, 1e-6);
}

TEST(SecretSharedAverageTest, MatchesPlainAverage) {
  Rng rng(5);
  std::vector<StateDict> updates(3);
  for (int c = 0; c < 3; ++c) {
    StateDict d;
    d["w"] = Tensor::FromVector(
        {static_cast<float>(c), static_cast<float>(c) - 1.5f});
    d["b"] = Tensor::FromVector({0.25f * c});
    updates[c] = d;
  }
  StateDict avg = SecretSharedAverage(updates, &rng);
  EXPECT_NEAR(avg.at("w").at(0), 1.0f, 1e-4);    // (0+1+2)/3
  EXPECT_NEAR(avg.at("w").at(1), -0.5f, 1e-4);   // (-1.5-0.5+0.5)/3
  EXPECT_NEAR(avg.at("b").at(0), 0.25f, 1e-4);   // (0+0.25+0.5)/3
}

TEST(SecretSharingTest, TooFewSharesDies) {
  EXPECT_DEATH(AdditiveSecretSharing(1), "");
}

TEST(SecureAverageAggregatorTest, MatchesPlainUnweightedMean) {
  SecureAverageAggregator secure(/*seed=*/7);
  StateDict global;
  global["w"] = Tensor::FromVector({1.0f, -1.0f});
  std::vector<ClientUpdate> updates(3);
  for (int c = 0; c < 3; ++c) {
    updates[c].client_id = c + 1;
    updates[c].delta["w"] =
        Tensor::FromVector({0.5f * (c + 1), -0.25f * (c + 1)});
  }
  StateDict next = secure.Aggregate(global, updates).value();
  // mean delta = (0.5+1.0+1.5)/3 = 1.0 and (-0.25-0.5-0.75)/3 = -0.5.
  EXPECT_NEAR(next.at("w").at(0), 2.0f, 1e-4);
  EXPECT_NEAR(next.at("w").at(1), -1.5f, 1e-4);
}

TEST(SecureAverageAggregatorTest, SingleUpdatePassesThrough) {
  SecureAverageAggregator secure(8);
  StateDict global;
  global["w"] = Tensor::FromVector({0.0f});
  ClientUpdate update;
  update.delta["w"] = Tensor::FromVector({3.0f});
  StateDict next = secure.Aggregate(global, {update}).value();
  EXPECT_NEAR(next.at("w").at(0), 3.0f, 1e-6);
}

TEST(SecureAverageAggregatorTest, RunsWholeFlCourse) {
  // Secret-shared FedAvg end-to-end: the server never aggregates
  // plaintext updates, and the course still learns.
  SyntheticTwitterOptions options;
  options.num_clients = 20;
  options.seed = 12;
  FedDataset data = MakeSyntheticTwitter(options);
  FedJob job;
  job.data = &data;
  Rng rng(13);
  job.init_model = MakeLogisticRegression(60, 2, &rng);
  job.server.concurrency = 8;
  job.server.max_rounds = 12;
  job.client.train.lr = 0.5;
  job.client.train.batch_size = 2;
  job.seed = 13;
  job.aggregator_factory = []() {
    return std::make_unique<SecureAverageAggregator>(99);
  };
  RunResult result = FedRunner(std::move(job)).Run();
  EXPECT_EQ(result.server.rounds, 12);
  EXPECT_GT(result.server.final_accuracy, 0.65);
}

}  // namespace
}  // namespace fedscope
