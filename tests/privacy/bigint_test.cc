#include "fedscope/privacy/bigint.h"

#include <gtest/gtest.h>

namespace fedscope {
namespace {

TEST(BigIntTest, FromUint64AndBack) {
  EXPECT_EQ(BigInt::FromUint64(0).ToUint64(), 0u);
  EXPECT_EQ(BigInt::FromUint64(12345).ToUint64(), 12345u);
  EXPECT_EQ(BigInt::FromUint64(UINT64_MAX).ToUint64(), UINT64_MAX);
  EXPECT_TRUE(BigInt().IsZero());
  EXPECT_FALSE(BigInt::FromUint64(1).IsZero());
}

TEST(BigIntTest, HexRoundTrip) {
  BigInt v = BigInt::FromHex("deadbeefcafebabe1234567890abcdef");
  EXPECT_EQ(v.ToHex(), "deadbeefcafebabe1234567890abcdef");
  EXPECT_EQ(BigInt().ToHex(), "0");
  EXPECT_EQ(BigInt::FromHex("0").ToHex(), "0");
  EXPECT_EQ(BigInt::FromHex("ff").ToUint64(), 255u);
}

TEST(BigIntTest, BitLengthAndGetBit) {
  EXPECT_EQ(BigInt().BitLength(), 0);
  EXPECT_EQ(BigInt::FromUint64(1).BitLength(), 1);
  EXPECT_EQ(BigInt::FromUint64(255).BitLength(), 8);
  EXPECT_EQ(BigInt::FromUint64(256).BitLength(), 9);
  BigInt v = BigInt::FromUint64(0b1010);
  EXPECT_FALSE(v.GetBit(0));
  EXPECT_TRUE(v.GetBit(1));
  EXPECT_TRUE(v.GetBit(3));
  EXPECT_FALSE(v.GetBit(100));
}

TEST(BigIntTest, CompareOrdering) {
  BigInt a = BigInt::FromUint64(100), b = BigInt::FromUint64(200);
  EXPECT_LT(BigInt::Compare(a, b), 0);
  EXPECT_GT(BigInt::Compare(b, a), 0);
  EXPECT_EQ(BigInt::Compare(a, a), 0);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(a <= a);
}

TEST(BigIntTest, AddCarriesAcrossLimbs) {
  BigInt a = BigInt::FromUint64(UINT64_MAX);
  BigInt sum = BigInt::Add(a, BigInt::FromUint64(1));
  EXPECT_EQ(sum.BitLength(), 65);
  EXPECT_EQ(sum.ToHex(), "10000000000000000");
}

TEST(BigIntTest, SubBorrows) {
  BigInt a = BigInt::FromHex("10000000000000000");
  BigInt diff = BigInt::Sub(a, BigInt::FromUint64(1));
  EXPECT_EQ(diff.ToUint64(), UINT64_MAX);
}

TEST(BigIntTest, SubUnderflowDies) {
  EXPECT_DEATH(
      BigInt::Sub(BigInt::FromUint64(1), BigInt::FromUint64(2)), "");
}

TEST(BigIntTest, MulKnownValues) {
  BigInt a = BigInt::FromUint64(0xFFFFFFFFULL);
  BigInt sq = BigInt::Mul(a, a);
  EXPECT_EQ(sq.ToHex(), "fffffffe00000001");
  EXPECT_TRUE(BigInt::Mul(a, BigInt()).IsZero());
}

TEST(BigIntTest, ShiftRoundTrip) {
  BigInt v = BigInt::FromHex("123456789abcdef");
  EXPECT_EQ(v.ShiftLeft(36).ShiftRight(36).ToHex(), v.ToHex());
  EXPECT_EQ(BigInt::FromUint64(1).ShiftLeft(100).BitLength(), 101);
  EXPECT_TRUE(v.ShiftRight(200).IsZero());
}

TEST(BigIntTest, DivModIdentity) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    BigInt a = BigInt::Random(120, &rng);
    BigInt b = BigInt::Random(50, &rng);
    auto [q, r] = BigInt::DivMod(a, b);
    EXPECT_LT(BigInt::Compare(r, b), 0);
    BigInt reconstructed = BigInt::Add(BigInt::Mul(q, b), r);
    EXPECT_EQ(BigInt::Compare(reconstructed, a), 0);
  }
}

TEST(BigIntTest, DivByZeroDies) {
  EXPECT_DEATH(BigInt::DivMod(BigInt::FromUint64(5), BigInt()), "");
}

TEST(BigIntTest, ModPowSmallKnown) {
  // 3^7 mod 11 = 2187 mod 11 = 9.
  BigInt r = BigInt::ModPow(BigInt::FromUint64(3), BigInt::FromUint64(7),
                            BigInt::FromUint64(11));
  EXPECT_EQ(r.ToUint64(), 9u);
}

TEST(BigIntTest, ModPowFermat) {
  // Fermat: a^(p-1) = 1 mod p for prime p and gcd(a,p)=1.
  const uint64_t p = 1000000007ULL;
  BigInt r = BigInt::ModPow(BigInt::FromUint64(123456789),
                            BigInt::FromUint64(p - 1),
                            BigInt::FromUint64(p));
  EXPECT_EQ(r.ToUint64(), 1u);
}

TEST(BigIntTest, GcdLcm) {
  EXPECT_EQ(
      BigInt::Gcd(BigInt::FromUint64(48), BigInt::FromUint64(36)).ToUint64(),
      12u);
  EXPECT_EQ(
      BigInt::Lcm(BigInt::FromUint64(4), BigInt::FromUint64(6)).ToUint64(),
      12u);
  EXPECT_EQ(BigInt::Gcd(BigInt::FromUint64(17), BigInt()).ToUint64(), 17u);
}

TEST(BigIntTest, ModInverseCorrect) {
  Rng rng(2);
  BigInt m = BigInt::FromUint64(1000000007ULL);  // prime
  for (int trial = 0; trial < 10; ++trial) {
    BigInt a = BigInt::Add(BigInt::RandomBelow(m, &rng),
                           BigInt::FromUint64(1));
    BigInt inv = BigInt::ModInverse(a, m);
    ASSERT_FALSE(inv.IsZero());
    BigInt prod = BigInt::Mod(BigInt::Mul(a, inv), m);
    EXPECT_EQ(prod.ToUint64(), 1u);
  }
}

TEST(BigIntTest, ModInverseNonInvertibleReturnsZero) {
  // gcd(6, 9) = 3 != 1.
  EXPECT_TRUE(
      BigInt::ModInverse(BigInt::FromUint64(6), BigInt::FromUint64(9))
          .IsZero());
}

TEST(BigIntTest, RandomHasExactBitLength) {
  Rng rng(3);
  for (int bits : {8, 33, 64, 100}) {
    BigInt v = BigInt::Random(bits, &rng);
    EXPECT_EQ(v.BitLength(), bits);
  }
}

TEST(BigIntTest, RandomBelowStaysBelow) {
  Rng rng(4);
  BigInt bound = BigInt::FromUint64(1000);
  for (int trial = 0; trial < 100; ++trial) {
    EXPECT_LT(BigInt::Compare(BigInt::RandomBelow(bound, &rng), bound), 0);
  }
}

TEST(BigIntTest, PrimalityKnownValues) {
  Rng rng(5);
  for (uint64_t p : {2ULL, 3ULL, 5ULL, 17ULL, 97ULL, 1000000007ULL}) {
    EXPECT_TRUE(BigInt::IsProbablePrime(BigInt::FromUint64(p), &rng))
        << p;
  }
  for (uint64_t c : {1ULL, 4ULL, 15ULL, 91ULL, 1000000008ULL}) {
    EXPECT_FALSE(BigInt::IsProbablePrime(BigInt::FromUint64(c), &rng))
        << c;
  }
}

TEST(BigIntTest, CarmichaelNumberRejected) {
  Rng rng(6);
  // 561 = 3 * 11 * 17 fools Fermat but not Miller-Rabin.
  EXPECT_FALSE(BigInt::IsProbablePrime(BigInt::FromUint64(561), &rng));
}

TEST(BigIntTest, GeneratePrimeHasRequestedBits) {
  Rng rng(7);
  BigInt p = BigInt::GeneratePrime(48, &rng);
  EXPECT_EQ(p.BitLength(), 48);
  EXPECT_TRUE(BigInt::IsProbablePrime(p, &rng));
}

}  // namespace
}  // namespace fedscope
