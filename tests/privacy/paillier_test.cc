#include "fedscope/privacy/paillier.h"

#include <gtest/gtest.h>

namespace fedscope {
namespace {

class PaillierTest : public ::testing::Test {
 protected:
  // Generate once; key generation dominates runtime.
  static void SetUpTestSuite() {
    rng_ = new Rng(101);
    keys_ = new Paillier::KeyPair(Paillier::GenerateKeys(128, rng_));
  }
  static void TearDownTestSuite() {
    delete keys_;
    delete rng_;
    keys_ = nullptr;
    rng_ = nullptr;
  }
  static Rng* rng_;
  static Paillier::KeyPair* keys_;
};

Rng* PaillierTest::rng_ = nullptr;
Paillier::KeyPair* PaillierTest::keys_ = nullptr;

TEST_F(PaillierTest, EncryptDecryptRoundTrip) {
  for (uint64_t m : {0ULL, 1ULL, 42ULL, 123456789ULL}) {
    BigInt ct = Paillier::Encrypt(keys_->pub, BigInt::FromUint64(m), rng_);
    BigInt pt = Paillier::Decrypt(keys_->pub, keys_->priv, ct);
    EXPECT_EQ(pt.ToUint64(), m);
  }
}

TEST_F(PaillierTest, EncryptionIsRandomized) {
  BigInt m = BigInt::FromUint64(7);
  BigInt c1 = Paillier::Encrypt(keys_->pub, m, rng_);
  BigInt c2 = Paillier::Encrypt(keys_->pub, m, rng_);
  EXPECT_NE(BigInt::Compare(c1, c2), 0);  // semantic security
  EXPECT_EQ(Paillier::Decrypt(keys_->pub, keys_->priv, c1).ToUint64(), 7u);
  EXPECT_EQ(Paillier::Decrypt(keys_->pub, keys_->priv, c2).ToUint64(), 7u);
}

TEST_F(PaillierTest, HomomorphicAddition) {
  BigInt ca = Paillier::Encrypt(keys_->pub, BigInt::FromUint64(1000), rng_);
  BigInt cb = Paillier::Encrypt(keys_->pub, BigInt::FromUint64(234), rng_);
  BigInt sum_ct = Paillier::AddCiphertexts(keys_->pub, ca, cb);
  EXPECT_EQ(Paillier::Decrypt(keys_->pub, keys_->priv, sum_ct).ToUint64(),
            1234u);
}

TEST_F(PaillierTest, HomomorphicScalarMultiplication) {
  BigInt ct = Paillier::Encrypt(keys_->pub, BigInt::FromUint64(21), rng_);
  BigInt doubled = Paillier::MulPlain(keys_->pub, ct, BigInt::FromUint64(2));
  EXPECT_EQ(Paillier::Decrypt(keys_->pub, keys_->priv, doubled).ToUint64(),
            42u);
}

TEST_F(PaillierTest, ManyTermAggregation) {
  // Sum 10 encrypted values the way the server aggregates updates.
  uint64_t expected = 0;
  BigInt acc;
  for (uint64_t i = 1; i <= 10; ++i) {
    expected += i * i;
    BigInt ct =
        Paillier::Encrypt(keys_->pub, BigInt::FromUint64(i * i), rng_);
    acc = (i == 1) ? ct : Paillier::AddCiphertexts(keys_->pub, acc, ct);
  }
  EXPECT_EQ(Paillier::Decrypt(keys_->pub, keys_->priv, acc).ToUint64(),
            expected);
}

TEST_F(PaillierTest, FixedPointCodecSignedRoundTrip) {
  FixedPointCodec codec(keys_->pub.n, 20);
  for (double v : {0.0, 1.0, -1.0, 3.14159, -2.71828, 1000.5, -0.0001}) {
    const double decoded = codec.Decode(codec.Encode(v));
    EXPECT_NEAR(decoded, v, 1e-5) << v;
  }
}

TEST_F(PaillierTest, EncryptedNegativeNumbersSum) {
  FixedPointCodec codec(keys_->pub.n, 20);
  BigInt ca = Paillier::Encrypt(keys_->pub, codec.Encode(2.5), rng_);
  BigInt cb = Paillier::Encrypt(keys_->pub, codec.Encode(-1.25), rng_);
  BigInt sum = Paillier::AddCiphertexts(keys_->pub, ca, cb);
  EXPECT_NEAR(codec.Decode(Paillier::Decrypt(keys_->pub, keys_->priv, sum)),
              1.25, 1e-5);
}

TEST(EncryptedSumTest, MatchesPlainSum) {
  Rng rng(202);
  std::vector<std::vector<double>> rows = {
      {0.5, -1.0, 2.0}, {1.5, 0.25, -0.5}, {-2.0, 0.75, 0.25}};
  auto sums = EncryptedSum(rows, 96, &rng);
  ASSERT_EQ(sums.size(), 3u);
  EXPECT_NEAR(sums[0], 0.0, 1e-5);
  EXPECT_NEAR(sums[1], 0.0, 1e-5);
  EXPECT_NEAR(sums[2], 1.75, 1e-5);
}

}  // namespace
}  // namespace fedscope
