#include "fedscope/privacy/dp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "fedscope/util/stats.h"

namespace fedscope {
namespace {

StateDict BigDelta() {
  StateDict d;
  d["w"] = Tensor::Full({100}, 1.0f);  // norm 10
  return d;
}

TEST(DpTest, DisabledIsNoop) {
  StateDict d = BigDelta();
  StateDict before = d;
  Rng rng(1);
  DpOptions options;  // enable = false
  EXPECT_EQ(ApplyDpToDelta(&d, options, &rng), 0.0);
  EXPECT_TRUE(d == before);
}

TEST(DpTest, ClipsToNorm) {
  StateDict d = BigDelta();
  Rng rng(2);
  DpOptions options;
  options.enable = true;
  options.clip_norm = 1.0;
  options.noise_multiplier = 0.0;
  double pre = ApplyDpToDelta(&d, options, &rng);
  EXPECT_NEAR(pre, 10.0, 1e-4);
  EXPECT_NEAR(SdNorm(d), 1.0, 1e-4);
}

TEST(DpTest, ShortDeltaNotScaledUp) {
  StateDict d;
  d["w"] = Tensor::Full({4}, 0.1f);  // norm 0.2
  Rng rng(3);
  DpOptions options;
  options.enable = true;
  options.clip_norm = 10.0;
  options.noise_multiplier = 0.0;
  ApplyDpToDelta(&d, options, &rng);
  EXPECT_NEAR(SdNorm(d), 0.2, 1e-5);
}

TEST(DpTest, GaussianNoiseHasExpectedScale) {
  DpOptions options;
  options.enable = true;
  options.clip_norm = 1.0;
  options.noise_multiplier = 0.5;  // sigma = 0.5
  Rng rng(4);
  RunningStat stat;
  for (int trial = 0; trial < 50; ++trial) {
    StateDict d;
    d["w"] = Tensor::Zeros({200});
    ApplyDpToDelta(&d, options, &rng);
    for (int64_t i = 0; i < 200; ++i) stat.Add(d.at("w").at(i));
  }
  EXPECT_NEAR(stat.mean(), 0.0, 0.02);
  EXPECT_NEAR(stat.stddev(), 0.5, 0.02);
}

TEST(DpTest, LaplaceNoiseHasExpectedScale) {
  DpOptions options;
  options.enable = true;
  options.clip_norm = 1.0;
  options.noise_multiplier = 0.5;
  options.mechanism = "laplace";
  Rng rng(5);
  RunningStat stat;
  for (int trial = 0; trial < 50; ++trial) {
    StateDict d;
    d["w"] = Tensor::Zeros({200});
    ApplyDpToDelta(&d, options, &rng);
    for (int64_t i = 0; i < 200; ++i) stat.Add(d.at("w").at(i));
  }
  EXPECT_NEAR(stat.mean(), 0.0, 0.03);
  EXPECT_NEAR(stat.stddev(), 0.5, 0.05);
}

TEST(DpTest, FromConfigReadsKeys) {
  Config c;
  c.Set("dp.enable", true);
  c.Set("dp.clip_norm", 2.0);
  c.Set("dp.noise_multiplier", 0.7);
  c.Set("dp.mechanism", "laplace");
  DpOptions options = DpOptions::FromConfig(c);
  EXPECT_TRUE(options.enable);
  EXPECT_DOUBLE_EQ(options.clip_norm, 2.0);
  EXPECT_DOUBLE_EQ(options.noise_multiplier, 0.7);
  EXPECT_EQ(options.mechanism, "laplace");
}

TEST(DpTest, EpsilonDecreasesWithMoreNoise) {
  const double weak = GaussianEpsilon(0.5, 10, 1e-5);
  const double strong = GaussianEpsilon(2.0, 10, 1e-5);
  EXPECT_GT(weak, strong);
  EXPECT_GT(strong, 0.0);
}

TEST(DpTest, EpsilonGrowsWithSteps) {
  EXPECT_GT(GaussianEpsilon(1.0, 100, 1e-5),
            GaussianEpsilon(1.0, 10, 1e-5));
}

}  // namespace
}  // namespace fedscope
