#ifndef FEDSCOPE_EXEC_WORKER_POOL_H_
#define FEDSCOPE_EXEC_WORKER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fedscope {

/// Fixed-size pool of persistent worker threads executing one batch of
/// tasks at a time. Determinism does not depend on which thread claims
/// which task: callers index results by task position and commit them in
/// canonical order after Run returns. Run provides the happens-before
/// edge — every effect of every task is visible to the caller once Run
/// returns, and no task runs outside a Run call.
class WorkerPool {
 public:
  /// Spawns `num_threads` workers (must be >= 1).
  explicit WorkerPool(int num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int num_threads() const { return static_cast<int>(threads_.size()); }

  /// Runs every task to completion and blocks until all returned. Tasks
  /// are claimed by ascending index; `tasks` is borrowed for the duration
  /// of the call. Not reentrant (single batch in flight).
  void Run(std::vector<std::function<void()>>* tasks);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::function<void()>>* tasks_ = nullptr;  // guarded by mu_
  size_t next_ = 0;                                      // guarded by mu_
  size_t remaining_ = 0;                                 // guarded by mu_
  int64_t generation_ = 0;                               // guarded by mu_
  bool shutdown_ = false;                                // guarded by mu_
  std::vector<std::thread> threads_;
};

}  // namespace fedscope

#endif  // FEDSCOPE_EXEC_WORKER_POOL_H_
