#ifndef FEDSCOPE_EXEC_EXECUTION_H_
#define FEDSCOPE_EXEC_EXECUTION_H_

namespace fedscope {

/// How the standalone runner executes the deliveries of one virtual-time
/// instant (DESIGN.md §12).
enum class ExecutionBackend {
  /// One thread pumps and handles everything, in event-queue order. The
  /// default, and the reference semantics every other backend must match
  /// bit for bit.
  kSerial,
  /// Client-targeted deliveries that share a virtual timestamp are handled
  /// concurrently on a worker pool; their effects (emitted messages,
  /// metric/trace ops, delivery taps) are committed in canonical order —
  /// the serial pop order: ascending insertion sequence within the
  /// timestamp, then each delivery's send sequence. Same-seed runs are
  /// bit-identical to kSerial, including obs exports. Server, aggregator,
  /// fault-injection, and codec work stays on the pump thread.
  kThreaded,
};

/// Execution-backend selection for one FedJob.
struct ExecutionOptions {
  ExecutionBackend backend = ExecutionBackend::kSerial;
  /// Worker threads for kThreaded (ignored by kSerial);
  /// <= 0 uses std::thread::hardware_concurrency().
  int num_threads = 0;
};

}  // namespace fedscope

#endif  // FEDSCOPE_EXEC_EXECUTION_H_
