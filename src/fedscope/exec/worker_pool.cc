#include "fedscope/exec/worker_pool.h"

#include "fedscope/util/logging.h"

namespace fedscope {

WorkerPool::WorkerPool(int num_threads) {
  FS_CHECK_GE(num_threads, 1);
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::Run(std::vector<std::function<void()>>* tasks) {
  FS_CHECK(tasks != nullptr);
  if (tasks->empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  FS_CHECK_EQ(remaining_, 0u);  // not reentrant
  tasks_ = tasks;
  next_ = 0;
  remaining_ = tasks->size();
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  tasks_ = nullptr;
}

void WorkerPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  int64_t seen = 0;
  for (;;) {
    work_cv_.wait(lock,
                  [this, seen] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    while (tasks_ != nullptr && next_ < tasks_->size()) {
      const size_t i = next_++;
      lock.unlock();
      (*tasks_)[i]();
      lock.lock();
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace fedscope
