#ifndef FEDSCOPE_EXEC_BUFFERING_CHANNEL_H_
#define FEDSCOPE_EXEC_BUFFERING_CHANNEL_H_

#include <vector>

#include "fedscope/comm/channel.h"

namespace fedscope {

/// Per-worker channel decorator for the threaded execution backend.
/// Outside a capture window it forwards to the inner channel unchanged
/// (serial semantics). During a parallel client task the runner opens a
/// capture window: Sends append to a per-delivery buffer (in the worker's
/// send order) instead of reaching the channel, and the runner drains the
/// buffers through `inner` in canonical commit order afterwards — so taps,
/// fault injection, and the wire codec observe exactly the serial send
/// sequence. Begin/EndCapture are called from the task thread; the
/// pool's Run() barrier orders them against the pump thread's drain.
class BufferingChannel : public CommChannel {
 public:
  explicit BufferingChannel(CommChannel* inner) : inner_(inner) {}

  void Send(const Message& msg) override {
    if (sink_ != nullptr) {
      sink_->push_back(msg);
    } else {
      inner_->Send(msg);
    }
  }

  /// Redirects subsequent Sends into `sink` (borrowed) until EndCapture.
  void BeginCapture(std::vector<Message>* sink) { sink_ = sink; }
  void EndCapture() { sink_ = nullptr; }

  CommChannel* inner() const { return inner_; }

 private:
  CommChannel* inner_;
  std::vector<Message>* sink_ = nullptr;
};

}  // namespace fedscope

#endif  // FEDSCOPE_EXEC_BUFFERING_CHANNEL_H_
