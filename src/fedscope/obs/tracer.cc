#include "fedscope/obs/tracer.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

namespace fedscope {
namespace {

int64_t SecondsToMicros(double seconds) {
  return static_cast<int64_t>(std::llround(seconds * 1e6));
}

/// JSON string escaping for names/args (quotes, backslash, control bytes).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace

void Tracer::Span(const std::string& name, double begin_seconds,
                  double duration_seconds, int tid,
                  std::vector<std::pair<std::string, std::string>> args) {
  TraceEvent event;
  event.name = name;
  event.phase = 'X';
  event.ts_us = SecondsToMicros(begin_seconds);
  event.dur_us = SecondsToMicros(duration_seconds);
  event.tid = tid;
  event.args = std::move(args);
  events_.push_back(std::move(event));
}

void Tracer::Instant(const std::string& name, double at_seconds, int tid,
                     std::vector<std::pair<std::string, std::string>> args) {
  TraceEvent event;
  event.name = name;
  event.phase = 'i';
  event.ts_us = SecondsToMicros(at_seconds);
  event.tid = tid;
  event.args = std::move(args);
  events_.push_back(std::move(event));
}

std::string Tracer::ToChromeJson() const {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const auto& event : events_) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << JsonEscape(event.name) << "\",\"ph\":\""
       << event.phase << "\",\"ts\":" << event.ts_us;
    if (event.phase == 'X') os << ",\"dur\":" << event.dur_us;
    os << ",\"pid\":1,\"tid\":" << event.tid;
    if (event.phase == 'i') os << ",\"s\":\"t\"";
    if (!event.args.empty()) {
      os << ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : event.args) {
        if (!first_arg) os << ",";
        first_arg = false;
        os << "\"" << JsonEscape(key) << "\":\"" << JsonEscape(value) << "\"";
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n]\n";
  return os.str();
}

Status Tracer::WriteChromeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  const std::string text = ToChromeJson();
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::DataLoss("short write to " + path);
  }
  return Status::Ok();
}

ScopedSpan::ScopedSpan(Tracer* tracer, std::string name, double begin_seconds,
                       int tid)
    : tracer_(tracer),
      name_(std::move(name)),
      begin_seconds_(begin_seconds),
      end_seconds_(begin_seconds),
      tid_(tid) {}

void ScopedSpan::set_end(double end_seconds) {
  end_seconds_ = end_seconds < begin_seconds_ ? begin_seconds_ : end_seconds;
}

void ScopedSpan::AddArg(std::string key, std::string value) {
  args_.emplace_back(std::move(key), std::move(value));
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  tracer_->Span(name_, begin_seconds_, end_seconds_ - begin_seconds_, tid_,
                std::move(args_));
}

double WallTimeSeconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace fedscope
