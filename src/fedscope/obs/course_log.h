#ifndef FEDSCOPE_OBS_COURSE_LOG_H_
#define FEDSCOPE_OBS_COURSE_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fedscope/util/status.h"

namespace fedscope {

/// One aggregation round of an FL course, as the server observed it. This
/// is the structured record the paper's evaluation is built from: who
/// contributed (Fig. 10), how stale the updates were (Fig. 11), how many
/// bytes crossed the wire (compression ablation), and what the global
/// model scored (Table 1 / Fig. 9 curves).
struct CourseRoundRecord {
  /// Round number after this aggregation (1-based).
  int round = 0;
  /// Condition event that triggered the aggregation (all_received /
  /// goal_achieved / time_up).
  std::string trigger;
  /// Virtual timestamp of the aggregation (wall seconds in distributed
  /// mode).
  double time = 0.0;
  /// Client ids whose updates entered this aggregation, in buffer order.
  std::vector<int> contributors;
  /// Staleness of each contributing update (parallel to `contributors`).
  std::vector<int> staleness;
  /// Payload bytes of model_update messages received since the previous
  /// aggregation (including declined-notices; what crossed the uplink).
  int64_t uplink_bytes = 0;
  /// Payload bytes of model_para broadcasts sent since the previous
  /// aggregation.
  int64_t downlink_bytes = 0;
  /// model_para broadcasts sent since the previous aggregation.
  int broadcasts = 0;
  /// Updates dropped for exceeding the staleness toleration this round.
  int64_t dropped_stale = 0;
  /// Training requests declined by clients this round.
  int64_t declined = 0;
  /// Clients presumed dead this round (receive-deadline expiries /
  /// connection failures).
  int64_t dropouts = 0;
  /// Replacement clients sampled into vacated cohort slots this round.
  int64_t replacements = 0;
  /// Pre-aggregated shard partials accepted this round (hierarchical
  /// topologies; 0 in flat courses).
  int64_t partial_updates = 0;
  /// Standby promotions the root acknowledged this round.
  int64_t shard_failovers = 0;
  /// Updates the ingress guard rejected this round (signature / non-finite
  /// / over-norm, plus edge-aggregator rejects); 0 when the guard is off.
  int64_t updates_rejected = 0;
  /// Clients quarantined out of the sampling pool this round.
  int64_t clients_quarantined = 0;
  /// True when the server evaluated the global model after this round.
  bool evaluated = false;
  double eval_accuracy = 0.0;
  double eval_loss = 0.0;
  /// Durable snapshots written right after this aggregation and their
  /// total byte size (0 when snapshotting is off — the default).
  int snapshots = 0;
  int64_t snapshot_bytes = 0;
};

/// Append-only per-round course record with JSONL/CSV export and the
/// aggregations the benches need. Deterministic: rounds are stored in
/// append order and exports use fixed number formatting.
class CourseLog {
 public:
  void Append(CourseRoundRecord record);

  /// Marks the most recent round as snapshotted. Separate from Append
  /// because the snapshot is written by the runner/host *after* the
  /// aggregation's record is already in the log. No-op on an empty log.
  void AnnotateSnapshot(int64_t bytes);

  const std::vector<CourseRoundRecord>& rounds() const { return rounds_; }
  int num_rounds() const { return static_cast<int>(rounds_.size()); }
  void Clear() { rounds_.clear(); }

  /// Effective aggregation count per client id (1-based, index 0 unused;
  /// size num_clients + 1) — the quantity of Figure 10.
  std::vector<int64_t> AggCountPerClient(int num_clients) const;
  /// Staleness of every contributing update across all rounds, in
  /// aggregation order — the distribution of Figure 11.
  std::vector<int> AllStaleness() const;
  /// Total contributing updates across all rounds.
  int64_t TotalContributions() const;
  int64_t TotalUplinkBytes() const;
  int64_t TotalDownlinkBytes() const;

  /// One JSON object per line per round.
  std::string ToJsonl() const;
  /// Flat CSV (contributors/staleness joined with ';' inside one cell).
  std::string ToCsv() const;
  Status WriteJsonl(const std::string& path) const;
  Status WriteCsv(const std::string& path) const;

 private:
  std::vector<CourseRoundRecord> rounds_;
};

}  // namespace fedscope

#endif  // FEDSCOPE_OBS_COURSE_LOG_H_
