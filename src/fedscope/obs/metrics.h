#ifndef FEDSCOPE_OBS_METRICS_H_
#define FEDSCOPE_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fedscope/util/status.h"

namespace fedscope {

/// Labels attached to one metric time series ("client" -> "7"). Stored
/// sorted so snapshots and expositions are deterministic.
using MetricLabels = std::map<std::string, std::string>;

/// Monotonically increasing count (messages sent, updates dropped, ...).
class Counter {
 public:
  /// Adds `delta` (must be >= 0; counters never decrease).
  void Increment(double delta = 1.0);
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// A value that can go up and down (queue depth, rounds completed, ...).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double delta) { value_ += delta; }
  /// Keeps the maximum of the current value and `v` (peak tracking).
  void SetMax(double v);
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram in the Prometheus style: `bounds` are ascending
/// bucket upper limits; an implicit +inf bucket catches the overflow.
class HistogramMetric {
 public:
  /// `bounds` must be strictly ascending and non-empty.
  explicit HistogramMetric(std::vector<double> bounds);

  void Observe(double x);
  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Bucket i counts observations <= bounds[i]; bucket bounds().size() is
  /// the +inf overflow bucket. Counts are per-bucket, not cumulative.
  int64_t bucket_count(int i) const { return buckets_[i]; }

 private:
  std::vector<double> bounds_;
  std::vector<int64_t> buckets_;  // bounds_.size() + 1 entries
  int64_t count_ = 0;
  double sum_ = 0.0;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One time series frozen at snapshot time.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  MetricLabels labels;
  /// Counter/gauge value; for histograms the observation count.
  double value = 0.0;
  // Histogram-only fields.
  std::vector<double> bounds;
  std::vector<int64_t> buckets;
  double sum = 0.0;
};

/// A consistent copy of every registered series, ordered by (name, labels)
/// so two snapshots of identical registries compare and print identically.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  /// Prometheus text exposition (# TYPE lines, name{labels} value, and
  /// _bucket/_sum/_count expansion for histograms).
  std::string ToPrometheusText() const;
  /// CSV with columns name,kind,labels,field,value. Histograms expand to
  /// one row per bucket plus sum and count rows.
  std::string ToCsv() const;
  /// Finds a sample by exact name + labels (nullptr if absent).
  const MetricSample* Find(const std::string& name,
                           const MetricLabels& labels = {}) const;
};

/// Registry of labeled metric families. Get* returns a stable pointer,
/// creating the series on first use; re-using a family name with a
/// different kind is a programmer error (FS_CHECK). Not thread-safe: the
/// standalone pump mutates it only from the pump thread (the threaded
/// execution backend gives parallel tasks private MetricsBuffers and
/// replays them at commit), and distributed hosts serialize sends through
/// their router lock.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name, const MetricLabels& labels = {});
  Gauge* GetGauge(const std::string& name, const MetricLabels& labels = {});
  /// `bounds` is consulted only when the series does not exist yet.
  HistogramMetric* GetHistogram(const std::string& name,
                                const std::vector<double>& bounds,
                                const MetricLabels& labels = {});

  /// Value of one counter series (0 if it was never touched).
  double CounterValue(const std::string& name,
                      const MetricLabels& labels = {}) const;
  /// Sum of a counter family across every label combination.
  double SumCounters(const std::string& name) const;

  MetricsSnapshot Snapshot() const;
  std::string PrometheusText() const { return Snapshot().ToPrometheusText(); }
  std::string Csv() const { return Snapshot().ToCsv(); }
  /// Writes the Prometheus exposition to a file.
  Status WritePrometheusText(const std::string& path) const;

  void Clear();
  int64_t num_series() const;

 private:
  using SeriesKey = std::pair<std::string, MetricLabels>;
  /// Guards one family name against kind collisions.
  MetricKind* FamilyKind(const std::string& name, MetricKind kind);

  std::map<std::string, MetricKind> kinds_;
  std::map<SeriesKey, std::unique_ptr<Counter>> counters_;
  std::map<SeriesKey, std::unique_ptr<Gauge>> gauges_;
  std::map<SeriesKey, std::unique_ptr<HistogramMetric>> histograms_;
};

/// Order-preserving log of metric mutations for later replay into a real
/// registry. The threaded execution backend hands each parallel client
/// task a private buffer (via ObsContext::metrics_buffer) and replays the
/// buffers on the pump thread in canonical commit order, so the registry
/// sees exactly the op sequence a serial run would have produced — counter
/// sums, gauge last-writer values, and histogram float accumulation stay
/// bit-identical. Not thread-safe; each buffer belongs to one task.
class MetricsBuffer {
 public:
  void Count(const std::string& name, double delta, MetricLabels labels);
  void SetGauge(const std::string& name, double value, MetricLabels labels);
  void MaxGauge(const std::string& name, double value, MetricLabels labels);
  void Observe(const std::string& name, const std::vector<double>& bounds,
               double value, MetricLabels labels);

  /// Applies the buffered ops to `registry`, in record order.
  void ReplayInto(MetricsRegistry* registry) const;

  bool empty() const { return ops_.empty(); }
  int64_t num_ops() const { return static_cast<int64_t>(ops_.size()); }
  void Clear() { ops_.clear(); }

 private:
  enum class OpKind { kCount, kGaugeSet, kGaugeMax, kObserve };
  struct Op {
    OpKind kind;
    std::string name;
    MetricLabels labels;
    double value = 0.0;
    std::vector<double> bounds;  // kObserve only
  };
  std::vector<Op> ops_;
};

/// Formats a metric value the way the expositions do: integers without a
/// decimal point, everything else with %.9g (deterministic, locale-free).
std::string FormatMetricValue(double v);

}  // namespace fedscope

#endif  // FEDSCOPE_OBS_METRICS_H_
