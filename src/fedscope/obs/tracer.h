#ifndef FEDSCOPE_OBS_TRACER_H_
#define FEDSCOPE_OBS_TRACER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "fedscope/util/status.h"

namespace fedscope {

/// One Chrome trace_event entry. Timestamps are microseconds; `tid` maps to
/// the participant id (server 0, client ids 1..n), so chrome://tracing lays
/// out one row per participant.
struct TraceEvent {
  std::string name;
  char phase = 'X';  // 'X' complete span, 'i' instant event
  int64_t ts_us = 0;
  int64_t dur_us = 0;  // 'X' only
  int tid = 0;
  /// Extra key/value context rendered into the event's "args" object.
  std::vector<std::pair<std::string, std::string>> args;

  bool operator==(const TraceEvent& other) const = default;
};

/// Collects spans and instant events for one run. Every API takes explicit
/// timestamps in seconds: in standalone mode callers pass *virtual* time so
/// traces are bit-reproducible under a fixed seed (CLAUDE.md determinism);
/// distributed hosts pass wall time (WallTimeSeconds below). The tracer
/// itself never reads a clock.
class Tracer {
 public:
  /// Records a complete span [begin, begin + duration].
  void Span(const std::string& name, double begin_seconds,
            double duration_seconds, int tid = 0,
            std::vector<std::pair<std::string, std::string>> args = {});

  /// Records an instant event at `at_seconds`.
  void Instant(const std::string& name, double at_seconds, int tid = 0,
               std::vector<std::pair<std::string, std::string>> args = {});

  /// Appends every event of `other` in its record order. The threaded
  /// execution backend gives each parallel client task a private Tracer
  /// and appends the buffers at commit in canonical order, reproducing
  /// the serial run's event sequence exactly.
  void Append(const Tracer& other) {
    events_.insert(events_.end(), other.events_.begin(), other.events_.end());
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  int64_t num_events() const { return static_cast<int64_t>(events_.size()); }
  void Clear() { events_.clear(); }

  /// Serializes to the Chrome trace_event JSON array format, loadable in
  /// chrome://tracing / Perfetto. Deterministic: events appear in record
  /// order with fixed number formatting.
  std::string ToChromeJson() const;
  Status WriteChromeJson(const std::string& path) const;

 private:
  std::vector<TraceEvent> events_;
};

/// RAII span helper. Virtual time does not advance during a C++ scope, so
/// the end timestamp is provided explicitly via set_end before destruction;
/// without it the span closes at its begin time (zero duration). Null
/// tracer => fully inert.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string name, double begin_seconds,
             int tid = 0);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Sets the span's end time (clamped to not precede the begin time).
  void set_end(double end_seconds);
  /// Attaches one args entry to the emitted span.
  void AddArg(std::string key, std::string value);

 private:
  Tracer* tracer_;
  std::string name_;
  double begin_seconds_;
  double end_seconds_;
  int tid_;
  std::vector<std::pair<std::string, std::string>> args_;
};

/// Monotonic wall time in seconds since the first call; the time source for
/// distributed-mode traces (never used in standalone simulation).
double WallTimeSeconds();

}  // namespace fedscope

#endif  // FEDSCOPE_OBS_TRACER_H_
