#include "fedscope/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "fedscope/util/logging.h"

namespace fedscope {
namespace {

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

/// Renders labels as {k="v",k2="v2"}; empty labels render as "".
std::string LabelsText(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) os << ",";
    first = false;
    os << k << "=\"" << v << "\"";
  }
  os << "}";
  return os.str();
}

/// Labels with one extra pair appended (for histogram `le` buckets).
std::string LabelsTextWith(const MetricLabels& labels, const std::string& key,
                           const std::string& value) {
  MetricLabels extended = labels;
  extended[key] = value;
  return LabelsText(extended);
}

/// Semicolon-joined k=v form for CSV cells (no commas, deterministic).
std::string LabelsCsv(const MetricLabels& labels) {
  std::ostringstream os;
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) os << ";";
    first = false;
    os << k << "=" << v;
  }
  return os.str();
}

}  // namespace

std::string FormatMetricValue(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void Counter::Increment(double delta) {
  FS_CHECK_GE(delta, 0.0);
  value_ += delta;
}

void Gauge::SetMax(double v) { value_ = std::max(value_, v); }

HistogramMetric::HistogramMetric(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {
  FS_CHECK(!bounds_.empty());
  for (size_t i = 1; i < bounds_.size(); ++i) {
    FS_CHECK_LT(bounds_[i - 1], bounds_[i]);
  }
}

void HistogramMetric::Observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++buckets_[static_cast<size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += x;
}

MetricKind* MetricsRegistry::FamilyKind(const std::string& name,
                                        MetricKind kind) {
  auto [it, inserted] = kinds_.emplace(name, kind);
  FS_CHECK(it->second == kind)
      << "metric family '" << name << "' already registered as "
      << KindName(it->second) << ", requested as " << KindName(kind);
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const MetricLabels& labels) {
  FamilyKind(name, MetricKind::kCounter);
  auto& slot = counters_[{name, labels}];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const MetricLabels& labels) {
  FamilyKind(name, MetricKind::kGauge);
  auto& slot = gauges_[{name, labels}];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

HistogramMetric* MetricsRegistry::GetHistogram(const std::string& name,
                                               const std::vector<double>& bounds,
                                               const MetricLabels& labels) {
  FamilyKind(name, MetricKind::kHistogram);
  auto& slot = histograms_[{name, labels}];
  if (!slot) slot = std::make_unique<HistogramMetric>(bounds);
  return slot.get();
}

double MetricsRegistry::CounterValue(const std::string& name,
                                     const MetricLabels& labels) const {
  auto it = counters_.find({name, labels});
  return it == counters_.end() ? 0.0 : it->second->value();
}

double MetricsRegistry::SumCounters(const std::string& name) const {
  double sum = 0.0;
  for (auto it = counters_.lower_bound({name, MetricLabels{}});
       it != counters_.end() && it->first.first == name; ++it) {
    sum += it->second->value();
  }
  return sum;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  for (const auto& [key, counter] : counters_) {
    MetricSample sample;
    sample.name = key.first;
    sample.kind = MetricKind::kCounter;
    sample.labels = key.second;
    sample.value = counter->value();
    snapshot.samples.push_back(std::move(sample));
  }
  for (const auto& [key, gauge] : gauges_) {
    MetricSample sample;
    sample.name = key.first;
    sample.kind = MetricKind::kGauge;
    sample.labels = key.second;
    sample.value = gauge->value();
    snapshot.samples.push_back(std::move(sample));
  }
  for (const auto& [key, histogram] : histograms_) {
    MetricSample sample;
    sample.name = key.first;
    sample.kind = MetricKind::kHistogram;
    sample.labels = key.second;
    sample.value = static_cast<double>(histogram->count());
    sample.bounds = histogram->bounds();
    sample.buckets.resize(sample.bounds.size() + 1);
    for (size_t i = 0; i < sample.buckets.size(); ++i) {
      sample.buckets[i] = histogram->bucket_count(static_cast<int>(i));
    }
    sample.sum = histogram->sum();
    snapshot.samples.push_back(std::move(sample));
  }
  std::sort(snapshot.samples.begin(), snapshot.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return snapshot;
}

const MetricSample* MetricsSnapshot::Find(const std::string& name,
                                          const MetricLabels& labels) const {
  for (const auto& sample : samples) {
    if (sample.name == name && sample.labels == labels) return &sample;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::ostringstream os;
  std::string last_family;
  for (const auto& sample : samples) {
    if (sample.name != last_family) {
      os << "# TYPE " << sample.name << " " << KindName(sample.kind) << "\n";
      last_family = sample.name;
    }
    if (sample.kind == MetricKind::kHistogram) {
      int64_t cumulative = 0;
      for (size_t i = 0; i < sample.bounds.size(); ++i) {
        cumulative += sample.buckets[i];
        os << sample.name << "_bucket"
           << LabelsTextWith(sample.labels, "le",
                             FormatMetricValue(sample.bounds[i]))
           << " " << cumulative << "\n";
      }
      cumulative += sample.buckets.back();
      os << sample.name << "_bucket"
         << LabelsTextWith(sample.labels, "le", "+Inf") << " " << cumulative
         << "\n";
      os << sample.name << "_sum" << LabelsText(sample.labels) << " "
         << FormatMetricValue(sample.sum) << "\n";
      os << sample.name << "_count" << LabelsText(sample.labels) << " "
         << FormatMetricValue(sample.value) << "\n";
    } else {
      os << sample.name << LabelsText(sample.labels) << " "
         << FormatMetricValue(sample.value) << "\n";
    }
  }
  return os.str();
}

std::string MetricsSnapshot::ToCsv() const {
  std::ostringstream os;
  os << "name,kind,labels,field,value\n";
  for (const auto& sample : samples) {
    const std::string labels = LabelsCsv(sample.labels);
    const char* kind = KindName(sample.kind);
    if (sample.kind == MetricKind::kHistogram) {
      for (size_t i = 0; i < sample.bounds.size(); ++i) {
        os << sample.name << "," << kind << "," << labels << ",le="
           << FormatMetricValue(sample.bounds[i]) << "," << sample.buckets[i]
           << "\n";
      }
      os << sample.name << "," << kind << "," << labels << ",le=+Inf,"
         << sample.buckets.back() << "\n";
      os << sample.name << "," << kind << "," << labels << ",sum,"
         << FormatMetricValue(sample.sum) << "\n";
      os << sample.name << "," << kind << "," << labels << ",count,"
         << FormatMetricValue(sample.value) << "\n";
    } else {
      os << sample.name << "," << kind << "," << labels << ",value,"
         << FormatMetricValue(sample.value) << "\n";
    }
  }
  return os.str();
}

Status MetricsRegistry::WritePrometheusText(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  const std::string text = PrometheusText();
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::DataLoss("short write to " + path);
  }
  return Status::Ok();
}

void MetricsRegistry::Clear() {
  kinds_.clear();
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

int64_t MetricsRegistry::num_series() const {
  return static_cast<int64_t>(counters_.size() + gauges_.size() +
                              histograms_.size());
}

void MetricsBuffer::Count(const std::string& name, double delta,
                          MetricLabels labels) {
  ops_.push_back({OpKind::kCount, name, std::move(labels), delta, {}});
}

void MetricsBuffer::SetGauge(const std::string& name, double value,
                             MetricLabels labels) {
  ops_.push_back({OpKind::kGaugeSet, name, std::move(labels), value, {}});
}

void MetricsBuffer::MaxGauge(const std::string& name, double value,
                             MetricLabels labels) {
  ops_.push_back({OpKind::kGaugeMax, name, std::move(labels), value, {}});
}

void MetricsBuffer::Observe(const std::string& name,
                            const std::vector<double>& bounds, double value,
                            MetricLabels labels) {
  ops_.push_back({OpKind::kObserve, name, std::move(labels), value, bounds});
}

void MetricsBuffer::ReplayInto(MetricsRegistry* registry) const {
  FS_CHECK(registry != nullptr);
  for (const Op& op : ops_) {
    switch (op.kind) {
      case OpKind::kCount:
        registry->GetCounter(op.name, op.labels)->Increment(op.value);
        break;
      case OpKind::kGaugeSet:
        registry->GetGauge(op.name, op.labels)->Set(op.value);
        break;
      case OpKind::kGaugeMax:
        registry->GetGauge(op.name, op.labels)->SetMax(op.value);
        break;
      case OpKind::kObserve:
        registry->GetHistogram(op.name, op.bounds, op.labels)
            ->Observe(op.value);
        break;
    }
  }
}

}  // namespace fedscope
