#ifndef FEDSCOPE_OBS_OBS_CONTEXT_H_
#define FEDSCOPE_OBS_OBS_CONTEXT_H_

#include <string>
#include <vector>

#include "fedscope/comm/message.h"
#include "fedscope/obs/course_log.h"
#include "fedscope/obs/metrics.h"
#include "fedscope/obs/tracer.h"

namespace fedscope {

/// Injectable observability sinks. All pointers are borrowed (caller owns
/// the registries and must keep them alive for the run) and default to
/// null, which makes every instrumentation hook a no-op: with a default
/// ObsContext the platform behaves and performs exactly as without
/// observability. Copyable by value (it is just three pointers).
struct ObsContext {
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
  CourseLog* course_log = nullptr;
  /// When set, the metric wrappers below record ops here instead of
  /// mutating `metrics` — the threaded execution backend's per-task
  /// capture (replayed into the real registry at commit, in canonical
  /// order). Instrumentation sites must go through the wrappers (or gate
  /// direct registry access on `metrics`, never on recording_metrics())
  /// for the capture to be exact.
  MetricsBuffer* metrics_buffer = nullptr;

  bool enabled() const {
    return metrics != nullptr || tracer != nullptr || course_log != nullptr ||
           metrics_buffer != nullptr;
  }
  /// True when the metric wrappers will record anything — directly or into
  /// a buffer. Use this (not `metrics != nullptr`) to skip work that only
  /// feeds the wrappers, so sites behave identically under both execution
  /// backends.
  bool recording_metrics() const {
    return metrics != nullptr || metrics_buffer != nullptr;
  }

  // -- null-safe convenience wrappers ---------------------------------------
  // Each forwards to the buffer or registry when present; otherwise a
  // no-op. They let instrumentation sites stay one-liners without null
  // checks.

  void Count(const std::string& name, double delta = 1.0,
             const MetricLabels& labels = {}) const {
    if (metrics_buffer != nullptr) {
      metrics_buffer->Count(name, delta, labels);
    } else if (metrics != nullptr) {
      metrics->GetCounter(name, labels)->Increment(delta);
    }
  }
  void SetGauge(const std::string& name, double value,
                const MetricLabels& labels = {}) const {
    if (metrics_buffer != nullptr) {
      metrics_buffer->SetGauge(name, value, labels);
    } else if (metrics != nullptr) {
      metrics->GetGauge(name, labels)->Set(value);
    }
  }
  void MaxGauge(const std::string& name, double value,
                const MetricLabels& labels = {}) const {
    if (metrics_buffer != nullptr) {
      metrics_buffer->MaxGauge(name, value, labels);
    } else if (metrics != nullptr) {
      metrics->GetGauge(name, labels)->SetMax(value);
    }
  }
  void Observe(const std::string& name, const std::vector<double>& bounds,
               double value, const MetricLabels& labels = {}) const {
    if (metrics_buffer != nullptr) {
      metrics_buffer->Observe(name, bounds, value, labels);
    } else if (metrics != nullptr) {
      metrics->GetHistogram(name, bounds, labels)->Observe(value);
    }
  }

  /// Shared CommChannel::Send instrumentation: message and payload-byte
  /// counters by message type. Called by every channel implementation
  /// (FedRunner's virtual-time queue, QueueChannel, TCP routers) so traffic
  /// accounting is transport-independent.
  void OnChannelSend(const Message& msg) const {
    if (!recording_metrics()) return;
    const MetricLabels labels = {{"type", msg.msg_type}};
    Count("fs_comm_messages_total", 1.0, labels);
    Count("fs_comm_payload_bytes_total",
          static_cast<double>(msg.payload.ByteSize()), labels);
  }
};

/// Default histogram bounds used by the built-in instrumentation.
/// Staleness in rounds (Fig. 11 ranges).
inline const std::vector<double>& StalenessBounds() {
  static const std::vector<double> bounds = {0, 1, 2, 3, 4, 5, 8, 12, 16, 24};
  return bounds;
}
/// Virtual-seconds latencies (client rounds, server rounds).
inline const std::vector<double>& LatencyBounds() {
  static const std::vector<double> bounds = {1,    5,    15,   60,   120,
                                             300,  600,  1800, 3600, 7200};
  return bounds;
}

}  // namespace fedscope

#endif  // FEDSCOPE_OBS_OBS_CONTEXT_H_
