#include "fedscope/obs/course_log.h"

#include <cstdio>
#include <sstream>
#include <utility>

namespace fedscope {
namespace {

std::string FormatTime(double t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", t);
  return buf;
}

std::string FormatEval(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string JoinInts(const std::vector<int>& values, const char* sep) {
  std::ostringstream os;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) os << sep;
    os << values[i];
  }
  return os.str();
}

Status WriteFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::DataLoss("short write to " + path);
  }
  return Status::Ok();
}

}  // namespace

void CourseLog::Append(CourseRoundRecord record) {
  rounds_.push_back(std::move(record));
}

void CourseLog::AnnotateSnapshot(int64_t bytes) {
  if (rounds_.empty()) return;
  ++rounds_.back().snapshots;
  rounds_.back().snapshot_bytes += bytes;
}

std::vector<int64_t> CourseLog::AggCountPerClient(int num_clients) const {
  std::vector<int64_t> counts(num_clients + 1, 0);
  for (const auto& round : rounds_) {
    for (int id : round.contributors) {
      if (id >= 1 && id < static_cast<int>(counts.size())) ++counts[id];
    }
  }
  return counts;
}

std::vector<int> CourseLog::AllStaleness() const {
  std::vector<int> all;
  for (const auto& round : rounds_) {
    all.insert(all.end(), round.staleness.begin(), round.staleness.end());
  }
  return all;
}

int64_t CourseLog::TotalContributions() const {
  int64_t total = 0;
  for (const auto& round : rounds_) {
    total += static_cast<int64_t>(round.contributors.size());
  }
  return total;
}

int64_t CourseLog::TotalUplinkBytes() const {
  int64_t total = 0;
  for (const auto& round : rounds_) total += round.uplink_bytes;
  return total;
}

int64_t CourseLog::TotalDownlinkBytes() const {
  int64_t total = 0;
  for (const auto& round : rounds_) total += round.downlink_bytes;
  return total;
}

std::string CourseLog::ToJsonl() const {
  std::ostringstream os;
  for (const auto& r : rounds_) {
    os << "{\"round\":" << r.round << ",\"trigger\":\"" << r.trigger
       << "\",\"time\":" << FormatTime(r.time) << ",\"contributors\":["
       << JoinInts(r.contributors, ",") << "],\"staleness\":["
       << JoinInts(r.staleness, ",") << "],\"uplink_bytes\":" << r.uplink_bytes
       << ",\"downlink_bytes\":" << r.downlink_bytes
       << ",\"broadcasts\":" << r.broadcasts
       << ",\"dropped_stale\":" << r.dropped_stale
       << ",\"declined\":" << r.declined;
    // Fault fields appear only when faults occurred, keeping fault-free
    // course logs byte-identical to the pre-fault format.
    if (r.dropouts != 0 || r.replacements != 0) {
      os << ",\"dropouts\":" << r.dropouts
         << ",\"replacements\":" << r.replacements;
    }
    // Topology fields appear only in hierarchical courses, keeping flat
    // course logs byte-identical to the pre-topology format.
    if (r.partial_updates != 0 || r.shard_failovers != 0) {
      os << ",\"partial_updates\":" << r.partial_updates
         << ",\"shard_failovers\":" << r.shard_failovers;
    }
    // Guard fields appear only on rounds with guard activity, keeping
    // guard-off course logs byte-identical to the pre-guard format.
    if (r.updates_rejected != 0 || r.clients_quarantined != 0) {
      os << ",\"updates_rejected\":" << r.updates_rejected
         << ",\"clients_quarantined\":" << r.clients_quarantined;
    }
    // Snapshot fields appear only on snapshotted rounds, keeping
    // snapshot-free course logs byte-identical to the previous format.
    if (r.snapshots != 0) {
      os << ",\"snapshots\":" << r.snapshots
         << ",\"snapshot_bytes\":" << r.snapshot_bytes;
    }
    os << ",\"evaluated\":" << (r.evaluated ? "true" : "false");
    if (r.evaluated) {
      os << ",\"eval_accuracy\":" << FormatEval(r.eval_accuracy)
         << ",\"eval_loss\":" << FormatEval(r.eval_loss);
    }
    os << "}\n";
  }
  return os.str();
}

std::string CourseLog::ToCsv() const {
  // Topology columns appear only when some round has topology activity,
  // keeping flat course CSVs byte-identical to the pre-topology format.
  bool topology = false;
  // Guard columns likewise appear only when some round rejected or
  // quarantined, keeping guard-off CSVs byte-identical to the old format.
  bool guard = false;
  for (const auto& r : rounds_) {
    if (r.partial_updates != 0 || r.shard_failovers != 0) topology = true;
    if (r.updates_rejected != 0 || r.clients_quarantined != 0) guard = true;
  }
  std::ostringstream os;
  os << "round,trigger,time,contributors,staleness,uplink_bytes,"
        "downlink_bytes,broadcasts,dropped_stale,declined,dropouts,"
        "replacements,";
  if (topology) os << "partial_updates,shard_failovers,";
  if (guard) os << "updates_rejected,clients_quarantined,";
  os << "snapshots,snapshot_bytes,evaluated,eval_accuracy,eval_loss\n";
  for (const auto& r : rounds_) {
    os << r.round << "," << r.trigger << "," << FormatTime(r.time) << ","
       << JoinInts(r.contributors, ";") << "," << JoinInts(r.staleness, ";")
       << "," << r.uplink_bytes << "," << r.downlink_bytes << ","
       << r.broadcasts << "," << r.dropped_stale << "," << r.declined << ","
       << r.dropouts << "," << r.replacements << ",";
    if (topology) os << r.partial_updates << "," << r.shard_failovers << ",";
    if (guard) {
      os << r.updates_rejected << "," << r.clients_quarantined << ",";
    }
    os << r.snapshots << "," << r.snapshot_bytes << "," << (r.evaluated ? 1 : 0)
       << "," << (r.evaluated ? FormatEval(r.eval_accuracy) : "") << ","
       << (r.evaluated ? FormatEval(r.eval_loss) : "") << "\n";
  }
  return os.str();
}

Status CourseLog::WriteJsonl(const std::string& path) const {
  return WriteFile(path, ToJsonl());
}

Status CourseLog::WriteCsv(const std::string& path) const {
  return WriteFile(path, ToCsv());
}

}  // namespace fedscope
