#ifndef FEDSCOPE_UTIL_RNG_H_
#define FEDSCOPE_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "fedscope/util/status.h"

namespace fedscope {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// splitmix64). Every stochastic component in fedscope takes an explicit
/// Rng so that experiments and tests are exactly reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0);

  /// Raw 64 random bits.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller.
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Lognormal: exp(Normal(mu, sigma)).
  double Lognormal(double mu, double sigma);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Exponential with the given rate (lambda).
  double Exponential(double rate);

  /// Gamma(shape, scale=1) via Marsaglia-Tsang (shape > 0).
  double Gamma(double shape);

  /// Dirichlet draw with symmetric or per-component concentration.
  std::vector<double> Dirichlet(const std::vector<double>& alpha);

  /// Samples an index from an (unnormalized, non-negative) weight vector.
  int64_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of [0, n) indices returned as a vector.
  std::vector<int64_t> Permutation(int64_t n);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (int64_t i = static_cast<int64_t>(v->size()) - 1; i > 0; --i) {
      int64_t j = UniformInt(0, i);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// k distinct indices sampled uniformly from [0, n) (k <= n).
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  /// Derives an independent child stream; deterministic in (seed, stream_id).
  Rng Fork(uint64_t stream_id) const;

  /// Exact generator state as 7 words (xoshiro s[0..3], seed, Box-Muller
  /// cache flag, cached normal bits): LoadState(SaveState()) resumes the
  /// stream bit-identically, including a pending cached normal.
  std::vector<uint64_t> SaveState() const;
  /// Restores a state captured by SaveState. Rejects a wrong word count.
  Status LoadState(const std::vector<uint64_t>& words);

 private:
  uint64_t s_[4];
  uint64_t seed_;
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace fedscope

#endif  // FEDSCOPE_UTIL_RNG_H_
