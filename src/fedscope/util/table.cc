#include "fedscope/util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace fedscope {

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

Table::RowBuilder::~RowBuilder() { table_->AddRow(std::move(cells_)); }

Table::RowBuilder& Table::RowBuilder::Str(const std::string& s) {
  cells_.push_back(s);
  return *this;
}

Table::RowBuilder& Table::RowBuilder::Num(double v, int precision) {
  cells_.push_back(FormatDouble(v, precision));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::Int(int64_t v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

std::string Table::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto hline = [&] {
    std::string s = "+";
    for (size_t w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto format_row = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      std::string cell = c < cells.size() ? cells[c] : "";
      s += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return s + "\n";
  };
  std::ostringstream os;
  os << hline() << format_row(header_) << hline();
  for (const auto& row : rows_) os << format_row(row);
  os << hline();
  return os.str();
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace fedscope
