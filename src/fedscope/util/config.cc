#include "fedscope/util/config.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace fedscope {
namespace {

std::string ValueToString(const Config::Value& v) {
  if (std::holds_alternative<bool>(v)) {
    return std::get<bool>(v) ? "true" : "false";
  }
  if (std::holds_alternative<int64_t>(v)) {
    return std::to_string(std::get<int64_t>(v));
  }
  if (std::holds_alternative<double>(v)) {
    std::ostringstream os;
    os << std::get<double>(v);
    return os.str();
  }
  return std::get<std::string>(v);
}

}  // namespace

bool Config::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

bool Config::GetBool(const std::string& key, bool def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  if (std::holds_alternative<bool>(it->second)) {
    return std::get<bool>(it->second);
  }
  if (std::holds_alternative<int64_t>(it->second)) {
    return std::get<int64_t>(it->second) != 0;
  }
  return def;
}

int64_t Config::GetInt(const std::string& key, int64_t def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  if (std::holds_alternative<int64_t>(it->second)) {
    return std::get<int64_t>(it->second);
  }
  if (std::holds_alternative<double>(it->second)) {
    return static_cast<int64_t>(std::get<double>(it->second));
  }
  if (std::holds_alternative<bool>(it->second)) {
    return std::get<bool>(it->second) ? 1 : 0;
  }
  return def;
}

double Config::GetDouble(const std::string& key, double def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  if (std::holds_alternative<double>(it->second)) {
    return std::get<double>(it->second);
  }
  if (std::holds_alternative<int64_t>(it->second)) {
    return static_cast<double>(std::get<int64_t>(it->second));
  }
  return def;
}

std::string Config::GetString(const std::string& key,
                              const std::string& def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  if (std::holds_alternative<std::string>(it->second)) {
    return std::get<std::string>(it->second);
  }
  return ValueToString(it->second);
}

Result<bool> Config::Bool(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return Status::NotFound("config key: " + key);
  if (!std::holds_alternative<bool>(it->second)) {
    return Status::InvalidArgument("config key " + key + " is not a bool");
  }
  return std::get<bool>(it->second);
}

Result<int64_t> Config::Int(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return Status::NotFound("config key: " + key);
  if (!std::holds_alternative<int64_t>(it->second)) {
    return Status::InvalidArgument("config key " + key + " is not an int");
  }
  return std::get<int64_t>(it->second);
}

Result<double> Config::Double(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return Status::NotFound("config key: " + key);
  if (std::holds_alternative<double>(it->second)) {
    return std::get<double>(it->second);
  }
  if (std::holds_alternative<int64_t>(it->second)) {
    return static_cast<double>(std::get<int64_t>(it->second));
  }
  return Status::InvalidArgument("config key " + key + " is not numeric");
}

Result<std::string> Config::String(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return Status::NotFound("config key: " + key);
  if (!std::holds_alternative<std::string>(it->second)) {
    return Status::InvalidArgument("config key " + key + " is not a string");
  }
  return std::get<std::string>(it->second);
}

void Config::Merge(const Config& other) {
  for (const auto& [key, value] : other.values_) {
    values_[key] = value;
  }
}

Status Config::ParseAssignment(const std::string& assignment) {
  auto eq = assignment.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("expected key=value, got: " + assignment);
  }
  std::string key = assignment.substr(0, eq);
  std::string raw = assignment.substr(eq + 1);
  if (raw == "true" || raw == "false") {
    Set(key, raw == "true");
    return Status::Ok();
  }
  // Try integer, then double, then fall back to string.
  if (!raw.empty()) {
    char* end = nullptr;
    long long as_int = std::strtoll(raw.c_str(), &end, 10);
    if (end && *end == '\0') {
      Set(key, static_cast<int64_t>(as_int));
      return Status::Ok();
    }
    double as_double = std::strtod(raw.c_str(), &end);
    if (end && *end == '\0') {
      Set(key, as_double);
      return Status::Ok();
    }
  }
  Set(key, raw);
  return Status::Ok();
}

std::vector<std::string> Config::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(values_.size());
  for (const auto& [key, value] : values_) keys.push_back(key);
  return keys;
}

std::string Config::ToString() const {
  std::ostringstream os;
  for (const auto& [key, value] : values_) {
    os << key << "=" << ValueToString(value) << "\n";
  }
  return os.str();
}

}  // namespace fedscope
