#include "fedscope/util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "fedscope/util/logging.h"

namespace fedscope {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double Quantile(std::vector<double> values, double q) {
  FS_CHECK(!values.empty());
  FS_CHECK_GE(q, 0.0);
  FS_CHECK_LE(q, 1.0);
  std::sort(values.begin(), values.end());
  double pos = q * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Stddev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mu = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - mu) * (v - mu);
  return std::sqrt(acc / static_cast<double>(values.size()));
}

Histogram::Histogram(double lo, double hi, int num_bins)
    : lo_(lo), hi_(hi), counts_(num_bins, 0) {
  FS_CHECK_GT(num_bins, 0);
  FS_CHECK_LT(lo, hi);
}

void Histogram::Add(double x) {
  double t = (x - lo_) / (hi_ - lo_);
  int bin = static_cast<int>(t * num_bins());
  bin = std::clamp(bin, 0, num_bins() - 1);
  ++counts_[bin];
  ++total_;
}

double Histogram::bin_lo(int bin) const {
  return lo_ + (hi_ - lo_) * bin / num_bins();
}

double Histogram::bin_hi(int bin) const {
  return lo_ + (hi_ - lo_) * (bin + 1) / num_bins();
}

double Histogram::bin_frac(int bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

std::string Histogram::ToAscii(int width) const {
  int64_t peak = 1;
  for (int64_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (int b = 0; b < num_bins(); ++b) {
    int bar = static_cast<int>(
        static_cast<double>(counts_[b]) / static_cast<double>(peak) * width);
    char line[64];
    std::snprintf(line, sizeof(line), "[%8.2f, %8.2f) %6.3f ", bin_lo(b),
                  bin_hi(b), bin_frac(b));
    os << line << std::string(bar, '#') << "\n";
  }
  return os.str();
}

}  // namespace fedscope
