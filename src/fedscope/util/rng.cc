#include "fedscope/util/rng.h"

#include <cmath>
#include <cstring>
#include <unordered_map>

#include "fedscope/util/logging.h"

namespace fedscope {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  // xoshiro256**
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  FS_CHECK_LE(lo, hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t r;
  do {
    r = Next();
  } while (r >= limit);
  return lo + static_cast<int64_t>(r % range);
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = Uniform();
  double u2 = Uniform();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  have_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::Lognormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

double Rng::Exponential(double rate) {
  FS_CHECK_GT(rate, 0.0);
  double u = 0.0;
  while (u <= 1e-300) u = Uniform();
  return -std::log(u) / rate;
}

double Rng::Gamma(double shape) {
  FS_CHECK_GT(shape, 0.0);
  if (shape < 1.0) {
    // Boost to shape >= 1 then scale back (Marsaglia-Tsang trick).
    double u = 0.0;
    while (u <= 1e-300) u = Uniform();
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = Normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 1e-300 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

std::vector<double> Rng::Dirichlet(const std::vector<double>& alpha) {
  std::vector<double> out(alpha.size());
  double total = 0.0;
  for (size_t i = 0; i < alpha.size(); ++i) {
    out[i] = Gamma(alpha[i]);
    total += out[i];
  }
  if (total <= 0.0) {
    // Degenerate draw: fall back to uniform.
    for (auto& x : out) x = 1.0 / static_cast<double>(out.size());
    return out;
  }
  for (auto& x : out) x /= total;
  return out;
}

int64_t Rng::Categorical(const std::vector<double>& weights) {
  FS_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    FS_CHECK_GE(w, 0.0);
    total += w;
  }
  FS_CHECK_GT(total, 0.0) << "all categorical weights are zero";
  double r = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return static_cast<int64_t>(i);
  }
  return static_cast<int64_t>(weights.size()) - 1;
}

std::vector<int64_t> Rng::Permutation(int64_t n) {
  std::vector<int64_t> idx(n);
  for (int64_t i = 0; i < n; ++i) idx[i] = i;
  Shuffle(&idx);
  return idx;
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  FS_CHECK_LE(k, n);
  FS_CHECK_GE(k, 0);
  // Both branches draw UniformInt(i, n-1) for i in [0, k) and read the
  // virtual array idx[] with the same swap semantics, so they produce
  // bit-identical output for any (state, n, k); the sparse branch merely
  // stores the O(k) displaced entries instead of all n.
  if (n >= 1024 && k * 8 <= n) {
    std::unordered_map<int64_t, int64_t> displaced;
    displaced.reserve(static_cast<size_t>(2 * k));
    auto at = [&displaced](int64_t pos) {
      auto it = displaced.find(pos);
      return it == displaced.end() ? pos : it->second;
    };
    std::vector<int64_t> out(k);
    for (int64_t i = 0; i < k; ++i) {
      int64_t j = UniformInt(i, n - 1);
      const int64_t vi = at(i);
      out[i] = at(j);
      displaced[j] = vi;
    }
    return out;
  }
  // Partial Fisher-Yates: O(n) memory, O(k) swaps.
  std::vector<int64_t> idx(n);
  for (int64_t i = 0; i < n; ++i) idx[i] = i;
  for (int64_t i = 0; i < k; ++i) {
    int64_t j = UniformInt(i, n - 1);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::Fork(uint64_t stream_id) const {
  // Mix the original seed with the stream id through splitmix to derive an
  // independent, reproducible child stream.
  uint64_t state = seed_ ^ (0x517cc1b727220a95ULL * (stream_id + 1));
  return Rng(SplitMix64(&state));
}

std::vector<uint64_t> Rng::SaveState() const {
  uint64_t normal_bits;
  static_assert(sizeof(normal_bits) == sizeof(cached_normal_));
  std::memcpy(&normal_bits, &cached_normal_, sizeof(normal_bits));
  return {s_[0],
          s_[1],
          s_[2],
          s_[3],
          seed_,
          have_cached_normal_ ? 1ULL : 0ULL,
          normal_bits};
}

Status Rng::LoadState(const std::vector<uint64_t>& words) {
  if (words.size() != 7) {
    return Status::InvalidArgument("rng state must be 7 words");
  }
  for (int i = 0; i < 4; ++i) s_[i] = words[i];
  seed_ = words[4];
  have_cached_normal_ = words[5] != 0;
  std::memcpy(&cached_normal_, &words[6], sizeof(cached_normal_));
  return Status::Ok();
}

}  // namespace fedscope
