#ifndef FEDSCOPE_UTIL_STATUS_H_
#define FEDSCOPE_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace fedscope {

/// Error codes for fallible operations. The library does not use exceptions
/// (per the project style); fallible APIs return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kDataLoss,
  kDeadlineExceeded,
};

/// A Status carries an error code plus a human-readable message.
/// A default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

  static std::string CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
      case StatusCode::kNotFound: return "NOT_FOUND";
      case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
      case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
      case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
      case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
      case StatusCode::kInternal: return "INTERNAL";
      case StatusCode::kDataLoss: return "DATA_LOSS";
      case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    }
    return "UNKNOWN";
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> is either a value or an error Status (StatusOr-lite).
template <typename T>
class Result {
 public:
  /// Implicit from value / Status so `return value;` and `return status;`
  /// both work, mirroring absl::StatusOr.
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {}     // NOLINT

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates an error Status from an expression, absl-style.
#define FS_RETURN_IF_ERROR(expr)                       \
  do {                                                 \
    ::fedscope::Status fs_status_ = (expr);            \
    if (!fs_status_.ok()) return fs_status_;           \
  } while (0)

}  // namespace fedscope

#endif  // FEDSCOPE_UTIL_STATUS_H_
