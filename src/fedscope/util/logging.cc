#include "fedscope/util/logging.h"

#include <cstdio>
#include <mutex>

namespace fedscope {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kFatal: return "FATAL";
  }
  return "?";
}

struct LoggingState {
  std::mutex mu;
  LogLevel min_level = LogLevel::kInfo;
  Logging::Sink sink;
};

LoggingState& State() {
  static LoggingState& state = *new LoggingState();
  return state;
}

}  // namespace

LogLevel Logging::min_level() { return State().min_level; }

void Logging::set_min_level(LogLevel level) { State().min_level = level; }

void Logging::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(State().mu);
  State().sink = std::move(sink);
}

void Logging::Emit(LogLevel level, const char* file, int line,
                   const std::string& text) {
  // Strip directories from the file path for compact output.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::lock_guard<std::mutex> lock(State().mu);
  if (State().sink) {
    State().sink(level, text);
    if (level != LogLevel::kFatal) return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line,
               text.c_str());
  std::fflush(stderr);
}

}  // namespace fedscope
