#ifndef FEDSCOPE_UTIL_CONFIG_H_
#define FEDSCOPE_UTIL_CONFIG_H_

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "fedscope/util/status.h"

namespace fedscope {

/// A yacs-like configuration: dotted keys mapped to typed values.
///
/// This is the mechanism behind several paper features:
///  * client-specific training configuration (personalization, §3.4.1),
///  * the FedEx manager plug-in that re-specifies a client's native
///    configuration each round (§4.3, Figure 8),
///  * enabling behaviour plug-ins (e.g. `privacy.dp.enable = true`).
class Config {
 public:
  using Value = std::variant<bool, int64_t, double, std::string>;

  Config() = default;

  bool Has(const std::string& key) const;

  /// Typed setters.
  void Set(const std::string& key, bool v) { values_[key] = v; }
  void Set(const std::string& key, int v) {
    values_[key] = static_cast<int64_t>(v);
  }
  void Set(const std::string& key, int64_t v) { values_[key] = v; }
  void Set(const std::string& key, double v) { values_[key] = v; }
  void Set(const std::string& key, const char* v) {
    values_[key] = std::string(v);
  }
  void Set(const std::string& key, std::string v) {
    values_[key] = std::move(v);
  }

  /// Typed getters with defaults. Numeric getters convert between int64 and
  /// double when needed (an int-valued key can be read as double and vice
  /// versa when lossless).
  bool GetBool(const std::string& key, bool def) const;
  int64_t GetInt(const std::string& key, int64_t def) const;
  double GetDouble(const std::string& key, double def) const;
  std::string GetString(const std::string& key, const std::string& def) const;

  /// Strict getters: error if the key is absent or type-incompatible.
  Result<bool> Bool(const std::string& key) const;
  Result<int64_t> Int(const std::string& key) const;
  Result<double> Double(const std::string& key) const;
  Result<std::string> String(const std::string& key) const;

  /// Overlays `other` on top of this config (other wins on conflicts).
  /// This implements client-specific overrides: global config merged with
  /// a per-client patch.
  void Merge(const Config& other);

  /// Parses "key=value" assignments; value type inferred (bool/int/double/
  /// string). Used by example binaries for command-line overrides.
  Status ParseAssignment(const std::string& assignment);

  /// All keys in sorted order (map iteration order).
  std::vector<std::string> Keys() const;

  /// Serializes to "key=value" lines, for logging experiment settings.
  std::string ToString() const;

  bool operator==(const Config& other) const { return values_ == other.values_; }

 private:
  std::map<std::string, Value> values_;
};

}  // namespace fedscope

#endif  // FEDSCOPE_UTIL_CONFIG_H_
