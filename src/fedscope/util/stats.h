#ifndef FEDSCOPE_UTIL_STATS_H_
#define FEDSCOPE_UTIL_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace fedscope {

/// Streaming mean / variance (Welford).
class RunningStat {
 public:
  void Add(double x);
  int64_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Population variance; 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Quantile of a sample (linear interpolation between order statistics).
/// q in [0, 1]. The input is copied and sorted.
double Quantile(std::vector<double> values, double q);

double Mean(const std::vector<double>& values);
double Stddev(const std::vector<double>& values);

/// Fixed-bin histogram over [lo, hi]; values outside are clamped into the
/// first/last bin. Used for staleness / aggregation-count distributions
/// (Figures 10 and 11).
class Histogram {
 public:
  Histogram(double lo, double hi, int num_bins);

  void Add(double x);
  int64_t total() const { return total_; }
  int num_bins() const { return static_cast<int>(counts_.size()); }
  int64_t bin_count(int bin) const { return counts_[bin]; }
  double bin_lo(int bin) const;
  double bin_hi(int bin) const;
  /// Fraction of mass in the bin.
  double bin_frac(int bin) const;

  /// Multi-line ASCII rendering (bar chart), for bench output.
  std::string ToAscii(int width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

}  // namespace fedscope

#endif  // FEDSCOPE_UTIL_STATS_H_
