#ifndef FEDSCOPE_UTIL_TABLE_H_
#define FEDSCOPE_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace fedscope {

/// Simple ASCII table used by the benchmark harness to print the rows of
/// the paper's tables/figures.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Convenience for mixed-type rows.
  class RowBuilder {
   public:
    explicit RowBuilder(Table* table) : table_(table) {}
    ~RowBuilder();
    RowBuilder& Str(const std::string& s);
    RowBuilder& Num(double v, int precision = 4);
    RowBuilder& Int(int64_t v);

   private:
    Table* table_;
    std::vector<std::string> cells_;
  };
  RowBuilder Row() { return RowBuilder(this); }

  std::string ToString() const;
  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision.
std::string FormatDouble(double v, int precision = 4);

}  // namespace fedscope

#endif  // FEDSCOPE_UTIL_TABLE_H_
