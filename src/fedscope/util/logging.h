#ifndef FEDSCOPE_UTIL_LOGGING_H_
#define FEDSCOPE_UTIL_LOGGING_H_

#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>

namespace fedscope {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Process-wide logging configuration. Messages below the minimum level are
/// dropped. A sink can be installed (e.g., by tests) to capture log lines;
/// otherwise lines go to stderr.
class Logging {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static LogLevel min_level();
  static void set_min_level(LogLevel level);

  /// Installs a capture sink (nullptr restores stderr output).
  static void set_sink(Sink sink);

  /// Emits one formatted log line (internal; used by LogMessage).
  static void Emit(LogLevel level, const char* file, int line,
                   const std::string& text);
};

/// Stream-style log message collector. Destructor emits; kFatal aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() {
    Logging::Emit(level_, file_, line_, stream_.str());
    if (level_ == LogLevel::kFatal) std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Discards the streamed expression when the level is disabled.
class LogMessageVoidify {
 public:
  void operator&(std::ostream&) {}
};

#define FS_LOG_INTERNAL(level)                                              \
  ::fedscope::LogMessage(level, __FILE__, __LINE__).stream()

#define FS_LOG(severity)                                                    \
  (::fedscope::LogLevel::k##severity < ::fedscope::Logging::min_level())    \
      ? (void)0                                                             \
      : ::fedscope::LogMessageVoidify() &                                   \
            FS_LOG_INTERNAL(::fedscope::LogLevel::k##severity)

/// FS_CHECK: invariant checking, active in all build types.
#define FS_CHECK(cond)                                                      \
  (cond) ? (void)0                                                          \
         : ::fedscope::LogMessageVoidify() &                                \
               FS_LOG_INTERNAL(::fedscope::LogLevel::kFatal)                \
                   << "Check failed: " #cond " "

#define FS_CHECK_OP(a, b, op)                                               \
  FS_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "

#define FS_CHECK_EQ(a, b) FS_CHECK_OP(a, b, ==)
#define FS_CHECK_NE(a, b) FS_CHECK_OP(a, b, !=)
#define FS_CHECK_LT(a, b) FS_CHECK_OP(a, b, <)
#define FS_CHECK_LE(a, b) FS_CHECK_OP(a, b, <=)
#define FS_CHECK_GT(a, b) FS_CHECK_OP(a, b, >)
#define FS_CHECK_GE(a, b) FS_CHECK_OP(a, b, >=)

#define FS_CHECK_OK(expr)                                                   \
  do {                                                                      \
    ::fedscope::Status fs_check_status_ = (expr);                           \
    FS_CHECK(fs_check_status_.ok()) << fs_check_status_.ToString();         \
  } while (0)

}  // namespace fedscope

#endif  // FEDSCOPE_UTIL_LOGGING_H_
