#include "fedscope/fault/fault_plan.h"

#include <cmath>

#include "fedscope/core/events.h"
#include "fedscope/core/topology.h"
#include "fedscope/util/logging.h"

namespace fedscope {
namespace {

constexpr uint64_t kDefaultSeed = 0xFA017;

bool IsDataPlane(const std::string& msg_type) {
  return msg_type == events::kModelPara || msg_type == events::kModelUpdate ||
         msg_type == events::kEvaluate || msg_type == events::kMetrics ||
         msg_type == events::kPartialUpdate;
}

bool IsUplink(const std::string& msg_type) {
  return msg_type == events::kModelUpdate || msg_type == events::kMetrics;
}

std::set<int> PickClients(double frac, int num_clients, Rng* rng) {
  std::set<int> picked;
  if (frac <= 0.0 || num_clients <= 0) return picked;
  const auto k = static_cast<int64_t>(
      std::lround(frac * static_cast<double>(num_clients)));
  for (int64_t idx : rng->SampleWithoutReplacement(num_clients, k)) {
    picked.insert(static_cast<int>(idx) + 1);  // client ids are 1-based
  }
  return picked;
}

}  // namespace

FaultPlan::FaultPlan(const FaultPlanOptions& options, int num_clients)
    : options_(options) {
  FS_CHECK_GE(options_.dropout_frac, 0.0);
  FS_CHECK_LE(options_.dropout_frac, 1.0);
  FS_CHECK_GE(options_.straggler_frac, 0.0);
  FS_CHECK_LE(options_.straggler_frac, 1.0);
  for (const AggregatorCrash& crash : options_.aggregator_crashes) {
    aggregator_crash_rounds_[{crash.shard, crash.slot}] = crash.round;
  }
  enabled_ = options_.dropout_frac > 0.0 ||
             options_.crash_after_training_prob > 0.0 ||
             (options_.straggler_frac > 0.0 &&
              options_.straggler_delay > 0.0) ||
             options_.msg_loss_prob > 0.0 ||
             options_.msg_duplicate_prob > 0.0 ||
             (options_.msg_delay_prob > 0.0 && options_.msg_delay_max > 0.0) ||
             (options_.aggregator_straggler_shard >= 0 &&
              options_.aggregator_straggler_delay > 0.0);
  if (!enabled_) return;
  const Rng seeder(options_.seed != 0 ? options_.seed : kDefaultSeed);
  Rng dropout_rng = seeder.Fork(1);
  Rng straggler_rng = seeder.Fork(2);
  dropped_ = PickClients(options_.dropout_frac, num_clients, &dropout_rng);
  stragglers_ =
      PickClients(options_.straggler_frac, num_clients, &straggler_rng);
  rng_ = seeder.Fork(3);
}

int FaultPlan::AggregatorCrashRound(int shard, int slot) const {
  auto it = aggregator_crash_rounds_.find({shard, slot});
  return it != aggregator_crash_rounds_.end() ? it->second : -1;
}

FaultPlan::MessageFate FaultPlan::Judge(const Message& msg) {
  MessageFate fate;
  if (!enabled_ || !IsDataPlane(msg.msg_type)) return fate;

  if (msg.msg_type == events::kPartialUpdate) {
    if (options_.aggregator_straggler_shard >= 0 &&
        options_.aggregator_straggler_delay > 0.0 &&
        IsAggregatorId(msg.sender) &&
        AggregatorShard(msg.sender) == options_.aggregator_straggler_shard) {
      fate.extra_delay += options_.aggregator_straggler_delay;
      ++counters_.delayed;
    }
    return fate;  // partials skip the per-client channel-fault draws
  }

  if (IsUplink(msg.msg_type)) {
    if (IsDropped(msg.sender)) {
      // The device went dark after joining: its uplink never arrives.
      fate.drop = true;
      ++counters_.dropout_suppressed;
      return fate;
    }
    if (msg.msg_type == events::kModelUpdate &&
        options_.crash_after_training_prob > 0.0 &&
        rng_.Bernoulli(options_.crash_after_training_prob)) {
      fate.drop = true;
      ++counters_.crashes;
      return fate;
    }
    if (IsStraggler(msg.sender)) {
      fate.extra_delay += options_.straggler_delay;
    }
  }

  if (options_.msg_loss_prob > 0.0 && rng_.Bernoulli(options_.msg_loss_prob)) {
    fate.drop = true;
    ++counters_.lost;
    return fate;
  }
  if (options_.msg_duplicate_prob > 0.0 &&
      rng_.Bernoulli(options_.msg_duplicate_prob)) {
    fate.duplicate = true;
    ++counters_.duplicated;
  }
  if (options_.msg_delay_prob > 0.0 && options_.msg_delay_max > 0.0 &&
      rng_.Bernoulli(options_.msg_delay_prob)) {
    fate.extra_delay += rng_.Uniform(0.0, options_.msg_delay_max);
    ++counters_.delayed;
  }
  return fate;
}

}  // namespace fedscope
