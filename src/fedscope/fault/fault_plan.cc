#include "fedscope/fault/fault_plan.h"

#include <cmath>
#include <limits>

#include "fedscope/core/events.h"
#include "fedscope/core/topology.h"
#include "fedscope/util/logging.h"

namespace fedscope {
namespace {

constexpr uint64_t kDefaultSeed = 0xFA017;

bool IsDataPlane(const std::string& msg_type) {
  return msg_type == events::kModelPara || msg_type == events::kModelUpdate ||
         msg_type == events::kEvaluate || msg_type == events::kMetrics ||
         msg_type == events::kPartialUpdate;
}

bool IsUplink(const std::string& msg_type) {
  return msg_type == events::kModelUpdate || msg_type == events::kMetrics;
}

std::set<int> PickClients(double frac, int num_clients, Rng* rng) {
  std::set<int> picked;
  if (frac <= 0.0 || num_clients <= 0) return picked;
  const auto k = static_cast<int64_t>(
      std::lround(frac * static_cast<double>(num_clients)));
  for (int64_t idx : rng->SampleWithoutReplacement(num_clients, k)) {
    picked.insert(static_cast<int>(idx) + 1);  // client ids are 1-based
  }
  return picked;
}

}  // namespace

FaultPlan::FaultPlan(const FaultPlanOptions& options, int num_clients)
    : options_(options) {
  FS_CHECK_GE(options_.dropout_frac, 0.0);
  FS_CHECK_LE(options_.dropout_frac, 1.0);
  FS_CHECK_GE(options_.straggler_frac, 0.0);
  FS_CHECK_LE(options_.straggler_frac, 1.0);
  for (const AggregatorCrash& crash : options_.aggregator_crashes) {
    aggregator_crash_rounds_[{crash.shard, crash.slot}] = crash.round;
  }
  FS_CHECK_GE(options_.hostile_frac, 0.0);
  FS_CHECK_LE(options_.hostile_frac, 1.0);
  enabled_ = options_.dropout_frac > 0.0 ||
             options_.crash_after_training_prob > 0.0 ||
             (options_.straggler_frac > 0.0 &&
              options_.straggler_delay > 0.0) ||
             options_.msg_loss_prob > 0.0 ||
             options_.msg_duplicate_prob > 0.0 ||
             (options_.msg_delay_prob > 0.0 && options_.msg_delay_max > 0.0) ||
             (options_.aggregator_straggler_shard >= 0 &&
              options_.aggregator_straggler_delay > 0.0) ||
             options_.hostile_frac > 0.0;
  if (!enabled_) return;
  const Rng seeder(options_.seed != 0 ? options_.seed : kDefaultSeed);
  Rng dropout_rng = seeder.Fork(1);
  Rng straggler_rng = seeder.Fork(2);
  dropped_ = PickClients(options_.dropout_frac, num_clients, &dropout_rng);
  stragglers_ =
      PickClients(options_.straggler_frac, num_clients, &straggler_rng);
  rng_ = seeder.Fork(3);
  // Hostile draws live on their own fork so turning the axis on (or off)
  // never perturbs the dropout/straggler/channel streams of a given seed.
  hostile_rng_ = seeder.Fork(4);
  hostile_ = PickClients(options_.hostile_frac, num_clients, &hostile_rng_);
}

int FaultPlan::AggregatorCrashRound(int shard, int slot) const {
  auto it = aggregator_crash_rounds_.find({shard, slot});
  return it != aggregator_crash_rounds_.end() ? it->second : -1;
}

FaultPlan::MessageFate FaultPlan::Judge(const Message& msg) {
  MessageFate fate;
  if (!enabled_ || !IsDataPlane(msg.msg_type)) return fate;

  if (msg.msg_type == events::kPartialUpdate) {
    if (options_.aggregator_straggler_shard >= 0 &&
        options_.aggregator_straggler_delay > 0.0 &&
        IsAggregatorId(msg.sender) &&
        AggregatorShard(msg.sender) == options_.aggregator_straggler_shard) {
      fate.extra_delay += options_.aggregator_straggler_delay;
      ++counters_.delayed;
    }
    return fate;  // partials skip the per-client channel-fault draws
  }

  if (IsUplink(msg.msg_type)) {
    if (IsDropped(msg.sender)) {
      // The device went dark after joining: its uplink never arrives.
      fate.drop = true;
      ++counters_.dropout_suppressed;
      return fate;
    }
    if (msg.msg_type == events::kModelUpdate &&
        options_.crash_after_training_prob > 0.0 &&
        rng_.Bernoulli(options_.crash_after_training_prob)) {
      fate.drop = true;
      ++counters_.crashes;
      return fate;
    }
    if (IsStraggler(msg.sender)) {
      fate.extra_delay += options_.straggler_delay;
    }
  }

  if (options_.msg_loss_prob > 0.0 && rng_.Bernoulli(options_.msg_loss_prob)) {
    fate.drop = true;
    ++counters_.lost;
    return fate;
  }
  if (options_.msg_duplicate_prob > 0.0 &&
      rng_.Bernoulli(options_.msg_duplicate_prob)) {
    fate.duplicate = true;
    ++counters_.duplicated;
  }
  if (options_.msg_delay_prob > 0.0 && options_.msg_delay_max > 0.0 &&
      rng_.Bernoulli(options_.msg_delay_prob)) {
    fate.extra_delay += rng_.Uniform(0.0, options_.msg_delay_max);
    ++counters_.delayed;
  }

  // Hostile mutation of surviving model updates. Decided last so a message
  // the channel loses anyway never consumes a hostile draw.
  if (msg.msg_type == events::kModelUpdate && IsHostile(msg.sender) &&
      hostile_rng_.Bernoulli(options_.hostile_prob)) {
    std::string mode = options_.hostile_mode;
    if (mode == "mixed") {
      static constexpr const char* kModes[] = {"nan",       "inf",
                                               "sign_flip", "scale",
                                               "malformed", "replay"};
      mode = kModes[hostile_rng_.UniformInt(0, 5)];
    }
    fate.hostile = mode;
    fate.hostile_scale = options_.hostile_scale;
    if (mode == "nan" || mode == "inf") {
      ++counters_.poisoned_nonfinite;
    } else if (mode == "sign_flip") {
      ++counters_.sign_flipped;
    } else if (mode == "scale") {
      ++counters_.scaled;
    } else if (mode == "malformed") {
      ++counters_.malformed;
    } else if (mode == "replay") {
      ++counters_.replayed;
    }
  }
  return fate;
}

void ApplyHostileMutation(const FaultPlan::MessageFate& fate, Message* msg) {
  if (fate.hostile.empty()) return;
  if (fate.hostile == "replay") {
    // Claim round 0: under nonzero staleness toleration the stale payload
    // must still pass the guard's shape/finiteness screens; beyond it the
    // ordinary staleness drop applies.
    msg->state = 0;
    return;
  }
  std::vector<std::string> keys;
  keys.reserve(msg->payload.tensors().size());
  for (const auto& [name, tensor] : msg->payload.tensors()) {
    keys.push_back(name);
  }
  if (fate.hostile == "malformed") {
    // Rename + flatten one tensor: still perfectly codec-valid, but the
    // name and shape no longer match the broadcast signature.
    if (keys.empty()) return;
    Tensor t = msg->payload.GetTensor(keys.front()).value();
    msg->payload.RemoveTensor(keys.front());
    msg->payload.SetTensor(keys.front() + "#", t.Reshape({t.numel()}));
    return;
  }
  for (const std::string& key : keys) {
    Tensor t = msg->payload.GetTensor(key).value();
    if (fate.hostile == "nan") {
      if (t.numel() > 0) t.at(0) = std::numeric_limits<float>::quiet_NaN();
    } else if (fate.hostile == "inf") {
      if (t.numel() > 0) t.at(0) = std::numeric_limits<float>::infinity();
    } else if (fate.hostile == "sign_flip") {
      for (int64_t i = 0; i < t.numel(); ++i) t.at(i) = -t.at(i);
    } else if (fate.hostile == "scale") {
      const float scale = static_cast<float>(fate.hostile_scale);
      for (int64_t i = 0; i < t.numel(); ++i) t.at(i) *= scale;
    }
    msg->payload.SetTensor(key, std::move(t));
  }
}

}  // namespace fedscope
