#ifndef FEDSCOPE_FAULT_FAULT_CHANNEL_H_
#define FEDSCOPE_FAULT_FAULT_CHANNEL_H_

#include "fedscope/comm/channel.h"
#include "fedscope/fault/fault_plan.h"
#include "fedscope/obs/obs_context.h"

namespace fedscope {

/// CommChannel decorator that applies a FaultPlan to in-flight messages:
/// drops, duplicates, or delays them before they reach the inner channel.
/// Workers stay unchanged (the architecture invariant) — they just happen
/// to be wired to a lossy channel. With a disabled plan every message is
/// forwarded verbatim, so the decorator adds no behaviour.
class FaultInjectingChannel : public CommChannel {
 public:
  /// Both pointers are borrowed and must outlive the channel.
  FaultInjectingChannel(CommChannel* inner, FaultPlan* plan)
      : inner_(inner), plan_(plan) {}

  void Send(const Message& msg) override;

  /// Attaches observability sinks (borrowed; null restores the no-op
  /// default). Injected faults are then counted by type and cause.
  void set_obs(const ObsContext* obs) { obs_ = obs; }

 private:
  /// Applies the delay/duplicate parts of a fate and hands off to the
  /// inner channel.
  void Forward(const FaultPlan::MessageFate& fate, const Message& msg);

  CommChannel* inner_;
  FaultPlan* plan_;
  const ObsContext* obs_ = nullptr;
};

}  // namespace fedscope

#endif  // FEDSCOPE_FAULT_FAULT_CHANNEL_H_
