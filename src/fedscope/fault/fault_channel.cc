#include "fedscope/fault/fault_channel.h"

namespace fedscope {

void FaultInjectingChannel::Send(const Message& msg) {
  if (plan_ == nullptr || !plan_->enabled()) {
    inner_->Send(msg);
    return;
  }
  const FaultPlan::MessageFate fate = plan_->Judge(msg);
  if (fate.drop) {
    if (obs_ != nullptr) {
      obs_->Count("fs_fault_messages_dropped_total", 1.0,
                  {{"type", msg.msg_type}});
    }
    return;
  }
  if (!fate.hostile.empty()) {
    // The mutation happens in flight, after the honest worker produced its
    // update, so both transports see the identical attack surface.
    Message poisoned = msg;
    ApplyHostileMutation(fate, &poisoned);
    if (obs_ != nullptr) {
      obs_->Count("fs_fault_messages_poisoned_total", 1.0,
                  {{"kind", fate.hostile}});
    }
    Forward(fate, poisoned);
    return;
  }
  Forward(fate, msg);
}

void FaultInjectingChannel::Forward(const FaultPlan::MessageFate& fate,
                                    const Message& msg) {
  if (fate.extra_delay > 0.0) {
    if (obs_ != nullptr) {
      obs_->Count("fs_fault_messages_delayed_total", 1.0,
                  {{"type", msg.msg_type}});
    }
    Message delayed = msg;
    delayed.timestamp += fate.extra_delay;
    inner_->Send(delayed);
    if (fate.duplicate) inner_->Send(delayed);
  } else {
    inner_->Send(msg);
    if (fate.duplicate) inner_->Send(msg);
  }
  if (fate.duplicate && obs_ != nullptr) {
    obs_->Count("fs_fault_messages_duplicated_total", 1.0,
                {{"type", msg.msg_type}});
  }
}

}  // namespace fedscope
