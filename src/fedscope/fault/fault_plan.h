#ifndef FEDSCOPE_FAULT_FAULT_PLAN_H_
#define FEDSCOPE_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "fedscope/comm/message.h"
#include "fedscope/util/rng.h"

namespace fedscope {

/// One scheduled edge-aggregator crash (hierarchical topologies,
/// DESIGN.md §11): the aggregator serving `shard` in `slot` dies when it
/// would first act on round `round` (its shard broadcast or any later
/// message), and every subsequent message addressed to it is dropped —
/// the standalone equivalent of a mid-course EOF.
struct AggregatorCrash {
  int shard = 0;
  int slot = 0;
  int round = 0;
};

/// Configuration of the deterministic fault model. All knobs default to
/// zero: a default-constructed plan injects nothing and adds no overhead,
/// so courses without faults stay byte-identical to a build without the
/// fault subsystem.
struct FaultPlanOptions {
  // -- per-client faults ----------------------------------------------------
  /// Fraction of the fleet that joins the course and then goes permanently
  /// dark: everything they send after joining (updates, metrics) is lost.
  /// The affected set is round(frac * num_clients) clients chosen once,
  /// seeded, at plan construction.
  double dropout_frac = 0.0;
  /// Per-update probability that a client crashes after local training:
  /// the compute happened but the resulting model_update never leaves the
  /// device. (Distinct from DeviceProfile::crash_prob, which crashes the
  /// client *before* it produces an update.)
  double crash_after_training_prob = 0.0;
  /// Fraction of the fleet whose uplink replies take `straggler_delay`
  /// extra virtual seconds (on top of the device profile's own latency).
  double straggler_frac = 0.0;
  double straggler_delay = 0.0;
  // -- per-message channel faults (both directions) -------------------------
  /// Probability that a data-plane message is silently lost in transit.
  double msg_loss_prob = 0.0;
  /// Probability that a data-plane message is delivered twice
  /// (at-least-once transport semantics).
  double msg_duplicate_prob = 0.0;
  /// Probability that a data-plane message is delayed by a uniform extra
  /// [0, msg_delay_max) virtual seconds.
  double msg_delay_prob = 0.0;
  double msg_delay_max = 0.0;
  // -- server fault ---------------------------------------------------------
  /// Crash-point injection for the standalone recovery drill (DESIGN.md
  /// §10): the FedRunner kills its Server immediately before dispatching
  /// the Nth delivered event (0-based) and restores it from a wire-codec
  /// snapshot; clients and queued messages are the surviving transport.
  /// -1 disables. Handled by the runner, not the channel decorator, so it
  /// does not flip enabled() and adds no per-message rng draws.
  int64_t server_crash_at_event = -1;
  // -- per-aggregator faults (server-side workers) --------------------------
  /// Crash schedule for edge aggregators. Handled by the runner like
  /// server_crash_at_event (no per-message rng draws), so an empty
  /// schedule does not flip enabled() and stays bit-identical.
  std::vector<AggregatorCrash> aggregator_crashes;
  /// Shard whose forwarded partial updates take `aggregator_straggler_delay`
  /// extra virtual seconds (a slow or overloaded edge aggregator);
  /// -1 disables.
  int aggregator_straggler_shard = -1;
  double aggregator_straggler_delay = 0.0;
  // -- hostile clients (DESIGN.md §14) --------------------------------------
  /// Fraction of the fleet acting as Byzantine attackers: their
  /// model_update payloads are mutated in flight by the channel decorator,
  /// so workers stay unchanged and both transports see identical attacks.
  /// The hostile set is chosen once, seeded, at plan construction.
  double hostile_frac = 0.0;
  /// Attack applied to hostile uplinks: "nan" | "inf" (non-finite poison),
  /// "sign_flip", "scale" (gradient scaling by `hostile_scale`),
  /// "malformed" (renamed + reshaped tensor, still codec-valid), "replay"
  /// (stale-round replay), or "mixed" (per-message seeded draw among the
  /// six).
  std::string hostile_mode = "nan";
  /// Per-update probability that a hostile client actually attacks.
  double hostile_prob = 1.0;
  /// Multiplier used by the "scale" attack.
  double hostile_scale = 1e6;
  /// Seed of the plan's private rng stream (0 picks a fixed default).
  uint64_t seed = 0;
};

/// Seeded, deterministic fault model for one FL course. The plan draws the
/// dropout/straggler sets once at construction and consumes its private
/// rng in message-send order, so same-seed standalone runs (whose delivery
/// order is deterministic) replay the exact same faults.
///
/// Only data-plane traffic (model_para / model_update / evaluate /
/// metrics) is ever faulted; control-plane messages (join_in, assign_id,
/// finish, timer, client_failure) pass through untouched so bootstrap,
/// teardown, and the timer service keep their liveness guarantees.
class FaultPlan {
 public:
  /// What the plan decided for one message.
  struct MessageFate {
    bool drop = false;
    bool duplicate = false;
    /// Extra virtual seconds added to the delivery timestamp.
    double extra_delay = 0.0;
    /// Resolved hostile mutation for this message ("" = none). Applied by
    /// ApplyHostileMutation in the channel decorator.
    std::string hostile;
    double hostile_scale = 1.0;
  };

  /// Fault totals, by cause (for tests and the fault-tolerance bench).
  struct Counters {
    /// Uplink messages suppressed because their sender is dropped.
    int64_t dropout_suppressed = 0;
    /// Updates lost to crash-after-training.
    int64_t crashes = 0;
    /// Messages lost to random channel loss.
    int64_t lost = 0;
    int64_t duplicated = 0;
    int64_t delayed = 0;
    /// Messages addressed to a crashed edge aggregator and dropped at
    /// delivery (counted by the runner via CountDeadAggregatorDrop).
    int64_t aggregator_dropped = 0;
    /// Hostile mutations, by kind (what fuzz oracle 14 reconciles against
    /// the server's rejection counts).
    int64_t poisoned_nonfinite = 0;
    int64_t sign_flipped = 0;
    int64_t scaled = 0;
    int64_t malformed = 0;
    int64_t replayed = 0;
  };

  /// All-null plan: enabled() is false and Judge never faults.
  FaultPlan() = default;
  FaultPlan(const FaultPlanOptions& options, int num_clients);

  /// True when any fault knob is nonzero; false for the all-null plan.
  bool enabled() const { return enabled_; }
  bool IsDropped(int client_id) const { return dropped_.count(client_id) > 0; }
  bool IsStraggler(int client_id) const {
    return stragglers_.count(client_id) > 0;
  }
  const std::set<int>& dropped_clients() const { return dropped_; }
  const std::set<int>& straggler_clients() const { return stragglers_; }
  bool IsHostile(int client_id) const { return hostile_.count(client_id) > 0; }
  const std::set<int>& hostile_clients() const { return hostile_; }

  /// Decides the fate of one in-flight message, consuming the plan's rng.
  /// Must be called in a deterministic message order for reproducibility
  /// (standalone Send order qualifies; threaded transports do not).
  MessageFate Judge(const Message& msg);

  /// Round at which the aggregator serving (shard, slot) is scheduled to
  /// crash; -1 when it is not scheduled to crash at all.
  int AggregatorCrashRound(int shard, int slot) const;
  /// Records one message dropped at a dead aggregator (runner-side, so the
  /// message-conservation oracle can account for it).
  void CountDeadAggregatorDrop() { ++counters_.aggregator_dropped; }

  const Counters& counters() const { return counters_; }

 private:
  FaultPlanOptions options_;
  bool enabled_ = false;
  std::set<int> dropped_;
  std::set<int> stragglers_;
  std::set<int> hostile_;
  std::map<std::pair<int, int>, int> aggregator_crash_rounds_;
  Rng rng_{0};
  /// Separate stream for hostile draws so adding hostility never perturbs
  /// the dropout/straggler/channel fault sequences of an existing seed.
  Rng hostile_rng_{0};
  Counters counters_;
};

/// Applies the mutation `fate.hostile` resolved by Judge to `msg` in
/// place. Every mutation stays wire-codec-valid (the through-wire check
/// still round-trips): non-finite poison and sign flips rewrite tensor
/// values, "malformed" renames and reshapes a tensor, "replay" rewinds the
/// claimed round. No-op when `fate.hostile` is empty.
void ApplyHostileMutation(const FaultPlan::MessageFate& fate, Message* msg);

}  // namespace fedscope

#endif  // FEDSCOPE_FAULT_FAULT_PLAN_H_
