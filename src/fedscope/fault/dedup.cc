#include "fedscope/fault/dedup.h"

#include "fedscope/comm/codec.h"

namespace fedscope {

bool DuplicateSuppressor::IsDuplicate(const Message& msg) {
  auto it = last_.find(msg.sender);
  if (it != last_.end() && it->second.state == msg.state &&
      it->second.msg_type == msg.msg_type &&
      it->second.payload == msg.payload) {
    ++suppressed_;
    return true;
  }
  LastSeen& seen = last_[msg.sender];
  seen.state = msg.state;
  seen.msg_type = msg.msg_type;
  seen.payload = msg.payload;
  return false;
}

void DuplicateSuppressor::SaveState(Payload* p,
                                    const std::string& prefix) const {
  p->SetInt(prefix + "/count", static_cast<int64_t>(last_.size()));
  p->SetInt(prefix + "/suppressed", suppressed_);
  int64_t i = 0;
  for (const auto& [sender, seen] : last_) {
    const std::string base = prefix + "/" + std::to_string(i);
    p->SetInt(base + "/sender", sender);
    p->SetInt(base + "/state", seen.state);
    p->SetString(base + "/msg_type", seen.msg_type);
    const std::vector<uint8_t> encoded = EncodePayload(seen.payload);
    p->SetString(base + "/payload",
                 std::string(encoded.begin(), encoded.end()));
    ++i;
  }
}

Status DuplicateSuppressor::LoadState(const Payload& p,
                                      const std::string& prefix) {
  std::map<int, LastSeen> restored;
  const int64_t count = p.GetInt(prefix + "/count");
  for (int64_t i = 0; i < count; ++i) {
    const std::string base = prefix + "/" + std::to_string(i);
    LastSeen seen;
    seen.state = static_cast<int>(p.GetInt(base + "/state"));
    seen.msg_type = p.GetString(base + "/msg_type");
    const std::string bytes = p.GetString(base + "/payload");
    auto payload = DecodePayload(
        std::vector<uint8_t>(bytes.begin(), bytes.end()));
    if (!payload.ok()) return payload.status();
    seen.payload = std::move(payload.value());
    restored[static_cast<int>(p.GetInt(base + "/sender"))] = std::move(seen);
  }
  last_ = std::move(restored);
  suppressed_ = p.GetInt(prefix + "/suppressed");
  return Status::Ok();
}

bool PairwiseDuplicateSuppressor::IsDuplicate(const Message& msg) {
  const std::pair<int, int> key(msg.sender, msg.receiver);
  auto it = last_.find(key);
  if (it != last_.end() && it->second.state == msg.state &&
      it->second.timestamp == msg.timestamp &&
      it->second.msg_type == msg.msg_type &&
      it->second.payload == msg.payload) {
    ++suppressed_;
    return true;
  }
  LastSeen& seen = last_[key];
  seen.state = msg.state;
  seen.timestamp = msg.timestamp;
  seen.msg_type = msg.msg_type;
  seen.payload = msg.payload;
  return false;
}

}  // namespace fedscope
