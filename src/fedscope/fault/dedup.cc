#include "fedscope/fault/dedup.h"

namespace fedscope {

bool DuplicateSuppressor::IsDuplicate(const Message& msg) {
  auto it = last_.find(msg.sender);
  if (it != last_.end() && it->second.state == msg.state &&
      it->second.msg_type == msg.msg_type &&
      it->second.payload == msg.payload) {
    ++suppressed_;
    return true;
  }
  LastSeen& seen = last_[msg.sender];
  seen.state = msg.state;
  seen.msg_type = msg.msg_type;
  seen.payload = msg.payload;
  return false;
}

bool PairwiseDuplicateSuppressor::IsDuplicate(const Message& msg) {
  const std::pair<int, int> key(msg.sender, msg.receiver);
  auto it = last_.find(key);
  if (it != last_.end() && it->second.state == msg.state &&
      it->second.timestamp == msg.timestamp &&
      it->second.msg_type == msg.msg_type &&
      it->second.payload == msg.payload) {
    ++suppressed_;
    return true;
  }
  LastSeen& seen = last_[key];
  seen.state = msg.state;
  seen.timestamp = msg.timestamp;
  seen.msg_type = msg.msg_type;
  seen.payload = msg.payload;
  return false;
}

}  // namespace fedscope
