#ifndef FEDSCOPE_FAULT_DEDUP_H_
#define FEDSCOPE_FAULT_DEDUP_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "fedscope/comm/message.h"

namespace fedscope {

/// Transport-level duplicate suppression for at-least-once delivery. A
/// message is a duplicate iff it repeats the previous message accepted
/// from the same sender with the same (state, msg_type) key AND an
/// identical payload: retransmission produces byte-identical frames
/// back-to-back, while a legitimate second contribution to the same round
/// (possible under after-receiving broadcasts) carries a fresh delta, so
/// payload equality must be part of the key. Not thread-safe; callers
/// serialize (the server host dedups under its incoming-queue mutex).
class DuplicateSuppressor {
 public:
  /// Returns true (and suppresses) when `msg` duplicates the last message
  /// accepted from its sender; otherwise records it and returns false.
  bool IsDuplicate(const Message& msg);

  int64_t suppressed() const { return suppressed_; }

  /// Persists the per-sender last-seen table into `p` under `prefix`
  /// (nested payloads ride as wire-encoded string scalars), so a restarted
  /// server keeps suppressing retransmissions that straddle the crash.
  void SaveState(Payload* p, const std::string& prefix) const;
  /// Restores a table written by SaveState, replacing the current one.
  Status LoadState(const Payload& p, const std::string& prefix);

 private:
  struct LastSeen {
    int state = 0;
    std::string msg_type;
    Payload payload;
  };

  std::map<int, LastSeen> last_;
  int64_t suppressed_ = 0;
};

/// Duplicate suppression for the standalone pump, keyed per (sender,
/// receiver) pair. The per-sender DuplicateSuppressor above cannot be used
/// there: a server broadcast sends the *same* payload to many receivers
/// back-to-back, which would all collide on the sender key. A delivery is
/// a duplicate iff it is identical (msg_type, state, timestamp, payload)
/// to the previous delivery accepted for the same pair — fault-injected
/// duplicates are exact copies, while a legitimate re-send carries a
/// strictly later virtual timestamp. Not thread-safe.
class PairwiseDuplicateSuppressor {
 public:
  /// Returns true (and suppresses) when `msg` exactly repeats the last
  /// message delivered for its (sender, receiver) pair.
  bool IsDuplicate(const Message& msg);

  int64_t suppressed() const { return suppressed_; }

 private:
  struct LastSeen {
    int state = 0;
    double timestamp = 0.0;
    std::string msg_type;
    Payload payload;
  };

  std::map<std::pair<int, int>, LastSeen> last_;
  int64_t suppressed_ = 0;
};

}  // namespace fedscope

#endif  // FEDSCOPE_FAULT_DEDUP_H_
