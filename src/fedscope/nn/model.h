#ifndef FEDSCOPE_NN_MODEL_H_
#define FEDSCOPE_NN_MODEL_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fedscope/nn/layers.h"
#include "fedscope/tensor/tensor.h"
#include "fedscope/util/status.h"

namespace fedscope {

/// Named parameter snapshot: the backend-independent representation of a
/// model's state. This is what participants exchange in FL messages (after
/// message translation) and what aggregators operate on.
using StateDict = std::map<std::string, Tensor>;

/// Predicate over parameter names, used to select the *shared* part of a
/// model. FedBN shares everything but BatchNorm parameters; multi-goal FL
/// shares only the body and keeps task heads private (paper §3.4).
using NameFilter = std::function<bool(const std::string&)>;

/// Accepts every parameter.
NameFilter AcceptAll();
/// Accepts parameters whose name contains none of the given substrings.
NameFilter ExcludeSubstrings(std::vector<std::string> substrings);
/// Accepts parameters whose name starts with one of the given prefixes.
NameFilter IncludePrefixes(std::vector<std::string> prefixes);

/// A sequential neural network with named layers. The Model owns its layers
/// and exposes a flat named-parameter view used for state-dict exchange,
/// optimization, and aggregation.
class Model {
 public:
  Model() = default;
  Model(const Model& other) { *this = other; }
  Model& operator=(const Model& other);
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  /// Appends a layer under the given name (names must be unique).
  void Add(std::string name, std::unique_ptr<Layer> layer);

  /// Forward pass through all layers.
  Tensor Forward(const Tensor& x, bool train = true);

  /// Backward pass; accumulates parameter gradients, returns grad w.r.t. x.
  Tensor Backward(const Tensor& grad_out);

  /// All parameters and buffers with hierarchical names.
  std::vector<ParamRef> Params();

  /// Zeroes every trainable parameter's gradient.
  void ZeroGrad();

  /// Total number of scalar parameters (trainable + buffers).
  int64_t NumParams();

  /// Copies parameters passing the filter into a StateDict.
  StateDict GetStateDict(const NameFilter& filter = AcceptAll());

  /// Loads matching entries of `state` into this model. Entries not present
  /// in the model are ignored when `strict` is false, an error otherwise;
  /// model parameters absent from `state` are left untouched.
  Status LoadStateDict(const StateDict& state, bool strict = false,
                       const NameFilter& filter = AcceptAll());

  /// All trainable parameters flattened into a single vector (and back).
  /// Used by Krum-style aggregation and gradient-inversion attacks.
  std::vector<float> FlatParams();
  void SetFlatParams(const std::vector<float>& flat);
  std::vector<float> FlatGrads();

  int num_layers() const { return static_cast<int>(layers_.size()); }
  Layer* layer(int i) { return layers_[i].get(); }
  const std::string& layer_name(int i) const { return names_[i]; }

 private:
  std::vector<std::string> names_;
  std::vector<std::unique_ptr<Layer>> layers_;
};

// --------------------------------------------------------------------------
// StateDict arithmetic (the substrate of federated aggregation).
// --------------------------------------------------------------------------

/// a + b, keys must match exactly.
StateDict SdAdd(const StateDict& a, const StateDict& b);
/// a - b, keys must match exactly.
StateDict SdSub(const StateDict& a, const StateDict& b);
/// a * s.
StateDict SdScale(const StateDict& a, float s);
/// acc += s * b (keys of b must be a subset of acc's keys).
void SdAxpy(StateDict* acc, float s, const StateDict& b);
/// L2 norm over all entries.
double SdNorm(const StateDict& a);
/// Flattens all entries in key order.
std::vector<float> SdFlatten(const StateDict& a);
/// Weighted average of dicts (weights need not be normalized).
StateDict SdWeightedAverage(const std::vector<const StateDict*>& dicts,
                            const std::vector<double>& weights);
/// Total scalar count.
int64_t SdNumel(const StateDict& a);

}  // namespace fedscope

#endif  // FEDSCOPE_NN_MODEL_H_
