#include "fedscope/nn/optimizer.h"

#include <cmath>

#include "fedscope/tensor/tensor_ops.h"
#include "fedscope/util/logging.h"

namespace fedscope {

void Sgd::Step(Model* model) {
  auto params = model->Params();

  if (options_.grad_clip_norm > 0.0) {
    double sq = 0.0;
    for (auto& p : params) {
      if (p.trainable && p.grad != nullptr) sq += SquaredNorm(*p.grad);
    }
    const double norm = std::sqrt(sq);
    if (norm > options_.grad_clip_norm) {
      const float scale =
          static_cast<float>(options_.grad_clip_norm / norm);
      for (auto& p : params) {
        if (p.trainable && p.grad != nullptr) ScaleInPlace(p.grad, scale);
      }
    }
  }

  for (auto& p : params) {
    if (!p.trainable || p.grad == nullptr) continue;
    Tensor effective_grad = *p.grad;
    if (options_.weight_decay > 0.0) {
      Axpy(&effective_grad, static_cast<float>(options_.weight_decay),
           *p.value);
    }
    if (options_.prox_mu > 0.0) {
      auto it = prox_center_.find(p.name);
      if (it != prox_center_.end()) {
        // grad += mu * (w - w_center)
        Axpy(&effective_grad, static_cast<float>(options_.prox_mu), *p.value);
        Axpy(&effective_grad, static_cast<float>(-options_.prox_mu),
             it->second);
      }
    }
    if (options_.momentum > 0.0) {
      auto [it, inserted] =
          momentum_buffers_.try_emplace(p.name, Tensor::Zeros(p.value->shape()));
      Tensor& buf = it->second;
      if (!inserted && !buf.SameShape(effective_grad)) {
        buf = Tensor::Zeros(effective_grad.shape());
      }
      ScaleInPlace(&buf, static_cast<float>(options_.momentum));
      AddInPlace(&buf, effective_grad);
      Axpy(p.value, static_cast<float>(-options_.lr), buf);
    } else {
      Axpy(p.value, static_cast<float>(-options_.lr), effective_grad);
    }
  }
}

}  // namespace fedscope
