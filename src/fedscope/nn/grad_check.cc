#include "fedscope/nn/grad_check.h"

#include <algorithm>
#include <cmath>

#include "fedscope/util/logging.h"

namespace fedscope {

GradCheckResult CheckModelGradients(Model* model, Loss* loss, const Tensor& x,
                                    const std::vector<int64_t>& labels,
                                    double epsilon,
                                    int64_t max_params_per_tensor) {
  model->ZeroGrad();
  Tensor out = model->Forward(x, /*train=*/true);
  loss->Forward(out, labels);
  model->Backward(loss->Backward());

  // Snapshot analytic grads before probing (probing re-runs forward).
  std::vector<Tensor> analytic;
  auto params = model->Params();
  for (auto& p : params) {
    analytic.push_back(p.grad != nullptr ? *p.grad : Tensor());
  }

  GradCheckResult result;
  for (size_t pi = 0; pi < params.size(); ++pi) {
    auto& p = params[pi];
    if (!p.trainable || p.grad == nullptr) continue;
    const int64_t probe =
        std::min<int64_t>(p.value->numel(), max_params_per_tensor);
    for (int64_t i = 0; i < probe; ++i) {
      const float original = p.value->at(i);
      p.value->at(i) = original + static_cast<float>(epsilon);
      double loss_plus =
          loss->Forward(model->Forward(x, /*train=*/true), labels);
      p.value->at(i) = original - static_cast<float>(epsilon);
      double loss_minus =
          loss->Forward(model->Forward(x, /*train=*/true), labels);
      p.value->at(i) = original;
      const double numeric = (loss_plus - loss_minus) / (2.0 * epsilon);
      const double exact = analytic[pi].at(i);
      const double abs_err = std::fabs(numeric - exact);
      const double rel_err =
          abs_err / std::max(1.0, std::max(std::fabs(numeric),
                                           std::fabs(exact)));
      result.max_abs_err = std::max(result.max_abs_err, abs_err);
      result.max_rel_err = std::max(result.max_rel_err, rel_err);
      ++result.checked;
    }
  }
  // Restore a consistent forward/backward state.
  model->ZeroGrad();
  return result;
}

}  // namespace fedscope
