#ifndef FEDSCOPE_NN_MODEL_ZOO_H_
#define FEDSCOPE_NN_MODEL_ZOO_H_

#include <cstdint>
#include <vector>

#include "fedscope/nn/model.h"
#include "fedscope/util/rng.h"

namespace fedscope {

/// The ModelZoo (paper §5.1): off-the-shelf model builders so that users can
/// "conveniently develop various trainers". All builders take an explicit
/// Rng for reproducible initialization.

/// Two-conv-layer CNN ("ConvNet2", used for FEMNIST / CIFAR-10 in §5.2):
/// Conv(k3,p1) -> ReLU -> MaxPool2 -> Conv(k3,p1) -> ReLU -> MaxPool2 ->
/// Flatten -> Linear(hidden) -> ReLU -> Dropout -> Linear(classes).
Model MakeConvNet2(int64_t in_channels, int64_t image_size, int64_t classes,
                   int64_t hidden, double dropout, Rng* rng);

/// Multi-layer perceptron: Linear/ReLU stack ending in a linear head.
/// `dims` is {in, h1, ..., out}.
Model MakeMlp(const std::vector<int64_t>& dims, Rng* rng);

/// MLP with BatchNorm after each hidden linear layer (the model family used
/// to exercise FedBN). `dims` is {in, h1, ..., out}.
Model MakeMlpBn(const std::vector<int64_t>& dims, Rng* rng);

/// Logistic regression (a single linear layer producing class logits; the
/// Twitter sentiment model of §5.2).
Model MakeLogisticRegression(int64_t features, int64_t classes, Rng* rng);

/// Two-part model for multi-goal FL: a shared body (prefix "body.") and a
/// private task head (prefix "head."). Only "body.*" parameters are
/// exchanged (paper §3.4.2).
Model MakeBodyHeadMlp(int64_t in_features, int64_t body_hidden,
                      int64_t head_out, Rng* rng);

}  // namespace fedscope

#endif  // FEDSCOPE_NN_MODEL_ZOO_H_
