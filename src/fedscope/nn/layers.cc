#include "fedscope/nn/layers.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "fedscope/tensor/kernels.h"
#include "fedscope/tensor/tensor_ops.h"
#include "fedscope/util/logging.h"

namespace fedscope {
namespace {

// He-uniform bound for fan_in inputs.
float HeBound(int64_t fan_in) {
  return std::sqrt(6.0f / static_cast<float>(fan_in));
}

}  // namespace

// --------------------------------------------------------------------------
// Linear
// --------------------------------------------------------------------------

Linear::Linear(int64_t in_features, int64_t out_features, Rng* rng)
    : in_features_(in_features), out_features_(out_features) {
  const float bound = HeBound(in_features);
  weight_ = Tensor::Rand({in_features, out_features}, rng, -bound, bound);
  bias_ = Tensor::Zeros({out_features});
  weight_grad_ = Tensor::Zeros({in_features, out_features});
  bias_grad_ = Tensor::Zeros({out_features});
}

Tensor Linear::Forward(const Tensor& x, bool /*train*/) {
  FS_CHECK_EQ(x.ndim(), 2);
  FS_CHECK_EQ(x.dim(1), in_features_);
  cached_input_ = x;
  Tensor y = MatMul(x, weight_);
  kernels::AddColBias(y.data(), bias_.data(), y.dim(0), out_features_);
  return y;
}

Tensor Linear::Backward(const Tensor& grad_out) {
  FS_CHECK_EQ(grad_out.ndim(), 2);
  FS_CHECK_EQ(grad_out.dim(1), out_features_);
  const int64_t batch = grad_out.dim(0);
  // dW = x^T g (accumulated straight into the grad tensor), db = colsum(g),
  // dx = g W^T.
  kernels::GemmTransA(in_features_, out_features_, batch,
                      cached_input_.data(), grad_out.data(),
                      weight_grad_.data());
  kernels::ColSumsAccum(grad_out.data(), batch, out_features_,
                        bias_grad_.data());
  return MatMulTransB(grad_out, weight_);
}

void Linear::CollectParams(const std::string& prefix,
                           std::vector<ParamRef>* out) {
  out->push_back({prefix + ".weight", &weight_, &weight_grad_, true});
  out->push_back({prefix + ".bias", &bias_, &bias_grad_, true});
}

std::unique_ptr<Layer> Linear::Clone() const {
  auto copy = std::unique_ptr<Linear>(new Linear());
  *copy = *this;
  return copy;
}

// --------------------------------------------------------------------------
// Conv2d
// --------------------------------------------------------------------------

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel_size,
               int64_t padding, Rng* rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel_size),
      padding_(padding) {
  const float bound = HeBound(in_channels * kernel_size * kernel_size);
  weight_ = Tensor::Rand({out_channels, in_channels, kernel_size, kernel_size},
                         rng, -bound, bound);
  bias_ = Tensor::Zeros({out_channels});
  weight_grad_ = Tensor::Zeros(weight_.shape());
  bias_grad_ = Tensor::Zeros({out_channels});
}

Tensor Conv2d::Forward(const Tensor& x, bool /*train*/) {
  FS_CHECK_EQ(x.ndim(), 4);
  FS_CHECK_EQ(x.dim(1), in_channels_);
  cached_input_ = x;
  const int64_t batch = x.dim(0), in_h = x.dim(2), in_w = x.dim(3);
  const int64_t out_h = in_h + 2 * padding_ - kernel_ + 1;
  const int64_t out_w = in_w + 2 * padding_ - kernel_ + 1;
  FS_CHECK_GT(out_h, 0);
  FS_CHECK_GT(out_w, 0);
  // im2col lowering: per image, y[oc, oh*ow] = W[oc, ic*k*k] @ cols + bias.
  Tensor y({batch, out_channels_, out_h, out_w});
  const int64_t patch = in_channels_ * kernel_ * kernel_;
  const int64_t spatial = out_h * out_w;
  std::vector<float> cols(patch * spatial);
  for (int64_t n = 0; n < batch; ++n) {
    kernels::Im2Col(x.data() + n * in_channels_ * in_h * in_w, in_channels_,
                    in_h, in_w, kernel_, padding_, cols.data());
    float* yn = y.data() + n * out_channels_ * spatial;
    kernels::Gemm(out_channels_, spatial, patch, weight_.data(), cols.data(),
                  yn);
    kernels::AddRowBias(yn, bias_.data(), out_channels_, spatial);
  }
  return y;
}

Tensor Conv2d::Backward(const Tensor& grad_out) {
  const Tensor& x = cached_input_;
  const int64_t batch = x.dim(0), in_h = x.dim(2), in_w = x.dim(3);
  const int64_t out_h = grad_out.dim(2), out_w = grad_out.dim(3);
  const int64_t patch = in_channels_ * kernel_ * kernel_;
  const int64_t spatial = out_h * out_w;
  Tensor grad_in(x.shape());
  // Per image: db += rowsum(G), dW += G @ cols^T, d(cols) = W^T @ G, then
  // col2im scatters d(cols) back into grad_in.
  std::vector<float> cols(patch * spatial);
  std::vector<float> grad_cols(patch * spatial);
  for (int64_t n = 0; n < batch; ++n) {
    const float* gn = grad_out.data() + n * out_channels_ * spatial;
    kernels::RowSumsAccum(gn, out_channels_, spatial, bias_grad_.data());
    kernels::Im2Col(x.data() + n * in_channels_ * in_h * in_w, in_channels_,
                    in_h, in_w, kernel_, padding_, cols.data());
    kernels::GemmTransB(out_channels_, patch, spatial, gn, cols.data(),
                        weight_grad_.data());
    std::fill(grad_cols.begin(), grad_cols.end(), 0.0f);
    kernels::GemmTransA(patch, spatial, out_channels_, weight_.data(), gn,
                        grad_cols.data());
    kernels::Col2Im(grad_cols.data(), in_channels_, in_h, in_w, kernel_,
                    padding_, grad_in.data() + n * in_channels_ * in_h * in_w);
  }
  return grad_in;
}

void Conv2d::CollectParams(const std::string& prefix,
                           std::vector<ParamRef>* out) {
  out->push_back({prefix + ".weight", &weight_, &weight_grad_, true});
  out->push_back({prefix + ".bias", &bias_, &bias_grad_, true});
}

std::unique_ptr<Layer> Conv2d::Clone() const {
  auto copy = std::unique_ptr<Conv2d>(new Conv2d());
  *copy = *this;
  return copy;
}

// --------------------------------------------------------------------------
// ReLU / Tanh
// --------------------------------------------------------------------------

Tensor ReLU::Forward(const Tensor& x, bool /*train*/) {
  cached_input_ = x;
  Tensor y = x;
  kernels::ReluForward(x.data(), y.data(), y.numel());
  return y;
}

Tensor ReLU::Backward(const Tensor& grad_out) {
  Tensor grad_in = grad_out;
  kernels::ReluBackward(cached_input_.data(), grad_in.data(),
                        grad_in.numel());
  return grad_in;
}

std::unique_ptr<Layer> ReLU::Clone() const {
  return std::make_unique<ReLU>(*this);
}

Tensor Tanh::Forward(const Tensor& x, bool /*train*/) {
  Tensor y = x;
  kernels::TanhForward(x.data(), y.data(), y.numel());
  cached_output_ = y;
  return y;
}

Tensor Tanh::Backward(const Tensor& grad_out) {
  Tensor grad_in = grad_out;
  kernels::TanhBackward(cached_output_.data(), grad_in.data(),
                        grad_in.numel());
  return grad_in;
}

std::unique_ptr<Layer> Tanh::Clone() const {
  return std::make_unique<Tanh>(*this);
}

// --------------------------------------------------------------------------
// Dropout
// --------------------------------------------------------------------------

Dropout::Dropout(double rate, uint64_t seed) : rate_(rate), rng_(seed) {
  FS_CHECK_GE(rate, 0.0);
  FS_CHECK_LT(rate, 1.0);
}

Tensor Dropout::Forward(const Tensor& x, bool train) {
  last_train_ = train;
  if (!train || rate_ == 0.0) return x;
  mask_ = Tensor(x.shape());
  Tensor y = x;
  const float keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
  float* pm = mask_.data();
  float* py = y.data();
  for (int64_t i = 0; i < y.numel(); ++i) {
    if (rng_.Bernoulli(rate_)) {
      pm[i] = 0.0f;
      py[i] = 0.0f;
    } else {
      pm[i] = keep_scale;
      py[i] *= keep_scale;
    }
  }
  return y;
}

Tensor Dropout::Backward(const Tensor& grad_out) {
  if (!last_train_ || rate_ == 0.0) return grad_out;
  return Mul(grad_out, mask_);
}

std::unique_ptr<Layer> Dropout::Clone() const {
  return std::make_unique<Dropout>(*this);
}

// --------------------------------------------------------------------------
// MaxPool2d
// --------------------------------------------------------------------------

Tensor MaxPool2d::Forward(const Tensor& x, bool /*train*/) {
  FS_CHECK_EQ(x.ndim(), 4);
  in_shape_ = x.shape();
  const int64_t batch = x.dim(0), channels = x.dim(1);
  const int64_t in_h = x.dim(2), in_w = x.dim(3);
  const int64_t out_h = in_h / 2, out_w = in_w / 2;
  FS_CHECK_GT(out_h, 0);
  FS_CHECK_GT(out_w, 0);
  Tensor y({batch, channels, out_h, out_w});
  argmax_.assign(y.numel(), 0);
  float* out = y.data();
  int64_t out_idx = 0;
  // Row-pointer scan over each 2x2 window; the (0,0),(0,1),(1,0),(1,1)
  // strictly-greater visit order matches the original tie-breaking.
  for (int64_t plane = 0; plane < batch * channels; ++plane) {
    const int64_t plane_base = plane * in_h * in_w;
    for (int64_t oh = 0; oh < out_h; ++oh) {
      const int64_t row_base = plane_base + (oh * 2) * in_w;
      const float* r0 = x.data() + row_base;
      const float* r1 = r0 + in_w;
      for (int64_t ow = 0; ow < out_w; ++ow) {
        const int64_t i0 = ow * 2;
        float best = r0[i0];
        int64_t best_flat = row_base + i0;
        if (r0[i0 + 1] > best) {
          best = r0[i0 + 1];
          best_flat = row_base + i0 + 1;
        }
        if (r1[i0] > best) {
          best = r1[i0];
          best_flat = row_base + in_w + i0;
        }
        if (r1[i0 + 1] > best) {
          best = r1[i0 + 1];
          best_flat = row_base + in_w + i0 + 1;
        }
        out[out_idx] = best;
        argmax_[out_idx] = best_flat;
        ++out_idx;
      }
    }
  }
  return y;
}

Tensor MaxPool2d::Backward(const Tensor& grad_out) {
  Tensor grad_in(in_shape_);
  for (int64_t i = 0; i < grad_out.numel(); ++i) {
    grad_in.at(argmax_[i]) += grad_out.at(i);
  }
  return grad_in;
}

std::unique_ptr<Layer> MaxPool2d::Clone() const {
  return std::make_unique<MaxPool2d>(*this);
}

// --------------------------------------------------------------------------
// Flatten
// --------------------------------------------------------------------------

Tensor Flatten::Forward(const Tensor& x, bool /*train*/) {
  in_shape_ = x.shape();
  return x.Reshape({x.dim(0), x.numel() / x.dim(0)});
}

Tensor Flatten::Backward(const Tensor& grad_out) {
  return grad_out.Reshape(in_shape_);
}

std::unique_ptr<Layer> Flatten::Clone() const {
  return std::make_unique<Flatten>(*this);
}

// --------------------------------------------------------------------------
// BatchNorm
// --------------------------------------------------------------------------

BatchNorm::BatchNorm(int64_t num_features, double momentum, double eps)
    : num_features_(num_features), momentum_(momentum), eps_(eps) {
  gamma_ = Tensor::Full({num_features}, 1.0f);
  beta_ = Tensor::Zeros({num_features});
  gamma_grad_ = Tensor::Zeros({num_features});
  beta_grad_ = Tensor::Zeros({num_features});
  running_mean_ = Tensor::Zeros({num_features});
  running_var_ = Tensor::Full({num_features}, 1.0f);
}

// Iterates a [B, F] or [B, C, H, W] tensor grouped by feature/channel f.
// Calls fn(f, flat_index) for every element belonging to feature f.
template <typename Fn>
static void ForEachByFeature(const std::vector<int64_t>& shape,
                             int64_t num_features, Fn fn) {
  if (shape.size() == 2) {
    const int64_t batch = shape[0];
    for (int64_t n = 0; n < batch; ++n) {
      for (int64_t f = 0; f < num_features; ++f) {
        fn(f, n * num_features + f);
      }
    }
  } else {
    const int64_t batch = shape[0], spatial = shape[2] * shape[3];
    for (int64_t n = 0; n < batch; ++n) {
      for (int64_t f = 0; f < num_features; ++f) {
        const int64_t base = (n * num_features + f) * spatial;
        for (int64_t s = 0; s < spatial; ++s) fn(f, base + s);
      }
    }
  }
}

Tensor BatchNorm::Forward(const Tensor& x, bool train) {
  FS_CHECK(x.ndim() == 2 || x.ndim() == 4) << x.ShapeString();
  FS_CHECK_EQ(x.dim(1), num_features_);
  in_shape_ = x.shape();
  last_train_ = train;
  const int64_t per_feature = x.numel() / num_features_;

  std::vector<double> mean(num_features_, 0.0), var(num_features_, 0.0);
  if (train) {
    ForEachByFeature(x.shape(), num_features_,
                     [&](int64_t f, int64_t i) { mean[f] += x.at(i); });
    for (auto& m : mean) m /= static_cast<double>(per_feature);
    ForEachByFeature(x.shape(), num_features_, [&](int64_t f, int64_t i) {
      const double d = x.at(i) - mean[f];
      var[f] += d * d;
    });
    for (auto& v : var) v /= static_cast<double>(per_feature);
    for (int64_t f = 0; f < num_features_; ++f) {
      running_mean_.at(f) = static_cast<float>(
          (1.0 - momentum_) * running_mean_.at(f) + momentum_ * mean[f]);
      running_var_.at(f) = static_cast<float>(
          (1.0 - momentum_) * running_var_.at(f) + momentum_ * var[f]);
    }
  } else {
    for (int64_t f = 0; f < num_features_; ++f) {
      mean[f] = running_mean_.at(f);
      var[f] = running_var_.at(f);
    }
  }

  cached_invstd_.assign(num_features_, 0.0);
  for (int64_t f = 0; f < num_features_; ++f) {
    cached_invstd_[f] = 1.0 / std::sqrt(var[f] + eps_);
  }
  cached_xhat_ = Tensor(x.shape());
  Tensor y(x.shape());
  ForEachByFeature(x.shape(), num_features_, [&](int64_t f, int64_t i) {
    const double xhat = (x.at(i) - mean[f]) * cached_invstd_[f];
    cached_xhat_.at(i) = static_cast<float>(xhat);
    y.at(i) = static_cast<float>(gamma_.at(f) * xhat + beta_.at(f));
  });
  return y;
}

Tensor BatchNorm::Backward(const Tensor& grad_out) {
  const int64_t per_feature = grad_out.numel() / num_features_;
  std::vector<double> sum_dy(num_features_, 0.0);
  std::vector<double> sum_dy_xhat(num_features_, 0.0);
  ForEachByFeature(in_shape_, num_features_, [&](int64_t f, int64_t i) {
    sum_dy[f] += grad_out.at(i);
    sum_dy_xhat[f] += grad_out.at(i) * cached_xhat_.at(i);
  });
  for (int64_t f = 0; f < num_features_; ++f) {
    gamma_grad_.at(f) += static_cast<float>(sum_dy_xhat[f]);
    beta_grad_.at(f) += static_cast<float>(sum_dy[f]);
  }
  Tensor grad_in(in_shape_);
  if (last_train_) {
    // dx = gamma * invstd * (dy - mean(dy) - xhat * mean(dy*xhat)).
    const double inv_n = 1.0 / static_cast<double>(per_feature);
    ForEachByFeature(in_shape_, num_features_, [&](int64_t f, int64_t i) {
      const double dy = grad_out.at(i);
      const double dx =
          gamma_.at(f) * cached_invstd_[f] *
          (dy - sum_dy[f] * inv_n - cached_xhat_.at(i) * sum_dy_xhat[f] * inv_n);
      grad_in.at(i) = static_cast<float>(dx);
    });
  } else {
    // Eval mode: running stats are constants.
    ForEachByFeature(in_shape_, num_features_, [&](int64_t f, int64_t i) {
      grad_in.at(i) = static_cast<float>(grad_out.at(i) * gamma_.at(f) *
                                         cached_invstd_[f]);
    });
  }
  return grad_in;
}

void BatchNorm::CollectParams(const std::string& prefix,
                              std::vector<ParamRef>* out) {
  out->push_back({prefix + ".bn.gamma", &gamma_, &gamma_grad_, true});
  out->push_back({prefix + ".bn.beta", &beta_, &beta_grad_, true});
  out->push_back(
      {prefix + ".bn.running_mean", &running_mean_, nullptr, false});
  out->push_back({prefix + ".bn.running_var", &running_var_, nullptr, false});
}

std::unique_ptr<Layer> BatchNorm::Clone() const {
  return std::make_unique<BatchNorm>(*this);
}

}  // namespace fedscope
