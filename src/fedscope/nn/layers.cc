#include "fedscope/nn/layers.h"

#include <algorithm>
#include <cmath>

#include "fedscope/tensor/tensor_ops.h"
#include "fedscope/util/logging.h"

namespace fedscope {
namespace {

// He-uniform bound for fan_in inputs.
float HeBound(int64_t fan_in) {
  return std::sqrt(6.0f / static_cast<float>(fan_in));
}

}  // namespace

// --------------------------------------------------------------------------
// Linear
// --------------------------------------------------------------------------

Linear::Linear(int64_t in_features, int64_t out_features, Rng* rng)
    : in_features_(in_features), out_features_(out_features) {
  const float bound = HeBound(in_features);
  weight_ = Tensor::Rand({in_features, out_features}, rng, -bound, bound);
  bias_ = Tensor::Zeros({out_features});
  weight_grad_ = Tensor::Zeros({in_features, out_features});
  bias_grad_ = Tensor::Zeros({out_features});
}

Tensor Linear::Forward(const Tensor& x, bool /*train*/) {
  FS_CHECK_EQ(x.ndim(), 2);
  FS_CHECK_EQ(x.dim(1), in_features_);
  cached_input_ = x;
  Tensor y = MatMul(x, weight_);
  for (int64_t i = 0; i < y.dim(0); ++i) {
    for (int64_t j = 0; j < out_features_; ++j) y.at(i, j) += bias_.at(j);
  }
  return y;
}

Tensor Linear::Backward(const Tensor& grad_out) {
  FS_CHECK_EQ(grad_out.ndim(), 2);
  FS_CHECK_EQ(grad_out.dim(1), out_features_);
  // dW = x^T g, db = colsum(g), dx = g W^T.
  AddInPlace(&weight_grad_, MatMulTransA(cached_input_, grad_out));
  for (int64_t i = 0; i < grad_out.dim(0); ++i) {
    for (int64_t j = 0; j < out_features_; ++j) {
      bias_grad_.at(j) += grad_out.at(i, j);
    }
  }
  return MatMulTransB(grad_out, weight_);
}

void Linear::CollectParams(const std::string& prefix,
                           std::vector<ParamRef>* out) {
  out->push_back({prefix + ".weight", &weight_, &weight_grad_, true});
  out->push_back({prefix + ".bias", &bias_, &bias_grad_, true});
}

std::unique_ptr<Layer> Linear::Clone() const {
  auto copy = std::unique_ptr<Linear>(new Linear());
  *copy = *this;
  return copy;
}

// --------------------------------------------------------------------------
// Conv2d
// --------------------------------------------------------------------------

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel_size,
               int64_t padding, Rng* rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel_size),
      padding_(padding) {
  const float bound = HeBound(in_channels * kernel_size * kernel_size);
  weight_ = Tensor::Rand({out_channels, in_channels, kernel_size, kernel_size},
                         rng, -bound, bound);
  bias_ = Tensor::Zeros({out_channels});
  weight_grad_ = Tensor::Zeros(weight_.shape());
  bias_grad_ = Tensor::Zeros({out_channels});
}

Tensor Conv2d::Forward(const Tensor& x, bool /*train*/) {
  FS_CHECK_EQ(x.ndim(), 4);
  FS_CHECK_EQ(x.dim(1), in_channels_);
  cached_input_ = x;
  const int64_t batch = x.dim(0), in_h = x.dim(2), in_w = x.dim(3);
  const int64_t out_h = in_h + 2 * padding_ - kernel_ + 1;
  const int64_t out_w = in_w + 2 * padding_ - kernel_ + 1;
  FS_CHECK_GT(out_h, 0);
  FS_CHECK_GT(out_w, 0);
  Tensor y({batch, out_channels_, out_h, out_w});
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t oc = 0; oc < out_channels_; ++oc) {
      for (int64_t oh = 0; oh < out_h; ++oh) {
        for (int64_t ow = 0; ow < out_w; ++ow) {
          double acc = bias_.at(oc);
          for (int64_t ic = 0; ic < in_channels_; ++ic) {
            for (int64_t kh = 0; kh < kernel_; ++kh) {
              const int64_t ih = oh + kh - padding_;
              if (ih < 0 || ih >= in_h) continue;
              for (int64_t kw = 0; kw < kernel_; ++kw) {
                const int64_t iw = ow + kw - padding_;
                if (iw < 0 || iw >= in_w) continue;
                acc += x.at4(n, ic, ih, iw) * weight_.at4(oc, ic, kh, kw);
              }
            }
          }
          y.at4(n, oc, oh, ow) = static_cast<float>(acc);
        }
      }
    }
  }
  return y;
}

Tensor Conv2d::Backward(const Tensor& grad_out) {
  const Tensor& x = cached_input_;
  const int64_t batch = x.dim(0), in_h = x.dim(2), in_w = x.dim(3);
  const int64_t out_h = grad_out.dim(2), out_w = grad_out.dim(3);
  Tensor grad_in(x.shape());
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t oc = 0; oc < out_channels_; ++oc) {
      for (int64_t oh = 0; oh < out_h; ++oh) {
        for (int64_t ow = 0; ow < out_w; ++ow) {
          const float g = grad_out.at4(n, oc, oh, ow);
          if (g == 0.0f) continue;
          bias_grad_.at(oc) += g;
          for (int64_t ic = 0; ic < in_channels_; ++ic) {
            for (int64_t kh = 0; kh < kernel_; ++kh) {
              const int64_t ih = oh + kh - padding_;
              if (ih < 0 || ih >= in_h) continue;
              for (int64_t kw = 0; kw < kernel_; ++kw) {
                const int64_t iw = ow + kw - padding_;
                if (iw < 0 || iw >= in_w) continue;
                weight_grad_.at4(oc, ic, kh, kw) += g * x.at4(n, ic, ih, iw);
                grad_in.at4(n, ic, ih, iw) += g * weight_.at4(oc, ic, kh, kw);
              }
            }
          }
        }
      }
    }
  }
  return grad_in;
}

void Conv2d::CollectParams(const std::string& prefix,
                           std::vector<ParamRef>* out) {
  out->push_back({prefix + ".weight", &weight_, &weight_grad_, true});
  out->push_back({prefix + ".bias", &bias_, &bias_grad_, true});
}

std::unique_ptr<Layer> Conv2d::Clone() const {
  auto copy = std::unique_ptr<Conv2d>(new Conv2d());
  *copy = *this;
  return copy;
}

// --------------------------------------------------------------------------
// ReLU / Tanh
// --------------------------------------------------------------------------

Tensor ReLU::Forward(const Tensor& x, bool /*train*/) {
  cached_input_ = x;
  Tensor y = x;
  float* p = y.data();
  for (int64_t i = 0; i < y.numel(); ++i) p[i] = std::max(p[i], 0.0f);
  return y;
}

Tensor ReLU::Backward(const Tensor& grad_out) {
  Tensor grad_in = grad_out;
  const float* x = cached_input_.data();
  float* g = grad_in.data();
  for (int64_t i = 0; i < grad_in.numel(); ++i) {
    if (x[i] <= 0.0f) g[i] = 0.0f;
  }
  return grad_in;
}

std::unique_ptr<Layer> ReLU::Clone() const {
  return std::make_unique<ReLU>(*this);
}

Tensor Tanh::Forward(const Tensor& x, bool /*train*/) {
  Tensor y = x;
  float* p = y.data();
  for (int64_t i = 0; i < y.numel(); ++i) p[i] = std::tanh(p[i]);
  cached_output_ = y;
  return y;
}

Tensor Tanh::Backward(const Tensor& grad_out) {
  Tensor grad_in = grad_out;
  const float* y = cached_output_.data();
  float* g = grad_in.data();
  for (int64_t i = 0; i < grad_in.numel(); ++i) g[i] *= 1.0f - y[i] * y[i];
  return grad_in;
}

std::unique_ptr<Layer> Tanh::Clone() const {
  return std::make_unique<Tanh>(*this);
}

// --------------------------------------------------------------------------
// Dropout
// --------------------------------------------------------------------------

Dropout::Dropout(double rate, uint64_t seed) : rate_(rate), rng_(seed) {
  FS_CHECK_GE(rate, 0.0);
  FS_CHECK_LT(rate, 1.0);
}

Tensor Dropout::Forward(const Tensor& x, bool train) {
  last_train_ = train;
  if (!train || rate_ == 0.0) return x;
  mask_ = Tensor(x.shape());
  Tensor y = x;
  const float keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
  float* pm = mask_.data();
  float* py = y.data();
  for (int64_t i = 0; i < y.numel(); ++i) {
    if (rng_.Bernoulli(rate_)) {
      pm[i] = 0.0f;
      py[i] = 0.0f;
    } else {
      pm[i] = keep_scale;
      py[i] *= keep_scale;
    }
  }
  return y;
}

Tensor Dropout::Backward(const Tensor& grad_out) {
  if (!last_train_ || rate_ == 0.0) return grad_out;
  return Mul(grad_out, mask_);
}

std::unique_ptr<Layer> Dropout::Clone() const {
  return std::make_unique<Dropout>(*this);
}

// --------------------------------------------------------------------------
// MaxPool2d
// --------------------------------------------------------------------------

Tensor MaxPool2d::Forward(const Tensor& x, bool /*train*/) {
  FS_CHECK_EQ(x.ndim(), 4);
  in_shape_ = x.shape();
  const int64_t batch = x.dim(0), channels = x.dim(1);
  const int64_t in_h = x.dim(2), in_w = x.dim(3);
  const int64_t out_h = in_h / 2, out_w = in_w / 2;
  FS_CHECK_GT(out_h, 0);
  FS_CHECK_GT(out_w, 0);
  Tensor y({batch, channels, out_h, out_w});
  argmax_.assign(y.numel(), 0);
  int64_t out_idx = 0;
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t c = 0; c < channels; ++c) {
      for (int64_t oh = 0; oh < out_h; ++oh) {
        for (int64_t ow = 0; ow < out_w; ++ow) {
          float best = -std::numeric_limits<float>::infinity();
          int64_t best_flat = 0;
          for (int64_t dh = 0; dh < 2; ++dh) {
            for (int64_t dw = 0; dw < 2; ++dw) {
              const int64_t ih = oh * 2 + dh, iw = ow * 2 + dw;
              const int64_t flat =
                  ((n * channels + c) * in_h + ih) * in_w + iw;
              if (x.at(flat) > best) {
                best = x.at(flat);
                best_flat = flat;
              }
            }
          }
          y.at(out_idx) = best;
          argmax_[out_idx] = best_flat;
          ++out_idx;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2d::Backward(const Tensor& grad_out) {
  Tensor grad_in(in_shape_);
  for (int64_t i = 0; i < grad_out.numel(); ++i) {
    grad_in.at(argmax_[i]) += grad_out.at(i);
  }
  return grad_in;
}

std::unique_ptr<Layer> MaxPool2d::Clone() const {
  return std::make_unique<MaxPool2d>(*this);
}

// --------------------------------------------------------------------------
// Flatten
// --------------------------------------------------------------------------

Tensor Flatten::Forward(const Tensor& x, bool /*train*/) {
  in_shape_ = x.shape();
  return x.Reshape({x.dim(0), x.numel() / x.dim(0)});
}

Tensor Flatten::Backward(const Tensor& grad_out) {
  return grad_out.Reshape(in_shape_);
}

std::unique_ptr<Layer> Flatten::Clone() const {
  return std::make_unique<Flatten>(*this);
}

// --------------------------------------------------------------------------
// BatchNorm
// --------------------------------------------------------------------------

BatchNorm::BatchNorm(int64_t num_features, double momentum, double eps)
    : num_features_(num_features), momentum_(momentum), eps_(eps) {
  gamma_ = Tensor::Full({num_features}, 1.0f);
  beta_ = Tensor::Zeros({num_features});
  gamma_grad_ = Tensor::Zeros({num_features});
  beta_grad_ = Tensor::Zeros({num_features});
  running_mean_ = Tensor::Zeros({num_features});
  running_var_ = Tensor::Full({num_features}, 1.0f);
}

// Iterates a [B, F] or [B, C, H, W] tensor grouped by feature/channel f.
// Calls fn(f, flat_index) for every element belonging to feature f.
template <typename Fn>
static void ForEachByFeature(const std::vector<int64_t>& shape,
                             int64_t num_features, Fn fn) {
  if (shape.size() == 2) {
    const int64_t batch = shape[0];
    for (int64_t n = 0; n < batch; ++n) {
      for (int64_t f = 0; f < num_features; ++f) {
        fn(f, n * num_features + f);
      }
    }
  } else {
    const int64_t batch = shape[0], spatial = shape[2] * shape[3];
    for (int64_t n = 0; n < batch; ++n) {
      for (int64_t f = 0; f < num_features; ++f) {
        const int64_t base = (n * num_features + f) * spatial;
        for (int64_t s = 0; s < spatial; ++s) fn(f, base + s);
      }
    }
  }
}

Tensor BatchNorm::Forward(const Tensor& x, bool train) {
  FS_CHECK(x.ndim() == 2 || x.ndim() == 4) << x.ShapeString();
  FS_CHECK_EQ(x.dim(1), num_features_);
  in_shape_ = x.shape();
  last_train_ = train;
  const int64_t per_feature = x.numel() / num_features_;

  std::vector<double> mean(num_features_, 0.0), var(num_features_, 0.0);
  if (train) {
    ForEachByFeature(x.shape(), num_features_,
                     [&](int64_t f, int64_t i) { mean[f] += x.at(i); });
    for (auto& m : mean) m /= static_cast<double>(per_feature);
    ForEachByFeature(x.shape(), num_features_, [&](int64_t f, int64_t i) {
      const double d = x.at(i) - mean[f];
      var[f] += d * d;
    });
    for (auto& v : var) v /= static_cast<double>(per_feature);
    for (int64_t f = 0; f < num_features_; ++f) {
      running_mean_.at(f) = static_cast<float>(
          (1.0 - momentum_) * running_mean_.at(f) + momentum_ * mean[f]);
      running_var_.at(f) = static_cast<float>(
          (1.0 - momentum_) * running_var_.at(f) + momentum_ * var[f]);
    }
  } else {
    for (int64_t f = 0; f < num_features_; ++f) {
      mean[f] = running_mean_.at(f);
      var[f] = running_var_.at(f);
    }
  }

  cached_invstd_.assign(num_features_, 0.0);
  for (int64_t f = 0; f < num_features_; ++f) {
    cached_invstd_[f] = 1.0 / std::sqrt(var[f] + eps_);
  }
  cached_xhat_ = Tensor(x.shape());
  Tensor y(x.shape());
  ForEachByFeature(x.shape(), num_features_, [&](int64_t f, int64_t i) {
    const double xhat = (x.at(i) - mean[f]) * cached_invstd_[f];
    cached_xhat_.at(i) = static_cast<float>(xhat);
    y.at(i) = static_cast<float>(gamma_.at(f) * xhat + beta_.at(f));
  });
  return y;
}

Tensor BatchNorm::Backward(const Tensor& grad_out) {
  const int64_t per_feature = grad_out.numel() / num_features_;
  std::vector<double> sum_dy(num_features_, 0.0);
  std::vector<double> sum_dy_xhat(num_features_, 0.0);
  ForEachByFeature(in_shape_, num_features_, [&](int64_t f, int64_t i) {
    sum_dy[f] += grad_out.at(i);
    sum_dy_xhat[f] += grad_out.at(i) * cached_xhat_.at(i);
  });
  for (int64_t f = 0; f < num_features_; ++f) {
    gamma_grad_.at(f) += static_cast<float>(sum_dy_xhat[f]);
    beta_grad_.at(f) += static_cast<float>(sum_dy[f]);
  }
  Tensor grad_in(in_shape_);
  if (last_train_) {
    // dx = gamma * invstd * (dy - mean(dy) - xhat * mean(dy*xhat)).
    const double inv_n = 1.0 / static_cast<double>(per_feature);
    ForEachByFeature(in_shape_, num_features_, [&](int64_t f, int64_t i) {
      const double dy = grad_out.at(i);
      const double dx =
          gamma_.at(f) * cached_invstd_[f] *
          (dy - sum_dy[f] * inv_n - cached_xhat_.at(i) * sum_dy_xhat[f] * inv_n);
      grad_in.at(i) = static_cast<float>(dx);
    });
  } else {
    // Eval mode: running stats are constants.
    ForEachByFeature(in_shape_, num_features_, [&](int64_t f, int64_t i) {
      grad_in.at(i) = static_cast<float>(grad_out.at(i) * gamma_.at(f) *
                                         cached_invstd_[f]);
    });
  }
  return grad_in;
}

void BatchNorm::CollectParams(const std::string& prefix,
                              std::vector<ParamRef>* out) {
  out->push_back({prefix + ".bn.gamma", &gamma_, &gamma_grad_, true});
  out->push_back({prefix + ".bn.beta", &beta_, &beta_grad_, true});
  out->push_back(
      {prefix + ".bn.running_mean", &running_mean_, nullptr, false});
  out->push_back({prefix + ".bn.running_var", &running_var_, nullptr, false});
}

std::unique_ptr<Layer> BatchNorm::Clone() const {
  return std::make_unique<BatchNorm>(*this);
}

}  // namespace fedscope
