#include "fedscope/nn/loss.h"

#include <cmath>

#include "fedscope/tensor/tensor_ops.h"
#include "fedscope/util/logging.h"

namespace fedscope {

double SoftmaxCrossEntropy::Forward(const Tensor& logits,
                                    const std::vector<int64_t>& labels) {
  FS_CHECK_EQ(logits.ndim(), 2);
  FS_CHECK_EQ(logits.dim(0), static_cast<int64_t>(labels.size()));
  probs_ = Softmax(logits);
  labels_ = labels;
  double loss = 0.0;
  for (int64_t i = 0; i < logits.dim(0); ++i) {
    FS_CHECK_GE(labels[i], 0);
    FS_CHECK_LT(labels[i], logits.dim(1));
    loss -= std::log(std::max(1e-12, (double)probs_.at(i, labels[i])));
  }
  return loss / static_cast<double>(logits.dim(0));
}

Tensor SoftmaxCrossEntropy::Backward() {
  Tensor grad = probs_;
  const int64_t batch = grad.dim(0);
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (int64_t i = 0; i < batch; ++i) {
    grad.at(i, labels_[i]) -= 1.0f;
  }
  ScaleInPlace(&grad, inv_batch);
  return grad;
}

double MseLoss::Forward(const Tensor& output,
                        const std::vector<int64_t>& labels) {
  FS_CHECK_EQ(output.ndim(), 2);
  FS_CHECK_EQ(output.dim(1), 1);
  FS_CHECK_EQ(output.dim(0), static_cast<int64_t>(labels.size()));
  output_ = output;
  labels_ = labels;
  double loss = 0.0;
  for (int64_t i = 0; i < output.dim(0); ++i) {
    const double d = output.at(i, 0) - static_cast<double>(labels[i]);
    loss += d * d;
  }
  return loss / static_cast<double>(output.dim(0));
}

Tensor MseLoss::Backward() {
  Tensor grad(output_.shape());
  const int64_t batch = output_.dim(0);
  for (int64_t i = 0; i < batch; ++i) {
    grad.at(i, 0) = static_cast<float>(
        2.0 * (output_.at(i, 0) - static_cast<double>(labels_[i])) /
        static_cast<double>(batch));
  }
  return grad;
}

double Accuracy(const Tensor& scores, const std::vector<int64_t>& labels) {
  FS_CHECK_EQ(scores.dim(0), static_cast<int64_t>(labels.size()));
  if (labels.empty()) return 0.0;
  auto preds = ArgmaxRows(scores);
  int64_t correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

}  // namespace fedscope
