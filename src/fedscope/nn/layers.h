#ifndef FEDSCOPE_NN_LAYERS_H_
#define FEDSCOPE_NN_LAYERS_H_

#include <memory>
#include <string>
#include <vector>

#include "fedscope/tensor/tensor.h"
#include "fedscope/util/rng.h"

namespace fedscope {

/// A named reference to a layer parameter (or buffer) and its gradient.
/// `trainable == false` marks buffers such as BatchNorm running statistics:
/// they are part of the state dict (and thus of exchanged messages) but are
/// not touched by optimizers.
struct ParamRef {
  std::string name;
  Tensor* value = nullptr;
  Tensor* grad = nullptr;  // nullptr for buffers
  bool trainable = true;
};

/// Base class for neural-network layers (caffe-style explicit
/// forward/backward). A layer caches whatever it needs from the forward
/// pass to compute the backward pass; Backward must be called after the
/// matching Forward. Parameter gradients are *accumulated* into the grad
/// tensors; callers zero them between optimization steps.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output. `train` selects training behaviour
  /// (dropout masks, batch statistics).
  virtual Tensor Forward(const Tensor& x, bool train) = 0;

  /// Propagates `grad_out` (dL/d output) to dL/d input; accumulates
  /// parameter gradients.
  virtual Tensor Backward(const Tensor& grad_out) = 0;

  /// Appends this layer's parameters/buffers, names prefixed.
  virtual void CollectParams(const std::string& prefix,
                             std::vector<ParamRef>* out) {
    (void)prefix;
    (void)out;
  }

  /// Deep copy (used to clone models across simulated clients).
  virtual std::unique_ptr<Layer> Clone() const = 0;

  /// Human-readable layer type for logging / completeness output.
  virtual std::string TypeName() const = 0;
};

/// Fully connected layer: y = x W + b, x: [B, in], W: [in, out], b: [out].
class Linear : public Layer {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng* rng);

  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  void CollectParams(const std::string& prefix,
                     std::vector<ParamRef>* out) override;
  std::unique_ptr<Layer> Clone() const override;
  std::string TypeName() const override { return "Linear"; }

  const Tensor& weight() const { return weight_; }
  const Tensor& weight_grad() const { return weight_grad_; }
  const Tensor& bias_grad() const { return bias_grad_; }

 private:
  Linear() = default;
  int64_t in_features_ = 0;
  int64_t out_features_ = 0;
  Tensor weight_, bias_;
  Tensor weight_grad_, bias_grad_;
  Tensor cached_input_;
};

/// 2-D convolution over NCHW input, stride 1, symmetric zero padding.
class Conv2d : public Layer {
 public:
  Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel_size,
         int64_t padding, Rng* rng);

  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  void CollectParams(const std::string& prefix,
                     std::vector<ParamRef>* out) override;
  std::unique_ptr<Layer> Clone() const override;
  std::string TypeName() const override { return "Conv2d"; }

 private:
  Conv2d() = default;
  int64_t in_channels_ = 0, out_channels_ = 0, kernel_ = 0, padding_ = 0;
  Tensor weight_;  // [out_c, in_c, k, k]
  Tensor bias_;    // [out_c]
  Tensor weight_grad_, bias_grad_;
  Tensor cached_input_;
};

/// Elementwise rectified linear unit.
class ReLU : public Layer {
 public:
  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> Clone() const override;
  std::string TypeName() const override { return "ReLU"; }

 private:
  Tensor cached_input_;
};

/// Elementwise hyperbolic tangent.
class Tanh : public Layer {
 public:
  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> Clone() const override;
  std::string TypeName() const override { return "Tanh"; }

 private:
  Tensor cached_output_;
};

/// Inverted dropout: active in training mode only.
class Dropout : public Layer {
 public:
  Dropout(double rate, uint64_t seed);

  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> Clone() const override;
  std::string TypeName() const override { return "Dropout"; }

 private:
  double rate_;
  Rng rng_;
  Tensor mask_;
  bool last_train_ = false;
};

/// 2x2 max pooling with stride 2 over NCHW input.
class MaxPool2d : public Layer {
 public:
  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> Clone() const override;
  std::string TypeName() const override { return "MaxPool2d"; }

 private:
  std::vector<int64_t> argmax_;
  std::vector<int64_t> in_shape_;
};

/// Flattens [B, ...] to [B, prod(...)].
class Flatten : public Layer {
 public:
  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> Clone() const override;
  std::string TypeName() const override { return "Flatten"; }

 private:
  std::vector<int64_t> in_shape_;
};

/// Batch normalization. Handles both [B, F] (per-feature) and [B, C, H, W]
/// (per-channel) inputs. gamma/beta are trainable; running mean/var are
/// buffers (this split is what FedBN's "don't share BN" relies on).
class BatchNorm : public Layer {
 public:
  explicit BatchNorm(int64_t num_features, double momentum = 0.1,
                     double eps = 1e-5);

  Tensor Forward(const Tensor& x, bool train) override;
  Tensor Backward(const Tensor& grad_out) override;
  void CollectParams(const std::string& prefix,
                     std::vector<ParamRef>* out) override;
  std::unique_ptr<Layer> Clone() const override;
  std::string TypeName() const override { return "BatchNorm"; }

 private:
  int64_t num_features_;
  double momentum_;
  double eps_;
  Tensor gamma_, beta_;
  Tensor gamma_grad_, beta_grad_;
  Tensor running_mean_, running_var_;  // buffers
  // Cached forward state for backward.
  Tensor cached_xhat_;
  std::vector<double> cached_invstd_;
  std::vector<int64_t> in_shape_;
  bool last_train_ = false;
};

}  // namespace fedscope

#endif  // FEDSCOPE_NN_LAYERS_H_
