#ifndef FEDSCOPE_NN_GRAD_CHECK_H_
#define FEDSCOPE_NN_GRAD_CHECK_H_

#include <cstdint>
#include <vector>

#include "fedscope/nn/loss.h"
#include "fedscope/nn/model.h"

namespace fedscope {

/// Result of a finite-difference gradient check.
struct GradCheckResult {
  double max_abs_err = 0.0;
  double max_rel_err = 0.0;
  int64_t checked = 0;
};

/// Compares the analytic parameter gradients of `model` under `loss` on
/// (x, labels) with central finite differences. Only the first
/// `max_params_per_tensor` entries of each parameter are probed to keep the
/// cost manageable. Dropout should be disabled (checked in eval-train mode
/// would break determinism).
GradCheckResult CheckModelGradients(Model* model, Loss* loss, const Tensor& x,
                                    const std::vector<int64_t>& labels,
                                    double epsilon = 1e-3,
                                    int64_t max_params_per_tensor = 24);

}  // namespace fedscope

#endif  // FEDSCOPE_NN_GRAD_CHECK_H_
