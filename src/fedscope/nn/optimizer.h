#ifndef FEDSCOPE_NN_OPTIMIZER_H_
#define FEDSCOPE_NN_OPTIMIZER_H_

#include <map>
#include <string>

#include "fedscope/nn/model.h"

namespace fedscope {

/// Options for the SGD optimizer. `prox_mu > 0` adds a proximal term
/// mu * (w - w_center) to the gradient, which implements FedProx local
/// training and the inner problems of Ditto / pFedMe.
struct SgdOptions {
  double lr = 0.1;
  double momentum = 0.0;
  double weight_decay = 0.0;
  double prox_mu = 0.0;
  /// Per-parameter gradient clipping by global L2 norm; 0 disables.
  double grad_clip_norm = 0.0;
};

/// SGD with momentum, weight decay, optional proximal term and gradient
/// clipping. Operates on a Model's trainable parameters; momentum buffers
/// are keyed by parameter name so the optimizer survives model reloads.
class Sgd {
 public:
  explicit Sgd(SgdOptions options) : options_(options) {}

  const SgdOptions& options() const { return options_; }
  void set_lr(double lr) { options_.lr = lr; }

  /// Sets the proximal center (copy of the reference parameters). Pass an
  /// empty dict to disable.
  void SetProxCenter(StateDict center) { prox_center_ = std::move(center); }

  /// One optimization step over the model's accumulated gradients.
  void Step(Model* model);

  /// Clears momentum state.
  void Reset() { momentum_buffers_.clear(); }

 private:
  SgdOptions options_;
  StateDict prox_center_;
  std::map<std::string, Tensor> momentum_buffers_;
};

}  // namespace fedscope

#endif  // FEDSCOPE_NN_OPTIMIZER_H_
