#ifndef FEDSCOPE_NN_LOSS_H_
#define FEDSCOPE_NN_LOSS_H_

#include <cstdint>
#include <vector>

#include "fedscope/tensor/tensor.h"

namespace fedscope {

/// Loss functions pair a scalar Forward with a Backward returning the
/// gradient w.r.t. the model output. Losses are mean-reduced over the batch.
class Loss {
 public:
  virtual ~Loss() = default;
  /// Returns the mean loss over the batch; caches state for Backward.
  virtual double Forward(const Tensor& output,
                         const std::vector<int64_t>& labels) = 0;
  /// Gradient of the mean loss w.r.t. `output`.
  virtual Tensor Backward() = 0;
};

/// Softmax + cross-entropy over [batch, classes] logits.
class SoftmaxCrossEntropy : public Loss {
 public:
  double Forward(const Tensor& logits,
                 const std::vector<int64_t>& labels) override;
  Tensor Backward() override;

  /// The cached softmax probabilities from the last Forward.
  const Tensor& probs() const { return probs_; }

 private:
  Tensor probs_;
  std::vector<int64_t> labels_;
};

/// Mean squared error against integer labels interpreted as scalar targets
/// (used for regression-goal clients in multi-goal FL). Output must be
/// [batch, 1].
class MseLoss : public Loss {
 public:
  double Forward(const Tensor& output,
                 const std::vector<int64_t>& labels) override;
  Tensor Backward() override;

 private:
  Tensor output_;
  std::vector<int64_t> labels_;
};

/// Top-1 accuracy of [batch, classes] scores against labels.
double Accuracy(const Tensor& scores, const std::vector<int64_t>& labels);

}  // namespace fedscope

#endif  // FEDSCOPE_NN_LOSS_H_
