#include "fedscope/nn/model.h"

#include <cmath>

#include "fedscope/tensor/tensor_ops.h"
#include "fedscope/util/logging.h"

namespace fedscope {

NameFilter AcceptAll() {
  return [](const std::string&) { return true; };
}

NameFilter ExcludeSubstrings(std::vector<std::string> substrings) {
  return [subs = std::move(substrings)](const std::string& name) {
    for (const auto& s : subs) {
      if (name.find(s) != std::string::npos) return false;
    }
    return true;
  };
}

NameFilter IncludePrefixes(std::vector<std::string> prefixes) {
  return [prefs = std::move(prefixes)](const std::string& name) {
    for (const auto& p : prefs) {
      if (name.rfind(p, 0) == 0) return true;
    }
    return false;
  };
}

Model& Model::operator=(const Model& other) {
  if (this == &other) return *this;
  names_ = other.names_;
  layers_.clear();
  layers_.reserve(other.layers_.size());
  for (const auto& layer : other.layers_) layers_.push_back(layer->Clone());
  return *this;
}

void Model::Add(std::string name, std::unique_ptr<Layer> layer) {
  for (const auto& existing : names_) {
    FS_CHECK_NE(existing, name) << "duplicate layer name";
  }
  names_.push_back(std::move(name));
  layers_.push_back(std::move(layer));
}

Tensor Model::Forward(const Tensor& x, bool train) {
  Tensor h = x;
  for (auto& layer : layers_) h = layer->Forward(h, train);
  return h;
}

Tensor Model::Backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

std::vector<ParamRef> Model::Params() {
  std::vector<ParamRef> params;
  for (size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->CollectParams(names_[i], &params);
  }
  return params;
}

void Model::ZeroGrad() {
  for (auto& p : Params()) {
    if (p.grad != nullptr) ZeroInPlace(p.grad);
  }
}

int64_t Model::NumParams() {
  int64_t n = 0;
  for (auto& p : Params()) n += p.value->numel();
  return n;
}

StateDict Model::GetStateDict(const NameFilter& filter) {
  StateDict state;
  for (auto& p : Params()) {
    if (filter(p.name)) state[p.name] = *p.value;
  }
  return state;
}

Status Model::LoadStateDict(const StateDict& state, bool strict,
                            const NameFilter& filter) {
  std::map<std::string, ParamRef> by_name;
  for (auto& p : Params()) by_name[p.name] = p;
  for (const auto& [name, tensor] : state) {
    if (!filter(name)) continue;
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      if (strict) {
        return Status::NotFound("state dict key not in model: " + name);
      }
      continue;
    }
    if (!it->second.value->SameShape(tensor)) {
      return Status::InvalidArgument(
          "shape mismatch for " + name + ": model " +
          it->second.value->ShapeString() + " vs state " +
          tensor.ShapeString());
    }
    *it->second.value = tensor;
  }
  return Status::Ok();
}

std::vector<float> Model::FlatParams() {
  std::vector<float> flat;
  for (auto& p : Params()) {
    if (!p.trainable) continue;
    flat.insert(flat.end(), p.value->storage().begin(),
                p.value->storage().end());
  }
  return flat;
}

void Model::SetFlatParams(const std::vector<float>& flat) {
  size_t offset = 0;
  for (auto& p : Params()) {
    if (!p.trainable) continue;
    FS_CHECK_LE(offset + p.value->storage().size(), flat.size());
    std::copy(flat.begin() + offset,
              flat.begin() + offset + p.value->storage().size(),
              p.value->storage().begin());
    offset += p.value->storage().size();
  }
  FS_CHECK_EQ(offset, flat.size());
}

std::vector<float> Model::FlatGrads() {
  std::vector<float> flat;
  for (auto& p : Params()) {
    if (!p.trainable || p.grad == nullptr) continue;
    flat.insert(flat.end(), p.grad->storage().begin(),
                p.grad->storage().end());
  }
  return flat;
}

// --------------------------------------------------------------------------
// StateDict arithmetic
// --------------------------------------------------------------------------

namespace {
void CheckSameKeys(const StateDict& a, const StateDict& b) {
  FS_CHECK_EQ(a.size(), b.size());
  auto ia = a.begin();
  auto ib = b.begin();
  for (; ia != a.end(); ++ia, ++ib) {
    FS_CHECK_EQ(ia->first, ib->first);
  }
}
}  // namespace

StateDict SdAdd(const StateDict& a, const StateDict& b) {
  CheckSameKeys(a, b);
  StateDict out = a;
  for (auto& [name, tensor] : out) AddInPlace(&tensor, b.at(name));
  return out;
}

StateDict SdSub(const StateDict& a, const StateDict& b) {
  CheckSameKeys(a, b);
  StateDict out = a;
  for (auto& [name, tensor] : out) Axpy(&tensor, -1.0f, b.at(name));
  return out;
}

StateDict SdScale(const StateDict& a, float s) {
  StateDict out = a;
  for (auto& [name, tensor] : out) ScaleInPlace(&tensor, s);
  return out;
}

void SdAxpy(StateDict* acc, float s, const StateDict& b) {
  for (const auto& [name, tensor] : b) {
    auto it = acc->find(name);
    FS_CHECK(it != acc->end()) << "SdAxpy: missing key " << name;
    Axpy(&it->second, s, tensor);
  }
}

double SdNorm(const StateDict& a) {
  double acc = 0.0;
  for (const auto& [name, tensor] : a) acc += SquaredNorm(tensor);
  return std::sqrt(acc);
}

std::vector<float> SdFlatten(const StateDict& a) {
  std::vector<float> flat;
  for (const auto& [name, tensor] : a) {
    flat.insert(flat.end(), tensor.storage().begin(), tensor.storage().end());
  }
  return flat;
}

StateDict SdWeightedAverage(const std::vector<const StateDict*>& dicts,
                            const std::vector<double>& weights) {
  FS_CHECK(!dicts.empty());
  FS_CHECK_EQ(dicts.size(), weights.size());
  double total = 0.0;
  for (double w : weights) {
    FS_CHECK_GE(w, 0.0);
    total += w;
  }
  FS_CHECK_GT(total, 0.0);
  StateDict out = SdScale(*dicts[0], static_cast<float>(weights[0] / total));
  for (size_t i = 1; i < dicts.size(); ++i) {
    CheckSameKeys(out, *dicts[i]);
    SdAxpy(&out, static_cast<float>(weights[i] / total), *dicts[i]);
  }
  return out;
}

int64_t SdNumel(const StateDict& a) {
  int64_t n = 0;
  for (const auto& [name, tensor] : a) n += tensor.numel();
  return n;
}

}  // namespace fedscope
