#include "fedscope/nn/model_zoo.h"

#include <memory>
#include <string>

#include "fedscope/util/logging.h"

namespace fedscope {

Model MakeConvNet2(int64_t in_channels, int64_t image_size, int64_t classes,
                   int64_t hidden, double dropout, Rng* rng) {
  FS_CHECK_EQ(image_size % 4, 0) << "two 2x2 pools need size % 4 == 0";
  Model m;
  m.Add("conv1", std::make_unique<Conv2d>(in_channels, 8, 3, 1, rng));
  m.Add("relu1", std::make_unique<ReLU>());
  m.Add("pool1", std::make_unique<MaxPool2d>());
  m.Add("conv2", std::make_unique<Conv2d>(8, 16, 3, 1, rng));
  m.Add("relu2", std::make_unique<ReLU>());
  m.Add("pool2", std::make_unique<MaxPool2d>());
  m.Add("flatten", std::make_unique<Flatten>());
  const int64_t flat = 16 * (image_size / 4) * (image_size / 4);
  m.Add("fc1", std::make_unique<Linear>(flat, hidden, rng));
  m.Add("relu3", std::make_unique<ReLU>());
  if (dropout > 0.0) {
    m.Add("drop", std::make_unique<Dropout>(dropout, rng->Next()));
  }
  m.Add("fc2", std::make_unique<Linear>(hidden, classes, rng));
  return m;
}

Model MakeMlp(const std::vector<int64_t>& dims, Rng* rng) {
  FS_CHECK_GE(dims.size(), 2u);
  Model m;
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    const std::string idx = std::to_string(i + 1);
    m.Add("fc" + idx, std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    if (i + 2 < dims.size()) {
      m.Add("relu" + idx, std::make_unique<ReLU>());
    }
  }
  return m;
}

Model MakeMlpBn(const std::vector<int64_t>& dims, Rng* rng) {
  FS_CHECK_GE(dims.size(), 2u);
  Model m;
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    const std::string idx = std::to_string(i + 1);
    m.Add("fc" + idx, std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    if (i + 2 < dims.size()) {
      m.Add("norm" + idx, std::make_unique<BatchNorm>(dims[i + 1]));
      m.Add("relu" + idx, std::make_unique<ReLU>());
    }
  }
  return m;
}

Model MakeLogisticRegression(int64_t features, int64_t classes, Rng* rng) {
  Model m;
  m.Add("fc", std::make_unique<Linear>(features, classes, rng));
  return m;
}

Model MakeBodyHeadMlp(int64_t in_features, int64_t body_hidden,
                      int64_t head_out, Rng* rng) {
  Model m;
  m.Add("body.fc1", std::make_unique<Linear>(in_features, body_hidden, rng));
  m.Add("body.relu1", std::make_unique<ReLU>());
  m.Add("body.fc2", std::make_unique<Linear>(body_hidden, body_hidden, rng));
  m.Add("body.relu2", std::make_unique<ReLU>());
  m.Add("head.fc", std::make_unique<Linear>(body_hidden, head_out, rng));
  return m;
}

}  // namespace fedscope
