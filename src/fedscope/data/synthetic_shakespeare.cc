#include "fedscope/data/synthetic_shakespeare.h"

#include <cmath>

#include "fedscope/util/logging.h"

namespace fedscope {
namespace {

/// A row-stochastic character-transition matrix with zipf-ish rows.
std::vector<std::vector<double>> MakeTransitions(int64_t vocab, Rng* rng) {
  std::vector<std::vector<double>> rows(vocab, std::vector<double>(vocab));
  for (auto& row : rows) {
    auto perm = rng->Permutation(vocab);
    double total = 0.0;
    for (int64_t j = 0; j < vocab; ++j) {
      row[perm[j]] = 1.0 / std::pow(static_cast<double>(j + 1), 1.3);
      total += row[perm[j]];
    }
    for (auto& p : row) p /= total;
  }
  return rows;
}

std::vector<std::vector<double>> MixTransitions(
    const std::vector<std::vector<double>>& a,
    const std::vector<std::vector<double>>& b, double t) {
  std::vector<std::vector<double>> out = a;
  for (size_t i = 0; i < out.size(); ++i) {
    for (size_t j = 0; j < out[i].size(); ++j) {
      out[i][j] = (1.0 - t) * a[i][j] + t * b[i][j];
    }
  }
  return out;
}

/// Samples a character sequence from the chain.
std::vector<int64_t> SampleText(
    const std::vector<std::vector<double>>& transitions, int64_t length,
    double temperature, Rng* rng) {
  const int64_t vocab = static_cast<int64_t>(transitions.size());
  std::vector<int64_t> text(length);
  text[0] = rng->UniformInt(0, vocab - 1);
  std::vector<double> weights(vocab);
  for (int64_t i = 1; i < length; ++i) {
    const auto& row = transitions[text[i - 1]];
    for (int64_t j = 0; j < vocab; ++j) {
      weights[j] = std::pow(row[j], 1.0 / temperature);
    }
    text[i] = rng->Categorical(weights);
  }
  return text;
}

/// Converts a text into (one-hot context window -> next char) examples.
Dataset TextToExamples(const std::vector<int64_t>& text, int64_t vocab,
                       int64_t context) {
  const int64_t n =
      std::max<int64_t>(0, static_cast<int64_t>(text.size()) - context);
  Dataset data;
  data.x = Tensor({n, context * vocab});
  data.labels.resize(n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < context; ++c) {
      data.x.at(i, c * vocab + text[i + c]) = 1.0f;
    }
    data.labels[i] = text[i + context];
  }
  return data;
}

}  // namespace

FedDataset MakeSyntheticShakespeare(
    const SyntheticShakespeareOptions& options) {
  FS_CHECK_GT(options.num_clients, 0);
  FS_CHECK_GE(options.vocab, 2);
  FS_CHECK_GE(options.context, 1);
  Rng rng(options.seed);
  auto global = MakeTransitions(options.vocab, &rng);

  FedDataset fed;
  fed.clients.resize(options.num_clients);
  for (int c = 0; c < options.num_clients; ++c) {
    Rng client_rng = rng.Fork(c + 1);
    auto habit = MakeTransitions(options.vocab, &client_rng);
    auto chain = MixTransitions(global, habit, options.style_strength);
    const int64_t length = std::max<int64_t>(
        options.context + 8,
        static_cast<int64_t>(client_rng.Lognormal(
            std::log(static_cast<double>(options.mean_text_length)), 0.4)));
    auto text = SampleText(chain, length, options.temperature, &client_rng);
    fed.clients[c] = Split(TextToExamples(text, options.vocab,
                                          options.context),
                           options.train_frac, options.val_frac,
                           &client_rng);
  }

  // Server test: style-neutral text from the global chain.
  Rng test_rng = rng.Fork(0x5AFE);
  auto text = SampleText(global,
                         options.server_test_size + options.context,
                         options.temperature, &test_rng);
  fed.server_test =
      TextToExamples(text, options.vocab, options.context);
  return fed;
}

}  // namespace fedscope
