#include "fedscope/data/synthetic_twitter.h"

#include <cmath>

#include "fedscope/util/logging.h"

namespace fedscope {
namespace {

/// Power-law (zipf-like) weights over the vocabulary, randomly permuted so
/// each distribution emphasizes different words.
std::vector<double> MakeWordDistribution(int64_t vocab, Rng* rng) {
  std::vector<double> weights(vocab);
  auto perm = rng->Permutation(vocab);
  for (int64_t i = 0; i < vocab; ++i) {
    weights[perm[i]] = 1.0 / std::pow(static_cast<double>(i + 1), 1.1);
  }
  return weights;
}

std::vector<double> Mix(const std::vector<double>& a,
                        const std::vector<double>& b, double t) {
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    out[i] = (1.0 - t) * a[i] + t * b[i];
  }
  return out;
}

/// One BoW text of class `y`: word counts normalized by text length.
Tensor MakeText(const std::vector<double>& dist, int64_t vocab,
                int64_t mean_words, Rng* rng) {
  Tensor x({vocab});
  const int64_t len =
      std::max<int64_t>(4, mean_words + rng->UniformInt(-mean_words / 2,
                                                        mean_words / 2));
  for (int64_t w = 0; w < len; ++w) {
    x.at(rng->Categorical(dist)) += 1.0f;
  }
  for (int64_t i = 0; i < vocab; ++i) {
    x.at(i) /= static_cast<float>(len);
  }
  return x;
}

}  // namespace

FedDataset MakeSyntheticTwitter(const SyntheticTwitterOptions& options) {
  Rng rng(options.seed);
  // Global per-sentiment word distributions.
  auto positive = MakeWordDistribution(options.vocab, &rng);
  auto negative = MakeWordDistribution(options.vocab, &rng);

  FedDataset fed;
  fed.clients.resize(options.num_clients);
  for (int c = 0; c < options.num_clients; ++c) {
    Rng client_rng = rng.Fork(static_cast<uint64_t>(c) + 1);
    auto user_habit = MakeWordDistribution(options.vocab, &client_rng);
    auto user_pos =
        Mix(positive, user_habit, options.user_style_strength);
    auto user_neg =
        Mix(negative, user_habit, options.user_style_strength);
    // Power-law text count: most users have few texts.
    const double u = client_rng.Uniform();
    const int64_t n = options.min_texts +
                      static_cast<int64_t>((options.max_texts -
                                            options.min_texts) *
                                           u * u * u);
    Dataset data;
    data.x = Tensor({n, options.vocab});
    data.labels.resize(n);
    for (int64_t i = 0; i < n; ++i) {
      const int64_t y = client_rng.Bernoulli(0.5) ? 1 : 0;
      data.labels[i] = y;
      data.x.SetSlice(i, MakeText(y == 1 ? user_pos : user_neg, options.vocab,
                                  options.words_per_text, &client_rng));
    }
    fed.clients[c] =
        Split(data, options.train_frac, options.val_frac, &client_rng);
  }

  Rng test_rng = rng.Fork(0x7417);
  Dataset test;
  test.x = Tensor({options.server_test_size, options.vocab});
  test.labels.resize(options.server_test_size);
  for (int64_t i = 0; i < options.server_test_size; ++i) {
    const int64_t y = test_rng.Bernoulli(0.5) ? 1 : 0;
    test.labels[i] = y;
    test.x.SetSlice(i, MakeText(y == 1 ? positive : negative, options.vocab,
                                options.words_per_text, &test_rng));
  }
  fed.server_test = std::move(test);
  return fed;
}

}  // namespace fedscope
