#ifndef FEDSCOPE_DATA_SYNTHETIC_SHAKESPEARE_H_
#define FEDSCOPE_DATA_SYNTHETIC_SHAKESPEARE_H_

#include "fedscope/data/dataset.h"

namespace fedscope {

/// Laptop-scale stand-in for the Shakespeare next-character-prediction
/// dataset (LEAF partitions the play by *speaking role*): text is drawn
/// from a global character-level Markov chain, each client ("role") mixes
/// in its own private transition habits, and the task is predicting the
/// next character from a one-hot window of the previous `context` ones.
/// Preserves what the benchmark exercises: sequence structure shared
/// across clients plus per-client stylistic skew.
struct SyntheticShakespeareOptions {
  int num_clients = 30;
  int64_t vocab = 16;          // character alphabet size
  int64_t context = 3;         // characters of context (input = context*vocab)
  int64_t mean_text_length = 120;  // characters per client corpus
  double style_strength = 0.4; // mix of the client's private transitions
  double temperature = 1.0;    // sampling temperature of the chain
  double train_frac = 0.7;
  double val_frac = 0.1;
  int64_t server_test_size = 512;
  uint64_t seed = 6;
};

FedDataset MakeSyntheticShakespeare(
    const SyntheticShakespeareOptions& options);

}  // namespace fedscope

#endif  // FEDSCOPE_DATA_SYNTHETIC_SHAKESPEARE_H_
