#include "fedscope/data/partition.h"

#include <algorithm>
#include <set>

#include "fedscope/util/logging.h"

namespace fedscope {
namespace {

/// Distributes the index lists of each class to clients according to
/// per-client Dirichlet proportions.
std::vector<std::vector<int64_t>> DirichletAssign(
    const std::vector<std::vector<int64_t>>& by_class, int num_clients,
    double alpha, Rng* rng) {
  std::vector<std::vector<int64_t>> parts(num_clients);
  for (const auto& class_indices : by_class) {
    if (class_indices.empty()) continue;
    std::vector<double> proportions =
        rng->Dirichlet(std::vector<double>(num_clients, alpha));
    // Turn proportions into contiguous cut points over the shuffled class.
    std::vector<int64_t> shuffled = class_indices;
    rng->Shuffle(&shuffled);
    const int64_t n = static_cast<int64_t>(shuffled.size());
    int64_t start = 0;
    double cum = 0.0;
    for (int c = 0; c < num_clients; ++c) {
      cum += proportions[c];
      int64_t end =
          (c == num_clients - 1) ? n : static_cast<int64_t>(cum * n);
      end = std::clamp<int64_t>(end, start, n);
      for (int64_t i = start; i < end; ++i) {
        parts[c].push_back(shuffled[i]);
      }
      start = end;
    }
  }
  return parts;
}

/// Moves examples from the largest clients to clients below the minimum.
void EnforceMinimum(std::vector<std::vector<int64_t>>* parts,
                    int64_t min_per_client) {
  auto largest = [&] {
    size_t best = 0;
    for (size_t c = 1; c < parts->size(); ++c) {
      if ((*parts)[c].size() > (*parts)[best].size()) best = c;
    }
    return best;
  };
  for (auto& part : *parts) {
    while (static_cast<int64_t>(part.size()) < min_per_client) {
      auto& donor = (*parts)[largest()];
      if (donor.size() <= 1 || &donor == &part) break;
      part.push_back(donor.back());
      donor.pop_back();
    }
  }
}

}  // namespace

std::vector<std::vector<int64_t>> UniformPartition(
    const std::vector<int64_t>& labels, int num_clients, Rng* rng) {
  FS_CHECK_GT(num_clients, 0);
  auto perm = rng->Permutation(static_cast<int64_t>(labels.size()));
  std::vector<std::vector<int64_t>> parts(num_clients);
  for (size_t i = 0; i < perm.size(); ++i) {
    parts[i % num_clients].push_back(perm[i]);
  }
  return parts;
}

std::vector<std::vector<int64_t>> DirichletPartition(
    const std::vector<int64_t>& labels, int num_clients, double alpha,
    Rng* rng, int64_t min_per_client) {
  FS_CHECK_GT(num_clients, 0);
  FS_CHECK_GT(alpha, 0.0);
  int64_t num_classes = 0;
  for (int64_t label : labels) num_classes = std::max(num_classes, label + 1);
  std::vector<std::vector<int64_t>> by_class(num_classes);
  for (size_t i = 0; i < labels.size(); ++i) {
    by_class[labels[i]].push_back(static_cast<int64_t>(i));
  }
  auto parts = DirichletAssign(by_class, num_clients, alpha, rng);
  EnforceMinimum(&parts, min_per_client);
  return parts;
}

std::vector<std::vector<int64_t>> BiasedPartition(
    const std::vector<int64_t>& labels, int num_clients, double alpha,
    const std::vector<int64_t>& rare_classes,
    const std::vector<int>& rare_owners, Rng* rng) {
  FS_CHECK_GT(num_clients, 0);
  FS_CHECK(!rare_owners.empty());
  std::set<int64_t> rare(rare_classes.begin(), rare_classes.end());

  int64_t num_classes = 0;
  for (int64_t label : labels) num_classes = std::max(num_classes, label + 1);
  std::vector<std::vector<int64_t>> common_by_class(num_classes);
  std::vector<int64_t> rare_pool;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (rare.count(labels[i]) > 0) {
      rare_pool.push_back(static_cast<int64_t>(i));
    } else {
      common_by_class[labels[i]].push_back(static_cast<int64_t>(i));
    }
  }

  auto parts = DirichletAssign(common_by_class, num_clients, alpha, rng);
  // Rare-class examples are dealt only to the designated owners (the slow
  // clients, in the bias-CIFAR construction).
  rng->Shuffle(&rare_pool);
  for (size_t i = 0; i < rare_pool.size(); ++i) {
    parts[rare_owners[i % rare_owners.size()]].push_back(rare_pool[i]);
  }
  EnforceMinimum(&parts, 2);
  return parts;
}

std::vector<std::vector<int64_t>> PartitionClassCounts(
    const std::vector<int64_t>& labels,
    const std::vector<std::vector<int64_t>>& parts, int64_t num_classes) {
  std::vector<std::vector<int64_t>> counts(
      parts.size(), std::vector<int64_t>(num_classes, 0));
  for (size_t c = 0; c < parts.size(); ++c) {
    for (int64_t i : parts[c]) {
      FS_CHECK_LT(labels[i], num_classes);
      ++counts[c][labels[i]];
    }
  }
  return counts;
}

}  // namespace fedscope
