#ifndef FEDSCOPE_DATA_SYNTHETIC_FEMNIST_H_
#define FEDSCOPE_DATA_SYNTHETIC_FEMNIST_H_

#include "fedscope/data/dataset.h"

namespace fedscope {

/// Laptop-scale stand-in for FEMNIST (DESIGN.md §2): handwritten characters
/// partitioned *by writer*. Each class has a global prototype image; each
/// client ("writer") applies a private affine distortion (contrast/offset)
/// plus an additive per-writer style pattern, yielding natural feature skew,
/// and draws its label mix from a Dirichlet, yielding label skew. This
/// preserves the property the paper's experiments rely on: a single global
/// model is sub-optimal, personalization helps.
struct SyntheticFemnistOptions {
  int num_clients = 50;
  int64_t classes = 10;
  int64_t image_size = 8;      // images are [1, S, S]
  int64_t mean_samples = 60;   // mean examples per client
  double label_alpha = 2.0;    // Dirichlet concentration of label mix
  double style_sigma = 0.6;    // per-writer additive style strength
  double noise_sigma = 0.35;   // per-example pixel noise
  /// Fraction of pixel positions each writer privately permutes — strong,
  /// learnable-locally feature skew (a stand-in for handwriting style).
  /// 0 disables.
  double permute_frac = 0.0;
  double train_frac = 0.7;
  double val_frac = 0.1;
  int64_t server_test_size = 512;
  uint64_t seed = 1;
};

FedDataset MakeSyntheticFemnist(const SyntheticFemnistOptions& options);

}  // namespace fedscope

#endif  // FEDSCOPE_DATA_SYNTHETIC_FEMNIST_H_
