#ifndef FEDSCOPE_DATA_PARTITION_H_
#define FEDSCOPE_DATA_PARTITION_H_

#include <cstdint>
#include <vector>

#include "fedscope/util/rng.h"

namespace fedscope {

/// Partitioners assign example indices (given their labels) to clients.
/// The Dirichlet / latent-Dirichlet-allocation partitioner is the actual
/// algorithm used by the paper for CIFAR-10 (Hsu et al., "Measuring the
/// effects of non-identical data distribution", §5.2 / Appendix G):
/// for each client, class proportions ~ Dirichlet(alpha); a smaller alpha
/// gives a more heterogeneous split.

/// IID: examples are shuffled and dealt uniformly to clients.
std::vector<std::vector<int64_t>> UniformPartition(
    const std::vector<int64_t>& labels, int num_clients, Rng* rng);

/// Non-IID label-skew partition via per-client Dirichlet class proportions.
/// Every client receives at least `min_per_client` examples.
std::vector<std::vector<int64_t>> DirichletPartition(
    const std::vector<int64_t>& labels, int num_clients, double alpha,
    Rng* rng, int64_t min_per_client = 2);

/// Partition where the given `rare_classes` are exclusively assigned to the
/// clients listed in `rare_owners` (bias-CIFAR of Appendix I / Figure 19);
/// remaining classes are spread Dirichlet(alpha) over *all* clients.
std::vector<std::vector<int64_t>> BiasedPartition(
    const std::vector<int64_t>& labels, int num_clients, double alpha,
    const std::vector<int64_t>& rare_classes,
    const std::vector<int>& rare_owners, Rng* rng);

/// Per-client class histograms: result[c][k] = #examples of class k held by
/// client c. Used to print the distribution figures (18 / 19).
std::vector<std::vector<int64_t>> PartitionClassCounts(
    const std::vector<int64_t>& labels,
    const std::vector<std::vector<int64_t>>& parts, int64_t num_classes);

}  // namespace fedscope

#endif  // FEDSCOPE_DATA_PARTITION_H_
