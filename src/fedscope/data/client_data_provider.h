#ifndef FEDSCOPE_DATA_CLIENT_DATA_PROVIDER_H_
#define FEDSCOPE_DATA_CLIENT_DATA_PROVIDER_H_

#include <vector>

#include "fedscope/data/dataset.h"
#include "fedscope/tensor/tensor.h"
#include "fedscope/util/rng.h"

namespace fedscope {

/// Lazy per-client data source for client virtualization (DESIGN.md §13).
/// A virtualized FedRunner holds only this provider; a client's local
/// splits are materialized when the ClientCache instantiates it and
/// dropped when the client is reclaimed. Implementations must be
/// deterministic: MaterializeClient(id) returns bit-identical splits on
/// every call, and TrainSize(id) equals the materialized train size
/// without building it (it feeds the synthesized join_in).
class ClientDataProvider {
 public:
  virtual ~ClientDataProvider() = default;
  virtual int num_clients() const = 0;
  virtual int64_t TrainSize(int id) const = 0;
  /// Builds client `id`'s local splits (1-based id).
  virtual SplitDataset MaterializeClient(int id) const = 0;
  virtual const Dataset& server_test() const = 0;
};

/// Adapts an eagerly built FedDataset: materialization returns a copy of
/// the stored partition, so a virtualized course over this provider is
/// bit-identical to the eager run over the same FedDataset.
class EagerDataProvider : public ClientDataProvider {
 public:
  /// `data` is borrowed and must outlive the provider.
  explicit EagerDataProvider(const FedDataset* data);

  int num_clients() const override;
  int64_t TrainSize(int id) const override;
  SplitDataset MaterializeClient(int id) const override;
  const Dataset& server_test() const override;

 private:
  const FedDataset* data_;
};

struct ProceduralDataOptions {
  int num_clients = 1000;
  /// Flat feature dimension (examples are [n, features] tensors).
  int64_t features = 16;
  int64_t classes = 4;
  int64_t train_per_client = 16;
  int64_t val_per_client = 4;
  int64_t test_per_client = 4;
  int64_t server_test_examples = 64;
  double noise_sigma = 0.6;
  uint64_t seed = 1;
};

/// Cross-device-scale data: each client's partition is derived on demand
/// from Rng(seed).Fork(id) around shared class prototypes, so holding a
/// 1M-client federation costs O(classes * features) memory, not
/// O(population * examples). Used by bench_scale.
class ProceduralDataProvider : public ClientDataProvider {
 public:
  explicit ProceduralDataProvider(ProceduralDataOptions options);

  int num_clients() const override { return options_.num_clients; }
  int64_t TrainSize(int /*id*/) const override {
    return options_.train_per_client;
  }
  SplitDataset MaterializeClient(int id) const override;
  const Dataset& server_test() const override { return server_test_; }

 private:
  Dataset Generate(int64_t n, Rng* rng) const;

  ProceduralDataOptions options_;
  std::vector<Tensor> prototypes_;  // one [features] prototype per class
  Dataset server_test_;
};

}  // namespace fedscope

#endif  // FEDSCOPE_DATA_CLIENT_DATA_PROVIDER_H_
