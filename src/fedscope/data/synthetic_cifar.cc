#include "fedscope/data/synthetic_cifar.h"

#include "fedscope/data/partition.h"
#include "fedscope/util/logging.h"

namespace fedscope {
namespace {

/// Generates `n` examples from the class prototypes with pixel noise.
Dataset GeneratePool(const std::vector<Tensor>& prototypes, int64_t n,
                     double noise_sigma, Rng* rng) {
  const auto& shape = prototypes[0].shape();
  Dataset pool;
  pool.x = Tensor({n, shape[0], shape[1], shape[2]});
  pool.labels.resize(n);
  const int64_t classes = static_cast<int64_t>(prototypes.size());
  for (int64_t i = 0; i < n; ++i) {
    const int64_t y = rng->UniformInt(0, classes - 1);
    pool.labels[i] = y;
    Tensor example = prototypes[y];
    for (int64_t j = 0; j < example.numel(); ++j) {
      example.at(j) += static_cast<float>(rng->Normal(0.0, noise_sigma));
    }
    pool.x.SetSlice(i, example);
  }
  return pool;
}

FedDataset AssembleFromPartition(
    const Dataset& pool, const std::vector<std::vector<int64_t>>& parts,
    const SyntheticCifarOptions& options, Rng* rng) {
  FedDataset fed;
  fed.clients.resize(parts.size());
  for (size_t c = 0; c < parts.size(); ++c) {
    Rng client_rng = rng->Fork(static_cast<uint64_t>(c) + 1000);
    fed.clients[c] = Split(pool.Subset(parts[c]), options.train_frac,
                           options.val_frac, &client_rng);
  }
  return fed;
}

std::vector<Tensor> MakePrototypes(const SyntheticCifarOptions& options,
                                   Rng* rng) {
  std::vector<Tensor> prototypes;
  prototypes.reserve(options.classes);
  for (int64_t k = 0; k < options.classes; ++k) {
    prototypes.push_back(Tensor::Randn(
        {options.channels, options.image_size, options.image_size}, rng));
  }
  return prototypes;
}

}  // namespace

FedDataset MakeSyntheticCifar(const SyntheticCifarOptions& options) {
  Rng rng(options.seed);
  auto prototypes = MakePrototypes(options, &rng);
  Dataset pool =
      GeneratePool(prototypes, options.pool_size, options.noise_sigma, &rng);

  std::vector<std::vector<int64_t>> parts;
  if (options.alpha <= 0.0) {
    parts = UniformPartition(pool.labels, options.num_clients, &rng);
  } else {
    parts =
        DirichletPartition(pool.labels, options.num_clients, options.alpha,
                           &rng, /*min_per_client=*/8);
  }
  FedDataset fed = AssembleFromPartition(pool, parts, options, &rng);

  Rng test_rng = rng.Fork(0xC1FA);
  fed.server_test = GeneratePool(prototypes, options.server_test_size,
                                 options.noise_sigma, &test_rng);
  return fed;
}

FedDataset MakeBiasSyntheticCifar(const SyntheticCifarOptions& options,
                                  const std::vector<int64_t>& rare_classes,
                                  const std::vector<int>& rare_owners) {
  FS_CHECK(!rare_owners.empty());
  Rng rng(options.seed);
  auto prototypes = MakePrototypes(options, &rng);
  Dataset pool =
      GeneratePool(prototypes, options.pool_size, options.noise_sigma, &rng);
  auto parts = BiasedPartition(
      pool.labels, options.num_clients,
      options.alpha > 0.0 ? options.alpha : 1.0, rare_classes, rare_owners,
      &rng);
  FedDataset fed = AssembleFromPartition(pool, parts, options, &rng);
  Rng test_rng = rng.Fork(0xC1FB);
  fed.server_test = GeneratePool(prototypes, options.server_test_size,
                                 options.noise_sigma, &test_rng);
  return fed;
}

}  // namespace fedscope
