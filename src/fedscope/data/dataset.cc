#include "fedscope/data/dataset.h"

#include <algorithm>

#include "fedscope/util/logging.h"

namespace fedscope {

Dataset Dataset::Subset(const std::vector<int64_t>& indices) const {
  Dataset out;
  out.x = BatchX(indices);
  out.labels = BatchY(indices);
  return out;
}

Tensor Dataset::BatchX(const std::vector<int64_t>& indices) const {
  FS_CHECK_GE(x.ndim(), 1);
  std::vector<int64_t> shape = x.shape();
  shape[0] = static_cast<int64_t>(indices.size());
  Tensor batch(shape);
  const int64_t stride = x.numel() / x.dim(0);
  for (size_t i = 0; i < indices.size(); ++i) {
    FS_CHECK_GE(indices[i], 0);
    FS_CHECK_LT(indices[i], x.dim(0));
    std::copy(x.data() + indices[i] * stride,
              x.data() + (indices[i] + 1) * stride,
              batch.data() + static_cast<int64_t>(i) * stride);
  }
  return batch;
}

std::vector<int64_t> Dataset::BatchY(const std::vector<int64_t>& indices) const {
  std::vector<int64_t> out(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) out[i] = labels[indices[i]];
  return out;
}

int64_t Dataset::NumClasses() const {
  int64_t max_label = -1;
  for (int64_t label : labels) max_label = std::max(max_label, label);
  return max_label + 1;
}

std::vector<int64_t> Dataset::ClassCounts() const {
  std::vector<int64_t> counts(NumClasses(), 0);
  for (int64_t label : labels) ++counts[label];
  return counts;
}

SplitDataset Split(const Dataset& data, double train_frac, double val_frac,
                   Rng* rng) {
  FS_CHECK_GE(train_frac, 0.0);
  FS_CHECK_GE(val_frac, 0.0);
  FS_CHECK_LE(train_frac + val_frac, 1.0);
  auto perm = rng->Permutation(data.size());
  const int64_t n_train = static_cast<int64_t>(train_frac * data.size());
  const int64_t n_val = static_cast<int64_t>(val_frac * data.size());
  std::vector<int64_t> train_idx(perm.begin(), perm.begin() + n_train);
  std::vector<int64_t> val_idx(perm.begin() + n_train,
                               perm.begin() + n_train + n_val);
  std::vector<int64_t> test_idx(perm.begin() + n_train + n_val, perm.end());
  SplitDataset out;
  out.train = data.Subset(train_idx);
  out.val = data.Subset(val_idx);
  out.test = data.Subset(test_idx);
  return out;
}

int64_t FedDataset::total_train_examples() const {
  int64_t n = 0;
  for (const auto& client : clients) n += client.train.size();
  return n;
}

}  // namespace fedscope
