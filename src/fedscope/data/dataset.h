#ifndef FEDSCOPE_DATA_DATASET_H_
#define FEDSCOPE_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fedscope/tensor/tensor.h"
#include "fedscope/util/rng.h"

namespace fedscope {

/// A supervised dataset: features x (leading dim = examples) and integer
/// labels. Value type; subsets copy data (datasets here are small by
/// construction).
struct Dataset {
  Tensor x;
  std::vector<int64_t> labels;

  int64_t size() const { return static_cast<int64_t>(labels.size()); }
  bool empty() const { return labels.empty(); }

  /// Selects the given examples into a new dataset.
  Dataset Subset(const std::vector<int64_t>& indices) const;

  /// Features of the given examples as a batch tensor.
  Tensor BatchX(const std::vector<int64_t>& indices) const;
  /// Labels of the given examples.
  std::vector<int64_t> BatchY(const std::vector<int64_t>& indices) const;

  /// Number of distinct label values (max label + 1).
  int64_t NumClasses() const;

  /// Per-class example counts (indexable up to NumClasses()).
  std::vector<int64_t> ClassCounts() const;
};

/// Splits a dataset into train/val/test by shuffled fractions.
struct SplitDataset {
  Dataset train;
  Dataset val;
  Dataset test;
};
SplitDataset Split(const Dataset& data, double train_frac, double val_frac,
                   Rng* rng);

/// A federated dataset: per-client splits plus a global held-out test set
/// at the server (how the paper tracks global-model accuracy).
struct FedDataset {
  std::vector<SplitDataset> clients;
  Dataset server_test;

  int num_clients() const { return static_cast<int>(clients.size()); }
  int64_t total_train_examples() const;
};

}  // namespace fedscope

#endif  // FEDSCOPE_DATA_DATASET_H_
