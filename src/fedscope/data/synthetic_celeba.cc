#include "fedscope/data/synthetic_celeba.h"

#include <cmath>

#include "fedscope/util/logging.h"

namespace fedscope {
namespace {

/// The shared attribute pattern: a horizontal band through the middle of
/// the image (think "smile" region), fixed across all identities.
Tensor AttributePattern(int64_t s, double strength) {
  Tensor pattern = Tensor::Zeros({1, s, s});
  const int64_t band = s / 2;
  for (int64_t w = 1; w + 1 < s; ++w) {
    pattern.at(band * s + w) = static_cast<float>(strength);
    if (band + 1 < s) {
      pattern.at((band + 1) * s + w) =
          static_cast<float>(strength * 0.5);
    }
  }
  return pattern;
}

}  // namespace

FedDataset MakeSyntheticCeleba(const SyntheticCelebaOptions& options) {
  FS_CHECK_GT(options.num_clients, 0);
  Rng rng(options.seed);
  const int64_t s = options.image_size;
  const Tensor attribute = AttributePattern(s, options.attribute_strength);
  // A shared "average face" all identities vary around.
  const Tensor mean_face = Tensor::Randn({1, s, s}, &rng, 0.5f);

  auto render = [&](const Tensor& identity, bool positive, double noise,
                    Rng* r) {
    Tensor x = mean_face;
    for (int64_t i = 0; i < x.numel(); ++i) {
      x.at(i) += identity.at(i) +
                 (positive ? attribute.at(i) : 0.0f) +
                 static_cast<float>(r->Normal(0.0, noise));
    }
    return x;
  };

  FedDataset fed;
  fed.clients.resize(options.num_clients);
  for (int c = 0; c < options.num_clients; ++c) {
    Rng client_rng = rng.Fork(c + 1);
    const Tensor identity = Tensor::Randn(
        {1, s, s}, &client_rng,
        static_cast<float>(options.identity_sigma));
    const int64_t n = std::max<int64_t>(
        6, static_cast<int64_t>(client_rng.Lognormal(
               std::log(static_cast<double>(options.mean_samples)), 0.4)));
    Dataset data;
    data.x = Tensor({n, 1, s, s});
    data.labels.resize(n);
    for (int64_t i = 0; i < n; ++i) {
      const bool positive = client_rng.Bernoulli(0.5);
      data.labels[i] = positive ? 1 : 0;
      data.x.SetSlice(
          i, render(identity, positive, options.noise_sigma, &client_rng));
    }
    fed.clients[c] =
        Split(data, options.train_frac, options.val_frac, &client_rng);
  }

  // Server test: unseen identities.
  Rng test_rng = rng.Fork(0xCE1B);
  Dataset test;
  test.x = Tensor({options.server_test_size, 1, s, s});
  test.labels.resize(options.server_test_size);
  for (int64_t i = 0; i < options.server_test_size; ++i) {
    const Tensor identity = Tensor::Randn(
        {1, s, s}, &test_rng,
        static_cast<float>(options.identity_sigma));
    const bool positive = test_rng.Bernoulli(0.5);
    test.labels[i] = positive ? 1 : 0;
    test.x.SetSlice(
        i, render(identity, positive, options.noise_sigma, &test_rng));
  }
  fed.server_test = std::move(test);
  return fed;
}

}  // namespace fedscope
