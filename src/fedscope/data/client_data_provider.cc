#include "fedscope/data/client_data_provider.h"

#include <utility>

#include "fedscope/util/logging.h"

namespace fedscope {

EagerDataProvider::EagerDataProvider(const FedDataset* data) : data_(data) {
  FS_CHECK(data_ != nullptr);
}

int EagerDataProvider::num_clients() const { return data_->num_clients(); }

int64_t EagerDataProvider::TrainSize(int id) const {
  FS_CHECK_GE(id, 1);
  FS_CHECK_LE(id, data_->num_clients());
  return data_->clients[id - 1].train.size();
}

SplitDataset EagerDataProvider::MaterializeClient(int id) const {
  FS_CHECK_GE(id, 1);
  FS_CHECK_LE(id, data_->num_clients());
  return data_->clients[id - 1];
}

const Dataset& EagerDataProvider::server_test() const {
  return data_->server_test;
}

ProceduralDataProvider::ProceduralDataProvider(ProceduralDataOptions options)
    : options_(std::move(options)) {
  FS_CHECK_GT(options_.num_clients, 0);
  FS_CHECK_GT(options_.classes, 0);
  Rng rng(options_.seed);
  prototypes_.reserve(options_.classes);
  for (int64_t k = 0; k < options_.classes; ++k) {
    prototypes_.push_back(Tensor::Randn({options_.features}, &rng));
  }
  Rng server_rng = rng.Fork(0);
  server_test_ = Generate(options_.server_test_examples, &server_rng);
}

Dataset ProceduralDataProvider::Generate(int64_t n, Rng* rng) const {
  Dataset out;
  out.x = Tensor({n, options_.features});
  out.labels.resize(n);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t y = rng->UniformInt(0, options_.classes - 1);
    out.labels[i] = y;
    Tensor example = prototypes_[y];
    for (int64_t j = 0; j < example.numel(); ++j) {
      example.at(j) +=
          static_cast<float>(rng->Normal(0.0, options_.noise_sigma));
    }
    out.x.SetSlice(i, example);
  }
  return out;
}

SplitDataset ProceduralDataProvider::MaterializeClient(int id) const {
  FS_CHECK_GE(id, 1);
  FS_CHECK_LE(id, options_.num_clients);
  // Per-client stream forked from the provider seed: repeated
  // materialization of the same id is bit-identical, which the
  // virtualization determinism contract requires.
  Rng rng = Rng(options_.seed).Fork(static_cast<uint64_t>(id));
  SplitDataset split;
  split.train = Generate(options_.train_per_client, &rng);
  split.val = Generate(options_.val_per_client, &rng);
  split.test = Generate(options_.test_per_client, &rng);
  return split;
}

}  // namespace fedscope
