#ifndef FEDSCOPE_DATA_SYNTHETIC_TWITTER_H_
#define FEDSCOPE_DATA_SYNTHETIC_TWITTER_H_

#include "fedscope/data/dataset.h"

namespace fedscope {

/// Laptop-scale stand-in for the Twitter sentiment dataset (DESIGN.md §2):
/// bag-of-words texts with a power-law vocabulary, two sentiment classes
/// with distinct word distributions, per-user topic mixtures, and highly
/// variable (power-law-ish) per-user text counts — matching the model
/// family (logistic regression on BoW) and heterogeneity style of §5.2.
struct SyntheticTwitterOptions {
  int num_clients = 200;
  int64_t vocab = 60;            // embedding_size stand-in
  int64_t words_per_text = 20;   // mean tokens per text
  int64_t min_texts = 2;         // min texts per user
  int64_t max_texts = 16;        // max texts per user (power-law between)
  double user_style_strength = 0.4;  // mix of user-specific word habits
  double train_frac = 0.6;
  double val_frac = 0.2;
  int64_t server_test_size = 512;
  uint64_t seed = 3;
};

FedDataset MakeSyntheticTwitter(const SyntheticTwitterOptions& options);

}  // namespace fedscope

#endif  // FEDSCOPE_DATA_SYNTHETIC_TWITTER_H_
