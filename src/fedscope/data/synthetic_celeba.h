#ifndef FEDSCOPE_DATA_SYNTHETIC_CELEBA_H_
#define FEDSCOPE_DATA_SYNTHETIC_CELEBA_H_

#include "fedscope/data/dataset.h"

namespace fedscope {

/// Laptop-scale stand-in for CelebA (LEAF partitions by celebrity; the task
/// is binary attribute classification, e.g. "smiling"): every client is an
/// identity with a private base face (identity prototype); the positive
/// class adds a localized attribute pattern (a band across the image).
/// Preserves the benchmark's structure: many small clients, a shared
/// binary concept on top of strong per-client appearance variation.
struct SyntheticCelebaOptions {
  int num_clients = 40;
  int64_t image_size = 8;     // images are [1, S, S]
  int64_t mean_samples = 24;  // images per identity
  double identity_sigma = 0.8;  // strength of the private base face
  double attribute_strength = 1.4;
  double noise_sigma = 0.5;
  double train_frac = 0.7;
  double val_frac = 0.1;
  int64_t server_test_size = 256;
  uint64_t seed = 8;
};

FedDataset MakeSyntheticCeleba(const SyntheticCelebaOptions& options);

}  // namespace fedscope

#endif  // FEDSCOPE_DATA_SYNTHETIC_CELEBA_H_
