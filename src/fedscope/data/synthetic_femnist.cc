#include "fedscope/data/synthetic_femnist.h"

#include <algorithm>
#include <cmath>

#include "fedscope/util/logging.h"

namespace fedscope {
namespace {

struct WriterStyle {
  double contrast;
  double offset;
  Tensor style;  // additive pattern [1, S, S]
  /// Private pixel permutation (identity when empty).
  std::vector<int64_t> permutation;
};

/// Builds a permutation that shuffles `frac` of the positions and fixes
/// the rest.
std::vector<int64_t> MakePartialPermutation(int64_t n, double frac,
                                            Rng* rng) {
  std::vector<int64_t> perm(n);
  for (int64_t i = 0; i < n; ++i) perm[i] = i;
  if (frac <= 0.0) return perm;
  auto chosen = rng->SampleWithoutReplacement(
      n, std::max<int64_t>(2, static_cast<int64_t>(frac * n)));
  std::vector<int64_t> targets = chosen;
  rng->Shuffle(&targets);
  for (size_t i = 0; i < chosen.size(); ++i) perm[chosen[i]] = targets[i];
  return perm;
}

Tensor RenderExample(const Tensor& prototype, const WriterStyle& style,
                     double noise_sigma, Rng* rng) {
  Tensor base = prototype;
  for (int64_t i = 0; i < base.numel(); ++i) {
    base.at(i) = static_cast<float>(
        style.contrast * base.at(i) + style.offset + style.style.at(i) +
        rng->Normal(0.0, noise_sigma));
  }
  if (style.permutation.empty()) return base;
  Tensor x(base.shape());
  for (int64_t i = 0; i < x.numel(); ++i) {
    x.at(i) = base.at(style.permutation[i]);
  }
  return x;
}

}  // namespace

FedDataset MakeSyntheticFemnist(const SyntheticFemnistOptions& options) {
  FS_CHECK_GT(options.num_clients, 0);
  Rng rng(options.seed);
  const int64_t s = options.image_size;

  // Global class prototypes, shared across all writers.
  std::vector<Tensor> prototypes;
  prototypes.reserve(options.classes);
  for (int64_t k = 0; k < options.classes; ++k) {
    prototypes.push_back(Tensor::Randn({1, s, s}, &rng));
  }

  FedDataset fed;
  fed.clients.resize(options.num_clients);
  for (int c = 0; c < options.num_clients; ++c) {
    Rng client_rng = rng.Fork(static_cast<uint64_t>(c) + 1);
    WriterStyle style{
        client_rng.Uniform(0.7, 1.3),
        client_rng.Normal(0.0, 0.3),
        Tensor::Randn({1, s, s}, &client_rng,
                      static_cast<float>(options.style_sigma)),
        MakePartialPermutation(s * s, options.permute_frac, &client_rng),
    };
    auto label_mix = client_rng.Dirichlet(
        std::vector<double>(options.classes, options.label_alpha));
    const int64_t n = std::max<int64_t>(
        8, static_cast<int64_t>(client_rng.Lognormal(
               std::log(static_cast<double>(options.mean_samples)), 0.4)));

    Dataset data;
    data.x = Tensor({n, 1, s, s});
    data.labels.resize(n);
    for (int64_t i = 0; i < n; ++i) {
      const int64_t y = client_rng.Categorical(label_mix);
      data.labels[i] = y;
      data.x.SetSlice(i, RenderExample(prototypes[y], style,
                                       options.noise_sigma, &client_rng));
    }
    fed.clients[c] =
        Split(data, options.train_frac, options.val_frac, &client_rng);
  }

  // Server-side held-out test set: style-neutral examples (no writer
  // distortion) with uniform labels, measuring global-model quality.
  Rng test_rng = rng.Fork(0xFEDC);
  WriterStyle neutral{1.0, 0.0, Tensor::Zeros({1, s, s}), {}};
  Dataset test;
  test.x = Tensor({options.server_test_size, 1, s, s});
  test.labels.resize(options.server_test_size);
  for (int64_t i = 0; i < options.server_test_size; ++i) {
    const int64_t y = test_rng.UniformInt(0, options.classes - 1);
    test.labels[i] = y;
    test.x.SetSlice(i, RenderExample(prototypes[y], neutral,
                                     options.noise_sigma, &test_rng));
  }
  fed.server_test = std::move(test);
  return fed;
}

}  // namespace fedscope
