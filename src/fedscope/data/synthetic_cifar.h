#ifndef FEDSCOPE_DATA_SYNTHETIC_CIFAR_H_
#define FEDSCOPE_DATA_SYNTHETIC_CIFAR_H_

#include <vector>

#include "fedscope/data/dataset.h"

namespace fedscope {

/// Laptop-scale stand-in for CIFAR-10 (DESIGN.md §2): a 10-class image pool
/// (class-prototype Gaussians over [C, S, S] pixels) partitioned across
/// clients with the *actual* Dirichlet/LDA partitioner of Hsu et al. used
/// by the paper. The non-IIDness knob is `alpha` exactly as in Table 4 and
/// Appendix G.
struct SyntheticCifarOptions {
  int num_clients = 100;
  int64_t classes = 10;
  int64_t channels = 3;
  int64_t image_size = 8;
  int64_t pool_size = 6000;   // size of the global example pool
  double noise_sigma = 0.6;   // per-example pixel noise
  /// Dirichlet concentration; <= 0 means IID (uniform partition).
  double alpha = 0.5;
  double train_frac = 0.7;
  double val_frac = 0.1;
  int64_t server_test_size = 512;
  uint64_t seed = 2;
};

FedDataset MakeSyntheticCifar(const SyntheticCifarOptions& options);

/// bias-CIFAR (Appendix I, Figure 19): `rare_classes` occur only on the
/// clients listed in `rare_owners` (in the experiments: the slow clients),
/// coupling the data distribution to system resources.
FedDataset MakeBiasSyntheticCifar(const SyntheticCifarOptions& options,
                                  const std::vector<int64_t>& rare_classes,
                                  const std::vector<int>& rare_owners);

}  // namespace fedscope

#endif  // FEDSCOPE_DATA_SYNTHETIC_CIFAR_H_
