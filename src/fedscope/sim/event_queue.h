#ifndef FEDSCOPE_SIM_EVENT_QUEUE_H_
#define FEDSCOPE_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <vector>

#include "fedscope/comm/message.h"
#include "fedscope/obs/obs_context.h"

namespace fedscope {

/// Discrete-event queue keyed by virtual timestamps. This implements the
/// paper's measurement methodology (§5.3.1): the server "handles the
/// received messages in the order of their timestamps", and broadcasts
/// inherit the timestamp of the triggering message.
///
/// Tie-break contract: messages with equal timestamps pop in insertion
/// order (FIFO by push sequence). This is load-bearing, not incidental —
/// it makes same-seed runs deterministic, and the threaded execution
/// backend's canonical commit order (DESIGN.md §12) is defined as exactly
/// this pop order. EventQueueTest.EqualTimestampsPopInInsertionOrder pins
/// it.
class EventQueue {
 public:
  /// Enqueues a message for delivery at msg.timestamp.
  void Push(Message msg);

  bool Empty() const { return heap_.empty(); }
  size_t Size() const { return heap_.size(); }

  /// Virtual time of the earliest pending message.
  double PeekTime() const;

  /// Removes and returns the earliest message (FIFO among equal times).
  Message Pop();

  /// Every message sharing the earliest virtual time, in pop (insertion)
  /// order, without removing any. The returned pointers are invalidated
  /// by the next Push or Pop. The threaded backend uses this to form a
  /// parallel batch: as long as every interleaved Push carries a
  /// timestamp >= the batch time (worker sends always do — BaseWorker
  /// clamps), subsequent Pops return exactly these messages in exactly
  /// this order.
  std::vector<const Message*> PeekReadyBatch() const;

  /// Total number of messages ever pushed (diagnostics).
  int64_t total_pushed() const { return seq_; }

  /// Attaches observability sinks (borrowed; null restores the no-op
  /// default). Push/Pop then maintain event counters and queue-depth
  /// gauges (fs_sim_events_*_total, fs_sim_queue_depth{,_peak}).
  void set_obs(const ObsContext* obs) { obs_ = obs; }

 private:
  struct Entry {
    double time;
    int64_t seq;
    Message msg;
  };
  /// Heap comparator: "a is later than b" — std::*_heap with this keeps
  /// the earliest (time, seq) entry at the front.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  /// Binary heap managed with std::push_heap/std::pop_heap (rather than
  /// std::priority_queue) so PeekReadyBatch can scan the entries.
  std::vector<Entry> heap_;
  int64_t seq_ = 0;
  const ObsContext* obs_ = nullptr;
};

}  // namespace fedscope

#endif  // FEDSCOPE_SIM_EVENT_QUEUE_H_
