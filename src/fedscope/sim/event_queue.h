#ifndef FEDSCOPE_SIM_EVENT_QUEUE_H_
#define FEDSCOPE_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "fedscope/comm/message.h"
#include "fedscope/obs/obs_context.h"

namespace fedscope {

/// Discrete-event queue keyed by virtual timestamps. This implements the
/// paper's measurement methodology (§5.3.1): the server "handles the
/// received messages in the order of their timestamps", and broadcasts
/// inherit the timestamp of the triggering message. Ties are broken by
/// insertion sequence to keep runs deterministic.
class EventQueue {
 public:
  /// Enqueues a message for delivery at msg.timestamp.
  void Push(Message msg);

  bool Empty() const { return heap_.empty(); }
  size_t Size() const { return heap_.size(); }

  /// Virtual time of the earliest pending message.
  double PeekTime() const;

  /// Removes and returns the earliest message.
  Message Pop();

  /// Total number of messages ever pushed (diagnostics).
  int64_t total_pushed() const { return seq_; }

  /// Attaches observability sinks (borrowed; null restores the no-op
  /// default). Push/Pop then maintain event counters and queue-depth
  /// gauges (fs_sim_events_*_total, fs_sim_queue_depth{,_peak}).
  void set_obs(const ObsContext* obs) { obs_ = obs; }

 private:
  struct Entry {
    double time;
    int64_t seq;
    Message msg;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  int64_t seq_ = 0;
  const ObsContext* obs_ = nullptr;
};

}  // namespace fedscope

#endif  // FEDSCOPE_SIM_EVENT_QUEUE_H_
