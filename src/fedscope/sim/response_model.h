#ifndef FEDSCOPE_SIM_RESPONSE_MODEL_H_
#define FEDSCOPE_SIM_RESPONSE_MODEL_H_

#include <cstdint>

#include "fedscope/sim/device_profile.h"
#include "fedscope/util/rng.h"

namespace fedscope {

/// Describes one unit of simulated client work, used to estimate virtual
/// execution time the same way FedScale estimates client latency from
/// device traces (paper §5.3.1).
struct WorkEstimate {
  /// Number of examples processed during local training
  /// (local_steps * batch_size).
  int64_t samples_processed = 0;
  /// Downlink message size (server -> client), bytes.
  int64_t down_bytes = 0;
  /// Uplink message size (client -> server), bytes.
  int64_t up_bytes = 0;
};

/// Outcome of simulating one client response.
struct ResponseOutcome {
  /// The client crashed / dropped off and will never answer.
  bool crashed = false;
  /// Virtual seconds from receiving the broadcast to the server receiving
  /// the reply (download + compute + upload + jitter).
  double latency_seconds = 0.0;
};

/// Converts device profiles + work into virtual latencies, with
/// multiplicative lognormal jitter to model run-to-run variation.
class ResponseModel {
 public:
  /// `jitter_sigma` is the sigma of the lognormal noise multiplier
  /// (0 disables jitter).
  explicit ResponseModel(double jitter_sigma = 0.2)
      : jitter_sigma_(jitter_sigma) {}

  ResponseOutcome Simulate(const DeviceProfile& device,
                           const WorkEstimate& work, Rng* rng) const;

  /// Deterministic expected latency (no jitter, no crash), used by
  /// group/responsiveness samplers that rely on *prior* knowledge of
  /// response speed.
  double ExpectedLatency(const DeviceProfile& device,
                         const WorkEstimate& work) const;

 private:
  double jitter_sigma_;
};

}  // namespace fedscope

#endif  // FEDSCOPE_SIM_RESPONSE_MODEL_H_
