#include "fedscope/sim/device_profile.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "fedscope/util/logging.h"

namespace fedscope {

std::vector<DeviceProfile> MakeFleet(int n, const FleetOptions& options,
                                     Rng* rng) {
  FS_CHECK_GT(n, 0);
  std::vector<DeviceProfile> fleet(n);
  const double compute_mu = std::log(options.compute_median);
  const double bw_mu = std::log(options.bandwidth_median);
  for (int i = 0; i < n; ++i) {
    DeviceProfile& d = fleet[i];
    d.compute_speed = rng->Lognormal(compute_mu, options.compute_sigma);
    d.up_bandwidth = rng->Lognormal(bw_mu, options.bandwidth_sigma);
    d.down_bandwidth = rng->Lognormal(bw_mu, options.bandwidth_sigma);
    if (rng->Bernoulli(options.straggler_frac)) {
      d.compute_speed *= options.straggler_slowdown;
      d.up_bandwidth *= options.straggler_slowdown;
      d.down_bandwidth *= options.straggler_slowdown;
    }
    d.crash_prob = options.crash_prob;
  }
  return fleet;
}

Result<std::vector<DeviceProfile>> ParseFleetTrace(const std::string& csv) {
  std::vector<DeviceProfile> fleet;
  size_t line_start = 0;
  int line_no = 0;
  while (line_start <= csv.size()) {
    size_t line_end = csv.find('\n', line_start);
    if (line_end == std::string::npos) line_end = csv.size();
    std::string line = csv.substr(line_start, line_end - line_start);
    line_start = line_end + 1;
    ++line_no;
    // Strip comments and whitespace-only lines.
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      if (line_end == csv.size()) break;
      continue;
    }
    std::vector<double> fields;
    size_t pos = 0;
    while (pos <= line.size()) {
      size_t comma = line.find(',', pos);
      if (comma == std::string::npos) comma = line.size();
      const std::string field = line.substr(pos, comma - pos);
      char* end = nullptr;
      const double value = std::strtod(field.c_str(), &end);
      if (end == field.c_str()) {
        return Status::InvalidArgument("trace line " +
                                       std::to_string(line_no) +
                                       ": bad field '" + field + "'");
      }
      fields.push_back(value);
      pos = comma + 1;
    }
    if (fields.size() < 3 || fields.size() > 4) {
      return Status::InvalidArgument(
          "trace line " + std::to_string(line_no) +
          ": expected 3-4 fields, got " + std::to_string(fields.size()));
    }
    DeviceProfile device;
    device.compute_speed = fields[0];
    device.up_bandwidth = fields[1];
    device.down_bandwidth = fields[2];
    device.crash_prob = fields.size() == 4 ? fields[3] : 0.0;
    if (device.compute_speed <= 0.0 || device.up_bandwidth <= 0.0 ||
        device.down_bandwidth <= 0.0 || device.crash_prob < 0.0 ||
        device.crash_prob > 1.0) {
      return Status::InvalidArgument("trace line " +
                                     std::to_string(line_no) +
                                     ": out-of-range value");
    }
    fleet.push_back(device);
    if (line_end == csv.size()) break;
  }
  if (fleet.empty()) return Status::InvalidArgument("empty fleet trace");
  return fleet;
}

std::string FleetToTrace(const std::vector<DeviceProfile>& fleet) {
  std::string out =
      "# compute_speed,up_bandwidth,down_bandwidth,crash_prob\n";
  char line[160];
  for (const auto& device : fleet) {
    std::snprintf(line, sizeof(line), "%.6g,%.6g,%.6g,%.6g\n",
                  device.compute_speed, device.up_bandwidth,
                  device.down_bandwidth, device.crash_prob);
    out += line;
  }
  return out;
}

std::vector<double> ResponsivenessScores(
    const std::vector<DeviceProfile>& fleet) {
  std::vector<double> scores(fleet.size());
  for (size_t i = 0; i < fleet.size(); ++i) {
    // Harmonic combination of compute and communication capability: the
    // response time is dominated by the slower of the two resources.
    const double compute = fleet[i].compute_speed;
    const double bw = std::min(fleet[i].up_bandwidth, fleet[i].down_bandwidth);
    scores[i] = 2.0 / (1.0 / std::max(compute, 1e-9) +
                       1.0 / std::max(bw / 1e4, 1e-9));
  }
  return scores;
}

std::vector<std::vector<int>> GroupByResponsiveness(
    const std::vector<DeviceProfile>& fleet, int num_groups) {
  FS_CHECK_GT(num_groups, 0);
  auto scores = ResponsivenessScores(fleet);
  std::vector<int> order(fleet.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return scores[a] > scores[b]; });
  std::vector<std::vector<int>> groups(num_groups);
  const size_t per_group =
      (fleet.size() + static_cast<size_t>(num_groups) - 1) /
      static_cast<size_t>(num_groups);
  for (size_t rank = 0; rank < order.size(); ++rank) {
    groups[std::min<size_t>(rank / per_group, num_groups - 1)].push_back(
        order[rank]);
  }
  return groups;
}

}  // namespace fedscope
