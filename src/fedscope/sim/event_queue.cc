#include "fedscope/sim/event_queue.h"

#include <algorithm>

#include "fedscope/util/logging.h"

namespace fedscope {

void EventQueue::Push(Message msg) {
  if (obs_ != nullptr && obs_->recording_metrics()) {
    obs_->Count("fs_sim_events_pushed_total", 1.0, {{"type", msg.msg_type}});
    const double depth = static_cast<double>(heap_.size() + 1);
    obs_->SetGauge("fs_sim_queue_depth", depth);
    obs_->MaxGauge("fs_sim_queue_depth_peak", depth);
  }
  heap_.push_back(Entry{msg.timestamp, seq_++, std::move(msg)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

double EventQueue::PeekTime() const {
  FS_CHECK(!heap_.empty());
  return heap_.front().time;
}

Message EventQueue::Pop() {
  FS_CHECK(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Message msg = std::move(heap_.back().msg);
  heap_.pop_back();
  if (obs_ != nullptr && obs_->recording_metrics()) {
    obs_->Count("fs_sim_events_dispatched_total", 1.0,
                {{"type", msg.msg_type}});
    obs_->SetGauge("fs_sim_queue_depth", static_cast<double>(heap_.size()));
  }
  return msg;
}

std::vector<const Message*> EventQueue::PeekReadyBatch() const {
  std::vector<const Message*> batch;
  if (heap_.empty()) return batch;
  const double t = heap_.front().time;
  // Equal-time entries are scattered through the heap array; collect and
  // order them by push sequence (== pop order). O(n log n) in the queue
  // size, which stays small relative to one client training task.
  std::vector<const Entry*> ready;
  for (const Entry& entry : heap_) {
    if (entry.time == t) ready.push_back(&entry);
  }
  std::sort(ready.begin(), ready.end(),
            [](const Entry* a, const Entry* b) { return a->seq < b->seq; });
  batch.reserve(ready.size());
  for (const Entry* entry : ready) batch.push_back(&entry->msg);
  return batch;
}

}  // namespace fedscope
