#include "fedscope/sim/event_queue.h"

#include "fedscope/util/logging.h"

namespace fedscope {

void EventQueue::Push(Message msg) {
  if (obs_ != nullptr && obs_->metrics != nullptr) {
    obs_->Count("fs_sim_events_pushed_total", 1.0, {{"type", msg.msg_type}});
    const double depth = static_cast<double>(heap_.size() + 1);
    obs_->SetGauge("fs_sim_queue_depth", depth);
    obs_->MaxGauge("fs_sim_queue_depth_peak", depth);
  }
  heap_.push(Entry{msg.timestamp, seq_++, std::move(msg)});
}

double EventQueue::PeekTime() const {
  FS_CHECK(!heap_.empty());
  return heap_.top().time;
}

Message EventQueue::Pop() {
  FS_CHECK(!heap_.empty());
  // priority_queue::top() is const; the copy here is acceptable because
  // message payloads are shared-nothing value types and Pop is not on the
  // inner training loop's critical path.
  Message msg = heap_.top().msg;
  heap_.pop();
  if (obs_ != nullptr && obs_->metrics != nullptr) {
    obs_->Count("fs_sim_events_dispatched_total", 1.0,
                {{"type", msg.msg_type}});
    obs_->SetGauge("fs_sim_queue_depth", static_cast<double>(heap_.size()));
  }
  return msg;
}

}  // namespace fedscope
