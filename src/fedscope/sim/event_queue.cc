#include "fedscope/sim/event_queue.h"

#include "fedscope/util/logging.h"

namespace fedscope {

void EventQueue::Push(Message msg) {
  heap_.push(Entry{msg.timestamp, seq_++, std::move(msg)});
}

double EventQueue::PeekTime() const {
  FS_CHECK(!heap_.empty());
  return heap_.top().time;
}

Message EventQueue::Pop() {
  FS_CHECK(!heap_.empty());
  // priority_queue::top() is const; the copy here is acceptable because
  // message payloads are shared-nothing value types and Pop is not on the
  // inner training loop's critical path.
  Message msg = heap_.top().msg;
  heap_.pop();
  return msg;
}

}  // namespace fedscope
