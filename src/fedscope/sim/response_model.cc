#include "fedscope/sim/response_model.h"

#include <algorithm>
#include <cmath>

#include "fedscope/util/logging.h"

namespace fedscope {

double ResponseModel::ExpectedLatency(const DeviceProfile& device,
                                      const WorkEstimate& work) const {
  const double down = static_cast<double>(work.down_bytes) /
                      std::max(device.down_bandwidth, 1e-9);
  const double compute = static_cast<double>(work.samples_processed) /
                         std::max(device.compute_speed, 1e-9);
  const double up = static_cast<double>(work.up_bytes) /
                    std::max(device.up_bandwidth, 1e-9);
  return down + compute + up;
}

ResponseOutcome ResponseModel::Simulate(const DeviceProfile& device,
                                        const WorkEstimate& work,
                                        Rng* rng) const {
  ResponseOutcome outcome;
  if (device.crash_prob > 0.0 && rng->Bernoulli(device.crash_prob)) {
    outcome.crashed = true;
    return outcome;
  }
  double latency = ExpectedLatency(device, work);
  if (jitter_sigma_ > 0.0) {
    latency *= rng->Lognormal(0.0, jitter_sigma_);
  }
  outcome.latency_seconds = std::max(latency, 1e-6);
  return outcome;
}

}  // namespace fedscope
