#ifndef FEDSCOPE_SIM_DEVICE_PROFILE_H_
#define FEDSCOPE_SIM_DEVICE_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fedscope/util/rng.h"
#include "fedscope/util/status.h"

namespace fedscope {

/// Per-client system resources (the "heterogeneity in participants'
/// resources" of §1). Stands in for FedScale's device traces: compute
/// speed and bandwidth are drawn from heavy-tailed lognormal distributions
/// so that a realistic population of stragglers emerges.
struct DeviceProfile {
  /// Training throughput in samples/second.
  double compute_speed = 100.0;
  /// Uplink and downlink bandwidth in bytes/second.
  double up_bandwidth = 1e6;
  double down_bandwidth = 1e6;
  /// Probability that a given local-training request is lost entirely
  /// (device crash / network drop); the client never responds.
  double crash_prob = 0.0;
};

/// Parameters of the synthetic fleet generator.
struct FleetOptions {
  /// Median compute speed (samples/sec) and lognormal sigma.
  double compute_median = 200.0;
  double compute_sigma = 0.8;
  /// Median bandwidth (bytes/sec) and lognormal sigma.
  double bandwidth_median = 2e6;
  double bandwidth_sigma = 0.8;
  /// Fraction of clients that are extreme stragglers.
  double straggler_frac = 0.1;
  /// Speed multiplier applied to stragglers (0.1 = 10x slower).
  double straggler_slowdown = 0.1;
  /// Per-round crash probability for every client.
  double crash_prob = 0.0;
};

/// Generates `n` heterogeneous device profiles.
std::vector<DeviceProfile> MakeFleet(int n, const FleetOptions& options,
                                     Rng* rng);

/// Parses a FedScale-style device-trace table: one device per line,
/// `compute_speed,up_bandwidth,down_bandwidth[,crash_prob]` (comments with
/// '#' and blank lines allowed). This is how real trace data would drive
/// the simulator instead of the synthetic lognormal fleet.
Result<std::vector<DeviceProfile>> ParseFleetTrace(const std::string& csv);

/// Renders a fleet back into the trace format (round-trips ParseFleetTrace).
std::string FleetToTrace(const std::vector<DeviceProfile>& fleet);

/// Ranks clients by a responsiveness score (higher = faster). Used by the
/// responsiveness-related and group sampling strategies, and by the
/// bias-CIFAR data generator that couples rare labels to slow clients.
std::vector<double> ResponsivenessScores(
    const std::vector<DeviceProfile>& fleet);

/// Partitions client ids into `num_groups` groups of similar responsiveness
/// (group 0 = fastest).
std::vector<std::vector<int>> GroupByResponsiveness(
    const std::vector<DeviceProfile>& fleet, int num_groups);

}  // namespace fedscope

#endif  // FEDSCOPE_SIM_DEVICE_PROFILE_H_
