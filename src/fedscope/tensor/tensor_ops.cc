#include "fedscope/tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

#include "fedscope/tensor/kernels.h"
#include "fedscope/util/logging.h"

namespace fedscope {

Tensor Add(const Tensor& a, const Tensor& b) {
  FS_CHECK(a.SameShape(b)) << a.ShapeString() << " vs " << b.ShapeString();
  Tensor out = a;
  AddInPlace(&out, b);
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  FS_CHECK(a.SameShape(b)) << a.ShapeString() << " vs " << b.ShapeString();
  Tensor out = a;
  Axpy(&out, -1.0f, b);
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  FS_CHECK(a.SameShape(b));
  Tensor out = a;
  float* po = out.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < out.numel(); ++i) po[i] *= pb[i];
  return out;
}

Tensor Scale(const Tensor& a, float s) {
  Tensor out = a;
  ScaleInPlace(&out, s);
  return out;
}

void AddInPlace(Tensor* a, const Tensor& b) {
  FS_CHECK(a->SameShape(b)) << a->ShapeString() << " vs " << b.ShapeString();
  float* pa = a->data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a->numel(); ++i) pa[i] += pb[i];
}

void Axpy(Tensor* a, float alpha, const Tensor& b) {
  FS_CHECK_EQ(a->numel(), b.numel());
  float* pa = a->data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a->numel(); ++i) pa[i] += alpha * pb[i];
}

void ScaleInPlace(Tensor* a, float s) {
  float* pa = a->data();
  for (int64_t i = 0; i < a->numel(); ++i) pa[i] *= s;
}

void ZeroInPlace(Tensor* a) {
  std::fill(a->storage().begin(), a->storage().end(), 0.0f);
}

double Dot(const Tensor& a, const Tensor& b) {
  FS_CHECK_EQ(a.numel(), b.numel());
  double acc = 0.0;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    acc += static_cast<double>(pa[i]) * static_cast<double>(pb[i]);
  }
  return acc;
}

double SquaredNorm(const Tensor& a) { return Dot(a, a); }

double Norm(const Tensor& a) { return std::sqrt(SquaredNorm(a)); }

double Sum(const Tensor& a) {
  double acc = 0.0;
  const float* pa = a.data();
  for (int64_t i = 0; i < a.numel(); ++i) acc += pa[i];
  return acc;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  FS_CHECK_EQ(a.ndim(), 2);
  FS_CHECK_EQ(b.ndim(), 2);
  FS_CHECK_EQ(a.dim(1), b.dim(0));
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  kernels::Gemm(m, n, k, a.data(), b.data(), c.data());
  return c;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  FS_CHECK_EQ(a.ndim(), 2);
  FS_CHECK_EQ(b.ndim(), 2);
  FS_CHECK_EQ(a.dim(0), b.dim(0));
  const int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  kernels::GemmTransA(m, n, k, a.data(), b.data(), c.data());
  return c;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  FS_CHECK_EQ(a.ndim(), 2);
  FS_CHECK_EQ(b.ndim(), 2);
  FS_CHECK_EQ(a.dim(1), b.dim(1));
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor c({m, n});
  kernels::GemmTransB(m, n, k, a.data(), b.data(), c.data());
  return c;
}

Tensor Softmax(const Tensor& logits) {
  FS_CHECK_EQ(logits.ndim(), 2);
  const int64_t batch = logits.dim(0), classes = logits.dim(1);
  Tensor probs({batch, classes});
  for (int64_t i = 0; i < batch; ++i) {
    const float* in = logits.data() + i * classes;
    float* out = probs.data() + i * classes;
    float max_logit = in[0];
    for (int64_t c = 1; c < classes; ++c) {
      max_logit = std::max(max_logit, in[c]);
    }
    double denom = 0.0;
    for (int64_t c = 0; c < classes; ++c) {
      double e = std::exp(static_cast<double>(in[c] - max_logit));
      out[c] = static_cast<float>(e);
      denom += e;
    }
    for (int64_t c = 0; c < classes; ++c) {
      out[c] = static_cast<float>(out[c] / denom);
    }
  }
  return probs;
}

std::vector<int64_t> ArgmaxRows(const Tensor& scores) {
  FS_CHECK_EQ(scores.ndim(), 2);
  const int64_t rows = scores.dim(0), classes = scores.dim(1);
  std::vector<int64_t> out(rows);
  for (int64_t i = 0; i < rows; ++i) {
    const float* row = scores.data() + i * classes;
    int64_t best = 0;
    float best_val = row[0];
    for (int64_t c = 1; c < classes; ++c) {
      if (row[c] > best_val) {
        best = c;
        best_val = row[c];
      }
    }
    out[i] = best;
  }
  return out;
}

double ClipByNorm(Tensor* t, double max_norm) {
  FS_CHECK_GT(max_norm, 0.0);
  double norm = Norm(*t);
  if (norm > max_norm) {
    ScaleInPlace(t, static_cast<float>(max_norm / norm));
  }
  return norm;
}

}  // namespace fedscope
