#include "fedscope/tensor/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

namespace fedscope {
namespace kernels {
namespace {

// Register-blocked micro-tile: MR rows of C by kNr columns, accumulators
// held in registers across the whole k loop. A is addressed through strides
// (as_i, as_k) so the same kernel serves Gemm (as_i=k, as_k=1) and
// GemmTransA (as_i=1, as_k=m). Accumulation is ascending-k float adds per
// output element — identical to the scalar reference chain.
constexpr int64_t kMr = 8;
constexpr int64_t kNr = 32;

void MicroTile(const float* __restrict__ a, int64_t as_i, int64_t as_k,
               const float* __restrict__ b, int64_t ldb,
               float* __restrict__ c, int64_t ldc, int64_t k) {
  float acc[kMr][kNr];
  for (int64_t r = 0; r < kMr; ++r) {
    for (int64_t j = 0; j < kNr; ++j) acc[r][j] = 0.0f;
  }
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* brow = b + kk * ldb;
    float bv[kNr];
    for (int64_t j = 0; j < kNr; ++j) bv[j] = brow[j];
    for (int64_t r = 0; r < kMr; ++r) {
      const float av = a[r * as_i + kk * as_k];
      for (int64_t j = 0; j < kNr; ++j) acc[r][j] += av * bv[j];
    }
  }
  for (int64_t r = 0; r < kMr; ++r) {
    float* crow = c + r * ldc;
    for (int64_t j = 0; j < kNr; ++j) crow[j] += acc[r][j];
  }
}

// Edge tile with runtime extents mr <= kMr, nr <= kNr; same chain order.
void MicroTileEdge(const float* __restrict__ a, int64_t as_i, int64_t as_k,
                   const float* __restrict__ b, int64_t ldb,
                   float* __restrict__ c, int64_t ldc, int64_t k, int64_t mr,
                   int64_t nr) {
  float acc[kMr][kNr] = {};
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* brow = b + kk * ldb;
    for (int64_t r = 0; r < mr; ++r) {
      const float av = a[r * as_i + kk * as_k];
      for (int64_t j = 0; j < nr; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (int64_t r = 0; r < mr; ++r) {
    float* crow = c + r * ldc;
    for (int64_t j = 0; j < nr; ++j) crow[j] += acc[r][j];
  }
}

// c[m, n] += A @ b where A(i, kk) = a[i*as_i + kk*as_k], b row-major [k, n].
void GemmStrided(int64_t m, int64_t n, int64_t k, const float* a,
                 int64_t as_i, int64_t as_k, const float* b, float* c) {
  int64_t i = 0;
  for (; i + kMr <= m; i += kMr) {
    const float* ai = a + i * as_i;
    int64_t j = 0;
    for (; j + kNr <= n; j += kNr) {
      MicroTile(ai, as_i, as_k, b + j, n, c + i * n + j, n, k);
    }
    if (j < n) {
      MicroTileEdge(ai, as_i, as_k, b + j, n, c + i * n + j, n, k, kMr,
                    n - j);
    }
  }
  if (i < m) {
    const float* ai = a + i * as_i;
    const int64_t mr = m - i;
    int64_t j = 0;
    for (; j + kNr <= n; j += kNr) {
      MicroTileEdge(ai, as_i, as_k, b + j, n, c + i * n + j, n, k, mr, kNr);
    }
    if (j < n) {
      MicroTileEdge(ai, as_i, as_k, b + j, n, c + i * n + j, n, k, mr, n - j);
    }
  }
}

// Reusable packing buffer for GemmTransB (single-core; thread_local keeps
// the threaded distributed hosts safe).
std::vector<float>& PackBuffer() {
  thread_local std::vector<float> buf;
  return buf;
}

}  // namespace

void Gemm(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
          float* c) {
  GemmStrided(m, n, k, a, /*as_i=*/k, /*as_k=*/1, b, c);
}

void GemmTransA(int64_t m, int64_t n, int64_t k, const float* a,
                const float* b, float* c) {
  GemmStrided(m, n, k, a, /*as_i=*/1, /*as_k=*/m, b, c);
}

void GemmTransB(int64_t m, int64_t n, int64_t k, const float* a,
                const float* b, float* c) {
  // Pack b^T ([n, k] -> [k, n]) once, then reuse the row-streaming kernel.
  // Packing moves values untouched, so the accumulation chain is unchanged.
  std::vector<float>& bt = PackBuffer();
  bt.resize(static_cast<size_t>(k) * n);
  constexpr int64_t kBlock = 32;
  for (int64_t j0 = 0; j0 < n; j0 += kBlock) {
    const int64_t j1 = std::min(n, j0 + kBlock);
    for (int64_t k0 = 0; k0 < k; k0 += kBlock) {
      const int64_t k1 = std::min(k, k0 + kBlock);
      for (int64_t j = j0; j < j1; ++j) {
        for (int64_t kk = k0; kk < k1; ++kk) {
          bt[kk * n + j] = b[j * k + kk];
        }
      }
    }
  }
  GemmStrided(m, n, k, a, /*as_i=*/k, /*as_k=*/1, bt.data(), c);
}

void GemmReference(int64_t m, int64_t n, int64_t k, const float* a,
                   const float* b, float* c) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += a[i * k + kk] * b[kk * n + j];
      c[i * n + j] += acc;
    }
  }
}

void GemmTransAReference(int64_t m, int64_t n, int64_t k, const float* a,
                         const float* b, float* c) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += a[kk * m + i] * b[kk * n + j];
      c[i * n + j] += acc;
    }
  }
}

void GemmTransBReference(int64_t m, int64_t n, int64_t k, const float* a,
                         const float* b, float* c) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += a[i * k + kk] * b[j * k + kk];
      c[i * n + j] += acc;
    }
  }
}

void Im2Col(const float* im, int64_t channels, int64_t height, int64_t width,
            int64_t kernel, int64_t padding, float* cols) {
  const int64_t out_h = ConvOutDim(height, kernel, padding);
  const int64_t out_w = ConvOutDim(width, kernel, padding);
  float* out = cols;
  for (int64_t ic = 0; ic < channels; ++ic) {
    const float* plane = im + ic * height * width;
    for (int64_t kh = 0; kh < kernel; ++kh) {
      for (int64_t kw = 0; kw < kernel; ++kw) {
        // Valid output columns map to input columns iw = ow + kw - padding.
        const int64_t lo = std::max<int64_t>(0, padding - kw);
        const int64_t hi = std::min(out_w, width - kw + padding);
        for (int64_t oh = 0; oh < out_h; ++oh) {
          const int64_t ih = oh + kh - padding;
          if (ih < 0 || ih >= height || lo >= hi) {
            std::memset(out, 0, out_w * sizeof(float));
          } else {
            if (lo > 0) std::memset(out, 0, lo * sizeof(float));
            std::memcpy(out + lo, plane + ih * width + lo + kw - padding,
                        (hi - lo) * sizeof(float));
            if (hi < out_w) {
              std::memset(out + hi, 0, (out_w - hi) * sizeof(float));
            }
          }
          out += out_w;
        }
      }
    }
  }
}

void Col2Im(const float* cols, int64_t channels, int64_t height,
            int64_t width, int64_t kernel, int64_t padding, float* im) {
  const int64_t out_h = ConvOutDim(height, kernel, padding);
  const int64_t out_w = ConvOutDim(width, kernel, padding);
  const float* in = cols;
  for (int64_t ic = 0; ic < channels; ++ic) {
    float* plane = im + ic * height * width;
    for (int64_t kh = 0; kh < kernel; ++kh) {
      for (int64_t kw = 0; kw < kernel; ++kw) {
        const int64_t lo = std::max<int64_t>(0, padding - kw);
        const int64_t hi = std::min(out_w, width - kw + padding);
        for (int64_t oh = 0; oh < out_h; ++oh) {
          const int64_t ih = oh + kh - padding;
          if (ih >= 0 && ih < height && lo < hi) {
            float* row = plane + ih * width + kw - padding;
            for (int64_t ow = lo; ow < hi; ++ow) row[ow] += in[ow];
          }
          in += out_w;
        }
      }
    }
  }
}

void Conv2dForwardReference(const float* x, const float* weight,
                            const float* bias, int64_t in_c, int64_t in_h,
                            int64_t in_w, int64_t out_c, int64_t kernel,
                            int64_t padding, float* y) {
  const int64_t out_h = ConvOutDim(in_h, kernel, padding);
  const int64_t out_w = ConvOutDim(in_w, kernel, padding);
  for (int64_t oc = 0; oc < out_c; ++oc) {
    for (int64_t oh = 0; oh < out_h; ++oh) {
      for (int64_t ow = 0; ow < out_w; ++ow) {
        double acc = bias[oc];
        for (int64_t ic = 0; ic < in_c; ++ic) {
          for (int64_t kh = 0; kh < kernel; ++kh) {
            const int64_t ih = oh + kh - padding;
            if (ih < 0 || ih >= in_h) continue;
            for (int64_t kw = 0; kw < kernel; ++kw) {
              const int64_t iw = ow + kw - padding;
              if (iw < 0 || iw >= in_w) continue;
              acc += x[(ic * in_h + ih) * in_w + iw] *
                     weight[((oc * in_c + ic) * kernel + kh) * kernel + kw];
            }
          }
        }
        y[(oc * out_h + oh) * out_w + ow] = static_cast<float>(acc);
      }
    }
  }
}

void Conv2dBackwardReference(const float* x, const float* weight,
                             const float* grad_out, int64_t in_c,
                             int64_t in_h, int64_t in_w, int64_t out_c,
                             int64_t kernel, int64_t padding,
                             float* weight_grad, float* bias_grad,
                             float* grad_in) {
  const int64_t out_h = ConvOutDim(in_h, kernel, padding);
  const int64_t out_w = ConvOutDim(in_w, kernel, padding);
  for (int64_t oc = 0; oc < out_c; ++oc) {
    for (int64_t oh = 0; oh < out_h; ++oh) {
      for (int64_t ow = 0; ow < out_w; ++ow) {
        const float g = grad_out[(oc * out_h + oh) * out_w + ow];
        bias_grad[oc] += g;
        for (int64_t ic = 0; ic < in_c; ++ic) {
          for (int64_t kh = 0; kh < kernel; ++kh) {
            const int64_t ih = oh + kh - padding;
            if (ih < 0 || ih >= in_h) continue;
            for (int64_t kw = 0; kw < kernel; ++kw) {
              const int64_t iw = ow + kw - padding;
              if (iw < 0 || iw >= in_w) continue;
              const int64_t wi = ((oc * in_c + ic) * kernel + kh) * kernel + kw;
              weight_grad[wi] += g * x[(ic * in_h + ih) * in_w + iw];
              grad_in[(ic * in_h + ih) * in_w + iw] += g * weight[wi];
            }
          }
        }
      }
    }
  }
}

void ReluForward(const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = std::max(x[i], 0.0f);
}

void ReluBackward(const float* x, float* grad, int64_t n) {
  for (int64_t i = 0; i < n; ++i) grad[i] = x[i] > 0.0f ? grad[i] : 0.0f;
}

void TanhForward(const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = std::tanh(x[i]);
}

void TanhBackward(const float* y, float* grad, int64_t n) {
  for (int64_t i = 0; i < n; ++i) grad[i] *= 1.0f - y[i] * y[i];
}

void AddColBias(float* y, const float* bias, int64_t rows, int64_t cols) {
  for (int64_t r = 0; r < rows; ++r) {
    float* row = y + r * cols;
    for (int64_t c = 0; c < cols; ++c) row[c] += bias[c];
  }
}

void AddRowBias(float* y, const float* bias, int64_t rows, int64_t cols) {
  for (int64_t r = 0; r < rows; ++r) {
    const float b = bias[r];
    float* row = y + r * cols;
    for (int64_t c = 0; c < cols; ++c) row[c] += b;
  }
}

void ColSumsAccum(const float* x, int64_t rows, int64_t cols, float* out) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = x + r * cols;
    for (int64_t c = 0; c < cols; ++c) out[c] += row[c];
  }
}

void RowSumsAccum(const float* x, int64_t rows, int64_t cols, float* out) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = x + r * cols;
    // Serial chain per row keeps the ascending-column order deterministic.
    float acc = out[r];
    for (int64_t c = 0; c < cols; ++c) acc += row[c];
    out[r] = acc;
  }
}

}  // namespace kernels
}  // namespace fedscope
