#ifndef FEDSCOPE_TENSOR_KERNELS_H_
#define FEDSCOPE_TENSOR_KERNELS_H_

#include <cstdint>

namespace fedscope {
namespace kernels {

// ---------------------------------------------------------------------------
// Deterministic single-core BLAS-lite. Raw-pointer kernels behind Tensor ops
// and the NN layers; this translation unit is compiled with the widest SIMD
// the host supports (see src/CMakeLists.txt) but with FP contraction off.
//
// Determinism contract: every output element is a sum over the reduction
// index k in ascending order, accumulated in float, with no fused
// multiply-add. Vectorizing across *output* elements never reorders a
// per-element chain, so results are bit-identical across vector widths
// (SSE2/AVX2/AVX-512) and match the scalar *Reference kernels exactly.
// ---------------------------------------------------------------------------

/// c += a @ b. a: [m, k] row-major, b: [k, n] row-major, c: [m, n] row-major.
/// Caller zero-initializes c for a plain product.
void Gemm(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
          float* c);

/// c += a^T @ b. a: [k, m] row-major (so a^T is [m, k]), b: [k, n], c: [m, n].
void GemmTransA(int64_t m, int64_t n, int64_t k, const float* a,
                const float* b, float* c);

/// c += a @ b^T. a: [m, k], b: [n, k] row-major (so b^T is [k, n]), c: [m, n].
void GemmTransB(int64_t m, int64_t n, int64_t k, const float* a,
                const float* b, float* c);

/// Unblocked scalar implementations of the same accumulation order; the
/// equivalence oracle for the tiled kernels (tests assert exact equality).
void GemmReference(int64_t m, int64_t n, int64_t k, const float* a,
                   const float* b, float* c);
void GemmTransAReference(int64_t m, int64_t n, int64_t k, const float* a,
                         const float* b, float* c);
void GemmTransBReference(int64_t m, int64_t n, int64_t k, const float* a,
                         const float* b, float* c);

// ---------------------------------------------------------------------------
// Convolution lowering (stride 1, symmetric zero padding).
// ---------------------------------------------------------------------------

/// Output spatial extent of a stride-1 convolution.
inline int64_t ConvOutDim(int64_t in, int64_t kernel, int64_t padding) {
  return in + 2 * padding - kernel + 1;
}

/// Lowers one [channels, height, width] image to a [channels*kernel*kernel,
/// out_h*out_w] column matrix (zero padding materialized as zeros). `cols`
/// must hold channels*kernel*kernel*out_h*out_w floats; fully overwritten.
void Im2Col(const float* im, int64_t channels, int64_t height, int64_t width,
            int64_t kernel, int64_t padding, float* cols);

/// Inverse scatter of Im2Col: accumulates the column matrix back into the
/// [channels, height, width] image (`im` += ...; padding cells dropped).
void Col2Im(const float* cols, int64_t channels, int64_t height,
            int64_t width, int64_t kernel, int64_t padding, float* im);

/// Direct 7-loop convolution kernels (the pre-im2col implementation), kept
/// as the numerical reference for Conv2d equivalence tests. Accumulates in
/// double like the original. y: [out_c, out_h*out_w] for one image.
void Conv2dForwardReference(const float* x, const float* weight,
                            const float* bias, int64_t in_c, int64_t in_h,
                            int64_t in_w, int64_t out_c, int64_t kernel,
                            int64_t padding, float* y);

/// Direct convolution backward for one image: accumulates into weight_grad
/// [out_c, in_c, k, k], bias_grad [out_c] and grad_in [in_c, in_h, in_w].
/// grad_out: [out_c, out_h*out_w].
void Conv2dBackwardReference(const float* x, const float* weight,
                             const float* grad_out, int64_t in_c,
                             int64_t in_h, int64_t in_w, int64_t out_c,
                             int64_t kernel, int64_t padding,
                             float* weight_grad, float* bias_grad,
                             float* grad_in);

// ---------------------------------------------------------------------------
// Fused elementwise helpers (pointer loops the compiler vectorizes).
// ---------------------------------------------------------------------------

/// y[i] = max(x[i], 0).
void ReluForward(const float* x, float* y, int64_t n);
/// grad[i] = x[i] > 0 ? grad[i] : 0 (in place; x is the forward input).
void ReluBackward(const float* x, float* grad, int64_t n);
/// y[i] = tanh(x[i]).
void TanhForward(const float* x, float* y, int64_t n);
/// grad[i] *= 1 - y[i]^2 (in place; y is the forward output).
void TanhBackward(const float* y, float* grad, int64_t n);
/// y[r*cols + c] += bias[c] for every row r (Linear bias).
void AddColBias(float* y, const float* bias, int64_t rows, int64_t cols);
/// y[r*cols + c] += bias[r] for every column c (Conv2d bias, rows=channels).
void AddRowBias(float* y, const float* bias, int64_t rows, int64_t cols);
/// out[c] += sum_r x[r*cols + c], rows in ascending order (Linear bias grad).
void ColSumsAccum(const float* x, int64_t rows, int64_t cols, float* out);
/// out[r] += sum_c x[r*cols + c], cols in ascending order (Conv2d bias grad).
void RowSumsAccum(const float* x, int64_t rows, int64_t cols, float* out);

}  // namespace kernels
}  // namespace fedscope

#endif  // FEDSCOPE_TENSOR_KERNELS_H_
