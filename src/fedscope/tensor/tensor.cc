#include "fedscope/tensor/tensor.h"

#include <sstream>

#include "fedscope/util/logging.h"

namespace fedscope {

int64_t ShapeNumel(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    FS_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

Tensor::Tensor(std::vector<int64_t> shape)
    : shape_(std::move(shape)), data_(ShapeNumel(shape_), 0.0f) {}

Tensor::Tensor(std::vector<int64_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  FS_CHECK_EQ(ShapeNumel(shape_), static_cast<int64_t>(data_.size()));
}

Tensor Tensor::Zeros(std::vector<int64_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  for (auto& x : t.data_) x = value;
  return t;
}

Tensor Tensor::FromVector(const std::vector<float>& values) {
  return Tensor({static_cast<int64_t>(values.size())}, values);
}

Tensor Tensor::Randn(std::vector<int64_t> shape, Rng* rng, float scale) {
  Tensor t(std::move(shape));
  for (auto& x : t.data_) {
    x = static_cast<float>(rng->Normal()) * scale;
  }
  return t;
}

Tensor Tensor::Rand(std::vector<int64_t> shape, Rng* rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& x : t.data_) {
    x = static_cast<float>(rng->Uniform(lo, hi));
  }
  return t;
}

float& Tensor::at4(int64_t n, int64_t c, int64_t h, int64_t w) {
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float Tensor::at4(int64_t n, int64_t c, int64_t h, int64_t w) const {
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

Tensor Tensor::Reshape(std::vector<int64_t> new_shape) const {
  FS_CHECK_EQ(ShapeNumel(new_shape), numel())
      << "reshape from " << ShapeString();
  return Tensor(std::move(new_shape), data_);
}

Tensor Tensor::Slice(int64_t i) const {
  FS_CHECK_GE(ndim(), 1);
  FS_CHECK_GE(i, 0);
  FS_CHECK_LT(i, shape_[0]);
  std::vector<int64_t> sub_shape(shape_.begin() + 1, shape_.end());
  int64_t stride = ShapeNumel(sub_shape);
  std::vector<float> sub(data_.begin() + i * stride,
                         data_.begin() + (i + 1) * stride);
  if (sub_shape.empty()) sub_shape.push_back(1);
  return Tensor(std::move(sub_shape), std::move(sub));
}

void Tensor::SetSlice(int64_t i, const Tensor& src) {
  FS_CHECK_GE(ndim(), 1);
  FS_CHECK_GE(i, 0);
  FS_CHECK_LT(i, shape_[0]);
  int64_t stride = numel() / shape_[0];
  FS_CHECK_EQ(src.numel(), stride);
  std::copy(src.data_.begin(), src.data_.end(),
            data_.begin() + i * stride);
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << "[";
  for (int i = 0; i < ndim(); ++i) {
    if (i) os << ", ";
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace fedscope
