#ifndef FEDSCOPE_TENSOR_TENSOR_OPS_H_
#define FEDSCOPE_TENSOR_TENSOR_OPS_H_

#include <vector>

#include "fedscope/tensor/tensor.h"

namespace fedscope {

// ---------------------------------------------------------------------------
// Elementwise / BLAS-lite operations on Tensors. These back both the NN
// library (forward/backward passes) and the federated aggregators
// (weighted averaging of state dicts).
// ---------------------------------------------------------------------------

/// out = a + b (same shape).
Tensor Add(const Tensor& a, const Tensor& b);
/// out = a - b (same shape).
Tensor Sub(const Tensor& a, const Tensor& b);
/// out = a * b elementwise (same shape).
Tensor Mul(const Tensor& a, const Tensor& b);
/// out = a * s.
Tensor Scale(const Tensor& a, float s);

/// a += b (same shape).
void AddInPlace(Tensor* a, const Tensor& b);
/// a += alpha * b (axpy; same shape).
void Axpy(Tensor* a, float alpha, const Tensor& b);
/// a *= s.
void ScaleInPlace(Tensor* a, float s);
/// a = 0.
void ZeroInPlace(Tensor* a);

/// Inner product of flattened tensors (same numel).
double Dot(const Tensor& a, const Tensor& b);
/// Sum of squares of all entries.
double SquaredNorm(const Tensor& a);
/// L2 norm.
double Norm(const Tensor& a);
/// Sum of entries.
double Sum(const Tensor& a);

/// c = a @ b for 2-D tensors: [m, k] x [k, n] -> [m, n].
Tensor MatMul(const Tensor& a, const Tensor& b);
/// c = a^T @ b: [k, m]^T x [k, n] -> [m, n].
Tensor MatMulTransA(const Tensor& a, const Tensor& b);
/// c = a @ b^T: [m, k] x [n, k]^T -> [m, n].
Tensor MatMulTransB(const Tensor& a, const Tensor& b);

/// Row-wise softmax on a [batch, classes] tensor.
Tensor Softmax(const Tensor& logits);

/// Argmax per row of a [batch, classes] tensor.
std::vector<int64_t> ArgmaxRows(const Tensor& scores);

/// Clips the flattened tensor to the given L2 norm (no-op if already below).
/// Returns the pre-clip norm.
double ClipByNorm(Tensor* t, double max_norm);

}  // namespace fedscope

#endif  // FEDSCOPE_TENSOR_TENSOR_OPS_H_
