#ifndef FEDSCOPE_TENSOR_TENSOR_H_
#define FEDSCOPE_TENSOR_TENSOR_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "fedscope/util/rng.h"

namespace fedscope {

/// Dense, row-major float tensor. This is the numeric substrate that stands
/// in for the PyTorch/TensorFlow backends of the paper: model parameters,
/// activations, gradients and exchanged messages are all Tensors.
///
/// Deliberately simple: contiguous row-major storage, float32 only, value
/// semantics (copyable, movable).
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int64_t> shape);
  Tensor(std::vector<int64_t> shape, std::vector<float> data);

  static Tensor Zeros(std::vector<int64_t> shape);
  static Tensor Full(std::vector<int64_t> shape, float value);
  static Tensor FromVector(const std::vector<float>& values);
  /// N(0, 1) entries scaled by `scale`.
  static Tensor Randn(std::vector<int64_t> shape, Rng* rng,
                      float scale = 1.0f);
  /// Uniform(lo, hi) entries.
  static Tensor Rand(std::vector<int64_t> shape, Rng* rng, float lo,
                     float hi);

  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t dim(int i) const { return shape_[i]; }
  int ndim() const { return static_cast<int>(shape_.size()); }
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& storage() { return data_; }
  const std::vector<float>& storage() const { return data_; }

  /// Flat element access.
  float& at(int64_t i) { return data_[i]; }
  float at(int64_t i) const { return data_[i]; }

  /// 2-D access (requires ndim()==2).
  float& at(int64_t i, int64_t j) { return data_[i * shape_[1] + j]; }
  float at(int64_t i, int64_t j) const { return data_[i * shape_[1] + j]; }

  /// 4-D access (requires ndim()==4), NCHW.
  float& at4(int64_t n, int64_t c, int64_t h, int64_t w);
  float at4(int64_t n, int64_t c, int64_t h, int64_t w) const;

  /// Returns a tensor with the same data and a new shape (numel preserved).
  Tensor Reshape(std::vector<int64_t> new_shape) const;

  /// Row `i` of a 2-D (or higher: leading-dim slice) tensor, copied out.
  Tensor Slice(int64_t i) const;

  /// Copies `src` into leading-dim slice `i`.
  void SetSlice(int64_t i, const Tensor& src);

  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  std::string ShapeString() const;

  /// Bitwise, not arithmetic: equality means "same bits", so a NaN equals
  /// its own retransmission. IEEE `==` (NaN != NaN) would let a poisoned
  /// update defeat duplicate suppression — the dedup tables compare
  /// payloads, and a hostile client that planted a NaN would have every
  /// retransmitted copy of the same frame treated as fresh (and billed as
  /// a fresh guard violation).
  bool operator==(const Tensor& other) const {
    return shape_ == other.shape_ && data_.size() == other.data_.size() &&
           (data_.empty() ||
            std::memcmp(data_.data(), other.data_.data(),
                        data_.size() * sizeof(float)) == 0);
  }

 private:
  std::vector<int64_t> shape_;
  std::vector<float> data_;
};

/// Product of dims; checks non-negative dims.
int64_t ShapeNumel(const std::vector<int64_t>& shape);

}  // namespace fedscope

#endif  // FEDSCOPE_TENSOR_TENSOR_H_
