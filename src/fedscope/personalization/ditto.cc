#include "fedscope/personalization/ditto.h"

#include "fedscope/util/logging.h"

namespace fedscope {

void DittoTrainer::UpdateModel(Model* model, const StateDict& global_shared) {
  GeneralTrainer::UpdateModel(model, global_shared);
  received_global_ = global_shared;
  if (!personal_initialized_) {
    personal_ = *model;  // personal model starts from the first global
    personal_initialized_ = true;
  }
}

TrainResult DittoTrainer::Train(Model* model, const Dataset& train,
                                const TrainConfig& config, Rng* rng) {
  // (1) Global-objective local training — produces the shared update.
  TrainResult result = GeneralTrainer::Train(model, train, config, rng);

  // (2) Personal-objective training with proximal regularization toward
  //     the *received* global parameters.
  if (!personal_initialized_) {
    personal_ = *model;
    personal_initialized_ = true;
  }
  const int steps =
      options_.personal_steps > 0 ? options_.personal_steps
                                  : config.local_steps;
  if (!train.empty() && steps > 0) {
    Sgd optimizer(SgdOptions{config.lr, config.momentum, config.weight_decay,
                             options_.lambda, config.grad_clip});
    optimizer.SetProxCenter(received_global_);
    for (int step = 0; step < steps; ++step) {
      auto idx = SampleBatchIndices(train.size(), config.batch_size, rng);
      SgdStepOnBatch(&personal_, &optimizer, train.BatchX(idx),
                     train.BatchY(idx));
    }
  }
  return result;
}

EvalResult DittoTrainer::Evaluate(Model* model, const Dataset& data) {
  if (!personal_initialized_) {
    return GeneralTrainer::Evaluate(model, data);
  }
  return EvaluateClassifier(&personal_, data);
}

}  // namespace fedscope
