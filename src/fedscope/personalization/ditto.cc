#include "fedscope/personalization/ditto.h"

#include "fedscope/util/logging.h"

namespace fedscope {

void DittoTrainer::UpdateModel(Model* model, const StateDict& global_shared) {
  GeneralTrainer::UpdateModel(model, global_shared);
  received_global_ = global_shared;
  if (!personal_initialized_) {
    personal_ = *model;  // personal model starts from the first global
    personal_initialized_ = true;
  }
}

TrainResult DittoTrainer::Train(Model* model, const Dataset& train,
                                const TrainConfig& config, Rng* rng) {
  // (1) Global-objective local training — produces the shared update.
  TrainResult result = GeneralTrainer::Train(model, train, config, rng);

  // (2) Personal-objective training with proximal regularization toward
  //     the *received* global parameters.
  if (!personal_initialized_) {
    personal_ = *model;
    personal_initialized_ = true;
  }
  const int steps =
      options_.personal_steps > 0 ? options_.personal_steps
                                  : config.local_steps;
  if (!train.empty() && steps > 0) {
    Sgd optimizer(SgdOptions{config.lr, config.momentum, config.weight_decay,
                             options_.lambda, config.grad_clip});
    optimizer.SetProxCenter(received_global_);
    for (int step = 0; step < steps; ++step) {
      auto idx = SampleBatchIndices(train.size(), config.batch_size, rng);
      SgdStepOnBatch(&personal_, &optimizer, train.BatchX(idx),
                     train.BatchY(idx));
    }
  }
  return result;
}

EvalResult DittoTrainer::Evaluate(Model* model, const Dataset& data) {
  if (!personal_initialized_) {
    return GeneralTrainer::Evaluate(model, data);
  }
  return EvaluateClassifier(&personal_, data);
}

void DittoTrainer::SaveState(Payload* p, const std::string& prefix) {
  p->SetInt(prefix + "/initialized", personal_initialized_ ? 1 : 0);
  if (personal_initialized_) {
    p->SetStateDict(prefix + "/personal", personal_.GetStateDict());
  }
  p->SetInt(prefix + "/received_params",
            static_cast<int64_t>(received_global_.size()));
  p->SetStateDict(prefix + "/received_global", received_global_);
}

void DittoTrainer::LoadState(const Payload& p, const std::string& prefix,
                             const Model& reference) {
  personal_initialized_ = p.GetInt(prefix + "/initialized") != 0;
  if (personal_initialized_) {
    personal_ = reference;
    FS_CHECK_OK(personal_.LoadStateDict(p.GetStateDict(prefix + "/personal"),
                                        /*strict=*/true));
  }
  received_global_ = p.GetStateDict(prefix + "/received_global");
  FS_CHECK_EQ(static_cast<int64_t>(received_global_.size()),
              p.GetInt(prefix + "/received_params"));
}

}  // namespace fedscope
