#include "fedscope/personalization/pfedme.h"

#include "fedscope/tensor/tensor_ops.h"
#include "fedscope/util/logging.h"

namespace fedscope {

TrainResult PFedMeTrainer::Train(Model* model, const Dataset& train,
                                 const TrainConfig& config, Rng* rng) {
  TrainResult result;
  result.local_steps = config.local_steps;
  if (train.empty() || config.local_steps == 0) return result;

  const double inner_lr =
      options_.inner_lr > 0.0 ? options_.inner_lr : config.lr;
  double loss_sum = 0.0;

  for (int outer = 0; outer < config.local_steps; ++outer) {
    const StateDict w = model->GetStateDict();
    // Inner loop: theta ~ prox_{f/lambda}(w), warm-started at w.
    Model theta = *model;
    Sgd inner(SgdOptions{inner_lr, 0.0, config.weight_decay,
                         options_.lambda, config.grad_clip});
    inner.SetProxCenter(w);
    for (int k = 0; k < options_.inner_steps; ++k) {
      auto idx = SampleBatchIndices(train.size(), config.batch_size, rng);
      loss_sum += SgdStepOnBatch(&theta, &inner, train.BatchX(idx),
                                 train.BatchY(idx));
    }
    // Outer update: w <- w - eta * lambda * (w - theta).
    const StateDict theta_state = theta.GetStateDict();
    StateDict next_w = w;
    const float step =
        static_cast<float>(options_.outer_lr * options_.lambda);
    SdAxpy(&next_w, -step, w);
    SdAxpy(&next_w, step, theta_state);
    FS_CHECK_OK(model->LoadStateDict(next_w));

    personalized_ = std::move(theta);
    personalized_valid_ = true;
  }
  result.mean_loss =
      loss_sum / (config.local_steps * std::max(options_.inner_steps, 1));
  result.num_samples = static_cast<int64_t>(config.local_steps) *
                       options_.inner_steps * config.batch_size;
  return result;
}

EvalResult PFedMeTrainer::Evaluate(Model* model, const Dataset& data) {
  if (!personalized_valid_) return EvaluateClassifier(model, data);
  return EvaluateClassifier(&personalized_, data);
}

void PFedMeTrainer::SaveState(Payload* p, const std::string& prefix) {
  p->SetInt(prefix + "/valid", personalized_valid_ ? 1 : 0);
  if (personalized_valid_) {
    p->SetStateDict(prefix + "/personalized", personalized_.GetStateDict());
  }
}

void PFedMeTrainer::LoadState(const Payload& p, const std::string& prefix,
                              const Model& reference) {
  personalized_valid_ = p.GetInt(prefix + "/valid") != 0;
  if (personalized_valid_) {
    personalized_ = reference;
    FS_CHECK_OK(personalized_.LoadStateDict(
        p.GetStateDict(prefix + "/personalized"), /*strict=*/true));
  }
}

}  // namespace fedscope
