#ifndef FEDSCOPE_PERSONALIZATION_FEDBN_H_
#define FEDSCOPE_PERSONALIZATION_FEDBN_H_

#include "fedscope/core/fed_runner.h"
#include "fedscope/nn/model.h"

namespace fedscope {

/// FedBN (Li et al., ICLR'21): personalize by *not* sharing BatchNorm
/// parameters — each client keeps its own normalization statistics and
/// affine transform, which absorbs client-specific feature shift. In
/// fedscope this is purely a share-filter: everything except parameters
/// whose name contains ".bn." is exchanged.
///
/// Per the paper's cost analysis (§5.3.2): FedBN has the same computation
/// as FedAvg but *lower* communication (BN parameters stay home).

/// The FedBN share filter.
NameFilter FedBnShareFilter();

/// Configures a FedJob for FedBN: sets the client and server share filters.
/// The trainer remains the plain GeneralTrainer.
void ApplyFedBn(FedJob* job);

}  // namespace fedscope

#endif  // FEDSCOPE_PERSONALIZATION_FEDBN_H_
