#include "fedscope/personalization/fedem.h"

#include <algorithm>
#include <cmath>

#include "fedscope/core/checkpoint.h"
#include "fedscope/nn/loss.h"
#include "fedscope/nn/optimizer.h"
#include "fedscope/tensor/tensor_ops.h"
#include "fedscope/util/logging.h"

namespace fedscope {
namespace {

std::string CompPrefix(int k) { return "comp" + std::to_string(k) + "."; }

/// Mixture probabilities over `data` given component models and weights.
Tensor MixtureProbs(std::vector<Model>* components,
                    const std::vector<double>& pi, const Tensor& x) {
  Tensor mix;
  for (size_t k = 0; k < components->size(); ++k) {
    Tensor probs = Softmax((*components)[k].Forward(x, /*train=*/false));
    if (k == 0) {
      mix = Scale(probs, static_cast<float>(pi[0]));
    } else {
      Axpy(&mix, static_cast<float>(pi[k]), probs);
    }
  }
  return mix;
}

EvalResult MixtureEvaluate(std::vector<Model>* components,
                           const std::vector<double>& pi,
                           const Dataset& data) {
  EvalResult result;
  result.num_examples = data.size();
  if (data.empty()) return result;
  Tensor mix = MixtureProbs(components, pi, data.x);
  result.accuracy = Accuracy(mix, data.labels);
  double loss = 0.0;
  for (int64_t i = 0; i < mix.dim(0); ++i) {
    loss -= std::log(std::max(1e-12, (double)mix.at(i, data.labels[i])));
  }
  result.loss = loss / static_cast<double>(mix.dim(0));
  return result;
}

}  // namespace

Model MakeFedEmGlobalModel(const std::function<Model()>& base_factory,
                           int k) {
  Model container;
  for (int c = 0; c < k; ++c) {
    Model base = base_factory();
    for (int layer = 0; layer < base.num_layers(); ++layer) {
      container.Add(CompPrefix(c) + base.layer_name(layer),
                    base.layer(layer)->Clone());
    }
  }
  return container;
}

Server::Evaluator MakeFedEmEvaluator(std::function<Model()> base_factory,
                                     int k, const Dataset* test) {
  return [base_factory = std::move(base_factory), k,
          test](Model* container) {
    const StateDict state = container->GetStateDict();
    std::vector<Model> components;
    components.reserve(k);
    for (int c = 0; c < k; ++c) {
      Model component = base_factory();
      StateDict local;
      const std::string prefix = CompPrefix(c);
      for (const auto& [name, tensor] : state) {
        if (name.rfind(prefix, 0) == 0) {
          local[name.substr(prefix.size())] = tensor;
        }
      }
      FS_CHECK_OK(component.LoadStateDict(local));
      components.push_back(std::move(component));
    }
    const std::vector<double> uniform(k, 1.0 / k);
    return MixtureEvaluate(&components, uniform, *test);
  };
}

FedEmTrainer::FedEmTrainer(std::function<Model()> base_factory,
                           FedEmOptions options)
    : options_(options) {
  FS_CHECK_GT(options_.num_components, 0);
  components_.reserve(options_.num_components);
  for (int k = 0; k < options_.num_components; ++k) {
    components_.push_back(base_factory());
  }
  pi_.assign(options_.num_components, 1.0 / options_.num_components);
}

void FedEmTrainer::UpdateModel(Model* /*model*/,
                               const StateDict& global_shared) {
  for (int k = 0; k < options_.num_components; ++k) {
    StateDict local;
    const std::string prefix = CompPrefix(k);
    for (const auto& [name, tensor] : global_shared) {
      if (name.rfind(prefix, 0) == 0) {
        local[name.substr(prefix.size())] = tensor;
      }
    }
    FS_CHECK_OK(components_[k].LoadStateDict(local));
  }
}

StateDict FedEmTrainer::GetShareableState(Model* /*model*/,
                                          const NameFilter& filter) {
  StateDict out;
  for (int k = 0; k < options_.num_components; ++k) {
    for (const auto& [name, tensor] : components_[k].GetStateDict()) {
      const std::string full = CompPrefix(k) + name;
      if (filter(full)) out[full] = tensor;
    }
  }
  return out;
}

void FedEmTrainer::SaveState(Payload* p, const std::string& prefix) {
  for (int k = 0; k < options_.num_components; ++k) {
    p->SetStateDict(prefix + "/" + CompPrefix(k),
                    components_[k].GetStateDict());
  }
  SetPackedDoubles(p, prefix + "/pi", pi_);
}

void FedEmTrainer::LoadState(const Payload& p, const std::string& prefix,
                             const Model& /*reference*/) {
  // components_ were rebuilt by the base factory in the constructor; only
  // their parameters and the personal mixture weights ride in the payload.
  for (int k = 0; k < options_.num_components; ++k) {
    FS_CHECK_OK(components_[k].LoadStateDict(
        p.GetStateDict(prefix + "/" + CompPrefix(k)), /*strict=*/true));
  }
  pi_ = GetPackedDoubles(p, prefix + "/pi");
  FS_CHECK_EQ(static_cast<int>(pi_.size()), options_.num_components);
}

std::vector<double> FedEmTrainer::ComponentLosses(int k, const Dataset& data) {
  Tensor probs = Softmax(components_[k].Forward(data.x, /*train=*/false));
  std::vector<double> losses(data.size());
  for (int64_t i = 0; i < data.size(); ++i) {
    losses[i] =
        -std::log(std::max(1e-12, (double)probs.at(i, data.labels[i])));
  }
  return losses;
}

TrainResult FedEmTrainer::Train(Model* /*model*/, const Dataset& train,
                                const TrainConfig& config, Rng* rng) {
  TrainResult result;
  result.local_steps = config.local_steps;
  if (train.empty() || config.local_steps == 0) return result;
  const int K = options_.num_components;

  // E-step: hard assignment of each local example to its best component.
  std::vector<std::vector<double>> losses(K);
  for (int k = 0; k < K; ++k) losses[k] = ComponentLosses(k, train);
  std::vector<std::vector<int64_t>> assigned(K);
  for (int64_t i = 0; i < train.size(); ++i) {
    int best = 0;
    for (int k = 1; k < K; ++k) {
      if (losses[k][i] < losses[best][i]) best = k;
    }
    assigned[best].push_back(i);
  }

  // Personal mixture weights with Laplace smoothing.
  for (int k = 0; k < K; ++k) {
    pi_[k] = (assigned[k].size() + options_.pi_smoothing) /
             (train.size() + options_.pi_smoothing * K);
  }

  // M-step: SGD on each component over its assigned examples.
  double loss_sum = 0.0;
  int steps_total = 0;
  for (int k = 0; k < K; ++k) {
    if (assigned[k].empty()) continue;
    Dataset subset = train.Subset(assigned[k]);
    Sgd optimizer(SgdOptions{config.lr, config.momentum,
                             config.weight_decay, 0.0, config.grad_clip});
    for (int step = 0; step < config.local_steps; ++step) {
      auto idx = SampleBatchIndices(subset.size(), config.batch_size, rng);
      loss_sum += SgdStepOnBatch(&components_[k], &optimizer,
                                 subset.BatchX(idx), subset.BatchY(idx));
      ++steps_total;
    }
  }
  result.mean_loss = steps_total > 0 ? loss_sum / steps_total : 0.0;
  result.num_samples =
      static_cast<int64_t>(steps_total) * config.batch_size;
  return result;
}

EvalResult FedEmTrainer::Evaluate(Model* /*model*/, const Dataset& data) {
  return MixtureEvaluate(&components_, pi_, data);
}

void ApplyFedEm(FedJob* job, std::function<Model()> base_factory,
                FedEmOptions options) {
  job->init_model = MakeFedEmGlobalModel(base_factory, options.num_components);
  job->trainer_factory = [base_factory, options](int) {
    return std::make_unique<FedEmTrainer>(base_factory, options);
  };
  job->evaluator = MakeFedEmEvaluator(base_factory, options.num_components,
                                      &job->data->server_test);
}

}  // namespace fedscope
