#include "fedscope/personalization/fedbn.h"

namespace fedscope {

NameFilter FedBnShareFilter() { return ExcludeSubstrings({".bn."}); }

void ApplyFedBn(FedJob* job) {
  job->client.share_filter = FedBnShareFilter();
  job->server.share_filter = FedBnShareFilter();
}

}  // namespace fedscope
