#ifndef FEDSCOPE_PERSONALIZATION_DITTO_H_
#define FEDSCOPE_PERSONALIZATION_DITTO_H_

#include "fedscope/core/trainer.h"

namespace fedscope {

/// Ditto (Li et al., ICML'21): each client keeps a *personal* model v_m
/// alongside the global model. Per round, the client (1) trains the global
/// model normally (that update is what the federation aggregates) and
/// (2) takes additional SGD steps on the personal model with a proximal
/// pull lambda/2 * ||v_m - w_global||^2 toward the received global
/// parameters. Deployment/evaluation uses the personal model.
///
/// Per the paper's cost analysis (§5.3.2): same communication as FedAvg,
/// more local computation (the extra personal steps).
struct DittoOptions {
  /// Strength of the proximal pull toward the global model.
  double lambda = 0.5;
  /// Personal-model SGD steps per round (defaults to the round's
  /// local_steps when 0).
  int personal_steps = 0;
};

class DittoTrainer : public GeneralTrainer {
 public:
  explicit DittoTrainer(DittoOptions options = {}) : options_(options) {}

  void UpdateModel(Model* model, const StateDict& global_shared) override;
  TrainResult Train(Model* model, const Dataset& train,
                    const TrainConfig& config, Rng* rng) override;
  /// Evaluates the personal model.
  EvalResult Evaluate(Model* model, const Dataset& data) override;

  void SaveState(Payload* p, const std::string& prefix) override;
  void LoadState(const Payload& p, const std::string& prefix,
                 const Model& reference) override;

  Model* personal_model() { return &personal_; }

 private:
  DittoOptions options_;
  Model personal_;
  bool personal_initialized_ = false;
  StateDict received_global_;
};

}  // namespace fedscope

#endif  // FEDSCOPE_PERSONALIZATION_DITTO_H_
