#ifndef FEDSCOPE_PERSONALIZATION_FEDEM_H_
#define FEDSCOPE_PERSONALIZATION_FEDEM_H_

#include <functional>
#include <vector>

#include "fedscope/core/fed_runner.h"
#include "fedscope/core/server.h"
#include "fedscope/core/trainer.h"

namespace fedscope {

/// FedEM (Marfoq et al., NeurIPS'21): clients' data distributions are
/// modelled as mixtures of K shared component distributions. All K
/// component models are learned federally; each client additionally learns
/// *personal* mixture weights pi_m. Local training is hard-assignment EM:
///   E-step: assign each local example to its best-loss component;
///   M-step: one epoch of SGD per component on its assigned examples;
///   pi_m <- smoothed assignment frequencies.
/// Prediction mixes the component softmax outputs with pi_m.
struct FedEmOptions {
  int num_components = 3;
  /// Laplace smoothing of the mixture weights.
  double pi_smoothing = 0.05;
};

/// Builds a federation-level "model" physically containing the K component
/// parameter sets under names "comp<k>.<layer>.<param>". NOTE: this model
/// is a parameter *container* for aggregation/broadcast only — its
/// Forward() must not be called (component stacks are concatenated, not
/// composed). Use MakeFedEmEvaluator for evaluation.
Model MakeFedEmGlobalModel(const std::function<Model()>& base_factory, int k);

/// Evaluator for the FedEM global state: reconstructs the K component
/// models from the container's state dict and reports uniform-mixture
/// accuracy on `test` (the server has no personal pi).
Server::Evaluator MakeFedEmEvaluator(std::function<Model()> base_factory,
                                     int k, const Dataset* test);

class FedEmTrainer : public BaseTrainer {
 public:
  FedEmTrainer(std::function<Model()> base_factory, FedEmOptions options);

  /// Loads "comp<k>.*" entries into the local component copies. The
  /// `model` argument (the client's placeholder model) is ignored.
  void UpdateModel(Model* model, const StateDict& global_shared) override;
  TrainResult Train(Model* model, const Dataset& train,
                    const TrainConfig& config, Rng* rng) override;
  /// Personal-mixture evaluation.
  EvalResult Evaluate(Model* model, const Dataset& data) override;
  /// Shares all component parameters (prefixed), regardless of `model`.
  StateDict GetShareableState(Model* model, const NameFilter& filter) override;

  void SaveState(Payload* p, const std::string& prefix) override;
  void LoadState(const Payload& p, const std::string& prefix,
                 const Model& reference) override;

  const std::vector<double>& mixture_weights() const { return pi_; }

 private:
  /// Per-example losses under component k.
  std::vector<double> ComponentLosses(int k, const Dataset& data);

  FedEmOptions options_;
  std::vector<Model> components_;
  std::vector<double> pi_;
};

/// Configures a FedJob for FedEM: swaps the init model for the component
/// container, installs FedEmTrainer on clients and the mixture evaluator on
/// the server (via the returned evaluator — FedRunner installs a default
/// classifier evaluator, so call runner.server()->set_evaluator(...) with
/// this value, or use ApplyFedEm before constructing the runner and then
/// re-set the evaluator).
void ApplyFedEm(FedJob* job, std::function<Model()> base_factory,
                FedEmOptions options);

}  // namespace fedscope

#endif  // FEDSCOPE_PERSONALIZATION_FEDEM_H_
