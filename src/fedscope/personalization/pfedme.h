#ifndef FEDSCOPE_PERSONALIZATION_PFEDME_H_
#define FEDSCOPE_PERSONALIZATION_PFEDME_H_

#include "fedscope/core/trainer.h"

namespace fedscope {

/// pFedMe (T. Dinh et al., NeurIPS'20): personalization via Moreau
/// envelopes. Each outer step approximately solves the proximal problem
///   theta* = argmin_theta f_m(theta) + (lambda/2) ||theta - w||^2
/// with K inner SGD steps started from the local copy w of the global
/// model, then moves w toward theta*:
///   w <- w - eta_outer * lambda * (w - theta*).
/// The federation aggregates w; the deployment model is theta*.
struct PFedMeOptions {
  double lambda = 1.0;
  /// Inner SGD steps (K) used to approximate the prox solution.
  int inner_steps = 3;
  /// Inner learning rate; 0 -> use the round config's lr.
  double inner_lr = 0.0;
  /// Outer step size (eta in the w-update).
  double outer_lr = 0.05;
};

class PFedMeTrainer : public BaseTrainer {
 public:
  explicit PFedMeTrainer(PFedMeOptions options = {}) : options_(options) {}

  TrainResult Train(Model* model, const Dataset& train,
                    const TrainConfig& config, Rng* rng) override;
  /// Evaluates the personalized model theta* from the last round.
  EvalResult Evaluate(Model* model, const Dataset& data) override;

  void SaveState(Payload* p, const std::string& prefix) override;
  void LoadState(const Payload& p, const std::string& prefix,
                 const Model& reference) override;

 private:
  PFedMeOptions options_;
  Model personalized_;
  bool personalized_valid_ = false;
};

}  // namespace fedscope

#endif  // FEDSCOPE_PERSONALIZATION_PFEDME_H_
