#ifndef FEDSCOPE_TESTING_SHRINK_H_
#define FEDSCOPE_TESTING_SHRINK_H_

#include <functional>

#include "fedscope/testing/course_gen.h"

namespace fedscope {
namespace testing {

/// Returns true when a spec still reproduces the failure being minimized.
using FailurePredicate = std::function<bool(const CourseSpec&)>;

struct ShrinkOptions {
  /// Upper bound on predicate evaluations (each one replays a course).
  int max_evals = 200;
};

struct ShrinkResult {
  CourseSpec spec;    ///< Smallest failing spec found.
  int evals = 0;      ///< Predicate evaluations spent.
  int fields_reset = 0;  ///< Config fields moved to their benign default.
};

/// First-failure minimizer: config-field bisection toward a benign
/// baseline (`CourseSpec{}` with the failing seed). For each field, first
/// try the baseline value outright; for numeric fields that must stay
/// large, bisect between the baseline and the failing value. Every
/// candidate is projected through CourseGen::Clamp so the shrinker can
/// never leave the valid lattice, and candidates that clamp back to the
/// current spec are skipped. `failing` must satisfy `still_fails`.
ShrinkResult ShrinkCourse(const CourseSpec& failing,
                          const FailurePredicate& still_fails,
                          const ShrinkOptions& options = {});

}  // namespace testing
}  // namespace fedscope

#endif  // FEDSCOPE_TESTING_SHRINK_H_
