#include "fedscope/testing/kernel_fuzz.h"

#include <cmath>
#include <cstring>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "fedscope/comm/codec.h"
#include "fedscope/comm/message.h"
#include "fedscope/tensor/kernels.h"
#include "fedscope/util/rng.h"

namespace fedscope {
namespace testing {
namespace {

std::vector<float> RandomFloats(Rng* rng, int64_t n) {
  std::vector<float> v(static_cast<size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng->Uniform(-2.0, 2.0));
  return v;
}

bool BitEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

void Report(std::vector<Violation>* out, const std::string& oracle,
            uint64_t trial_seed, const std::string& what) {
  std::ostringstream os;
  os << what << " (trial seed " << trial_seed << ")";
  out->push_back({oracle, os.str()});
}

// -- kernel oracles ---------------------------------------------------------

void FuzzGemmTrial(Rng* rng, uint64_t trial_seed,
                   std::vector<Violation>* out) {
  const int64_t m = rng->UniformInt(1, 40);
  const int64_t n = rng->UniformInt(1, 40);
  const int64_t k = rng->UniformInt(1, 40);
  const std::vector<float> a = RandomFloats(rng, m * k);
  const std::vector<float> b = RandomFloats(rng, k * n);
  // Random initial c: the kernels accumulate, so the contract must hold
  // for c += a@b, not just c = a@b.
  const std::vector<float> c0 = RandomFloats(rng, m * n);

  const struct {
    const char* name;
    void (*tiled)(int64_t, int64_t, int64_t, const float*, const float*,
                  float*);
    void (*ref)(int64_t, int64_t, int64_t, const float*, const float*,
                float*);
  } kVariants[] = {
      {"Gemm", kernels::Gemm, kernels::GemmReference},
      {"GemmTransA", kernels::GemmTransA, kernels::GemmTransAReference},
      {"GemmTransB", kernels::GemmTransB, kernels::GemmTransBReference},
  };
  for (const auto& v : kVariants) {
    // TransA reads a as [k, m]; TransB reads b as [n, k]. Both have m*k
    // and k*n elements respectively, so the same buffers serve all three.
    std::vector<float> c_tiled = c0;
    std::vector<float> c_ref = c0;
    v.tiled(m, n, k, a.data(), b.data(), c_tiled.data());
    v.ref(m, n, k, a.data(), b.data(), c_ref.data());
    if (!BitEqual(c_tiled, c_ref)) {
      std::ostringstream os;
      os << v.name << " tiled != scalar reference for m=" << m << " n=" << n
         << " k=" << k;
      Report(out, "kernel_gemm", trial_seed, os.str());
    }
  }
}

void NaiveIm2Col(const float* im, int64_t channels, int64_t height,
                 int64_t width, int64_t kernel, int64_t padding,
                 float* cols) {
  const int64_t out_h = kernels::ConvOutDim(height, kernel, padding);
  const int64_t out_w = kernels::ConvOutDim(width, kernel, padding);
  int64_t i = 0;
  for (int64_t ic = 0; ic < channels; ++ic) {
    for (int64_t kh = 0; kh < kernel; ++kh) {
      for (int64_t kw = 0; kw < kernel; ++kw) {
        for (int64_t oh = 0; oh < out_h; ++oh) {
          for (int64_t ow = 0; ow < out_w; ++ow) {
            const int64_t ih = oh + kh - padding;
            const int64_t iw = ow + kw - padding;
            const bool in_bounds =
                ih >= 0 && ih < height && iw >= 0 && iw < width;
            cols[i++] =
                in_bounds ? im[(ic * height + ih) * width + iw] : 0.0f;
          }
        }
      }
    }
  }
}

void FuzzConvTrial(Rng* rng, uint64_t trial_seed,
                   std::vector<Violation>* out) {
  const int64_t channels = rng->UniformInt(1, 3);
  const int64_t height = rng->UniformInt(1, 8);
  const int64_t width = rng->UniformInt(1, 8);
  const int64_t padding = rng->UniformInt(0, 2);
  // Stride-1 output extents must stay >= 1: kernel <= in + 2*padding.
  const int64_t max_kernel =
      std::min(height, width) + 2 * padding;
  const int64_t kernel = rng->UniformInt(1, std::min<int64_t>(4, max_kernel));
  const int64_t out_h = kernels::ConvOutDim(height, kernel, padding);
  const int64_t out_w = kernels::ConvOutDim(width, kernel, padding);
  const int64_t rows = channels * kernel * kernel;
  const int64_t cols_n = out_h * out_w;

  const std::vector<float> im = RandomFloats(rng, channels * height * width);
  std::vector<float> cols_fast(static_cast<size_t>(rows * cols_n), -7.0f);
  std::vector<float> cols_naive(static_cast<size_t>(rows * cols_n), 0.0f);
  kernels::Im2Col(im.data(), channels, height, width, kernel, padding,
                  cols_fast.data());
  NaiveIm2Col(im.data(), channels, height, width, kernel, padding,
              cols_naive.data());
  if (!BitEqual(cols_fast, cols_naive)) {
    std::ostringstream os;
    os << "Im2Col != naive gather for c=" << channels << " h=" << height
       << " w=" << width << " k=" << kernel << " p=" << padding;
    Report(out, "kernel_im2col", trial_seed, os.str());
  }

  // Col2Im is the exact adjoint scatter of the gather: accumulating any
  // column matrix back must equal the naive per-element scatter.
  const std::vector<float> grad_cols = RandomFloats(rng, rows * cols_n);
  std::vector<float> im_fast = RandomFloats(rng, channels * height * width);
  std::vector<float> im_naive = im_fast;
  kernels::Col2Im(grad_cols.data(), channels, height, width, kernel, padding,
                  im_fast.data());
  {
    int64_t i = 0;
    for (int64_t ic = 0; ic < channels; ++ic) {
      for (int64_t kh = 0; kh < kernel; ++kh) {
        for (int64_t kw = 0; kw < kernel; ++kw) {
          for (int64_t oh = 0; oh < out_h; ++oh) {
            for (int64_t ow = 0; ow < out_w; ++ow, ++i) {
              const int64_t ih = oh + kh - padding;
              const int64_t iw = ow + kw - padding;
              if (ih >= 0 && ih < height && iw >= 0 && iw < width) {
                im_naive[(ic * height + ih) * width + iw] += grad_cols[i];
              }
            }
          }
        }
      }
    }
  }
  if (!BitEqual(im_fast, im_naive)) {
    std::ostringstream os;
    os << "Col2Im != naive scatter for c=" << channels << " h=" << height
       << " w=" << width << " k=" << kernel << " p=" << padding;
    Report(out, "kernel_col2im", trial_seed, os.str());
  }

  // The production lowering (im2col + gemm + row bias) vs the direct
  // double-accumulating reference. Accumulation orders differ, so this is
  // a tolerance comparison, not a bit one.
  const int64_t out_c = rng->UniformInt(1, 3);
  const std::vector<float> weight = RandomFloats(rng, out_c * rows);
  const std::vector<float> bias = RandomFloats(rng, out_c);
  std::vector<float> y_lowered(static_cast<size_t>(out_c * cols_n), 0.0f);
  kernels::Gemm(out_c, cols_n, rows, weight.data(), cols_fast.data(),
                y_lowered.data());
  kernels::AddRowBias(y_lowered.data(), bias.data(), out_c, cols_n);
  std::vector<float> y_direct(static_cast<size_t>(out_c * cols_n), 0.0f);
  kernels::Conv2dForwardReference(im.data(), weight.data(), bias.data(),
                                  channels, height, width, out_c, kernel,
                                  padding, y_direct.data());
  for (size_t i = 0; i < y_direct.size(); ++i) {
    const float diff = std::abs(y_lowered[i] - y_direct[i]);
    if (!(diff <= 1e-3f)) {  // negated: also catches NaN
      std::ostringstream os;
      os << "im2col+gemm conv deviates from direct reference by " << diff
         << " at element " << i << " (c=" << channels << " h=" << height
         << " w=" << width << " k=" << kernel << " p=" << padding
         << " oc=" << out_c << ")";
      Report(out, "kernel_conv", trial_seed, os.str());
      break;
    }
  }
}

void FuzzElementwiseTrial(Rng* rng, uint64_t trial_seed,
                          std::vector<Violation>* out) {
  const int64_t rows = rng->UniformInt(1, 12);
  const int64_t cols = rng->UniformInt(1, 12);
  const int64_t n = rows * cols;
  const std::vector<float> x = RandomFloats(rng, n);

  std::vector<float> y(static_cast<size_t>(n));
  kernels::ReluForward(x.data(), y.data(), n);
  std::vector<float> y_ref(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) y_ref[i] = x[i] > 0.0f ? x[i] : 0.0f;
  if (!BitEqual(y, y_ref)) {
    Report(out, "kernel_elementwise", trial_seed, "ReluForward != naive");
  }

  std::vector<float> grad = RandomFloats(rng, n);
  std::vector<float> grad_ref = grad;
  kernels::ReluBackward(x.data(), grad.data(), n);
  for (int64_t i = 0; i < n; ++i) {
    if (!(x[i] > 0.0f)) grad_ref[i] = 0.0f;
  }
  if (!BitEqual(grad, grad_ref)) {
    Report(out, "kernel_elementwise", trial_seed, "ReluBackward != naive");
  }

  const std::vector<float> bias_c = RandomFloats(rng, cols);
  std::vector<float> yc = x;
  std::vector<float> yc_ref = x;
  kernels::AddColBias(yc.data(), bias_c.data(), rows, cols);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) yc_ref[r * cols + c] += bias_c[c];
  }
  if (!BitEqual(yc, yc_ref)) {
    Report(out, "kernel_elementwise", trial_seed, "AddColBias != naive");
  }

  const std::vector<float> bias_r = RandomFloats(rng, rows);
  std::vector<float> yr = x;
  std::vector<float> yr_ref = x;
  kernels::AddRowBias(yr.data(), bias_r.data(), rows, cols);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) yr_ref[r * cols + c] += bias_r[r];
  }
  if (!BitEqual(yr, yr_ref)) {
    Report(out, "kernel_elementwise", trial_seed, "AddRowBias != naive");
  }

  // Sums accumulate row/col-major in ascending order — replicating that
  // order in the naive loop makes this an exact comparison too.
  std::vector<float> csum = RandomFloats(rng, cols);
  std::vector<float> csum_ref = csum;
  kernels::ColSumsAccum(x.data(), rows, cols, csum.data());
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) csum_ref[c] += x[r * cols + c];
  }
  if (!BitEqual(csum, csum_ref)) {
    Report(out, "kernel_elementwise", trial_seed, "ColSumsAccum != naive");
  }

  std::vector<float> rsum = RandomFloats(rng, rows);
  std::vector<float> rsum_ref = rsum;
  kernels::RowSumsAccum(x.data(), rows, cols, rsum.data());
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) rsum_ref[r] += x[r * cols + c];
  }
  if (!BitEqual(rsum, rsum_ref)) {
    Report(out, "kernel_elementwise", trial_seed, "RowSumsAccum != naive");
  }
}

// -- codec oracles ----------------------------------------------------------

Message RandomMessage(Rng* rng) {
  static const char* kTypes[] = {"model_para", "model_update", "evaluate",
                                 "metrics", "join_in", "finish"};
  Message msg;
  msg.sender = static_cast<int>(rng->UniformInt(-1, 12));
  msg.receiver = static_cast<int>(rng->UniformInt(-1, 12));
  msg.msg_type = kTypes[rng->UniformInt(0, 5)];
  msg.state = static_cast<int>(rng->UniformInt(0, 100));
  msg.timestamp = rng->Uniform(0.0, 50.0);
  const int64_t n_scalars = rng->UniformInt(0, 4);
  for (int64_t i = 0; i < n_scalars; ++i) {
    const std::string key = "s" + std::to_string(i);
    switch (rng->UniformInt(0, 2)) {
      case 0:
        msg.payload.SetInt(key, rng->UniformInt(-1000, 1000));
        break;
      case 1:
        msg.payload.SetDouble(key, rng->Uniform(-10.0, 10.0));
        break;
      default: {
        std::string v(static_cast<size_t>(rng->UniformInt(0, 12)), 'x');
        for (auto& ch : v) ch = static_cast<char>(rng->UniformInt(1, 255));
        msg.payload.SetString(key, std::move(v));
      }
    }
  }
  const int64_t n_tensors = rng->UniformInt(0, 3);
  for (int64_t i = 0; i < n_tensors; ++i) {
    const int64_t ndim = rng->UniformInt(0, 3);
    std::vector<int64_t> shape;
    for (int64_t d = 0; d < ndim; ++d) shape.push_back(rng->UniformInt(1, 5));
    Tensor t = Tensor::Rand(shape, rng, -3.0f, 3.0f);
    msg.payload.SetTensor("t" + std::to_string(i), std::move(t));
  }
  return msg;
}

void FuzzCodecTrial(Rng* rng, uint64_t trial_seed,
                    std::vector<Violation>* out) {
  const Message msg = RandomMessage(rng);
  const std::vector<uint8_t> bytes = EncodeMessage(msg);

  if (EncodedMessageSize(msg) != bytes.size()) {
    Report(out, "codec_size", trial_seed,
           "EncodedMessageSize disagrees with EncodeMessage");
  }

  // Round trip: decode must succeed and re-encode bit-exactly.
  Result<Message> decoded = DecodeMessage(bytes);
  if (!decoded.ok()) {
    Report(out, "codec_roundtrip", trial_seed,
           "valid frame rejected: " + decoded.status().ToString());
  } else {
    const std::vector<uint8_t> again = EncodeMessage(decoded.value());
    if (again != bytes) {
      Report(out, "codec_roundtrip", trial_seed,
             "re-encode is not bit-identical");
    }
  }

  // Frame split / shuffle / reassemble restores the stream.
  const size_t max_frame =
      static_cast<size_t>(rng->UniformInt(1, static_cast<int64_t>(
                                                 bytes.size() + 8)));
  std::vector<Frame> frames = SplitIntoFrames(bytes, max_frame);
  rng->Shuffle(&frames);
  Result<std::vector<uint8_t>> joined = ReassembleFrames(std::move(frames));
  if (!joined.ok() || joined.value() != bytes) {
    Report(out, "codec_frames", trial_seed,
           "split+shuffle+reassemble did not restore the stream");
  }

  // Adversarial inputs: each must return Status (the oracle for "no
  // crash" is this process surviving; ASan/UBSan sharpen it in CI).
  std::vector<uint8_t> mutated = bytes;
  switch (rng->UniformInt(0, 3)) {
    case 0:  // truncate at a random point
      mutated.resize(static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(mutated.size()))));
      break;
    case 1:  // flip one random byte
      if (!mutated.empty()) {
        mutated[static_cast<size_t>(rng->UniformInt(
            0, static_cast<int64_t>(mutated.size()) - 1))] ^=
            static_cast<uint8_t>(rng->UniformInt(1, 255));
      }
      break;
    case 2:  // saturate a random 4-byte window (fake huge length prefix)
      if (mutated.size() >= 4) {
        const size_t at = static_cast<size_t>(rng->UniformInt(
            0, static_cast<int64_t>(mutated.size()) - 4));
        std::memset(mutated.data() + at, 0xFF, 4);
      }
      break;
    default: {  // pure garbage
      mutated = std::vector<uint8_t>(
          static_cast<size_t>(rng->UniformInt(0, 64)));
      for (auto& byte : mutated) {
        byte = static_cast<uint8_t>(rng->UniformInt(0, 255));
      }
    }
  }
  Result<Message> hostile = DecodeMessage(mutated);
  if (hostile.ok()) {
    // A mutation may still parse (e.g. a flipped tensor byte). Whatever
    // decodes must survive re-encoding.
    (void)EncodeMessage(hostile.value());
  }
}

}  // namespace

FuzzReport FuzzKernels(uint64_t seed, int trials) {
  FuzzReport report;
  Rng seeder(seed);
  for (int t = 0; t < trials; ++t) {
    const uint64_t trial_seed = seeder.Fork(static_cast<uint64_t>(t)).Next();
    Rng rng(trial_seed);
    FuzzGemmTrial(&rng, trial_seed, &report.violations);
    FuzzConvTrial(&rng, trial_seed, &report.violations);
    FuzzElementwiseTrial(&rng, trial_seed, &report.violations);
    ++report.trials;
  }
  return report;
}

FuzzReport FuzzCodec(uint64_t seed, int trials) {
  FuzzReport report;
  Rng seeder(seed);
  for (int t = 0; t < trials; ++t) {
    const uint64_t trial_seed = seeder.Fork(static_cast<uint64_t>(t)).Next();
    Rng rng(trial_seed);
    FuzzCodecTrial(&rng, trial_seed, &report.violations);
    ++report.trials;
  }
  return report;
}

}  // namespace testing
}  // namespace fedscope
