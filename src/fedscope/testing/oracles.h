#ifndef FEDSCOPE_TESTING_ORACLES_H_
#define FEDSCOPE_TESTING_ORACLES_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "fedscope/core/fed_runner.h"
#include "fedscope/fault/fault_plan.h"
#include "fedscope/obs/course_log.h"
#include "fedscope/testing/course_gen.h"

namespace fedscope {
namespace testing {

/// One broken invariant, attributed to the oracle that caught it.
struct Violation {
  std::string oracle;  ///< e.g. "reproducibility", "message_conservation"
  std::string detail;  ///< human-readable evidence (expected vs observed)
};

std::string FormatViolations(const std::vector<Violation>& violations);

/// One instrumented standalone run of a course: the result plus everything
/// the delivery taps observed.
struct CourseObservation {
  RunResult result;
  bool finished = false;
  int64_t sent = 0;
  int64_t delivered = 0;
  int64_t suppressed = 0;
  /// Server kill+restore drills performed (0 unless crash_at_event >= 0).
  int64_t recoveries = 0;
  FaultPlan::Counters fault;
  /// First delivery whose virtual timestamp regressed ("" if monotone).
  std::string time_regression;
  /// Aggregator incarnations killed by the plan's crash schedule.
  int64_t aggregators_killed = 0;
  /// Standby promotions across all edge-aggregator incarnations.
  int64_t promotions = 0;
  /// Partial updates forwarded across all edge-aggregator incarnations.
  int64_t partials_forwarded = 0;
  /// Per-round course record; attached only for hierarchical specs (flat
  /// courses run with the all-null ObsContext, preserving byte-identity).
  CourseLog course_log;
  /// Virtualized runs only: the client-cache counters at course end.
  ClientCacheStats cache;
  /// Hostile-client set drawn by the fault plan (empty for benign specs).
  std::set<int> hostile;
  /// model_update deliveries carrying a non-finite tensor while the course
  /// was still live (late post-finish arrivals excluded); counted only for
  /// hostile specs, 0 otherwise.
  int64_t nonfinite_updates_delivered = 0;
};

/// `crash_at_event` >= 0 kills the server between the crash_at_event-th
/// and the next delivery and restores it from a wire-codec-serialized
/// snapshot (FaultPlanOptions::server_crash_at_event); -1 runs untouched.
/// `exec_threads` > 0 runs the course under ExecutionBackend::kThreaded
/// with that many pool workers; 0 keeps the serial default. `virtualize`
/// runs the course with FedJob::virtualize (client descriptors + bounded
/// cache, DESIGN.md §13). A non-null `metrics_export` attaches a private
/// MetricsRegistry and stores its Prometheus exposition after the run.
CourseObservation RunInstrumentedCourse(const CourseSpec& spec,
                                        int64_t crash_at_event = -1,
                                        int exec_threads = 0,
                                        bool virtualize = false,
                                        std::string* metrics_export = nullptr);

struct OracleOptions {
  /// Also run the standalone-vs-distributed differential when the spec is
  /// eligible (threads + loopback TCP; ~50-200 ms per course).
  bool run_distributed = false;
  /// Worker counts for the serial-vs-threaded differential (oracle 11):
  /// each entry reruns the course under ExecutionBackend::kThreaded and
  /// requires a bit-identical result. Empty disables the oracle.
  std::vector<int> parallel_threads = {2, 4};
  /// Backend for every base oracle run: 0 = serial (the default), > 0 =
  /// kThreaded with that many workers. fuzz_course --threads sets this so
  /// shrunk repros replay under either backend.
  int exec_threads = 0;
};

/// True when the spec can be compared against a distributed run: the TCP
/// hosts support neither virtual-time strategies (kAsyncTime, receive
/// deadlines) nor fault decorators, and only full-participation sync
/// courses have an arrival-order-independent round structure.
bool DistributedEligible(const CourseSpec& spec);

/// Runs every invariant oracle against one course spec:
///   1. termination + stats sanity (finished/aborted, bounded accuracies,
///      staleness within tolerance, round count within max_rounds),
///   2. virtual-time monotonicity of deliveries and of the accuracy curve,
///   3. message conservation under the fault plan (delivered == sent
///      - dropped + duplicated - suppressed; suppression exact),
///   4. same-seed bit-reproducibility (final model, curve, counters),
///   5. through_wire equivalence (flipping the codec flag is invisible),
///   6. aggregate-weight conservation of the spec's aggregator,
///   7. (optional) standalone-vs-distributed differential,
///   8. crash-resume bit-identity: kill the server at the spec's
///      crash_frac point, restore from a serialized snapshot, and require
///      the resumed course to match the uninterrupted run bit for bit,
///   9. flat-vs-sharded equivalence (hierarchical specs without a kill):
///      the flat twin of the spec must produce the same round structure
///      and per-client aggregation counts, and a final accuracy within
///      float-reassociation tolerance (FedAvg pre-aggregation is exact in
///      real arithmetic),
///  10. aggregator failover (specs with a kill schedule): the course still
///      finishes unaborted, a standby promotion is observed, and no client
///      is aggregated twice in one round (weight conservation across the
///      failover boundary),
///  11. serial-vs-threaded differential: the course rerun under
///      ExecutionBackend::kThreaded at each OracleOptions::parallel_threads
///      worker count must reproduce the base run bit for bit (final model,
///      curve, client accuracies, message counts, round structure),
///  12. eager-vs-virtualized differential (DESIGN.md §13): the course
///      rerun with FedJob::virtualize must reproduce the eager run bit for
///      bit — final model, curve, client accuracies, message and fault
///      counters, round structure, and the metrics exposition (up to the
///      fs_virtual_* gauges only the virtualized run emits); peak live
///      clients must stay within the cohort-derived cache bound, and the
///      virtualized crash drill must resume bit-identically too,
///  13. guard transparency (benign specs, DESIGN.md §14): a pure-screening
///      ingress guard (no norm bound) over a course with zero hostile
///      clients must be bit-invisible — final model, curve, counters,
///      round structure, and the full metrics exposition all match the
///      guard-off twin, and nothing is rejected or quarantined,
///  14. Byzantine tolerance (hostile specs): the course completes without
///      aborting, the final shared model is finite, only plan-hostile
///      clients are ever quarantined (each at most once), and every
///      non-finite update delivered while the course was live was rejected
///      at ingress (delivered-poison count <= rejection count).
/// Returns every violation found (empty = course passed).
std::vector<Violation> CheckCourse(const CourseSpec& spec,
                                   const OracleOptions& options = {});

/// Oracle 6 stand-alone: with identical deltas and equal local step
/// counts, any sane aggregation must return global + delta regardless of
/// sample counts and staleness (weights are normalized). Exposed for
/// direct property tests.
std::vector<Violation> CheckAggregateWeightConservation(const CourseSpec& spec);

}  // namespace testing
}  // namespace fedscope

#endif  // FEDSCOPE_TESTING_ORACLES_H_
