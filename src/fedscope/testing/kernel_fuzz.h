#ifndef FEDSCOPE_TESTING_KERNEL_FUZZ_H_
#define FEDSCOPE_TESTING_KERNEL_FUZZ_H_

#include <cstdint>

#include "fedscope/testing/oracles.h"

namespace fedscope {
namespace testing {

struct FuzzReport {
  int trials = 0;
  std::vector<Violation> violations;
};

/// Differential fuzz of the tensor kernels over random shapes: tiled
/// Gemm/GemmTransA/GemmTransB vs the scalar *Reference kernels (exact
/// bit equality — the determinism contract), Im2Col/Col2Im vs a naive
/// gather/scatter, the im2col+gemm convolution lowering vs the direct
/// double-accumulating Conv2dForwardReference (tolerance), and the
/// elementwise helpers vs naive loops (exact).
FuzzReport FuzzKernels(uint64_t seed, int trials);

/// Fuzz of the wire codec: random valid messages must decode and
/// re-encode bit-exactly (and EncodedMessageSize must match); frame
/// split/shuffle/reassemble must restore the stream; truncated, mutated,
/// and pure-garbage frames must return Status — never crash.
FuzzReport FuzzCodec(uint64_t seed, int trials);

}  // namespace testing
}  // namespace fedscope

#endif  // FEDSCOPE_TESTING_KERNEL_FUZZ_H_
