#include "fedscope/testing/shrink.h"

#include <cmath>
#include <cstdint>
#include <string>

namespace fedscope {
namespace testing {
namespace {

/// Shared shrink state: the smallest failing spec so far plus the budget.
struct Shrinker {
  CourseSpec best;
  const FailurePredicate& still_fails;
  int max_evals;
  int evals = 0;

  bool Exhausted() const { return evals >= max_evals; }

  /// Runs the predicate on Clamp(candidate); keeps it when it still fails.
  /// Candidates that clamp back onto `best` are free (no evaluation).
  bool Try(CourseSpec candidate) {
    candidate = CourseGen::Clamp(std::move(candidate));
    if (candidate == best) return false;
    if (Exhausted()) return false;
    ++evals;
    if (!still_fails(candidate)) return false;
    best = std::move(candidate);
    return true;
  }

  template <typename T>
  bool TryField(T CourseSpec::* field, T value) {
    CourseSpec candidate = best;
    candidate.*field = value;
    return Try(std::move(candidate));
  }

  /// Moves a numeric field toward `target` by bisection: first the target
  /// itself, then midpoints between target and the current failing value.
  template <typename T>
  bool BisectField(T CourseSpec::* field, T target) {
    if (best.*field == target) return false;
    if (TryField(field, target)) return true;
    bool moved = false;
    T lo = target;           // known-passing side
    T hi = best.*field;      // known-failing side
    for (int iter = 0; iter < 16 && !Exhausted(); ++iter) {
      T mid = Midpoint(lo, hi);
      if (mid == lo || mid == hi) break;
      if (TryField(field, mid)) {
        hi = best.*field;  // clamp may have adjusted the candidate
        moved = true;
      } else {
        lo = mid;
      }
    }
    return moved;
  }

  static int Midpoint(int lo, int hi) { return lo + (hi - lo) / 2; }
  static double Midpoint(double lo, double hi) {
    double mid = lo + (hi - lo) / 2.0;
    return std::abs(hi - lo) < 1e-3 ? lo : mid;
  }
};

}  // namespace

ShrinkResult ShrinkCourse(const CourseSpec& failing,
                          const FailurePredicate& still_fails,
                          const ShrinkOptions& options) {
  CourseSpec baseline;  // benign defaults; keep the failing seed
  baseline.seed = failing.seed;

  Shrinker s{CourseGen::Clamp(failing), still_fails, options.max_evals};

  // Categorical fields: either the benign default reproduces or the field
  // is load-bearing — no intermediate values to bisect.
  const struct {
    std::string CourseSpec::* field;
  } kStringFields[] = {
      {&CourseSpec::dataset},         {&CourseSpec::model},
      {&CourseSpec::strategy},        {&CourseSpec::broadcast},
      {&CourseSpec::sampler},         {&CourseSpec::aggregator},
      {&CourseSpec::personalization}, {&CourseSpec::compression},
      {&CourseSpec::topology_assignment},
  };
  const struct {
    bool CourseSpec::* field;
  } kBoolFields[] = {
      {&CourseSpec::collect_client_metrics},
      {&CourseSpec::dp_enable},
      {&CourseSpec::heterogeneous_fleet},
      {&CourseSpec::through_wire},
      {&CourseSpec::suppress_duplicates},
  };
  const struct {
    int CourseSpec::* field;
  } kIntFields[] = {
      {&CourseSpec::num_clients},    {&CourseSpec::pool_size},
      {&CourseSpec::hidden},         {&CourseSpec::num_groups},
      {&CourseSpec::concurrency},    {&CourseSpec::aggregation_goal},
      {&CourseSpec::staleness_tolerance},
      {&CourseSpec::min_received},   {&CourseSpec::max_round_extensions},
      {&CourseSpec::max_rounds},     {&CourseSpec::eval_interval},
      {&CourseSpec::local_steps},    {&CourseSpec::batch_size},
      {&CourseSpec::topology_shards},
      {&CourseSpec::topology_standbys},
      {&CourseSpec::topology_kill_shard},
      {&CourseSpec::topology_kill_round},
  };
  const struct {
    double CourseSpec::* field;
  } kDoubleFields[] = {
      {&CourseSpec::overselect_frac},
      {&CourseSpec::staleness_rho},
      {&CourseSpec::time_budget},
      {&CourseSpec::receive_deadline},
      {&CourseSpec::lr},
      {&CourseSpec::jitter_sigma},
      {&CourseSpec::trim_frac},
      {&CourseSpec::compression_keep_frac},
      {&CourseSpec::dp_noise},
      {&CourseSpec::dp_clip},
      {&CourseSpec::fault_dropout_frac},
      {&CourseSpec::fault_crash_prob},
      {&CourseSpec::fault_straggler_frac},
      {&CourseSpec::fault_straggler_delay},
      {&CourseSpec::fault_msg_loss_prob},
      {&CourseSpec::fault_msg_duplicate_prob},
      {&CourseSpec::fault_msg_delay_prob},
      {&CourseSpec::fault_msg_delay_max},
      {&CourseSpec::topology_failure_timeout},
  };

  int fields_reset = 0;
  // Passes repeat until a fixpoint: resetting one field (e.g. strategy)
  // often re-opens Clamp headroom for another (e.g. fault knobs).
  for (int pass = 0; pass < 4 && !s.Exhausted(); ++pass) {
    bool changed = false;
    for (const auto& f : kStringFields) {
      if (s.best.*f.field != baseline.*f.field &&
          s.TryField(f.field, baseline.*f.field)) {
        ++fields_reset;
        changed = true;
      }
    }
    for (const auto& f : kBoolFields) {
      if (s.best.*f.field != baseline.*f.field &&
          s.TryField(f.field, baseline.*f.field)) {
        ++fields_reset;
        changed = true;
      }
    }
    for (const auto& f : kIntFields) {
      if (s.BisectField(f.field, baseline.*f.field)) {
        if (s.best.*f.field == baseline.*f.field) ++fields_reset;
        changed = true;
      }
    }
    for (const auto& f : kDoubleFields) {
      if (s.BisectField(f.field, baseline.*f.field)) {
        if (s.best.*f.field == baseline.*f.field) ++fields_reset;
        changed = true;
      }
    }
    if (!changed) break;
  }

  ShrinkResult result;
  result.spec = s.best;
  result.evals = s.evals;
  result.fields_reset = fields_reset;
  return result;
}

}  // namespace testing
}  // namespace fedscope
