#include "fedscope/testing/oracles.h"

#include <cmath>
#include <cstring>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

#include "fedscope/comm/socket_transport.h"
#include "fedscope/core/distributed.h"
#include "fedscope/core/events.h"
#include "fedscope/personalization/fedbn.h"
#include "fedscope/util/rng.h"

namespace fedscope {
namespace testing {
namespace {

bool Finite(double v) { return std::isfinite(v); }

bool StateDictsBitEqual(const StateDict& a, const StateDict& b,
                        std::string* detail) {
  if (a.size() != b.size()) {
    *detail = "parameter count differs";
    return false;
  }
  for (const auto& [name, tensor] : a) {
    const auto it = b.find(name);
    if (it == b.end()) {
      *detail = "missing parameter " + name;
      return false;
    }
    if (tensor.shape() != it->second.shape()) {
      *detail = "shape mismatch on " + name;
      return false;
    }
    for (int64_t k = 0; k < tensor.numel(); ++k) {
      // Bitwise comparison through memcmp semantics: NaN != NaN under
      // operator== would hide a NaN-poisoned model from the oracle.
      const float x = tensor.at(k);
      const float y = it->second.at(k);
      if (std::memcmp(&x, &y, sizeof(float)) != 0) {
        std::ostringstream out;
        out << name << "[" << k << "]: " << x << " vs " << y;
        *detail = out.str();
        return false;
      }
    }
  }
  return true;
}

void Check(std::vector<Violation>* v, bool ok, const std::string& oracle,
           const std::string& detail) {
  if (!ok) v->push_back({oracle, detail});
}

bool StateDictFinite(const StateDict& sd, std::string* detail) {
  for (const auto& [name, tensor] : sd) {
    for (int64_t k = 0; k < tensor.numel(); ++k) {
      if (!std::isfinite(tensor.at(k))) {
        *detail = name + "[" + std::to_string(k) + "] is non-finite";
        return false;
      }
    }
  }
  return true;
}

bool PayloadHasNonFiniteTensor(const Payload& payload) {
  for (const auto& [name, tensor] : payload.tensors()) {
    for (int64_t k = 0; k < tensor.numel(); ++k) {
      if (!std::isfinite(tensor.at(k))) return true;
    }
  }
  return false;
}

template <typename T>
std::string Vs(const char* what, T expected, T observed) {
  std::ostringstream out;
  out << what << ": expected " << expected << ", observed " << observed;
  return out.str();
}

/// Drops the fs_virtual_* series (and their TYPE headers) from a
/// Prometheus exposition — the only lines a virtualized run may add.
std::string StripVirtualSeries(const std::string& text) {
  std::istringstream in(text);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("fs_virtual_") != std::string::npos) continue;
    out << line << "\n";
  }
  return out.str();
}

/// The cohort-derived auto capacity of the virtualized client cache
/// (FedRunner::CacheCapacity) plus the one-client transient a delivery to
/// a non-live client creates before Trim runs — the bound oracle 12 holds
/// live_peak to.
int64_t CohortCacheBound(const CourseSpec& spec) {
  int cohort = spec.concurrency;
  if (spec.strategy == "sync_overselect") {
    cohort =
        static_cast<int>(std::ceil(cohort * (1.0 + spec.overselect_frac)));
  }
  return cohort + 2 + 1;
}

}  // namespace

std::string FormatViolations(const std::vector<Violation>& violations) {
  std::ostringstream out;
  for (const Violation& v : violations) {
    out << "  [" << v.oracle << "] " << v.detail << "\n";
  }
  return out.str();
}

CourseObservation RunInstrumentedCourse(const CourseSpec& spec,
                                        int64_t crash_at_event,
                                        int exec_threads, bool virtualize,
                                        std::string* metrics_export) {
  auto fixture = MakeCourseFixture(spec);
  FedJob job = fixture->MakeJob();
  job.fault.server_crash_at_event = crash_at_event;
  if (exec_threads > 0) {
    job.exec.backend = ExecutionBackend::kThreaded;
    job.exec.num_threads = exec_threads;
  }
  job.virtualize = virtualize;

  CourseObservation obs;
  MetricsRegistry metrics;
  if (metrics_export != nullptr) job.obs.metrics = &metrics;
  if (spec.Hierarchical()) {
    // Flat courses keep the all-null ObsContext (byte-identity with the
    // uninstrumented build); hierarchical oracles need the per-round
    // contributor record to check weight conservation across failovers.
    job.obs.course_log = &obs.course_log;
  }
  double last_delivery_time = -1.0;
  // Oracle 14 reconciles delivered poison against ingress rejections; the
  // scan only runs for hostile specs, and reads the live server through the
  // runner so the crash drill's server replacement cannot dangle it.
  const bool hostile_watch = spec.Hostile();
  FedRunner* live_runner = nullptr;
  job.send_tap = [&obs](const Message&) { ++obs.sent; };
  job.delivery_tap = [&obs, &last_delivery_time, hostile_watch,
                      &live_runner](const Message& msg) {
    ++obs.delivered;
    if (msg.timestamp < last_delivery_time && obs.time_regression.empty()) {
      std::ostringstream out;
      out << "delivery #" << obs.delivered << " (" << msg.msg_type << " "
          << msg.sender << "->" << msg.receiver << ") at t=" << msg.timestamp
          << " after t=" << last_delivery_time;
      obs.time_regression = out.str();
    }
    last_delivery_time = std::max(last_delivery_time, msg.timestamp);
    if (hostile_watch && msg.msg_type == events::kModelUpdate &&
        live_runner != nullptr && !live_runner->server()->finished() &&
        PayloadHasNonFiniteTensor(msg.payload)) {
      ++obs.nonfinite_updates_delivered;
    }
  };

  FedRunner runner(std::move(job));
  live_runner = &runner;
  obs.result = runner.Run();
  obs.finished = runner.server()->finished();
  obs.suppressed = runner.duplicates_suppressed();
  obs.recoveries = runner.recoveries();
  obs.fault = runner.fault_plan().counters();
  obs.hostile = runner.fault_plan().hostile_clients();
  obs.aggregators_killed = runner.aggregators_killed();
  for (const auto& agg : runner.aggregators()) {
    obs.promotions += agg->promotions();
    obs.partials_forwarded += agg->partials_forwarded();
  }
  if (runner.client_cache() != nullptr) obs.cache = runner.client_cache()->stats();
  if (metrics_export != nullptr) *metrics_export = metrics.PrometheusText();
  return obs;
}

bool DistributedEligible(const CourseSpec& spec) {
  return spec.population == 0 && spec.topology_shards == 0 &&
         spec.strategy == "sync_vanilla" &&
         spec.concurrency == spec.num_clients &&
         spec.receive_deadline == 0.0 && !spec.suppress_duplicates &&
         spec.fault_dropout_frac == 0.0 && spec.fault_crash_prob == 0.0 &&
         spec.fault_straggler_frac == 0.0 && spec.fault_msg_loss_prob == 0.0 &&
         spec.fault_msg_duplicate_prob == 0.0 &&
         spec.fault_msg_delay_prob == 0.0 && spec.hostile_frac == 0.0;
}

namespace {

/// Runs the spec's course over loopback TCP with the exact worker wiring
/// FedRunner uses (same client seeds, same factories) and returns the
/// server stats. Requires DistributedEligible(spec).
ServerStats RunDistributedCourse(const CourseSpec& spec, Status* status) {
  auto fixture = MakeCourseFixture(spec);
  FedJob job = fixture->MakeJob();
  const int n = spec.num_clients;

  auto listener = TcpListener::Bind(0);
  if (!listener.ok()) {
    *status = listener.status();
    return {};
  }
  const int port = listener->port();

  ServerOptions server_options = job.server;
  server_options.expected_clients = n;
  if (server_options.seed == 0) server_options.seed = job.seed;
  if (!job.aggregator_factory) {
    job.aggregator_factory = [&spec]() { return MakeSpecAggregator(spec); };
  }
  DistributedServerHost host(server_options, job.init_model,
                             job.aggregator_factory(),
                             std::move(listener.value()));
  const Dataset* server_test = &fixture->data.server_test;
  host.server()->set_evaluator([server_test](Model* model) {
    return EvaluateClassifier(model, *server_test);
  });

  ServerStats stats;
  std::thread server_thread([&] { stats = host.Run(); });

  if (job.fleet.empty()) job.fleet.assign(n, DeviceProfile{});
  if (!job.trainer_factory) {
    job.trainer_factory = [](int) { return std::make_unique<GeneralTrainer>(); };
  }
  Rng seeder(job.seed);
  std::vector<std::thread> client_threads;
  std::vector<Status> client_status(n);
  for (int id = 1; id <= n; ++id) {
    client_threads.emplace_back([&, id] {
      ClientOptions options = job.client;
      options.device = job.fleet[id - 1];
      options.seed = seeder.Fork(static_cast<uint64_t>(id)).Next();
      if (job.client_customizer) job.client_customizer(id, &options);
      DistributedClientHost client_host(
          id, std::move(options), job.init_model,
          fixture->data.clients[id - 1], job.trainer_factory(id), "127.0.0.1",
          port);
      client_status[id - 1] = client_host.Run();
    });
  }
  for (auto& t : client_threads) t.join();
  server_thread.join();

  *status = Status::Ok();
  for (const Status& s : client_status) {
    if (!s.ok()) *status = s;
  }
  return stats;
}

}  // namespace

std::vector<Violation> CheckAggregateWeightConservation(
    const CourseSpec& spec) {
  std::vector<Violation> v;
  Rng rng(spec.seed ^ 0xa99ull);

  StateDict global;
  StateDict delta;
  for (const char* name : {"fc.weight", "fc.bias"}) {
    Tensor g({3, 2});
    Tensor d({3, 2});
    for (int64_t k = 0; k < g.numel(); ++k) {
      g.at(k) = static_cast<float>(rng.Uniform(-1.0, 1.0));
      d.at(k) = static_cast<float>(rng.Uniform(-0.5, 0.5));
    }
    global.emplace(name, std::move(g));
    delta.emplace(name, std::move(d));
  }

  // Identical deltas, equal local steps, varying sample counts and
  // staleness: normalized weights must sum to one, so the aggregate is
  // exactly global + delta (FedNova's tau_eff rescaling cancels too).
  std::vector<ClientUpdate> updates;
  const int k = 3;
  for (int i = 0; i < k; ++i) {
    ClientUpdate u;
    u.client_id = i + 1;
    u.staleness = i;
    u.num_samples = static_cast<double>(rng.UniformInt(2, 40));
    u.local_steps = 2;
    u.delta = delta;
    updates.push_back(std::move(u));
  }

  auto aggregator = MakeSpecAggregator(spec);
  const Result<StateDict> aggregated = aggregator->Aggregate(global, updates);
  if (!aggregated.ok()) {
    v.push_back({"aggregate_weight_conservation",
                 "aggregation of a benign cohort failed: " +
                     aggregated.status().ToString()});
    return v;
  }
  const StateDict& next = *aggregated;
  for (const auto& [name, tensor] : next) {
    const Tensor& g = global.at(name);
    const Tensor& d = delta.at(name);
    for (int64_t idx = 0; idx < tensor.numel(); ++idx) {
      const double expected = static_cast<double>(g.at(idx)) + d.at(idx);
      const double observed = tensor.at(idx);
      if (!Finite(observed) || std::abs(observed - expected) > 1e-4) {
        std::ostringstream out;
        out << spec.aggregator << " " << name << "[" << idx
            << "]: expected global+delta=" << expected << ", got " << observed;
        v.push_back({"aggregate_weight_conservation", out.str()});
        return v;  // one coordinate is enough evidence
      }
    }
  }
  return v;
}

std::vector<Violation> CheckCourse(const CourseSpec& spec,
                                   const OracleOptions& options) {
  std::vector<Violation> v;

  // -- oracle 1+2+3: one instrumented run ----------------------------------
  // (non-const: Model::GetStateDict is a mutating accessor)
  CourseObservation a = RunInstrumentedCourse(spec, -1, options.exec_threads);

  Check(&v, a.finished, "termination",
        "course neither finished nor aborted (stalled event graph)");
  const ServerStats& stats = a.result.server;
  Check(&v, stats.rounds <= spec.max_rounds, "stats_sanity",
        Vs("rounds > max_rounds", spec.max_rounds, stats.rounds));
  Check(&v, stats.rounds > 0 || stats.aborted || spec.max_rounds == 0,
        "stats_sanity", "zero rounds without an abort");
  for (const auto& [t, acc] : stats.curve) {
    Check(&v, Finite(acc) && acc >= 0.0 && acc <= 1.0, "stats_sanity",
          Vs("curve accuracy out of [0,1]", 0.0, acc));
    Check(&v, Finite(t) && t >= 0.0, "time_monotonicity",
          Vs("negative/NaN curve time", 0.0, t));
  }
  for (size_t i = 1; i < stats.curve.size(); ++i) {
    Check(&v, stats.curve[i].first >= stats.curve[i - 1].first,
          "time_monotonicity",
          Vs("curve time regressed", stats.curve[i - 1].first,
             stats.curve[i].first));
  }
  for (int staleness : stats.staleness_log) {
    Check(&v, staleness >= 0 && staleness <= spec.staleness_tolerance,
          "stats_sanity",
          Vs("aggregated staleness outside tolerance", spec.staleness_tolerance,
             staleness));
  }
  for (double acc : a.result.client_test_accuracy) {
    Check(&v, Finite(acc) && acc >= 0.0 && acc <= 1.0, "stats_sanity",
          Vs("client accuracy out of [0,1]", 0.0, acc));
  }
  Check(&v, a.time_regression.empty(), "time_monotonicity", a.time_regression);

  // aggregator_dropped is deliberately absent from `vanished`: messages
  // addressed to a crashed aggregator are dispatched by the pump (the
  // delivery tap sees them) and then eaten by the dead endpoint, so at
  // pump level they are delivered, not lost in transit.
  const int64_t vanished =
      a.fault.dropout_suppressed + a.fault.crashes + a.fault.lost;
  Check(&v, a.delivered == a.sent - vanished + a.fault.duplicated - a.suppressed,
        "message_conservation",
        Vs("delivered != sent - dropped + duplicated - suppressed",
           a.sent - vanished + a.fault.duplicated - a.suppressed, a.delivered));
  if (spec.suppress_duplicates) {
    Check(&v, a.suppressed == a.fault.duplicated, "message_conservation",
          Vs("suppressed != fault-duplicated", a.fault.duplicated,
             a.suppressed));
  } else {
    Check(&v, a.suppressed == 0, "message_conservation",
          Vs("suppression off but deliveries suppressed", int64_t{0},
             a.suppressed));
  }

  // -- oracle 4: same-seed bit-reproducibility ------------------------------
  CourseObservation b = RunInstrumentedCourse(spec, -1, options.exec_threads);
  std::string detail;
  Check(&v,
        StateDictsBitEqual(a.result.final_model.GetStateDict(),
                           b.result.final_model.GetStateDict(), &detail),
        "reproducibility", "same-seed final models differ: " + detail);
  Check(&v, a.result.server.curve == b.result.server.curve, "reproducibility",
        "same-seed accuracy curves differ");
  Check(&v, a.sent == b.sent && a.delivered == b.delivered, "reproducibility",
        Vs("same-seed message counts differ", a.sent, b.sent) + " / " +
            Vs("delivered", a.delivered, b.delivered));
  Check(&v,
        a.result.client_test_accuracy == b.result.client_test_accuracy,
        "reproducibility", "same-seed client accuracies differ");

  // -- oracle 5: through_wire equivalence -----------------------------------
  CourseSpec wired = spec;
  wired.through_wire = !spec.through_wire;
  CourseObservation w = RunInstrumentedCourse(wired, -1, options.exec_threads);
  Check(&v,
        StateDictsBitEqual(a.result.final_model.GetStateDict(),
                           w.result.final_model.GetStateDict(), &detail),
        "through_wire", "codec round-trip changed the final model: " + detail);
  Check(&v, a.result.server.curve == w.result.server.curve, "through_wire",
        "codec round-trip changed the accuracy curve");
  Check(&v, a.sent == w.sent && a.delivered == w.delivered, "through_wire",
        Vs("codec round-trip changed message counts", a.sent, w.sent));

  // -- oracle 6: aggregate-weight conservation ------------------------------
  for (Violation& violation : CheckAggregateWeightConservation(spec)) {
    v.push_back(std::move(violation));
  }

  // -- oracle 7: standalone-vs-distributed differential ---------------------
  if (options.run_distributed && DistributedEligible(spec)) {
    Status status = Status::Ok();
    const ServerStats dist = RunDistributedCourse(spec, &status);
    Check(&v, status.ok(), "distributed_differential",
          "distributed run failed: " + status.ToString());
    if (status.ok()) {
      Check(&v, dist.rounds == stats.rounds, "distributed_differential",
            Vs("round count differs", stats.rounds, dist.rounds));
      Check(&v, dist.curve.size() == stats.curve.size(),
            "distributed_differential",
            Vs("curve length differs", stats.curve.size(), dist.curve.size()));
      // Arrival order changes float summation order, so accuracies agree
      // only approximately (the structure above must agree exactly).
      Check(&v, std::abs(dist.final_accuracy - stats.final_accuracy) < 0.25,
            "distributed_differential",
            Vs("final accuracy diverged", stats.final_accuracy,
               dist.final_accuracy));
    }
  }

  // -- oracle 8: crash-resume bit-identity ----------------------------------
  // Kill the server between two deliveries at the spec's crash_frac point,
  // restore a freshly built server from a wire-codec-serialized snapshot
  // (exactly what a restarted process reads from disk), and require the
  // resumed course to be indistinguishable from the uninterrupted run: any
  // divergence means some server state escaped the snapshot schema.
  if (a.delivered > 0) {
    const int64_t crash_at = std::min<int64_t>(
        a.delivered - 1,
        static_cast<int64_t>(spec.crash_frac *
                             static_cast<double>(a.delivered)));
    CourseObservation c = RunInstrumentedCourse(spec, crash_at, options.exec_threads);
    Check(&v, c.recoveries == 1, "crash_resume",
          Vs("server restores performed", int64_t{1}, c.recoveries));
    Check(&v,
          StateDictsBitEqual(a.result.final_model.GetStateDict(),
                             c.result.final_model.GetStateDict(), &detail),
          "crash_resume", "crash-resume changed the final model: " + detail);
    Check(&v, a.result.server.curve == c.result.server.curve, "crash_resume",
          "crash-resume changed the accuracy curve");
    Check(&v, a.sent == c.sent && a.delivered == c.delivered, "crash_resume",
          Vs("crash-resume changed sent", a.sent, c.sent) + " / " +
              Vs("delivered", a.delivered, c.delivered));
    Check(&v, a.result.client_test_accuracy == c.result.client_test_accuracy,
          "crash_resume", "crash-resume changed client accuracies");
    Check(&v,
          a.result.server.rounds == c.result.server.rounds &&
              a.result.server.staleness_log == c.result.server.staleness_log,
          "crash_resume", "crash-resume changed the round structure");
  }

  // -- oracle 9: flat-vs-sharded equivalence --------------------------------
  // FedAvg pre-aggregation is exact in real arithmetic: Σ_s (N_s/N)(Σ_i
  // n_i δ_i / N_s) == Σ_i (n_i/N) δ_i. The flat twin (same spec, topology
  // axis zeroed) must therefore produce the same round structure and the
  // same per-client aggregation counts; accuracies agree only to float
  // reassociation tolerance.
  // Hostile specs are excluded: the hostile draws consume the plan's rng in
  // send order, and the sharded and flat message sequences differ, so the
  // two runs are attacked differently (and a flat root replaces rejected
  // senders where an edge only covers them) — no equivalence to check.
  if (spec.Hierarchical() && spec.topology_kill_shard < 0 && !spec.Hostile()) {
    CourseSpec flat_spec = spec;
    flat_spec.topology_shards = 0;
    flat_spec = CourseGen::Clamp(std::move(flat_spec));
    CourseObservation f = RunInstrumentedCourse(flat_spec, -1, options.exec_threads);
    Check(&v, f.finished, "sharding_equivalence", "flat twin stalled");
    Check(&v, f.result.server.rounds == stats.rounds, "sharding_equivalence",
          Vs("flat twin round count differs", stats.rounds,
             f.result.server.rounds));
    Check(&v, f.result.server.curve.size() == stats.curve.size(),
          "sharding_equivalence",
          Vs("flat twin curve length differs", stats.curve.size(),
             f.result.server.curve.size()));
    Check(&v, f.result.server.agg_count == stats.agg_count,
          "sharding_equivalence",
          "flat twin per-client aggregation counts differ");
    Check(&v,
          std::abs(f.result.server.final_accuracy - stats.final_accuracy) <
              0.1,
          "sharding_equivalence",
          Vs("flat twin final accuracy diverged", f.result.server.final_accuracy,
             stats.final_accuracy));
    Check(&v, stats.shard_failovers == 0, "sharding_equivalence",
          Vs("failover without a kill schedule", int64_t{0},
             stats.shard_failovers));
  }

  // -- oracle 10: aggregator failover ---------------------------------------
  if (spec.Hierarchical()) {
    // Weight conservation across the failover boundary: a client may train
    // twice (original broadcast + post-promotion re-broadcast) but only one
    // of its updates may reach aggregation per round.
    for (const CourseRoundRecord& r : a.course_log.rounds()) {
      std::set<int> distinct(r.contributors.begin(), r.contributors.end());
      Check(&v, distinct.size() == r.contributors.size(),
            "aggregator_failover",
            "round " + std::to_string(r.round) +
                " aggregated a client twice (" +
                std::to_string(r.contributors.size()) + " contributions, " +
                std::to_string(distinct.size()) + " distinct)");
      for (int id : r.contributors) {
        Check(&v, id >= 1 && id <= spec.EffectiveClients(),
              "aggregator_failover",
              Vs("contributor id out of fleet range", spec.EffectiveClients(),
                 id));
      }
    }
    if (spec.topology_kill_shard >= 0) {
      Check(&v, a.aggregators_killed >= 1, "aggregator_failover",
            Vs("kill scheduled but no aggregator died", int64_t{1},
               a.aggregators_killed));
      Check(&v, a.promotions >= 1, "aggregator_failover",
            Vs("no standby promoted after the kill", int64_t{1},
               a.promotions));
      Check(&v, stats.shard_failovers >= 1, "aggregator_failover",
            Vs("root acknowledged no failover", int64_t{1},
               stats.shard_failovers));
      Check(&v, !stats.aborted, "aggregator_failover",
            "course aborted instead of failing over");
    }
  }

  // -- oracle 11: serial-vs-threaded differential ---------------------------
  // The threaded backend commits parallel client work in canonical order
  // (DESIGN.md §12), so at every worker count the course must reproduce
  // the base run bit for bit — models, curve, counters, round structure.
  for (int threads : options.parallel_threads) {
    CourseObservation p = RunInstrumentedCourse(spec, -1, threads);
    const std::string tag = "threads=" + std::to_string(threads) + ": ";
    Check(&v, p.finished == a.finished, "parallel_differential",
          tag + "termination differs");
    Check(&v,
          StateDictsBitEqual(a.result.final_model.GetStateDict(),
                             p.result.final_model.GetStateDict(), &detail),
          "parallel_differential",
          tag + "threaded backend changed the final model: " + detail);
    Check(&v, a.result.server.curve == p.result.server.curve,
          "parallel_differential",
          tag + "threaded backend changed the accuracy curve");
    Check(&v, a.sent == p.sent && a.delivered == p.delivered,
          "parallel_differential",
          tag + Vs("message counts differ (sent)", a.sent, p.sent) + " / " +
              Vs("delivered", a.delivered, p.delivered));
    Check(&v, a.suppressed == p.suppressed, "parallel_differential",
          tag + Vs("suppressed differs", a.suppressed, p.suppressed));
    Check(&v,
          a.fault.dropout_suppressed == p.fault.dropout_suppressed &&
              a.fault.crashes == p.fault.crashes &&
              a.fault.lost == p.fault.lost &&
              a.fault.duplicated == p.fault.duplicated &&
              a.fault.delayed == p.fault.delayed &&
              a.fault.aggregator_dropped == p.fault.aggregator_dropped,
          "parallel_differential",
          tag + "fault-plan counters differ (fault rng consumed off-order)");
    Check(&v, a.result.client_test_accuracy == p.result.client_test_accuracy,
          "parallel_differential",
          tag + "threaded backend changed client accuracies");
    Check(&v,
          a.result.server.rounds == p.result.server.rounds &&
              a.result.server.staleness_log == p.result.server.staleness_log &&
              a.result.server.agg_count == p.result.server.agg_count,
          "parallel_differential",
          tag + "threaded backend changed the round structure");
  }

  // -- oracle 12: eager-vs-virtualized differential -------------------------
  // Client virtualization (DESIGN.md §13) is a pure execution-strategy
  // change: descriptors plus a bounded cache must reproduce the eager run
  // bit for bit. Both sides re-run with a metrics registry attached so the
  // full obs exposition is compared too — the virtualized run may add only
  // its fs_virtual_* gauges, which are stripped before comparing.
  {
    std::string eager_metrics;
    std::string virt_metrics;
    CourseObservation e = RunInstrumentedCourse(spec, -1, options.exec_threads,
                                                /*virtualize=*/false,
                                                &eager_metrics);
    CourseObservation vv = RunInstrumentedCourse(spec, -1, options.exec_threads,
                                                 /*virtualize=*/true,
                                                 &virt_metrics);
    Check(&v, vv.finished == e.finished, "virtualization_differential",
          "termination differs");
    Check(&v,
          StateDictsBitEqual(e.result.final_model.GetStateDict(),
                             vv.result.final_model.GetStateDict(), &detail),
          "virtualization_differential",
          "virtualization changed the final model: " + detail);
    Check(&v, e.result.server.curve == vv.result.server.curve,
          "virtualization_differential",
          "virtualization changed the accuracy curve");
    Check(&v, e.sent == vv.sent && e.delivered == vv.delivered,
          "virtualization_differential",
          Vs("message counts differ (sent)", e.sent, vv.sent) + " / " +
              Vs("delivered", e.delivered, vv.delivered));
    Check(&v, e.suppressed == vv.suppressed, "virtualization_differential",
          Vs("suppressed differs", e.suppressed, vv.suppressed));
    Check(&v,
          e.fault.dropout_suppressed == vv.fault.dropout_suppressed &&
              e.fault.crashes == vv.fault.crashes &&
              e.fault.lost == vv.fault.lost &&
              e.fault.duplicated == vv.fault.duplicated &&
              e.fault.delayed == vv.fault.delayed &&
              e.fault.aggregator_dropped == vv.fault.aggregator_dropped,
          "virtualization_differential",
          "fault-plan counters differ (fault rng consumed off-order)");
    Check(&v, e.result.client_test_accuracy == vv.result.client_test_accuracy,
          "virtualization_differential",
          "virtualization changed client accuracies");
    Check(&v,
          e.result.server.rounds == vv.result.server.rounds &&
              e.result.server.staleness_log == vv.result.server.staleness_log &&
              e.result.server.agg_count == vv.result.server.agg_count,
          "virtualization_differential",
          "virtualization changed the round structure");
    Check(&v, StripVirtualSeries(virt_metrics) == eager_metrics,
          "virtualization_differential",
          "metrics exposition differs beyond the fs_virtual_ gauges");
    const int64_t bound = CohortCacheBound(spec);
    Check(&v, vv.cache.live_peak >= 1 && vv.cache.live_peak <= bound,
          "virtualization_differential",
          Vs("peak live clients outside [1, cohort bound]", bound,
             vv.cache.live_peak));

    // Virtualized crash drill — oracle 8 under virtualization: the cache
    // (the "other processes") survives the server kill, and the resumed
    // course must still match the eager uninterrupted run bit for bit.
    if (e.delivered > 0) {
      const int64_t crash_at = std::min<int64_t>(
          e.delivered - 1,
          static_cast<int64_t>(spec.crash_frac *
                               static_cast<double>(e.delivered)));
      CourseObservation vc = RunInstrumentedCourse(
          spec, crash_at, options.exec_threads, /*virtualize=*/true);
      Check(&v, vc.recoveries == 1, "virtualization_differential",
            Vs("virtualized server restores performed", int64_t{1},
               vc.recoveries));
      Check(&v,
            StateDictsBitEqual(e.result.final_model.GetStateDict(),
                               vc.result.final_model.GetStateDict(), &detail),
            "virtualization_differential",
            "virtualized crash-resume changed the final model: " + detail);
      Check(&v, e.result.server.curve == vc.result.server.curve,
            "virtualization_differential",
            "virtualized crash-resume changed the accuracy curve");
      Check(&v, e.sent == vc.sent && e.delivered == vc.delivered,
            "virtualization_differential",
            Vs("virtualized crash-resume changed sent", e.sent, vc.sent) +
                " / " + Vs("delivered", e.delivered, vc.delivered));
      Check(&v,
            e.result.client_test_accuracy == vc.result.client_test_accuracy,
            "virtualization_differential",
            "virtualized crash-resume changed client accuracies");
    }
  }

  // -- oracle 13: guard transparency ----------------------------------------
  // A pure-screening ingress guard (no norm bound) over a benign course
  // inspects every update and rejects none; it must be bit-invisible. The
  // norm-bound/clip knobs are active interventions and are normalized out
  // of both twins — transparency is a claim about screening only.
  if (!spec.Hostile()) {
    CourseSpec on = spec;
    on.guard = true;
    on.guard_l2 = 0.0;
    on.guard_clip = false;
    on.guard_k = 3;
    CourseSpec off = on;
    off.guard = false;
    std::string on_metrics;
    std::string off_metrics;
    CourseObservation gon = RunInstrumentedCourse(
        on, -1, options.exec_threads, /*virtualize=*/false, &on_metrics);
    CourseObservation goff = RunInstrumentedCourse(
        off, -1, options.exec_threads, /*virtualize=*/false, &off_metrics);
    Check(&v, gon.finished == goff.finished, "guard_transparency",
          "guard toggle changed termination");
    Check(&v,
          StateDictsBitEqual(gon.result.final_model.GetStateDict(),
                             goff.result.final_model.GetStateDict(), &detail),
          "guard_transparency",
          "benign guard changed the final model: " + detail);
    Check(&v, gon.result.server.curve == goff.result.server.curve,
          "guard_transparency", "benign guard changed the accuracy curve");
    Check(&v, gon.sent == goff.sent && gon.delivered == goff.delivered,
          "guard_transparency",
          Vs("benign guard changed message counts (sent)", goff.sent,
             gon.sent) +
              " / " + Vs("delivered", goff.delivered, gon.delivered));
    Check(&v, gon.result.client_test_accuracy ==
                  goff.result.client_test_accuracy,
          "guard_transparency", "benign guard changed client accuracies");
    Check(&v,
          gon.result.server.rounds == goff.result.server.rounds &&
              gon.result.server.staleness_log ==
                  goff.result.server.staleness_log &&
              gon.result.server.agg_count == goff.result.server.agg_count,
          "guard_transparency", "benign guard changed the round structure");
    Check(&v, on_metrics == off_metrics, "guard_transparency",
          "benign guard changed the metrics exposition");
    Check(&v,
          gon.result.server.updates_rejected == 0 &&
              gon.result.server.updates_clipped == 0 &&
              gon.result.server.quarantined.empty(),
          "guard_transparency",
          "benign guard rejected, clipped, or quarantined");
  }

  // -- oracle 14: Byzantine tolerance ---------------------------------------
  // Under a minority of plan-hostile clients and an active guard, the
  // course completes, the shared model stays finite, honest clients are
  // never quarantined, and every non-finite update delivered while the
  // course was live was rejected at ingress. (Sign-flip/scale attacks
  // inside the norm bound are the robust aggregator's job; finiteness of
  // the final model is what witnesses that they stayed outvoted.)
  if (spec.Hostile()) {
    // Clean completion is owed only once the guard has rejected something:
    // the plan draws hostile *clients*, but heavy benign faults
    // (crash/loss/dropout) can silence the fleet before any hostile member
    // lands in a cohort — such a run is bit-identical to its benign twin,
    // and an abort there is a benign-fault outcome this oracle has no
    // business blaming on the adversary. Accepted mutations (sign-flip or
    // scale inside the norm bound) are counted like honest updates and
    // cannot stall a round either, so rejections are the exact signal that
    // hostility touched liveness — the same condition that arms the
    // server's starved-round restaff escape, making this check the mirror
    // of that guarantee. Finiteness, quarantine soundness, and the
    // delivered-vs-rejected reconciliation below still bind
    // unconditionally.
    if (stats.updates_rejected > 0) {
      Check(&v, a.finished && !stats.aborted, "byzantine_tolerance",
            "hostile course did not complete cleanly");
    }
    Check(&v,
          StateDictFinite(a.result.final_model.GetStateDict(), &detail),
          "byzantine_tolerance",
          "poison reached the final model: " + detail);
    for (int id : stats.quarantined) {
      Check(&v, a.hostile.count(id) > 0, "byzantine_tolerance",
            "honest client " + std::to_string(id) + " was quarantined");
    }
    const std::set<int> distinct_quarantined(stats.quarantined.begin(),
                                             stats.quarantined.end());
    Check(&v, distinct_quarantined.size() == stats.quarantined.size(),
          "byzantine_tolerance", "a client was quarantined twice");
    if (spec.topology_kill_shard < 0) {
      // With a kill schedule a poisoned update can be eaten by the dead
      // aggregator incarnation before any guard sees it, so the exact
      // reconciliation only holds without one.
      Check(&v, a.nonfinite_updates_delivered <= stats.updates_rejected,
            "byzantine_tolerance",
            Vs("non-finite updates delivered vs rejected at ingress",
               stats.updates_rejected, a.nonfinite_updates_delivered));
    }
  }

  return v;
}

}  // namespace testing
}  // namespace fedscope
